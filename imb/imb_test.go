package imb

import (
	"testing"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/openmx"
)

func newRunner(t *testing.T, ppn int) *Runner {
	t.Helper()
	c := cluster.New(nil)
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	cfg := openmx.Config{RegCache: true}
	t0, t1 := openmx.Attach(n0, cfg), openmx.Attach(n1, cfg)
	w := mpi.NewWorld(c)
	cores := []int{2, 4}
	for r := 0; r < 2*ppn; r++ {
		node, slot, tr := n0, r, openmx.Transport(t0)
		if r >= ppn {
			node, slot, tr = n1, r-ppn, t1
		}
		w.AddRank(tr.Open(slot, cores[slot]), node, cores[slot])
	}
	t.Cleanup(c.Close)
	return &Runner{C: c, W: w, Iters: func(int) int { return 3 }}
}

func TestTestsListMatchesFigure12(t *testing.T) {
	ts := Tests()
	if len(ts) != 11 {
		t.Fatalf("%d tests, want the paper's 11", len(ts))
	}
	if ts[0] != "PingPong" || ts[10] != "Bcast" {
		t.Fatalf("order wrong: %v", ts)
	}
}

func TestStandardSizes(t *testing.T) {
	s := StandardSizes(16, 128)
	want := []int{16, 32, 64, 128}
	if len(s) != len(want) {
		t.Fatalf("sizes = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
}

func TestPingPongResultSanity(t *testing.T) {
	r := newRunner(t, 1)
	res := r.Run("PingPong", []int{1024, 65536})
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for _, x := range res {
		if x.TimeUsec <= 0 || x.MiBps <= 0 {
			t.Fatalf("bad result %+v", x)
		}
	}
	// Larger messages must have higher bandwidth here.
	if res[1].MiBps <= res[0].MiBps {
		t.Fatalf("bandwidth not increasing: %v", res)
	}
}

func TestCollectiveHasTimeNoBandwidth(t *testing.T) {
	r := newRunner(t, 2)
	res := r.Run("Allreduce", []int{4096})
	if res[0].MiBps != 0 || res[0].TimeUsec <= 0 {
		t.Fatalf("collective metrics wrong: %+v", res[0])
	}
}

func TestEveryTestRunsOn2PPN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, test := range Tests() {
		r := newRunner(t, 2)
		res := r.Run(test, []int{8192})
		if len(res) != 1 || res[0].TimeUsec <= 0 {
			t.Fatalf("%s: bad result %+v", test, res)
		}
	}
}

func TestAllTestsAndCanon(t *testing.T) {
	all := AllTests()
	if len(all) != 14 {
		t.Fatalf("%d tests, want 14 (Figure 12's 11 + Gather/Scatter/Barrier)", len(all))
	}
	for _, name := range []string{"allreduce", "ALLTOALL", "bcast", "Barrier", "scatter"} {
		if _, ok := Canon(name); !ok {
			t.Errorf("Canon(%q) unknown", name)
		}
	}
	if c, _ := Canon("allreduce"); c != "Allreduce" {
		t.Errorf("Canon(allreduce) = %q", c)
	}
	if _, ok := Canon("NotATest"); ok {
		t.Error("Canon accepted an unknown name")
	}
}

func TestGatherScatterBarrierRun(t *testing.T) {
	for _, test := range []string{"Gather", "Scatter", "Barrier"} {
		r := newRunner(t, 2)
		res := r.Run(test, []int{4096})
		if len(res) != 1 || res[0].TimeUsec <= 0 || res[0].MiBps != 0 {
			t.Fatalf("%s: bad result %+v", test, res)
		}
	}
}

func TestBarrierCollapsesSizeSweep(t *testing.T) {
	// Barrier is size-independent: a multi-size sweep must produce
	// exactly one measurement, reported at Bytes 0 (IMB-MPI1 style).
	r := newRunner(t, 2)
	res := r.Run("Barrier", []int{16, 1024, 65536})
	if len(res) != 1 || res[0].Bytes != 0 || res[0].TimeUsec <= 0 {
		t.Fatalf("Barrier sweep = %+v, want one row at Bytes 0", res)
	}
}

func TestBandwidthFactors(t *testing.T) {
	if bandwidthFactor("PingPong") != 1 || bandwidthFactor("SendRecv") != 2 ||
		bandwidthFactor("Exchange") != 4 || bandwidthFactor("Bcast") != 0 {
		t.Fatal("IMB bandwidth factors wrong")
	}
}

func TestSortResults(t *testing.T) {
	rs := []Result{{Test: "B", Bytes: 2}, {Test: "A", Bytes: 9}, {Test: "B", Bytes: 1}}
	SortResults(rs)
	if rs[0].Test != "A" || rs[1].Bytes != 1 || rs[2].Bytes != 2 {
		t.Fatalf("sorted = %v", rs)
	}
}

func TestUnknownTestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r := newRunner(t, 1)
	r.Run("NotATest", []int{16})
}
