package imb

import (
	"strings"
	"testing"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
)

// buildWorld is the sweep-friendly twin of newRunner: a fresh 2-node
// world per call, no testing.T captured inside the point closure.
func buildWorld(ppn int) func() (*cluster.Cluster, *mpi.World) {
	return func() (*cluster.Cluster, *mpi.World) {
		c := cluster.New(nil)
		n0, n1 := c.NewHost("n0"), c.NewHost("n1")
		cluster.Link(n0, n1)
		cfg := openmx.Config{RegCache: true}
		t0, t1 := openmx.Attach(n0, cfg), openmx.Attach(n1, cfg)
		w := mpi.NewWorld(c)
		cores := []int{2, 4}
		for r := 0; r < 2*ppn; r++ {
			node, slot, tr := n0, r, openmx.Transport(t0)
			if r >= ppn {
				node, slot, tr = n1, r-ppn, t1
			}
			w.AddRank(tr.Open(slot, cores[slot]), node, cores[slot])
		}
		return c, w
	}
}

// TestSweepMatchesSerial: a parallel sweep returns, point for point
// and bit for bit, what serial Runner.Run calls return.
func TestSweepMatchesSerial(t *testing.T) {
	iters := func(int) int { return 3 }
	sizes := []int{1024, 65536}
	var points []Point
	for _, test := range []string{"PingPong", "SendRecv", "Allreduce"} {
		points = append(points, Point{
			Name:  "openmx",
			Build: buildWorld(1),
			Test:  test,
			Sizes: sizes,
			Iters: iters,
			Key:   runner.Key("sweep-test", test, sizes),
		})
	}
	pool := runner.New(runner.Options{Workers: 4, Cache: runner.NewCache()})
	prs, err := Sweep(pool, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(prs) != len(points) {
		t.Fatalf("%d point results, want %d", len(prs), len(points))
	}
	for i, pr := range prs {
		if pr.Point.Test != points[i].Test {
			t.Fatalf("result %d is for %q, want %q (order not preserved)", i, pr.Point.Test, points[i].Test)
		}
		c, w := buildWorld(1)()
		serial := (&Runner{C: c, W: w, Iters: iters}).Run(points[i].Test, sizes)
		if len(serial) != len(pr.Results) {
			t.Fatalf("%s: %d vs %d results", points[i].Test, len(pr.Results), len(serial))
		}
		for j := range serial {
			if serial[j] != pr.Results[j] {
				t.Errorf("%s size %d: parallel %+v != serial %+v",
					points[i].Test, serial[j].Bytes, pr.Results[j], serial[j])
			}
		}
	}
}

// TestSweepSurfacesPanics: a deadlocking point reports an error; it
// does not kill the sweep or the process.
func TestSweepSurfacesPanics(t *testing.T) {
	points := []Point{
		{Name: "ok", Build: buildWorld(1), Test: "PingPong", Sizes: []int{1024}},
		{Name: "bad", Build: buildWorld(1), Test: "NoSuchTest", Sizes: []int{1024}},
	}
	_, err := Sweep(runner.New(runner.Options{Workers: 2}), points)
	if err == nil || !strings.Contains(err.Error(), "NoSuchTest") {
		t.Fatalf("sweep error = %v, want the unknown-test panic surfaced", err)
	}
}
