package imb

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/runner"
)

// Point is one independent sweep point: a complete benchmark run
// (one test over its message sizes) on a freshly built world. Points
// never share a testbed, so a sweep of Points can shard freely across
// a worker pool.
type Point struct {
	// Name labels the point in progress output and results.
	Name string
	// Build returns a fresh cluster and world for this point. It is
	// called at most once, from whichever pool worker picks the point
	// up.
	Build func() (*cluster.Cluster, *mpi.World)
	// Test is the IMB benchmark name (see Tests).
	Test string
	// Sizes are the message sizes to run.
	Sizes []int
	// Iters overrides the iteration schedule (nil = DefaultIters).
	Iters func(bytes int) int
	// Key, when non-empty, caches the point's results in the pool's
	// cache (see runner.Key).
	Key string
}

// PointResult pairs a point with its measurements, in sweep order.
type PointResult struct {
	Point   Point
	Results []Result
}

// Sweep runs every point concurrently on the pool (one fresh testbed
// each) and returns their results in point order. The first failing
// point — including a captured panic, e.g. a deadlocked benchmark —
// is returned as an error after every other point has finished.
func Sweep(p *runner.Pool, points []Point) ([]PointResult, error) {
	jobs := make([]runner.Job, len(points))
	for i, pt := range points {
		pt := pt
		jobs[i] = runner.Job{
			Label: fmt.Sprintf("imb/%s/%s", pt.Test, pt.Name),
			Key:   pt.Key,
			Run: func() (any, error) {
				c, w := pt.Build()
				r := &Runner{C: c, W: w, Iters: pt.Iters}
				return r.Run(pt.Test, pt.Sizes), nil
			},
		}
	}
	results := p.Run(jobs...)
	if err := runner.FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]PointResult, len(points))
	for i, r := range results {
		out[i] = PointResult{Point: points[i], Results: r.Value.([]Result)}
	}
	return out, nil
}
