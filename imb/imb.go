// Package imb reimplements the Intel MPI Benchmarks patterns the
// paper's Figures 11 and 12 report: PingPong, PingPing, SendRecv,
// Exchange, Allreduce, Reduce, ReduceScatter, Allgather, Allgatherv,
// Alltoall and Bcast — plus the remaining IMB-MPI1 collectives
// (Gather, Scatter, Barrier) — with IMB's timing conventions
// (barrier, warm-up round, time = max across ranks averaged over
// iterations).
package imb

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/sim"
)

// Tests lists the benchmark names in the paper's Figure 12 order
// (the panels compare exactly these, so the list is frozen).
func Tests() []string {
	return []string{
		"PingPong", "PingPing", "SendRecv", "Exchange",
		"Allreduce", "Reduce", "ReduceScatter",
		"Allgather", "Allgatherv", "Alltoall", "Bcast",
	}
}

// AllTests lists every implemented IMB-MPI1 benchmark: the Figure 12
// set followed by the remaining collectives.
func AllTests() []string {
	return append(Tests(), "Gather", "Scatter", "Barrier")
}

// Canon resolves a benchmark name case-insensitively to its
// canonical spelling ("allreduce" → "Allreduce"); ok reports whether
// the name is known.
func Canon(name string) (canon string, ok bool) {
	for _, t := range AllTests() {
		if strings.EqualFold(t, name) {
			return t, true
		}
	}
	return "", false
}

// Result is one (test, size) measurement.
type Result struct {
	Test  string
	Bytes int
	// TimeUsec is the IMB time metric: for PingPong, half the round
	// trip; otherwise the per-iteration time (max across ranks).
	TimeUsec float64
	// MiBps is the bandwidth metric for the point-to-point tests
	// (bytes×factor / time); zero for collectives.
	MiBps float64
}

// Runner executes benchmarks on a world. Create one per (cluster,
// world) pair.
type Runner struct {
	C *cluster.Cluster
	W *mpi.World
	// Iterations per size; nil selects a default schedule that keeps
	// simulations fast while averaging out transients.
	Iters func(bytes int) int
}

// DefaultIters is the default iteration schedule.
func DefaultIters(bytes int) int {
	switch {
	case bytes <= 4*1024:
		return 12
	case bytes <= 256*1024:
		return 6
	default:
		return 3
	}
}

func (r *Runner) iters(bytes int) int {
	if r.Iters != nil {
		return r.Iters(bytes)
	}
	return DefaultIters(bytes)
}

// bandwidthFactor is IMB's bytes-moved multiplier per test.
func bandwidthFactor(test string) float64 {
	switch test {
	case "PingPong", "PingPing":
		return 1
	case "SendRecv":
		return 2
	case "Exchange":
		return 4
	default:
		return 0
	}
}

// Run executes one benchmark across the given message sizes and
// returns a result per size. It spawns the rank processes and drives
// the cluster to completion.
func (r *Runner) Run(test string, sizes []int) []Result {
	p := r.W.Size()
	if test == "Barrier" {
		// Size-independent, like IMB-MPI1: one measurement, one row
		// (Bytes 0), however many sizes the sweep asked for.
		sizes = []int{0}
	}
	elapsed := make([]map[int]sim.Duration, p) // per rank: size → time
	for i := range elapsed {
		elapsed[i] = make(map[int]sim.Duration)
	}
	body, bufSizer := r.pattern(test)
	// Pre-allocate buffers outside the ranks (sizes are shared).
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	bufs := make([]benchBufs, p)
	for i := 0; i < p; i++ {
		sb, rb := bufSizer(maxSize, p)
		h := r.W.Rank(i).Host
		bufs[i] = benchBufs{s: h.Alloc(sb), r: h.Alloc(rb)}
		bufs[i].s.Fill(byte(i + 1))
	}
	r.W.Spawn(func(rk *mpi.Rank) {
		for _, size := range sizes {
			iters := r.iters(size)
			rk.Barrier()
			body(rk, size, bufs[rk.ID]) // warm-up round
			rk.Barrier()
			t0 := rk.Now()
			for it := 0; it < iters; it++ {
				body(rk, size, bufs[rk.ID])
			}
			elapsed[rk.ID][size] = (rk.Now() - t0) / sim.Duration(iters)
			rk.Barrier()
		}
	})
	if blocked := r.C.Run(); blocked != 0 {
		panic(fmt.Sprintf("imb: %s deadlocked with %d ranks blocked", test, blocked))
	}
	var out []Result
	for _, size := range sizes {
		var worst sim.Duration
		for i := 0; i < p; i++ {
			if elapsed[i][size] > worst {
				worst = elapsed[i][size]
			}
		}
		res := Result{Test: test, Bytes: size, TimeUsec: float64(worst) / 1000}
		if test == "PingPong" {
			res.TimeUsec /= 2 // IMB reports half the round trip
		}
		if f := bandwidthFactor(test); f > 0 && res.TimeUsec > 0 {
			res.MiBps = float64(size) * f / 1024 / 1024 / (res.TimeUsec / 1e6)
		}
		out = append(out, res)
	}
	return out
}

type benchBufs struct {
	s, r *cluster.Buffer
}

// pattern returns the per-iteration body of a test and its buffer
// sizing rule (send bytes, recv bytes) for world size p.
func (r *Runner) pattern(test string) (func(rk *mpi.Rank, n int, b benchBufs), func(maxSize, p int) (int, int)) {
	plain := func(m, p int) (int, int) { return m, m }
	scaled := func(m, p int) (int, int) { return m * p, m * p }
	switch test {
	case "PingPong":
		// Ranks 0 and 1 bounce a message; everyone else idles at the
		// surrounding barriers (IMB semantics for >2 ranks).
		return func(rk *mpi.Rank, n int, b benchBufs) {
			const tag = 77
			switch rk.ID {
			case 0:
				rk.Produce(b.s)
				rk.Send(1, tag, b.s, 0, n)
				rk.Recv(1, tag, b.r, 0, n)
			case 1:
				rk.Recv(0, tag, b.r, 0, n)
				rk.Produce(b.s)
				rk.Send(0, tag, b.s, 0, n)
			}
		}, plain
	case "PingPing":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			const tag = 78
			if rk.ID > 1 {
				return
			}
			peer := 1 - rk.ID
			rk.Produce(b.s)
			sreq := rk.Isend(peer, tag, b.s, 0, n)
			rk.Recv(peer, tag, b.r, 0, n)
			rk.Wait(sreq)
		}, plain
	case "SendRecv":
		// Chain: receive from the left, send to the right.
		return func(rk *mpi.Rank, n int, b benchBufs) {
			const tag = 79
			p := rk.Size()
			right, left := (rk.ID+1)%p, (rk.ID-1+p)%p
			rk.Produce(b.s)
			rk.SendRecv(right, tag, b.s, 0, n, left, tag, b.r, 0, n)
		}, plain
	case "Exchange":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			const tag = 80
			p := rk.Size()
			right, left := (rk.ID+1)%p, (rk.ID-1+p)%p
			rk.Produce(b.s)
			s1 := rk.Isend(left, tag, b.s, 0, n)
			s2 := rk.Isend(right, tag, b.s, 0, n)
			rk.Recv(left, tag, b.r, 0, n)
			rk.Recv(right, tag, b.r, 0, n)
			rk.Wait(s1)
			rk.Wait(s2)
		}, plain
	case "Allreduce":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Produce(b.s)
			rk.Allreduce(b.s, b.r, n)
		}, plain
	case "Reduce":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Produce(b.s)
			rk.Reduce(0, b.s, b.r, n)
		}, plain
	case "ReduceScatter":
		// IMB: total reduced vector of n bytes, n/p per rank.
		return func(rk *mpi.Rank, n int, b benchBufs) {
			p := rk.Size()
			chunk := n / p
			if chunk == 0 {
				chunk = 1
			}
			rk.Produce(b.s)
			rk.ReduceScatter(b.s, b.r, chunk)
		}, plain
	case "Allgather":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Produce(b.s)
			rk.Allgather(b.s, n, b.r)
		}, scaled
	case "Allgatherv":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			sizes := make([]int, rk.Size())
			for i := range sizes {
				sizes[i] = n
			}
			rk.Produce(b.s)
			rk.Allgatherv(b.s, n, b.r, sizes)
		}, scaled
	case "Alltoall":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Produce(b.s)
			rk.Alltoall(b.s, n, b.r)
		}, scaled
	case "Bcast":
		return func(rk *mpi.Rank, n int, b benchBufs) {
			if rk.ID == 0 {
				rk.Produce(b.s)
			}
			rk.Bcast(0, b.s, 0, n)
		}, plain
	case "Gather":
		// Every rank contributes n bytes; rank 0 collects p·n.
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Produce(b.s)
			rk.Gather(0, b.s, n, b.r)
		}, func(m, p int) (int, int) { return m, m * p }
	case "Scatter":
		// Rank 0 distributes p·n bytes, n to each rank.
		return func(rk *mpi.Rank, n int, b benchBufs) {
			if rk.ID == 0 {
				rk.Produce(b.s)
			}
			rk.Scatter(0, b.s, n, b.r)
		}, func(m, p int) (int, int) { return m * p, m }
	case "Barrier":
		// Message-size independent; IMB reports t[usec] per barrier.
		return func(rk *mpi.Rank, n int, b benchBufs) {
			rk.Barrier()
		}, func(m, p int) (int, int) { return 8, 8 }
	default:
		panic(fmt.Sprintf("imb: unknown test %q", test))
	}
}

// StandardSizes returns the power-of-two sweep from lo to hi bytes.
func StandardSizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// SortResults orders results by test name then size (stable output
// for tables).
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Test != rs[j].Test {
			return rs[i].Test < rs[j].Test
		}
		return rs[i].Bytes < rs[j].Bytes
	})
}
