package figures

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The NIC-offloaded collective figure (`omxsim nicoll`, beyond the
// paper): host-driven collective algorithms versus the MXoE firmware
// state machines at fat-tree scale, measured with the avail figure's
// CPU-availability methodology. Host collectives run the mpi package's
// trees over Open-MX (with and without I/OAT receive offload) and over
// native MXoE point-to-point; the firmware series posts one collective
// descriptor per call and lets the NIC run every tree hop, combine and
// retransmission. Each point runs twice — communication-only for
// latency and host-CPU cost, then compute-loaded for achieved overlap
// — so the firmware's claim is measured the same way the paper
// measures I/OAT's: not raw latency, but host cycles returned to the
// application while the collective progresses.

// NICollRanks returns the swept world sizes (at ftPpn ranks per node,
// wired as the fat-tree figure's leaf/spine fabric).
func NICollRanks() []int { return []int{64, 256} }

// NICollSizes returns the payloads of the data-carrying collectives
// (the barrier always moves zero bytes): an eager latency point and a
// rendezvous point where the host stacks' I/OAT receive offload
// engages, both under the firmware's per-collective cap.
func NICollSizes() []int { return []int{4 << 10, 64 << 10} }

// NICollIters is the measured collective count per point, after one
// warm-up call and a synchronizing barrier.
const NICollIters = 8

// nicollMaxQuanta bounds the compute slices per iteration: the quantum
// grows past availQuantum once injected compute exceeds 1 ms, keeping
// ~0.5% overlap resolution without flooding the event core on the
// slowest host-algorithm points (big world x big payload x 256 ranks).
const nicollMaxQuanta = 200

// nicollOps lists the swept operations.
func nicollOps() []nicollOp {
	ops := []nicollOp{{"Barrier", 0}}
	for _, name := range []string{"Bcast", "Allreduce", "Scan"} {
		for _, n := range NICollSizes() {
			ops = append(ops, nicollOp{name, n})
		}
	}
	return ops
}

// nicollOp is one swept (operation, payload) shape.
type nicollOp struct {
	name  string
	bytes int
}

// nicollSeries is one compared execution tier: a stack plus a pinned
// offload mode.
type nicollSeries struct {
	name    string
	s       Stack
	offload string
}

// nicollSeriesList returns the four compared series: the host
// algorithms over Open-MX (memcpy and I/OAT receive paths) and over
// native MXoE point-to-point, then the firmware state machines.
func nicollSeriesList() []nicollSeries {
	return []nicollSeries{
		{"Open-MX host", Stack{Kind: "openmx", OMX: omxCfg(false)}, mpi.OffloadHost},
		{"Open-MX I/OAT host", Stack{Kind: "openmx", OMX: omxCfg(true)}, mpi.OffloadHost},
		{"MX host", Stack{Kind: "mxoe", MXRegCache: true}, mpi.OffloadHost},
		{"MX NIC-offload", Stack{Kind: "mxoe", MXRegCache: true}, mpi.OffloadNIC},
	}
}

// NICollPoint is one measured (op, series, ranks) combination.
type NICollPoint struct {
	Op     string
	Series string
	Ranks  int
	Bytes  int
	Iters  int

	TimeUsec    float64 // per collective, communication-only run
	HostCPUUsec float64 // non-compute host CPU per collective, all hosts
	OverlapPct  float64 // achieved compute/communication overlap
	// Verified reports that every rank's result bytes checked out in
	// both runs (always true for the barrier, which only synchronizes).
	Verified bool
}

// nicollFill writes rank r's deterministic contribution: small exact
// integers, so reductions are exact in any combining order and host
// and firmware results are byte-comparable.
func nicollFill(b *cluster.Buffer, r, n int) {
	for i := 0; i < n/8; i++ {
		binary.LittleEndian.PutUint64(b.Bytes()[i*8:],
			math.Float64bits(float64(r%31+i%17+1)))
	}
}

// nicollCheck verifies one run's results on every rank: broadcast
// payloads match the root pattern, every allreduce word equals the
// whole-world sum, and the last rank's scan equals the allreduce.
func nicollCheck(op string, p, n int, bufs []*cluster.Buffer) bool {
	if n == 0 {
		return true
	}
	switch op {
	case "Bcast":
		for r := 1; r < p; r++ {
			if !cluster.Equal(bufs[0], bufs[r]) {
				return false
			}
		}
	case "Allreduce", "Scan":
		last := p
		if op == "Scan" {
			last = 1 // only rank p-1 holds the full sum
		}
		for r := p - last; r < p; r++ {
			for i := 0; i < n/8; i++ {
				var want float64
				for m := 0; m < p; m++ {
					want += float64(m%31 + i%17 + 1)
				}
				got := math.Float64frombits(binary.LittleEndian.Uint64(bufs[r].Bytes()[i*8:]))
				if got != want {
					return false
				}
			}
		}
	}
	return true
}

// nicollRun executes one measured collective loop and returns the
// elapsed measured-phase time, the non-compute host CPU it consumed
// across every host, and whether the results verified. compute is the
// per-iteration injected application compute (zero for the
// communication-only run), sliced into availQuantum pieces with a
// progress poll between them on the offloaded series — the blocking
// host algorithms can only compute after each collective returns,
// which is exactly the serialization the offload removes.
func nicollRun(sr nicollSeries, op string, ranks, bytes, iters int, compute sim.Duration) (elapsed, commCPU sim.Duration, verified bool) {
	nodes := ranks / ftPpn
	tb := newFatTreeTestbed(sr.s, nodes, ftPpn)
	defer tb.c.Close()
	tb.w.Tune.Offload = sr.offload
	p := tb.w.Size()
	alloc := max(bytes, 8)
	sb := make([]*cluster.Buffer, p)
	rb := make([]*cluster.Buffer, p)
	for r := 0; r < p; r++ {
		sb[r] = tb.w.Rank(r).Host.Alloc(alloc)
		rb[r] = tb.w.Rank(r).Host.Alloc(alloc)
		nicollFill(sb[r], r, bytes)
	}
	nicollFill(sb[0], 0, bytes) // bcast root pattern lives in rank 0's sbuf
	var t0 sim.Time
	// Per-rank measured-phase end times: the collective is not over
	// when rank 0 returns (a broadcast root finishes at the descriptor
	// post; a scan's last rank finishes last), so the elapsed time is
	// the latest rank's.
	tEnd := make([]sim.Time, p)
	nic := sr.offload == mpi.OffloadNIC
	quantum := max(availQuantum, compute/nicollMaxQuanta)
	tb.w.Spawn(func(r *mpi.Rank) {
		one := func() openmx.Request {
			// Nonblocking on the offloaded tier (one descriptor post),
			// blocking host algorithm otherwise.
			switch op {
			case "Barrier":
				if nic {
					return r.IbarrierNIC()
				}
				r.Barrier()
			case "Bcast":
				if nic {
					return r.IbcastNIC(0, pick(r.ID == 0, sb[r.ID], rb[r.ID]), 0, bytes)
				}
				r.Bcast(0, pick(r.ID == 0, sb[r.ID], rb[r.ID]), 0, bytes)
			case "Allreduce":
				if nic {
					return r.IallreduceNIC(sb[r.ID], rb[r.ID], bytes)
				}
				r.Allreduce(sb[r.ID], rb[r.ID], bytes)
			case "Scan":
				if nic {
					return r.IscanNIC(sb[r.ID], rb[r.ID], bytes)
				}
				r.Scan(sb[r.ID], rb[r.ID], bytes)
			}
			return nil
		}
		finish := func(req openmx.Request) {
			// Injected compute: overlapped with the posted descriptor
			// on the NIC tier, serialized after the call on the host
			// tiers.
			for left := compute; left > 0; left -= quantum {
				r.ComputeFor(min(left, quantum))
				if req != nil {
					r.Test(req)
				}
			}
			if req != nil {
				r.Wait(req)
			}
		}
		finish(one()) // warm-up (first pin, group registration)
		if nic {
			r.BarrierNIC()
		} else {
			r.Barrier()
		}
		if r.ID == 0 {
			// Measured phase: fresh CPU window on every host.
			for _, h := range tb.c.Hosts() {
				h.Machine().Sys.ResetAccounting()
			}
			t0 = r.Now()
		}
		for i := 0; i < iters; i++ {
			finish(one())
		}
		tEnd[r.ID] = r.Now()
	})
	if blocked := tb.c.Run(); blocked != 0 {
		panic(fmt.Sprintf("figures: nicoll %s/%s/%d deadlocked", sr.name, op, ranks))
	}
	var t1 sim.Time
	for _, te := range tEnd {
		t1 = max(t1, te)
	}
	for _, h := range tb.c.Hosts() {
		st := h.Machine().Sys.Snapshot()
		commCPU += st.Busy() - st.Busy(cpu.AppCompute)
	}
	bufs := rb
	if op == "Bcast" {
		bufs = make([]*cluster.Buffer, p)
		bufs[0] = sb[0]
		copy(bufs[1:], rb[1:])
	}
	return t1 - t0, commCPU, nicollCheck(op, p, bytes, bufs)
}

// pick returns a when cond holds, else b.
func pick(cond bool, a, b *cluster.Buffer) *cluster.Buffer {
	if cond {
		return a
	}
	return b
}

// nicollPoint measures one sweep point: a communication-only run for
// latency and host-CPU cost, then a compute-loaded run (compute =
// availComputeFactor x the measured communication time) for the
// achieved overlap.
func nicollPoint(sr nicollSeries, op string, ranks, bytes, iters int) NICollPoint {
	comm, commCPU, okComm := nicollRun(sr, op, ranks, bytes, iters, 0)
	computeIter := availComputeFactor * comm / sim.Duration(iters)
	compute := computeIter * sim.Duration(iters)
	both, _, okBoth := nicollRun(sr, op, ranks, bytes, iters, computeIter)

	pt := NICollPoint{Op: op, Series: sr.name, Ranks: ranks, Bytes: bytes,
		Iters: iters, Verified: okComm && okBoth}
	pt.TimeUsec = sim.Time(comm).Micros() / float64(iters)
	pt.HostCPUUsec = sim.Time(commCPU).Micros() / float64(iters)
	if denom := min(comm, compute); denom > 0 {
		overlap := float64(comm+compute-both) / float64(denom) * 100
		pt.OverlapPct = max(0, min(100, overlap))
	}
	return pt
}

// NICollSweep measures every (op, ranks, series) point as an
// independent runner job, op outermost, then world size, then series.
func NICollSweep() []NICollPoint {
	return nicollSweepOver(nicollOps(), NICollRanks(), NICollIters)
}

// nicollSweepOver shards an arbitrary grid across the figures pool
// (reduced grids keep the determinism guardrail cheap).
func nicollSweepOver(ops []nicollOp, ranksList []int, iters int) []NICollPoint {
	var jobs []runner.Job
	for _, op := range ops {
		for _, ranks := range ranksList {
			for _, sr := range nicollSeriesList() {
				op, ranks, sr := op, ranks, sr
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("nicoll/%s/%s/%dranks", op.name, sr.name, ranks),
					Key:   runner.Key("nicoll", sr.s, sr.offload, op.name, op.bytes, ranks, iters),
					Run: func() (any, error) {
						return nicollPoint(sr, op.name, ranks, op.bytes, iters), nil
					},
				})
			}
		}
	}
	return sweep[NICollPoint](jobs)
}

// RenderNIColl formats the sweep with the offload-selection footer:
// for every (op, ranks) the host algorithm the tuning would run and
// the tier the default tuning resolves on a collective-capable stack.
func RenderNIColl(points []NICollPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# NIC-offloaded collectives: host algorithms vs MXoE firmware state machines at fat-tree scale (%d iters, %d ranks/node, %d hosts/leaf, %d spines; compute = %dx comm in >=%v quanta, <=%d/iter)\n",
		NICollIters, ftPpn, ftLeafRadix, ftSpines, availComputeFactor, availQuantum, nicollMaxQuanta)
	fmt.Fprintf(&b, "%-10s %-20s %6s %8s %12s %17s %10s %9s\n",
		"op", "series", "ranks", "msgsize", "t[us/coll]", "hostCPU[us/coll]", "overlap%", "verified")
	for _, p := range points {
		fmt.Fprintf(&b, "%-10s %-20s %6d %8s %12.1f %17.1f %10.1f %9v\n",
			p.Op, p.Series, p.Ranks, sizeName(p.Bytes),
			p.TimeUsec, p.HostCPUUsec, p.OverlapPct, p.Verified)
	}
	tn := mpi.DefaultTuning()
	b.WriteString("# selection (default tuning, collective-capable stack): host algorithm / resolved tier\n")
	for _, op := range nicollOps() {
		fmt.Fprintf(&b, "%-10s %5s", op.name, sizeName(op.bytes))
		for _, ranks := range NICollRanks() {
			var alg string
			switch op.name {
			case "Barrier":
				alg = tn.BarrierAlg(ranks)
			case "Bcast":
				alg = tn.BcastAlg(op.bytes, ranks)
			case "Allreduce":
				alg = tn.AllreduceAlg(op.bytes, ranks)
			case "Scan":
				alg = tn.ScanAlg(op.bytes, ranks)
			}
			fmt.Fprintf(&b, " %dranks=%s/%s", ranks, alg, tn.CollOffload(op.bytes, ranks, true))
		}
		b.WriteString("\n")
	}
	return b.String()
}
