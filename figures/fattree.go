package figures

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/imb"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
)

// The fat-tree figure (beyond the paper): collective latency on
// 64–512-rank worlds wired as a 2-tier leaf/spine Clos fabric, with
// I/OAT copy offload on and off. The paper's testbed stopped at two
// hosts; this sweep asks whether its receive-side offload still pays
// once the interconnect itself is oversubscribed and flows share
// spine trunks ECMP-style. Where a single switch can still hold the
// world (64 ranks = 32 nodes) the figure keeps a 1-switch series as
// the flat-topology baseline, which doubles as the collective-shape
// regression run at 64+ ranks.

// Fat-tree shape: 16 host ports per leaf sharing 4 spine uplinks —
// the classic 4:1 oversubscribed pod.
const (
	ftLeafRadix = 16
	ftSpines    = 4
	ftPpn       = 2 // ranks per node, as in the paper's MPICH runs
)

// ftSingleSwitchMaxNodes bounds the flat-baseline series: beyond 32
// nodes a single store-and-forward switch is no longer a realistic
// comparison (nor would real hardware offer the port count).
const ftSingleSwitchMaxNodes = 32

// ftAlltoallMaxRanks bounds the Alltoall sweep: per-rank buffers grow
// with p·n, so 512-rank Alltoall would spend its time in allocation,
// not in the network under test.
const ftAlltoallMaxRanks = 128

// FatTreeRanks returns the swept world sizes (ranks, at ftPpn per
// node).
func FatTreeRanks() []int { return []int{64, 128, 256, 512} }

// FatTreeAllreduceSizes returns the Allreduce sweep sizes: an eager
// latency point and a rendezvous bandwidth point, straddling the
// ring-chunk floor at the larger worlds.
func FatTreeAllreduceSizes() []int { return []int{1 << 10, 64 << 10} }

// FatTreeAlltoallSizes returns the Alltoall sweep sizes.
func FatTreeAlltoallSizes() []int { return []int{1 << 10} }

// FatTreeLossRate is the trunk frame-loss probability of the
// regression point.
const FatTreeLossRate = 0.01

// newFatTreeTestbed builds a nodes-machine world wired as the
// figure's leaf/spine fabric.
func newFatTreeTestbed(s Stack, nodes, ppn int, trunkOpts ...cluster.NetOption) *testbed {
	c := cluster.Build(cluster.Topology{
		Hosts: []cluster.HostSet{{Name: "node", N: nodes, Indexed: true}},
		Wiring: cluster.FatTree{
			LeafRadix: ftLeafRadix,
			Spines:    ftSpines,
			TrunkOpts: trunkOpts,
		},
	})
	return worldOver(c, s, ppn)
}

// ftTestbed builds the testbed for one topology label.
func ftTestbed(s Stack, nodes int, topo string) *testbed {
	if topo == "1-switch" {
		return newTestbedN(s, nodes, ftPpn)
	}
	return newFatTreeTestbed(s, nodes, ftPpn)
}

// ftTopos lists the topologies compared at a given node count.
func ftTopos(nodes int) []string {
	if nodes <= ftSingleSwitchMaxNodes {
		return []string{"1-switch", "fat-tree"}
	}
	return []string{"fat-tree"}
}

// ftCase is one swept (collective, sizes, ranks-subset) shape.
type ftCase struct {
	test     string
	sizes    []int
	maxRanks int
}

func ftCases() []ftCase {
	return []ftCase{
		{"Allreduce", FatTreeAllreduceSizes(), 512},
		{"Alltoall", FatTreeAlltoallSizes(), ftAlltoallMaxRanks},
	}
}

// FatTreeLossPoint is the trunk-loss regression measurement: the
// 64-rank Alltoall rerun with every leaf–spine trunk dropping frames.
// Alltoall is the all-pairs pattern, so (unlike the neighbor-ring
// Allreduce, which block placement keeps mostly intra-leaf) a large
// share of its frames actually traverse the impaired trunks.
type FatTreeLossPoint struct {
	Ranks    int
	LossRate float64
	Bytes    int
	TimeUsec float64 // per-iteration Alltoall time under loss
	WireLost int64   // frames eaten by the impaired trunks (all of them)
}

// FatTree regenerates the fat-tree figure: one table per collective
// (series per stack × world × topology) plus the trunk-loss
// regression point.
func FatTree() ([]*metrics.Table, FatTreeLossPoint) {
	return fatTreeTables(ftCases(), FatTreeRanks()), fatTreeLossPoint()
}

// fatTreeTables sweeps every (case, ranks, topology, stack) run as an
// independent pool job on a fresh testbed (reduced grids keep the
// determinism guardrail cheap).
func fatTreeTables(cases []ftCase, ranksList []int) []*metrics.Table {
	stacks := collStacks()
	iters := func(int) int { return 1 }
	type meta struct {
		test   string
		series string
	}
	var jobs []runner.Job
	var metas []meta
	for _, cs := range cases {
		for _, ranks := range ranksList {
			if ranks > cs.maxRanks {
				continue
			}
			nodes := ranks / ftPpn
			for _, topo := range ftTopos(nodes) {
				for _, st := range stacks {
					cs, ranks, nodes, topo, st := cs, ranks, nodes, topo, st
					jobs = append(jobs, runner.Job{
						Label: fmt.Sprintf("fattree/%s/%s/%dranks/%s", cs.test, st.name, ranks, topo),
						Key:   runner.Key("fattree", st.s, nodes, ftPpn, topo, cs.test, cs.sizes, "fixed1"),
						Run: func() (any, error) {
							tb := ftTestbed(st.s, nodes, topo)
							r := &imb.Runner{C: tb.c, W: tb.w, Iters: iters}
							return r.Run(cs.test, cs.sizes), nil
						},
					})
					metas = append(metas, meta{
						test:   cs.test,
						series: fmt.Sprintf("%s, %d procs, %s", st.name, ranks, topo),
					})
				}
			}
		}
	}
	results := sweep[[]imb.Result](jobs)
	tabByTest := map[string]*metrics.Table{}
	var tables []*metrics.Table
	for i, m := range metas {
		tab := tabByTest[m.test]
		if tab == nil {
			tab = metrics.NewTable(
				fmt.Sprintf("Fat-tree collective latency: %s with I/OAT offload on/off", m.test),
				"msgsize", "t[usec]")
			tabByTest[m.test] = tab
			tables = append(tables, tab)
		}
		s := tab.AddSeries(m.series)
		for _, res := range results[i] {
			s.Add(float64(res.Bytes), res.TimeUsec)
		}
	}
	return tables
}

// fatTreeLossPoint reruns the 64-rank fat-tree Alltoall with lossy
// trunks: the loss-shape regression evidence at scale. The stack runs
// a production-style retransmission timeout (as in the loss figure)
// so recovery, not the paper's 50 ms default, dominates the tail.
func fatTreeLossPoint() FatTreeLossPoint {
	const ranks = 64
	size := FatTreeAlltoallSizes()[0]
	job := runner.Job{
		Label: fmt.Sprintf("fattree/loss/%dranks", ranks),
		Key:   runner.Key("fattree-loss", ranks, ftPpn, size, FatTreeLossRate, "fixed1"),
		Run: func() (any, error) {
			s := Stack{Kind: "openmx", OMX: openmx.Config{
				IOAT: true, RegCache: true, RetransmitTimeout: lossRtx,
			}}
			tb := newFatTreeTestbed(s, ranks/ftPpn, ftPpn, cluster.Impair(cluster.Impairment{
				Seed: lossSeed(FatTreeLossRate, size), LossRate: FatTreeLossRate,
			}))
			r := &imb.Runner{C: tb.c, W: tb.w, Iters: func(int) int { return 1 }}
			res := r.Run("Alltoall", []int{size})
			return FatTreeLossPoint{
				Ranks: ranks, LossRate: FatTreeLossRate, Bytes: size,
				TimeUsec: res[0].TimeUsec,
				WireLost: tb.c.NetStats().TotalWireLoss(),
			}, nil
		},
	}
	return sweep[FatTreeLossPoint]([]runner.Job{job})[0]
}

// RenderFatTree formats the fat-tree tables plus the footer recording
// the fabric shape, the algorithm each point selected, and the
// trunk-loss regression line.
func RenderFatTree(tables []*metrics.Table, lp FatTreeLossPoint) string {
	out := ""
	for _, t := range tables {
		out += t.Render() + "\n"
	}
	out += fmt.Sprintf("# topology: 2-tier fat tree, %d hosts/leaf, %d spines (%d:1 oversubscribed), ECMP hash, flow-sticky\n",
		ftLeafRadix, ftSpines, ftLeafRadix/ftSpines)
	out += "# algorithm selection (default tuning)\n"
	tn := mpi.DefaultTuning()
	for _, cs := range ftCases() {
		for _, ranks := range FatTreeRanks() {
			if ranks > cs.maxRanks {
				continue
			}
			out += fmt.Sprintf("%-10s %3d procs:", cs.test, ranks)
			for _, n := range cs.sizes {
				var alg string
				switch cs.test {
				case "Allreduce":
					alg = tn.AllreduceAlg(n, ranks)
				case "Alltoall":
					alg = tn.AlltoallAlg(n, ranks)
				}
				out += fmt.Sprintf(" %s=%s", sizeName(n), alg)
			}
			out += "\n"
		}
	}
	out += fmt.Sprintf("# loss regression: fat-tree, %d procs, trunk loss %.1f%%: Alltoall %s t=%.2f usec, wire-lost %d, completed\n",
		lp.Ranks, lp.LossRate*100, sizeName(lp.Bytes), lp.TimeUsec, lp.WireLost)
	return out
}
