package figures

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The NAS Integer Sort proxy (Section IV-D: "We also observed up to
// 10 % performance increase on the NAS parallel benchmarks,
// especially on IS which relies on large messages").
//
// Each rank owns keysPerRank uint32 keys; one iteration bins the keys
// by owner range (local compute), exchanges the bins with Alltoallv
// (large messages — the path I/OAT accelerates), verifies the global
// key census with an Allreduce checksum (count and sum of the keys
// that actually arrived, like IS's partial-verification allreduce),
// and sorts the received keys (local compute). The run time is the
// maximum across ranks, collected with a Gather. The keys really move
// and both the per-rank ranges and the global checksum are verified,
// so this doubles as a cross-stack integrity test.

// NASISResult is the runtime of the IS proxy on one stack.
type NASISResult struct {
	Stack  string
	TimeMs float64
	// KeysVerified counts the key arrivals checked against the
	// Allreduce census across all iterations (p·keysPerRank each).
	KeysVerified int
}

// RunNASIS runs the IS proxy (iterations × bin/exchange/verify/sort)
// over the given stack on 2 nodes × 2 processes and reports the
// measured loop time (max across ranks). keysPerRank of 1<<18 gives
// ≈1 MiB per rank per exchange.
func RunNASIS(s Stack, name string, keysPerRank, iterations int) NASISResult {
	tb := newTestbed(s, 2)
	p := tb.w.Size()
	perRank := keysPerRank * 4 // bytes
	var elapsed sim.Duration
	verified := 0
	ok := true
	tb.w.Spawn(func(r *mpi.Rank) {
		// Deterministic key generation (keys in [0, 1<<20)).
		keys := make([]uint32, keysPerRank)
		st := uint32(r.ID*2654435761 + 12345)
		var genSum float64
		for i := range keys {
			st = st*1664525 + 1013904223
			keys[i] = st % (1 << 20)
			genSum += float64(keys[i])
		}
		sbuf := r.Host.Alloc(perRank)
		rbuf := r.Host.Alloc(perRank * p) // worst-case skew headroom
		stat := r.Host.Alloc(16)          // [count, sum] float64s
		globalGen := r.Host.Alloc(16)
		globalRecv := r.Host.Alloc(16)
		timeBuf := r.Host.Alloc(8)
		timesBuf := r.Host.Alloc(8 * p)
		// Global census of the generated keys: the reference every
		// iteration's exchange is checked against.
		putF64(stat, 0, float64(keysPerRank))
		putF64(stat, 1, genSum)
		r.Allreduce(stat, globalGen, 16)
		r.Barrier()
		t0 := r.Now()
		var recvKeys []uint32
		for it := 0; it < iterations; it++ {
			// Bin keys by owning rank (range partitioning).
			r.Compute(perRank) // histogram + scatter pass
			bins := make([][]uint32, p)
			for _, k := range keys {
				owner := int(k) * p / (1 << 20)
				bins[owner] = append(bins[owner], k)
			}
			soffs, scounts := make([]int, p), make([]int, p)
			off := 0
			for dst := 0; dst < p; dst++ {
				soffs[dst] = off
				scounts[dst] = 4 * len(bins[dst])
				for i, k := range bins[dst] {
					binary.LittleEndian.PutUint32(sbuf.Bytes()[off+4*i:], k)
				}
				off += scounts[dst]
			}
			// Exchange bin sizes, then the keys themselves.
			countBuf := r.Host.Alloc(8 * p)
			countOut := r.Host.Alloc(8 * p)
			for dst := 0; dst < p; dst++ {
				binary.LittleEndian.PutUint64(countBuf.Bytes()[8*dst:], uint64(scounts[dst]))
			}
			r.Alltoall(countBuf, 8, countOut)
			roffs, rcounts := make([]int, p), make([]int, p)
			off = 0
			for src := 0; src < p; src++ {
				rcounts[src] = int(binary.LittleEndian.Uint64(countOut.Bytes()[8*src:]))
				roffs[src] = off
				off += rcounts[src]
			}
			r.Alltoallv(sbuf, soffs, scounts, rbuf, roffs, rcounts)
			// Census of what actually arrived, reduced across ranks:
			// count and sum must match the generated keys exactly, or
			// the exchange corrupted payload bytes somewhere.
			total := off / 4
			var recvSum float64
			recvKeys = recvKeys[:0]
			for i := 0; i < total; i++ {
				k := binary.LittleEndian.Uint32(rbuf.Bytes()[4*i:])
				recvSum += float64(k)
				recvKeys = append(recvKeys, k)
			}
			putF64(stat, 0, float64(total))
			putF64(stat, 1, recvSum)
			r.Allreduce(stat, globalRecv, 16)
			if getF64(globalRecv, 0) != getF64(globalGen, 0) ||
				getF64(globalRecv, 1) != getF64(globalGen, 1) {
				ok = false
			}
			if r.ID == 0 {
				verified += int(getF64(globalRecv, 0))
			}
			// Local sort of received keys.
			sort.Slice(recvKeys, func(a, b int) bool { return recvKeys[a] < recvKeys[b] })
			r.Compute(off * 2) // counting-sort pass over received keys
		}
		// Collect every rank's loop time; the reported run time is
		// the slowest rank, like NPB's timer reduction.
		putF64(timeBuf, 0, float64(r.Now()-t0))
		r.Gather(0, timeBuf, 8, timesBuf)
		if r.ID == 0 {
			for i := 0; i < p; i++ {
				if d := sim.Duration(getF64(timesBuf, i)); d > elapsed {
					elapsed = d
				}
			}
		}
		// Verify: every received key belongs to this rank's range.
		lo := uint32(r.ID * (1 << 20) / p)
		hi := uint32((r.ID + 1) * (1 << 20) / p)
		for _, k := range recvKeys {
			if k < lo || k >= hi {
				ok = false
			}
		}
	})
	if blocked := tb.c.Run(); blocked != 0 {
		panic("figures: NAS IS deadlocked")
	}
	if !ok {
		panic("figures: NAS IS key distribution or Allreduce census incorrect")
	}
	return NASISResult{Stack: name, TimeMs: float64(elapsed) / 1e6, KeysVerified: verified}
}

func putF64(b *cluster.Buffer, i int, v float64) {
	binary.LittleEndian.PutUint64(b.Bytes()[8*i:], math.Float64bits(v))
}

func getF64(b *cluster.Buffer, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[8*i:]))
}

// NASIS compares the IS proxy across the three stacks of Section IV,
// running the three (independent) stack proxies concurrently.
func NASIS(keysPerRank, iterations int) []NASISResult {
	cases := []struct {
		s    Stack
		name string
	}{
		{Stack{Kind: "mxoe", MXRegCache: true}, "MXoE"},
		{Stack{Kind: "openmx", OMX: omxCfg(false)}, "Open-MX"},
		{Stack{Kind: "openmx", OMX: omxCfg(true)}, "Open-MX I/OAT"},
	}
	jobs := make([]runner.Job, len(cases))
	for i, c := range cases {
		c := c
		jobs[i] = runner.Job{
			Label: "nasis/" + c.name,
			Key:   runner.Key("nasis", c.s, c.name, keysPerRank, iterations),
			Run:   func() (any, error) { return RunNASIS(c.s, c.name, keysPerRank, iterations), nil },
		}
	}
	return sweep[NASISResult](jobs)
}

func omxCfg(ioat bool) openmx.Config {
	return openmx.Config{RegCache: true, IOAT: ioat, IOATShm: ioat}
}

// RenderNASIS formats the comparison.
func RenderNASIS(rs []NASISResult) string {
	out := "# NAS IS proxy (bucket exchange, 2 nodes x 2 ppn)\n"
	var base float64
	for _, r := range rs {
		if r.Stack == "Open-MX" {
			base = r.TimeMs
		}
	}
	for _, r := range rs {
		rel := ""
		if base > 0 && r.Stack != "Open-MX" {
			rel = fmt.Sprintf("  (%+.0f%% vs Open-MX)", (base/r.TimeMs-1)*100)
		}
		out += fmt.Sprintf("%-14s %8.2f ms%s\n", r.Stack, r.TimeMs, rel)
	}
	if len(rs) > 0 && rs[0].KeysVerified > 0 {
		out += fmt.Sprintf("(per stack: %d key arrivals verified via Alltoallv + Allreduce census)\n",
			rs[0].KeysVerified)
	}
	return out
}
