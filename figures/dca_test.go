package figures

import (
	"reflect"
	"testing"
)

func dcaFind(pts []DCAPoint, mode, place string, size int) DCAPoint {
	for _, p := range pts {
		if p.Mode == mode && p.Place == place && p.Bytes == size {
			return p
		}
	}
	panic("dca point missing")
}

// TestDCAShape pins the figure's headline claims: with a consumer
// that actually reads its payloads, cache locality beats the raw
// offload on the interrupt core (memcpy > I/OAT in goodput), DCA
// extends that win (DCA >= memcpy) while costing less host CPU than
// the plain bottom half, and once the consumer moves cross-socket —
// locality gone — the offload's goodput win returns.
func TestDCAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const size = 256 << 10
	pts := dcaSweepOver([]int{size}, DCAIters)

	mem := dcaFind(pts, "memcpy", "same-core", size)
	io := dcaFind(pts, "I/OAT", "same-core", size)
	dca := dcaFind(pts, "DCA", "same-core", size)
	if mem.GoodputMiBps <= io.GoodputMiBps {
		t.Errorf("same-core: memcpy goodput %.1f not above I/OAT %.1f (warm consume should win)",
			mem.GoodputMiBps, io.GoodputMiBps)
	}
	if dca.GoodputMiBps < mem.GoodputMiBps {
		t.Errorf("same-core: DCA goodput %.1f below memcpy %.1f", dca.GoodputMiBps, mem.GoodputMiBps)
	}
	// The mechanism, not just the outcome: the offloaded payload is
	// DMA-cold at the consumer while the copied one is cache-warm.
	if mem.ConsumeGiBps <= 2*io.ConsumeGiBps {
		t.Errorf("same-core: memcpy consume rate %.2f GiB/s not clearly above DMA-cold %.2f",
			mem.ConsumeGiBps, io.ConsumeGiBps)
	}
	// I/OAT keeps the availability win regardless; DCA cheapens the
	// bottom half (its source is LLC-resident, not snooped from DRAM).
	if io.HostCPUPerMB >= mem.HostCPUPerMB {
		t.Errorf("same-core: I/OAT host CPU %.1f us/MiB not below memcpy %.1f",
			io.HostCPUPerMB, mem.HostCPUPerMB)
	}
	if dca.HostCPUPerMB >= mem.HostCPUPerMB {
		t.Errorf("same-core: DCA host CPU %.1f us/MiB not below memcpy %.1f",
			dca.HostCPUPerMB, mem.HostCPUPerMB)
	}

	// Cross-socket the consumer snoops the copying core's cache from
	// the other die — locality is gone and the offload wins again.
	memX := dcaFind(pts, "memcpy", "cross-socket", size)
	ioX := dcaFind(pts, "I/OAT", "cross-socket", size)
	if ioX.GoodputMiBps <= memX.GoodputMiBps {
		t.Errorf("cross-socket: I/OAT goodput %.1f not above memcpy %.1f",
			ioX.GoodputMiBps, memX.GoodputMiBps)
	}

	for _, p := range pts {
		if p.Delivered != p.Iters {
			t.Errorf("%s/%s: only %d/%d payloads verified", p.Place, p.Mode, p.Delivered, p.Iters)
		}
		// Every variant posts the same buffers repeatedly: the
		// registration cache must be amortizing the pins.
		if p.RegHitPct <= 50 {
			t.Errorf("%s/%s: regcache hit rate %.1f%% not amortizing", p.Place, p.Mode, p.RegHitPct)
		}
	}
}

// TestParallelMatchesSerialDCA: the determinism guardrail for the new
// figure — per-point clusters share nothing, so sharding the sweep
// across workers must change nothing but wall time.
func TestParallelMatchesSerialDCA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sizes := []int{64 << 10}
	run := func(workers int) (pts []DCAPoint) {
		withPool(workers, func() { pts = dcaSweepOver(sizes, 3) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel dca sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	if again := run(1); !reflect.DeepEqual(serial, again) {
		t.Errorf("dca sweep not run-to-run deterministic:\nfirst:  %+v\nsecond: %+v",
			serial, again)
	}
}
