package figures

import (
	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/runner"
)

// pool overrides the pool figure sweeps run on; nil selects the
// process-wide shared pool (GOMAXPROCS workers plus a shared result
// cache, so figures that repeat a configuration — Figures 3 and 8
// share three ping-pong curves — simulate it once per process). The
// override is lazy so runner.Default() is not materialized at package
// init, before main can configure progress reporting. Tests swap it
// via setPool to compare serial and parallel execution.
var pool *runner.Pool

// activePool resolves the pool sweeps run on.
func activePool() *runner.Pool {
	if pool != nil {
		return pool
	}
	return runner.Default()
}

// setPool replaces the figures pool and returns the previous override
// (nil = the shared default), for tests that need a pinned worker
// count or a private cache.
func setPool(p *runner.Pool) (old *runner.Pool) {
	old, pool = pool, p
	return old
}

// sweep runs the jobs on the figures pool and unwraps the values in
// job order. Figure generators have no error returns — a failing
// point means the reproduction is broken — so the first job error
// (including captured panics) panics here, after every other point
// has finished.
func sweep[T any](jobs []runner.Job) []T {
	return runner.Values[T](activePool().Run(jobs...))
}

// Testbed builds the paper's two-node testbed (block rank placement,
// ppn ranks per node) over the given stack and returns the cluster
// and MPI world, ready for an imb.Runner. Exported so the IMB command
// and benchmarks sweep the same worlds the figures do.
func Testbed(s Stack, ppn int) (*cluster.Cluster, *mpi.World) {
	tb := newTestbed(s, ppn)
	return tb.c, tb.w
}

// TestbedN is Testbed with an explicit node count: 2 nodes connect
// back to back, more through a store-and-forward Ethernet switch.
// The collective figures and omx-imb -nodes sweep these larger
// worlds.
func TestbedN(s Stack, nodes, ppn int) (*cluster.Cluster, *mpi.World) {
	tb := newTestbedN(s, nodes, ppn)
	return tb.c, tb.w
}
