package figures

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/metrics"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// Fig10 regenerates Figure 10: Open-MX one-copy shared-memory
// ping-pong throughput with
//
//   - memcpy between two processes on the same dual-core subchip
//     (shared L2: fast until the working set exceeds the cache),
//   - memcpy between processes on different sockets,
//   - blocking I/OAT copies (threshold at the 32 kB large-message
//     boundary, as in the measured figure).
func Fig10() *metrics.Table {
	t := metrics.NewTable(
		"Fig. 10: Open-MX one-copy shared-memory ping-pong",
		"msgsize", "MiB/s")
	sizes := WideSizes()
	cases := []struct {
		name  string
		cfg   openmx.Config
		coreA int
		coreB int
	}{
		{"Memcpy on the same dual-core subchip", openmx.Config{}, 0, 1},
		{"Memcpy between different processor sockets", openmx.Config{}, 0, 4},
		{"I/OAT offloaded synchronous copy", openmx.Config{IOATShm: true}, 0, 4},
	}
	// Every (case, size) point builds its own single-host cluster, so
	// the whole figure shards across the pool as one flat sweep.
	var jobs []runner.Job
	for _, c := range cases {
		for _, size := range sizes {
			c, size := c, size
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("fig10/%s/%s", c.name, sizeName(size)),
				Key:   runner.Key("fig10-shm", c.cfg, c.coreA, c.coreB, size),
				Run:   func() (any, error) { return shmPingPong(c.cfg, c.coreA, c.coreB, size), nil },
			})
		}
	}
	ys := sweep[float64](jobs)
	for ci, c := range cases {
		s := t.AddSeries(c.name)
		for si, size := range sizes {
			s.Add(float64(size), ys[ci*len(sizes)+si])
		}
	}
	return t
}

// shmPingPong measures an intra-node ping-pong between two endpoints
// on the given cores and returns MiB/s (size over half round trip).
func shmPingPong(cfg openmx.Config, coreA, coreB, size int) float64 {
	c := cluster.New(nil)
	h := c.NewHost("node0")
	st := openmx.Attach(h, cfg)
	ea := st.Open(0, coreA)
	eb := st.Open(1, coreB)
	bufA0, bufA1 := h.Alloc(size), h.Alloc(size)
	bufB0, bufB1 := h.Alloc(size), h.Alloc(size)
	iters := 8
	if size >= 1<<20 {
		iters = 4
	}
	var t0, t1 sim.Time
	c.Go("procB", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			r := eb.IRecv(p, 1, ^uint64(0), bufB0, 0, size)
			eb.Wait(p, r)
			bufB1.Produce(coreB)
			s := eb.ISend(p, ea.Addr(), 2, bufB1, 0, size)
			eb.Wait(p, s)
		}
	})
	c.Go("procA", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			if i == 1 {
				t0 = p.Now()
			}
			bufA0.Produce(coreA)
			s := ea.ISend(p, eb.Addr(), 1, bufA0, 0, size)
			ea.Wait(p, s)
			r := ea.IRecv(p, 2, ^uint64(0), bufA1, 0, size)
			ea.Wait(p, r)
		}
		t1 = p.Now()
	})
	if blocked := c.Run(); blocked != 0 {
		panic("figures: Fig10 ping-pong deadlocked")
	}
	half := float64(t1-t0) / float64(2*iters)
	return float64(size) / 1024 / 1024 / (half / 1e9)
}
