package figures

import (
	"fmt"
	"strings"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The multi-NIC figure (beyond the paper): the pull protocol was
// sized for one NIC — two pipelined blocks of eight fragments. With a
// host's endpoint striped across an aggregated link, that fixed
// window can only keep two lanes busy at a time no matter how many
// cables are plugged in, so aggregate goodput plateaus; widening the
// window to two blocks per NIC (the Attach default on multi-NIC
// hosts) lets every lane carry a block and goodput scales with the
// aggregate wire. The sweep measures ping-pong goodput across message
// size x {1,2,4} NICs x {memcpy, I/OAT} receive copies, each window
// policy separately, plus the per-NIC transmit balance from the
// per-NIC counters.

// MultiNICCounts returns the swept NIC counts.
func MultiNICCounts() []int { return []int{1, 2, 4} }

// MultiNICSizes returns the swept message sizes — all above the
// rendezvous threshold, so every transfer exercises the pull window.
func MultiNICSizes() []int { return []int{128 << 10, 512 << 10, 2 << 20, 8 << 20} }

// MultiNICIters is the ping-pong iteration count per point.
const MultiNICIters = 6

// multiNICWindows names the compared pull-window policies: the
// paper's fixed two blocks, and two blocks per NIC.
func multiNICWindows() []string { return []string{"fixed", "per-NIC"} }

// multiNICModes are the compared receive-copy engines.
func multiNICModes() []string { return []string{"memcpy", "I/OAT"} }

// multiNICIRQCores steers NIC interrupts away from the benchmark
// cores (ranks run on core 2): one bottom half per NIC, each in its
// own L2 domain.
var multiNICIRQCores = []int{0, 3, 5, 6}

// MultiNICPoint is one measured (mode, window, NIC count, size)
// combination.
type MultiNICPoint struct {
	Mode   string // receive copy: "memcpy" or "I/OAT"
	Window string // pull window: "fixed" (2 blocks) or "per-NIC" (2 x NICs)
	NICs   int
	Bytes  int
	Iters  int

	Delivered    int     // round trips with verified payloads in both directions
	GoodputMiBps float64 // one-way payload goodput over the whole run
	// LaneBalance is min/max transmitted frames across the sender
	// host's NICs (1.00 = perfectly balanced striping), from the
	// per-NIC NetStats counters.
	LaneBalance float64
}

// multiNICConfig builds the Open-MX configuration of one point. The
// "per-NIC" window leaves PullBlocks unset, taking the Attach default
// of two blocks per NIC; "fixed" pins the paper's two blocks total.
func multiNICConfig(mode, window string) openmx.Config {
	cfg := openmx.Config{RegCache: true, IOAT: mode == "I/OAT"}
	if window == "fixed" {
		cfg.PullBlocks = 2
	}
	return cfg
}

// multiNICPoint runs one point on a fresh two-host testbed with nics
// aggregated cables.
func multiNICPoint(mode, window string, nics, size, iters int) MultiNICPoint {
	c := cluster.New(nil)
	irq := cluster.NICIRQCores(multiNICIRQCores...)
	a := c.NewHost("node0", cluster.MultiNIC(nics, irq))
	b := c.NewHost("node1", cluster.MultiNIC(nics, irq))
	cluster.Link(a, b)
	cfg := multiNICConfig(mode, window)
	ea := openmx.Attach(a, cfg).Open(0, 2)
	eb := openmx.Attach(b, cfg).Open(0, 2)

	sendA, recvA := a.Alloc(size), a.Alloc(size)
	sendB, recvB := b.Alloc(size), b.Alloc(size)

	delivered := 0
	var elapsed sim.Time
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size)
			eb.Wait(p, r)
			sendB.Fill(byte(2*i + 2))
			sendB.Produce(2)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			sendA.Fill(byte(2*i + 1))
			sendA.Produce(2)
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			ea.Wait(p, rs)
			ea.Wait(p, rr)
			if cluster.Equal(sendB, recvA) && cluster.Equal(sendA, recvB) {
				delivered++
			}
			elapsed = p.Now()
		}
	})
	c.RunFor(60 * sim.Second)
	defer c.Close()

	pt := MultiNICPoint{
		Mode: mode, Window: window, NICs: nics, Bytes: size, Iters: iters,
		Delivered: delivered,
	}
	if elapsed > 0 {
		pt.GoodputMiBps = float64(delivered*size) / (1 << 20) / elapsed.Seconds()
	}
	// Striping balance from the per-NIC counters of the initiating
	// host (data frames answer pulls, so both hosts transmit bulk).
	for _, h := range c.NetStats().Hosts {
		if h.Host != "node0" {
			continue
		}
		minTx, maxTx := int64(-1), int64(0)
		for _, n := range h.NICs {
			if minTx < 0 || n.TxFrames < minTx {
				minTx = n.TxFrames
			}
			if n.TxFrames > maxTx {
				maxTx = n.TxFrames
			}
		}
		if maxTx > 0 {
			pt.LaneBalance = float64(minTx) / float64(maxTx)
		}
	}
	return pt
}

// MultiNICSweep measures every (mode, window, NIC count, size) point
// as an independent runner job, in sweep order (mode outermost, then
// window, then size, then NIC count).
func MultiNICSweep() []MultiNICPoint {
	return multiNICSweepOver(MultiNICCounts(), MultiNICSizes(), MultiNICIters)
}

// multiNICSweepOver shards an arbitrary (NICs, size) grid across the
// figures pool (reduced grids keep the guardrail tests cheap).
func multiNICSweepOver(counts, sizes []int, iters int) []MultiNICPoint {
	var jobs []runner.Job
	for _, mode := range multiNICModes() {
		for _, window := range multiNICWindows() {
			for _, size := range sizes {
				for _, nics := range counts {
					mode, window, size, nics := mode, window, size, nics
					jobs = append(jobs, runner.Job{
						Label: fmt.Sprintf("multinic/%s/%s/%s/%dnic", mode, window, sizeName(size), nics),
						Key:   runner.Key("multinic", mode, window, nics, size, iters),
						Run: func() (any, error) {
							return multiNICPoint(mode, window, nics, size, iters), nil
						},
					})
				}
			}
		}
	}
	return sweep[MultiNICPoint](jobs)
}

// RenderMultiNIC formats the sweep: one row per (mode, window, size)
// with goodput per NIC count, the 4-NIC speedup over 1 NIC, and the
// striping balance at the widest aggregation.
func RenderMultiNIC(points []MultiNICPoint) string {
	byKey := make(map[string]MultiNICPoint, len(points))
	key := func(mode, window string, nics, size int) string {
		return fmt.Sprintf("%s/%s/%d/%d", mode, window, nics, size)
	}
	for _, p := range points {
		byKey[key(p.Mode, p.Window, p.NICs, p.Bytes)] = p
	}
	counts := MultiNICCounts()
	var b strings.Builder
	fmt.Fprintf(&b, "# link-aggregated striping: ping-pong goodput across NIC count (%d iters, rendezvous pull, regcache)\n", MultiNICIters)
	fmt.Fprintf(&b, "# window: fixed = 2 pull blocks total (the paper's single-NIC sizing); per-NIC = 2 blocks x NICs\n")
	fmt.Fprintf(&b, "%-7s %-8s %8s", "copy", "window", "msgsize")
	for _, n := range counts {
		fmt.Fprintf(&b, " %7d-NIC", n)
	}
	fmt.Fprintf(&b, " %7s %9s %10s\n", "x4/x1", "lane-bal", "delivered")
	for _, mode := range multiNICModes() {
		for _, window := range multiNICWindows() {
			for _, size := range MultiNICSizes() {
				fmt.Fprintf(&b, "%-7s %-8s %8s", mode, window, sizeName(size))
				var first, last MultiNICPoint
				delivered, iters := 0, 0
				for i, n := range counts {
					p, ok := byKey[key(mode, window, n, size)]
					if !ok {
						continue
					}
					fmt.Fprintf(&b, " %11.2f", p.GoodputMiBps)
					if i == 0 {
						first = p
					}
					last = p
					delivered += p.Delivered
					iters += p.Iters
				}
				speedup := 0.0
				if first.GoodputMiBps > 0 {
					speedup = last.GoodputMiBps / first.GoodputMiBps
				}
				fmt.Fprintf(&b, " %7.2f %9.2f %7d/%d\n", speedup, last.LaneBalance, delivered, iters)
			}
		}
	}
	return b.String()
}
