package figures

import (
	"reflect"
	"testing"

	"omxsim/cluster"
	"omxsim/metrics"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The parallel-determinism guardrail: sharding a sweep across workers
// must change nothing but wall time. Each figure point builds its own
// isolated testbed and sim.Engine, so a serial one-worker pool and a
// heavily parallel pool must produce bit-identical metrics; any
// difference means simulations leaked state into each other.

// withPool runs fn with the figures pool replaced by a private pool
// of the given worker count (and its own cache, so runs cannot
// satisfy each other from the shared process cache).
func withPool(workers int, fn func()) {
	p := runner.New(runner.Options{Workers: workers, Cache: runner.NewCache()})
	defer setPool(setPool(p))
	fn()
}

func TestParallelMatchesSerialPingPong(t *testing.T) {
	sizes := []int{16, 4096, 256 << 10, 4 << 20}
	curves := []curve{
		{"MX", Stack{Kind: "mxoe", MXRegCache: true}},
		{"Open-MX", Stack{Kind: "openmx", OMX: omxCfg(false)}},
		{"Open-MX I/OAT", Stack{Kind: "openmx", OMX: omxCfg(true)}},
	}
	run := func(workers int) (tab *metrics.Table) {
		withPool(workers, func() { tab = pingPongTable("determinism", curves, sizes) })
		return tab
	}
	serial, parallel := run(1), run(8)
	if !serial.Equal(parallel) {
		t.Errorf("parallel ping-pong table differs from serial:\nserial:\n%s\nparallel:\n%s",
			serial.Render(), parallel.Render())
	}
}

func TestParallelMatchesSerialFig9(t *testing.T) {
	run := func(workers int) (mem, io []Fig9Row) {
		withPool(workers, func() { mem, io = Fig9() })
		return mem, io
	}
	memS, ioS := run(1)
	memP, ioP := run(8)
	if !reflect.DeepEqual(memS, memP) || !reflect.DeepEqual(ioS, ioP) {
		t.Errorf("parallel Fig9 rows differ from serial:\nserial:  %+v %+v\nparallel: %+v %+v",
			memS, ioS, memP, ioP)
	}
}

func TestParallelMatchesSerialFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(workers int) (p Fig12Result) {
		withPool(workers, func() { p = Fig12(128<<10, 1) })
		return p
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel Fig12 panel differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestParallelMatchesSerialLoss: the determinism guardrail extended
// to impaired sweeps — seeded loss injection must be exactly as
// reproducible as a clean run, so sharding the loss figure across
// workers changes nothing but wall time.
func TestParallelMatchesSerialLoss(t *testing.T) {
	rates := []float64{0, 0.03}
	sizes := []int{64 << 10}
	run := func(workers int) (pts []LossPoint) {
		withPool(workers, func() { pts = lossSweepOver(rates, sizes, 10) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel loss sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	// And run-to-run: a second serial sweep must be bit-identical.
	if again := run(1); !reflect.DeepEqual(serial, again) {
		t.Errorf("loss sweep not run-to-run deterministic:\nfirst:  %+v\nsecond: %+v",
			serial, again)
	}
}

// TestParallelMatchesSerialMultiNIC: the determinism guardrail for
// the link-aggregation figure — multi-NIC testbeds, striped lanes and
// per-lane I/OAT channels included, must shard across workers with no
// effect but wall time, and repeat run-to-run bit-identically.
func TestParallelMatchesSerialMultiNIC(t *testing.T) {
	counts := []int{1, 4}
	sizes := []int{512 << 10}
	run := func(workers int) (pts []MultiNICPoint) {
		withPool(workers, func() { pts = multiNICSweepOver(counts, sizes, 4) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel multinic sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	if again := run(1); !reflect.DeepEqual(serial, again) {
		t.Errorf("multinic sweep not run-to-run deterministic:\nfirst:  %+v\nsecond: %+v",
			serial, again)
	}
}

// Test1NICMatchesLegacyPath: a 1-NIC host built through the new
// MultiNIC machinery must measure bit-identically to one built
// through the pre-aggregation API (plain NewHost, default config) —
// the striping layer is provably a no-op on single-NIC hosts, which
// is also why the committed golden only grew a new section.
func Test1NICMatchesLegacyPath(t *testing.T) {
	size, iters := 512<<10, 4
	for _, mode := range multiNICModes() {
		// New machinery: MultiNIC(1) host, per-NIC window default.
		striped := multiNICPoint(mode, "per-NIC", 1, size, iters)
		// Legacy shape: plain hosts, plain link, untouched PullBlocks.
		legacy := legacy1NICPoint(t, mode, size, iters)
		if striped.GoodputMiBps != legacy.GoodputMiBps || striped.Delivered != legacy.Delivered {
			t.Errorf("%s: MultiNIC(1) path measured %.6f MiB/s (%d delivered), legacy path %.6f (%d) — must be bit-identical",
				mode, striped.GoodputMiBps, striped.Delivered, legacy.GoodputMiBps, legacy.Delivered)
		}
	}
}

// legacy1NICPoint mirrors multiNICPoint through the original
// single-NIC API: no host options, no window override.
func legacy1NICPoint(t *testing.T, mode string, size, iters int) MultiNICPoint {
	t.Helper()
	c := cluster.New(nil)
	a, b := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(a, b)
	cfg := openmx.Config{RegCache: true, IOAT: mode == "I/OAT"}
	ea := openmx.Attach(a, cfg).Open(0, 2)
	eb := openmx.Attach(b, cfg).Open(0, 2)
	sendA, recvA := a.Alloc(size), a.Alloc(size)
	sendB, recvB := b.Alloc(size), b.Alloc(size)
	delivered := 0
	var elapsed sim.Time
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size)
			eb.Wait(p, r)
			sendB.Fill(byte(2*i + 2))
			sendB.Produce(2)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			sendA.Fill(byte(2*i + 1))
			sendA.Produce(2)
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			ea.Wait(p, rs)
			ea.Wait(p, rr)
			if cluster.Equal(sendB, recvA) && cluster.Equal(sendA, recvB) {
				delivered++
			}
			elapsed = p.Now()
		}
	})
	c.RunFor(60 * sim.Second)
	defer c.Close()
	pt := MultiNICPoint{Mode: mode, NICs: 1, Bytes: size, Iters: iters, Delivered: delivered}
	if elapsed > 0 {
		pt.GoodputMiBps = float64(delivered*size) / (1 << 20) / elapsed.Seconds()
	}
	return pt
}

// TestSharedCurveCache: regenerating Figures 3 and 8 on one pool
// simulates their three shared curves once — the repeated-sweep
// optimization the runner cache exists for.
func TestSharedCurveCache(t *testing.T) {
	cache := runner.NewCache()
	p := runner.New(runner.Options{Workers: 4, Cache: cache})
	defer setPool(setPool(p))
	f3 := Fig3()
	_, missesAfter3 := cache.Stats()
	f8 := Fig8()
	hits, misses := cache.Stats()
	if missesAfter3 != 3 {
		t.Fatalf("Fig3 simulated %d curves, want 3", missesAfter3)
	}
	// Fig8 adds only the I/OAT curve; MX, Open-MX and the no-copy
	// prediction come from the cache.
	if misses != 4 || hits < 3 {
		t.Errorf("after Fig8: %d misses / %d hits, want 4 misses and ≥3 hits", misses, hits)
	}
	for _, name := range []string{"MX", "Open-MX", "Open-MX ignoring BH receive copy"} {
		s3, s8 := f3.Get(name), f8.Get(name)
		if !s3.Equal(s8) {
			t.Errorf("shared curve %q differs between Fig3 and Fig8", name)
		}
		// Equal values, distinct objects: tables must not alias the
		// cache, or a caller mutating one figure corrupts the other.
		if s3 == s8 {
			t.Errorf("shared curve %q is the same *Series in both tables (cache aliasing)", name)
		}
	}
}
