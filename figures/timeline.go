package figures

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/cluster"
	"omxsim/internal/core"
	"omxsim/internal/proto"
	"omxsim/openmx"
	"omxsim/sim"
)

// Timeline reproduces Figures 5 and 6: the receive timeline of a
// five-fragment large message without and with I/OAT offload, rendered
// as ASCII rows (the CPU running the bottom half, and the I/OAT
// engine).
//
// Without I/OAT, each fragment is processed and copied before the CPU
// is released (Figure 5). With I/OAT, each callback only submits the
// asynchronous copy and releases the CPU; the last fragment waits for
// the engine before notifying user space (Figure 6).
func Timeline(withIOAT bool) string {
	title := "Fig. 5: 5-fragment large receive, memcpy in the bottom half"
	if withIOAT {
		title = "Fig. 6: 5-fragment large receive, I/OAT overlapped copies"
	}
	return renderTimeline(title, TimelineEvents(withIOAT))
}

// TimelineEvents runs the five-fragment large receive of Figures 5/6
// and returns the receiver stack's full trace stream (receive-path
// spans, transport spans, counters). Both the ASCII Timeline and the
// Chrome trace-event export render from this one capture, so the two
// views can never disagree on span boundaries.
func TimelineEvents(withIOAT bool) []core.TraceEvent {
	const frags = 5
	msgSize := frags * proto.LargeFragSize

	c := cluster.New(nil)
	n0, n1 := c.NewHost("sender"), c.NewHost("receiver")
	cluster.Link(n0, n1)
	cfg := openmx.Config{RegCache: true}
	if withIOAT {
		cfg.IOAT = true
		cfg.IOATMinMsg = msgSize // the 5-fragment figure message qualifies
	}
	s0 := openmx.Attach(n0, openmx.Config{RegCache: true})
	s1 := openmx.Attach(n1, cfg)

	var events []core.TraceEvent
	s1.Inner().Trace = func(ev core.TraceEvent) { events = append(events, ev) }

	e0, e1 := s0.Open(0, 2), s1.Open(0, 2)
	src, dst := n0.Alloc(msgSize), n1.Alloc(msgSize)
	src.Fill(5)
	c.Go("recv", func(p *sim.Proc) {
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, msgSize)
		e1.Wait(p, r)
	})
	c.Go("send", func(p *sim.Proc) {
		r := e0.ISend(p, e1.Addr(), 1, src, 0, msgSize)
		e0.Wait(p, r)
	})
	if c.Run() != 0 {
		panic("figures: timeline run deadlocked")
	}
	if !cluster.Equal(src, dst) {
		panic("figures: timeline transfer corrupted")
	}
	return events
}

// timelineKinds are the receive-path span kinds the ASCII timeline
// renders; transport spans and counters from the wider trace stream
// are excluded so they cannot stretch the time axis.
var timelineKinds = map[string]bool{
	"process": true, "memcpy": true, "submit": true,
	"wait": true, "notify": true, "dma-copy": true,
}

// renderTimeline draws span rows scaled to the terminal width.
func renderTimeline(title string, events []core.TraceEvent) string {
	kept := events[:0:0]
	for _, ev := range events {
		if timelineKinds[ev.Kind] {
			kept = append(kept, ev)
		}
	}
	events = kept
	if len(events) == 0 {
		return title + "\n(no events)\n"
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	t0, t1 := events[0].Start, events[0].End
	for _, ev := range events {
		if ev.End > t1 {
			t1 = ev.End
		}
	}
	const width = 100
	scale := func(t sim.Time) int {
		if t1 == t0 {
			return 0
		}
		c := int(float64(t-t0) / float64(t1-t0) * float64(width-1))
		return min(c, width-1)
	}
	rows := map[string][]byte{}
	rowOrder := []string{"CPU", "I/OAT"}
	for _, name := range rowOrder {
		rows[name] = []byte(strings.Repeat(".", width))
	}
	put := func(row string, ev core.TraceEvent, mark byte) {
		r := rows[row]
		a, b := scale(ev.Start), scale(ev.End)
		if b <= a {
			b = a + 1
		}
		for i := a; i < b && i < width; i++ {
			if r[i] == '.' {
				r[i] = mark
			}
		}
		// Label with the fragment number at the start where possible.
		if ev.Frag >= 0 && a < width {
			r[a] = byte('1' + ev.Frag%9)
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case "process":
			put("CPU", ev, 'P')
		case "memcpy":
			put("CPU", ev, 'C')
		case "submit":
			put("CPU", ev, 'S')
		case "wait":
			put("CPU", ev, 'W')
		case "notify":
			put("CPU", ev, 'N')
		case "dma-copy":
			put("I/OAT", ev, '=')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "span: %v .. %v (%.1f µs)\n", t0, t1, float64(t1-t0)/1000)
	for _, name := range rowOrder {
		if name == "I/OAT" && !strings.ContainsAny(string(rows[name]), "=123456789") {
			continue
		}
		fmt.Fprintf(&b, "%-6s %s\n", name, rows[name])
	}
	b.WriteString("key: digit=fragment start, P=process, C=memcpy, S=I/OAT submit, W=wait for engine, N=notify user, ==engine copy\n")
	return b.String()
}
