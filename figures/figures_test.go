package figures

import (
	"testing"
)

// The tests in this file are the reproduction guardrails: each figure
// must show the paper's qualitative result (who wins, where the
// crossovers fall, roughly what factors) or the reproduction is
// broken.

func TestMicroNumbersMatchPaper(t *testing.T) {
	m := MicroNumbers()
	if m.SubmitNs != 350 {
		t.Errorf("submission = %.0f ns, paper: ≈350", m.SubmitNs)
	}
	if m.MemcpyColdGiBps < 1.4 || m.MemcpyColdGiBps > 1.8 {
		t.Errorf("cold memcpy = %.2f GiB/s, paper: ≈1.6", m.MemcpyColdGiBps)
	}
	if m.IOAT4kGiBps < 2.2 || m.IOAT4kGiBps > 2.6 {
		t.Errorf("I/OAT 4k chunks = %.2f GiB/s, paper: ≈2.4", m.IOAT4kGiBps)
	}
	if m.BreakEvenColdB < 400 || m.BreakEvenColdB > 800 {
		t.Errorf("cold break-even = %d B, paper: ≈600", m.BreakEvenColdB)
	}
	if m.BreakEvenCachedB < 1200 || m.BreakEvenCachedB > 3000 {
		t.Errorf("cached break-even = %d B, paper: ≈2k", m.BreakEvenCachedB)
	}
}

func TestFig7Shape(t *testing.T) {
	tab := Fig7()
	const big = 1 << 20
	m4, _ := tab.Get("Memcpy - 4kB chunks (page)").At(big)
	i4, _ := tab.Get("I/OAT Copy - 4kB chunks (page)").At(big)
	i1, _ := tab.Get("I/OAT Copy - 1kB chunks").At(big)
	i256, _ := tab.Get("I/OAT Copy - 256B chunks").At(big)
	m256, _ := tab.Get("Memcpy - 256B chunks").At(big)
	// Paper: with 4 kB chunks I/OAT sustains ≈2.4 GiB/s vs memcpy
	// ≈1.5; at 1 kB they are comparable; at 256 B I/OAT is far worse.
	if i4 < m4*1.4 || i4 < 2200 {
		t.Errorf("1MB/4k: ioat=%.0f memcpy=%.0f, want ioat ≈2400 ≈1.6× memcpy", i4, m4)
	}
	if i1 < m4*0.75 || i1 > m4*1.25 {
		t.Errorf("1MB/1k: ioat=%.0f vs memcpy=%.0f, want comparable", i1, m4)
	}
	if i256 > m256*0.6 {
		t.Errorf("1MB/256B: ioat=%.0f vs memcpy=%.0f, want ioat well below", i256, m256)
	}
	// Small total sizes should not favour I/OAT at all.
	iSmall, _ := tab.Get("I/OAT Copy - 4kB chunks (page)").At(1024)
	mSmall, _ := tab.Get("Memcpy - 4kB chunks (page)").At(1024)
	if iSmall > mSmall {
		t.Errorf("1kB total: ioat=%.0f above memcpy=%.0f", iSmall, mSmall)
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3()
	const big = 4 << 20
	mx, _ := tab.Get("MX").At(big)
	omx, _ := tab.Get("Open-MX").At(big)
	nocopy, _ := tab.Get("Open-MX ignoring BH receive copy").At(big)
	// Paper: MX ≈1140, Open-MX saturates near 800, prediction ≈ line rate.
	if mx < 1080 || mx > 1190 {
		t.Errorf("MX large = %.0f MiB/s, want ≈1140", mx)
	}
	if omx < 700 || omx > 900 {
		t.Errorf("Open-MX large = %.0f MiB/s, want ≈800", omx)
	}
	if nocopy < 1100 {
		t.Errorf("no-copy prediction = %.0f MiB/s, want ≈line rate", nocopy)
	}
	// MX must beat Open-MX across the sweep (it does everywhere in
	// the paper's Figure 3).
	for _, pt := range tab.Get("Open-MX").Points {
		if mxv, ok := tab.Get("MX").At(pt.X); ok && pt.Y > mxv*1.05 {
			t.Errorf("at %s Open-MX (%.0f) beats MX (%.0f)", sizeName(int(pt.X)), pt.Y, mxv)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8()
	ioat := tab.Get("Open-MX with DMA copy in BH receive")
	plain := tab.Get("Open-MX")
	nocopy := tab.Get("Open-MX ignoring BH receive copy")
	// Paper: ≥50 % gain for >32 kB messages; I/OAT stays below the
	// prediction at mid sizes but approaches line rate at multi-MB.
	for _, pt := range ioat.Points {
		size := int(pt.X)
		pv, _ := plain.At(pt.X)
		nv, _ := nocopy.At(pt.X)
		if size > 64*1024 && pt.Y < pv*1.2 {
			t.Errorf("at %s: ioat=%.0f < 1.2× plain=%.0f", sizeName(size), pt.Y, pv)
		}
		if pt.Y > nv*1.05 {
			t.Errorf("at %s: ioat=%.0f beats the no-copy bound %.0f", sizeName(size), pt.Y, nv)
		}
	}
	big, _ := ioat.At(4 << 20)
	if big < 1020 {
		t.Errorf("ioat multi-MB = %.0f MiB/s, want ≥ ≈1100 (paper: 1114)", big)
	}
	// Below the rendezvous threshold I/OAT must not change anything.
	sm, _ := ioat.At(4096)
	pm, _ := plain.At(4096)
	if sm < pm*0.9 || sm > pm*1.1 {
		t.Errorf("4kB: ioat=%.0f vs plain=%.0f, want unchanged", sm, pm)
	}
}

func TestFig9Shape(t *testing.T) {
	mem, ioat := Fig9()
	last := len(mem) - 1
	// Paper: memcpy path saturates ≈95 % of a core at multi-MB sizes;
	// I/OAT drops the total to ≈60 %.
	if mem[last].Total() < 85 {
		t.Errorf("memcpy 16MB total CPU = %.0f%%, want ≈95%%", mem[last].Total())
	}
	if ioat[last].Total() > mem[last].Total()-20 {
		t.Errorf("ioat 16MB total CPU = %.0f%% vs memcpy %.0f%%, want big drop",
			ioat[last].Total(), mem[last].Total())
	}
	if ioat[last].Total() < 40 || ioat[last].Total() > 75 {
		t.Errorf("ioat 16MB total CPU = %.0f%%, want ≈60%%", ioat[last].Total())
	}
	// The drop must come from the bottom half, not the driver.
	if ioat[last].BHPct >= mem[last].BHPct {
		t.Errorf("BH share did not drop: %.0f%% -> %.0f%%", mem[last].BHPct, ioat[last].BHPct)
	}
	// 64 kB: paper reports ≈50 % (memcpy) vs ≈42 % (I/OAT) — smaller gap.
	if ioat[0].Total() >= mem[0].Total() {
		t.Errorf("64kB: ioat %.0f%% not below memcpy %.0f%%", ioat[0].Total(), mem[0].Total())
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10()
	sameL2 := tab.Get("Memcpy on the same dual-core subchip")
	cross := tab.Get("Memcpy between different processor sockets")
	ioat := tab.Get("I/OAT offloaded synchronous copy")

	// Shared-L2 memcpy peaks high (paper: ≈6 GiB/s ≈ 6144 MiB/s) for
	// cache-resident sizes, then falls off beyond ≈1 MB.
	peak := sameL2.Max()
	if peak < 3500 {
		t.Errorf("shared-L2 peak = %.0f MiB/s, want multi-GiB/s", peak)
	}
	at64k, _ := sameL2.At(64 << 10)
	at16m, _ := sameL2.At(16 << 20)
	if at16m > at64k/2 {
		t.Errorf("no cache falloff: 64kB=%.0f vs 16MB=%.0f", at64k, at16m)
	}
	// Cross-socket memcpy is ≈1.2 GiB/s for large messages.
	cr16, _ := cross.At(16 << 20)
	if cr16 < 900 || cr16 > 1700 {
		t.Errorf("cross-socket 16MB = %.0f MiB/s, want ≈1200", cr16)
	}
	// I/OAT jumps at the 32 kB threshold and sustains ≈2.3 GiB/s
	// (≈2350 MiB/s), beating cold memcpy by ≈80 %.
	io16, _ := ioat.At(16 << 20)
	if io16 < 1900 || io16 > 2600 {
		t.Errorf("I/OAT shm 16MB = %.0f MiB/s, want ≈2300", io16)
	}
	if io16 < cr16*1.5 {
		t.Errorf("I/OAT (%.0f) not ≈80%% above cross-socket memcpy (%.0f)", io16, cr16)
	}
	// Below the threshold the I/OAT config behaves like memcpy.
	ioSmall, _ := ioat.At(16 << 10)
	crSmall, _ := cross.At(16 << 10)
	if ioSmall < crSmall*0.8 || ioSmall > crSmall*1.25 {
		t.Errorf("below threshold: ioat=%.0f vs memcpy=%.0f, want equal", ioSmall, crSmall)
	}
}

// TestNASISPayloadVerified: the IS proxy must verify every key
// arrival — payload bytes, not just timings — through the Alltoallv
// exchange and the Allreduce census, on every stack.
func TestNASISPayloadVerified(t *testing.T) {
	const keys, iters = 1 << 12, 2
	rs := NASIS(keys, iters)
	want := iters * 4 * keys // iterations × p ranks × keysPerRank
	for _, r := range rs {
		if r.KeysVerified != want {
			t.Errorf("%s: verified %d key arrivals, want %d", r.Stack, r.KeysVerified, want)
		}
	}
}

func TestNASISShape(t *testing.T) {
	rs := NASIS(1<<16, 2)
	var omx, ioat float64
	for _, r := range rs {
		switch r.Stack {
		case "Open-MX":
			omx = r.TimeMs
		case "Open-MX I/OAT":
			ioat = r.TimeMs
		}
	}
	gain := omx/ioat - 1
	// Paper: "up to 10 % performance increase ... especially on IS".
	if gain < 0.02 {
		t.Errorf("IS proxy I/OAT gain = %.1f%%, want a clear improvement", gain*100)
	}
	if gain > 0.45 {
		t.Errorf("IS proxy I/OAT gain = %.1f%% looks implausibly large", gain*100)
	}
}
