package figures

import (
	"reflect"
	"testing"
)

// nicollGrid is the reduced sweep the guardrails share (cached on the
// figures pool, so the assertions below simulate it once): the
// acceptance ops at 64 ranks with a short iteration count.
func nicollGrid() []NICollPoint {
	ops := []nicollOp{{"Barrier", 0}, {"Bcast", 4 << 10}, {"Allreduce", 4 << 10}}
	return nicollSweepOver(ops, []int{64}, 4)
}

func nicollFind(pts []NICollPoint, op, series string) NICollPoint {
	for _, p := range pts {
		if p.Op == op && p.Series == series {
			return p
		}
	}
	panic("nicoll point missing: " + op + "/" + series)
}

// TestNicollFirmwareCPUWins pins the figure's acceptance claim: at 64
// ranks the firmware Barrier, Bcast and Allreduce burn strictly less
// host CPU per collective than the best host-driven variant, with
// every result verified, and the offloaded data collectives overlap
// strictly more compute than their blocking host counterparts.
func TestNicollFirmwareCPUWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := nicollGrid()
	hostSeries := []string{"Open-MX host", "Open-MX I/OAT host", "MX host"}
	for _, op := range []string{"Barrier", "Bcast", "Allreduce"} {
		fw := nicollFind(pts, op, "MX NIC-offload")
		bestHost := nicollFind(pts, op, hostSeries[0])
		for _, hs := range hostSeries[1:] {
			if p := nicollFind(pts, op, hs); p.HostCPUUsec < bestHost.HostCPUUsec {
				bestHost = p
			}
		}
		if fw.HostCPUUsec >= bestHost.HostCPUUsec {
			t.Errorf("%s: firmware host-CPU %.1f us/coll not strictly below best host variant %q at %.1f",
				op, fw.HostCPUUsec, bestHost.Series, bestHost.HostCPUUsec)
		}
		if fw.OverlapPct <= bestHost.OverlapPct && op != "Barrier" {
			t.Errorf("%s: firmware overlap %.1f%% not above best host variant's %.1f%%",
				op, fw.OverlapPct, bestHost.OverlapPct)
		}
	}
	for _, p := range pts {
		if !p.Verified {
			t.Errorf("%s/%s/%d ranks: results failed verification", p.Op, p.Series, p.Ranks)
		}
		if p.OverlapPct < 0 || p.OverlapPct > 100 {
			t.Errorf("%s/%s: overlap %.1f%% out of range", p.Op, p.Series, p.OverlapPct)
		}
	}
}

// TestNicollParallelMatchesSerial extends the parallel-determinism
// guardrail to the NIC-collective sweep: sharding the points across
// workers (and rerunning from a cold cache) must reproduce every
// measurement bit for bit.
func TestNicollParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ops := []nicollOp{{"Barrier", 0}, {"Allreduce", 4 << 10}}
	run := func(workers int) (pts []NICollPoint) {
		withPool(workers, func() { pts = nicollSweepOver(ops, []int{64}, 2) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel nicoll sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
