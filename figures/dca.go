package figures

import (
	"fmt"
	"strings"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/runner"
	"omxsim/sim"
)

// The memory-hierarchy figure (`omxsim dca`) measures what the
// availability figure deliberately hides: where the received bytes
// LAND. A DMA engine — the NIC's or I/OAT's — deposits lines in DRAM
// and invalidates the consumer's cache, so every byte it moved for
// free is paid for again, with interest, by the first application
// read. The sweep is a request/reply ping-pong in which the receiver
// immediately consumes each payload (a memcpy into a scratch sink,
// charged as application compute), so the post-transfer cache state
// shows up in end-to-end goodput instead of being dropped on the
// floor between iterations.
//
// Four receive paths:
//
//   - memcpy      — the bottom-half copy burns host CPU but drags the
//     payload through the copying core's cache; a consumer on that
//     core reads warm lines.
//   - I/OAT      — the offload frees the CPU and leaves the payload
//     cold in DRAM, still snoop-penalized (the dirty-line ledger).
//   - DCA        — memcpy path on platform.ClovertownDCA: the NIC's
//     deposits push lines into the interrupt core's LLC (Direct Cache
//     Access), so even the bottom half's source is warm.
//   - I/OAT+warm — the hybrid: the CPU copies the head of each
//     message, the engine moves the tail (Config.HybridWarmupBytes).
//     A consumer that reads the WHOLE payload still pays the
//     snoop-penalized rate — the warmup only helps header-peeking
//     consumers, so here it shows as pure extra CPU cost.
//
// crossed with consumer placement relative to the interrupt core
// (same-core / same-socket / cross-socket) and message size. The
// receive buffer is allocated on the consumer's NUMA node, so the
// cross-socket column also charges the DMA engines the remote-socket
// deposit penalty (platform.RemoteDMAFactor). All variants run with
// the registration cache on; the reghit% column shows the pin cost
// amortizing away after the first post of each buffer.

// DCASizes returns the swept message sizes (all rendezvous-sized, so
// every variant exercises its large-message receive path).
func DCASizes() []int { return []int{64 << 10, 256 << 10, 1 << 20} }

// DCAIters is the measured round-trip count per point (after one
// warm-up round trip).
const DCAIters = 6

// dcaWarmupBytes is the CPU-copied message head of the "I/OAT+warm"
// hybrid variant.
const dcaWarmupBytes = 16 << 10

// DCAPoint is one measured (mode, placement, size) combination.
type DCAPoint struct {
	Mode  string // "memcpy", "I/OAT", "DCA" or "I/OAT+warm"
	Place string // consumer vs interrupt core: "same-core", "same-socket", "cross-socket"
	Bytes int
	Iters int
	// Delivered counts round trips whose payload verified at the
	// consumer before it was consumed.
	Delivered int

	GoodputMiBps float64 // delivered payload / elapsed, consume pass included
	ConsumeGiBps float64 // application read rate of the just-received payload
	HostCPUPerMB float64 // non-compute host CPU us per MiB on the receiving host
	RegHitPct    float64 // registration-cache hit rate on the receiving stack
}

// dcaPlatform picks the platform for a mode: only "DCA" runs on the
// DCA-capable Clovertown; everything else uses the paper's baseline.
func dcaPlatform(mode string) *platform.Platform {
	if mode == "DCA" {
		return platform.ClovertownDCA()
	}
	return platform.Clovertown()
}

// dcaConfig builds the stack configuration for one mode. Every
// variant runs the registration cache; the DCA deposits themselves
// are a platform capability, not a stack option (the NIC steers them
// at the interrupt core, the bottom half's — i.e. the skbuff
// consumer's — cache).
func dcaConfig(mode string) openmx.Config {
	cfg := openmx.Config{RegCache: true}
	switch mode {
	case "I/OAT":
		cfg.IOAT = true
	case "I/OAT+warm":
		cfg.IOAT = true
		cfg.HybridWarmupBytes = dcaWarmupBytes
	}
	return cfg
}

// dcaConsumerCore maps a placement to the consumer's core (the
// interrupt core is 0: cores 0-1 share an L2, cores 0-3 a socket).
func dcaConsumerCore(place string) int {
	switch place {
	case "same-core":
		return 0
	case "same-socket":
		return 2
	case "cross-socket":
		return 4
	}
	panic("figures: unknown dca placement " + place)
}

// dcaPoint measures one sweep point: node1 streams payloads to a
// consumer on node0 that reads every received byte before requesting
// the next.
func dcaPoint(mode, place string, size, iters int) DCAPoint {
	const reqBytes = 1024
	cfg := dcaConfig(mode)
	core := dcaConsumerCore(place)
	c := cluster.New(dcaPlatform(mode))
	defer c.Close()
	ha, hb := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(ha, hb)
	sa, sb := openmx.Attach(ha, cfg), openmx.Attach(hb, cfg)
	ea, eb := sa.Open(0, core), sb.Open(1, 0)
	machineA := ha.Machine()
	socket := machineA.P.SocketOf(core)

	reqA := ha.Alloc(reqBytes)
	reqB := hb.Alloc(reqBytes)
	sendB := hb.Alloc(size)
	// Consumer-side buffers live on the consumer's NUMA node: DMA
	// deposits from socket 0's I/O hub pay the remote factor when the
	// consumer sits cross-socket.
	recvA := ha.AllocOn(size, socket)
	sink := ha.AllocOn(size, socket)

	var t0, t1 sim.Time
	var consumed sim.Duration
	delivered := 0
	warmups := 1
	total := warmups + iters
	c.Go("server", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), reqB, 0, reqBytes)
			eb.Wait(p, r)
			sendB.Fill(byte(i + 1))
			sendB.Produce(0)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("consumer", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			if i == warmups {
				sa.ResetCPUStats()
				t0 = p.Now()
			}
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			reqA.Fill(byte(i))
			reqA.Produce(core)
			ea.Wait(p, ea.ISend(p, eb.Addr(), uint64(i), reqA, 0, reqBytes))
			ea.Wait(p, rr)
			if i >= warmups && cluster.Equal(sendB, recvA) {
				delivered++
			}
			// The consume pass: the application reads the payload it
			// just received. Its rate is where DMA-cold, DCA-warm and
			// cross-socket states become visible.
			d := machineA.Copy.Memcpy(sink.Raw(), 0, recvA.Raw(), 0, size, core)
			machineA.Sys.Core(core).RunOn(p, cpu.AppCompute, d)
			if i >= warmups {
				consumed += d
			}
			t1 = p.Now()
		}
	})
	if blocked := c.Run(); blocked != 0 {
		panic(fmt.Sprintf("figures: dca %s/%s/%d deadlocked", mode, place, size))
	}

	pt := DCAPoint{Mode: mode, Place: place, Bytes: size, Iters: iters, Delivered: delivered}
	elapsed := t1 - t0
	moved := float64(iters*size) / (1 << 20)
	if elapsed > 0 {
		pt.GoodputMiBps = moved / sim.Time(elapsed).Seconds()
	}
	if consumed > 0 {
		pt.ConsumeGiBps = float64(iters*size) / (1 << 30) / sim.Time(consumed).Seconds()
	}
	st := sa.CPUStats()
	if moved > 0 {
		pt.HostCPUPerMB = sim.Time(st.Busy()-st.Busy(cpu.AppCompute)).Micros() / moved
	}
	if rs := sa.RegStats(); rs.Hits+rs.Misses > 0 {
		pt.RegHitPct = float64(rs.Hits) / float64(rs.Hits+rs.Misses) * 100
	}
	return pt
}

// DCAModes lists the receive-path variants in output order.
func DCAModes() []string { return []string{"memcpy", "I/OAT", "DCA", "I/OAT+warm"} }

// DCAPlaces lists the consumer placements in output order.
func DCAPlaces() []string { return []string{"same-core", "same-socket", "cross-socket"} }

// DCASweep measures every (placement, mode, size) point as an
// independent runner job and returns them in sweep order (placement
// outermost, then mode, then size).
func DCASweep() []DCAPoint {
	return dcaSweepOver(DCASizes(), DCAIters)
}

// dcaSweepOver shards an arbitrary size grid across the figures pool.
func dcaSweepOver(sizes []int, iters int) []DCAPoint {
	var jobs []runner.Job
	for _, place := range DCAPlaces() {
		for _, mode := range DCAModes() {
			for _, size := range sizes {
				place, mode, size := place, mode, size
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("dca/%s/%s/%s", place, mode, sizeName(size)),
					Key:   runner.Key("dca", place, mode, size, iters),
					Run: func() (any, error) {
						return dcaPoint(mode, place, size, iters), nil
					},
				})
			}
		}
	}
	return sweep[DCAPoint](jobs)
}

// RenderDCA formats the sweep as a fixed-width table.
func RenderDCA(points []DCAPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# memory hierarchy: ping-pong + consume pass (%d iters; receive buffer on the consumer's NUMA node; regcache on; DCA = NIC deposits into the interrupt core's LLC; warm hybrid copies %s heads)\n",
		DCAIters, sizeName(dcaWarmupBytes))
	fmt.Fprintf(&b, "%-12s %-10s %8s %10s %14s %16s %8s %10s\n",
		"consumer", "recvpath", "msgsize", "MiB/s", "consume[GiB/s]", "hostCPU[us/MiB]", "reghit%", "delivered")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %-10s %8s %10.1f %14.2f %16.1f %8.1f %7d/%d\n",
			p.Place, p.Mode, sizeName(p.Bytes),
			p.GoodputMiBps, p.ConsumeGiBps, p.HostCPUPerMB, p.RegHitPct, p.Delivered, p.Iters)
	}
	return b.String()
}
