package figures

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/internal/ioat"
	"omxsim/metrics"
	"omxsim/platform"
	"omxsim/runner"
	"omxsim/sim"
)

// Micro holds the Section IV-A microbenchmark numbers: submission
// cost, raw copy rates, and the offload break-even sizes.
type Micro struct {
	SubmitNs          float64 // single-descriptor submission
	MemcpyColdGiBps   float64
	MemcpyCachedGiBps float64
	IOAT4kGiBps       float64 // streaming rate, 4 kiB chunks
	BreakEvenColdB    int     // memcpy CPU time crosses submit cost
	BreakEvenCachedB  int
}

// MicroNumbers measures the Section IV-A quantities on a fresh host.
func MicroNumbers() Micro {
	p := platform.Clovertown()
	c := cluster.New(p)
	h := c.NewHost("micro")
	m := h.Machine()
	var out Micro
	out.SubmitNs = float64(m.IOAT.SubmitCost(1))

	// Raw copy rates from the memcpy model (cold and L2-cached).
	n := 1 << 20
	src, dst := m.Alloc(n), m.Alloc(n)
	coldNs := float64(m.Copy.CopyTime(dst, src, n, 0))
	out.MemcpyColdGiBps = platform.Rate(float64(n) / coldNs).InGiBps()
	src.Touch(0, n)
	dst.Touch(0, n)
	warm, cold := m.Copy.RateFor(dst, src, 4096, 0), p.MemcpyColdRate
	_ = cold
	out.MemcpyCachedGiBps = warm.InGiBps()

	// I/OAT streaming rate at 4 kiB chunks (simulated transfer).
	out.IOAT4kGiBps = ioatChunkRate(4096, 1<<20)

	// Break-even: smallest size whose memcpy CPU time exceeds the
	// submission cost.
	breakEven := func(rate platform.Rate) int {
		for b := 16; b <= 1<<20; b += 16 {
			t := float64(p.MemcpyCallCost) + float64(b)/float64(rate)
			if t >= out.SubmitNs {
				return b
			}
		}
		return -1
	}
	out.BreakEvenColdB = breakEven(p.MemcpyColdRate)
	out.BreakEvenCachedB = breakEven(p.MemcpyL2Rate)
	return out
}

// ioatChunkRate simulates a pipelined chunked I/OAT copy of total
// bytes and returns the sustained rate in GiB/s.
func ioatChunkRate(chunk, total int) float64 {
	c := cluster.New(nil)
	h := c.NewHost("micro").Machine()
	src, dst := h.Alloc(total), h.Alloc(total)
	ch := h.IOAT.Channel(0)
	var reqs []ioat.CopyReq
	for off := 0; off < total; off += chunk {
		n := min(chunk, total-off)
		reqs = append(reqs, ioat.CopyReq{Dst: dst, DstOff: off, Src: src, SrcOff: off, N: n})
	}
	var done sim.Time
	seq := ch.Submit(reqs...)
	ch.NotifyAt(seq, func() { done = h.E.Now() })
	c.Run()
	return platform.Rate(float64(total) / float64(done)).InGiBps()
}

// Fig7 regenerates Figure 7: pipelined memcpy versus I/OAT copy
// throughput when streams are split into 256 B, 1 kiB and 4 kiB
// chunks, for total copy sizes from 256 B to 1 MiB.
//
// Like the paper's microbenchmark, the memcpy side streams through a
// region much larger than the caches (cold rates), and the I/OAT side
// submits one descriptor per chunk.
func Fig7() *metrics.Table {
	t := metrics.NewTable(
		"Fig. 7: pipelined memcpy vs I/OAT copy by chunk size",
		"copysize", "MiB/s")
	p := platform.Clovertown()
	chunks := []int{4096, 1024, 256}
	names := map[int]string{4096: "4kB chunks (page)", 1024: "1kB chunks", 256: "256B chunks"}
	var sizes []int
	for s := 256; s <= 1<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	for _, chunk := range chunks {
		s := t.AddSeries("Memcpy - " + names[chunk])
		for _, total := range sizes {
			// Chunked memcpy: per-chunk call overhead + bytes at the
			// cold rate (stream >> cache).
			nChunks := (total + chunk - 1) / chunk
			ns := float64(nChunks)*float64(p.MemcpyCallCost) + float64(total)/float64(p.MemcpyColdRate)
			s.Add(float64(total), platform.Rate(float64(total)/ns).InMiBps())
		}
	}
	// The I/OAT side simulates submission + engine processing,
	// including the CPU-side submission cost ahead of the doorbell;
	// each (chunk, total) point is an independent simulation, swept in
	// parallel.
	var jobs []runner.Job
	for _, chunk := range chunks {
		for _, total := range sizes {
			chunk, total := chunk, total
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("fig7/ioat/%d/%d", chunk, total),
				Key:   runner.Key("fig7-ioat", chunk, total),
				Run:   func() (any, error) { return ioatPipelinedRate(chunk, total), nil },
			})
		}
	}
	rates := sweep[float64](jobs)
	for ci, chunk := range chunks {
		s := t.AddSeries("I/OAT Copy - " + names[chunk])
		for si, total := range sizes {
			s.Add(float64(total), rates[ci*len(sizes)+si])
		}
	}
	return t
}

// ioatPipelinedRate measures one chunked I/OAT copy end to end
// (submission through last completion) and returns MiB/s.
func ioatPipelinedRate(chunk, total int) float64 {
	c := cluster.New(nil)
	h := c.NewHost("micro").Machine()
	src, dst := h.Alloc(total), h.Alloc(total)
	ch := h.IOAT.Channel(0)
	var reqs []ioat.CopyReq
	for off := 0; off < total; off += chunk {
		n := min(chunk, total-off)
		reqs = append(reqs, ioat.CopyReq{Dst: dst, DstOff: off, Src: src, SrcOff: off, N: n})
	}
	var done sim.Time
	// Pipelined measurement: the CPU keeps submitting while the
	// engine processes earlier descriptors (the paper's microbench
	// streams copies back to back), so submission overlaps execution
	// and only shows up when it exceeds the engine's pace — which is
	// exactly what kills the small-chunk configurations.
	core := h.Sys.Core(0)
	var submit func(i int)
	submit = func(i int) {
		if i >= len(reqs) {
			return
		}
		core.Exec(cpu.Other, h.IOAT.SubmitCost(1), func() {
			seq := ch.Submit(reqs[i])
			if i == len(reqs)-1 {
				ch.NotifyAt(seq, func() { done = h.E.Now() })
			}
			submit(i + 1)
		})
	}
	submit(0)
	c.Run()
	return platform.Rate(float64(total) / float64(done)).InMiBps()
}
