package figures

import (
	"reflect"
	"strings"
	"testing"

	"omxsim/openmx"
	"omxsim/platform"
)

// availGrid runs a reduced sweep shared by the shape tests (cached on
// the figures pool, so the assertions below simulate it once).
func availGrid(t *testing.T) []AvailPoint {
	t.Helper()
	return availSweepOver([]int{128 << 10, 512 << 10}, AvailIters)
}

func availFind(pts []AvailPoint, mode, place string, size int) AvailPoint {
	for _, p := range pts {
		if p.Mode == mode && p.Place == place && p.Bytes == size {
			return p
		}
	}
	panic("avail point missing")
}

// TestAvailIOATOverlapWins pins the figure's headline claim — and the
// paper's: for rendezvous-sized remote messages the offloaded receive
// achieves strictly more compute/communication overlap than the
// memcpy bottom half, and burns strictly less host CPU per byte.
func TestAvailIOATOverlapWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := availGrid(t)
	for _, size := range []int{128 << 10, 512 << 10} {
		mem := availFind(pts, "memcpy", "remote", size)
		io := availFind(pts, "I/OAT", "remote", size)
		if io.OverlapPct <= mem.OverlapPct {
			t.Errorf("%s remote: I/OAT overlap %.1f%% not strictly above memcpy %.1f%%",
				sizeName(size), io.OverlapPct, mem.OverlapPct)
		}
		if io.HostCPUPerMB >= mem.HostCPUPerMB {
			t.Errorf("%s remote: I/OAT host CPU %.1f us/MiB not below memcpy %.1f",
				sizeName(size), io.HostCPUPerMB, mem.HostCPUPerMB)
		}
		if io.GoodputMiBps <= mem.GoodputMiBps {
			t.Errorf("%s remote: I/OAT goodput %.1f not above memcpy %.1f",
				sizeName(size), io.GoodputMiBps, mem.GoodputMiBps)
		}
	}
	for _, p := range pts {
		if p.Delivered != p.Iters {
			t.Errorf("%s/%s/%s: only %d/%d round trips verified",
				p.Place, p.Mode, sizeName(p.Bytes), p.Delivered, p.Iters)
		}
		if p.OverlapPct <= 0 || p.OverlapPct > 100 {
			t.Errorf("%s/%s/%s: overlap %.1f%% out of range",
				p.Place, p.Mode, sizeName(p.Bytes), p.OverlapPct)
		}
	}
	// The local one-copy I/OAT path busy-polls (no freed CPU — the
	// paper's honest Section IV-C result) but still moves bytes faster
	// cross-socket and submits cheaper-than-memcpy descriptor work.
	memL := availFind(pts, "memcpy", "local", 512<<10)
	ioL := availFind(pts, "I/OAT", "local", 512<<10)
	if ioL.GoodputMiBps <= memL.GoodputMiBps {
		t.Errorf("local 512kB: I/OAT goodput %.1f not above memcpy %.1f",
			ioL.GoodputMiBps, memL.GoodputMiBps)
	}
}

// TestParallelMatchesSerialAvail: the determinism guardrail for the
// new figure — self-calibrated compute injection derives from a
// deterministic measurement, so sharding the sweep across workers
// must change nothing but wall time.
func TestParallelMatchesSerialAvail(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sizes := []int{128 << 10}
	run := func(workers int) (pts []AvailPoint) {
		withPool(workers, func() { pts = availSweepOver(sizes, 4) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel avail sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	if again := run(1); !reflect.DeepEqual(serial, again) {
		t.Errorf("avail sweep not run-to-run deterministic:\nfirst:  %+v\nsecond: %+v",
			serial, again)
	}
}

// TestRenderAvailFooter: the figure footer reports the autotuner's
// chosen thresholds against the paper's, and the chosen values land
// within 2x of the 32 kB defaults on Clovertown.
func TestRenderAvailFooter(t *testing.T) {
	out := RenderAvail(nil)
	if !strings.Contains(out, "# autotune (Clovertown): eager->rndv") ||
		!strings.Contains(out, "paper 32kB") {
		t.Fatalf("footer missing autotune comparison:\n%s", out)
	}
	th := openmx.ProbeThresholds(platform.Clovertown())
	for name, v := range map[string]int{
		"eager->rndv": th.LargeThreshold, "local I/OAT": th.ShmIOATThreshold,
	} {
		if v < 16<<10 || v > 64<<10 {
			t.Errorf("autotuned %s threshold %d outside 2x of the paper's 32 kB", name, v)
		}
	}
	if !strings.Contains(out, sizeName(th.LargeThreshold)) ||
		!strings.Contains(out, sizeName(th.ShmIOATThreshold)) {
		t.Errorf("footer does not show the probed thresholds:\n%s", out)
	}
}
