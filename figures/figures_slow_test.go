package figures

import "testing"

// Slow guardrails for the IMB-based figures (skipped in -short runs).

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := Fig11()
	const big = 16 << 20
	mx, _ := tab.Get("MX").At(big)
	ioat, _ := tab.Get("Open-MX I/OAT").At(big)
	plain, _ := tab.Get("Open-MX").At(big)
	ioatNoRC, _ := tab.Get("Open-MX I/OAT w/o regcache").At(big)
	plainNoRC, _ := tab.Get("Open-MX w/o regcache").At(big)

	// Paper: Open-MX+I/OAT reaches MX's large-message performance.
	if ioat < mx*0.95 {
		t.Errorf("16MB: ioat=%.0f below MX=%.0f", ioat, mx)
	}
	// I/OAT matters more than the registration cache: the regcache
	// delta is smaller than the I/OAT delta.
	regcacheDelta := plain - plainNoRC
	ioatDelta := ioat - plain
	if regcacheDelta >= ioatDelta {
		t.Errorf("regcache delta %.0f ≥ I/OAT delta %.0f; paper says I/OAT dominates",
			regcacheDelta, ioatDelta)
	}
	// Both no-regcache variants must not beat their cached versions.
	if plainNoRC > plain*1.02 || ioatNoRC > ioat*1.02 {
		t.Errorf("regcache-off beats regcache-on: %.0f vs %.0f / %.0f vs %.0f",
			plainNoRC, plain, ioatNoRC, ioat)
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// 4 MB, 1 ppn: paper reports a 32 % average improvement, reaching
	// 90 % of MXoE.
	p1 := Fig12(4<<20, 1)
	omxAvg, ioatAvg := p1.Averages()
	improvement := ioatAvg/omxAvg - 1
	if improvement < 0.20 || improvement > 0.45 {
		t.Errorf("4MB 1ppn improvement = %.0f%%, paper ≈32%%", improvement*100)
	}
	if ioatAvg < 80 || ioatAvg > 100 {
		t.Errorf("4MB 1ppn I/OAT average = %.0f%% of MXoE, paper ≈90%%", ioatAvg)
	}
	// Every test must improve with I/OAT at 4 MB.
	for i, test := range p1.Tests {
		if p1.OMXIOATPct[i] < p1.OMXPct[i] {
			t.Errorf("4MB 1ppn %s: I/OAT (%.0f%%) below plain (%.0f%%)",
				test, p1.OMXIOATPct[i], p1.OMXPct[i])
		}
	}

	// 4 MB, 2 ppn: the shared-memory I/OAT path makes the average
	// improvement even larger (paper: 41 % vs 32 %).
	p2 := Fig12(4<<20, 2)
	omxAvg2, ioatAvg2 := p2.Averages()
	improvement2 := ioatAvg2/omxAvg2 - 1
	if improvement2 <= improvement {
		t.Errorf("2ppn improvement %.0f%% not larger than 1ppn %.0f%%",
			improvement2*100, improvement*100)
	}
	// "Open-MX is now able to even pass the native MXoE performance
	// on several IMB tests."
	passed := 0
	for i := range p2.Tests {
		if p2.OMXIOATPct[i] >= 100 {
			passed++
		}
	}
	if passed < 2 {
		t.Errorf("only %d tests pass MXoE at 4MB 2ppn; paper reports several", passed)
	}
}
