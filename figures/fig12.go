package figures

import (
	"fmt"
	"strings"

	"omxsim/imb"
	"omxsim/openmx"
	"omxsim/runner"
)

// Fig12Result is one panel of Figure 12: every IMB test at one
// message size and process count, with Open-MX performance (with and
// without I/OAT) normalized to native MXoE.
type Fig12Result struct {
	Bytes int
	PPN   int
	Tests []string
	// Percent of MXoE performance (MXoE time / Open-MX time × 100;
	// higher is better, 100 = parity).
	OMXPct     []float64
	OMXIOATPct []float64
}

// Fig12Sizes are the two message sizes of the paper's panels.
func Fig12Sizes() []int { return []int{128 << 10, 4 << 20} }

// fig12Stacks are the three stacks every panel compares, in
// normalization order: the MXoE baseline, plain Open-MX, Open-MX with
// I/OAT (network and shared-memory offload).
func fig12Stacks() []Stack {
	return []Stack{
		{Kind: "mxoe", MXRegCache: true},
		{Kind: "openmx", OMX: openmx.Config{RegCache: true}},
		{Kind: "openmx", OMX: openmx.Config{RegCache: true, IOAT: true, IOATShm: true}},
	}
}

// Fig12 regenerates one panel. Every (test, stack) pair is an
// independent run on a fresh testbed, so the whole panel — 33 runs —
// shards across the pool as one flat sweep.
func Fig12(bytes, ppn int) Fig12Result {
	res := Fig12Result{Bytes: bytes, PPN: ppn, Tests: imb.Tests()}
	iters := func(int) int { return 4 }
	stacks := fig12Stacks()
	var jobs []runner.Job
	for _, test := range res.Tests {
		for _, s := range stacks {
			jobs = append(jobs, imbJob(s, ppn, test, []int{bytes}, "fixed4", iters))
		}
	}
	results := sweep[[]imb.Result](jobs)
	for ti := range res.Tests {
		var times [3]float64
		for si := range stacks {
			times[si] = results[ti*len(stacks)+si][0].TimeUsec
		}
		res.OMXPct = append(res.OMXPct, 100*times[0]/times[1])
		res.OMXIOATPct = append(res.OMXIOATPct, 100*times[0]/times[2])
	}
	return res
}

// Fig12All regenerates all four panels (128 kB and 4 MB, 1 and 2
// processes per node). The panels themselves run concurrently; their
// inner sweeps fan out further on the same pool.
func Fig12All() []Fig12Result {
	var jobs []runner.Job
	for _, size := range Fig12Sizes() {
		for _, ppn := range []int{1, 2} {
			size, ppn := size, ppn
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("fig12/%s/%dppn", sizeName(size), ppn),
				// No key: the panel aggregates cached per-run jobs.
				Run: func() (any, error) { return Fig12(size, ppn), nil },
			})
		}
	}
	return sweep[Fig12Result](jobs)
}

// Averages reports the mean percentage across tests for both curves.
func (r Fig12Result) Averages() (omx, omxIOAT float64) {
	for i := range r.Tests {
		omx += r.OMXPct[i]
		omxIOAT += r.OMXIOATPct[i]
	}
	n := float64(len(r.Tests))
	return omx / n, omxIOAT / n
}

// Render formats the panel like the paper's bar chart, as text.
func (r Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fig. 12 panel: %s messages, %d process(es) per node (%% of MXoE)\n",
		sizeName(r.Bytes), r.PPN)
	fmt.Fprintf(&b, "%-14s %12s %18s\n", "test", "Open-MX", "Open-MX+I/OAT")
	for i, test := range r.Tests {
		fmt.Fprintf(&b, "%-14s %11.0f%% %17.0f%%\n", test, r.OMXPct[i], r.OMXIOATPct[i])
	}
	a, ai := r.Averages()
	fmt.Fprintf(&b, "%-14s %11.0f%% %17.0f%%\n", "average", a, ai)
	return b.String()
}

func sizeName(b int) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dMB", b>>20)
	}
	return fmt.Sprintf("%dkB", b>>10)
}
