package figures

import (
	"fmt"

	"omxsim/imb"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/runner"
)

// The collective-scaling figure (beyond the paper): collective
// latency versus message size with I/OAT copy offload on and off, on
// worlds of 4–16 processes. Collectives are where receive-side
// offload matters most — every rank of an Alltoall receives p−1
// large fragmentable messages at once, exactly the overlap scenario
// the paper's copy pipeline targets. Worlds larger than the paper's
// two nodes connect through a simulated store-and-forward Ethernet
// switch.

// collWorld is one world shape of the collective figure.
type collWorld struct{ nodes, ppn int }

// collWorlds are the swept world shapes: 4, 8 and 16 processes at
// the paper's 2 processes per node.
func collWorlds() []collWorld {
	return []collWorld{{2, 2}, {4, 2}, {8, 2}}
}

// CollTests lists the collectives the figure sweeps (the NAS IS
// proxy's Alltoall(v)/Allreduce plus the IMB staple Bcast).
func CollTests() []string { return []string{"Allreduce", "Alltoall", "Bcast"} }

// CollSizes returns the figure's message-size sweep, crossing every
// default algorithm-selection threshold.
func CollSizes() []int { return []int{1 << 10, 16 << 10, 128 << 10, 1 << 20} }

// collStacks are the two compared stacks: plain Open-MX and Open-MX
// with I/OAT offload (network and shared-memory).
func collStacks() []struct {
	name string
	s    Stack
} {
	return []struct {
		name string
		s    Stack
	}{
		{"Open-MX", Stack{Kind: "openmx", OMX: omxCfg(false)}},
		{"Open-MX I/OAT", Stack{Kind: "openmx", OMX: omxCfg(true)}},
	}
}

// Coll regenerates the collective figure: one table per collective,
// one series per (stack, world size), Y = IMB time in µs.
func Coll() []*metrics.Table {
	return collTables(CollTests(), CollSizes(), collWorlds())
}

// collTables sweeps every (test, world, stack) run as an independent
// pool job on a fresh testbed and assembles the latency tables.
func collTables(tests []string, sizes []int, worlds []collWorld) []*metrics.Table {
	stacks := collStacks()
	iters := func(int) int { return 3 }
	var jobs []runner.Job
	for _, test := range tests {
		for _, wl := range worlds {
			for _, st := range stacks {
				test, wl, st := test, wl, st
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("coll/%s/%s/%dx%dppn", test, st.name, wl.nodes, wl.ppn),
					Key:   runner.Key("coll", st.s, wl.nodes, wl.ppn, test, sizes, "fixed3"),
					Run: func() (any, error) {
						tb := newTestbedN(st.s, wl.nodes, wl.ppn)
						r := &imb.Runner{C: tb.c, W: tb.w, Iters: iters}
						return r.Run(test, sizes), nil
					},
				})
			}
		}
	}
	results := sweep[[]imb.Result](jobs)
	var tables []*metrics.Table
	i := 0
	for _, test := range tests {
		tab := metrics.NewTable(
			fmt.Sprintf("Collective latency: %s with I/OAT offload on/off", test),
			"msgsize", "t[usec]")
		for _, wl := range worlds {
			for _, st := range stacks {
				s := tab.AddSeries(fmt.Sprintf("%s, %d procs", st.name, wl.nodes*wl.ppn))
				for _, res := range results[i] {
					s.Add(float64(res.Bytes), res.TimeUsec)
				}
				i++
			}
		}
		tables = append(tables, tab)
	}
	return tables
}

// RenderColl formats the collective tables plus the default-tuning
// algorithm-selection footer, so the figure records which algorithm
// produced each point.
func RenderColl(tables []*metrics.Table) string {
	out := ""
	for _, t := range tables {
		out += t.Render() + "\n"
	}
	out += "# algorithm selection (default tuning)\n"
	tn := mpi.DefaultTuning()
	for _, test := range CollTests() {
		for _, wl := range collWorlds() {
			p := wl.nodes * wl.ppn
			out += fmt.Sprintf("%-10s %2d procs:", test, p)
			for _, n := range CollSizes() {
				var alg string
				switch test {
				case "Allreduce":
					alg = tn.AllreduceAlg(n, p)
				case "Alltoall":
					alg = tn.AlltoallAlg(n, p)
				case "Bcast":
					alg = tn.BcastAlg(n, p)
				}
				out += fmt.Sprintf(" %s=%s", sizeName(n), alg)
			}
			out += "\n"
		}
	}
	return out
}
