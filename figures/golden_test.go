package figures

import (
	"os"
	"strings"
	"testing"
)

// The static-default regression trap: every section of the committed
// golden is rendered with Config.Adaptive off (and Trace unset), so
// any change that perturbs the static transport path — a reordered
// yield, an extra timer, a trace hook that isn't inert — shows up as a
// golden diff. The golden-figures CI job diffs the full `omxsim all`
// output; this canary runs in the fast gate and re-renders the cheap
// sections, so most regressions are caught before the slow job runs.

// goldenSections parses figures/testdata/omxsim-all.golden into
// per-section bodies keyed by the section description ("==> " lines).
func goldenSections(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile("testdata/omxsim-all.golden")
	if err != nil {
		t.Fatalf("reading committed golden: %v", err)
	}
	out := make(map[string]string)
	var desc string
	var body strings.Builder
	flush := func() {
		if desc != "" {
			out[desc] = body.String()
		}
		body.Reset()
	}
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "==> "); ok {
			flush()
			desc = strings.TrimSuffix(rest, "\n")
			continue
		}
		body.WriteString(line)
	}
	flush()
	return out
}

// goldenCanarySections are the sections cheap enough to re-render in
// the fast gate: the microbenchmark table and the 5-fragment receive
// timelines together exercise the cost model, both copy engines and
// the full trace-capture path in well under a second; the dca sweep
// adds the warmth-coverage, DCA-deposit, NUMA-placement and
// registration-cache ledgers at the same cost.
func goldenCanarySections() []string { return []string{"micro", "timeline", "dca"} }

// TestGoldenCanary re-renders the cheap sections and requires them
// bit-identical to the committed golden. `omxsim all` prints each
// section as its description header, the body, then a blank line —
// reproduced here so the comparison really is byte-for-byte.
func TestGoldenCanary(t *testing.T) {
	golden := goldenSections(t)
	if len(golden) != len(Sections()) {
		t.Errorf("committed golden has %d sections, registry has %d — run `make golden`",
			len(golden), len(Sections()))
	}
	for _, name := range goldenCanarySections() {
		s, ok := SectionByName(name)
		if !ok {
			t.Fatalf("no section %q", name)
		}
		want, ok := golden[s.Desc]
		if !ok {
			t.Fatalf("committed golden has no %q section — run `make golden`", s.Desc)
		}
		if got := s.Render(false) + "\n"; got != want {
			t.Errorf("section %q drifted from the committed golden (static transport path perturbed?):\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}
}
