package figures

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The loss figure (beyond the paper): the paper measured a clean
// dedicated 10 GbE link, but Open-MX's reliability window, acks and
// retransmission — and the firmware reliability of native MX — only
// earn their keep when the network misbehaves. This sweep runs an
// IMB-style ping-pong across frame-loss rate × message size on both
// stacks (Open-MX with I/OAT offload on and off, plus native MXoE)
// and reports goodput, median and p99 latency, retransmission counts
// and wire-level loss. Every point uses a seeded deterministic
// impairment, so the figure is as reproducible as the clean ones.

// lossRtx is the sweep's retransmission timeout: production-style
// tuning (the paper's 50 ms default would dominate every percentile).
const lossRtx = 2 * sim.Millisecond

// LossRates returns the swept frame-loss probabilities.
func LossRates() []float64 { return []float64{0, 0.01, 0.05} }

// LossSizes returns the swept message sizes: an eager size, a
// rendezvous size and a large pull.
func LossSizes() []int { return []int{4 << 10, 256 << 10, 1 << 20} }

// LossIters is the ping-pong iteration count per point.
const LossIters = 40

// LossPoint is one measured (stack, loss rate, size) combination.
type LossPoint struct {
	Stack     string
	LossRate  float64
	Bytes     int
	Iters     int
	Delivered int // round trips with verified payloads in both directions

	GoodputMiBps float64 // one-way payload goodput over the whole run
	P50Usec      float64 // median half-round-trip latency
	P99Usec      float64 // tail half-round-trip latency

	Retransmits int64 // both stacks' eager+rndv+pull retransmissions
	WireLost    int64 // frames eaten by the impaired link (both dirs)
}

// lossStacks are the compared stacks, every one tuned to the sweep's
// retransmission timeout.
func lossStacks() []struct {
	name string
	s    Stack
} {
	omx := func(ioat bool) openmx.Config {
		return openmx.Config{IOAT: ioat, RegCache: true, RetransmitTimeout: lossRtx}
	}
	return []struct {
		name string
		s    Stack
	}{
		{"MX", Stack{Kind: "mxoe", MXRegCache: true, MX: mxoe.Config{RetransmitTimeout: lossRtx}}},
		{"Open-MX", Stack{Kind: "openmx", OMX: omx(false)}},
		{"Open-MX I/OAT", Stack{Kind: "openmx", OMX: omx(true)}},
	}
}

// lossSeed derives a point's impairment seed: fixed per (loss, size)
// so every stack faces the same adversary, stable across runs.
func lossSeed(loss float64, size int) int64 {
	return 7301 + int64(loss*10000)*131 + int64(size)
}

// lossPoint runs one point on a fresh two-host impaired testbed.
func lossPoint(name string, s Stack, loss float64, size, iters int) LossPoint {
	c := cluster.New(nil)
	a, b := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(a, b, cluster.Impair(cluster.Impairment{
		Seed: lossSeed(loss, size), LossRate: loss,
	}))
	open := func(h *cluster.Host) (openmx.Transport, func() int64) {
		switch s.Kind {
		case "mxoe":
			st := mxoe.Attach(h, s.mxConfig())
			return st, func() int64 { return st.Stats().Retransmits() }
		default:
			st := openmx.Attach(h, s.OMX)
			return st, func() int64 {
				t := st.Stats()
				return t.EagerRetransmits + t.RndvRetransmits + t.PullRetransmits
			}
		}
	}
	ta, rtxA := open(a)
	tb, rtxB := open(b)
	ea, eb := ta.Open(0, 2), tb.Open(0, 2)

	sendA, recvA := a.Alloc(size), a.Alloc(size)
	sendB, recvB := b.Alloc(size), b.Alloc(size)

	lat := make([]sim.Duration, 0, iters)
	delivered := 0
	var elapsed sim.Time
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size)
			eb.Wait(p, r)
			sendB.Fill(byte(2*i + 2))
			sendB.Produce(2)
			rs := eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size)
			eb.Wait(p, rs)
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			t0 := p.Now()
			sendA.Fill(byte(2*i + 1))
			sendA.Produce(2)
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			ea.Wait(p, rs)
			ea.Wait(p, rr)
			lat = append(lat, (p.Now()-t0)/2)
			// Verify both directions' payloads end to end (the fill
			// pattern differs per iteration, so a stale echo fails).
			if cluster.Equal(sendB, recvA) && cluster.Equal(sendA, recvB) {
				delivered++
			}
			elapsed = p.Now()
		}
	})
	c.RunFor(120 * sim.Second)
	defer c.Close()

	pt := LossPoint{
		Stack: name, LossRate: loss, Bytes: size, Iters: iters,
		Delivered:   delivered,
		Retransmits: rtxA() + rtxB(),
	}
	ns := c.NetStats()
	for _, l := range ns.Links {
		pt.WireLost += l.AB.FramesLost + l.BA.FramesLost
	}
	if len(lat) > 0 {
		sorted := append([]sim.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pt.P50Usec = sim.Time(sorted[(len(sorted)-1)/2]).Micros()
		pt.P99Usec = sim.Time(sorted[(99*len(sorted)-1)/100]).Micros()
	}
	if elapsed > 0 {
		pt.GoodputMiBps = float64(delivered*size) / (1 << 20) / elapsed.Seconds()
	}
	return pt
}

// LossSweep measures every (stack, loss rate, size) point as an
// independent runner job and returns them in sweep order (stack
// outermost, then loss rate, then size).
func LossSweep() []LossPoint {
	return lossSweepOver(LossRates(), LossSizes(), LossIters)
}

// lossSweepOver shards an arbitrary (rate, size) grid across the
// figures pool (reduced grids keep the determinism guardrail cheap).
func lossSweepOver(rates []float64, sizes []int, iters int) []LossPoint {
	stacks := lossStacks()
	var jobs []runner.Job
	for _, st := range stacks {
		for _, loss := range rates {
			for _, size := range sizes {
				st, loss, size := st, loss, size
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("loss/%s/%g%%/%s", st.name, loss*100, sizeName(size)),
					Key:   runner.Key("loss", st.s, loss, size, iters),
					Run: func() (any, error) {
						return lossPoint(st.name, st.s, loss, size, iters), nil
					},
				})
			}
		}
	}
	return sweep[LossPoint](jobs)
}

// RenderLoss formats the sweep as a fixed-width table.
func RenderLoss(points []LossPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# ping-pong under symmetric frame loss (seeded impairment, rtx timeout %v)\n", lossRtx)
	fmt.Fprintf(&b, "%-14s %6s %8s %12s %10s %10s %6s %9s %10s\n",
		"stack", "loss", "msgsize", "MiB/s", "p50[usec]", "p99[usec]", "rtx", "wire-lost", "delivered")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s %5.1f%% %8s %12.2f %10.2f %10.2f %6d %9d %6d/%d\n",
			p.Stack, p.LossRate*100, sizeName(p.Bytes),
			p.GoodputMiBps, p.P50Usec, p.P99Usec,
			p.Retransmits, p.WireLost, p.Delivered, p.Iters)
	}
	return b.String()
}
