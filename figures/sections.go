package figures

// The section registry: every named output section of the omxsim CLI
// ("micro", "fig3", …, "nicoll"), with its rendering moved here so
// the omxsimd service can run the exact same sections as tenant jobs.
// cmd/omxsim iterates Sections() to dispatch its commands; the two
// front ends share one registry, so a section added here appears in
// both — and renders byte-identically through either.

import (
	"fmt"
	"strings"

	"omxsim/metrics"
)

// Section is one named, independently renderable output section: a
// figure, a sweep, or a microbenchmark table.
type Section struct {
	// Name is the CLI command and service workload name ("fig3").
	Name string
	// Desc is the one-line description shown in usage and section
	// headers.
	Desc string

	render func(plot bool) string
}

// Render regenerates the section and returns its text; plot appends
// ASCII plots to curve figures (the CLI's -plot flag).
func (s Section) Render(plot bool) string { return s.render(plot) }

// Sections lists every section in canonical output order (the order
// "omxsim all" prints).
func Sections() []Section {
	return []Section{
		{"micro", "Section IV-A microbenchmarks", renderMicro},
		{"fig3", "Fig. 3: ping-pong vs no-copy prediction", tableSection(Fig3)},
		{"fig7", "Fig. 7: memcpy vs I/OAT copy by chunk size", tableSection(Fig7)},
		{"fig8", "Fig. 8: ping-pong with I/OAT receive offload", tableSection(Fig8)},
		{"fig9", "Fig. 9: receive-side CPU usage", renderFig9},
		{"fig10", "Fig. 10: shared-memory ping-pong", tableSection(Fig10)},
		{"fig11", "Fig. 11: IMB PingPong, I/OAT x regcache", tableSection(Fig11)},
		{"fig12", "Fig. 12: IMB suite normalized to MXoE", renderFig12},
		{"timeline", "Figs. 5/6: receive timelines", renderTimelineSection},
		{"nasis", "NAS IS proxy", renderNASISSection},
		{"coll", "collective latency vs size, I/OAT on/off, 4-16 procs", renderCollSection},
		{"loss", "goodput/latency/retransmits vs frame-loss rate, both stacks", renderLossSection},
		{"avail", "overlap/CPU-availability with injected compute, memcpy vs I/OAT", renderAvailSection},
		{"ablate", "ablations: thresholds, pull window, IRQ steering, extensions", renderAblateSection},
		{"multinic", "multi-NIC link aggregation: striped goodput vs NIC count and pull window", renderMultiNICSection},
		{"fattree", "fat-tree collectives at 64-512 ranks, I/OAT on/off, vs 1-switch", renderFatTreeSection},
		{"nicoll", "NIC-offloaded collectives: firmware vs host algorithms, CPU and overlap", renderNICollSection},
		{"adaptive", "adaptive vs static transport: goodput/p99/retransmits across loss x NICs", renderAdaptiveSection},
		{"dca", "memory hierarchy: DCA-warmed rings vs DMA-cold payloads, NUMA placement, regcache", renderDCASection},
	}
}

// SectionByName resolves a section name; ok reports whether it
// exists.
func SectionByName(name string) (Section, bool) {
	for _, s := range Sections() {
		if s.Name == name {
			return s, true
		}
	}
	return Section{}, false
}

// SectionNames lists the section names in output order.
func SectionNames() []string {
	all := Sections()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// tableSection adapts a single-table figure generator.
func tableSection(f func() *metrics.Table) func(bool) string {
	return func(plot bool) string { return renderTable(f(), plot) }
}

func renderTable(t *metrics.Table, plot bool) string {
	out := t.Render()
	if plot {
		out += t.ASCIIPlot(100, 20)
	}
	return out
}

func renderMicro(bool) string {
	m := MicroNumbers()
	var b strings.Builder
	fmt.Fprintf(&b, "I/OAT submission (1 descriptor):   %6.0f ns   (paper: ~350 ns)\n", m.SubmitNs)
	fmt.Fprintf(&b, "memcpy, uncached:                  %6.2f GiB/s (paper: ~1.6 GiB/s)\n", m.MemcpyColdGiBps)
	fmt.Fprintf(&b, "memcpy, cache-resident:            %6.2f GiB/s (paper: up to 12 GiB/s)\n", m.MemcpyCachedGiBps)
	fmt.Fprintf(&b, "I/OAT streaming, 4 kiB chunks:     %6.2f GiB/s (paper: ~2.4 GiB/s)\n", m.IOAT4kGiBps)
	fmt.Fprintf(&b, "offload break-even, uncached:      %6d B    (paper: ~600 B)\n", m.BreakEvenColdB)
	fmt.Fprintf(&b, "offload break-even, cached:        %6d B    (paper: ~2 kB)\n", m.BreakEvenCachedB)
	return b.String()
}

func renderFig9(bool) string {
	mem, ioat := Fig9Tables()
	return mem.Render() + "\n" + ioat.Render()
}

func renderFig12(bool) string {
	var b strings.Builder
	for _, panel := range Fig12All() {
		b.WriteString(panel.Render())
		b.WriteString("\n")
	}
	return b.String()
}

func renderTimelineSection(bool) string {
	return Timeline(false) + "\n" + Timeline(true)
}

func renderNASISSection(bool) string {
	return RenderNASIS(NASIS(1<<17, 3))
}

func renderCollSection(plot bool) string {
	tables := Coll()
	if plot {
		out := ""
		for _, t := range tables {
			out += t.Render() + t.ASCIIPlot(100, 20) + "\n"
		}
		return out + RenderColl(nil)
	}
	return RenderColl(tables)
}

func renderLossSection(bool) string {
	return RenderLoss(LossSweep())
}

func renderAvailSection(bool) string {
	return RenderAvail(AvailSweep())
}

func renderMultiNICSection(bool) string {
	return RenderMultiNIC(MultiNICSweep())
}

func renderFatTreeSection(plot bool) string {
	tables, lp := FatTree()
	if plot {
		out := ""
		for _, t := range tables {
			out += t.Render() + t.ASCIIPlot(100, 20) + "\n"
		}
		return out + RenderFatTree(nil, lp)
	}
	return RenderFatTree(tables, lp)
}

func renderNICollSection(bool) string {
	return RenderNIColl(NICollSweep())
}

func renderAdaptiveSection(bool) string {
	return RenderAdaptive(AdaptiveSweep())
}

func renderDCASection(bool) string {
	return RenderDCA(DCASweep())
}

func renderAblateSection(bool) string {
	return AblateMinFrag().Render() + "\n" +
		AblatePullWindow().Render() + "\n" +
		AblateIRQSteering().Render() + "\n" +
		AblateExtensions()
}
