// Package figures regenerates every table and figure of the paper's
// evaluation (Section IV): the I/OAT microbenchmarks, the ping-pong
// curves of Figures 3 and 8, the CPU-usage breakdown of Figure 9, the
// shared-memory curves of Figure 10, the IMB PingPong comparison of
// Figure 11, the full IMB sweep of Figure 12, and the NAS-IS-style
// workload mentioned in Section IV-D.
//
// Each Fig* function builds a fresh simulated testbed (two dual
// quad-core Clovertown hosts back to back, as in the paper), runs the
// workload, and returns the data as metrics tables whose series names
// match the paper's legends. The cmd/omxsim tool prints them; the
// figure tests assert their qualitative claims; bench_test.go wraps
// them as testing.B benchmarks.
package figures

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/imb"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/runner"
)

// Stack selects a protocol stack for a benchmark run.
type Stack struct {
	// Kind is "openmx" or "mxoe".
	Kind string
	// OMX configures the Open-MX stack (Kind "openmx").
	OMX openmx.Config
	// MXRegCache enables the native stack's registration cache
	// (Kind "mxoe").
	MXRegCache bool
	// MX carries the native stack's remaining options (retransmit
	// tuning for impaired sweeps); MXRegCache wins over MX.RegCache
	// when set.
	MX mxoe.Config
}

// mxConfig resolves the native-stack configuration: MX carries the
// full option set, with the legacy MXRegCache flag overriding its
// RegCache field when set. Every figure that attaches an mxoe stack
// must go through this one merge.
func (s Stack) mxConfig() mxoe.Config {
	cfg := s.MX
	if s.MXRegCache {
		cfg.RegCache = true
	}
	return cfg
}

// Name returns the paper-style legend label for the stack.
func (s Stack) Name() string {
	switch s.Kind {
	case "mxoe":
		return "MX"
	case "openmx":
		n := "Open-MX"
		if s.OMX.SkipBHCopy {
			n += " ignoring BH receive copy"
		} else if s.OMX.IOAT {
			n += " with DMA copy in BH receive"
		}
		if !s.OMX.RegCache {
			n += " w/o regcache"
		}
		return n
	}
	return s.Kind
}

// testbed is a multi-node world with ppn ranks per node (block
// placement, as MPICH used).
type testbed struct {
	c *cluster.Cluster
	w *mpi.World
}

// rankCores places up to two ranks per node on cores 2 and 4: distinct
// L2 domains and distinct sockets, so the 2-ppn shared-memory traffic
// crosses sockets (the situation the paper's I/OAT shm path wins in).
var rankCores = []int{2, 4}

// newTestbed builds the paper's 2-node back-to-back testbed over the
// given stack.
func newTestbed(s Stack, ppn int) *testbed { return newTestbedN(s, 2, ppn) }

// newTestbedN builds a testbed of nodes machines with ppn ranks each.
// Two nodes connect back to back (the paper's switchless testbed);
// more go through a store-and-forward Ethernet switch, the collective
// scaling topology.
func newTestbedN(s Stack, nodes, ppn int) *testbed {
	if ppn < 1 || ppn > len(rankCores) {
		panic(fmt.Sprintf("figures: ppn %d out of range 1..%d", ppn, len(rankCores)))
	}
	if nodes < 1 {
		panic(fmt.Sprintf("figures: node count %d out of range", nodes))
	}
	var wiring cluster.Wiring
	switch {
	case nodes == 2:
		wiring = cluster.BackToBack{}
	case nodes > 2:
		wiring = cluster.SingleSwitch{}
	}
	c := cluster.Build(cluster.Topology{
		Hosts:  []cluster.HostSet{{Name: "node", N: nodes, Indexed: true}},
		Wiring: wiring,
	})
	return worldOver(c, s, ppn)
}

// worldOver attaches the stack to every host of a built cluster (in
// creation order) and opens ppn ranks per node, block-placed. It
// panics on invalid input — the figure-generator contract; the
// service path goes through worldOverE.
func worldOver(c *cluster.Cluster, s Stack, ppn int) *testbed {
	w, err := worldOverE(c, s, ppn)
	if err != nil {
		panic(err)
	}
	return &testbed{c: c, w: w}
}

// worldOverE is worldOver with invalid input — ppn out of range, an
// unknown stack kind — reported as an error, so untrusted sweep specs
// reaching SweepOn cannot kill a long-running caller.
func worldOverE(c *cluster.Cluster, s Stack, ppn int) (*mpi.World, error) {
	if ppn < 1 || ppn > len(rankCores) {
		return nil, fmt.Errorf("figures: ppn %d out of range 1..%d", ppn, len(rankCores))
	}
	var open func(h *cluster.Host) openmx.Transport
	switch s.Kind {
	case "mxoe":
		open = func(h *cluster.Host) openmx.Transport { return mxoe.Attach(h, s.mxConfig()) }
	case "openmx":
		open = func(h *cluster.Host) openmx.Transport { return openmx.Attach(h, s.OMX) }
	default:
		return nil, fmt.Errorf("figures: unknown stack kind %q", s.Kind)
	}
	w := mpi.NewWorld(c)
	for _, h := range c.Hosts() {
		tr := open(h)
		for slot := 0; slot < ppn; slot++ {
			w.AddRank(tr.Open(slot, rankCores[slot]), h, rankCores[slot])
		}
	}
	return w, nil
}

// runIMB runs one IMB test over a fresh testbed and returns its
// results.
func runIMB(s Stack, ppn int, test string, sizes []int, iters func(int) int) []imb.Result {
	tb := newTestbed(s, ppn)
	r := &imb.Runner{C: tb.c, W: tb.w, Iters: iters}
	return r.Run(test, sizes)
}

// imbJob wraps one independent (stack, test, sizes, ppn) IMB run as a
// runner job. itersName canonically names the iteration schedule (the
// schedule itself is a func and cannot be hashed) and becomes part of
// the cache key.
func imbJob(s Stack, ppn int, test string, sizes []int, itersName string, iters func(int) int) runner.Job {
	return runner.Job{
		Label: fmt.Sprintf("imb/%s/%s/%dppn", test, s.Name(), ppn),
		Key:   runner.Key("imb", s, ppn, test, sizes, itersName),
		Run:   func() (any, error) { return runIMB(s, ppn, test, sizes, iters), nil },
	}
}

// PingPongSizes is the 16 B – 4 MiB sweep of Figures 3 and 8.
func PingPongSizes() []int { return imb.StandardSizes(16, 4<<20) }

// WideSizes is the 16 B – 16 MiB sweep of Figures 10 and 11.
func WideSizes() []int { return imb.StandardSizes(16, 16<<20) }

// pingPongCurve measures IMB PingPong throughput (MiB/s) per size,
// labelled with the paper's legend text.
func pingPongCurve(name string, s Stack, sizes []int) *metrics.Series {
	out := &metrics.Series{Name: name}
	for _, res := range runIMB(s, 1, "PingPong", sizes, nil) {
		out.Add(float64(res.Bytes), res.MiBps)
	}
	return out
}

// curve pairs a legend label with the stack that produces it.
type curve struct {
	name string
	s    Stack
}

// pingPongTable sweeps the curves concurrently (one fresh testbed per
// curve, so the runs are independent) and assembles them into a table
// in legend order. Curves are cached under (name, stack, sizes):
// Figures 3 and 8 share three of them.
func pingPongTable(title string, curves []curve, sizes []int) *metrics.Table {
	t := metrics.NewTable(title, "msgsize", "MiB/s")
	jobs := make([]runner.Job, len(curves))
	for i, c := range curves {
		c := c
		jobs[i] = runner.Job{
			Label: "pingpong/" + c.name,
			Key:   runner.Key("pingpong-curve", c.name, c.s, sizes),
			Run:   func() (any, error) { return pingPongCurve(c.name, c.s, sizes), nil },
		}
	}
	// Clone what the sweep returns: cached jobs hand every caller the
	// same *Series, and tables are mutable public API — aliasing the
	// cache would let one figure's caller corrupt another's curves.
	for _, s := range sweep[*metrics.Series](jobs) {
		t.Series = append(t.Series, s.Clone())
	}
	return t
}

// Fig3 regenerates Figure 3: native MX versus Open-MX versus the
// prediction with the bottom-half receive copy ignored.
func Fig3() *metrics.Table {
	return pingPongTable(
		"Fig. 3: Expected Open-MX improvement when removing the BH receive copy",
		[]curve{
			{"MX", Stack{Kind: "mxoe", MXRegCache: true}},
			{"Open-MX ignoring BH receive copy", Stack{Kind: "openmx", OMX: openmx.Config{SkipBHCopy: true, RegCache: true}}},
			{"Open-MX", Stack{Kind: "openmx", OMX: openmx.Config{RegCache: true}}},
		},
		PingPongSizes())
}

// Fig8 regenerates Figure 8: Figure 3 plus the I/OAT overlapped-copy
// curve.
func Fig8() *metrics.Table {
	return pingPongTable(
		"Fig. 8: Ping-pong improvement using I/OAT vs the no-copy prediction",
		[]curve{
			{"MX", Stack{Kind: "mxoe", MXRegCache: true}},
			{"Open-MX ignoring BH receive copy", Stack{Kind: "openmx", OMX: openmx.Config{SkipBHCopy: true, RegCache: true}}},
			{"Open-MX with DMA copy in BH receive", Stack{Kind: "openmx", OMX: openmx.Config{IOAT: true, RegCache: true}}},
			{"Open-MX", Stack{Kind: "openmx", OMX: openmx.Config{RegCache: true}}},
		},
		PingPongSizes())
}

// Fig11 regenerates Figure 11: IMB PingPong over MXoE and Open-MX,
// with I/OAT and the registration cache enabled or not.
func Fig11() *metrics.Table {
	return pingPongTable(
		"Fig. 11: IMB PingPong with I/OAT and registration cache on/off",
		[]curve{
			{"MX", Stack{Kind: "mxoe", MXRegCache: true}},
			{"Open-MX I/OAT", Stack{Kind: "openmx", OMX: openmx.Config{IOAT: true, RegCache: true}}},
			{"Open-MX", Stack{Kind: "openmx", OMX: openmx.Config{RegCache: true}}},
			{"Open-MX I/OAT w/o regcache", Stack{Kind: "openmx", OMX: openmx.Config{IOAT: true}}},
			{"Open-MX w/o regcache", Stack{Kind: "openmx", OMX: openmx.Config{}}},
		},
		WideSizes())
}
