package figures

import (
	"strings"
	"testing"

	"omxsim/metrics"
)

// TestCollIOATWinsLargeMessages: the point of the collective figure —
// with every rank receiving several large fragmentable messages at
// once, I/OAT copy offload must cut collective latency at large
// sizes and leave small sizes untouched.
func TestCollIOATWinsLargeMessages(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs := collTables([]string{"Alltoall"}, []int{1 << 10, 1 << 20}, []collWorld{{2, 2}})
	tab := tabs[0]
	plainBig, _ := tab.Get("Open-MX, 4 procs").At(1 << 20)
	ioatBig, _ := tab.Get("Open-MX I/OAT, 4 procs").At(1 << 20)
	if ioatBig >= plainBig*0.95 {
		t.Errorf("1MB Alltoall: ioat=%.0fus not clearly below plain=%.0fus", ioatBig, plainBig)
	}
	plainSmall, _ := tab.Get("Open-MX, 4 procs").At(1 << 10)
	ioatSmall, _ := tab.Get("Open-MX I/OAT, 4 procs").At(1 << 10)
	if ioatSmall < plainSmall*0.9 || ioatSmall > plainSmall*1.1 {
		t.Errorf("1kB Alltoall: ioat=%.1fus vs plain=%.1fus, want unchanged below threshold",
			ioatSmall, plainSmall)
	}
}

// TestCollLatencyScalesWithWorld: latency must grow with the world
// size at a fixed message size (more ranks, more rounds/volume).
func TestCollLatencyScalesWithWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tabs := collTables([]string{"Allreduce"}, []int{64 << 10}, []collWorld{{2, 2}, {4, 2}})
	tab := tabs[0]
	small, _ := tab.Get("Open-MX, 4 procs").At(64 << 10)
	big, _ := tab.Get("Open-MX, 8 procs").At(64 << 10)
	if big <= small {
		t.Errorf("64kB Allreduce: 8 procs (%.0fus) not slower than 4 procs (%.0fus)", big, small)
	}
}

// TestParallelMatchesSerialColl is the runner-determinism guardrail
// for collective sweeps: sharding the (test, world, stack) points of
// the collective figure across 8 workers must produce bit-identical
// tables to a serial run — switch-topology worlds included.
func TestParallelMatchesSerialColl(t *testing.T) {
	tests := []string{"Allreduce", "Bcast"}
	sizes := []int{4 << 10, 64 << 10}
	worlds := []collWorld{{2, 2}, {4, 1}}
	run := func(workers int) (tabs []*metrics.Table) {
		withPool(workers, func() { tabs = collTables(tests, sizes, worlds) })
		return tabs
	}
	serial, parallel := run(1), run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("table counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Errorf("parallel collective table %d differs from serial:\nserial:\n%s\nparallel:\n%s",
				i, serial[i].Render(), parallel[i].Render())
		}
	}
}

// TestRenderCollAnnotatesAlgorithms: the rendered figure must record
// which algorithm produced each point.
func TestRenderCollAnnotatesAlgorithms(t *testing.T) {
	// Render with empty tables; only the annotation footer matters.
	out := RenderColl(nil)
	for _, want := range []string{"algorithm selection", "ring", "bruck", "scatter-allgather", "recursive-doubling"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
}
