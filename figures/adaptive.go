package figures

import (
	"fmt"
	"sort"
	"strings"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// The adaptive figure (beyond the paper): the paper's pull window and
// retransmission timeout are hand-set constants, and PR 5 showed the
// fixed two-block window plateauing on aggregated links. This sweep
// pits the self-tuning transport tier (Config.Adaptive: AIMD pull
// window + RTT-derived retransmission timeouts + IRQ steering) against
// both static policies — the paper's two blocks and two blocks per
// NIC — across the loss×multinic cross-product: frame-loss rate ×
// NIC count × receive-copy engine. The acceptance bar (pinned by
// TestAdaptiveNeverWorse) is that adaptive matches the best static
// policy at every point, never more than 10% below it: one config
// that needs no hand-tuning for either the clean-aggregated or the
// lossy regime.

// AdaptiveLossRates returns the swept frame-loss probabilities
// ({0–5%}, the loss figure's range).
func AdaptiveLossRates() []float64 { return []float64{0, 0.01, 0.05} }

// AdaptiveNICCounts returns the swept NIC counts.
func AdaptiveNICCounts() []int { return []int{1, 2, 4} }

// adaptiveModes are the compared receive-copy engines.
func adaptiveModes() []string { return []string{"memcpy", "I/OAT"} }

// AdaptivePolicies names the compared window/timeout policies in
// output order: the paper's fixed two blocks, two blocks per NIC
// (both with the loss sweep's tuned 2 ms retransmission timeout), and
// the self-tuning tier.
func AdaptivePolicies() []string { return []string{"static-2", "static-2xN", "adaptive"} }

// AdaptiveMsgSize is the per-iteration message size: a large pull, so
// every transfer exercises the window controller.
const AdaptiveMsgSize = 1 << 20

// AdaptiveIters is the measured ping-pong iteration count per point;
// adaptiveWarmup round trips run first, unmeasured, so every policy
// is scored on steady state (the statics are flat from the first
// iteration; adaptive needs a couple of transfers to calibrate its
// estimator and ramp the window).
const (
	AdaptiveIters  = 10
	adaptiveWarmup = 2
)

// AdaptivePoint is one measured (mode, policy, loss rate, NIC count)
// combination.
type AdaptivePoint struct {
	Mode     string // receive copy: "memcpy" or "I/OAT"
	Policy   string // "static-2", "static-2xN" or "adaptive"
	LossRate float64
	NICs     int
	Bytes    int
	Iters    int

	Delivered int // measured round trips with verified payloads in both directions

	GoodputMiBps float64 // one-way payload goodput over the measured iterations
	P50Usec      float64 // median half-round-trip latency
	P99Usec      float64 // tail half-round-trip latency

	Retransmits int64 // both hosts' eager+rndv+pull retransmissions (whole run)
	WireLost    int64 // frames eaten by the impaired link (both dirs, whole run)
}

// adaptiveConfig builds one policy's Open-MX configuration. The
// statics pin the pull window and take the loss sweep's tuned
// retransmission timeout; adaptive leaves both unset so the AIMD
// controller and the RTT-derived timeout engage.
func adaptiveConfig(mode, policy string, nics int) openmx.Config {
	cfg := openmx.Config{RegCache: true, IOAT: mode == "I/OAT"}
	switch policy {
	case "static-2":
		cfg.PullBlocks = 2
		cfg.RetransmitTimeout = lossRtx
	case "static-2xN":
		cfg.PullBlocks = 2 * nics
		cfg.RetransmitTimeout = lossRtx
	default: // adaptive
		cfg.Adaptive = true
	}
	return cfg
}

// adaptiveSeed derives a point's impairment seed: fixed per
// (loss, NICs) so every policy faces the same adversary.
func adaptiveSeed(loss float64, nics int) int64 {
	return 9103 + int64(loss*10000)*131 + int64(nics)*17
}

// adaptivePoint runs one point on a fresh two-host testbed with nics
// aggregated cables and a seeded impaired link.
func adaptivePoint(mode, policy string, loss float64, nics, size, iters int) AdaptivePoint {
	c := cluster.New(nil)
	irq := cluster.NICIRQCores(multiNICIRQCores...)
	a := c.NewHost("node0", cluster.MultiNIC(nics, irq))
	b := c.NewHost("node1", cluster.MultiNIC(nics, irq))
	if loss > 0 {
		cluster.Link(a, b, cluster.Impair(cluster.Impairment{
			Seed: adaptiveSeed(loss, nics), LossRate: loss,
		}))
	} else {
		cluster.Link(a, b)
	}
	cfg := adaptiveConfig(mode, policy, nics)
	sa, sb := openmx.Attach(a, cfg), openmx.Attach(b, cfg)
	rtx := func(s *openmx.Stack) int64 {
		t := s.Stats()
		return t.EagerRetransmits + t.RndvRetransmits + t.PullRetransmits
	}
	ea, eb := sa.Open(0, 2), sb.Open(0, 2)

	sendA, recvA := a.Alloc(size), a.Alloc(size)
	sendB, recvB := b.Alloc(size), b.Alloc(size)

	total := adaptiveWarmup + iters
	lat := make([]sim.Duration, 0, iters)
	delivered := 0
	var tStart, elapsed sim.Time
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size)
			eb.Wait(p, r)
			sendB.Fill(byte(2*i + 2))
			sendB.Produce(2)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			if i == adaptiveWarmup {
				tStart = p.Now()
			}
			t0 := p.Now()
			sendA.Fill(byte(2*i + 1))
			sendA.Produce(2)
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			ea.Wait(p, rs)
			ea.Wait(p, rr)
			if i < adaptiveWarmup {
				continue
			}
			lat = append(lat, (p.Now()-t0)/2)
			// Verify both directions' payloads end to end (the fill
			// pattern differs per iteration, so a stale echo fails).
			if cluster.Equal(sendB, recvA) && cluster.Equal(sendA, recvB) {
				delivered++
			}
			elapsed = p.Now()
		}
	})
	c.RunFor(120 * sim.Second)
	defer c.Close()

	pt := AdaptivePoint{
		Mode: mode, Policy: policy, LossRate: loss, NICs: nics,
		Bytes: size, Iters: iters,
		Delivered:   delivered,
		Retransmits: rtx(sa) + rtx(sb),
	}
	ns := c.NetStats()
	for _, l := range ns.Links {
		pt.WireLost += l.AB.FramesLost + l.BA.FramesLost
	}
	if len(lat) > 0 {
		sorted := append([]sim.Duration(nil), lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pt.P50Usec = sim.Time(sorted[(len(sorted)-1)/2]).Micros()
		pt.P99Usec = sim.Time(sorted[(99*len(sorted)-1)/100]).Micros()
	}
	if elapsed > tStart {
		pt.GoodputMiBps = float64(delivered*size) / (1 << 20) / (elapsed - tStart).Seconds()
	}
	return pt
}

// AdaptiveSweep measures every (mode, policy, loss, NICs) point as an
// independent runner job, in sweep order (mode outermost, then loss,
// then NICs, then policy).
func AdaptiveSweep() []AdaptivePoint {
	return adaptiveSweepOver(AdaptiveLossRates(), AdaptiveNICCounts(), AdaptiveIters)
}

// adaptiveSweepOver shards an arbitrary (loss, NICs) grid across the
// figures pool (reduced grids keep the guardrail tests cheap).
func adaptiveSweepOver(rates []float64, counts []int, iters int) []AdaptivePoint {
	var jobs []runner.Job
	for _, mode := range adaptiveModes() {
		for _, loss := range rates {
			for _, nics := range counts {
				for _, policy := range AdaptivePolicies() {
					mode, policy, loss, nics := mode, policy, loss, nics
					jobs = append(jobs, runner.Job{
						Label: fmt.Sprintf("adaptive/%s/%g%%/%dnic/%s", mode, loss*100, nics, policy),
						Key:   runner.Key("adaptive", mode, policy, loss, nics, AdaptiveMsgSize, iters),
						Run: func() (any, error) {
							return adaptivePoint(mode, policy, loss, nics, AdaptiveMsgSize, iters), nil
						},
					})
				}
			}
		}
	}
	return sweep[AdaptivePoint](jobs)
}

// RenderAdaptive formats the sweep: one row per (mode, loss, NICs)
// with goodput under each policy, adaptive's ratio to the best
// static, its tail latency and the retransmission counts.
func RenderAdaptive(points []AdaptivePoint) string {
	byKey := make(map[string]AdaptivePoint, len(points))
	key := func(mode, policy string, loss float64, nics int) string {
		return fmt.Sprintf("%s/%s/%g/%d", mode, policy, loss, nics)
	}
	for _, p := range points {
		byKey[key(p.Mode, p.Policy, p.LossRate, p.NICs)] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# adaptive vs static transport: %s ping-pong goodput across loss x NICs (%d iters after %d warmup, seeded impairment)\n",
		sizeName(AdaptiveMsgSize), AdaptiveIters, adaptiveWarmup)
	fmt.Fprintf(&b, "# static-2 = 2 pull blocks, static-2xN = 2 per NIC (both rtx %v); adaptive = AIMD window + RTT-derived timeouts\n", lossRtx)
	fmt.Fprintf(&b, "%-7s %5s %4s %11s %11s %11s %8s %10s %6s %9s\n",
		"copy", "loss", "nics", "static-2", "static-2xN", "adaptive", "adv/best", "p99[usec]", "rtx", "delivered")
	for _, mode := range adaptiveModes() {
		for _, loss := range AdaptiveLossRates() {
			for _, nics := range AdaptiveNICCounts() {
				s2 := byKey[key(mode, "static-2", loss, nics)]
				sn := byKey[key(mode, "static-2xN", loss, nics)]
				ad := byKey[key(mode, "adaptive", loss, nics)]
				best := max(s2.GoodputMiBps, sn.GoodputMiBps)
				ratio := 0.0
				if best > 0 {
					ratio = ad.GoodputMiBps / best
				}
				fmt.Fprintf(&b, "%-7s %4.1f%% %4d %11.2f %11.2f %11.2f %8.2f %10.2f %6d %6d/%d\n",
					mode, loss*100, nics,
					s2.GoodputMiBps, sn.GoodputMiBps, ad.GoodputMiBps, ratio,
					ad.P99Usec, ad.Retransmits, ad.Delivered, ad.Iters)
			}
		}
	}
	return b.String()
}
