package figures

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/sim/trace"
)

// TraceJSON converts a stack's trace-event stream into Chrome
// trace_event JSON (chrome://tracing, Perfetto). Receive-path spans,
// the I/OAT engine and the transport-protocol spans land in separate
// trace processes; retransmissions render as instants and the
// cwnd/srtt/pull-queue samples as counter series. The conversion is
// deterministic: identical event streams produce byte-identical JSON.
func TraceJSON(events []core.TraceEvent) []byte {
	doc := trace.NewDoc()
	rx := doc.Process(1, "receive path")
	engine := doc.Process(2, "I/OAT engine")
	tp := doc.Process(3, "transport")
	for _, ev := range events {
		switch ev.Kind {
		case "process", "memcpy", "submit", "wait", "notify":
			rx.Span(ev.Kind, "rx", ev.Start, ev.End, trace.Int("frag", ev.Frag))
		case "dma-copy":
			engine.Span(ev.Kind, "ioat", ev.Start, ev.End, trace.Int("frag", ev.Frag))
		case "eager":
			tp.Span(ev.Kind, "proto", ev.Start, ev.End,
				trace.Int("seq", int(ev.Seq)), trace.Int("lane", ev.Lane))
		case "rndv":
			tp.Span(ev.Kind, "proto", ev.Start, ev.End,
				trace.Int("seq", int(ev.Seq)), trace.Int("window", ev.Window))
		case "pull":
			tp.Span(fmt.Sprintf("pull block %d", ev.Block), "proto", ev.Start, ev.End,
				trace.Int("seq", int(ev.Seq)), trace.Int("block", ev.Block),
				trace.Int("lane", ev.Lane), trace.Int("window", ev.Window))
		case "collective":
			tp.Span(fmt.Sprintf("collective %s", ev.Name), "proto", ev.Start, ev.End,
				trace.Int("seq", int(ev.Seq)))
		case "retransmit":
			tp.Instant(ev.Kind, "proto", ev.Start,
				trace.Int("seq", int(ev.Seq)), trace.Int("block", ev.Block),
				trace.Int("lane", ev.Lane))
		case "counter":
			tp.Counter(ev.Name, ev.Start, ev.Value)
		}
	}
	return doc.Render()
}

// TimelineTraceJSON exports the five-fragment receive of Figures 5/6
// (see Timeline) as Chrome trace-event JSON.
func TimelineTraceJSON(withIOAT bool) []byte {
	return TraceJSON(TimelineEvents(withIOAT))
}
