package figures

import (
	"fmt"
	"strings"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/runner"
	"omxsim/sim"
)

// The availability figure (`omxsim avail`) reproduces the paper's
// headline argument directly: I/OAT's win is not raw latency but freed
// host CPU — the DMA engine moves bytes while the processor runs
// application code. The sweep is a ping-pong with injected
// per-iteration compute on rank 0, message size × {memcpy, I/OAT} ×
// {remote, local}, with rank 0 pinned to the interrupt core so
// bottom-half receive work and application compute contend for the
// same CPU (the paper's one-CPU availability methodology). Each point
// runs the same ping-pong twice:
//
//  1. compute-free, measuring the pure communication time T_comm, the
//     non-compute host CPU it consumed, and goodput;
//  2. with injected compute self-calibrated to twice T_comm (split
//     evenly across iterations), so rank 0's core is saturated and
//     every microsecond the receive path steals from the application
//     surfaces as lost overlap.
//
// Achieved overlap % is then
//
//	(T_comm + T_compute − T_both) / min(T_comm, T_compute) × 100
//
// — 100 % when communication hides entirely behind compute (the DMA
// engine moves the bytes), sinking toward 0 as the bottom-half memcpy
// steals the application's cycles. Host CPU µs per MiB counts every
// non-compute busy ledger on every involved host per mebibyte of
// payload moved — the paper's "cycles returned to the application"
// per unit of data.
//
// Between compute quanta rank 0 calls Test, the standard MPI
// overlap idiom — the library must get occasional control to turn a
// rendezvous event into a pull — and the quantum models a preemptive
// kernel's scheduling granularity.

// AvailSizes returns the swept message sizes: one eager size below
// every threshold, then rendezvous sizes where the offload engages.
func AvailSizes() []int { return []int{32 << 10, 128 << 10, 512 << 10, 2 << 20} }

// AvailIters is the measured ping-pong iteration count per point
// (after one warm-up round trip).
const AvailIters = 8

// availComputeFactor scales the injected compute relative to the
// measured communication time (2 saturates the core: there is always
// application work the receive path could be stealing cycles from).
const availComputeFactor = 2

// availQuantum is the compute slice between library progress polls.
const availQuantum = 5 * sim.Microsecond

// AvailPoint is one measured (mode, placement, size) combination.
type AvailPoint struct {
	Mode  string // "memcpy" or "I/OAT"
	Place string // "remote" (two hosts) or "local" (one host, cross-socket)
	Bytes int
	Iters int
	// Delivered counts round trips whose payloads verified in both
	// directions — the minimum across the compute-free and the
	// compute-loaded run, so a corruption in either invalidates the
	// point.
	Delivered int

	OverlapPct   float64 // achieved compute/communication overlap
	HostCPUPerMB float64 // non-compute host CPU µs per MiB of payload moved
	GoodputMiBps float64 // one-way payload goodput, compute-free run
}

// availConfig builds the stack configuration for one mode/placement.
func availConfig(mode, place string) openmx.Config {
	cfg := openmx.Config{RegCache: true}
	if mode == "I/OAT" {
		cfg.IOAT = true
		if place == "local" {
			cfg.IOATShm = true
		}
	}
	return cfg
}

// availRun executes one measured ping-pong and returns the elapsed
// time of the measured phase, the non-compute host CPU it consumed
// (all involved hosts), and the verified round-trip count.
func availRun(mode, place string, size, iters int, compute sim.Duration) (elapsed sim.Duration, commCPU sim.Duration, delivered int) {
	cfg := availConfig(mode, place)
	c := cluster.New(nil)
	defer c.Close()
	ha := c.NewHost("node0")
	sa := openmx.Attach(ha, cfg)
	var hb *cluster.Host
	var sb *openmx.Stack
	var coreA, coreB int
	if place == "remote" {
		hb = c.NewHost("node1")
		cluster.Link(ha, hb)
		sb = openmx.Attach(hb, cfg)
		// Both ranks on their host's interrupt core: receive bottom
		// halves and application compute contend for the same CPU.
		coreA, coreB = 0, 0
	} else {
		hb, sb = ha, sa
		// Cross-socket placement, the Figure 10 case the shared-memory
		// I/OAT path targets. Core 0 still takes the (idle) NIC's
		// interrupts.
		coreA, coreB = 0, 4
	}
	ea := sa.Open(0, coreA)
	eb := sb.Open(1, coreB)

	sendA, recvA := ha.Alloc(size), ha.Alloc(size)
	sendB, recvB := hb.Alloc(size), hb.Alloc(size)
	machineA := ha.Machine()

	var t0, t1 sim.Time
	warmups := 1
	total := warmups + iters
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size)
			eb.Wait(p, r)
			sendB.Fill(byte(2*i + 2))
			sendB.Produce(coreB)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			if i == warmups {
				// Measured phase: fresh CPU window on every host.
				sa.ResetCPUStats()
				if place == "remote" {
					sb.ResetCPUStats()
				}
				t0 = p.Now()
			}
			sendA.Fill(byte(2*i + 1))
			sendA.Produce(coreA)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			// Injected application compute, sliced so bottom-half work
			// interleaves; Test between quanta is the progress poll.
			for left := compute; left > 0; left -= availQuantum {
				machineA.Sys.Core(coreA).RunOn(p, cpu.AppCompute, min(left, availQuantum))
				ea.Test(p, rr)
			}
			ea.Wait(p, rs)
			ea.Wait(p, rr)
			if i >= warmups && cluster.Equal(sendA, recvB) && cluster.Equal(sendB, recvA) {
				delivered++
			}
			t1 = p.Now()
		}
	})
	if blocked := c.Run(); blocked != 0 {
		panic(fmt.Sprintf("figures: avail %s/%s/%d deadlocked", mode, place, size))
	}
	st := sa.CPUStats()
	commCPU = st.Busy() - st.Busy(cpu.AppCompute)
	if place == "remote" {
		stB := sb.CPUStats()
		commCPU += stB.Busy() - stB.Busy(cpu.AppCompute)
	}
	return t1 - t0, commCPU, delivered
}

// availPoint measures one sweep point: a compute-free run for goodput
// and CPU cost, then a compute-loaded run for the achieved overlap.
func availPoint(mode, place string, size, iters int) AvailPoint {
	comm, commCPU, delivered := availRun(mode, place, size, iters, 0)
	computeIter := availComputeFactor * comm / sim.Duration(iters)
	compute := computeIter * sim.Duration(iters)
	both, _, deliveredBoth := availRun(mode, place, size, iters, computeIter)

	pt := AvailPoint{Mode: mode, Place: place, Bytes: size, Iters: iters,
		Delivered: min(delivered, deliveredBoth)}
	if denom := min(comm, compute); denom > 0 {
		overlap := float64(comm+compute-both) / float64(denom) * 100
		pt.OverlapPct = max(0, min(100, overlap))
	}
	moved := float64(2*iters*size) / (1 << 20) // both directions
	if moved > 0 {
		pt.HostCPUPerMB = sim.Time(commCPU).Micros() / moved
	}
	if comm > 0 {
		pt.GoodputMiBps = float64(iters*size) / (1 << 20) / sim.Time(comm).Seconds()
	}
	return pt
}

// AvailSweep measures every (mode, placement, size) point as an
// independent runner job and returns them in sweep order (placement
// outermost, then mode, then size).
func AvailSweep() []AvailPoint {
	return availSweepOver(AvailSizes(), AvailIters)
}

// availSweepOver shards an arbitrary size grid across the figures
// pool (reduced grids keep the determinism guardrail cheap).
func availSweepOver(sizes []int, iters int) []AvailPoint {
	var jobs []runner.Job
	for _, place := range []string{"remote", "local"} {
		for _, mode := range []string{"memcpy", "I/OAT"} {
			for _, size := range sizes {
				place, mode, size := place, mode, size
				jobs = append(jobs, runner.Job{
					Label: fmt.Sprintf("avail/%s/%s/%s", place, mode, sizeName(size)),
					Key:   runner.Key("avail", place, mode, size, iters),
					Run: func() (any, error) {
						return availPoint(mode, place, size, iters), nil
					},
				})
			}
		}
	}
	return sweep[AvailPoint](jobs)
}

// RenderAvail formats the sweep as a fixed-width table with the
// autotuner footer (chosen versus paper thresholds).
func RenderAvail(points []AvailPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# CPU availability: ping-pong with injected compute (%d iters, compute = %dx measured comm time in %v quanta, rank 0 on the interrupt core)\n",
		AvailIters, availComputeFactor, availQuantum)
	fmt.Fprintf(&b, "%-8s %-8s %8s %10s %16s %10s %10s\n",
		"place", "copy", "msgsize", "overlap%", "hostCPU[us/MiB]", "MiB/s", "delivered")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8s %-8s %8s %10.1f %16.1f %10.1f %7d/%d\n",
			p.Place, p.Mode, sizeName(p.Bytes),
			p.OverlapPct, p.HostCPUPerMB, p.GoodputMiBps, p.Delivered, p.Iters)
	}
	th := openmx.ProbeThresholds(platform.Clovertown())
	d := openmx.Defaults()
	fmt.Fprintf(&b, "# autotune (Clovertown): eager->rndv %s (paper %s), local I/OAT %s (paper %s), offload floor %s msgs / %s frags (paper %s / %s)\n",
		sizeName(th.LargeThreshold), sizeName(d.LargeThreshold),
		sizeName(th.ShmIOATThreshold), sizeName(d.ShmIOATThreshold),
		sizeName(th.IOATMinMsg), sizeName(th.IOATMinFrag),
		sizeName(d.IOATMinMsg), sizeName(d.IOATMinFrag))
	return b.String()
}
