package figures

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
	"omxsim/sim"
)

// Fig9Row is one bar of Figure 9: the receive-side CPU usage split
// while receiving a stream of synchronous large messages.
type Fig9Row struct {
	Bytes      int
	UserPct    float64 // user library
	DriverPct  float64 // driver command processing (incl. pinning)
	BHPct      float64 // bottom-half receive (processing + copies)
	ComputePct float64
}

// Total returns the stacked height.
func (r Fig9Row) Total() float64 { return r.UserPct + r.DriverPct + r.BHPct + r.ComputePct }

// Fig9 regenerates Figure 9: receiver CPU usage with the memcpy-based
// bottom half versus the overlapped I/OAT copy, for 64 kB – 16 MB
// messages. Like the paper, pinning happens per message (no
// registration cache), which is the driver share of the bars.
func Fig9() (memcpyRows, ioatRows []Fig9Row) {
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	var jobs []runner.Job
	for _, withIOAT := range []bool{false, true} {
		for _, size := range sizes {
			withIOAT, size := withIOAT, size
			jobs = append(jobs, runner.Job{
				Label: fmt.Sprintf("fig9/%s/ioat=%v", sizeName(size), withIOAT),
				Key:   runner.Key("fig9-point", size, withIOAT),
				Run:   func() (any, error) { return fig9Point(size, withIOAT), nil },
			})
		}
	}
	rows := sweep[Fig9Row](jobs)
	return rows[:len(sizes)], rows[len(sizes):]
}

// fig9Point streams synchronous large messages from node0 to node1
// and accounts node1's CPU time by category.
func fig9Point(size int, withIOAT bool) Fig9Row {
	cfg := openmx.Config{IOAT: withIOAT}
	tb := newTestbed(Stack{Kind: "openmx", OMX: cfg}, 1)
	iters := 6
	if size >= 4<<20 {
		iters = 3
	}
	recvHost := tb.w.Rank(1).Host.Machine()
	var t0, t1 sim.Time
	tb.w.Spawn(func(r *mpi.Rank) {
		sbuf := r.Host.Alloc(size)
		rbuf := r.Host.Alloc(size)
		// Warm-up message, then measure.
		if r.ID == 0 {
			r.Produce(sbuf)
			r.Send(1, 1, sbuf, 0, size)
		} else {
			r.Recv(0, 1, rbuf, 0, size)
		}
		r.Barrier()
		if r.ID == 1 {
			recvHost.Sys.ResetAccounting()
			t0 = r.Now()
		}
		for i := 0; i < iters; i++ {
			if r.ID == 0 {
				r.Produce(sbuf)
				r.Send(1, 2, sbuf, 0, size) // synchronous: wait completion
			} else {
				r.Recv(0, 2, rbuf, 0, size)
			}
		}
		if r.ID == 1 {
			t1 = r.Now()
		}
	})
	if blocked := tb.c.Run(); blocked != 0 {
		panic("figures: Fig9 run deadlocked")
	}
	elapsed := float64(t1 - t0)
	by := recvHost.Sys.BusyByCategory()
	pct := func(cats ...cpu.Category) float64 {
		var ns sim.Duration
		for _, c := range cats {
			ns += by[c]
		}
		return float64(ns) / elapsed * 100
	}
	return Fig9Row{
		Bytes:      size,
		UserPct:    pct(cpu.UserLib),
		DriverPct:  pct(cpu.DriverCmd),
		BHPct:      pct(cpu.BHProc, cpu.BHCopy, cpu.IOATSubmit),
		ComputePct: pct(cpu.AppCompute, cpu.Other),
	}
}

// Fig9Tables renders both halves of Figure 9 as metric tables
// (stacked series per category).
func Fig9Tables() (*metrics.Table, *metrics.Table) {
	mem, io := Fig9()
	mk := func(title string, rows []Fig9Row) *metrics.Table {
		t := metrics.NewTable(title, "msgsize", "% CPU")
		u := t.AddSeries("User-library")
		d := t.AddSeries("Driver")
		b := t.AddSeries("BH receive")
		tot := t.AddSeries("Total")
		for _, r := range rows {
			u.Add(float64(r.Bytes), r.UserPct)
			d.Add(float64(r.Bytes), r.DriverPct)
			b.Add(float64(r.Bytes), r.BHPct)
			tot.Add(float64(r.Bytes), r.Total())
		}
		return t
	}
	return mk("Fig. 9a: CPU usage, BH receive with memcpy", mem),
		mk("Fig. 9b: CPU usage, BH receive with overlapped DMA copy", io)
}
