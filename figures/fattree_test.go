package figures

import (
	"strings"
	"testing"

	"omxsim/metrics"
)

// TestParallelMatchesSerialFatTree: the determinism guardrail at
// scale — a 64-rank world (32 hosts behind 2 leaves and 4 spines,
// ECMP-hashed trunks) must produce bit-identical tables whether the
// sweep runs on one worker or eight, and repeat run-to-run.
func TestParallelMatchesSerialFatTree(t *testing.T) {
	cases := []ftCase{
		{"Allreduce", []int{1 << 10}, 64},
		{"Alltoall", []int{1 << 10}, 64},
	}
	run := func(workers int) (tabs []*metrics.Table) {
		withPool(workers, func() { tabs = fatTreeTables(cases, []int{64}) })
		return tabs
	}
	serial, parallel := run(1), run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("table count %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].Equal(parallel[i]) {
			t.Errorf("parallel fat-tree table differs from serial:\nserial:\n%s\nparallel:\n%s",
				serial[i].Render(), parallel[i].Render())
		}
	}
	// Run-to-run: a second serial sweep must be bit-identical (the
	// ECMP flow hashing is seedless and the worlds are rebuilt from
	// scratch, so any drift means hidden shared state).
	again := run(1)
	for i := range serial {
		if !serial[i].Equal(again[i]) {
			t.Errorf("fat-tree sweep not run-to-run deterministic:\nfirst:\n%s\nsecond:\n%s",
				serial[i].Render(), again[i].Render())
		}
	}
}

// TestFatTreeFigureShape: the full figure's sweep grid — every
// (collective, world, topology) lands its series, the 1-switch
// baseline stops at 64 ranks, and Alltoall stops at 128.
func TestFatTreeFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables, lp := FatTree()
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	allreduce, alltoall := tables[0], tables[1]
	// Allreduce: (64 ranks × 2 topologies + 128/256/512 × fat-tree) × 2 stacks.
	if got := len(allreduce.Series); got != 10 {
		t.Errorf("Allreduce series = %d, want 10", got)
	}
	// Alltoall: (64 × 2 topologies + 128 × fat-tree) × 2 stacks.
	if got := len(alltoall.Series); got != 6 {
		t.Errorf("Alltoall series = %d, want 6", got)
	}
	for _, s := range allreduce.Series {
		if strings.Contains(s.Name, "1-switch") && !strings.Contains(s.Name, "64 procs") {
			t.Errorf("1-switch baseline leaked past 64 ranks: %q", s.Name)
		}
		for _, pt := range s.Points {
			if pt.Y <= 0 {
				t.Errorf("series %q has non-positive latency %v at %v B", s.Name, pt.Y, pt.X)
			}
		}
	}
	if lp.WireLost == 0 {
		t.Error("trunk-loss regression point lost nothing — impairment not applied to trunks")
	}
	if lp.TimeUsec <= 0 {
		t.Errorf("loss point time %v, want > 0", lp.TimeUsec)
	}
}
