package figures

import (
	"testing"
)

// multiNICGrid runs a reduced sweep shared by the shape tests
// (cached on the figures pool, so the assertions simulate it once).
func multiNICGrid(t *testing.T) []MultiNICPoint {
	t.Helper()
	return multiNICSweepOver([]int{1, 4}, []int{512 << 10, 2 << 20}, MultiNICIters)
}

func multiNICFind(t *testing.T, pts []MultiNICPoint, mode, window string, nics, size int) MultiNICPoint {
	t.Helper()
	for _, p := range pts {
		if p.Mode == mode && p.Window == window && p.NICs == nics && p.Bytes == size {
			return p
		}
	}
	t.Fatalf("multinic point %s/%s/%d/%d missing", mode, window, nics, size)
	return MultiNICPoint{}
}

// TestMultiNICScalingWins pins the figure's headline claims: with the
// pull window widened to two blocks per NIC, four aggregated NICs buy
// at least 1.7x the single-NIC goodput for >=512 kB messages (both
// receive-copy engines), while the paper's fixed two-block window
// demonstrably plateaus — it can only keep two lanes busy, so its
// 4-NIC goodput stays well under the widened window's and its scaling
// factor stays under the widened one.
func TestMultiNICScalingWins(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := multiNICGrid(t)
	for _, mode := range multiNICModes() {
		for _, size := range []int{512 << 10, 2 << 20} {
			one := multiNICFind(t, pts, mode, "per-NIC", 1, size)
			four := multiNICFind(t, pts, mode, "per-NIC", 4, size)
			fixed4 := multiNICFind(t, pts, mode, "fixed", 4, size)
			if four.GoodputMiBps < 1.7*one.GoodputMiBps {
				t.Errorf("%s/%s: 4-NIC goodput %.1f MiB/s not >=1.7x the 1-NIC %.1f",
					mode, sizeName(size), four.GoodputMiBps, one.GoodputMiBps)
			}
			// The fixed window's plateau: clearly below the widened
			// window at the same aggregation, and scaling strictly
			// worse than the widened window does.
			if fixed4.GoodputMiBps > 0.75*four.GoodputMiBps {
				t.Errorf("%s/%s: fixed-window 4-NIC goodput %.1f not clearly below widened %.1f",
					mode, sizeName(size), fixed4.GoodputMiBps, four.GoodputMiBps)
			}
			fixed1 := multiNICFind(t, pts, mode, "fixed", 1, size)
			if fixed4.GoodputMiBps/fixed1.GoodputMiBps >= four.GoodputMiBps/one.GoodputMiBps {
				t.Errorf("%s/%s: fixed window scaled %.2fx, not below widened %.2fx",
					mode, sizeName(size),
					fixed4.GoodputMiBps/fixed1.GoodputMiBps,
					four.GoodputMiBps/one.GoodputMiBps)
			}
		}
	}
	for _, p := range pts {
		if p.Delivered != p.Iters {
			t.Errorf("%s/%s/%d-NIC/%s: only %d/%d round trips payload-verified",
				p.Mode, p.Window, p.NICs, sizeName(p.Bytes), p.Delivered, p.Iters)
		}
		if p.NICs == 1 && p.LaneBalance != 1 {
			t.Errorf("%s/%s/%s: 1-NIC lane balance %.2f, want 1.00",
				p.Mode, p.Window, sizeName(p.Bytes), p.LaneBalance)
		}
		if p.NICs == 4 && p.Window == "per-NIC" && p.LaneBalance < 0.8 {
			t.Errorf("%s/%s: 4-NIC striping imbalanced: min/max lane tx %.2f",
				p.Mode, sizeName(p.Bytes), p.LaneBalance)
		}
	}
}

// TestMultiNICWindowIrrelevantBelowWindow: a 128 kB message is only
// two 8-fragment blocks, so the fixed and widened windows must
// measure identically — the figure's "where window growth is
// required" boundary.
func TestMultiNICWindowIrrelevantBelowWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts := multiNICSweepOver([]int{4}, []int{128 << 10}, MultiNICIters)
	fixed := multiNICFind(t, pts, "memcpy", "fixed", 4, 128<<10)
	widened := multiNICFind(t, pts, "memcpy", "per-NIC", 4, 128<<10)
	if fixed.GoodputMiBps != widened.GoodputMiBps {
		t.Errorf("128kB: fixed %.2f != widened %.2f MiB/s — a 2-block message must not see the window",
			fixed.GoodputMiBps, widened.GoodputMiBps)
	}
}
