package figures

import (
	"reflect"
	"testing"
)

// The adaptive-vs-static acceptance battery: the self-tuning transport
// tier must match the best hand-tuned static policy at every measured
// point — never more than 10% below it — while delivering every
// payload intact. The full grid is the committed figure's; -short runs
// a reduced corner grid so the fast gate stays cheap.

// adaptiveBound is the acceptance bar: adaptive goodput must be at
// least this fraction of the best static policy's at every point.
const adaptiveBound = 0.90

// adaptiveGrid picks the swept (loss, NICs) grid: the figure's full
// cross-product, or the four corners in -short mode.
func adaptiveGrid(t *testing.T) (rates []float64, counts []int) {
	if testing.Short() {
		return []float64{0, 0.05}, []int{1, 4}
	}
	return AdaptiveLossRates(), AdaptiveNICCounts()
}

// TestAdaptiveNeverWorse pins the headline figure's acceptance bar:
// across loss rate x NIC count x copy engine, the adaptive policy's
// goodput is never more than 10% below the best static policy's, every
// measured round trip delivers (with both directions' payloads
// verified end to end), and the impaired points really lost frames.
func TestAdaptiveNeverWorse(t *testing.T) {
	rates, counts := adaptiveGrid(t)
	points := adaptiveSweepOver(rates, counts, AdaptiveIters)

	type cell struct{ s2, sn, ad AdaptivePoint }
	grid := make(map[string]*cell)
	key := func(p AdaptivePoint) string {
		return p.Mode + "/" + string(rune('0'+p.NICs)) + "/" + string(rune('a'+int(p.LossRate*100)))
	}
	for _, p := range points {
		c := grid[key(p)]
		if c == nil {
			c = &cell{}
			grid[key(p)] = c
		}
		switch p.Policy {
		case "static-2":
			c.s2 = p
		case "static-2xN":
			c.sn = p
		default:
			c.ad = p
		}
		if p.Delivered != p.Iters {
			t.Errorf("%s/%s loss=%g nics=%d: %d/%d round trips delivered with verified payloads",
				p.Mode, p.Policy, p.LossRate, p.NICs, p.Delivered, p.Iters)
		}
		if p.LossRate > 0 && p.WireLost == 0 {
			t.Errorf("%s/%s loss=%g nics=%d: impaired link lost nothing — point not adversarial",
				p.Mode, p.Policy, p.LossRate, p.NICs)
		}
		if p.LossRate == 0 && p.Retransmits > 0 {
			t.Errorf("%s/%s loss=%g nics=%d: %d retransmissions on a clean link",
				p.Mode, p.Policy, p.LossRate, p.NICs, p.Retransmits)
		}
	}
	for _, c := range grid {
		best := max(c.s2.GoodputMiBps, c.sn.GoodputMiBps)
		if best <= 0 {
			t.Errorf("%s loss=%g nics=%d: no static goodput measured", c.ad.Mode, c.ad.LossRate, c.ad.NICs)
			continue
		}
		ratio := c.ad.GoodputMiBps / best
		if ratio < adaptiveBound {
			t.Errorf("%s loss=%g nics=%d: adaptive %.2f MiB/s is %.2fx best static %.2f (bound %.2f)",
				c.ad.Mode, c.ad.LossRate, c.ad.NICs, c.ad.GoodputMiBps, ratio, best, adaptiveBound)
		}
	}
	if want := 2 * len(rates) * len(counts); len(grid) != want {
		t.Errorf("measured %d grid cells, want %d", len(grid), want)
	}
}

// TestAdaptiveWinsUnderLoss pins the reason the tier exists: at the
// lossy points the adaptive policy must beat BOTH static policies
// outright, not merely stay within the never-worse bound — otherwise
// the RTT-derived timeouts are not actually recovering faster than the
// hand-tuned 2 ms clamp.
func TestAdaptiveWinsUnderLoss(t *testing.T) {
	_, counts := adaptiveGrid(t)
	points := adaptiveSweepOver([]float64{0.05}, counts, AdaptiveIters)
	byPolicy := make(map[string]map[string]AdaptivePoint)
	for _, p := range points {
		k := p.Mode + "/" + string(rune('0'+p.NICs))
		if byPolicy[k] == nil {
			byPolicy[k] = make(map[string]AdaptivePoint)
		}
		byPolicy[k][p.Policy] = p
	}
	for k, ps := range byPolicy {
		ad := ps["adaptive"]
		for _, static := range []string{"static-2", "static-2xN"} {
			if s := ps[static]; ad.GoodputMiBps <= s.GoodputMiBps {
				t.Errorf("%s at 5%% loss: adaptive %.2f MiB/s does not beat %s %.2f",
					k, ad.GoodputMiBps, static, s.GoodputMiBps)
			}
		}
	}
}

// TestParallelMatchesSerialAdaptive: the determinism guardrail for the
// adaptive sweep — AIMD state, RTT estimators and steering epochs live
// per testbed, so sharding the sweep across workers must change
// nothing but wall time, and a repeat run must be bit-identical.
func TestParallelMatchesSerialAdaptive(t *testing.T) {
	rates := []float64{0, 0.05}
	counts := []int{2}
	run := func(workers int) (pts []AdaptivePoint) {
		withPool(workers, func() { pts = adaptiveSweepOver(rates, counts, 4) })
		return pts
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel adaptive sweep differs from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	if again := run(1); !reflect.DeepEqual(serial, again) {
		t.Errorf("adaptive sweep not run-to-run deterministic:\nfirst:  %+v\nsecond: %+v",
			serial, again)
	}
}
