package figures

import (
	"testing"
)

// TestLossPointRecovers (fast gate): one impaired point per stack —
// every transfer must complete with verified payloads and nonzero
// retransmission activity.
func TestLossPointRecovers(t *testing.T) {
	for _, st := range lossStacks() {
		pt := lossPoint(st.name, st.s, 0.02, 256<<10, 8)
		if pt.Delivered != pt.Iters {
			t.Errorf("%s: delivered %d/%d at 2%% loss", st.name, pt.Delivered, pt.Iters)
		}
		if pt.Retransmits == 0 {
			t.Errorf("%s: no retransmits at 2%% loss on %d frames lost", st.name, pt.WireLost)
		}
		if pt.WireLost == 0 {
			t.Errorf("%s: impairment lost no frames", st.name)
		}
	}
}

// TestLossPointCleanHasNoRecovery (fast gate): at zero loss the
// reliability machinery must be invisible.
func TestLossPointCleanHasNoRecovery(t *testing.T) {
	for _, st := range lossStacks() {
		pt := lossPoint(st.name, st.s, 0, 256<<10, 8)
		if pt.Delivered != pt.Iters {
			t.Errorf("%s: delivered %d/%d on a clean link", st.name, pt.Delivered, pt.Iters)
		}
		if pt.Retransmits != 0 || pt.WireLost != 0 {
			t.Errorf("%s: clean link shows rtx=%d lost=%d", st.name, pt.Retransmits, pt.WireLost)
		}
	}
}

// TestLossSweepProperties asserts the full figure's qualitative
// claims: everything delivered at every loss rate, retransmits
// bounded and correlated with loss, goodput degrading with loss.
func TestLossSweepProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points := LossSweep()
	byKey := map[[2]int]map[float64]LossPoint{}
	stackIdx := map[string]int{}
	for i, st := range lossStacks() {
		stackIdx[st.name] = i
	}
	for _, p := range points {
		if p.Delivered != p.Iters {
			t.Errorf("%s %g%% %dB: delivered %d/%d", p.Stack, p.LossRate*100, p.Bytes, p.Delivered, p.Iters)
		}
		if p.P99Usec < p.P50Usec {
			t.Errorf("%s %g%% %dB: p99 %v < p50 %v", p.Stack, p.LossRate*100, p.Bytes, p.P99Usec, p.P50Usec)
		}
		switch {
		case p.LossRate == 0:
			if p.Retransmits != 0 || p.WireLost != 0 {
				t.Errorf("%s clean %dB: rtx=%d lost=%d", p.Stack, p.Bytes, p.Retransmits, p.WireLost)
			}
		default:
			// Bounded recovery: a handful of retransmissions per lost
			// frame, not a storm.
			if p.Retransmits > 8*p.WireLost+8 {
				t.Errorf("%s %g%% %dB: %d retransmits for %d lost frames (unbounded?)",
					p.Stack, p.LossRate*100, p.Bytes, p.Retransmits, p.WireLost)
			}
		}
		key := [2]int{stackIdx[p.Stack], p.Bytes}
		if byKey[key] == nil {
			byKey[key] = map[float64]LossPoint{}
		}
		byKey[key][p.LossRate] = p
	}
	// Loss must cost goodput on bulk transfers.
	for key, m := range byKey {
		if key[1] < 256<<10 {
			continue
		}
		clean, lossy := m[0], m[0.05]
		if lossy.GoodputMiBps >= clean.GoodputMiBps {
			t.Errorf("stack %d size %d: 5%% loss goodput %.1f ≥ clean %.1f",
				key[0], key[1], lossy.GoodputMiBps, clean.GoodputMiBps)
		}
	}
	// Retransmits at 5% exceed those at 1% for the 1 MiB transfers.
	for _, st := range lossStacks() {
		m := byKey[[2]int{stackIdx[st.name], 1 << 20}]
		if m[0.05].Retransmits <= m[0.01].Retransmits {
			t.Errorf("%s 1MiB: rtx at 5%% (%d) not above 1%% (%d)",
				st.name, m[0.05].Retransmits, m[0.01].Retransmits)
		}
	}
}
