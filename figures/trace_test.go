package figures

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"omxsim/cluster"
	"omxsim/internal/core"
	"omxsim/openmx"
	"omxsim/sim"
	"omxsim/sim/trace"
)

// Trace-export conformance: every JSON document the exporters produce
// must satisfy the trace_event format rules (trace.Validate), the
// 5-fragment I/OAT timeline must render bit-identically to a committed
// golden, and the ASCII timeline and the JSON export — two views of
// one capture — must agree exactly on span boundaries.

// captureAdaptiveTrace runs a short lossy ping-pong with the adaptive
// tier and trace capture on, so the exported stream contains the full
// span vocabulary: eager and rndv transport spans, pull blocks,
// retransmission instants and the cwnd/srtt/pull-queue counters.
func captureAdaptiveTrace(t *testing.T) []core.TraceEvent {
	t.Helper()
	c := cluster.New(nil)
	a, b := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(a, b, cluster.Impair(cluster.Impairment{Seed: 42, LossRate: 0.05}))
	cfg := openmx.Config{RegCache: true, IOAT: true, Adaptive: true}
	sa, sb := openmx.Attach(a, cfg), openmx.Attach(b, cfg)
	var events []core.TraceEvent
	sa.Inner().Trace = func(ev core.TraceEvent) { events = append(events, ev) }
	ea, eb := sa.Open(0, 2), sb.Open(0, 2)
	// Large messages drive the rndv/pull machinery; the small
	// same-iteration message keeps the eager channel busy too.
	const size = 256 << 10
	const smallSize = 4 << 10
	sendA, recvA := a.Alloc(size), a.Alloc(size)
	sendB, recvB := b.Alloc(size), b.Alloc(size)
	smallA, smallB := a.Alloc(smallSize), b.Alloc(smallSize)
	const iters = 4
	done := 0
	c.Go("rankB", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			rSmall := eb.IRecv(p, uint64(2000+i), ^uint64(0), smallB, 0, smallSize)
			eb.Wait(p, eb.IRecv(p, uint64(i), ^uint64(0), recvB, 0, size))
			eb.Wait(p, rSmall)
			sendB.Fill(byte(i + 100))
			sendB.Produce(2)
			eb.Wait(p, eb.ISend(p, ea.Addr(), uint64(1000+i), sendB, 0, size))
		}
	})
	c.Go("rankA", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			sendA.Fill(byte(i + 1))
			sendA.Produce(2)
			smallA.Fill(byte(i + 50))
			rs := ea.ISend(p, eb.Addr(), uint64(i), sendA, 0, size)
			rSmall := ea.ISend(p, eb.Addr(), uint64(2000+i), smallA, 0, smallSize)
			rr := ea.IRecv(p, uint64(1000+i), ^uint64(0), recvA, 0, size)
			ea.Wait(p, rs)
			ea.Wait(p, rSmall)
			ea.Wait(p, rr)
			done++
		}
	})
	c.RunFor(60 * sim.Second)
	defer c.Close()
	if done != iters {
		t.Fatalf("adaptive trace capture completed %d/%d round trips", done, iters)
	}
	return events
}

// TestTraceConformance runs every exporter output through the
// trace_event validator: both timeline modes, and an adaptive lossy
// capture covering the transport spans, retransmission instants and
// counter series.
func TestTraceConformance(t *testing.T) {
	for _, withIOAT := range []bool{false, true} {
		if err := trace.Validate(TimelineTraceJSON(withIOAT)); err != nil {
			t.Errorf("timeline trace (IOAT=%v): %v", withIOAT, err)
		}
	}
	events := captureAdaptiveTrace(t)
	out := TraceJSON(events)
	if err := trace.Validate(out); err != nil {
		t.Errorf("adaptive trace: %v", err)
	}
	// The capture must actually exercise the full vocabulary — a
	// silent hole here would hollow out the conformance claim.
	s := string(out)
	for _, want := range []string{
		`"name":"eager"`, `"name":"rndv"`, `"name":"pull block 0"`,
		`"name":"retransmit"`, `"name":"cwnd"`, `"name":"srtt"`, `"name":"pull-queue"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("adaptive trace missing %s", want)
		}
	}
}

// TestGoldenTraceIOAT pins the 5-fragment I/OAT timeline's JSON export
// byte-for-byte. Regenerate with
// OMXSIM_UPDATE_GOLDEN=1 go test ./figures -run TestGoldenTraceIOAT
// (and eyeball the diff in chrome://tracing before committing).
func TestGoldenTraceIOAT(t *testing.T) {
	const golden = "testdata/timeline-ioat.trace.golden"
	got := TimelineTraceJSON(true)
	if os.Getenv("OMXSIM_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with OMXSIM_UPDATE_GOLDEN=1): %v", golden, err)
	}
	if string(got) != string(want) {
		t.Errorf("I/OAT timeline trace drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// jsonSpans parses a rendered trace document into (name, cat, start,
// end) span tuples with nanosecond-exact boundaries (ts is fixed
// 3-decimal microseconds, i.e. integral nanoseconds).
func jsonSpans(t *testing.T, data []byte, cats map[string]bool) map[string]int {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	ns := func(ts float64) sim.Time { return sim.Time(math.Round(ts * 1000)) }
	type track struct{ pid, tid int }
	openAt := map[track][]sim.Time{}
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if !cats[ev.Cat] {
			continue
		}
		tr := track{ev.Pid, ev.Tid}
		switch ev.Ph {
		case "B":
			openAt[tr] = append(openAt[tr], ns(ev.Ts))
		case "E":
			stack := openAt[tr]
			if len(stack) == 0 {
				t.Fatalf("E %q without B", ev.Name)
			}
			start := stack[len(stack)-1]
			openAt[tr] = stack[:len(stack)-1]
			spans[fmt.Sprintf("%s@%d-%d", ev.Name, start, ns(ev.Ts))]++
		}
	}
	return spans
}

// TestTimelineASCIIAndJSONAgree: the ASCII timeline and the Chrome
// trace export are two renderings of one TimelineEvents capture, and
// must agree exactly on span boundaries — every receive-path and
// engine span in the capture appears in the JSON with nanosecond-
// identical start/end, and the ASCII header's overall span equals the
// JSON extremes.
func TestTimelineASCIIAndJSONAgree(t *testing.T) {
	for _, withIOAT := range []bool{false, true} {
		events := TimelineEvents(withIOAT)
		spans := jsonSpans(t, TraceJSON(events), map[string]bool{"rx": true, "ioat": true})
		var t0, t1 sim.Time
		first := true
		want := map[string]int{}
		for _, ev := range events {
			if !timelineKinds[ev.Kind] {
				continue
			}
			if first || ev.Start < t0 {
				t0 = ev.Start
			}
			if first || ev.End > t1 {
				t1 = ev.End
			}
			first = false
			want[fmt.Sprintf("%s@%d-%d", ev.Kind, ev.Start, ev.End)]++
		}
		for k, n := range want {
			if spans[k] != n {
				t.Errorf("IOAT=%v: span %s: JSON has %d, capture has %d", withIOAT, k, spans[k], n)
			}
		}
		for k := range spans {
			if want[k] == 0 {
				t.Errorf("IOAT=%v: JSON span %s not in the capture", withIOAT, k)
			}
		}
		// The ASCII header prints the same [t0, t1] the JSON spans cover.
		ascii := Timeline(withIOAT)
		header := fmt.Sprintf("span: %v .. %v", t0, t1)
		if !strings.Contains(ascii, header) {
			t.Errorf("IOAT=%v: ASCII timeline header does not cover %q:\n%s", withIOAT, header, ascii)
		}
	}
}
