package figures

import "testing"

func TestAblateMinFragShape(t *testing.T) {
	tab := AblateMinFrag()
	s := tab.Get("Open-MX I/OAT")
	at1k, _ := s.At(1024)
	at16k, _ := s.At(16384)
	// The paper's 1 kB threshold offloads everything (8 kiB wire
	// fragments); raising it past the fragment size disables offload
	// and falls back to the ≈800 MiB/s memcpy plateau.
	if at1k < 1050 {
		t.Errorf("minfrag=1k: %.0f MiB/s, want I/OAT-level throughput", at1k)
	}
	if at16k > 900 {
		t.Errorf("minfrag=16k: %.0f MiB/s, want memcpy-level (offload disabled)", at16k)
	}
}

func TestAblatePullWindowShape(t *testing.T) {
	tab := AblatePullWindow()
	s := tab.Get("8 frags/block")
	one, _ := s.At(1)
	two, _ := s.At(2)
	four, _ := s.At(4)
	// A single outstanding block stalls the pipeline between blocks;
	// the paper's two pipelined blocks already saturate.
	if two < one*1.2 {
		t.Errorf("2 blocks (%.0f) not clearly better than 1 (%.0f)", two, one)
	}
	if four < two*0.95 || four > two*1.05 {
		t.Errorf("4 blocks (%.0f) should match 2 (%.0f): window already covers the pipe", four, two)
	}
}

func TestAblateIRQSteeringShape(t *testing.T) {
	tab := AblateIRQSteering()
	s := tab.Get("Open-MX")
	dedicated, _ := s.At(0)
	shared, _ := s.At(1)
	// Sharing the application's core with the bottom half costs
	// throughput on the eager path (library copies contend with BH).
	if shared >= dedicated {
		t.Errorf("shared-core steering (%.0f) not slower than dedicated (%.0f)", shared, dedicated)
	}
}
