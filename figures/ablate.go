package figures

import (
	"fmt"
	"strings"

	"omxsim/cluster"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/runner"
	"omxsim/sim"
)

// Ablation studies for the design choices DESIGN.md calls out: the
// offload thresholds the paper chose empirically, the pull window
// geometry, interrupt steering, and the Section V/VI extensions.

// streamTput measures unidirectional large-message streaming
// throughput (MiB/s) node0→node1 for a given Open-MX config.
func streamTput(cfg openmx.Config, msgSize, rounds int) float64 {
	tb := newTestbed(Stack{Kind: "openmx", OMX: cfg}, 1)
	var t0, t1 sim.Time
	tb.w.Spawn(func(r *mpi.Rank) {
		sbuf := r.Host.Alloc(msgSize)
		rbuf := r.Host.Alloc(msgSize)
		for i := 0; i < rounds; i++ {
			if i == 1 && r.ID == 1 {
				t0 = r.Now()
			}
			if r.ID == 0 {
				r.Produce(sbuf)
				r.Send(1, 1, sbuf, 0, msgSize)
			} else {
				r.Recv(0, 1, rbuf, 0, msgSize)
			}
		}
		if r.ID == 1 {
			t1 = r.Now()
		}
	})
	if tb.c.Run() != 0 {
		panic("figures: ablation stream deadlocked")
	}
	return float64(msgSize) * float64(rounds-1) / 1024 / 1024 / (t1 - t0).Seconds()
}

// streamJob wraps one streamTput measurement as a runner job.
func streamJob(label string, cfg openmx.Config, msgSize, rounds int) runner.Job {
	return runner.Job{
		Label: label,
		Key:   runner.Key("ablate-stream", cfg, msgSize, rounds),
		Run:   func() (any, error) { return streamTput(cfg, msgSize, rounds), nil },
	}
}

// AblateMinFrag sweeps the minimum-fragment offload threshold
// (paper's empirical choice: 1 kB). Below it, tiny descriptors choke
// the engine; far above it, nothing offloads.
func AblateMinFrag() *metrics.Table {
	t := metrics.NewTable("Ablation: IOATMinFrag threshold (1 MiB stream)", "minfrag", "MiB/s")
	s := t.AddSeries("Open-MX I/OAT")
	frags := []int{256, 512, 1024, 4096, 8192, 16384}
	jobs := make([]runner.Job, len(frags))
	for i, frag := range frags {
		cfg := openmx.Config{IOAT: true, RegCache: true, IOATMinFrag: frag}
		jobs[i] = streamJob(fmt.Sprintf("ablate/minfrag/%d", frag), cfg, 1<<20, 6)
	}
	for i, y := range sweep[float64](jobs) {
		s.Add(float64(frags[i]), y)
	}
	return t
}

// AblatePullWindow sweeps the number of outstanding pull blocks
// (paper: two pipelined blocks of 8 fragments).
func AblatePullWindow() *metrics.Table {
	t := metrics.NewTable("Ablation: outstanding pull blocks x block size (4 MiB stream)", "blocks", "MiB/s")
	fragCases, blockCases := []int{4, 8, 16}, []int{1, 2, 4}
	var jobs []runner.Job
	for _, frags := range fragCases {
		for _, blocks := range blockCases {
			cfg := openmx.Config{IOAT: true, RegCache: true, PullBlocks: blocks, PullBlockFrags: frags}
			jobs = append(jobs, streamJob(fmt.Sprintf("ablate/pull/%dx%d", blocks, frags), cfg, 4<<20, 5))
		}
	}
	ys := sweep[float64](jobs)
	for fi, frags := range fragCases {
		s := t.AddSeries(fmt.Sprintf("%d frags/block", frags))
		for bi, blocks := range blockCases {
			s.Add(float64(blocks), ys[fi*len(blockCases)+bi])
		}
	}
	return t
}

// AblateIRQSteering compares interrupt steering to a dedicated core
// versus the core the application runs on. Medium (eager) messages
// expose the contention: their per-fragment library copies compete
// with the bottom half for the same core when steering is bad. The
// paper's Section V discusses exactly this interrupt/application
// cache-and-core interaction.
func AblateIRQSteering() *metrics.Table {
	t := metrics.NewTable("Ablation: interrupt steering (16 kB eager stream)", "case", "MiB/s")
	s := t.AddSeries("Open-MX")
	const msg = 16 * 1024
	run := func(irqCore int) float64 {
		c := cluster.New(nil)
		n0, n1 := c.NewHost("n0"), c.NewHost("n1")
		cluster.Link(n0, n1)
		n1.Machine().NIC.IRQCore = irqCore
		cfg := openmx.Config{RegCache: true}
		e0 := openmx.Attach(n0, cfg).Open(0, 2)
		e1 := openmx.Attach(n1, cfg).Open(0, 2) // app on core 2
		src, dst := n0.Alloc(msg), n1.Alloc(msg)
		var t0, t1 sim.Time
		const rounds = 40
		// Pipelined: all receives posted up front, sends streamed
		// without waiting for per-message acks, so the receive path
		// (BH + library copies) is the bottleneck.
		c.Go("rx", func(p *sim.Proc) {
			t0 = p.Now()
			var reqs []openmx.Request
			for i := 0; i < rounds; i++ {
				reqs = append(reqs, e1.IRecv(p, uint64(i), ^uint64(0), dst, 0, msg))
			}
			for _, r := range reqs {
				e1.Wait(p, r)
			}
			t1 = p.Now()
		})
		c.Go("tx", func(p *sim.Proc) {
			var reqs []openmx.Request
			for i := 0; i < rounds; i++ {
				reqs = append(reqs, e0.ISend(p, e1.Addr(), uint64(i), src, 0, msg))
			}
			for _, r := range reqs {
				e0.Wait(p, r)
			}
		})
		if c.Run() != 0 {
			panic("figures: IRQ ablation deadlocked")
		}
		return float64(msg*rounds) / 1024 / 1024 / (t1 - t0).Seconds()
	}
	irqCores := []int{
		0, // dedicated core
		2, // same core as the application: BH and app contend
	}
	jobs := make([]runner.Job, len(irqCores))
	for i, core := range irqCores {
		core := core
		jobs[i] = runner.Job{
			Label: fmt.Sprintf("ablate/irq/core%d", core),
			Key:   runner.Key("ablate-irq", msg, core),
			Run:   func() (any, error) { return run(core), nil },
		}
	}
	for i, y := range sweep[float64](jobs) {
		s.Add(float64(i), y)
	}
	return t
}

// AblateExtensions compares the paper's configuration against its
// Section V/VI future-work variants on a 4 MiB stream plus a local
// 4 MiB transfer.
func AblateExtensions() string {
	var b strings.Builder
	p := platform.Clovertown()
	base := openmx.Config{IOAT: true, IOATShm: true, RegCache: true}
	auto := openmx.AutoTuned(p)
	auto.IOATShm = true
	hybrid := base
	hybrid.HybridWarmupBytes = 64 * 1024
	striped := base
	striped.StripeChannels = 4
	sleep := base
	sleep.PredictiveSleep = true

	netCases := []struct {
		name string
		cfg  openmx.Config
	}{
		{"paper defaults (I/OAT)", base},
		{"auto-tuned thresholds", auto},
		{"hybrid 64k memcpy warm-up", hybrid},
	}
	shmCases := []struct {
		name string
		cfg  openmx.Config
	}{
		{"paper defaults (busy-poll, 1 ch)", base},
		{"striped over 4 channels", striped},
		{"predictive sleep", sleep},
	}
	// One flat sweep over both halves; rendering stays serial below.
	var jobs []runner.Job
	for _, c := range netCases {
		jobs = append(jobs, streamJob("ablate/ext/"+c.name, c.cfg, 4<<20, 5))
	}
	for _, c := range shmCases {
		cfg := c.cfg
		jobs = append(jobs, runner.Job{
			Label: "ablate/ext-shm/" + c.name,
			Key:   runner.Key("ablate-ext-shm", cfg),
			Run: func() (any, error) {
				tput, busy := shmStreamOnce(cfg)
				return [2]float64{tput, busy}, nil
			},
		})
	}
	results := activePool().Run(jobs...)
	if err := runner.FirstErr(results); err != nil {
		panic(err)
	}

	fmt.Fprintf(&b, "# Extension ablations (4 MiB network stream)\n")
	fmt.Fprintf(&b, "%-34s %10s\n", "configuration", "MiB/s")
	for i, c := range netCases {
		fmt.Fprintf(&b, "%-34s %10.0f\n", c.name, results[i].Value.(float64))
	}
	fmt.Fprintf(&b, "\n# Extension ablations (4 MiB local one-copy)\n")
	fmt.Fprintf(&b, "%-34s %10s %14s\n", "configuration", "MiB/s", "driver CPU")
	for i, c := range shmCases {
		v := results[len(netCases)+i].Value.([2]float64)
		fmt.Fprintf(&b, "%-34s %10.0f %13.0f%%\n", c.name, v[0], v[1])
	}
	return b.String()
}

// shmStreamOnce runs one local 4 MiB transfer and reports throughput
// and the receiving process's driver CPU share.
func shmStreamOnce(cfg openmx.Config) (mibps, driverPct float64) {
	c := cluster.New(nil)
	h := c.NewHost("node")
	st := openmx.Attach(h, cfg)
	e0, e1 := st.Open(0, 0), st.Open(1, 4)
	n := 4 << 20
	src, dst := h.Alloc(n), h.Alloc(n)
	var t0, t1 sim.Time
	c.Go("recv", func(p *sim.Proc) {
		t0 = p.Now()
		r := e1.IRecv(p, 1, ^uint64(0), dst, 0, n)
		e1.Wait(p, r)
		t1 = p.Now()
	})
	c.Go("send", func(p *sim.Proc) {
		s := e0.ISend(p, e1.Addr(), 1, src, 0, n)
		e0.Wait(p, s)
	})
	if c.Run() != 0 {
		panic("figures: shm ablation deadlocked")
	}
	elapsed := (t1 - t0).Seconds()
	mibps = float64(n) / 1024 / 1024 / elapsed
	var busy sim.Duration
	for cat, ns := range h.Machine().Sys.BusyByCategory() {
		if cat.String() == "driver" {
			busy += ns
		}
	}
	driverPct = float64(busy) / float64(t1-t0) * 100
	return mibps, driverPct
}
