package figures

// The service-facing sweep entry: omxsimd (internal/simd) runs tenant
// experiment jobs through SweepOn, which is the error-returning twin
// of the figure generators' newTestbedN+imb.Runner path. Everything
// that can be wrong with an untrusted spec — an invalid topology, a
// ppn out of range, an unknown stack kind or IMB test, a negative
// message size — comes back as an error; a valid spec measures
// exactly what the equivalent figure sweep would, so service results
// are bit-identical to direct figures calls.

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/imb"
)

// MaxPPN is the largest ranks-per-node count the standard rank-core
// placement supports — services validate tenant ppn against it.
func MaxPPN() int { return len(rankCores) }

// SweepOn builds a fresh world from the declarative topology, attaches
// the stack with ppn ranks per host (block placement on the standard
// rank cores), and runs one IMB test over the message sizes. The
// built cluster is returned alongside the results so callers can
// snapshot NetStats (and per-host CPU ledgers) after the run. iters
// overrides the per-size iteration schedule (nil = imb.DefaultIters).
//
// Two SweepOn calls with equal arguments are bit-identical — the
// simulation is deterministic — which is what lets omxsimd cache
// results under a config hash and still serve exact data.
func SweepOn(top cluster.Topology, s Stack, ppn int, test string, sizes []int, iters func(int) int) ([]imb.Result, *cluster.Cluster, error) {
	canon, ok := imb.Canon(test)
	if !ok {
		return nil, nil, fmt.Errorf("figures: unknown IMB test %q", test)
	}
	for _, n := range sizes {
		if n < 0 {
			return nil, nil, fmt.Errorf("figures: negative message size %d", n)
		}
	}
	c, err := cluster.BuildE(top)
	if err != nil {
		return nil, nil, err
	}
	w, err := worldOverE(c, s, ppn)
	if err != nil {
		return nil, nil, err
	}
	r := &imb.Runner{C: c, W: w, Iters: iters}
	return r.Run(canon, sizes), c, nil
}
