// Package cluster is the public entry point for building simulated
// testbeds: hosts (dual quad-core Clovertown machines with I/OAT and a
// 10 GbE NIC), back-to-back links or a switch, payload buffers, and
// simulated processes.
//
// A minimal two-node setup:
//
//	c := cluster.New(nil) // Clovertown defaults
//	a := c.NewHost("node0")
//	b := c.NewHost("node1")
//	cluster.Link(a, b)
//	// ... attach openmx/mxoe stacks, spawn processes ...
//	c.Go("app", func(p *sim.Proc) { ... })
//	c.Run()
package cluster

import (
	"fmt"

	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// Cluster owns the simulation engine and the simulated machines.
type Cluster struct {
	E *sim.Engine
	P *platform.Platform

	hosts    map[string]*Host
	links    []*linkRec
	switches []*Switch
}

// New returns an empty cluster. A nil platform selects the paper's
// Clovertown testbed.
func New(p *platform.Platform) *Cluster {
	if p == nil {
		p = platform.Clovertown()
	}
	return &Cluster{E: sim.New(), P: p, hosts: make(map[string]*Host)}
}

// Host is one simulated machine.
type Host struct {
	C    *Cluster
	Name string
	m    *host.Host
}

// NewHost adds a machine to the cluster. Host names are the network
// addresses of their NICs and must be unique.
func (c *Cluster) NewHost(name string) *Host {
	if _, dup := c.hosts[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate host %q", name))
	}
	h := &Host{C: c, Name: name, m: host.New(c.E, c.P, name)}
	c.hosts[name] = h
	return h
}

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// Machine exposes the underlying simulated hardware. It is used by
// the protocol packages in this module; external callers should treat
// it as opaque.
func (h *Host) Machine() *host.Host { return h.m }

// Link connects two hosts back to back with a full-duplex 10 GbE
// cable, like the paper's switchless testbed. Options add impairment
// profiles (Impair, ImpairAB, ImpairBA) and a bounded transmit queue
// (LinkQueue); with no options the link is perfect and the fast path
// is untouched.
func Link(a, b *Host, opts ...LinkOption) {
	var o linkOpts
	for _, f := range opts {
		f(&o)
	}
	ab, ba := wire.Connect(a.C.E, a.C.P, a.m.NIC, b.m.NIC)
	ab.SetImpairment(o.ab.wire())
	ba.SetImpairment(o.ba.wire())
	ab.QueueLimit = o.queueLimit
	ba.QueueLimit = o.queueLimit
	a.m.NIC.SetHose(ab)
	b.m.NIC.SetHose(ba)
	a.C.links = append(a.C.links, &linkRec{from: a.Name, to: b.Name, ab: ab, ba: ba})
}

// LossyLink connects two hosts and installs the given frame-drop
// predicates on the a→b and b→a directions (nil means no loss). Used
// by retransmission experiments.
func LossyLink(a, b *Host, dropAB, dropBA func(any) bool) {
	ab, ba := wire.Connect(a.C.E, a.C.P, a.m.NIC, b.m.NIC)
	if dropAB != nil {
		ab.Drop = func(f *wire.Frame) bool { return dropAB(f.Msg) }
	}
	if dropBA != nil {
		ba.Drop = func(f *wire.Frame) bool { return dropBA(f.Msg) }
	}
	a.m.NIC.SetHose(ab)
	b.m.NIC.SetHose(ba)
	a.C.links = append(a.C.links, &linkRec{from: a.Name, to: b.Name, ab: ab, ba: ba})
}

// Switch is a store-and-forward Ethernet switch.
type Switch struct {
	c       *Cluster
	sw      *wire.Switch
	uplinks map[string]*wire.Hose // host → (host→switch) hose
}

// NewSwitch adds a switch to the cluster. Options bound the output
// queues (SwitchQueue), impair the output ports (SwitchImpair) and
// tune the forwarding latency (SwitchLatency); with no options the
// switch is ideal apart from its store-and-forward hop.
func (c *Cluster) NewSwitch(opts ...SwitchOption) *Switch {
	s := &Switch{c: c, sw: wire.NewSwitch(c.E, c.P), uplinks: make(map[string]*wire.Hose)}
	for _, f := range opts {
		f(s.sw)
	}
	c.switches = append(c.switches, s)
	return s
}

// Attach plugs a host into the switch.
func (s *Switch) Attach(h *Host) {
	up := s.sw.Attach(h.m.NIC)
	s.uplinks[h.Name] = up
	h.m.NIC.SetHose(up)
}

// Buffer is an application payload buffer in a host's memory. It
// carries real bytes end to end through the simulated stacks.
type Buffer struct {
	H *Host
	b *hostmem.Buffer
}

// Alloc allocates a zeroed buffer of n bytes on the host.
func (h *Host) Alloc(n int) *Buffer {
	return &Buffer{H: h, b: h.m.Alloc(n)}
}

// Bytes gives direct access to the payload.
func (b *Buffer) Bytes() []byte { return b.b.Data }

// Size reports the buffer length.
func (b *Buffer) Size() int { return b.b.Size() }

// Fill writes a deterministic test pattern.
func (b *Buffer) Fill(seed byte) { b.b.Fill(seed) }

// Equal reports whether two buffers hold the same bytes.
func Equal(a, b *Buffer) bool { return hostmem.Equal(a.b, b.b) }

// Produce marks the buffer as freshly written by the application on
// the given core (its cache becomes warm there). Benchmarks call this
// before each send to model the application producing the payload —
// the placement-dependent curves of Figure 10 depend on it.
func (b *Buffer) Produce(core int) { b.b.Touch(core, b.b.Size()) }

// Raw exposes the underlying buffer for in-module protocol packages.
func (b *Buffer) Raw() *hostmem.Buffer { return b.b }

// Go spawns a simulated process.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) { c.E.Go(name, fn) }

// Run drains the simulation and returns the number of processes still
// blocked (protocol deadlocks; NIC bottom-half service loops are
// excluded from the count).
func (c *Cluster) Run() int {
	blocked := c.E.Run()
	return blocked - c.bhLoops()
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Duration) { c.E.RunUntil(c.E.Now() + d) }

// Now returns the current simulated time.
func (c *Cluster) Now() sim.Time { return c.E.Now() }

// Close tears down all simulated processes (for tests).
func (c *Cluster) Close() { c.E.Close() }

// bhLoops counts the per-NIC bottom-half service processes, which
// legitimately never exit.
func (c *Cluster) bhLoops() int {
	n := 0
	for _, name := range c.E.BlockedProcs() {
		if len(name) >= 3 && name[:3] == "bh:" {
			n++
		}
	}
	return n
}
