// Package cluster is the public entry point for building simulated
// testbeds: hosts (dual quad-core Clovertown machines with I/OAT and a
// 10 GbE NIC), back-to-back links or a switch, payload buffers, and
// simulated processes.
//
// A minimal two-node setup:
//
//	c := cluster.New(nil) // Clovertown defaults
//	a := c.NewHost("node0")
//	b := c.NewHost("node1")
//	cluster.Link(a, b)
//	// ... attach openmx/mxoe stacks, spawn processes ...
//	c.Go("app", func(p *sim.Proc) { ... })
//	c.Run()
package cluster

import (
	"fmt"
	"strings"

	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// Cluster owns the simulation engine and the simulated machines.
type Cluster struct {
	E *sim.Engine
	P *platform.Platform

	hosts     map[string]*Host
	hostOrder []*Host
	links     []*linkRec
	switches  []*Switch
}

// New returns an empty cluster. A nil platform selects the paper's
// Clovertown testbed.
func New(p *platform.Platform) *Cluster {
	if p == nil {
		p = platform.Clovertown()
	}
	return &Cluster{E: sim.New(), P: p, hosts: make(map[string]*Host)}
}

// Host is one simulated machine.
type Host struct {
	C    *Cluster
	Name string
	m    *host.Host
}

// HostOption configures one NewHost call.
type HostOption func(*hostOpts)

type hostOpts struct {
	nics     int
	irqCores []int
}

// MultiNIC equips the host with n NICs for link aggregation. NIC 0
// keeps the bare host name as its wire address (single-NIC behaviour
// is untouched); NIC i is addressed "host#i" and, by default, takes
// its interrupts on core i so the per-NIC bottom halves spread across
// cores. Hosts that exchange striped traffic must use equal NIC
// counts (Link enforces it; switched topologies are trusted).
//
// An out-of-range count (n < 1) is diagnosed when the option is
// applied: NewHost panics, NewHostE returns the error — so untrusted
// topology input routed through the error path can never bring a
// daemon down.
func MultiNIC(n int, opts ...NICOption) HostOption {
	return func(o *hostOpts) {
		o.nics = n
		for _, f := range opts {
			f(o)
		}
	}
}

// NICOption tunes a MultiNIC host.
type NICOption func(*hostOpts)

// NICIRQCores steers NIC i's interrupts (and its bottom half) to
// cores[i], overriding the default spread of core i per NIC. Shorter
// lists fall back to the default for the remaining NICs.
func NICIRQCores(cores ...int) NICOption {
	return func(o *hostOpts) { o.irqCores = cores }
}

// NewHost adds a machine to the cluster. Host names are the network
// addresses of their (primary) NICs and must be unique; '#' is
// reserved for lane addressing (wire.LaneAddr), so a host named
// "a#1" could collide with lane 1 of a MultiNIC host "a". NewHost
// panics on invalid input — the CLI convenience; services validating
// untrusted topologies use NewHostE.
func (c *Cluster) NewHost(name string, opts ...HostOption) *Host {
	h, err := c.NewHostE(name, opts...)
	if err != nil {
		panic(err)
	}
	return h
}

// NewHostE is NewHost with the invariants — unique name, no '#' in
// the name, MultiNIC count ≥ 1 — reported as an error instead of a
// panic.
func (c *Cluster) NewHostE(name string, opts ...HostOption) (*Host, error) {
	if _, dup := c.hosts[name]; dup {
		return nil, fmt.Errorf("cluster: duplicate host %q", name)
	}
	if strings.Contains(name, "#") {
		return nil, fmt.Errorf("cluster: host name %q contains '#', reserved for NIC lane addresses", name)
	}
	o := hostOpts{nics: 1}
	for _, f := range opts {
		f(&o)
	}
	if o.nics < 1 {
		return nil, fmt.Errorf("cluster: MultiNIC count %d out of range", o.nics)
	}
	h := &Host{C: c, Name: name, m: host.NewMulti(c.E, c.P, name, o.nics, o.irqCores)}
	c.hosts[name] = h
	c.hostOrder = append(c.hostOrder, h)
	return h, nil
}

// Hosts returns every host in creation order.
func (c *Cluster) Hosts() []*Host { return c.hostOrder }

// Switches returns every switch in creation order.
func (c *Cluster) Switches() []*Switch { return c.switches }

// NICCount reports the host's NIC count.
func (h *Host) NICCount() int { return h.m.Lanes() }

// Host returns a host by name, or nil.
func (c *Cluster) Host(name string) *Host { return c.hosts[name] }

// Machine exposes the underlying simulated hardware. It is used by
// the protocol packages in this module; external callers should treat
// it as opaque.
func (h *Host) Machine() *host.Host { return h.m }

// Link connects two hosts back to back, like the paper's switchless
// testbed: one full-duplex 10 GbE cable per NIC pair (lane k of a
// plugs into lane k of b — link aggregation for MultiNIC hosts, whose
// NIC counts must match). Options add impairment profiles (Impair,
// ImpairAB, ImpairBA — reseeded per lane so lanes misbehave
// independently — and ImpairLane for one cable only) and a bounded
// transmit queue (Queue); with no options every lane is perfect
// and the fast path is untouched.
func Link(a, b *Host, opts ...NetOption) {
	if err := LinkE(a, b, opts...); err != nil {
		panic(err)
	}
}

// LinkE is Link with the invariants — equal NIC counts on both ends,
// ImpairLane indices within the lane range — reported as an error
// instead of a panic, for callers wiring untrusted topologies. On
// error no lane has been cabled.
func LinkE(a, b *Host, opts ...NetOption) error {
	var o netOpts
	for _, f := range opts {
		f(&o)
	}
	if a.NICCount() != b.NICCount() {
		return fmt.Errorf("cluster: Link %s (%d NICs) to %s (%d NICs): aggregated links need equal NIC counts",
			a.Name, a.NICCount(), b.Name, b.NICCount())
	}
	for lane := range o.laneAB {
		if lane < 0 || lane >= a.NICCount() {
			return fmt.Errorf("cluster: ImpairLane(%d) on a %d-NIC link (valid lanes 0..%d)",
				lane, a.NICCount(), a.NICCount()-1)
		}
	}
	rec := &linkRec{from: a.Name, to: b.Name}
	for lane := 0; lane < a.NICCount(); lane++ {
		abIm, baIm := laneSeed(o.ab, lane), laneSeed(o.ba, lane)
		// Explicit per-lane profiles win over the reseeded global ones
		// and keep their configured seed verbatim.
		if im, ok := o.laneAB[lane]; ok {
			abIm = im
		}
		if im, ok := o.laneBA[lane]; ok {
			baIm = im
		}
		na, nb := a.m.NICs[lane], b.m.NICs[lane]
		ab, ba := wire.Connect(a.C.E, a.C.P, na, nb)
		ab.SetImpairment(abIm.wire())
		ba.SetImpairment(baIm.wire())
		ab.QueueLimit = o.queueLimit
		ba.QueueLimit = o.queueLimit
		if o.hasLatency {
			ab.ExtraLatency = o.latency
			ba.ExtraLatency = o.latency
		}
		na.SetHose(ab)
		nb.SetHose(ba)
		rec.lanes = append(rec.lanes, linkLane{ab: ab, ba: ba})
	}
	a.C.links = append(a.C.links, rec)
	return nil
}

// LossyLink connects two single-NIC hosts and installs the given
// frame-drop predicates on the a→b and b→a directions (nil means no
// loss). Used by retransmission experiments; aggregated links use
// Link with ImpairLane instead.
func LossyLink(a, b *Host, dropAB, dropBA func(any) bool) {
	if a.NICCount() != 1 || b.NICCount() != 1 {
		panic("cluster: LossyLink requires single-NIC hosts (use Link with ImpairLane)")
	}
	ab, ba := wire.Connect(a.C.E, a.C.P, a.m.NIC, b.m.NIC)
	if dropAB != nil {
		ab.Drop = func(f *wire.Frame) bool { return dropAB(f.Msg) }
	}
	if dropBA != nil {
		ba.Drop = func(f *wire.Frame) bool { return dropBA(f.Msg) }
	}
	a.m.NIC.SetHose(ab)
	b.m.NIC.SetHose(ba)
	a.C.links = append(a.C.links, &linkRec{from: a.Name, to: b.Name, lanes: []linkLane{{ab: ab, ba: ba}}})
}

// Switch is a store-and-forward Ethernet switch.
type Switch struct {
	c        *Cluster
	sw       *wire.Switch
	uplinks  map[string]*wire.Hose // NIC address → (NIC→switch) hose
	attached []string              // NIC addresses in attach order
}

// NewSwitch adds a switch to the cluster. Options bound the output
// queues (Queue), impair the output ports (Impair), tune the
// forwarding latency (Latency) and pick the multi-path policy (ECMP);
// with no options the switch is ideal apart from its
// store-and-forward hop.
func (c *Cluster) NewSwitch(opts ...NetOption) *Switch {
	var o netOpts
	for _, f := range opts {
		f(&o)
	}
	s := &Switch{c: c, sw: wire.NewSwitch(c.E, c.P), uplinks: make(map[string]*wire.Hose)}
	s.sw.OutputQueueFrames = o.queueLimit
	if o.hasLatency {
		s.sw.ForwardLatency = o.latency
	}
	if o.ab.Enabled() {
		s.sw.PortImpair = o.ab.wire()
	}
	if o.ecmp != "" {
		s.sw.ECMPPolicy = o.ecmp
	}
	c.switches = append(c.switches, s)
	return s
}

// Attach plugs a host into the switch: every NIC of a MultiNIC host
// gets its own switch port (and its own congestible output queue), so
// striped traffic occupies several ports in parallel. Hosts that
// exchange striped traffic through a switch must use equal NIC counts
// — lane k is addressed to the peer's lane-k port.
func (s *Switch) Attach(h *Host) {
	for _, n := range h.m.NICs {
		up := s.sw.Attach(n)
		s.uplinks[n.Name] = up
		s.attached = append(s.attached, n.Name)
		n.SetHose(up)
	}
}

// Wire exposes the underlying wire-level switch (for tests and
// in-module diagnostics such as FlowPaths).
func (s *Switch) Wire() *wire.Switch { return s.sw }

// Trunk joins two switches with a full-duplex inter-switch link. The
// a→b hose becomes an ECMP uplink candidate on a, and b learns a pinned
// route back through b→a for every NIC address attached to a so far —
// the leaf-to-spine wiring of a fat tree (call after attaching a's
// hosts). Options impair the trunk (reseeded per direction), bound its
// queues (overriding the switches' own bounds) and add latency.
func (c *Cluster) Trunk(a, b *Switch, name string, opts ...NetOption) {
	var o netOpts
	for _, f := range opts {
		f(&o)
	}
	ab, ba := wire.ConnectTrunk(a.sw, b.sw, name)
	ab.SetImpairment(o.ab.wire())
	ba.SetImpairment(o.ba.wire())
	if o.queueLimit > 0 {
		ab.QueueLimit = o.queueLimit
		ba.QueueLimit = o.queueLimit
	}
	if o.hasLatency {
		ab.ExtraLatency = o.latency
		ba.ExtraLatency = o.latency
	}
	a.sw.AddUplink(name, ab)
	for _, addr := range a.attached {
		b.sw.AddRoute(addr, ba)
	}
}

// Buffer is an application payload buffer in a host's memory. It
// carries real bytes end to end through the simulated stacks.
type Buffer struct {
	H *Host
	b *hostmem.Buffer
}

// Alloc allocates a zeroed buffer of n bytes on the host, homed on
// the chipset's local NUMA node.
func (h *Host) Alloc(n int) *Buffer {
	return &Buffer{H: h, b: h.m.Alloc(n)}
}

// AllocOn allocates a zeroed buffer of n bytes homed on the given
// NUMA node (socket). Device DMA into a remote-socket buffer pays the
// platform's remote-deposit penalty, so placement matters to receive
// paths.
func (h *Host) AllocOn(n, socket int) *Buffer {
	return &Buffer{H: h, b: h.m.AllocOn(n, socket)}
}

// Bytes gives direct access to the payload.
func (b *Buffer) Bytes() []byte { return b.b.Data }

// Size reports the buffer length.
func (b *Buffer) Size() int { return b.b.Size() }

// Fill writes a deterministic test pattern.
func (b *Buffer) Fill(seed byte) { b.b.Fill(seed) }

// Equal reports whether two buffers hold the same bytes.
func Equal(a, b *Buffer) bool { return hostmem.Equal(a.b, b.b) }

// Produce marks the buffer as freshly written by the application on
// the given core (its cache becomes warm there). Benchmarks call this
// before each send to model the application producing the payload —
// the placement-dependent curves of Figure 10 depend on it.
func (b *Buffer) Produce(core int) { b.b.Touch(core, b.b.Size()) }

// Raw exposes the underlying buffer for in-module protocol packages.
func (b *Buffer) Raw() *hostmem.Buffer { return b.b }

// Go spawns a simulated process.
func (c *Cluster) Go(name string, fn func(p *sim.Proc)) { c.E.Go(name, fn) }

// Run drains the simulation and returns the number of processes still
// blocked (protocol deadlocks; daemon service loops such as NIC bottom
// halves are excluded by the engine's own accounting).
func (c *Cluster) Run() int {
	return c.E.Run()
}

// RunFor advances the simulation by d.
func (c *Cluster) RunFor(d sim.Duration) { c.E.RunUntil(c.E.Now() + d) }

// Now returns the current simulated time.
func (c *Cluster) Now() sim.Time { return c.E.Now() }

// Close tears down all simulated processes (for tests).
func (c *Cluster) Close() { c.E.Close() }
