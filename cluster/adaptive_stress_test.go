package cluster_test

// The adaptive-transport stress battery: the self-tuning tier
// (RTT-derived retransmission timeouts, AIMD pull windows, load-based
// IRQ steering) run through the same adversarial rigs the static
// stacks survive — seeded randomized storms under impairment, striping
// across skewed/lossy aggregated lanes, and a fat-tree incast with
// background cross traffic squeezing bounded trunk queues. Every
// payload byte is verified; OMXSIM_STRESS_SEEDS widens the sweeps.

import (
	"fmt"
	"testing"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/sim"
)

// adaptiveCombos pairs the two adaptive stacks, including the interop
// pairing — the tuners run independently per host, so a mixed pair
// must converge just like a homogeneous one.
func adaptiveCombos() [][2]string {
	return [][2]string{
		{"openmx-adaptive", "openmx-adaptive"},
		{"mxoe-adaptive", "mxoe-adaptive"},
		{"openmx-adaptive", "mxoe-adaptive"},
	}
}

// TestAdaptiveStormUnderImpairment is the randomized storm battery
// with the self-tuning tier in place of the hand-tuned timeout: 3%
// loss plus reordering, duplication and jitter, shuffled posting
// across many endpoints, every payload verified. The loss rate is
// three times the static storm's — the whole point of the tier is
// recovering fast when the wire is bad.
func TestAdaptiveStormUnderImpairment(t *testing.T) {
	seeds := stressSeeds(t)
	eps, count := 3, 3
	if testing.Short() {
		eps, count = 2, 2
	}
	for _, combo := range adaptiveCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%s-%s", combo[0], combo[1]), func(t *testing.T) {
			for s := 0; s < seeds; s++ {
				seed := int64(7000 + s*13)
				runStormWith(t, combo[0], combo[1], seed, 1, eps, count,
					cluster.Impair(cluster.Impairment{
						Seed:        seed,
						LossRate:    0.03,
						ReorderRate: 0.05,
						DupRate:     0.01,
						JitterMax:   2 * sim.Microsecond,
					}))
			}
		})
	}
}

// TestAdaptiveStripingUnderSkew storms the adaptive stacks across a
// three-NIC aggregated link with one lossy/reordering lane and one
// negotiated down to a quarter rate with jitter: the RTT estimator
// sees a bimodal sample stream and the AIMD window sees persistent
// per-lane loss, and every message must still arrive intact.
func TestAdaptiveStripingUnderSkew(t *testing.T) {
	seeds := stressSeeds(t)
	// No -short reduction: a 2x2 storm stripes too little onto the
	// impaired lane to mean anything, and the full 3x3 storm is
	// tens of milliseconds per combination anyway.
	eps, count := 3, 3
	const nics = 3
	for _, combo := range adaptiveCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%s-%s", combo[0], combo[1]), func(t *testing.T) {
			for s := 0; s < seeds; s++ {
				seed := int64(8100 + s*29)
				runStormWith(t, combo[0], combo[1], seed, nics, eps, count,
					cluster.ImpairLane(1, cluster.Impairment{
						Seed:        seed,
						LossRate:    0.08,
						ReorderRate: 0.1,
						DupRate:     0.02,
					}),
					cluster.ImpairLane(2, cluster.Impairment{
						Seed:      seed + 1,
						RateScale: 0.25,
						JitterMax: 5 * sim.Microsecond,
					}),
				)
			}
		})
	}
}

// TestAdaptiveIncastWithCrossTraffic squeezes an adaptive incast
// through a fat tree: three senders on remote leaves converge on one
// sink behind tiny trunk queues while a generator on a third leaf
// floods the sink's leaf with background cross traffic. Congestion
// tail-drop is the loss process the AIMD controller exists for — the
// storm must complete with every payload intact, and the trunks must
// actually have dropped frames.
func TestAdaptiveIncastWithCrossTraffic(t *testing.T) {
	perSender := 6
	if testing.Short() {
		perSender = 4
	}
	c := buildFatTree(6, 2, 1, "", cluster.Queue(8))
	defer c.Close()
	hosts := c.Hosts()
	eps := make([]openmx.Endpoint, len(hosts))
	for i, h := range hosts {
		eps[i] = stressStack("openmx-adaptive", h).Open(0, 2)
	}
	// node0 (leaf 0) is the sink, nodes 2..4 (leaves 1 and 2) the
	// storm; node5 generates cross traffic into the sink's leaf.
	senders := []int{2, 3, 4}
	c.StartCrossTraffic(hosts[5], hosts[0], cluster.CrossTrafficConfig{
		Seed: 11, BytesPerSec: 400e6, FrameBytes: 4096, Duration: 300 * sim.Millisecond,
	})

	n := 64 * 1024
	type pair struct{ src, dst *cluster.Buffer }
	bufs := make(map[[2]int]pair)
	for _, s := range senders {
		for k := 0; k < perSender; k++ {
			p := pair{src: hosts[s].Alloc(n), dst: hosts[0].Alloc(n)}
			p.src.Fill(byte(s*perSender + k + 1))
			bufs[[2]int{s, k}] = p
		}
	}
	done := 0
	c.Go("sink", func(p *sim.Proc) {
		var reqs []openmx.Request
		for _, s := range senders {
			for k := 0; k < perSender; k++ {
				m := bufs[[2]int{s, k}]
				reqs = append(reqs, eps[0].IRecv(p, uint64(s<<8|k), ^uint64(0), m.dst, 0, n))
			}
		}
		for _, r := range reqs {
			eps[0].Wait(p, r)
			done++
		}
	})
	for _, s := range senders {
		s := s
		c.Go(fmt.Sprintf("storm%d", s), func(p *sim.Proc) {
			for k := 0; k < perSender; k++ {
				m := bufs[[2]int{s, k}]
				eps[s].Wait(p, eps[s].ISend(p, eps[0].Addr(), uint64(s<<8|k), m.src, 0, n))
			}
		})
	}
	c.RunFor(120 * sim.Second)
	if done != len(senders)*perSender {
		t.Fatalf("adaptive incast delivered %d/%d messages", done, len(senders)*perSender)
	}
	for k, m := range bufs {
		if !cluster.Equal(m.src, m.dst) {
			t.Fatalf("message %v corrupted", k)
		}
	}
	if ns := c.NetStats(); ns.TotalWireLoss() == 0 {
		t.Fatal("incast plus cross traffic lost nothing — trunk queues not exercised")
	}
}
