package cluster_test

// Seeded randomized message storms under network impairment, across
// all three stack combinations (Open-MX ↔ Open-MX, native MX ↔ native
// MX, and the mixed interop pair): many endpoints per host, mixed
// tiny-through-large messages, shuffled posting order, 1 % loss plus
// reordering, duplication and jitter on every link — with end-to-end
// payload verification of every message. The fast (-short) gate runs
// one seed per combination; the full suite and `make stress` sweep
// more (OMXSIM_STRESS_SEEDS overrides the count).

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

const stressRtx = 2 * sim.Millisecond

// stressStack attaches one stack kind to a host and opens endpoints.
// The "-adaptive" kinds leave the retransmission timeout unset so the
// self-tuning tier (RTT-derived timeouts, AIMD pull window, load-based
// steering) faces the storm instead of the hand-tuned 2 ms clamp.
func stressStack(kind string, h *cluster.Host) openmx.Transport {
	switch kind {
	case "mxoe":
		return mxoe.Attach(h, mxoe.Config{RegCache: true, RetransmitTimeout: stressRtx})
	case "mxoe-adaptive":
		return mxoe.Attach(h, mxoe.Config{RegCache: true, Adaptive: true})
	case "openmx-adaptive":
		return openmx.Attach(h, openmx.Config{IOAT: true, RegCache: true, Adaptive: true})
	default:
		return openmx.Attach(h, openmx.Config{
			IOAT: true, RegCache: true, RetransmitTimeout: stressRtx,
		})
	}
}

// stressCombos are the three stack pairings under test.
func stressCombos() [][2]string {
	return [][2]string{{"openmx", "openmx"}, {"mxoe", "mxoe"}, {"openmx", "mxoe"}}
}

// stressSeeds reports how many seeds to sweep per combination.
func stressSeeds(t *testing.T) int {
	if s := os.Getenv("OMXSIM_STRESS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad OMXSIM_STRESS_SEEDS %q", s)
		}
		return n
	}
	if testing.Short() {
		return 1
	}
	return 3
}

// stressSize draws a message size across the protocol's classes:
// tiny, small, medium (eager) and large (rendezvous pull).
func stressSize(rng *rand.Rand) int {
	switch rng.Intn(4) {
	case 0:
		return rng.Intn(33) // tiny, incl. zero bytes
	case 1:
		return 33 + rng.Intn(4064) // small / single-frag medium
	case 2:
		return 4 * 1024 * (1 + rng.Intn(8)) // multi-frag medium
	default:
		return 33*1024 + rng.Intn(200*1024) // rendezvous
	}
}

// msg is one verified transfer of the storm.
type msg struct {
	match    uint64
	src, dst *cluster.Buffer
	size     int
}

// runStorm builds a two-host impaired testbed with eps endpoints per
// host, fires count messages from every endpoint to every remote
// endpoint in both directions (shuffled posting order), and verifies
// every payload byte.
func runStorm(t *testing.T, kindA, kindB string, seed int64, eps, count int) {
	runStormWith(t, kindA, kindB, seed, 1, eps, count,
		cluster.Impair(cluster.Impairment{
			Seed:        seed,
			LossRate:    0.01,
			ReorderRate: 0.05,
			DupRate:     0.01,
			JitterMax:   2 * sim.Microsecond,
		}))
}

// runStormWith is runStorm over an arbitrary aggregated-link topology:
// nics NICs per host and explicit link options (per-lane impairment,
// skew).
func runStormWith(t *testing.T, kindA, kindB string, seed int64, nics, eps, count int, linkOpts ...cluster.NetOption) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var hostOpts []cluster.HostOption
	if nics > 1 {
		hostOpts = append(hostOpts, cluster.MultiNIC(nics))
	}
	c := cluster.Build(cluster.Topology{
		Hosts: []cluster.HostSet{
			{Name: "hostA", Opts: hostOpts},
			{Name: "hostB", Opts: hostOpts},
		},
		Wiring: cluster.BackToBack{Opts: linkOpts},
	})
	a, b := c.Host("hostA"), c.Host("hostB")
	ta, tb := stressStack(kindA, a), stressStack(kindB, b)
	epsA := make([]openmx.Endpoint, eps)
	epsB := make([]openmx.Endpoint, eps)
	for i := 0; i < eps; i++ {
		epsA[i] = ta.Open(i, 1+i%6)
		epsB[i] = tb.Open(i, 1+(i+1)%6)
	}

	// Plan every flow up front: flows[d][i][j] is the message list
	// from endpoint i to remote endpoint j in direction d (0 = A→B).
	plan := func(srcH, dstH *cluster.Host, dir int) [][][]msg {
		out := make([][][]msg, eps)
		for i := range out {
			out[i] = make([][]msg, eps)
			for j := range out[i] {
				for k := 0; k < count; k++ {
					n := stressSize(rng)
					m := msg{
						match: uint64(dir)<<40 | uint64(i)<<32 | uint64(j)<<16 | uint64(k),
						src:   srcH.Alloc(n), dst: dstH.Alloc(n), size: n,
					}
					m.src.Fill(byte(rng.Intn(255) + 1))
					out[i][j] = append(out[i][j], m)
				}
			}
		}
		return out
	}
	ab := plan(a, b, 0)
	ba := plan(b, a, 1)

	completed := 0
	want := 0
	spawn := func(name string, ep openmx.Endpoint, peers []openmx.Endpoint, out [][]msg, in [][]msg, shuffle *rand.Rand) {
		// Gather this endpoint's sends and expected receives, then
		// post them interleaved in a seeded random order — arrival
		// order and posting order must not matter.
		type op struct {
			send bool
			m    msg
			peer openmx.Endpoint
		}
		var ops []op
		for j, ms := range out {
			for _, m := range ms {
				ops = append(ops, op{send: true, m: m, peer: peers[j]})
			}
		}
		for _, ms := range in {
			for _, m := range ms {
				ops = append(ops, op{m: m})
			}
		}
		shuffle.Shuffle(len(ops), func(x, y int) { ops[x], ops[y] = ops[y], ops[x] })
		c.Go(name, func(p *sim.Proc) {
			var reqs []openmx.Request
			for _, o := range ops {
				if o.send {
					reqs = append(reqs, ep.ISend(p, o.peer.Addr(), o.m.match, o.m.src, 0, o.m.size))
				} else {
					reqs = append(reqs, ep.IRecv(p, o.m.match, ^uint64(0), o.m.dst, 0, o.m.size))
				}
			}
			for _, r := range reqs {
				ep.Wait(p, r)
				completed++
			}
		})
	}
	for i := 0; i < eps; i++ {
		// in[j][k] for endpoint i on A: messages B's endpoint j sends to A's i.
		inA := make([][]msg, eps)
		inB := make([][]msg, eps)
		for j := 0; j < eps; j++ {
			inA[j] = ba[j][i]
			inB[j] = ab[j][i]
		}
		spawn(fmt.Sprintf("A%d", i), epsA[i], epsB, ab[i], inA, rand.New(rand.NewSource(seed+int64(i)+100)))
		spawn(fmt.Sprintf("B%d", i), epsB[i], epsA, ba[i], inB, rand.New(rand.NewSource(seed+int64(i)+200)))
		for j := 0; j < eps; j++ {
			want += len(ab[i][j]) + len(ba[i][j]) // sends
		}
	}
	want *= 2 // each message completes once as a send, once as a receive

	c.RunFor(120 * sim.Second)
	defer c.Close()
	if completed != want {
		t.Fatalf("%s↔%s seed %d: %d/%d operations completed (deadlock or lost message)",
			kindA, kindB, seed, completed, want)
	}
	bad := 0
	check := func(flows [][][]msg) {
		for _, byPeer := range flows {
			for _, ms := range byPeer {
				for _, m := range ms {
					if !cluster.Equal(m.src, m.dst) {
						bad++
					}
				}
			}
		}
	}
	check(ab)
	check(ba)
	if bad > 0 {
		t.Fatalf("%s↔%s seed %d: %d corrupted payloads", kindA, kindB, seed, bad)
	}
	if ns := c.NetStats(); ns.TotalWireLoss() == 0 {
		t.Fatalf("%s↔%s seed %d: impairment lost nothing — storm too small to mean anything", kindA, kindB, seed)
	}
}

// TestStressStormUnderImpairment is the storm battery across the
// three stack combinations.
func TestStressStormUnderImpairment(t *testing.T) {
	seeds := stressSeeds(t)
	eps, count := 3, 3
	if testing.Short() {
		eps, count = 2, 2
	}
	for _, combo := range stressCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%s-%s", combo[0], combo[1]), func(t *testing.T) {
			for s := 0; s < seeds; s++ {
				runStorm(t, combo[0], combo[1], int64(1000+s*17), eps, count)
			}
		})
	}
}

// TestStressStripingUnderSkew is the striping stress battery: three
// NICs per host, traffic striped across the aggregated link, with one
// lane lossy/reordering (per-NIC impairment) and another negotiated
// down to a quarter of the rate plus jitter (cross-NIC skew) — the
// adversarial interleavings hole-aware reassembly exists for. All
// three stack combinations, shuffled posting, every payload verified;
// OMXSIM_STRESS_SEEDS widens the sweep.
func TestStressStripingUnderSkew(t *testing.T) {
	seeds := stressSeeds(t)
	eps, count := 3, 3
	if testing.Short() {
		eps, count = 2, 2
	}
	const nics = 3
	for _, combo := range stressCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%s-%s", combo[0], combo[1]), func(t *testing.T) {
			for s := 0; s < seeds; s++ {
				seed := int64(4000 + s*31)
				runStormWith(t, combo[0], combo[1], seed, nics, eps, count,
					// Lane 1's cable is bad: loss, reordering, duplicates.
					cluster.ImpairLane(1, cluster.Impairment{
						Seed:        seed,
						LossRate:    0.05,
						ReorderRate: 0.1,
						DupRate:     0.02,
					}),
					// Lane 2 negotiated down and jittery: persistent
					// cross-NIC skew without loss.
					cluster.ImpairLane(2, cluster.Impairment{
						Seed:      seed + 1,
						RateScale: 0.25,
						JitterMax: 5 * sim.Microsecond,
					}),
				)
			}
		})
	}
}

// TestStripedLossAttributedToLane: with only lane 1 of an aggregated
// link impaired, NetStats must attribute every wire loss to exactly
// that lane — and the clean lanes must still have carried traffic
// (the striping actually spread the storm).
func TestStripedLossAttributedToLane(t *testing.T) {
	c := cluster.New(nil)
	a := c.NewHost("hostA", cluster.MultiNIC(3))
	b := c.NewHost("hostB", cluster.MultiNIC(3))
	cluster.Link(a, b, cluster.ImpairLane(1, cluster.Impairment{Seed: 9, LossRate: 0.05}))
	ta, tb := stressStack("openmx", a), stressStack("openmx", b)
	ea, eb := ta.Open(0, 4), tb.Open(0, 4)
	const count = 12
	n := 96 * 1024
	srcs := make([]*cluster.Buffer, count)
	dsts := make([]*cluster.Buffer, count)
	for i := range srcs {
		srcs[i], dsts[i] = a.Alloc(n), b.Alloc(n)
		srcs[i].Fill(byte(i + 1))
	}
	done := 0
	c.Go("recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), dsts[i], 0, n)
			eb.Wait(p, r)
			done++
		}
	})
	c.Go("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			ea.Wait(p, ea.ISend(p, eb.Addr(), uint64(i), srcs[i], 0, n))
		}
	})
	c.RunFor(60 * sim.Second)
	defer c.Close()
	if done != count {
		t.Fatalf("delivered %d/%d over the impaired aggregated link", done, count)
	}
	for i := range srcs {
		if !cluster.Equal(srcs[i], dsts[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	ns := c.NetStats()
	l := ns.Links[0]
	if len(l.Lanes) != 3 {
		t.Fatalf("lanes in stats: %d, want 3", len(l.Lanes))
	}
	for _, lane := range l.Lanes {
		lost := lane.AB.FramesLost + lane.BA.FramesLost
		if lane.Lane == 1 && lost == 0 {
			t.Error("impaired lane 1 lost nothing")
		}
		if lane.Lane != 1 && lost != 0 {
			t.Errorf("clean lane %d lost %d frames", lane.Lane, lost)
		}
		if lane.AB.FramesSent == 0 {
			t.Errorf("lane %d carried no A→B traffic — striping not spreading", lane.Lane)
		}
	}
	if l.AB.FramesLost != l.Lanes[1].AB.FramesLost {
		t.Errorf("aggregate AB loss %d != lane 1's %d", l.AB.FramesLost, l.Lanes[1].AB.FramesLost)
	}
	// Per-NIC host counters sum to the host totals and every NIC saw
	// frames.
	for _, h := range ns.Hosts {
		var tx, rx, drops int64
		for _, nicStat := range h.NICs {
			tx += nicStat.TxFrames
			rx += nicStat.RxFrames
			drops += nicStat.RxDrops
			if nicStat.RxFrames == 0 {
				t.Errorf("host %s NIC %s received nothing", h.Host, nicStat.NIC)
			}
		}
		if tx != h.TxFrames || rx != h.RxFrames || drops != h.RxDrops {
			t.Errorf("host %s per-NIC sums (%d,%d,%d) != totals (%d,%d,%d)",
				h.Host, tx, rx, drops, h.TxFrames, h.RxFrames, h.RxDrops)
		}
	}
}

// TestStormThroughCongestedSwitch runs the Open-MX storm through a
// switch with tiny bounded output queues plus background cross
// traffic: congestion tail-drop must be survivable, and the drop
// counters must show it happened.
func TestStormThroughCongestedSwitch(t *testing.T) {
	c := cluster.Build(cluster.Topology{
		Hosts: []cluster.HostSet{
			{Name: "hostA"}, {Name: "hostB"},
			{Name: "hostG"}, // cross-traffic generator
		},
		Wiring: cluster.SingleSwitch{Opts: []cluster.NetOption{cluster.Queue(8)}},
	})
	a, b, g := c.Host("hostA"), c.Host("hostB"), c.Host("hostG")
	ta := stressStack("openmx", a)
	tb := stressStack("openmx", b)
	stressStack("openmx", g) // gives the generator's frames a discarding stack
	ea, eb := ta.Open(0, 2), tb.Open(0, 2)
	c.StartCrossTraffic(g, b, cluster.CrossTrafficConfig{
		Seed: 5, BytesPerSec: 600e6, FrameBytes: 4096, Duration: 200 * sim.Millisecond,
	})

	const count = 20
	n := 64 * 1024
	srcs := make([]*cluster.Buffer, count)
	dsts := make([]*cluster.Buffer, count)
	for i := range srcs {
		srcs[i], dsts[i] = a.Alloc(n), b.Alloc(n)
		srcs[i].Fill(byte(i + 1))
	}
	done := 0
	c.Go("recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), dsts[i], 0, n)
			eb.Wait(p, r)
			done++
		}
	})
	c.Go("send", func(p *sim.Proc) {
		var reqs []openmx.Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, ea.ISend(p, eb.Addr(), uint64(i), srcs[i], 0, n))
		}
		for _, r := range reqs {
			ea.Wait(p, r)
		}
	})
	c.RunFor(60 * sim.Second)
	defer c.Close()
	if done != count {
		t.Fatalf("completed %d/%d through the congested switch", done, count)
	}
	for i := range srcs {
		if !cluster.Equal(srcs[i], dsts[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	ns := c.NetStats()
	if len(ns.Switches) != 1 {
		t.Fatalf("switches in stats: %d", len(ns.Switches))
	}
	var tailDrops int64
	for _, p := range ns.Switches[0].Ports {
		tailDrops += p.Out.TailDrops
	}
	if tailDrops == 0 {
		t.Fatal("congested switch tail-dropped nothing — queue bound not exercised")
	}
	// The per-NIC split must stay an exact partition of the host
	// totals (tail-drop at the switch, ring-drop at the NIC and
	// delivery are disjoint per NIC, so the sums can only match if
	// nothing is double-counted).
	for _, h := range ns.Hosts {
		var tx, rx, drops int64
		for _, nicStat := range h.NICs {
			tx += nicStat.TxFrames
			rx += nicStat.RxFrames
			drops += nicStat.RxDrops
		}
		if tx != h.TxFrames || rx != h.RxFrames || drops != h.RxDrops {
			t.Fatalf("host %s per-NIC sums (%d,%d,%d) != totals (%d,%d,%d)",
				h.Host, tx, rx, drops, h.TxFrames, h.RxFrames, h.RxDrops)
		}
	}
}
