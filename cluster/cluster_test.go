package cluster

import (
	"testing"

	"omxsim/sim"
)

func TestHostsAndBuffers(t *testing.T) {
	c := New(nil)
	h := c.NewHost("n0")
	if c.Host("n0") != h || c.Host("nope") != nil {
		t.Fatal("host lookup broken")
	}
	b := h.Alloc(4096)
	if b.Size() != 4096 || len(b.Bytes()) != 4096 {
		t.Fatal("buffer size wrong")
	}
	b.Fill(7)
	b2 := h.Alloc(4096)
	copy(b2.Bytes(), b.Bytes())
	if !Equal(b, b2) {
		t.Fatal("Equal broken")
	}
	b.Produce(0)
	if !b.Raw().WarmL2(0) {
		t.Fatal("Produce did not warm")
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c := New(nil)
	c.NewHost("x")
	c.NewHost("x")
}

func TestRunCountsOnlyRealDeadlocks(t *testing.T) {
	c := New(nil)
	c.NewHost("a") // its BH loop parks forever; must not count
	done := false
	c.Go("worker", func(p *sim.Proc) {
		p.Sleep(100)
		done = true
	})
	if n := c.Run(); n != 0 || !done {
		t.Fatalf("Run = %d done=%v", n, done)
	}
	// A genuinely stuck process is reported.
	sig := sim.NewSignal()
	c.Go("stuck", func(p *sim.Proc) { sig.Wait(p) })
	if n := c.Run(); n != 1 {
		t.Fatalf("Run = %d, want 1 stuck proc", n)
	}
	c.Close()
}

func TestRunForAdvancesClock(t *testing.T) {
	c := New(nil)
	defer c.Close()
	c.RunFor(500)
	c.RunFor(500)
	if c.Now() != 1000 {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestLossyLink(t *testing.T) {
	c := New(nil)
	defer c.Close()
	a, b := c.NewHost("a"), c.NewHost("b")
	calls := 0
	LossyLink(a, b, func(msg any) bool { calls++; return false }, nil)
	// The predicate is exercised by the protocol tests; here we only
	// check that wiring a lossy link leaves hosts usable.
	if a.Machine().NIC.Hose() == nil || b.Machine().NIC.Hose() == nil {
		t.Fatal("hoses not attached")
	}
}
