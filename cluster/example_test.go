package cluster_test

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/sim"
)

// Example builds the smallest possible testbed — two Clovertown hosts
// back to back, like the paper's switchless setup — and moves a raw
// frame-sized payload between buffers to show the building blocks:
// hosts, links, buffers and simulated processes in virtual time.
// Protocol stacks (openmx, mxoe) attach on top of exactly this.
func Example() {
	c := cluster.New(nil) // nil platform = the paper's Clovertown testbed
	defer c.Close()
	a, b := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(a, b)

	src, dst := a.Alloc(4096), b.Alloc(4096)
	src.Fill(7)
	c.Go("copier", func(p *sim.Proc) {
		// Applications normally go through an endpoint API; buffers
		// expose raw bytes for tests and custom workloads.
		copy(dst.Bytes(), src.Bytes())
		p.Sleep(3 * sim.Microsecond)
	})
	c.Run()

	fmt.Printf("hosts: %s, %s\n", a.Name, b.Name)
	fmt.Printf("buffers equal: %v\n", cluster.Equal(src, dst))
	fmt.Printf("virtual time advanced: %v\n", c.Now())
	// Output:
	// hosts: node0, node1
	// buffers equal: true
	// virtual time advanced: 3.000µs
}

// ExampleImpair attaches a seeded deterministic impairment profile to
// a link: same seed, same losses — an impaired experiment is exactly
// as reproducible as a clean one, and NetStats reports what the wire
// did to the traffic.
func ExampleImpair() {
	c := cluster.New(nil)
	defer c.Close()
	a, b := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(a, b, cluster.Impair(cluster.Impairment{Seed: 42, LossRate: 0.05}))

	ns := c.NetStats()
	fmt.Printf("links: %d\n", len(ns.Links))
	fmt.Printf("frames lost before any traffic: %d\n", ns.TotalWireLoss())
	// Output:
	// links: 1
	// frames lost before any traffic: 0
}
