package cluster

// The declarative topology builder: a Topology value names the host
// sets and the wiring shape, and Build turns it into a running
// Cluster. It replaces hand-written NewHost/Link/NewSwitch/Attach
// sequences (which all keep working underneath) with one spec that
// scales from the paper's two-node testbed to a 2-tier fat tree.
//
//	c := cluster.Build(cluster.Topology{
//		Hosts:  []cluster.HostSet{{Name: "node", N: 64, Indexed: true}},
//		Wiring: cluster.FatTree{LeafRadix: 16, Spines: 4},
//	})
//
// Build issues exactly the same low-level calls, in the same order, as
// the equivalent hand-written sequence — so a Build-based testbed is
// event-for-event identical to its imperative twin.
//
// Build panics on an invalid topology, which is the right contract
// for figure generators (a broken spec means the reproduction is
// broken). Services materializing topologies from untrusted tenant
// input use BuildE, which reports every invariant violation —
// negative host counts, duplicate names, BackToBack host counts,
// FatTree radix/spine ranges, mismatched link NIC counts — as an
// error instead.

import (
	"fmt"

	"omxsim/platform"
)

// HostSet declares a group of identically configured hosts.
type HostSet struct {
	// Name is the base host name. A single host keeps it verbatim
	// ("hostA"); a set of N > 1 (or Indexed) appends the index
	// ("node0" … "nodeN-1").
	Name string
	// N is the host count (0 means 1).
	N int
	// Indexed forces the name+index form even for N == 1, so a
	// parameterized set keeps stable names across sizes.
	Indexed bool
	// Opts apply to every host in the set (MultiNIC etc).
	Opts []HostOption
}

// Wiring is a topology shape: how Build connects the declared hosts.
type Wiring interface {
	wireE(c *Cluster, hosts []*Host) error
}

// BackToBack wires exactly two hosts with a direct (possibly
// aggregated) link — the paper's switchless testbed.
type BackToBack struct {
	// Opts configure the link (Impair, Queue, Latency, ImpairLane…).
	Opts []NetOption
}

func (w BackToBack) wireE(c *Cluster, hosts []*Host) error {
	if len(hosts) != 2 {
		return fmt.Errorf("cluster: BackToBack wiring needs exactly 2 hosts, got %d", len(hosts))
	}
	return LinkE(hosts[0], hosts[1], w.Opts...)
}

// SingleSwitch wires every host into one store-and-forward switch.
type SingleSwitch struct {
	// Opts configure the switch (Queue, Impair, Latency).
	Opts []NetOption
}

func (w SingleSwitch) wireE(c *Cluster, hosts []*Host) error {
	sw := c.NewSwitch(w.Opts...)
	for _, h := range hosts {
		sw.Attach(h)
	}
	return nil
}

// FatTree wires the hosts into a 2-tier leaf/spine Clos fabric: hosts
// fill leaves in declaration order (LeafRadix per leaf), every leaf
// trunks to every spine, and each leaf spreads remote flows over its
// Spines uplinks ECMP-style (flow-sticky, so per-flow frame order is
// preserved). The oversubscription ratio is LeafRadix : Spines — 16
// host ports sharing 4 uplinks is 4:1.
type FatTree struct {
	// LeafRadix is the number of host ports per leaf switch.
	LeafRadix int
	// Spines is the number of spine switches (= uplinks per leaf).
	Spines int
	// ECMPPolicy selects the uplink spread: wire.ECMPHash (default) or
	// wire.ECMPRoundRobin.
	ECMPPolicy string
	// LeafOpts, SpineOpts and TrunkOpts configure each tier with the
	// shared option vocabulary.
	LeafOpts, SpineOpts, TrunkOpts []NetOption
}

func (w FatTree) wireE(c *Cluster, hosts []*Host) error {
	if w.LeafRadix < 1 {
		return fmt.Errorf("cluster: FatTree LeafRadix %d out of range", w.LeafRadix)
	}
	if w.Spines < 1 {
		return fmt.Errorf("cluster: FatTree Spines %d out of range", w.Spines)
	}
	leafOpts := w.LeafOpts
	if w.ECMPPolicy != "" {
		leafOpts = append(append([]NetOption{}, leafOpts...), ECMP(w.ECMPPolicy))
	}
	nLeaves := (len(hosts) + w.LeafRadix - 1) / w.LeafRadix
	leaves := make([]*Switch, nLeaves)
	for i := range leaves {
		leaves[i] = c.NewSwitch(leafOpts...)
	}
	spines := make([]*Switch, w.Spines)
	for i := range spines {
		spines[i] = c.NewSwitch(w.SpineOpts...)
	}
	for i, h := range hosts {
		leaves[i/w.LeafRadix].Attach(h)
	}
	// Trunks go up after all of a leaf's hosts are attached, so each
	// spine learns a down-route for every NIC address behind the leaf.
	for li, leaf := range leaves {
		for si, spine := range spines {
			c.Trunk(leaf, spine, fmt.Sprintf("leaf%d-spine%d", li, si), w.TrunkOpts...)
		}
	}
	return nil
}

// Topology declares a whole testbed.
type Topology struct {
	// Platform selects the hardware model; nil is the paper's
	// Clovertown testbed.
	Platform *platform.Platform
	// Hosts lists the host sets, created in order.
	Hosts []HostSet
	// Wiring connects them; nil leaves the hosts unwired (single-host
	// worlds, or callers doing custom wiring with the low-level API).
	Wiring Wiring
}

// Build materializes the topology and returns the cluster. Hosts are
// reachable by name (Cluster.Host) or in creation order
// (Cluster.Hosts). Build panics on an invalid topology; BuildE is the
// error-returning twin for untrusted specs.
func Build(t Topology) *Cluster {
	c, err := BuildE(t)
	if err != nil {
		panic(err)
	}
	return c
}

// BuildE materializes the topology, reporting an invalid spec —
// negative host counts, duplicate or reserved host names, invalid
// MultiNIC counts, and every wiring invariant (BackToBack host count,
// FatTree radix/spines, mismatched aggregated-link NIC counts) — as
// an error. A valid spec builds exactly the cluster Build would.
func BuildE(t Topology) (*Cluster, error) {
	c := New(t.Platform)
	var hosts []*Host
	for _, set := range t.Hosts {
		n := set.N
		if n == 0 {
			n = 1
		}
		if n < 0 {
			return nil, fmt.Errorf("cluster: host set %q count %d out of range", set.Name, n)
		}
		for i := 0; i < n; i++ {
			name := set.Name
			if n > 1 || set.Indexed {
				name = fmt.Sprintf("%s%d", set.Name, i)
			}
			h, err := c.NewHostE(name, set.Opts...)
			if err != nil {
				return nil, err
			}
			hosts = append(hosts, h)
		}
	}
	if t.Wiring != nil {
		if err := t.Wiring.wireE(c, hosts); err != nil {
			return nil, err
		}
	}
	return c, nil
}
