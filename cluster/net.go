package cluster

// This file is the network-impairment and congestion surface: every
// link direction and every switch output port can carry a seeded
// deterministic misbehaviour profile (frame loss, duplication,
// reordering, latency jitter, rate asymmetry), switch output queues
// can be bounded to model congestion tail-drop, and background
// cross-traffic generators can share the links with the measured
// workload. NetStats snapshots every counter in one deterministic
// structure.
//
// All impairment randomness is drawn from private seeded streams, so
// an impaired experiment is exactly as reproducible as a clean one:
// same seed, same losses, same figures.

import (
	"fmt"
	"sort"

	"omxsim/internal/wire"
	"omxsim/sim"
)

// Impairment is the misbehaviour profile of one link direction or
// switch port. The zero value is a perfect link and costs nothing.
type Impairment struct {
	// Seed selects the deterministic random stream.
	Seed int64
	// LossRate is the per-frame probability of silent loss.
	LossRate float64
	// DupRate is the per-frame probability of duplicate delivery.
	DupRate float64
	// ReorderRate is the per-frame probability of an extra
	// ReorderDelay, letting later frames overtake.
	ReorderRate float64
	// ReorderDelay is the delay applied to reordered frames
	// (default 20 µs when ReorderRate is set).
	ReorderDelay sim.Duration
	// JitterMax adds uniform [0, JitterMax) latency jitter per frame.
	JitterMax sim.Duration
	// RateScale scales the direction's signalling rate (0.1 = the
	// link negotiated down to 1 GbE in this direction).
	RateScale float64
}

func (im Impairment) wire() wire.Impairment {
	return wire.Impairment{
		Seed:         im.Seed,
		LossRate:     im.LossRate,
		DupRate:      im.DupRate,
		ReorderRate:  im.ReorderRate,
		ReorderDelay: im.ReorderDelay,
		JitterMax:    im.JitterMax,
		RateScale:    im.RateScale,
	}
}

// Enabled reports whether the profile perturbs anything.
func (im Impairment) Enabled() bool { return im.wire().Enabled() }

// netOpts collects the unified network options accepted by links
// (Link), switches (NewSwitch) and inter-switch trunks (Trunk). Each
// applier reads the fields that are meaningful for it.
type netOpts struct {
	ab, ba         Impairment
	laneAB, laneBA map[int]Impairment
	queueLimit     int
	latency        sim.Duration
	hasLatency     bool
	ecmp           string
}

// laneSeed derives lane i's instance of a link-wide profile: lane 0
// keeps the configured seed verbatim (single-NIC runs are
// bit-identical to the pre-aggregation wire), later lanes reseed so
// parallel cables never lose the same pattern.
func laneSeed(im Impairment, lane int) Impairment {
	im.Seed ^= int64(lane) * 0x9E3779B97F4A7C1
	return im
}

// NetOption is the single option vocabulary for every network element:
// the same Impair/Queue/Latency options configure point-to-point links,
// switches (where they apply to every output port) and fat-tree
// trunks, so a topology tier can be impaired without a per-element
// spelling. Directional (ImpairAB/ImpairBA) and per-lane (ImpairLane)
// options are meaningful on links and trunks only; ECMP is meaningful
// on switches only. Options that do not apply to an element are
// ignored by its applier.
type NetOption func(*netOpts)

// LinkOption configures one Link call.
//
// Deprecated: all network options are unified; use NetOption.
type LinkOption = NetOption

// SwitchOption configures one NewSwitch call.
//
// Deprecated: all network options are unified; use NetOption.
type SwitchOption = NetOption

// Impair installs the profile on the element: both directions of a
// link or trunk (the reverse direction independently reseeded so the
// two do not lose the same pattern), or every output port of a switch
// (reseeded per port).
func Impair(im Impairment) NetOption {
	return func(o *netOpts) {
		o.ab = im
		o.ba = im
		o.ba.Seed = im.Seed ^ 0x5DEECE66D
	}
}

// ImpairAB impairs only the a→b direction of a link or trunk.
func ImpairAB(im Impairment) NetOption { return func(o *netOpts) { o.ab = im } }

// ImpairBA impairs only the b→a direction of a link or trunk.
func ImpairBA(im Impairment) NetOption { return func(o *netOpts) { o.ba = im } }

// Queue bounds the element's transmit queues to the given frame count;
// frames beyond it are tail-dropped (congestion loss). On a link or
// trunk it applies to both directions, on a switch to every output
// port attached afterwards.
func Queue(frames int) NetOption { return func(o *netOpts) { o.queueLimit = frames } }

// Latency adds fixed latency to the element: a switch's forwarding
// latency (overriding the default), or extra propagation delay on both
// directions of a link or trunk (a longer cable run).
func Latency(d sim.Duration) NetOption {
	return func(o *netOpts) {
		o.latency = d
		o.hasLatency = true
	}
}

// ECMP selects a switch's uplink-selection policy (wire.ECMPHash or
// wire.ECMPRoundRobin). Meaningful for switches with multiple uplinks
// (fat-tree leaves); ignored elsewhere.
func ECMP(policy string) NetOption { return func(o *netOpts) { o.ecmp = policy } }

// LinkQueue bounds each direction's transmit queue to the given frame
// count.
//
// Deprecated: use Queue.
func LinkQueue(frames int) NetOption { return Queue(frames) }

// SwitchQueue bounds every output port's queue to the given frame
// count (apply before Attach).
//
// Deprecated: use Queue.
func SwitchQueue(frames int) NetOption { return Queue(frames) }

// SwitchImpair installs the profile on every output port, reseeded per
// port (apply before Attach).
//
// Deprecated: use Impair.
func SwitchImpair(im Impairment) NetOption { return Impair(im) }

// SwitchLatency overrides the switch's forwarding latency.
//
// Deprecated: use Latency.
func SwitchLatency(d sim.Duration) NetOption { return Latency(d) }

// ImpairLane impairs both directions of one lane of an aggregated
// link (the reverse direction independently reseeded), leaving every
// other cable clean — the "one NIC's cable is bad" scenario the
// striping stress battery attributes per NIC. The profile's seed is
// used verbatim, overriding any link-wide profile on that lane.
func ImpairLane(lane int, im Impairment) NetOption {
	return func(o *netOpts) {
		if o.laneAB == nil {
			o.laneAB = make(map[int]Impairment)
			o.laneBA = make(map[int]Impairment)
		}
		o.laneAB[lane] = im
		im.Seed ^= 0x5DEECE66D
		o.laneBA[lane] = im
	}
}

// linkRec remembers one point-to-point (possibly aggregated) link for
// NetStats, one lane per NIC pair.
type linkRec struct {
	from, to string
	lanes    []linkLane
}

type linkLane struct{ ab, ba *wire.Hose }

// DirStats is one link direction's counter snapshot.
type DirStats struct {
	// FramesSent and BytesSent count traffic that made it onto the
	// wire (after loss).
	FramesSent int64
	BytesSent  int64
	// FramesDropped counts targeted Drop-predicate discards,
	// FramesLost impairment loss, TailDrops queue-overflow loss.
	// The three are disjoint, and all happen before the receiving
	// NIC — they never double-count a frame the NIC also dropped.
	FramesDropped int64
	FramesLost    int64
	TailDrops     int64
	// FramesDuped and FramesReordered count impairment misdelivery.
	FramesDuped     int64
	FramesReordered int64
	// MaxQueue is the transmit queue's high-water mark.
	MaxQueue int
}

func dirStats(h wire.HoseStats) DirStats {
	return DirStats{
		FramesSent:      h.FramesSent,
		BytesSent:       h.BytesSent,
		FramesDropped:   h.FramesDropped,
		FramesLost:      h.FramesLost,
		TailDrops:       h.TailDrops,
		FramesDuped:     h.FramesDuped,
		FramesReordered: h.FramesReordered,
		MaxQueue:        h.MaxQueue,
	}
}

// LaneStats snapshots one lane (one NIC-pair cable) of an aggregated
// link.
type LaneStats struct {
	Lane   int
	AB, BA DirStats
}

// LinkStats snapshots one point-to-point link. AB and BA aggregate
// every lane (counters summed, queue high-water maxed) — identical to
// the single cable's counters on a 1-NIC link — and Lanes attributes
// them per NIC pair, so loss or tail-drop on one lane of an
// aggregated link is visible on exactly that lane.
type LinkStats struct {
	From, To string
	AB, BA   DirStats
	Lanes    []LaneStats
}

// addDir aggregates one lane direction into a link-wide total.
func addDir(sum *DirStats, d DirStats) {
	sum.FramesSent += d.FramesSent
	sum.BytesSent += d.BytesSent
	sum.FramesDropped += d.FramesDropped
	sum.FramesLost += d.FramesLost
	sum.TailDrops += d.TailDrops
	sum.FramesDuped += d.FramesDuped
	sum.FramesReordered += d.FramesReordered
	if d.MaxQueue > sum.MaxQueue {
		sum.MaxQueue = d.MaxQueue
	}
}

// PortStats snapshots one switch port (Out is the congestible
// switch→host direction; In is host→switch).
type PortStats struct {
	Host    string
	In, Out DirStats
}

// SwitchStats snapshots one switch.
type SwitchStats struct {
	Forwarded int64
	Unknown   int64
	Ports     []PortStats
}

// NICStats snapshots one NIC of a host. RxDrops counts receive-ring
// overflow at that NIC — a drop that happened after the wire
// delivered the frame, disjoint from every wire-level counter, and
// attributable to exactly one NIC's ring.
type NICStats struct {
	NIC      string
	TxFrames int64
	RxFrames int64
	RxDrops  int64
}

// HostStats snapshots one host's NICs: per-NIC counters in lane
// order, plus host-wide sums (which equal the single NIC's counters
// on a 1-NIC host).
type HostStats struct {
	Host     string
	TxFrames int64
	RxFrames int64
	// RxDrops counts receive-ring overflow — drops that happened after
	// the wire delivered the frame, and therefore disjoint from every
	// wire-level counter.
	RxDrops int64
	// NICs attributes the sums per NIC (index = lane).
	NICs []NICStats
}

// NetStats is a whole-testbed network counter snapshot, ordered
// deterministically (hosts by name, links and switch ports in
// creation order).
type NetStats struct {
	Hosts    []HostStats
	Links    []LinkStats
	Switches []SwitchStats
}

// NetStats snapshots every NIC, link and switch counter in the
// cluster.
func (c *Cluster) NetStats() NetStats {
	var ns NetStats
	names := make([]string, 0, len(c.hosts))
	for n := range c.hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		hs := HostStats{Host: n}
		for _, nic := range c.hosts[n].m.NICs {
			hs.NICs = append(hs.NICs, NICStats{
				NIC: nic.Name, TxFrames: nic.TxFrames, RxFrames: nic.RxFrames, RxDrops: nic.RxDrops,
			})
			hs.TxFrames += nic.TxFrames
			hs.RxFrames += nic.RxFrames
			hs.RxDrops += nic.RxDrops
		}
		ns.Hosts = append(ns.Hosts, hs)
	}
	for _, l := range c.links {
		ls := LinkStats{From: l.from, To: l.to}
		for lane, lh := range l.lanes {
			st := LaneStats{Lane: lane, AB: dirStats(lh.ab.Stats()), BA: dirStats(lh.ba.Stats())}
			addDir(&ls.AB, st.AB)
			addDir(&ls.BA, st.BA)
			ls.Lanes = append(ls.Lanes, st)
		}
		ns.Links = append(ns.Links, ls)
	}
	for _, s := range c.switches {
		st := SwitchStats{Forwarded: s.sw.FramesForwarded, Unknown: s.sw.FramesUnknown}
		for _, p := range s.sw.Ports() {
			ps := PortStats{Host: p.Addr, Out: dirStats(p.HoseStats)}
			if up := s.uplinks[p.Addr]; up != nil {
				ps.In = dirStats(up.Stats())
			}
			st.Ports = append(st.Ports, ps)
		}
		ns.Switches = append(ns.Switches, st)
	}
	return ns
}

// TotalWireLoss sums every wire-level discard (targeted drops,
// impairment loss and congestion tail-drops) across the testbed.
func (ns NetStats) TotalWireLoss() int64 {
	sum := func(d DirStats) int64 { return d.FramesDropped + d.FramesLost + d.TailDrops }
	var total int64
	for _, l := range ns.Links {
		total += sum(l.AB) + sum(l.BA)
	}
	for _, s := range ns.Switches {
		for _, p := range s.Ports {
			total += sum(p.In) + sum(p.Out)
		}
	}
	return total
}

// crossFrame marks background cross-traffic payloads. Both protocol
// stacks discard frames they do not recognize, so cross traffic
// consumes wire time, switch queues, NIC rings and bottom-half CPU —
// and nothing else.
type crossFrame struct{ Seq int64 }

// CrossTraffic is a running background traffic generator.
type CrossTraffic struct {
	FramesSent int64
	BytesSent  int64
	stopped    bool
}

// Stop ends generation at the next scheduled frame.
func (ct *CrossTraffic) Stop() { ct.stopped = true }

// CrossTrafficConfig shapes a background flow.
type CrossTrafficConfig struct {
	// Seed selects the deterministic gap/size stream.
	Seed int64
	// BytesPerSec is the average offered payload load.
	BytesPerSec float64
	// FrameBytes is the payload size per frame (default 1500).
	FrameBytes int
	// Duration bounds generation (required: the generator must not
	// outlive the experiment, or Run would never drain).
	Duration sim.Duration
}

// StartCrossTraffic injects a background flow of unmatched frames
// from one host to another (both must have a protocol stack attached,
// which will discard them on arrival). Inter-frame gaps are jittered
// ±50% around the configured average, from a seeded stream.
func (c *Cluster) StartCrossTraffic(from, to *Host, cfg CrossTrafficConfig) *CrossTraffic {
	if cfg.BytesPerSec <= 0 || cfg.Duration <= 0 {
		panic(fmt.Sprintf("cluster: cross traffic needs positive BytesPerSec and Duration, got %v and %v",
			cfg.BytesPerSec, cfg.Duration))
	}
	if cfg.FrameBytes <= 0 {
		cfg.FrameBytes = 1500
	}
	ct := &CrossTraffic{}
	rng := wire.NewRand(cfg.Seed)
	deadline := c.E.Now() + cfg.Duration
	meanGap := float64(cfg.FrameBytes) / cfg.BytesPerSec * float64(sim.Second)
	var tick func()
	tick = func() {
		if ct.stopped || c.E.Now() >= deadline {
			return
		}
		ct.FramesSent++
		ct.BytesSent += int64(cfg.FrameBytes)
		from.m.NIC.Transmit(&wire.Frame{
			Data:    make([]byte, cfg.FrameBytes),
			WireLen: cfg.FrameBytes + c.P.OMXHeaderBytes,
			Msg:     &crossFrame{Seq: ct.FramesSent},
			DstAddr: to.Name,
		})
		gap := sim.Duration(meanGap * (0.5 + rng.Float64()))
		if gap < 1 {
			gap = 1
		}
		c.E.Schedule(gap, tick)
	}
	c.E.Schedule(0, tick)
	return ct
}
