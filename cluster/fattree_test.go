package cluster_test

// Fat-tree fabric tests: topology shape, ECMP determinism (same seed
// and program ⇒ identical flow→uplink assignment), and the trunk
// incast storm whose congestion drops must be exactly attributed to
// the bounded trunk ports in NetStats.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"omxsim/cluster"
	"omxsim/internal/wire"
	"omxsim/openmx"
	"omxsim/sim"
)

// buildFatTree builds an n-host fat tree with the given shape.
func buildFatTree(n, leafRadix, spines int, policy string, trunkOpts ...cluster.NetOption) *cluster.Cluster {
	return cluster.Build(cluster.Topology{
		Hosts: []cluster.HostSet{{Name: "node", N: n, Indexed: true}},
		Wiring: cluster.FatTree{
			LeafRadix:  leafRadix,
			Spines:     spines,
			ECMPPolicy: policy,
			TrunkOpts:  trunkOpts,
		},
	})
}

func TestFatTreeShape(t *testing.T) {
	c := buildFatTree(8, 4, 2, "")
	defer c.Close()
	sws := c.Switches()
	if len(sws) != 4 {
		t.Fatalf("switches = %d, want 2 leaves + 2 spines", len(sws))
	}
	for i := 0; i < 2; i++ {
		if got := len(sws[i].Wire().Trunks()); got != 2 {
			t.Errorf("leaf %d has %d trunk hoses, want 2 (one per spine)", i, got)
		}
	}
	for i := 2; i < 4; i++ {
		if got := len(sws[i].Wire().Trunks()); got != 2 {
			t.Errorf("spine %d has %d trunk hoses, want 2 (one per leaf)", i-2, got)
		}
	}
	if len(c.Hosts()) != 8 {
		t.Fatalf("hosts = %d, want 8", len(c.Hosts()))
	}
}

// allPairs runs a deterministic all-pairs eager exchange over the
// fat tree: every host sends one small message to every other host
// and receives one from each. Completion is asserted; the traffic's
// purpose is to populate the leaves' ECMP flow tables.
func allPairs(t *testing.T, c *cluster.Cluster, size int) {
	t.Helper()
	hosts := c.Hosts()
	n := len(hosts)
	eps := make([]openmx.Endpoint, n)
	for i, h := range hosts {
		eps[i] = stressStack("openmx", h).Open(0, 2)
	}
	type xfer struct{ src, dst *cluster.Buffer }
	bufs := make(map[[2]int]xfer)
	for i := range hosts {
		for j := range hosts {
			if i == j {
				continue
			}
			x := xfer{src: hosts[i].Alloc(size), dst: hosts[j].Alloc(size)}
			x.src.Fill(byte(i*31 + j + 1))
			bufs[[2]int{i, j}] = x
		}
	}
	completed := 0
	for i := range hosts {
		i := i
		c.Go(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			var reqs []openmx.Request
			for j := range hosts {
				if j == i {
					continue
				}
				m := bufs[[2]int{j, i}]
				reqs = append(reqs, eps[i].IRecv(p, uint64(j<<16|i), ^uint64(0), m.dst, 0, size))
			}
			for j := range hosts {
				if j == i {
					continue
				}
				m := bufs[[2]int{i, j}]
				reqs = append(reqs, eps[i].ISend(p, eps[j].Addr(), uint64(i<<16|j), m.src, 0, size))
			}
			for _, r := range reqs {
				eps[i].Wait(p, r)
				completed++
			}
		})
	}
	c.RunFor(60 * sim.Second)
	want := 2 * n * (n - 1)
	if completed != want {
		t.Fatalf("all-pairs completed %d/%d operations", completed, want)
	}
	for k, m := range bufs {
		if !cluster.Equal(m.src, m.dst) {
			t.Fatalf("payload %v corrupted", k)
		}
	}
}

// flowPaths snapshots every switch's sticky flow table.
func flowPaths(c *cluster.Cluster) []map[[2]string]string {
	var out []map[[2]string]string
	for _, s := range c.Switches() {
		out = append(out, s.Wire().FlowPaths())
	}
	return out
}

// TestFatTreeECMPDeterminism: two identical builds running the same
// program must assign every flow to the same uplink — for both
// policies — and the hash policy must actually spread flows over
// multiple spines.
func TestFatTreeECMPDeterminism(t *testing.T) {
	for _, policy := range []string{wire.ECMPHash, wire.ECMPRoundRobin} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			run := func() []map[[2]string]string {
				c := buildFatTree(8, 4, 2, policy)
				defer c.Close()
				allPairs(t, c, 1024)
				return flowPaths(c)
			}
			first, second := run(), run()
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("ECMP %s flow assignment differs run-to-run:\nfirst:  %v\nsecond: %v",
					policy, first, second)
			}
			// Leaf 0 carries 4×4 inter-leaf flows per direction; both
			// uplinks must be in use.
			used := map[string]int{}
			for _, up := range first[0] {
				used[up]++
			}
			if len(used) < 2 {
				t.Errorf("ECMP %s used only %v of leaf0's 2 uplinks", policy, used)
			}
		})
	}
}

// TestFatTreeRoundRobinSpreadsEvenly: first-sight round-robin must
// split a leaf's flows exactly in half across 2 spines.
func TestFatTreeRoundRobinSpreadsEvenly(t *testing.T) {
	c := buildFatTree(8, 4, 2, wire.ECMPRoundRobin)
	defer c.Close()
	allPairs(t, c, 1024)
	used := map[string]int{}
	total := 0
	for _, up := range flowPaths(c)[0] {
		used[up]++
		total++
	}
	if len(used) != 2 {
		t.Fatalf("round-robin used %d uplinks, want 2: %v", len(used), used)
	}
	for up, n := range used {
		if n != total/2 {
			t.Errorf("uplink %s carries %d of %d flows, want exact halves (%v)", up, n, total, used)
		}
	}
}

// TestFatTreeIncastTrunkDropAttribution: four senders on two remote
// leaves storm one receiver through a single spine with tiny trunk
// queues. The transfers must survive (retransmission recovers the
// tail-drops), and NetStats must attribute every lost frame to a
// bounded trunk port — host ports, NIC rings and links all stay
// clean, so the per-port sums exactly account for TotalWireLoss.
func TestFatTreeIncastTrunkDropAttribution(t *testing.T) {
	c := buildFatTree(6, 2, 1, "", cluster.Queue(8))
	defer c.Close()
	hosts := c.Hosts()
	eps := make([]openmx.Endpoint, len(hosts))
	for i, h := range hosts {
		eps[i] = stressStack("openmx", h).Open(0, 2)
	}
	// node0 (leaf 0) is the sink; nodes 2..5 (leaves 1 and 2) the storm.
	senders := []int{2, 3, 4, 5}
	const perSender = 6
	n := 64 * 1024
	type pair struct{ src, dst *cluster.Buffer }
	bufs := make(map[[2]int]pair)
	for _, s := range senders {
		for k := 0; k < perSender; k++ {
			p := pair{src: hosts[s].Alloc(n), dst: hosts[0].Alloc(n)}
			p.src.Fill(byte(s*perSender + k + 1))
			bufs[[2]int{s, k}] = p
		}
	}
	done := 0
	c.Go("sink", func(p *sim.Proc) {
		var reqs []openmx.Request
		for _, s := range senders {
			for k := 0; k < perSender; k++ {
				m := bufs[[2]int{s, k}]
				reqs = append(reqs, eps[0].IRecv(p, uint64(s<<8|k), ^uint64(0), m.dst, 0, n))
			}
		}
		for _, r := range reqs {
			eps[0].Wait(p, r)
			done++
		}
	})
	for _, s := range senders {
		s := s
		c.Go(fmt.Sprintf("storm%d", s), func(p *sim.Proc) {
			for k := 0; k < perSender; k++ {
				m := bufs[[2]int{s, k}]
				eps[s].Wait(p, eps[s].ISend(p, eps[0].Addr(), uint64(s<<8|k), m.src, 0, n))
			}
		})
	}
	c.RunFor(120 * sim.Second)
	if done != len(senders)*perSender {
		t.Fatalf("incast delivered %d/%d messages", done, len(senders)*perSender)
	}
	for k, m := range bufs {
		if !cluster.Equal(m.src, m.dst) {
			t.Fatalf("message %v corrupted", k)
		}
	}

	ns := c.NetStats()
	total := ns.TotalWireLoss()
	if total == 0 {
		t.Fatal("incast lost nothing — trunk queues not exercised")
	}
	var trunkDrops, hostPortLoss int64
	spineDownDrops := int64(0)
	for _, sw := range ns.Switches {
		for _, p := range sw.Ports {
			loss := p.Out.FramesDropped + p.Out.FramesLost + p.Out.TailDrops +
				p.In.FramesDropped + p.In.FramesLost + p.In.TailDrops
			if strings.HasPrefix(p.Host, "trunk:") {
				trunkDrops += loss
				if p.Out.TailDrops != loss {
					t.Errorf("trunk port %s lost %d frames beyond its %d tail-drops", p.Host, loss, p.Out.TailDrops)
				}
				if strings.HasSuffix(p.Host, "<") && strings.Contains(p.Host, "leaf0-") {
					spineDownDrops += p.Out.TailDrops
				}
			} else {
				hostPortLoss += loss
			}
		}
	}
	if hostPortLoss != 0 {
		t.Errorf("host-facing switch ports lost %d frames, want 0 (queues unbounded)", hostPortLoss)
	}
	if trunkDrops != total {
		t.Errorf("trunk tail-drops %d != TotalWireLoss %d — drops not fully attributed", trunkDrops, total)
	}
	if spineDownDrops == 0 {
		t.Error("spine's down-trunk to the sink's leaf tail-dropped nothing — incast bottleneck not where expected")
	}
	for _, h := range ns.Hosts {
		if h.RxDrops != 0 {
			t.Errorf("host %s NIC ring dropped %d frames — loss leaked past the trunks", h.Host, h.RxDrops)
		}
	}
	if len(ns.Links) != 0 {
		t.Errorf("fat-tree stats contain %d point-to-point links, want 0", len(ns.Links))
	}
}
