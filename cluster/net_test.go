package cluster_test

import (
	"testing"

	"omxsim/cluster"
	"omxsim/openmx"
	"omxsim/platform"
	"omxsim/sim"
)

// TestNetStatsImpairedLink: the public Link options install a
// deterministic impairment, transfers still complete verified, and
// NetStats reports the loss on the right link direction.
func TestNetStatsImpairedLink(t *testing.T) {
	c := cluster.New(nil)
	a, b := c.NewHost("a"), c.NewHost("b")
	cluster.Link(a, b, cluster.ImpairAB(cluster.Impairment{Seed: 3, LossRate: 0.05}))
	ea := openmx.Attach(a, openmx.Config{RetransmitTimeout: 2 * sim.Millisecond}).Open(0, 2)
	eb := openmx.Attach(b, openmx.Config{RetransmitTimeout: 2 * sim.Millisecond}).Open(0, 2)

	const count = 10
	n := 32 * 1024
	srcs := make([]*cluster.Buffer, count)
	dsts := make([]*cluster.Buffer, count)
	for i := range srcs {
		srcs[i], dsts[i] = a.Alloc(n), b.Alloc(n)
		srcs[i].Fill(byte(i + 1))
	}
	done := 0
	c.Go("recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r := eb.IRecv(p, uint64(i), ^uint64(0), dsts[i], 0, n)
			eb.Wait(p, r)
			done++
		}
	})
	c.Go("send", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			ea.Wait(p, ea.ISend(p, eb.Addr(), uint64(i), srcs[i], 0, n))
		}
	})
	c.RunFor(30 * sim.Second)
	defer c.Close()
	if done != count {
		t.Fatalf("delivered %d/%d", done, count)
	}
	for i := range srcs {
		if !cluster.Equal(srcs[i], dsts[i]) {
			t.Fatalf("message %d corrupted", i)
		}
	}
	ns := c.NetStats()
	if len(ns.Links) != 1 || len(ns.Hosts) != 2 {
		t.Fatalf("stats shape: %d links, %d hosts", len(ns.Links), len(ns.Hosts))
	}
	l := ns.Links[0]
	if l.From != "a" || l.To != "b" {
		t.Fatalf("link endpoints %s→%s", l.From, l.To)
	}
	if l.AB.FramesLost == 0 {
		t.Fatal("impaired A→B direction lost nothing")
	}
	if l.BA.FramesLost != 0 {
		t.Fatalf("clean B→A direction lost %d", l.BA.FramesLost)
	}
	if ns.TotalWireLoss() != l.AB.FramesLost {
		t.Fatalf("TotalWireLoss %d != AB losses %d", ns.TotalWireLoss(), l.AB.FramesLost)
	}
	// Hosts are sorted by name and saw traffic.
	if ns.Hosts[0].Host != "a" || ns.Hosts[1].Host != "b" {
		t.Fatalf("host order: %+v", ns.Hosts)
	}
	if ns.Hosts[0].TxFrames == 0 || ns.Hosts[1].RxFrames == 0 {
		t.Fatalf("host counters empty: %+v", ns.Hosts)
	}
	// Single-NIC hosts: one per-NIC entry, summing to the host totals,
	// and the aggregated link stats equal its single lane's.
	for _, h := range ns.Hosts {
		if len(h.NICs) != 1 || h.NICs[0].TxFrames != h.TxFrames ||
			h.NICs[0].RxFrames != h.RxFrames || h.NICs[0].RxDrops != h.RxDrops {
			t.Fatalf("host %s per-NIC split inconsistent: %+v", h.Host, h)
		}
	}
	if len(l.Lanes) != 1 || l.Lanes[0].AB != l.AB || l.Lanes[0].BA != l.BA {
		t.Fatalf("1-NIC link lane split inconsistent: %+v", l)
	}
}

// TestRingDropAttributedToNIC: ring-overflow loss on a multi-NIC host
// lands on exactly the NIC whose ring overflowed. With the stripe
// policy pinned to a single lane and a tiny receive ring, the pull
// stream overruns NIC 0's ring while NIC 1 stays idle — the per-NIC
// split must attribute every drop to NIC 0, the wire itself must be
// loss-free (ring drops and wire drops are disjoint events), and the
// per-NIC counters must sum exactly to the host totals.
func TestRingDropAttributedToNIC(t *testing.T) {
	p := platform.Clovertown()
	p.RxRingSize = 4 // tiny ring: the BH is slower than the wire
	c := cluster.New(p)
	a := c.NewHost("a", cluster.MultiNIC(2))
	b := c.NewHost("b", cluster.MultiNIC(2))
	cluster.Link(a, b)
	cfg := openmx.Config{
		RegCache: true, StripePolicy: openmx.StripeSingle,
		RetransmitTimeout: 2 * sim.Millisecond,
	}
	ea := openmx.Attach(a, cfg).Open(0, 2)
	eb := openmx.Attach(b, cfg).Open(0, 2)
	n := 512 * 1024
	src, dst := a.Alloc(n), b.Alloc(n)
	src.Fill(42)
	done := false
	c.Go("recv", func(p *sim.Proc) {
		r := eb.IRecv(p, 7, ^uint64(0), dst, 0, n)
		eb.Wait(p, r)
		done = true
	})
	c.Go("send", func(p *sim.Proc) { ea.Wait(p, ea.ISend(p, eb.Addr(), 7, src, 0, n)) })
	c.RunFor(30 * sim.Second)
	defer c.Close()
	if !done || !cluster.Equal(src, dst) {
		t.Fatal("transfer did not complete verified despite retransmission")
	}
	ns := c.NetStats()
	recv := ns.Hosts[1]
	if recv.Host != "b" || len(recv.NICs) != 2 {
		t.Fatalf("unexpected host stats: %+v", recv)
	}
	if recv.RxDrops == 0 {
		t.Fatal("tiny ring overflowed nothing — overload not exercised")
	}
	if recv.NICs[0].RxDrops != recv.RxDrops || recv.NICs[1].RxDrops != 0 {
		t.Fatalf("ring drops not attributed to NIC 0: %+v", recv.NICs)
	}
	if recv.NICs[1].RxFrames != 0 {
		t.Fatalf("single-lane policy leaked %d frames onto NIC 1", recv.NICs[1].RxFrames)
	}
	var tx, rx, drops int64
	for _, nicStat := range recv.NICs {
		tx += nicStat.TxFrames
		rx += nicStat.RxFrames
		drops += nicStat.RxDrops
	}
	if tx != recv.TxFrames || rx != recv.RxFrames || drops != recv.RxDrops {
		t.Fatalf("per-NIC sums (%d,%d,%d) != host totals (%d,%d,%d)",
			tx, rx, drops, recv.TxFrames, recv.RxFrames, recv.RxDrops)
	}
	// Disjointness: the drops happened at the ring, not on the wire.
	if loss := ns.TotalWireLoss(); loss != 0 {
		t.Fatalf("wire lost %d frames on a clean link (ring drops double-counted?)", loss)
	}
	// The wire's per-lane view agrees: everything lane 0 delivered was
	// received or ring-dropped, nothing ever reached lane 1.
	lanes := ns.Links[0].Lanes
	if lanes[0].AB.FramesSent != recv.NICs[0].RxFrames+recv.NICs[0].RxDrops {
		t.Fatalf("lane 0 delivered %d != NIC 0 rx %d + drops %d",
			lanes[0].AB.FramesSent, recv.NICs[0].RxFrames, recv.NICs[0].RxDrops)
	}
	if lanes[1].AB.FramesSent != 0 {
		t.Fatalf("lane 1 carried %d frames under the single-lane policy", lanes[1].AB.FramesSent)
	}
}

// TestRateAsymmetryslowsOneDirection: RateScale 0.1 must stretch
// serialization ~10x in that direction only.
func TestRateAsymmetry(t *testing.T) {
	lat := func(opts ...cluster.NetOption) sim.Duration {
		c := cluster.New(nil)
		a, b := c.NewHost("a"), c.NewHost("b")
		cluster.Link(a, b, opts...)
		ea := openmx.Attach(a, openmx.Config{}).Open(0, 2)
		eb := openmx.Attach(b, openmx.Config{}).Open(0, 2)
		n := 16 * 1024
		src, dst := a.Alloc(n), b.Alloc(n)
		src.Fill(7)
		var at sim.Time
		c.Go("recv", func(p *sim.Proc) {
			r := eb.IRecv(p, 1, ^uint64(0), dst, 0, n)
			eb.Wait(p, r)
			at = p.Now()
		})
		c.Go("send", func(p *sim.Proc) { ea.Wait(p, ea.ISend(p, eb.Addr(), 1, src, 0, n)) })
		c.RunFor(10 * sim.Second)
		defer c.Close()
		if at == 0 {
			t.Fatal("transfer never completed")
		}
		return at
	}
	full := lat()
	slow := lat(cluster.ImpairAB(cluster.Impairment{Seed: 1, RateScale: 0.1}))
	if slow < 3*full {
		t.Fatalf("10%% rate direction latency %v, not clearly slower than %v", slow, full)
	}
	// Reverse direction unimpaired: B→A only carries acks, so A→B
	// rate dominates; impairing only B→A must not slow the transfer.
	rev := lat(cluster.ImpairBA(cluster.Impairment{Seed: 1, RateScale: 0.1}))
	if rev > 2*full {
		t.Fatalf("impairing only the reverse direction slowed delivery %v vs %v", rev, full)
	}
}
