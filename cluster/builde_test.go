package cluster_test

import (
	"strings"
	"testing"

	"omxsim/cluster"
)

// TestBuildEValidTopology: a valid spec builds through the error path
// exactly like Build — same hosts, names, NIC counts, switches.
func TestBuildEValidTopology(t *testing.T) {
	top := cluster.Topology{
		Hosts: []cluster.HostSet{{Name: "node", N: 8, Indexed: true, Opts: []cluster.HostOption{cluster.MultiNIC(2)}}},
		Wiring: cluster.FatTree{
			LeafRadix: 4,
			Spines:    2,
		},
	}
	c, err := cluster.BuildE(top)
	if err != nil {
		t.Fatalf("BuildE(valid fat tree) = %v", err)
	}
	if got := len(c.Hosts()); got != 8 {
		t.Errorf("hosts = %d, want 8", got)
	}
	if got := c.Hosts()[3].Name; got != "node3" {
		t.Errorf("host 3 named %q, want node3", got)
	}
	if got := c.Hosts()[0].NICCount(); got != 2 {
		t.Errorf("NIC count = %d, want 2", got)
	}
	if got := len(c.Switches()); got != 4 { // 2 leaves + 2 spines
		t.Errorf("switches = %d, want 4", got)
	}
}

// TestBuildEInvalidTopologies: every invariant the panicking path
// enforces comes back as an error, with a message naming the problem.
func TestBuildEInvalidTopologies(t *testing.T) {
	cases := []struct {
		name string
		top  cluster.Topology
		want string // substring of the error
	}{
		{
			"negative host count",
			cluster.Topology{Hosts: []cluster.HostSet{{Name: "n", N: -3}}},
			"count",
		},
		{
			"duplicate host name",
			cluster.Topology{Hosts: []cluster.HostSet{{Name: "a"}, {Name: "a"}}},
			"duplicate host",
		},
		{
			"reserved lane separator in name",
			cluster.Topology{Hosts: []cluster.HostSet{{Name: "a#1"}}},
			"#",
		},
		{
			"MultiNIC count out of range",
			cluster.Topology{Hosts: []cluster.HostSet{{Name: "a", Opts: []cluster.HostOption{cluster.MultiNIC(0)}}}},
			"MultiNIC count 0",
		},
		{
			"BackToBack with wrong host count",
			cluster.Topology{
				Hosts:  []cluster.HostSet{{Name: "n", N: 3}},
				Wiring: cluster.BackToBack{},
			},
			"exactly 2 hosts",
		},
		{
			"FatTree LeafRadix out of range",
			cluster.Topology{
				Hosts:  []cluster.HostSet{{Name: "n", N: 8}},
				Wiring: cluster.FatTree{LeafRadix: 0, Spines: 2},
			},
			"LeafRadix",
		},
		{
			"FatTree Spines out of range",
			cluster.Topology{
				Hosts:  []cluster.HostSet{{Name: "n", N: 8}},
				Wiring: cluster.FatTree{LeafRadix: 4, Spines: 0},
			},
			"Spines",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := cluster.BuildE(tc.top)
			if err == nil {
				t.Fatalf("BuildE accepted an invalid topology (got cluster %v)", c)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLinkEMismatchedNICCounts: aggregated links with unequal NIC
// counts and out-of-range ImpairLane indices error instead of
// panicking, and the failed Link leaves no lane cabled.
func TestLinkEMismatchedNICCounts(t *testing.T) {
	c := cluster.New(nil)
	a := c.NewHost("a", cluster.MultiNIC(2))
	b := c.NewHost("b")
	if err := cluster.LinkE(a, b); err == nil || !strings.Contains(err.Error(), "equal NIC counts") {
		t.Errorf("LinkE(2 NICs, 1 NIC) = %v, want NIC-count error", err)
	}
	d := c.NewHost("d", cluster.MultiNIC(2))
	if err := cluster.LinkE(a, d, cluster.ImpairLane(7, cluster.Impairment{LossRate: 0.5})); err == nil ||
		!strings.Contains(err.Error(), "ImpairLane(7)") {
		t.Errorf("LinkE with out-of-range lane = %v, want lane error", err)
	}
	if got := c.NetStats().Links; len(got) != 0 {
		t.Errorf("failed LinkE left %d link records behind", len(got))
	}
	// The valid link still works after the rejected attempts.
	if err := cluster.LinkE(a, d); err != nil {
		t.Errorf("valid LinkE after failures = %v", err)
	}
}

// TestBuildStillPanics: the CLI-facing wrappers keep their panicking
// contract, delegating to the error path.
func TestBuildStillPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Build(bad BackToBack)", func() {
		cluster.Build(cluster.Topology{
			Hosts:  []cluster.HostSet{{Name: "n", N: 3}},
			Wiring: cluster.BackToBack{},
		})
	})
	mustPanic("NewHost(MultiNIC(0))", func() {
		c := cluster.New(nil)
		c.NewHost("a", cluster.MultiNIC(0))
	})
	mustPanic("Link(mismatched NICs)", func() {
		c := cluster.New(nil)
		a := c.NewHost("a", cluster.MultiNIC(2))
		b := c.NewHost("b")
		cluster.Link(a, b)
	})
}
