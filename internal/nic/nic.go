// Package nic models a 10 Gbit/s Ethernet NIC and its driver's receive
// path, in two personalities:
//
//   - Generic mode reproduces the Linux receive path the paper's
//     Open-MX runs on: incoming frames are DMA'd into the next skbuff
//     of a circular receive ring ("the driver cannot predict which
//     packet will arrive next"), an interrupt schedules a bottom half,
//     and a NAPI-style loop drains pending skbuffs on one core, calling
//     the registered protocol receive handler for each. Ring overflow
//     drops frames (exercised by the retransmission tests).
//
//   - Firmware mode models Myricom's native MXoE personality: frames
//     are handled entirely by NIC firmware with no host interrupt, no
//     skbuff and no bottom half; the registered firmware handler runs
//     at frame arrival and performs its own DMA timing.
//
// The bottom half is a simulated kernel process (softirq priority) so
// its CPU time lands in the accounting that Figure 9 reports.
package nic

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// Skb is a socket buffer holding one received frame.
type Skb struct {
	Buf   *hostmem.Buffer // payload bytes, freshly DMA'd (cache-cold)
	Frame *wire.Frame
	nic   *NIC
	freed bool
}

// Len reports the payload length.
func (s *Skb) Len() int { return len(s.Buf.Data) }

// Free releases the skbuff. Freeing twice panics (use-after-free guard
// for the driver's resource tracking).
func (s *Skb) Free() {
	if s.freed {
		panic("nic: double free of skbuff")
	}
	s.freed = true
	s.nic.skbsLive--
}

// RxHandler is the protocol receive callback, invoked in bottom-half
// context. It must charge its own CPU costs through p and core, and it
// owns the skbuff (must eventually Free it).
type RxHandler func(p *sim.Proc, core *cpu.Core, skb *Skb)

// FirmwareHandler receives raw frames in firmware mode, at wire
// arrival time, with no host CPU involvement.
type FirmwareHandler func(f *wire.Frame)

// NIC is one network interface.
type NIC struct {
	E    *sim.Engine
	P    *platform.Platform
	Sys  *cpu.System
	Mem  *hostmem.Memory
	Name string
	// Lane is this NIC's index on its host (0 for the primary NIC).
	// Multi-NIC hosts stripe traffic across lanes; the protocol stacks
	// learn a frame's arrival lane from the NIC that delivered it.
	Lane int

	hose *wire.Hose // transmit side, set via SetHose

	// Receive configuration.
	handler  RxHandler
	firmware FirmwareHandler
	// IRQCore is the core that receives this NIC's interrupts and runs
	// its bottom half (the paper: "the NIC may send interrupts to any
	// core"). It is resolved at the start of each bottom-half run, so
	// the adaptive transport tier may re-steer it between interrupts;
	// without Config.Adaptive it stays fixed for the whole run, the
	// common production setup.
	IRQCore int
	// DCATarget, on platforms with HasDCA, is the core whose LLC the
	// NIC's DMA deposits are pushed into (the DCA tag in the TLP
	// header). Negative means follow IRQCore — the chipset default of
	// steering toward the interrupted core.
	DCATarget int

	// Receive state (generic mode). pending is a head-cursor FIFO:
	// popping advances pendingHead instead of reslicing, so the backing
	// array's capacity is reused forever and the rx steady state never
	// reallocates.
	pending     []*Skb
	pendingHead int
	inflight    int // frames being DMA'd into ring skbuffs
	bhSig       *sim.Signal
	bhBusy      bool

	// Transmit state (same head-cursor FIFO idiom).
	txQueue  []*wire.Frame
	txHead   int
	txActive bool

	// Stats.
	RxFrames  int64
	RxDrops   int64
	TxFrames  int64
	BHRuns    int64
	skbsLive  int
	SkbsAlloc int64
}

// New returns a NIC attached to the given host resources.
func New(e *sim.Engine, p *platform.Platform, sys *cpu.System, mem *hostmem.Memory, name string) *NIC {
	n := &NIC{E: e, P: p, Sys: sys, Mem: mem, Name: name, DCATarget: -1, bhSig: sim.NewSignal()}
	e.GoDaemon("bh:"+name, n.bhLoop)
	return n
}

// Address implements wire.Port.
func (n *NIC) Address() string { return n.Name }

// SetHose attaches the transmit hose (created by wire.Connect or a
// switch).
func (n *NIC) SetHose(h *wire.Hose) { n.hose = h }

// Hose returns the transmit hose.
func (n *NIC) Hose() *wire.Hose { return n.hose }

// SetRxHandler selects generic mode with the given protocol callback.
func (n *NIC) SetRxHandler(h RxHandler) {
	n.handler = h
	n.firmware = nil
}

// SetFirmware selects firmware mode with the given handler.
func (n *NIC) SetFirmware(h FirmwareHandler) {
	n.firmware = h
	n.handler = nil
}

// SkbsLive reports skbuffs delivered to the protocol and not yet freed
// (the "pool of skbuffs being queued for copy" the paper's resource
// tracking bounds).
func (n *NIC) SkbsLive() int { return n.skbsLive }

// Transmit queues a frame for transmission: a host-to-NIC DMA read,
// then wire serialization. The sending CPU costs (building the skbuff,
// the syscall) are the protocol's business and must be charged before
// calling Transmit.
func (n *NIC) Transmit(f *wire.Frame) {
	f.SrcAddr = n.Name
	n.txQueue = append(n.txQueue, f)
	if !n.txActive {
		n.txActive = true
		n.txNext()
	}
}

func (n *NIC) txNext() {
	if n.txHead == len(n.txQueue) {
		n.txQueue = n.txQueue[:0]
		n.txHead = 0
		n.txActive = false
		return
	}
	f := n.txQueue[n.txHead]
	n.txQueue[n.txHead] = nil
	n.txHead++
	dma := sim.Duration(n.P.NICFixedLatency) + sim.Duration(float64(f.WireLen)/float64(n.P.NICDMARate))
	n.E.Schedule(dma, func() {
		n.TxFrames++
		if n.hose == nil {
			panic(fmt.Sprintf("nic %s: transmit with no hose attached", n.Name))
		}
		n.hose.Send(f)
		n.txNext()
	})
}

// Arrive implements wire.Port: a frame's last bit has arrived.
func (n *NIC) Arrive(f *wire.Frame) {
	if n.firmware != nil {
		n.firmware(f)
		return
	}
	if n.handler == nil {
		panic(fmt.Sprintf("nic %s: frame arrived with no handler", n.Name))
	}
	// Ring occupancy: frames being DMA'd plus frames waiting for the
	// bottom half. When the ring is exhausted the NIC has nowhere to
	// put the frame and drops it.
	if n.inflight+n.pendingLen() >= n.P.RxRingSize {
		n.RxDrops++
		return
	}
	n.inflight++
	// Ring skbuffs are kernel allocations on the chipset's home socket,
	// so the deposit itself never pays the remote-DMA penalty here (the
	// firmware personality, which deposits into user-placed buffers,
	// does; see mxoe).
	dma := sim.Duration(n.P.NICFixedLatency) + sim.Duration(float64(f.WireLen)/float64(n.P.NICDMARate))
	n.E.Schedule(dma, func() {
		n.inflight--
		n.RxFrames++
		buf := n.Mem.Alloc(len(f.Data))
		copy(buf.Data, f.Data)
		if n.P.HasDCA {
			// Direct Cache Access: the deposit is pushed into the DCA
			// target core's LLC instead of landing cold in memory.
			buf.WrittenByDCA(n.DCATargetCore(), len(f.Data))
		} else {
			buf.WrittenByDMA()
		}
		n.SkbsAlloc++
		n.skbsLive++
		n.pending = append(n.pending, &Skb{Buf: buf, Frame: f, nic: n})
		n.bhSig.Broadcast()
	})
}

// DCATargetCore resolves the core whose cache DCA deposits are pushed
// toward: the configured target, or the interrupted core by default.
func (n *NIC) DCATargetCore() int {
	if n.DCATarget >= 0 {
		return n.DCATarget
	}
	return n.IRQCore
}

// pendingLen reports the number of skbuffs waiting for the bottom half.
func (n *NIC) pendingLen() int { return len(n.pending) - n.pendingHead }

// popPending removes the FIFO head, recycling the backing array when
// it drains.
func (n *NIC) popPending() *Skb {
	skb := n.pending[n.pendingHead]
	n.pending[n.pendingHead] = nil
	n.pendingHead++
	if n.pendingHead == len(n.pending) {
		n.pending = n.pending[:0]
		n.pendingHead = 0
	}
	return skb
}

// bhLoop is the NAPI-style bottom half: one kernel process per NIC.
func (n *NIC) bhLoop(p *sim.Proc) {
	for {
		p.WaitFor(n.bhSig, func() bool { return n.pendingLen() > 0 })
		// Interrupt delivery + hard-irq handler before softirq work.
		p.Sleep(sim.Duration(n.P.IRQLatency))
		n.BHRuns++
		n.bhBusy = true
		core := n.Sys.Core(n.IRQCore)
		for n.pendingLen() > 0 {
			budget := n.P.NAPIBudget
			for budget > 0 && n.pendingLen() > 0 {
				skb := n.popPending()
				// Generic driver + skbuff handling for this frame.
				core.RunOn(p, cpu.BHProc, sim.Duration(n.P.SkbPerFrameCost))
				n.handler(p, core, skb)
				budget--
			}
			// Budget exhausted with frames still pending: NAPI yields
			// the softirq and immediately re-polls (no new interrupt).
			if n.pendingLen() > 0 {
				p.Yield()
			}
		}
		n.bhBusy = false
	}
}
