package nic

import (
	"testing"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

type fixture struct {
	e    *sim.Engine
	p    *platform.Platform
	a, b *NIC
}

func newPair(t *testing.T) *fixture {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	mkNIC := func(name string) *NIC {
		sys := cpu.NewSystem(e, p)
		mem := hostmem.New(p)
		return New(e, p, sys, mem, name)
	}
	a, b := mkNIC("nicA"), mkNIC("nicB")
	ab, ba := wire.Connect(e, p, a, b)
	a.SetHose(ab)
	b.SetHose(ba)
	f := &fixture{e: e, p: p, a: a, b: b}
	t.Cleanup(e.Close)
	return f
}

func frame(n int, msg any) *wire.Frame {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	return &wire.Frame{Data: data, WireLen: n + 32, Msg: msg}
}

func TestGenericDeliveryThroughBH(t *testing.T) {
	fx := newPair(t)
	var gotLen int
	var gotAt sim.Time
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		gotLen = skb.Len()
		gotAt = p.Now()
		skb.Free()
	})
	fx.a.Transmit(frame(1024, "hi"))
	fx.e.RunUntil(1 * sim.Millisecond)
	if gotLen != 1024 {
		t.Fatalf("handler got %d bytes", gotLen)
	}
	// Latency must include tx DMA, serialization, propagation, rx DMA,
	// IRQ latency and the per-frame skbuff cost.
	min := sim.Duration(fx.p.IRQLatency + fx.p.SkbPerFrameCost + fx.p.WirePropagation)
	if gotAt < min {
		t.Fatalf("delivered at %v, faster than physics %v", gotAt, min)
	}
	if fx.b.RxFrames != 1 || fx.b.RxDrops != 0 {
		t.Fatalf("rx stats: frames=%d drops=%d", fx.b.RxFrames, fx.b.RxDrops)
	}
}

func TestPayloadIntegrityAndDMACold(t *testing.T) {
	fx := newPair(t)
	done := false
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		for i, v := range skb.Buf.Data {
			if v != byte(i) {
				t.Errorf("byte %d = %d", i, v)
				break
			}
		}
		if !skb.Buf.DMACold() {
			t.Error("skbuff not marked DMA-cold")
		}
		skb.Free()
		done = true
	})
	fx.a.Transmit(frame(512, nil))
	fx.e.RunUntil(sim.Millisecond)
	if !done {
		t.Fatal("frame not delivered")
	}
}

func TestFIFOOrderAcrossFrames(t *testing.T) {
	fx := newPair(t)
	var got []int
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		got = append(got, skb.Frame.Msg.(int))
		skb.Free()
	})
	for i := 0; i < 20; i++ {
		fx.a.Transmit(frame(2048, i))
	}
	fx.e.RunUntil(10 * sim.Millisecond)
	if len(got) != 20 {
		t.Fatalf("delivered %d frames", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestSingleInterruptCoalescesBackToBackFrames(t *testing.T) {
	// When the protocol handler is slower than the frame inter-arrival
	// time, frames accumulate while the bottom half runs and are
	// drained NAPI-style without further interrupts.
	fx := newPair(t)
	count := 0
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		core.RunOn(p, cpu.BHProc, 9*sim.Microsecond) // slower than 8 KiB wire time
		count++
		skb.Free()
	})
	for i := 0; i < 10; i++ {
		fx.a.Transmit(frame(8192, i))
	}
	fx.e.RunUntil(10 * sim.Millisecond)
	if count != 10 {
		t.Fatalf("count=%d", count)
	}
	if fx.b.BHRuns >= 5 {
		t.Fatalf("BHRuns=%d, want coalescing", fx.b.BHRuns)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	fx := newPair(t)
	fx.p.RxRingSize = 4 // tiny ring
	blocked := true
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		// Simulate an extremely slow protocol handler.
		if blocked {
			core.RunOn(p, cpu.BHProc, sim.Millisecond)
		}
		skb.Free()
	})
	for i := 0; i < 50; i++ {
		fx.a.Transmit(frame(8192, i))
	}
	fx.e.RunUntil(100 * sim.Millisecond)
	if fx.b.RxDrops == 0 {
		t.Fatal("expected ring overflow drops")
	}
	// The wire counters prove where every frame went: all 50 made it
	// onto the wire (the link itself is perfect) and every delivered
	// frame was either received or ring-dropped — no timing
	// inference, no frame counted twice.
	ws := fx.a.Hose().Stats()
	if ws.FramesSent != 50 || ws.FramesDropped != 0 || ws.FramesLost != 0 || ws.TailDrops != 0 {
		t.Fatalf("wire stats: %+v, want 50 sent and no wire-level drops", ws)
	}
	if fx.b.RxFrames+fx.b.RxDrops != ws.FramesSent {
		t.Fatalf("rx %d + ringdrops %d != wire-delivered %d", fx.b.RxFrames, fx.b.RxDrops, ws.FramesSent)
	}
}

// TestSwitchTailDropAndRingDropDisjoint: congestion loss at the
// switch and ring-overflow loss at the NIC are different events on
// different frames — a tail-dropped frame never reaches the NIC, so
// the two counters can never double-count. The accounting identity
// forwarded == tail-dropped + ring-dropped + received must hold
// exactly.
func TestSwitchTailDropAndRingDropDisjoint(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	p.RxRingSize = 4
	defer e.Close()
	mk := func(name string) *NIC {
		return New(e, p, cpu.NewSystem(e, p), hostmem.New(p), name)
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	sw := wire.NewSwitch(e, p)
	sw.OutputQueueFrames = 2
	ha := sw.Attach(a)
	sw.Attach(b)
	hc := sw.Attach(c)
	a.SetHose(ha)
	c.SetHose(hc)
	blocked := true
	b.SetRxHandler(func(pr *sim.Proc, core *cpu.Core, skb *Skb) {
		if blocked {
			core.RunOn(pr, cpu.BHProc, sim.Millisecond) // overwhelm the ring
		}
		skb.Free()
	})
	// Incast from two senders: the switch output queue overflows AND
	// the slow receiver's ring overflows.
	for i := 0; i < 40; i++ {
		fa := frame(8192, i)
		fa.DstAddr = "b"
		a.Transmit(fa)
		fc := frame(8192, 100+i)
		fc.DstAddr = "b"
		c.Transmit(fc)
	}
	e.RunUntil(200 * sim.Millisecond)
	out := sw.OutHose("b").Stats()
	if out.TailDrops == 0 {
		t.Fatal("no switch tail drops under incast")
	}
	if b.RxDrops == 0 {
		t.Fatal("no NIC ring drops behind the slow handler")
	}
	if sw.FramesForwarded != 80 || sw.FramesUnknown != 0 {
		t.Fatalf("forwarded %d unknown %d, want 80/0", sw.FramesForwarded, sw.FramesUnknown)
	}
	// Exact conservation: every forwarded frame was tail-dropped,
	// ring-dropped, or received — once.
	if out.TailDrops+b.RxDrops+b.RxFrames != sw.FramesForwarded {
		t.Fatalf("taildrop %d + ringdrop %d + rx %d != forwarded %d (double count?)",
			out.TailDrops, b.RxDrops, b.RxFrames, sw.FramesForwarded)
	}
	// And the wire's own view agrees: frames that left the output
	// port equal delivered frames.
	if out.FramesSent != b.RxFrames+b.RxDrops {
		t.Fatalf("port sent %d != NIC saw %d", out.FramesSent, b.RxFrames+b.RxDrops)
	}
}

func TestBHRunsOnConfiguredCore(t *testing.T) {
	fx := newPair(t)
	fx.b.IRQCore = 3
	done := false
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		if core.ID != 3 {
			t.Errorf("BH on core %d, want 3", core.ID)
		}
		skb.Free()
		done = true
	})
	fx.a.Transmit(frame(64, nil))
	fx.e.RunUntil(sim.Millisecond)
	if !done {
		t.Fatal("not delivered")
	}
	if fx.b.Sys.Core(3).BusyNs(cpu.BHProc) == 0 {
		t.Fatal("no BH time accounted on core 3")
	}
}

func TestFirmwareModeBypassesHost(t *testing.T) {
	fx := newPair(t)
	var got *wire.Frame
	var at sim.Time
	fx.b.SetFirmware(func(f *wire.Frame) { got = f; at = fx.e.Now() })
	fx.a.Transmit(frame(256, "fw"))
	fx.e.RunUntil(sim.Millisecond)
	if got == nil {
		t.Fatal("firmware handler not called")
	}
	if fx.b.Sys.TotalBusy() != 0 {
		t.Fatal("firmware mode consumed host CPU")
	}
	// No IRQ latency in the path.
	if at > sim.Time(fx.p.IRQLatency)*3 {
		t.Fatalf("firmware delivery at %v, too slow", at)
	}
}

func TestWireSerializationPacing(t *testing.T) {
	// Two 8 KiB frames: the second arrives ≈ one serialization time
	// after the first (wire is the pacing element).
	fx := newPair(t)
	var times []sim.Time
	fx.b.SetFirmware(func(f *wire.Frame) { times = append(times, fx.e.Now()) })
	fx.a.Transmit(frame(8192, 0))
	fx.a.Transmit(frame(8192, 1))
	fx.e.RunUntil(sim.Millisecond)
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	ser := fx.a.Hose().SerializeTime(8192 + 32)
	gap := times[1] - times[0]
	if gap < ser-200 || gap > ser+1500 {
		t.Fatalf("inter-frame gap %v, want ≈ serialization %v", gap, ser)
	}
}

func TestLossInjection(t *testing.T) {
	fx := newPair(t)
	n := 0
	fx.a.Hose().Drop = func(f *wire.Frame) bool {
		n++
		return n%2 == 1 // drop every other frame
	}
	count := 0
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		count++
		skb.Free()
	})
	for i := 0; i < 10; i++ {
		fx.a.Transmit(frame(128, i))
	}
	fx.e.RunUntil(10 * sim.Millisecond)
	if count != 5 {
		t.Fatalf("delivered %d, want 5", count)
	}
	if fx.a.Hose().FramesDropped != 5 {
		t.Fatalf("dropped %d", fx.a.Hose().FramesDropped)
	}
}

func TestSkbDoubleFreePanics(t *testing.T) {
	fx := newPair(t)
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		skb.Free()
		defer func() {
			if recover() == nil {
				t.Error("no panic on double free")
			}
		}()
		skb.Free()
	})
	fx.a.Transmit(frame(64, nil))
	fx.e.RunUntil(sim.Millisecond)
}

func TestSkbLiveAccounting(t *testing.T) {
	fx := newPair(t)
	var held []*Skb
	fx.b.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *Skb) {
		held = append(held, skb) // protocol keeps skbuffs (pending copy)
	})
	for i := 0; i < 5; i++ {
		fx.a.Transmit(frame(64, i))
	}
	fx.e.RunUntil(sim.Millisecond)
	if fx.b.SkbsLive() != 5 {
		t.Fatalf("live = %d, want 5", fx.b.SkbsLive())
	}
	for _, s := range held {
		s.Free()
	}
	if fx.b.SkbsLive() != 0 {
		t.Fatalf("live = %d after frees", fx.b.SkbsLive())
	}
}

func TestSwitchForwarding(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	defer e.Close()
	mk := func(name string) *NIC {
		return New(e, p, cpu.NewSystem(e, p), hostmem.New(p), name)
	}
	a, b, c := mk("a"), mk("b"), mk("c")
	sw := wire.NewSwitch(e, p)
	a.SetHose(sw.Attach(a))
	b.SetHose(sw.Attach(b))
	c.SetHose(sw.Attach(c))
	var gotB, gotC int
	b.SetFirmware(func(f *wire.Frame) { gotB++ })
	c.SetFirmware(func(f *wire.Frame) { gotC++ })
	fa := frame(100, nil)
	fa.DstAddr = "b"
	a.Transmit(fa)
	fc := frame(100, nil)
	fc.DstAddr = "c"
	a.Transmit(fc)
	unknown := frame(100, nil)
	unknown.DstAddr = "nope"
	a.Transmit(unknown)
	e.RunUntil(sim.Millisecond)
	if gotB != 1 || gotC != 1 {
		t.Fatalf("gotB=%d gotC=%d", gotB, gotC)
	}
	if sw.FramesUnknown != 1 {
		t.Fatalf("unknown=%d", sw.FramesUnknown)
	}
}
