package proto

import "omxsim/sim"

// Reliability-window arithmetic shared by the Open-MX driver
// (internal/core) and the native MX firmware (internal/mxoe). The
// two stacks interoperate over one wire, so sequence comparison,
// wraparound, the reserved "no ack" sentinel 0, the retransmission
// backoff schedule, and the rendezvous dedup window must behave
// identically on every peer — there is exactly one implementation of
// each.

// SeqAfter reports a > b in 32-bit serial arithmetic (RFC 1982
// style), so comparisons stay correct across sequence wraparound.
func SeqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// NextSeq advances a sender's per-channel sequence counter in place
// and returns the issued value, skipping 0 — the wire's "no ack yet"
// sentinel — when the counter wraps.
func NextSeq(s *uint32) uint32 {
	*s++
	if *s == 0 {
		*s = 1
	}
	return *s
}

// Window is a receive-side cumulative completion window: the edge
// (every sequence serially at or before it is fully received) plus
// out-of-order completions ahead of it. The zero value is not usable;
// call NewWindow.
type Window struct {
	edge      uint32
	completed map[uint32]bool
}

// NewWindow returns an empty window whose edge sits just before the
// first sequence NextSeq will issue from a zero counter.
func NewWindow() Window { return NewWindowAt(0) }

// NewWindowAt returns a window with the given initial edge (tests
// start near the wraparound; channels start at 0).
func NewWindowAt(edge uint32) Window {
	return Window{edge: edge, completed: make(map[uint32]bool)}
}

// Edge reports the cumulative completion edge — the value a receiver
// acks.
func (w *Window) Edge() uint32 { return w.edge }

// IsDup reports whether seq was already fully received: covered by
// the cumulative edge or individually recorded ahead of it.
// Retransmissions of such sequences carry no new data and must only
// refresh the ack.
func (w *Window) IsDup(seq uint32) bool {
	return !SeqAfter(seq, w.edge) || w.completed[seq]
}

// MarkComplete records seq as fully received and advances the edge
// over any contiguous run it completes, skipping the sentinel 0 on
// wraparound (mirroring NextSeq).
func (w *Window) MarkComplete(seq uint32) {
	w.completed[seq] = true
	for {
		next := w.edge + 1
		if next == 0 {
			next = 1
		}
		if !w.completed[next] {
			return
		}
		w.edge = next
		delete(w.completed, next)
	}
}

// Pending reports completions recorded ahead of the edge (holes keep
// it nonzero; a drained channel returns 0).
func (w *Window) Pending() int { return len(w.completed) }

// Backoff returns the retransmission timeout after the given number
// of consecutive unanswered attempts: base scaled by mult per
// attempt, capped at max. Attempt counters reset on any acknowledged
// progress, so a transient outage never leaves a channel
// permanently slow.
func Backoff(base, max sim.Duration, mult float64, attempts int) sim.Duration {
	d := base
	for i := 0; i < attempts; i++ {
		d = sim.Duration(float64(d) * mult)
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// TrimAcked splits a sender's in-order unacked list at a cumulative
// ack: done holds the items ackSeq covers (serial arithmetic), keep
// the rest, both preserving order.
func TrimAcked[T any](unacked []T, seq func(T) uint32, ackSeq uint32) (done, keep []T) {
	for _, u := range unacked {
		if !SeqAfter(seq(u), ackSeq) {
			done = append(done, u)
		} else {
			keep = append(keep, u)
		}
	}
	return done, keep
}

// ClaimBefore orders in-progress assembly claim candidates
// deterministically — by source address, then sequence in serial
// order — so which partial message a wildcard receive claims never
// depends on Go map iteration order.
func ClaimBefore(aSrc Addr, aSeq uint32, bSrc Addr, bSeq uint32) bool {
	if aSrc.Host != bSrc.Host {
		return aSrc.Host < bSrc.Host
	}
	if aSrc.EP != bSrc.EP {
		return aSrc.EP < bSrc.EP
	}
	return SeqAfter(bSeq, aSeq)
}

// RndvDedupWindow bounds remembered completed rendezvous per stack
// (for re-acking lost final acks). A sender still retransmitting a
// request this many transfers later has long hit its backoff cap;
// real stacks bound this window too.
const RndvDedupWindow = 4096

// EvictOldest appends key to a bounded dedup FIFO and, past limit,
// deletes the oldest key from seen. Returns the updated FIFO.
func EvictOldest[K comparable, V any](seen map[K]V, fifo []K, key K, limit int) []K {
	fifo = append(fifo, key)
	if len(fifo) > limit {
		delete(seen, fifo[0])
		fifo = fifo[1:]
	}
	return fifo
}
