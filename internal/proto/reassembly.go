package proto

import "fmt"

// Hole-aware fragment reassembly, shared by both stacks.
//
// With traffic striped across multiple NICs, fragments of one message
// arrive arbitrarily interleaved: lanes queue independently, one lane
// may be impaired while another is clean, and retransmissions overtake
// fresh data. Reassembly therefore cannot assume contiguous arrival
// anywhere — the bitmap below is the single bookkeeping primitive both
// stacks (eager assembly, pull blocks) use, and CopyPlan turns an
// arbitrary arrival bitmap into the exact set of copies needed to move
// what arrived, holes and all. FuzzStripeReassembly drives these
// against a shadow model over adversarial cross-lane interleavings.

// Reassembly tracks which fragments of one message (or one pull
// block) have been accepted. Fragment identifiers are 0-based and
// bounded by 64 (the wire NeedMask width).
type Reassembly struct {
	// Got is the accepted-fragment bitmap (bit i = fragment i).
	Got uint64
	// Arrived counts accepted fragments.
	Arrived int
	// Frags is the total fragment count.
	Frags int
}

// NewReassembly starts tracking a message of frags fragments.
func NewReassembly(frags int) Reassembly {
	if frags < 1 || frags > 64 {
		panic(fmt.Sprintf("proto: fragment count %d out of range 1..64", frags))
	}
	return Reassembly{Frags: frags}
}

// Mark accepts fragment i and reports whether it was fresh (false
// means a duplicate, which must not be double-counted or re-copied).
func (r *Reassembly) Mark(i int) bool {
	bit := uint64(1) << uint(i)
	if r.Got&bit != 0 {
		return false
	}
	r.Got |= bit
	r.Arrived++
	return true
}

// Done reports whether every fragment arrived.
func (r *Reassembly) Done() bool { return r.Arrived == r.Frags }

// FullMask is the bitmap of a complete message.
func (r *Reassembly) FullMask() uint64 { return (uint64(1) << uint(r.Frags)) - 1 }

// Missing is the bitmap of fragments still outstanding — the NeedMask
// of a retransmission request.
func (r *Reassembly) Missing() uint64 { return ^r.Got & r.FullMask() }

// Run is one contiguous copy of a reassembly plan: N bytes at message
// offset Off.
type Run struct{ Off, N int }

// CopyPlan computes the copies that move the arrived fragments of a
// partially assembled message into its final destination: the claim
// path, where a posted receive adopts an in-progress unexpected
// assembly. got/arrived describe the arrival bitmap, fragSize the
// per-fragment payload, and limit the destination capacity (truncated
// receives copy nothing beyond it).
//
// With mergePrefix, a hole-free prefix (the loss-free common case)
// collapses into one run — the single memcpy the Open-MX library
// performs. Otherwise, and always beyond the first hole, each arrived
// fragment is its own run at its own offset: a prefix copy would
// silently drop data that arrived beyond a hole and will never be
// retransmitted.
func CopyPlan(got uint64, arrived, fragSize, limit int, mergePrefix bool) []Run {
	if mergePrefix && got == (uint64(1)<<uint(arrived))-1 {
		n := arrived * fragSize
		if n > limit {
			n = limit
		}
		if n <= 0 {
			return nil
		}
		return []Run{{Off: 0, N: n}}
	}
	var plan []Run
	for f := 0; got>>uint(f) != 0; f++ {
		if got&(uint64(1)<<uint(f)) == 0 {
			continue
		}
		off := f * fragSize
		n := fragSize
		if off+n > limit {
			n = limit - off
		}
		if n <= 0 {
			continue
		}
		plan = append(plan, Run{Off: off, N: n})
	}
	return plan
}
