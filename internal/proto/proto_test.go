package proto

import (
	"testing"
	"testing/quick"
)

func TestSizeClassConstants(t *testing.T) {
	// The MX wire geometry the whole stack is built around.
	if TinyMax != 32 || SmallMax != 128 || MediumFragSize != 4096 || LargeFragSize != 8192 {
		t.Fatal("size classes drifted from the MX wire format")
	}
}

func TestFragsOf(t *testing.T) {
	cases := map[int]int{
		0:     1,
		1:     1,
		8192:  1,
		8193:  2,
		65536: 8,
		65537: 9,
	}
	for n, want := range cases {
		if got := FragsOf(n); got != want {
			t.Fatalf("FragsOf(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMediumFragsOf(t *testing.T) {
	cases := map[int]int{
		0:     1,
		128:   1, // small: single frame regardless
		129:   1,
		4096:  1,
		4097:  2,
		32768: 8,
	}
	for n, want := range cases {
		if got := MediumFragsOf(n); got != want {
			t.Fatalf("MediumFragsOf(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: fragment counts always cover the message with no excess
// fragment.
func TestPropertyFragCoverage(t *testing.T) {
	f := func(n uint32) bool {
		size := int(n % (64 << 20))
		frags := FragsOf(size)
		if size == 0 {
			return frags == 1
		}
		return (frags-1)*LargeFragSize < size && size <= frags*LargeFragSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrComparable(t *testing.T) {
	a := Addr{Host: "n0", EP: 1}
	b := Addr{Host: "n0", EP: 1}
	if a != b {
		t.Fatal("identical addrs differ")
	}
	m := map[Addr]int{a: 7}
	if m[b] != 7 {
		t.Fatal("addr not usable as map key")
	}
}
