package proto

import (
	"testing"

	"omxsim/sim"
)

// ---------------------------------------------------------------------
// RTT estimator properties.
// ---------------------------------------------------------------------

func TestRTTEstimatorFirstSample(t *testing.T) {
	var e RTTEstimator
	if e.HasSample() {
		t.Fatal("zero estimator reports a sample")
	}
	if got := e.RTO(sim.Millisecond, 50*sim.Millisecond); got != 50*sim.Millisecond {
		t.Fatalf("RTO before first sample = %v, want the max (static default)", got)
	}
	e.Observe(400 * sim.Microsecond)
	if e.SRTT() != 400*sim.Microsecond {
		t.Fatalf("SRTT after first sample = %v, want 400µs", e.SRTT())
	}
	if e.RTTVar() != 200*sim.Microsecond {
		t.Fatalf("RTTVAR after first sample = %v, want 200µs", e.RTTVar())
	}
}

func TestRTTEstimatorConvergesOnSteadyLink(t *testing.T) {
	var e RTTEstimator
	const rtt = 500 * sim.Microsecond
	for i := 0; i < 64; i++ {
		e.Observe(rtt)
	}
	if e.SRTT() < rtt-sim.Microsecond || e.SRTT() > rtt+sim.Microsecond {
		t.Fatalf("SRTT = %v after 64 steady samples, want ~%v", e.SRTT(), rtt)
	}
	// Variance decays toward zero; RTO settles near 2·srtt, well under
	// the 50 ms static default.
	rto := e.RTO(sim.Millisecond, 50*sim.Millisecond)
	if rto >= 5*sim.Millisecond {
		t.Fatalf("RTO = %v on a steady 500µs link, want well under 5ms", rto)
	}
	if rto < sim.Millisecond {
		t.Fatalf("RTO = %v, below the floor", rto)
	}
}

func TestRTTEstimatorRTOClamps(t *testing.T) {
	var e RTTEstimator
	e.Observe(10 * sim.Second) // absurd sample
	if got := e.RTO(sim.Millisecond, 50*sim.Millisecond); got != 50*sim.Millisecond {
		t.Fatalf("RTO = %v, want clamped to max", got)
	}
	var f RTTEstimator
	f.Observe(1) // 1 ns
	if got := f.RTO(sim.Millisecond, 50*sim.Millisecond); got != sim.Millisecond {
		t.Fatalf("RTO = %v, want clamped to min", got)
	}
}

func TestRTTEstimatorNegativeSampleIgnored(t *testing.T) {
	var e RTTEstimator
	e.Observe(-5)
	if e.HasSample() {
		t.Fatal("negative sample was recorded")
	}
}

// ---------------------------------------------------------------------
// AIMD window properties.
// ---------------------------------------------------------------------

func TestAIMDWindowConvergesOnCleanLink(t *testing.T) {
	w := NewAIMDWindow(2, 16)
	const rtt = 600 * sim.Microsecond
	for i := 0; i < 400; i++ {
		w.OnSample(rtt)
	}
	if w.Window() != 16 {
		t.Fatalf("window = %d after 400 flat samples, want max 16", w.Window())
	}
}

func TestAIMDWindowLossEpochHalvesOnce(t *testing.T) {
	w := NewAIMDWindow(2, 16)
	for i := 0; i < 400; i++ {
		w.OnSample(500 * sim.Microsecond)
	}
	w.OnLoss()
	if w.Window() != 8 {
		t.Fatalf("window after loss = %d, want 8", w.Window())
	}
	// Same epoch: no further decrease until a clean sample closes it.
	w.OnLoss()
	w.OnLoss()
	if w.Window() != 8 {
		t.Fatalf("window after same-epoch losses = %d, want 8", w.Window())
	}
	w.OnSample(500 * sim.Microsecond) // closes the epoch
	w.OnLoss()
	if w.Window() != 4 {
		t.Fatalf("window after next-epoch loss = %d, want 4", w.Window())
	}
}

func TestAIMDWindowInflationBacksOff(t *testing.T) {
	w := NewAIMDWindow(2, 16)
	for i := 0; i < 400; i++ {
		w.OnSample(500 * sim.Microsecond)
	}
	// >2× the 500µs baseline: congestion.
	w.OnSample(1100 * sim.Microsecond)
	if w.Window() != 8 {
		t.Fatalf("window after inflated sample = %d, want 8", w.Window())
	}
}

func TestAIMDWindowBoundsDegenerate(t *testing.T) {
	w := NewAIMDWindow(0, -3) // clamps to [1, 1]
	w.OnLoss()
	w.OnSample(100)
	if w.Window() != 1 || w.Min() != 1 || w.Max() != 1 {
		t.Fatalf("degenerate bounds: window=%d min=%d max=%d, want all 1", w.Window(), w.Min(), w.Max())
	}
}

// shadowAIMD is an independent reimplementation of the documented
// AIMD contract, kept deliberately naive: the fuzz target cross-checks
// every transition of the real controller against it.
type shadowAIMD struct {
	min, max, win int
	base          sim.Duration
	good          int
	inEpoch       bool
}

func newShadowAIMD(min, max int) *shadowAIMD {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &shadowAIMD{min: min, max: max, win: min}
}

func (s *shadowAIMD) dec() {
	s.good = 0
	if s.inEpoch {
		return
	}
	s.inEpoch = true
	s.win /= 2
	if s.win < s.min {
		s.win = s.min
	}
	s.base = 0 // fresh plateau
}

func (s *shadowAIMD) step(loss bool, rtt sim.Duration) {
	if loss {
		s.dec()
		return
	}
	if rtt < 0 {
		return
	}
	if s.base == 0 {
		s.base = rtt // plateau calibration: always flat
	} else if rtt*InflationDen > s.base*InflationNum {
		s.dec()
		return
	} else if rtt < s.base {
		s.base = rtt
	}
	s.inEpoch = false
	s.good++
	if s.good >= s.win && s.win < s.max {
		s.win++
		s.good = 0
		s.base = 0 // fresh plateau
	}
}

// traceStep decodes one fuzz-trace byte: bit 7 selects loss, the rest
// picks a round trip in [100µs, 12.8ms).
func traceStep(b byte) (loss bool, rtt sim.Duration) {
	if b&0x80 != 0 {
		return true, 0
	}
	return false, sim.Duration(int64(b&0x7f)+1) * 100 * sim.Microsecond
}

// FuzzAdaptiveWindow drives the AIMD controller with arbitrary
// ack/loss/RTT traces and asserts, at every step, that the window
// never leaves its bounds, that the first loss of every epoch halves
// it (multiplicative decrease), and that the controller agrees with
// the shadow model transition for transition.
func FuzzAdaptiveWindow(f *testing.F) {
	f.Add([]byte{}, uint8(2), uint8(16))
	f.Add([]byte{0x01, 0x01, 0x01, 0x01, 0x80, 0x01}, uint8(2), uint8(8))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80}, uint8(2), uint8(16))
	f.Add([]byte{0x01, 0x7f, 0x01, 0x7f}, uint8(1), uint8(4))
	clean := make([]byte, 256)
	for i := range clean {
		clean[i] = 0x05
	}
	f.Add(clean, uint8(2), uint8(16))
	f.Fuzz(func(t *testing.T, trace []byte, min8, max8 uint8) {
		min, max := int(min8), int(max8)
		w := NewAIMDWindow(min, max)
		s := newShadowAIMD(min, max)
		for i, b := range trace {
			loss, rtt := traceStep(b)
			before := w.Window()
			epochOpen := w.lossEpoch
			if loss {
				w.OnLoss()
			} else {
				w.OnSample(rtt)
			}
			s.step(loss, rtt)
			if w.Window() < w.Min() || w.Window() > w.Max() {
				t.Fatalf("step %d: window %d outside [%d, %d]", i, w.Window(), w.Min(), w.Max())
			}
			if loss && !epochOpen {
				want := before / 2
				if want < w.Min() {
					want = w.Min()
				}
				if w.Window() != want {
					t.Fatalf("step %d: loss epoch decreased %d -> %d, want %d", i, before, w.Window(), want)
				}
			}
			if w.Window() != s.win {
				t.Fatalf("step %d: controller window %d != shadow %d", i, w.Window(), s.win)
			}
			if w.Baseline() != s.base {
				t.Fatalf("step %d: controller baseline %v != shadow %v", i, w.Baseline(), s.base)
			}
		}
		// Convergence on clean links: after the trace, a long run of
		// flat samples must drive the window to its upper bound.
		for i := 0; i < 2*(max+2)*(max+2); i++ {
			w.OnSample(100 * sim.Microsecond)
		}
		if w.Window() != w.Max() {
			t.Fatalf("window %d after clean flood, want max %d", w.Window(), w.Max())
		}
	})
}

// TestAdaptiveWindowDeterminism replays one pseudo-random trace twice
// and requires bit-identical window trajectories — the controller has
// no hidden nondeterminism.
func TestAdaptiveWindowDeterminism(t *testing.T) {
	run := func() []int {
		w := NewAIMDWindow(2, 16)
		var out []int
		state := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 4096; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			b := byte(state >> 56)
			if loss, rtt := traceStep(b); loss {
				w.OnLoss()
			} else {
				w.OnSample(rtt)
			}
			out = append(out, w.Window())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at step %d: %d != %d", i, a[i], b[i])
		}
	}
}

// TestRTTEstimatorDeterminism does the same for the estimator.
func TestRTTEstimatorDeterminism(t *testing.T) {
	run := func() []sim.Duration {
		var e RTTEstimator
		var out []sim.Duration
		state := uint64(12345)
		for i := 0; i < 4096; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			e.Observe(sim.Duration(state%2_000_000) + 1)
			out = append(out, e.RTO(sim.Millisecond, 50*sim.Millisecond))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RTO trajectories diverge at step %d: %v != %v", i, a[i], b[i])
		}
	}
}
