// Package proto defines the MXoE wire message formats shared by the
// Open-MX stack (internal/core) and the native MX stack
// (internal/mxoe). Both speak the same protocol — wire compatibility
// between Open-MX on commodity NICs and Myricom's native MXoE firmware
// is one of Open-MX's core features, and the interop example depends
// on these being common.
//
// Header sizes are abstracted: every frame pays
// platform.OMXHeaderBytes of wire time, and the decoded fields ride in
// wire.Frame.Msg as one of the structs below.
package proto

// Addr identifies an endpoint: a NIC address (host name) plus an
// endpoint index on that host.
type Addr struct {
	Host string
	EP   int
}

// Message size class boundaries (bytes), matching MX semantics.
const (
	// TinyMax: payload rides inline in the completion event.
	TinyMax = 32
	// SmallMax: single frame, copied through the receive ring.
	SmallMax = 128
	// MediumFragSize: eager fragment payload (one page).
	MediumFragSize = 4096
	// LargeFragSize: rendezvous pull fragment payload (two pages —
	// jumbo frames on an MTU-9000 network).
	LargeFragSize = 8192
)

// Eager carries a tiny/small message or one fragment of a medium
// message. Fragments of one message share Seq; FragID identifies the
// piece. Reliability: the receiver acknowledges cumulative sequence
// numbers per (source endpoint → destination endpoint) channel, either
// piggybacked (AckSeq on any reverse frame) or via explicit Ack.
type Eager struct {
	Src, Dst  Addr
	Match     uint64
	Seq       uint32 // per-channel message sequence
	MsgLen    int
	FragID    int
	FragCount int
	Offset    int // payload offset of this fragment
	AckSeq    uint32
}

// Ack explicitly acknowledges all eager messages with Seq ≤ AckSeq on
// the channel Src→Dst (Src is the original data sender).
type Ack struct {
	Src, Dst Addr
	AckSeq   uint32
}

// RndvRequest initiates a large-message rendezvous (RTS). The sender
// has pinned its buffer; SenderHandle names the send on the sender so
// pulls and the final ack can refer to it.
type RndvRequest struct {
	Src, Dst     Addr
	Match        uint64
	Seq          uint32
	MsgLen       int
	SenderHandle int
	AckSeq       uint32
}

// Pull asks the sender to transmit a block of large-message fragments.
// The receiver drives the transfer (MX pull model): two pipelined
// blocks of PullBlockFrags fragments are outstanding in the common
// case. NeedMask selects which fragments of the block are (re)needed —
// all of them initially, a subset on retransmission.
type Pull struct {
	Src, Dst     Addr // Src = receiver (requester), Dst = data sender
	SenderHandle int
	RecvHandle   int
	Block        int
	FirstFrag    int // global fragment index of the block's first frag
	FragCount    int
	NeedMask     uint64
}

// LargeFrag is one pulled data fragment.
type LargeFrag struct {
	Src, Dst   Addr // Src = data sender
	RecvHandle int
	Block      int
	FragID     int // global fragment index within the message
	Offset     int
	MsgLen     int
}

// RndvAck tells the data sender the whole message arrived and its
// buffer may be unpinned; it completes the send.
type RndvAck struct {
	Src, Dst     Addr
	SenderHandle int
}

// FragsOf reports how many fragments a large message of n bytes needs.
func FragsOf(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + LargeFragSize - 1) / LargeFragSize
}

// MediumFragsOf reports how many fragments an eager message of n bytes
// needs (at least one, even for zero-byte messages).
func MediumFragsOf(n int) int {
	if n <= SmallMax {
		return 1
	}
	return (n + MediumFragSize - 1) / MediumFragSize
}
