package proto

// NIC-offloaded collective wire messages. A collective group is a
// fixed member list every participant registers locally (the group ID
// is a hash of the list, so all NICs derive it without wire traffic);
// each posted collective consumes the group's next sequence number
// (MPI requires all ranks to invoke collectives in the same order, so
// the counters agree). The firmware then runs the operation as a tree
// of CollData hops — fan-in contributions toward the root, combined
// segment by segment, and a fan-out of the result — with per-hop acks
// and retransmission, all below the host's sight. Quadrics and
// Myrinet NICs ran barriers and broadcasts this way; the model
// follows that protocol family.

// CollOp identifies a firmware collective operation.
type CollOp uint8

const (
	CollBarrier CollOp = iota + 1
	CollBcast
	CollAllreduce
	CollScan
)

func (op CollOp) String() string {
	switch op {
	case CollBarrier:
		return "barrier"
	case CollBcast:
		return "bcast"
	case CollAllreduce:
		return "allreduce"
	case CollScan:
		return "scan"
	}
	return "?"
}

// CollMaxFrags bounds a collective payload: fragment bitmaps are one
// 64-bit word, so firmware collectives carry at most 64 eager-size
// fragments (256 kiB). Larger payloads stay on the host algorithms.
const CollMaxFrags = 64

// CollData is one hop of a firmware collective: Down=false carries a
// child's contribution up the tree (barrier join, allreduce partial);
// Down=true carries the root's payload down (barrier release, bcast
// data, allreduce result) or a scan prefix along the rank chain.
// SrcRank is the sender's index in the group's member list — the
// receiver's tree state is keyed by it. Payloads fragment at
// MediumFragSize with FragID/FragCount/Offset exactly like Eager.
type CollData struct {
	Src, Dst  Addr
	Group     uint64
	Seq       uint32
	Op        CollOp
	Down      bool
	SrcRank   int
	Root      int
	MsgLen    int
	FragID    int
	FragCount int
	Offset    int
}

// CollAck acknowledges one CollData fragment hop-by-hop (Src is the
// acking NIC). The sending firmware retransmits unacked fragments
// with backoff; receivers deduplicate via per-call bitmaps.
type CollAck struct {
	Src, Dst Addr
	Group    uint64
	Seq      uint32
	Down     bool
	SrcRank  int
	FragID   int
}

// CollFragsOf reports how many fragments an n-byte collective payload
// needs (at least one: barriers and zero-byte payloads still take one
// control frame per hop).
func CollFragsOf(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + MediumFragSize - 1) / MediumFragSize
}
