package proto

import "omxsim/sim"

// Adaptive-transport state machines shared by the Open-MX driver
// (internal/core) and the native MX firmware (internal/mxoe): a
// Jacobson/Karels RTT estimator deriving retransmission timeouts from
// measured per-peer round trips, and an AIMD controller sizing the
// pull window from per-block round trips. Both are pure state — no
// simulated time, no I/O, no randomness — so two identical input
// traces produce identical trajectories on any peer, and the fuzz
// target can drive them against a shadow model.

// RTTEstimator tracks the smoothed round-trip time and its variance
// for one peer (RFC 6298 / Jacobson-Karels, integer ns arithmetic).
// The zero value is ready to use and reports no samples.
type RTTEstimator struct {
	srtt   sim.Duration
	rttvar sim.Duration
	n      int64 // samples observed
}

// Observe feeds one round-trip sample. Callers apply Karn's rule
// themselves (never sample a retransmitted exchange).
func (e *RTTEstimator) Observe(rtt sim.Duration) {
	if rtt < 0 {
		return
	}
	if e.n == 0 {
		e.srtt = rtt
		e.rttvar = rtt / 2
	} else {
		// rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
		dev := e.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		e.rttvar = (3*e.rttvar + dev) / 4
		// srtt = 7/8 srtt + 1/8 rtt
		e.srtt = (7*e.srtt + rtt) / 8
	}
	e.n++
}

// HasSample reports whether any round trip has been observed; before
// the first sample RTO falls back to the caller's configured default.
func (e *RTTEstimator) HasSample() bool { return e.n > 0 }

// Samples returns the number of round trips observed.
func (e *RTTEstimator) Samples() int64 { return e.n }

// SRTT returns the smoothed round-trip time (0 before any sample).
func (e *RTTEstimator) SRTT() sim.Duration { return e.srtt }

// RTTVar returns the smoothed round-trip variance.
func (e *RTTEstimator) RTTVar() sim.Duration { return e.rttvar }

// RTO derives the retransmission timeout — srtt + 4·rttvar, with a
// 2× safety margin for self-induced queueing on a loaded pull window
// — clamped to [min, max]. Before the first sample it returns max
// (the configured static default): a fresh channel must not time out
// faster than an untuned one.
func (e *RTTEstimator) RTO(min, max sim.Duration) sim.Duration {
	if e.n == 0 {
		return max
	}
	rto := 2 * (e.srtt + 4*e.rttvar)
	if rto < min {
		rto = min
	}
	if rto > max {
		rto = max
	}
	return rto
}

// AIMDWindow sizes a pull window by additive increase, multiplicative
// decrease. The window grows one block per window's worth of clean
// samples while block round trips stay flat against the current
// plateau's baseline, and halves — once per loss epoch — on a
// retransmission timeout or on round-trip inflation beyond
// InflationNum/InflationDen of that baseline. The window never leaves
// [Min, Max].
//
// The baseline is scoped to the current window size: every window
// change (either direction) starts a fresh plateau whose first sample
// recalibrates it. A wider window queues more blocks behind each
// other, so round trips legitimately lengthen as the window grows —
// comparing against a global minimum would read that self-induced
// queueing as congestion and pin the window at Min. Within one
// plateau the queueing contribution is fixed, so a sample beyond
// InflationNum/InflationDen of the plateau's best really is the
// network pushing back.
type AIMDWindow struct {
	min, max int
	win      int

	base      sim.Duration // best block round trip at this window size
	goodAcc   int          // clean samples since the last window change
	lossEpoch bool         // a decrease already happened this epoch
}

// Inflation threshold: a block round trip beyond base·Num/Den of the
// plateau baseline is congestion. Growing the window by one block
// lengthens round trips by at most (win+1)/win ≤ 1.5×, so the 2×
// threshold is never tripped by the controller's own probing.
const (
	InflationNum = 2
	InflationDen = 1
)

// NewAIMDWindow returns a window bounded by [min, max], starting at
// min (slow start is additive here: the window is small and blocks
// are large). max below min is clamped to min.
func NewAIMDWindow(min, max int) *AIMDWindow {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &AIMDWindow{min: min, max: max, win: min}
}

// Window returns the current window in blocks, always within
// [Min, Max].
func (w *AIMDWindow) Window() int { return w.win }

// Min and Max report the configured bounds.
func (w *AIMDWindow) Min() int { return w.min }
func (w *AIMDWindow) Max() int { return w.max }

// Baseline returns the best block round trip observed at the current
// window size (0 if the plateau has no sample yet).
func (w *AIMDWindow) Baseline() sim.Duration { return w.base }

// OnSample feeds one completed block's round trip. A flat sample ends
// any loss epoch and counts toward additive increase (one block per
// window's worth of flat samples); an inflated sample is congestion
// and triggers the epoch's multiplicative decrease. The first sample
// of a plateau calibrates its baseline and always counts as flat.
func (w *AIMDWindow) OnSample(rtt sim.Duration) {
	if rtt < 0 {
		return
	}
	if w.base == 0 {
		w.base = rtt
	} else if rtt*InflationDen > w.base*InflationNum {
		w.decrease()
		return
	} else if rtt < w.base {
		w.base = rtt
	}
	w.lossEpoch = false
	w.goodAcc++
	if w.goodAcc >= w.win && w.win < w.max {
		w.win++
		w.goodAcc = 0
		w.base = 0 // new plateau: recalibrate on the next sample
	}
}

// OnLoss reports a retransmission timeout. The first loss of an epoch
// halves the window; further losses before the next clean sample are
// the same epoch and change nothing.
func (w *AIMDWindow) OnLoss() { w.decrease() }

// decrease performs the epoch's multiplicative decrease (half, floor
// Min) and opens a loss epoch that the next clean sample closes.
func (w *AIMDWindow) decrease() {
	w.goodAcc = 0
	if w.lossEpoch {
		return
	}
	w.lossEpoch = true
	w.win /= 2
	if w.win < w.min {
		w.win = w.min
	}
	w.base = 0 // new plateau: recalibrate on the next sample
}
