package hostmem

import (
	"testing"

	"omxsim/platform"
)

// Table-driven churn over caches of various bounds: the LRU bound is
// honoured, hits+misses sum to the posts, and the pin cost (a Pin
// call plus reported pinPages) is charged exactly once per residency
// of a region.
func TestRegCacheChurn(t *testing.T) {
	cases := []struct {
		name    string
		max     int
		bufs    int   // distinct regions
		posts   []int // sequence of region indices to Acquire
		hits    int64
		misses  int64
		evicted int64
	}{
		{
			name: "unbounded-repeat", max: 0, bufs: 2,
			posts: []int{0, 1, 0, 1, 0, 1},
			hits:  4, misses: 2, evicted: 0,
		},
		{
			name: "bound-fits", max: 2, bufs: 2,
			posts: []int{0, 1, 0, 1},
			hits:  2, misses: 2, evicted: 0,
		},
		{
			// Round-robin over 3 regions with room for 2: every post
			// misses (the LRU victim is always the one about to be
			// reused) and every miss past the second evicts.
			name: "thrash", max: 2, bufs: 3,
			posts: []int{0, 1, 2, 0, 1, 2},
			hits:  0, misses: 6, evicted: 4,
		},
		{
			// LRU order: re-touching 0 protects it; 1 is the victim.
			name: "lru-order", max: 2, bufs: 3,
			posts: []int{0, 1, 0, 2, 0},
			hits:  2, misses: 3, evicted: 1,
		},
		{
			name: "bound-one", max: 1, bufs: 2,
			posts: []int{0, 0, 1, 1, 0},
			hits:  2, misses: 3, evicted: 2,
		},
	}
	p := platform.Clovertown()
	const regBytes = 3 * 4096 // 3 pages each
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(p)
			rc := NewRegCache(tc.max)
			bufs := make([]*Buffer, tc.bufs)
			for i := range bufs {
				bufs[i] = m.Alloc(regBytes)
			}
			var pinned, unpinned int64
			for _, i := range tc.posts {
				pp, up := rc.Acquire(bufs[i], regBytes)
				pinned += pp
				unpinned += up
			}
			st := rc.Stats()
			if st.Hits != tc.hits || st.Misses != tc.misses || st.Evictions != tc.evicted {
				t.Fatalf("hits/misses/evictions = %d/%d/%d, want %d/%d/%d",
					st.Hits, st.Misses, st.Evictions, tc.hits, tc.misses, tc.evicted)
			}
			if st.Hits+st.Misses != int64(len(tc.posts)) {
				t.Fatalf("hits+misses = %d, want the %d posts", st.Hits+st.Misses, len(tc.posts))
			}
			// Pin cost charged exactly once per residency: pages flow
			// in on misses and out on evictions, never twice.
			if pinned != st.Misses*3 || unpinned != st.Evictions*3 {
				t.Fatalf("pinned/unpinned pages = %d/%d, want %d/%d",
					pinned, unpinned, st.Misses*3, st.Evictions*3)
			}
			if tc.max > 0 && st.Resident > tc.max {
				t.Fatalf("resident = %d exceeds bound %d", st.Resident, tc.max)
			}
			if st.PinnedPages != int64(st.Resident)*3 {
				t.Fatalf("PinnedPages = %d, want %d", st.PinnedPages, int64(st.Resident)*3)
			}
			// The hostmem pin refcount agrees: exactly the resident
			// regions hold a reference.
			livePins := 0
			for _, b := range bufs {
				if b.Pinned() {
					livePins++
					if !rc.Resident(b) {
						t.Fatal("pinned buffer not resident in the cache")
					}
				} else if rc.Resident(b) {
					t.Fatal("resident buffer lost its pin")
				}
			}
			if livePins != st.Resident {
				t.Fatalf("live pins = %d, resident = %d", livePins, st.Resident)
			}
		})
	}
}

// Acquire of a sub-page region pins one page; the pages recorded at
// miss time are the pages released at eviction, even if a later
// Acquire of the same buffer uses a different length.
func TestRegCachePageAccounting(t *testing.T) {
	p := platform.Clovertown()
	m := New(p)
	rc := NewRegCache(1)
	a, b := m.Alloc(64*1024), m.Alloc(64*1024)
	if pp, _ := rc.Acquire(a, 100); pp != 1 {
		t.Fatalf("sub-page pin = %d pages, want 1", pp)
	}
	// Hit with a larger span: no re-pin (the model registers whole
	// regions, as the deferred-deregistration scheme does).
	if pp, _ := rc.Acquire(a, 64*1024); pp != 0 {
		t.Fatalf("hit repinned %d pages", pp)
	}
	// Evicting a releases the 1 page recorded at its miss.
	if _, up := rc.Acquire(b, 8192); up != 1 {
		t.Fatalf("eviction released %d pages, want 1", up)
	}
	if st := rc.Stats(); st.PinnedPages != 2 || st.Resident != 1 {
		t.Fatalf("PinnedPages/Resident = %d/%d, want 2/1", st.PinnedPages, st.Resident)
	}
}
