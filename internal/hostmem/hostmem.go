// Package hostmem models host memory: buffers that carry real payload
// bytes, page pinning state, and a cache-warmth tracker.
//
// Warmth is tracked with a streaming-LRU approximation: every L2 cache
// domain (and every core's L1) has a monotonically increasing byte
// clock advanced by each access. A buffer is warm in a cache if the
// traffic since its last touch, plus its own footprint, still fits in
// that cache. This one-line model reproduces the cache falloffs the
// paper observes (e.g. the shared-memory ping-pong of Fig. 10 drops off
// beyond 1 MiB messages: four buffers of that size stream through one
// 4 MiB L2).
package hostmem

import (
	"fmt"

	"omxsim/platform"
)

// Memory is the physical memory and cache state of one host.
type Memory struct {
	P *platform.Platform

	nextAddr  int64
	l2Clocks  []int64 // per L2 domain
	l1Clocks  []int64 // per core
	allocated int64
}

// New returns the memory system for a host described by p.
func New(p *platform.Platform) *Memory {
	return &Memory{
		P:        p,
		nextAddr: 0x1000,
		l2Clocks: make([]int64, p.L2Domains()),
		l1Clocks: make([]int64, p.NumCores()),
	}
}

// Allocated reports total bytes allocated so far.
func (m *Memory) Allocated() int64 { return m.allocated }

// Buffer is a contiguous, addressable region of host memory holding
// real bytes. Buffers remember which core last touched them (for
// warmth and cross-socket decisions), how much of them the current
// warm episode actually covers, whether a device DMA produced their
// current contents (and how much of that deposit has been snooped
// back), any pending DCA push, their NUMA home socket, and their pin
// refcount.
type Buffer struct {
	Mem  *Memory
	Addr int64
	Data []byte

	pinRef int
	home   int // NUMA home socket of the backing pages

	lastCore    int   // -1 until first touch
	l1TouchMark int64 // core L1 clock at last touch
	l2TouchMark int64 // domain L2 clock at last touch
	// covL2 bounds, per L2 domain, how many bytes of the buffer that
	// domain's touches have covered; covL1 does the same for the last
	// touching core's L1 (reset when a different core takes over). A
	// 4 kiB fragment touch can therefore never make a whole multi-MB
	// buffer copy out warm, while repeated chunked touches accumulate
	// to full coverage.
	covL2 []int
	covL1 int

	dmaCold    bool // device-DMA'd lines not yet snooped remain
	dmaSnooped int  // bytes touched (snooped back) since the DMA write

	// DCA push state: dcaDom < 0 means no deposit is pending.
	dcaDom  int   // L2 domain the last device deposit was pushed into
	dcaLen  int   // bytes actually pushed (bounded by DCALLCBudget)
	dcaMark int64 // target domain's L2 clock at push time
}

// Alloc returns a new zeroed buffer of the given size, homed on the
// chipset's local socket (the default NUMA placement).
func (m *Memory) Alloc(size int) *Buffer {
	return m.AllocOn(size, m.P.DMAHomeSocket)
}

// AllocOn returns a new zeroed buffer of the given size homed on the
// given NUMA node (socket). Device DMA deposits into remote-socket
// buffers pay the platform's remote-DMA penalty.
func (m *Memory) AllocOn(size, socket int) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("hostmem: negative alloc %d", size))
	}
	if socket < 0 || socket >= m.P.Sockets {
		panic(fmt.Sprintf("hostmem: alloc on socket %d of %d", socket, m.P.Sockets))
	}
	b := &Buffer{
		Mem: m, Addr: m.nextAddr, Data: make([]byte, size),
		lastCore: -1, home: socket, dcaDom: -1,
		covL2: make([]int, m.P.L2Domains()),
	}
	m.nextAddr += int64(size) + int64(m.P.PageSize) // pad to keep addresses distinct
	m.allocated += int64(size)
	return b
}

// HomeSocket reports the NUMA node the buffer's pages live on.
func (b *Buffer) HomeSocket() int { return b.home }

// Size reports the buffer length in bytes.
func (b *Buffer) Size() int { return len(b.Data) }

// Pages reports the number of pages the buffer spans (for pin costs).
func (b *Buffer) Pages() int {
	ps := b.Mem.P.PageSize
	return (len(b.Data) + ps - 1) / ps
}

// Pin increments the pin refcount and reports whether this call
// actually pinned the pages (refcount went 0→1), i.e. whether the
// caller must pay the pinning cost.
func (b *Buffer) Pin() bool {
	b.pinRef++
	return b.pinRef == 1
}

// Unpin decrements the pin refcount. It panics on underflow.
func (b *Buffer) Unpin() {
	if b.pinRef == 0 {
		panic("hostmem: unpin of unpinned buffer")
	}
	b.pinRef--
}

// Pinned reports whether the buffer is currently pinned.
func (b *Buffer) Pinned() bool { return b.pinRef > 0 }

// Touch records an access of n bytes by the given core, updating the
// warmth clocks. Use n = the bytes actually read or written: warmth
// coverage extends only over the touched bytes (a domain's touches
// accumulate), and a pending device-DMA deposit is snooped back only
// up to n — a partial read leaves the untouched remainder carrying
// the snoop penalty.
func (b *Buffer) Touch(core int, n int) {
	m := b.Mem
	dom := m.P.L2DomainOf(core)
	m.l2Clocks[dom] += int64(n)
	m.l1Clocks[core] += int64(n)
	span := min(n, len(b.Data))
	b.covL2[dom] = min(len(b.Data), b.covL2[dom]+span)
	if b.lastCore == core {
		b.covL1 = min(len(b.Data), b.covL1+span)
	} else {
		b.covL1 = span
	}
	b.lastCore = core
	b.l2TouchMark = m.l2Clocks[dom]
	b.l1TouchMark = m.l1Clocks[core]
	if b.dmaCold {
		b.dmaSnooped += n
		if b.dmaSnooped >= len(b.Data) {
			b.dmaCold = false
			b.dmaSnooped = 0
		}
	}
	b.dcaDom = -1 // pushed lines, once read, are ordinary warmth
}

// WrittenByDMA marks the buffer's contents as produced by device DMA:
// cold to every cache and carrying the snoop penalty on first read.
func (b *Buffer) WrittenByDMA() {
	b.lastCore = -1
	b.clearCoverage()
	b.dmaCold = true
	b.dmaSnooped = 0
	b.dcaDom = -1
}

// clearCoverage forgets all warm-span coverage (the buffer's cached
// lines were invalidated by a device write).
func (b *Buffer) clearCoverage() {
	for i := range b.covL2 {
		b.covL2[i] = 0
	}
	b.covL1 = 0
}

// WrittenByDCA marks a device deposit of n bytes steered by Direct
// Cache Access toward the given core: up to the platform's LLC budget
// of the deposit is pushed directly into that core's L2 domain
// (displacing other lines there — the push advances the domain's
// traffic clock), and no snoop penalty is owed by a consumer in that
// domain. Callers gate on Platform.HasDCA.
func (b *Buffer) WrittenByDCA(targetCore, n int) {
	m := b.Mem
	dom := m.P.L2DomainOf(targetCore)
	push := min(n, len(b.Data))
	if budget := int(m.P.DCALLCBudget); budget > 0 && push > budget {
		push = budget
	}
	m.l2Clocks[dom] += int64(push)
	b.lastCore = -1
	b.clearCoverage()
	b.dmaCold = false
	b.dmaSnooped = 0
	b.dcaDom = dom
	b.dcaLen = push
	b.dcaMark = m.l2Clocks[dom]
}

// DMACold reports whether any device-DMA'd lines remain unsnooped.
func (b *Buffer) DMACold() bool { return b.dmaCold }

// DMAColdFor reports whether a copy of n bytes out of the buffer
// would still hit unsnooped device-written lines: true while cold
// bytes remain and the copy reaches beyond the bytes already read
// back. A Touch covering only a prefix of a deposit therefore does
// not launder the snoop penalty off the untouched remainder.
func (b *Buffer) DMAColdFor(n int) bool {
	return b.dmaCold && n > b.dmaSnooped
}

// DCADomain reports the L2 domain the last device deposit was pushed
// into by DCA, or -1 when no pushed deposit is pending.
func (b *Buffer) DCADomain() int { return b.dcaDom }

// DCALen reports the bytes of the pending deposit that were actually
// pushed into the target cache (bounded by the platform budget).
func (b *Buffer) DCALen() int {
	if b.dcaDom < 0 {
		return 0
	}
	return b.dcaLen
}

// DCAResident reports whether the pushed lines of a pending DCA
// deposit are still in the L2 domain reachable from the given core:
// the core must share the target domain and the traffic since the
// push, plus the pushed footprint, must still fit the cache.
func (b *Buffer) DCAResident(core int) bool {
	if b.dcaDom < 0 {
		return false
	}
	m := b.Mem
	if m.P.L2DomainOf(core) != b.dcaDom {
		return false
	}
	traffic := m.l2Clocks[b.dcaDom] - b.dcaMark
	return traffic+int64(b.dcaLen) <= m.P.L2Size
}

// DCAWrongSocket reports whether a pending DCA deposit's pushed lines
// sit dirty in a cache on a different socket than the given core —
// the consumer must snoop them out across the FSB, which is worse
// than never having pushed them at all. Evicted deposits (written
// back to memory) are no longer wrong-socket.
func (b *Buffer) DCAWrongSocket(core int) bool {
	if b.dcaDom < 0 {
		return false
	}
	m := b.Mem
	if m.P.SocketOfL2Domain(b.dcaDom) == m.P.SocketOf(core) {
		return false
	}
	traffic := m.l2Clocks[b.dcaDom] - b.dcaMark
	return traffic+int64(b.dcaLen) <= m.P.L2Size
}

// LastCore reports the core that last touched the buffer (-1 if none).
func (b *Buffer) LastCore() int { return b.lastCore }

// WarmLen reports how many bytes of the buffer the last touching
// core's L2 domain has covered; 0 when the buffer was never touched
// (or a device write cleared the coverage).
func (b *Buffer) WarmLen() int {
	if b.lastCore < 0 {
		return 0
	}
	return b.covL2[b.Mem.P.L2DomainOf(b.lastCore)]
}

// WarmL2 reports whether the buffer is still resident in the L2 cache
// reachable from the given core.
func (b *Buffer) WarmL2(core int) bool {
	if b.lastCore < 0 {
		return false
	}
	m := b.Mem
	if !m.P.SameL2(core, b.lastCore) {
		return false
	}
	dom := m.P.L2DomainOf(core)
	traffic := m.l2Clocks[dom] - b.l2TouchMark
	return traffic+int64(len(b.Data)) <= m.P.L2Size
}

// WarmSpanL2 reports whether a copy of n bytes out of the buffer can
// run at L2 speed from the given core: the buffer must be L2-resident
// there AND the domain's accumulated coverage must span at least n
// bytes.
func (b *Buffer) WarmSpanL2(core, n int) bool {
	return b.WarmL2(core) && n <= b.covL2[b.Mem.P.L2DomainOf(core)]
}

// WarmL1 reports whether the buffer is still resident in the given
// core's L1 cache.
func (b *Buffer) WarmL1(core int) bool {
	if b.lastCore != core {
		return false
	}
	m := b.Mem
	traffic := m.l1Clocks[core] - b.l1TouchMark
	return traffic+int64(len(b.Data)) <= m.P.L1Size
}

// WarmSpanL1 is WarmL1 with the same coverage bound as WarmSpanL2,
// against the last touching core's accumulated L1 coverage.
func (b *Buffer) WarmSpanL1(core, n int) bool {
	return b.WarmL1(core) && n <= b.covL1
}

// RemoteSocket reports whether the buffer's data was last touched by a
// core on a different socket than the given core (triggering FSB
// coherence traffic on Clovertown).
func (b *Buffer) RemoteSocket(core int) bool {
	if b.lastCore < 0 {
		return false
	}
	return !b.Mem.P.SameSocket(core, b.lastCore)
}

// Fill writes a deterministic pattern derived from seed into the
// buffer (test and example helper; does not touch warmth clocks).
func (b *Buffer) Fill(seed byte) {
	for i := range b.Data {
		b.Data[i] = seed + byte(i*131)
	}
}

// Equal reports whether two buffers hold identical bytes.
func Equal(a, b *Buffer) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
