// Package hostmem models host memory: buffers that carry real payload
// bytes, page pinning state, and a cache-warmth tracker.
//
// Warmth is tracked with a streaming-LRU approximation: every L2 cache
// domain (and every core's L1) has a monotonically increasing byte
// clock advanced by each access. A buffer is warm in a cache if the
// traffic since its last touch, plus its own footprint, still fits in
// that cache. This one-line model reproduces the cache falloffs the
// paper observes (e.g. the shared-memory ping-pong of Fig. 10 drops off
// beyond 1 MiB messages: four buffers of that size stream through one
// 4 MiB L2).
package hostmem

import (
	"fmt"

	"omxsim/platform"
)

// Memory is the physical memory and cache state of one host.
type Memory struct {
	P *platform.Platform

	nextAddr  int64
	l2Clocks  []int64 // per L2 domain
	l1Clocks  []int64 // per core
	allocated int64
}

// New returns the memory system for a host described by p.
func New(p *platform.Platform) *Memory {
	return &Memory{
		P:        p,
		nextAddr: 0x1000,
		l2Clocks: make([]int64, p.L2Domains()),
		l1Clocks: make([]int64, p.NumCores()),
	}
}

// Allocated reports total bytes allocated so far.
func (m *Memory) Allocated() int64 { return m.allocated }

// Buffer is a contiguous, addressable region of host memory holding
// real bytes. Buffers remember which core last touched them (for
// warmth and cross-socket decisions), whether a device DMA produced
// their current contents, and their pin refcount.
type Buffer struct {
	Mem  *Memory
	Addr int64
	Data []byte

	pinRef int

	lastCore    int   // -1 until first touch
	l1TouchMark int64 // core L1 clock at last touch
	l2TouchMark int64 // domain L2 clock at last touch
	dmaCold     bool  // contents were just written by device DMA
}

// Alloc returns a new zeroed buffer of the given size.
func (m *Memory) Alloc(size int) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("hostmem: negative alloc %d", size))
	}
	b := &Buffer{Mem: m, Addr: m.nextAddr, Data: make([]byte, size), lastCore: -1}
	m.nextAddr += int64(size) + int64(m.P.PageSize) // pad to keep addresses distinct
	m.allocated += int64(size)
	return b
}

// Size reports the buffer length in bytes.
func (b *Buffer) Size() int { return len(b.Data) }

// Pages reports the number of pages the buffer spans (for pin costs).
func (b *Buffer) Pages() int {
	ps := b.Mem.P.PageSize
	return (len(b.Data) + ps - 1) / ps
}

// Pin increments the pin refcount and reports whether this call
// actually pinned the pages (refcount went 0→1), i.e. whether the
// caller must pay the pinning cost.
func (b *Buffer) Pin() bool {
	b.pinRef++
	return b.pinRef == 1
}

// Unpin decrements the pin refcount. It panics on underflow.
func (b *Buffer) Unpin() {
	if b.pinRef == 0 {
		panic("hostmem: unpin of unpinned buffer")
	}
	b.pinRef--
}

// Pinned reports whether the buffer is currently pinned.
func (b *Buffer) Pinned() bool { return b.pinRef > 0 }

// Touch records an access of n bytes by the given core, updating the
// warmth clocks. Use n = the bytes actually read or written.
func (b *Buffer) Touch(core int, n int) {
	m := b.Mem
	dom := m.P.L2DomainOf(core)
	m.l2Clocks[dom] += int64(n)
	m.l1Clocks[core] += int64(n)
	b.lastCore = core
	b.l2TouchMark = m.l2Clocks[dom]
	b.l1TouchMark = m.l1Clocks[core]
	b.dmaCold = false
}

// WrittenByDMA marks the buffer's contents as produced by device DMA:
// cold to every cache and carrying the snoop penalty on first read.
func (b *Buffer) WrittenByDMA() {
	b.lastCore = -1
	b.dmaCold = true
}

// DMACold reports whether the buffer was last written by device DMA.
func (b *Buffer) DMACold() bool { return b.dmaCold }

// LastCore reports the core that last touched the buffer (-1 if none).
func (b *Buffer) LastCore() int { return b.lastCore }

// WarmL2 reports whether the buffer is still resident in the L2 cache
// reachable from the given core.
func (b *Buffer) WarmL2(core int) bool {
	if b.lastCore < 0 {
		return false
	}
	m := b.Mem
	if !m.P.SameL2(core, b.lastCore) {
		return false
	}
	dom := m.P.L2DomainOf(core)
	traffic := m.l2Clocks[dom] - b.l2TouchMark
	return traffic+int64(len(b.Data)) <= m.P.L2Size
}

// WarmL1 reports whether the buffer is still resident in the given
// core's L1 cache.
func (b *Buffer) WarmL1(core int) bool {
	if b.lastCore != core {
		return false
	}
	m := b.Mem
	traffic := m.l1Clocks[core] - b.l1TouchMark
	return traffic+int64(len(b.Data)) <= m.P.L1Size
}

// RemoteSocket reports whether the buffer's data was last touched by a
// core on a different socket than the given core (triggering FSB
// coherence traffic on Clovertown).
func (b *Buffer) RemoteSocket(core int) bool {
	if b.lastCore < 0 {
		return false
	}
	return !b.Mem.P.SameSocket(core, b.lastCore)
}

// Fill writes a deterministic pattern derived from seed into the
// buffer (test and example helper; does not touch warmth clocks).
func (b *Buffer) Fill(seed byte) {
	for i := range b.Data {
		b.Data[i] = seed + byte(i*131)
	}
}

// Equal reports whether two buffers hold identical bytes.
func Equal(a, b *Buffer) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}
