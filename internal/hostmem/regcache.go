package hostmem

// RegCache is a per-host registration cache: regions pinned for a
// transfer stay registered afterwards and later posts to the same
// buffer reuse the registration for free, amortizing the per-page pin
// cost the way Open-MX's (and Ibdxnet-style RDMA stacks')
// registration caches do. An optional LRU bound caps how many regions
// stay resident: acquiring a new region past the bound evicts the
// least-recently-used one, whose deregistration cost the acquiring
// post pays.
//
// The cache holds one pin reference per resident region (taken via
// Buffer.Pin at first acquire, released via Buffer.Unpin at
// eviction), so cached buffers stay pinned exactly as the real
// deferred-deregistration scheme keeps them.
type RegCache struct {
	max     int // maximum resident regions; 0 = unbounded
	entries map[*Buffer]*regEntry
	// LRU list, most recent at the head. Sentinel-free doubly linked
	// list; head/tail are nil when the cache is empty.
	head, tail *regEntry

	stats RegStats
}

type regEntry struct {
	buf        *Buffer
	pages      int64
	prev, next *regEntry
}

// RegStats is a deterministic snapshot of registration-cache
// activity, in the style of the CPU ledger snapshots: counters since
// the cache was created.
type RegStats struct {
	// Hits and Misses count Acquire calls that found, respectively
	// did not find, the buffer resident; they sum to the number of
	// posts that consulted the cache.
	Hits, Misses int64
	// Evictions counts regions deregistered to honour the LRU bound.
	Evictions int64
	// Resident is the number of currently cached regions;
	// PinnedPages the pages they keep pinned.
	Resident    int
	PinnedPages int64
}

// NewRegCache returns a registration cache bounded to maxEntries
// resident regions (0 = unbounded, classic Open-MX behaviour).
func NewRegCache(maxEntries int) *RegCache {
	return &RegCache{max: maxEntries, entries: make(map[*Buffer]*regEntry)}
}

// Acquire registers the n-byte region of buf if it is not already
// resident and reports the page counts the posting CPU must be
// charged for: pinPages is the pages pinned by a miss (0 on a hit),
// unpinPages the pages deregistered by any LRU eviction this
// acquisition forced. The pin cost is therefore paid exactly once per
// residency of a region, on the post that faulted it in.
func (rc *RegCache) Acquire(buf *Buffer, n int) (pinPages, unpinPages int64) {
	if e := rc.entries[buf]; e != nil {
		rc.stats.Hits++
		rc.moveToFront(e)
		return 0, 0
	}
	rc.stats.Misses++
	buf.Pin()
	pages := int64(1)
	if n > 0 {
		ps := buf.Mem.P.PageSize
		pages = int64((n + ps - 1) / ps)
	}
	e := &regEntry{buf: buf, pages: pages}
	rc.entries[buf] = e
	rc.pushFront(e)
	rc.stats.PinnedPages += pages
	for rc.max > 0 && len(rc.entries) > rc.max {
		unpinPages += rc.evictLRU()
	}
	return pages, unpinPages
}

// evictLRU deregisters the least-recently-used region and reports its
// page count.
func (rc *RegCache) evictLRU() int64 {
	e := rc.tail
	rc.unlink(e)
	delete(rc.entries, e.buf)
	e.buf.Unpin()
	rc.stats.Evictions++
	rc.stats.PinnedPages -= e.pages
	return e.pages
}

// Resident reports whether the buffer currently holds a cached
// registration.
func (rc *RegCache) Resident(buf *Buffer) bool { return rc.entries[buf] != nil }

// Stats snapshots the cache counters.
func (rc *RegCache) Stats() RegStats {
	st := rc.stats
	st.Resident = len(rc.entries)
	return st
}

func (rc *RegCache) pushFront(e *regEntry) {
	e.prev, e.next = nil, rc.head
	if rc.head != nil {
		rc.head.prev = e
	}
	rc.head = e
	if rc.tail == nil {
		rc.tail = e
	}
}

func (rc *RegCache) unlink(e *regEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		rc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		rc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (rc *RegCache) moveToFront(e *regEntry) {
	if rc.head == e {
		return
	}
	rc.unlink(e)
	rc.pushFront(e)
}
