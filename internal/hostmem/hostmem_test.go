package hostmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/platform"
)

func mem() (*platform.Platform, *Memory) {
	p := platform.Clovertown()
	return p, New(p)
}

func TestAllocDistinctAddresses(t *testing.T) {
	_, m := mem()
	a, b := m.Alloc(100), m.Alloc(100)
	if a.Addr == b.Addr {
		t.Fatal("overlapping addresses")
	}
	if m.Allocated() != 200 {
		t.Fatalf("allocated = %d", m.Allocated())
	}
}

func TestFillAndEqual(t *testing.T) {
	_, m := mem()
	a, b := m.Alloc(1000), m.Alloc(1000)
	a.Fill(3)
	if Equal(a, b) {
		t.Fatal("different contents reported equal")
	}
	copy(b.Data, a.Data)
	if !Equal(a, b) {
		t.Fatal("identical contents reported unequal")
	}
	if Equal(a, m.Alloc(999)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestWarmthBasics(t *testing.T) {
	_, m := mem()
	b := m.Alloc(64 * 1024)
	if b.WarmL2(0) || b.WarmL1(0) {
		t.Fatal("fresh buffer warm")
	}
	b.Touch(0, b.Size())
	if !b.WarmL2(0) || !b.WarmL2(1) {
		t.Fatal("not warm in shared L2 after touch")
	}
	if b.WarmL2(2) {
		t.Fatal("warm in another subchip's L2")
	}
	if b.WarmL1(0) {
		t.Fatal("64 kiB buffer cannot fit a 32 kiB L1")
	}
	small := m.Alloc(4096)
	small.Touch(0, small.Size())
	if !small.WarmL1(0) || small.WarmL1(1) {
		t.Fatal("L1 warmth wrong (own core only)")
	}
}

func TestDMAColdSemantics(t *testing.T) {
	_, m := mem()
	b := m.Alloc(4096)
	b.Touch(0, 4096)
	b.WrittenByDMA()
	if !b.DMACold() || b.WarmL2(0) {
		t.Fatal("DMA write should clear warmth")
	}
	b.Touch(1, 4096)
	if b.DMACold() {
		t.Fatal("touch should clear DMA-cold")
	}
	if b.LastCore() != 1 {
		t.Fatalf("last core = %d", b.LastCore())
	}
}

func TestRemoteSocket(t *testing.T) {
	_, m := mem()
	b := m.Alloc(100)
	if b.RemoteSocket(0) {
		t.Fatal("untouched buffer cannot be remote")
	}
	b.Touch(4, 100) // socket 1
	if !b.RemoteSocket(0) || b.RemoteSocket(5) {
		t.Fatal("remote-socket detection wrong")
	}
}

func TestOversizeBufferNeverWarm(t *testing.T) {
	p, m := mem()
	b := m.Alloc(int(p.L2Size) + 1)
	b.Touch(0, b.Size())
	if b.WarmL2(0) {
		t.Fatal("buffer larger than L2 reported warm")
	}
}

// Property: warmth monotonically decays — once traffic evicts a
// buffer it never becomes warm again without a touch.
func TestPropertyEvictionIsPermanent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, m := mem()
		b := m.Alloc(rng.Intn(1<<20) + 1)
		b.Touch(0, b.Size())
		evicted := false
		for i := 0; i < 20; i++ {
			tr := m.Alloc(rng.Intn(int(p.L2Size)))
			tr.Touch(rng.Intn(2), tr.Size()) // same L2 domain
			warm := b.WarmL2(0)
			if evicted && warm {
				return false
			}
			if !warm {
				evicted = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, m := mem()
	m.Alloc(-1)
}

// Regression (warmth granularity): a small fragment touch must not
// make a whole multi-MB buffer warm for larger copies — coverage
// extends only over the touched bytes, accumulating across touches.
func TestWarmSpanGranularity(t *testing.T) {
	_, m := mem()
	b := m.Alloc(1 << 20)
	b.Touch(0, 4096)
	if !b.WarmL2(0) {
		t.Fatal("residency lost by a touch")
	}
	if b.WarmSpanL2(0, b.Size()) {
		t.Fatal("4 kiB touch reported as warming a 1 MiB copy")
	}
	if !b.WarmSpanL2(0, 4096) {
		t.Fatal("touched prefix should be span-warm")
	}
	if b.WarmLen() != 4096 {
		t.Fatalf("WarmLen = %d, want 4096", b.WarmLen())
	}
	// Chunked touches accumulate to full coverage.
	for off := 4096; off < b.Size(); off += 4096 {
		b.Touch(0, 4096)
	}
	if b.WarmLen() != b.Size() {
		t.Fatalf("WarmLen = %d after full chunked pass, want %d", b.WarmLen(), b.Size())
	}
	// 1 MiB fits the 4 MiB L2 but streams past the touches above;
	// span coverage is necessary, residency still decides.
	if !b.WarmSpanL2(0, b.Size()) {
		t.Fatal("fully covered resident buffer should be span-warm")
	}
}

// Coverage is per L2 domain: another domain's touches neither grant
// nor destroy this domain's accumulated coverage.
func TestWarmSpanPerDomain(t *testing.T) {
	_, m := mem()
	b := m.Alloc(64 * 1024)
	b.Touch(0, 32*1024) // domain 0
	b.Touch(2, 4096)    // domain 1 interleaves
	b.Touch(0, 32*1024) // domain 0 finishes its pass
	if !b.WarmSpanL2(0, 64*1024) {
		t.Fatal("interleaved foreign-domain touch destroyed accumulated coverage")
	}
	if b.WarmSpanL2(2, 64*1024) {
		t.Fatal("domain 1 only touched 4 kiB but claims full coverage")
	}
}

// Regression (L1 span): L1 coverage follows the single touching core
// and resets when another core takes over.
func TestWarmSpanL1(t *testing.T) {
	_, m := mem()
	b := m.Alloc(16 * 1024)
	b.Touch(0, 8*1024)
	b.Touch(0, 8*1024)
	if !b.WarmSpanL1(0, 16*1024) {
		t.Fatal("same-core touches should accumulate L1 coverage")
	}
	b.Touch(1, 4096) // other core takes over
	b.Touch(0, 4096) // back: a fresh 4 kiB episode
	if b.WarmSpanL1(0, 16*1024) {
		t.Fatal("core switch should reset L1 coverage")
	}
	if !b.WarmSpanL1(0, 4096) {
		t.Fatal("new episode's own span should be L1-warm")
	}
}

// Regression (DMACold vs partial touch): reading a prefix of a device
// deposit must not launder the snoop penalty off the untouched
// remainder.
func TestDMAColdPartialTouch(t *testing.T) {
	_, m := mem()
	b := m.Alloc(8192)
	b.WrittenByDMA()
	b.Touch(0, 4096)
	if !b.DMACold() {
		t.Fatal("prefix touch cleared DMA-cold for the whole buffer")
	}
	if b.DMAColdFor(4096) {
		t.Fatal("already-snooped prefix still reported cold")
	}
	if !b.DMAColdFor(8192) {
		t.Fatal("copy past the snooped prefix must still pay the snoop")
	}
	b.Touch(0, 4096)
	if b.DMACold() || b.DMAColdFor(8192) {
		t.Fatal("full coverage should retire the deposit")
	}
	// A fresh deposit restarts the ledger.
	b.WrittenByDMA()
	if !b.DMAColdFor(1) {
		t.Fatal("fresh deposit not cold")
	}
}

// DCA state machine: a pushed deposit is resident for the target
// domain, wrong-socket for the other socket, and plain memory (no
// snoop debt) once evicted by traffic.
func TestDCAStates(t *testing.T) {
	p, m := mem()
	b := m.Alloc(64 * 1024)
	b.WrittenByDCA(0, b.Size())
	if b.DCALen() != b.Size() {
		t.Fatalf("DCALen = %d, want %d", b.DCALen(), b.Size())
	}
	if !b.DCAResident(0) || !b.DCAResident(1) {
		t.Fatal("deposit should be resident for the target L2 domain")
	}
	if b.DCAResident(2) {
		t.Fatal("resident for a domain it was not pushed into")
	}
	if b.DCAWrongSocket(2) {
		t.Fatal("core 2 shares the socket: not wrong-socket")
	}
	if !b.DCAWrongSocket(4) {
		t.Fatal("core 4 is the other socket: should be wrong-socket")
	}
	if b.DMACold() {
		t.Fatal("DCA deposit should not carry the plain snoop penalty")
	}
	// Stream traffic through the target domain until eviction.
	tr := m.Alloc(int(p.L2Size))
	tr.Touch(0, tr.Size())
	if b.DCAResident(0) || b.DCAWrongSocket(4) {
		t.Fatal("evicted deposit still reported pushed")
	}
	// A consumer touch retires the push into ordinary warmth.
	b.WrittenByDCA(0, b.Size())
	b.Touch(0, b.Size())
	if b.DCADomain() != -1 {
		t.Fatal("touch should consume the DCA push")
	}
}

// The push is bounded by the platform's LLC budget.
func TestDCABudget(t *testing.T) {
	p := platform.ClovertownDCA()
	m := New(p)
	b := m.Alloc(int(p.DCALLCBudget) * 2)
	b.WrittenByDCA(0, b.Size())
	if int64(b.DCALen()) != p.DCALLCBudget {
		t.Fatalf("DCALen = %d, want budget %d", b.DCALen(), p.DCALLCBudget)
	}
}

func TestAllocOnHomeSocket(t *testing.T) {
	_, m := mem()
	if m.Alloc(10).HomeSocket() != 0 {
		t.Fatal("default allocation not on the chipset socket")
	}
	if m.AllocOn(10, 1).HomeSocket() != 1 {
		t.Fatal("AllocOn ignored the socket")
	}
}

func TestAllocOnBadSocketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, m := mem()
	m.AllocOn(10, 2)
}
