package hostmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/platform"
)

func mem() (*platform.Platform, *Memory) {
	p := platform.Clovertown()
	return p, New(p)
}

func TestAllocDistinctAddresses(t *testing.T) {
	_, m := mem()
	a, b := m.Alloc(100), m.Alloc(100)
	if a.Addr == b.Addr {
		t.Fatal("overlapping addresses")
	}
	if m.Allocated() != 200 {
		t.Fatalf("allocated = %d", m.Allocated())
	}
}

func TestFillAndEqual(t *testing.T) {
	_, m := mem()
	a, b := m.Alloc(1000), m.Alloc(1000)
	a.Fill(3)
	if Equal(a, b) {
		t.Fatal("different contents reported equal")
	}
	copy(b.Data, a.Data)
	if !Equal(a, b) {
		t.Fatal("identical contents reported unequal")
	}
	if Equal(a, m.Alloc(999)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestWarmthBasics(t *testing.T) {
	_, m := mem()
	b := m.Alloc(64 * 1024)
	if b.WarmL2(0) || b.WarmL1(0) {
		t.Fatal("fresh buffer warm")
	}
	b.Touch(0, b.Size())
	if !b.WarmL2(0) || !b.WarmL2(1) {
		t.Fatal("not warm in shared L2 after touch")
	}
	if b.WarmL2(2) {
		t.Fatal("warm in another subchip's L2")
	}
	if b.WarmL1(0) {
		t.Fatal("64 kiB buffer cannot fit a 32 kiB L1")
	}
	small := m.Alloc(4096)
	small.Touch(0, small.Size())
	if !small.WarmL1(0) || small.WarmL1(1) {
		t.Fatal("L1 warmth wrong (own core only)")
	}
}

func TestDMAColdSemantics(t *testing.T) {
	_, m := mem()
	b := m.Alloc(4096)
	b.Touch(0, 4096)
	b.WrittenByDMA()
	if !b.DMACold() || b.WarmL2(0) {
		t.Fatal("DMA write should clear warmth")
	}
	b.Touch(1, 4096)
	if b.DMACold() {
		t.Fatal("touch should clear DMA-cold")
	}
	if b.LastCore() != 1 {
		t.Fatalf("last core = %d", b.LastCore())
	}
}

func TestRemoteSocket(t *testing.T) {
	_, m := mem()
	b := m.Alloc(100)
	if b.RemoteSocket(0) {
		t.Fatal("untouched buffer cannot be remote")
	}
	b.Touch(4, 100) // socket 1
	if !b.RemoteSocket(0) || b.RemoteSocket(5) {
		t.Fatal("remote-socket detection wrong")
	}
}

func TestOversizeBufferNeverWarm(t *testing.T) {
	p, m := mem()
	b := m.Alloc(int(p.L2Size) + 1)
	b.Touch(0, b.Size())
	if b.WarmL2(0) {
		t.Fatal("buffer larger than L2 reported warm")
	}
}

// Property: warmth monotonically decays — once traffic evicts a
// buffer it never becomes warm again without a touch.
func TestPropertyEvictionIsPermanent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, m := mem()
		b := m.Alloc(rng.Intn(1<<20) + 1)
		b.Touch(0, b.Size())
		evicted := false
		for i := 0; i < 20; i++ {
			tr := m.Alloc(rng.Intn(int(p.L2Size)))
			tr.Touch(rng.Intn(2), tr.Size()) // same L2 domain
			warm := b.WarmL2(0)
			if evicted && warm {
				return false
			}
			if !warm {
				evicted = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, m := mem()
	m.Alloc(-1)
}
