// Package bus implements a fluid-flow bandwidth arbiter: a shared
// resource of fixed byte rate over which concurrent flows progress at
// max-min fair shares, each optionally capped by its own rate limit.
//
// It models shared bandwidth domains — in this repository, the I/OAT
// DMA engine's aggregate throughput across its four channels — without
// simulating individual cache lines. Whenever the set of active flows
// changes, progress is banked at the old rates, shares are recomputed,
// and the earliest completion is (re)scheduled.
package bus

import (
	"fmt"

	"omxsim/sim"
)

// Flow is one active transfer on the arbiter.
type Flow struct {
	arb       *Arbiter
	remaining float64 // bytes left
	limit     float64 // own rate cap (bytes/ns), 0 = unlimited
	rate      float64 // current allocated rate
	onDone    func()
	done      bool
}

// Remaining reports the bytes this flow still has to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate reports the currently allocated rate in bytes/ns.
func (f *Flow) Rate() float64 { return f.rate }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Arbiter is a shared bandwidth domain. Create with New.
type Arbiter struct {
	e        *sim.Engine
	capacity float64 // total bytes/ns, 0 = unlimited
	flows    []*Flow
	lastAt   sim.Time
	timer    sim.Timer
	moved    float64 // total bytes delivered (for conservation checks)
}

// New returns an arbiter with the given total capacity in bytes/ns.
// A capacity of 0 means unlimited (flows only see their own caps).
func New(e *sim.Engine, capacity float64) *Arbiter {
	return &Arbiter{e: e, capacity: capacity, lastAt: e.Now()}
}

// TotalMoved reports the total bytes delivered by completed and partial
// flows so far (conservation diagnostics).
func (a *Arbiter) TotalMoved() float64 { return a.moved }

// Active reports the number of in-flight flows.
func (a *Arbiter) Active() int { return len(a.flows) }

// Start begins a new flow of the given size. limit caps this flow's own
// rate (0 = no cap beyond the arbiter's capacity). onDone runs, in
// engine context, at the simulated instant the last byte transfers. A
// zero-byte flow completes after one scheduling round trip.
func (a *Arbiter) Start(bytes float64, limit float64, onDone func()) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("bus: negative flow size %v", bytes))
	}
	f := &Flow{arb: a, remaining: bytes, limit: limit, onDone: onDone}
	a.advance()
	a.flows = append(a.flows, f)
	a.reschedule()
	return f
}

// advance banks progress made since lastAt at the current rates.
func (a *Arbiter) advance() {
	dt := float64(a.e.Now() - a.lastAt)
	a.lastAt = a.e.Now()
	if dt <= 0 {
		return
	}
	for _, f := range a.flows {
		delta := f.rate * dt
		if delta > f.remaining {
			delta = f.remaining
		}
		f.remaining -= delta
		a.moved += delta
	}
}

// recompute performs progressive filling (max-min fairness with
// per-flow caps): every flow gets min(cap, fair share), and bandwidth
// unused by capped flows is redistributed among the rest.
func (a *Arbiter) recompute() {
	n := len(a.flows)
	if n == 0 {
		return
	}
	if a.capacity <= 0 {
		// Unlimited arbiter: every flow runs at its own cap (or
		// "infinitely fast" if uncapped — completed on next event).
		for _, f := range a.flows {
			f.rate = f.limit
		}
		return
	}
	remainingCap := a.capacity
	unassigned := make([]*Flow, 0, n)
	for _, f := range a.flows {
		f.rate = -1
		unassigned = append(unassigned, f)
	}
	// Iteratively satisfy flows whose cap is below the fair share.
	for len(unassigned) > 0 {
		share := remainingCap / float64(len(unassigned))
		progressed := false
		next := unassigned[:0]
		for _, f := range unassigned {
			if f.limit > 0 && f.limit <= share {
				f.rate = f.limit
				remainingCap -= f.limit
				progressed = true
			} else {
				next = append(next, f)
			}
		}
		unassigned = next
		if !progressed {
			share = remainingCap / float64(len(unassigned))
			for _, f := range unassigned {
				f.rate = share
			}
			break
		}
	}
}

// reschedule recomputes rates and schedules the next completion event.
func (a *Arbiter) reschedule() {
	a.timer.Stop()
	a.timer = sim.Timer{}
	a.recompute()
	if len(a.flows) == 0 {
		return
	}
	// Earliest completion across flows.
	first := sim.Duration(-1)
	for _, f := range a.flows {
		var d sim.Duration
		switch {
		case f.remaining <= 0:
			d = 0
		case f.rate <= 0:
			continue // starved; will complete only after others leave
		default:
			d = sim.Duration(f.remaining/f.rate + 0.999)
		}
		if first < 0 || d < first {
			first = d
		}
	}
	if first < 0 {
		// Every flow starved (capacity 0 with uncapped competitors is
		// impossible by construction; treat as immediate completion).
		first = 0
	}
	a.timer = a.e.Schedule(first, a.complete)
}

// complete banks progress and retires every finished flow.
func (a *Arbiter) complete() {
	a.timer = sim.Timer{}
	a.advance()
	var live []*Flow
	var finished []*Flow
	for _, f := range a.flows {
		if f.remaining <= 0.5 { // sub-byte residue from integer rounding
			a.moved += f.remaining
			f.remaining = 0
			f.done = true
			finished = append(finished, f)
		} else {
			live = append(live, f)
		}
	}
	a.flows = live
	a.reschedule()
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone()
		}
	}
}
