package bus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/sim"
)

func TestSingleFlowDuration(t *testing.T) {
	e := sim.New()
	a := New(e, 2.0) // 2 bytes/ns
	var doneAt sim.Time
	a.Start(1000, 0, func() { doneAt = e.Now() })
	e.Run()
	if doneAt < 500 || doneAt > 502 {
		t.Fatalf("1000 B at 2 B/ns finished at %d ns, want ≈500", doneAt)
	}
}

func TestFlowOwnCapSlowerThanArbiter(t *testing.T) {
	e := sim.New()
	a := New(e, 10.0)
	var doneAt sim.Time
	a.Start(1000, 1.0, func() { doneAt = e.Now() })
	e.Run()
	if doneAt < 1000 || doneAt > 1002 {
		t.Fatalf("capped flow finished at %d, want ≈1000", doneAt)
	}
}

func TestTwoEqualFlowsShareFairly(t *testing.T) {
	e := sim.New()
	a := New(e, 2.0)
	var d1, d2 sim.Time
	a.Start(1000, 0, func() { d1 = e.Now() })
	a.Start(1000, 0, func() { d2 = e.Now() })
	e.Run()
	// Each gets 1 B/ns → both finish ≈1000 ns.
	if math.Abs(float64(d1-d2)) > 2 || d1 < 999 || d1 > 1003 {
		t.Fatalf("d1=%d d2=%d, want both ≈1000", d1, d2)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	e := sim.New()
	a := New(e, 2.0)
	var dLong sim.Time
	a.Start(1500, 0, func() { dLong = e.Now() })
	a.Start(500, 0, func() {})
	e.Run()
	// Phase 1: both at 1 B/ns until short one finishes at t=500 (long
	// has 1000 left). Phase 2: long at 2 B/ns → +500 ns → 1000 total.
	if dLong < 999 || dLong > 1004 {
		t.Fatalf("long flow finished at %d, want ≈1000", dLong)
	}
}

func TestCappedFlowLeavesHeadroom(t *testing.T) {
	e := sim.New()
	a := New(e, 3.0)
	var dA, dB sim.Time
	a.Start(1000, 0.5, func() { dA = e.Now() }) // capped below fair share
	a.Start(2500, 0, func() { dB = e.Now() })
	e.Run()
	// A runs at 0.5; B gets the remaining 2.5 → finishes at 1000.
	if dA < 1999 || dA > 2003 {
		t.Fatalf("capped flow at %d, want ≈2000", dA)
	}
	if dB < 999 || dB > 1003 {
		t.Fatalf("uncapped flow at %d, want ≈1000", dB)
	}
}

func TestUnlimitedArbiterUsesOwnCaps(t *testing.T) {
	e := sim.New()
	a := New(e, 0)
	var d sim.Time
	a.Start(4096, 4.096, func() { d = e.Now() })
	e.Run()
	if d < 999 || d > 1002 {
		t.Fatalf("finished at %d, want ≈1000", d)
	}
}

func TestZeroByteFlowCompletes(t *testing.T) {
	e := sim.New()
	a := New(e, 1.0)
	done := false
	a.Start(0, 0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestLateArrivalDoesNotStealBankedProgress(t *testing.T) {
	e := sim.New()
	a := New(e, 2.0)
	var d1 sim.Time
	a.Start(1000, 0, func() { d1 = e.Now() })
	e.Schedule(400, func() { a.Start(10000, 0, func() {}) })
	e.Run()
	// First flow: 800 B done by t=400 at 2 B/ns, 200 B left at 1 B/ns
	// → finishes ≈600.
	if d1 < 599 || d1 > 603 {
		t.Fatalf("d1=%d, want ≈600", d1)
	}
}

func TestManySequentialFlows(t *testing.T) {
	e := sim.New()
	a := New(e, 1.0)
	count := 0
	var next func()
	next = func() {
		count++
		if count < 50 {
			a.Start(100, 0, next)
		}
	}
	a.Start(100, 0, next)
	e.Run()
	if count != 50 {
		t.Fatalf("count=%d", count)
	}
	if e.Now() < 5000 || e.Now() > 5100 {
		t.Fatalf("total time %d, want ≈5000", e.Now())
	}
}

// Property: bytes are conserved and the aggregate capacity is never
// beaten — N random flows on a capacity-C arbiter cannot finish before
// totalBytes/C, and each flow respects its own cap.
func TestPropertyConservationAndCaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		capacity := 0.5 + rng.Float64()*4
		a := New(e, capacity)
		n := 1 + rng.Intn(8)
		total := 0.0
		lastDone := sim.Time(0)
		remainingFlows := n
		for i := 0; i < n; i++ {
			bytes := float64(1 + rng.Intn(100000))
			total += bytes
			var limit float64
			if rng.Intn(2) == 0 {
				limit = 0.1 + rng.Float64()*3
			}
			start := sim.Duration(rng.Intn(1000))
			b, l := bytes, limit
			e.Schedule(start, func() {
				a.Start(b, l, func() {
					remainingFlows--
					if e.Now() > lastDone {
						lastDone = e.Now()
					}
				})
			})
		}
		e.Run()
		if remainingFlows != 0 {
			return false
		}
		if math.Abs(a.TotalMoved()-total) > 1.0 {
			return false
		}
		// Cannot finish faster than capacity allows.
		minTime := total / capacity
		return float64(lastDone) >= minTime-float64(n)*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single capped flow takes bytes/min(cap, capacity).
func TestPropertySingleFlowExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.New()
		capacity := 0.5 + rng.Float64()*4
		limit := 0.1 + rng.Float64()*6
		bytes := float64(1 + rng.Intn(1_000_000))
		a := New(e, capacity)
		var done sim.Time
		a.Start(bytes, limit, func() { done = e.Now() })
		e.Run()
		eff := math.Min(limit, capacity)
		want := bytes / eff
		return math.Abs(float64(done)-want) <= 2+want*1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e := sim.New()
	New(e, 1).Start(-1, 0, nil)
}
