// Package interop tests wire compatibility between Open-MX and the
// native MXoE stack: "Open-MX enables interoperability between any
// hosts, even when running the native MXoE stack on Myricom's
// Myri-10G boards" — the BlueGene/P PVFS2 deployment the paper
// motivates runs exactly this mixed configuration (Open-MX compute
// nodes talking to native-MX I/O nodes).
package interop

import (
	"testing"

	"omxsim/internal/core"
	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/mxoe"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// fixture: hostA runs Open-MX (commodity NIC path), hostB runs native
// MXoE (firmware path), back to back.
type fixture struct {
	e   *sim.Engine
	omx *core.Stack
	mx  *mxoe.Stack
	eo  *core.Endpoint
	em  *mxoe.Endpoint
}

func newFixture(t *testing.T, omxCfg core.Config) *fixture {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	ha := host.New(e, p, "omx-node")
	hb := host.New(e, p, "mx-node")
	ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
	ha.NIC.SetHose(ab)
	hb.NIC.SetHose(ba)
	fx := &fixture{
		e:   e,
		omx: core.Attach(ha, omxCfg),
		mx:  mxoe.Attach(hb, mxoe.Config{}),
	}
	fx.eo = fx.omx.OpenEndpoint(0, 2)
	fx.em = fx.mx.OpenEndpoint(0, 2)
	t.Cleanup(e.Close)
	return fx
}

// omxToMX moves n bytes from the Open-MX host to the native MX host.
func omxToMX(t *testing.T, fx *fixture, n int) {
	t.Helper()
	src := fx.omx.H.Alloc(n)
	dst := fx.mx.H.Alloc(n)
	src.Fill(0xAB)
	done := false
	fx.e.Go("mx-recv", func(p *sim.Proc) {
		r := fx.em.IRecv(p, 4, ^uint64(0), dst, 0, n)
		fx.em.Wait(p, r)
		done = r.Len == n
	})
	fx.e.Go("omx-send", func(p *sim.Proc) {
		r := fx.eo.ISend(p, proto.Addr{Host: "mx-node", EP: 0}, 4, src, 0, n)
		fx.eo.Wait(p, r)
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if !done {
		t.Fatalf("omx→mx n=%d never completed; blocked: %v", n, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("omx→mx n=%d corrupted", n)
	}
}

// mxToOMX moves n bytes from the native MX host to the Open-MX host.
func mxToOMX(t *testing.T, fx *fixture, n int) {
	t.Helper()
	src := fx.mx.H.Alloc(n)
	dst := fx.omx.H.Alloc(n)
	src.Fill(0xCD)
	done := false
	fx.e.Go("omx-recv", func(p *sim.Proc) {
		r := fx.eo.IRecv(p, 5, ^uint64(0), dst, 0, n)
		fx.eo.Wait(p, r)
		done = r.Len == n
	})
	fx.e.Go("mx-send", func(p *sim.Proc) {
		r := fx.em.ISend(p, proto.Addr{Host: "omx-node", EP: 0}, 5, src, 0, n)
		fx.em.Wait(p, r)
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if !done {
		t.Fatalf("mx→omx n=%d never completed; blocked: %v", n, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("mx→omx n=%d corrupted", n)
	}
}

func TestEagerInterop(t *testing.T) {
	for _, n := range []int{16, 128, 4096, 32 * 1024} {
		fx := newFixture(t, core.Config{})
		omxToMX(t, fx, n)
		mxToOMX(t, fx, n)
	}
}

func TestLargeInterop(t *testing.T) {
	for _, n := range []int{100 * 1024, 1 << 20} {
		fx := newFixture(t, core.Config{})
		omxToMX(t, fx, n)
		mxToOMX(t, fx, n)
	}
}

func TestLargeInteropWithIOAT(t *testing.T) {
	// The Open-MX receiver offloads its copies even when the sender
	// is native-MX firmware: the wire protocol is identical.
	fx := newFixture(t, core.Config{IOAT: true})
	mxToOMX(t, fx, 2<<20)
	if fx.omx.Stats.IOATSubmits == 0 {
		t.Fatal("Open-MX receiver did not offload copies of MX-sent data")
	}
}

func TestBidirectionalPingPongInterop(t *testing.T) {
	fx := newFixture(t, core.Config{IOAT: true})
	n := 256 * 1024
	bo := fx.omx.H.Alloc(n)
	bm := fx.mx.H.Alloc(n)
	bo.Fill(1)
	iters := 4
	fx.e.Go("mx-side", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := fx.em.IRecv(p, 1, ^uint64(0), bm, 0, n)
			fx.em.Wait(p, r)
			s := fx.em.ISend(p, proto.Addr{Host: "omx-node", EP: 0}, 2, bm, 0, n)
			fx.em.Wait(p, s)
		}
	})
	okRounds := 0
	fx.e.Go("omx-side", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			s := fx.eo.ISend(p, proto.Addr{Host: "mx-node", EP: 0}, 1, bo, 0, n)
			fx.eo.Wait(p, s)
			r := fx.eo.IRecv(p, 2, ^uint64(0), bo, 0, n)
			fx.eo.Wait(p, r)
			okRounds++
		}
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if okRounds != iters {
		t.Fatalf("completed %d/%d rounds; blocked: %v", okRounds, iters, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(bo, bm) {
		t.Fatal("ping-pong corrupted payload")
	}
}
