// Package interop tests wire compatibility between Open-MX and the
// native MXoE stack: "Open-MX enables interoperability between any
// hosts, even when running the native MXoE stack on Myricom's
// Myri-10G boards" — the BlueGene/P PVFS2 deployment the paper
// motivates runs exactly this mixed configuration (Open-MX compute
// nodes talking to native-MX I/O nodes).
package interop

import (
	"testing"

	"omxsim/internal/core"
	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/mxoe"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// fixture: hostA runs Open-MX (commodity NIC path), hostB runs native
// MXoE (firmware path), back to back.
type fixture struct {
	e   *sim.Engine
	omx *core.Stack
	mx  *mxoe.Stack
	eo  *core.Endpoint
	em  *mxoe.Endpoint
}

func newFixture(t *testing.T, omxCfg core.Config) *fixture {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	ha := host.New(e, p, "omx-node")
	hb := host.New(e, p, "mx-node")
	ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
	ha.NIC.SetHose(ab)
	hb.NIC.SetHose(ba)
	fx := &fixture{
		e:   e,
		omx: core.Attach(ha, omxCfg),
		mx:  mxoe.Attach(hb, mxoe.Config{}),
	}
	fx.eo = fx.omx.OpenEndpoint(0, 2)
	fx.em = fx.mx.OpenEndpoint(0, 2)
	t.Cleanup(e.Close)
	return fx
}

// omxToMX moves n bytes from the Open-MX host to the native MX host.
func omxToMX(t *testing.T, fx *fixture, n int) {
	t.Helper()
	src := fx.omx.H.Alloc(n)
	dst := fx.mx.H.Alloc(n)
	src.Fill(0xAB)
	done := false
	fx.e.Go("mx-recv", func(p *sim.Proc) {
		r := fx.em.IRecv(p, 4, ^uint64(0), dst, 0, n)
		fx.em.Wait(p, r)
		done = r.Len == n
	})
	fx.e.Go("omx-send", func(p *sim.Proc) {
		r := fx.eo.ISend(p, proto.Addr{Host: "mx-node", EP: 0}, 4, src, 0, n)
		fx.eo.Wait(p, r)
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if !done {
		t.Fatalf("omx→mx n=%d never completed; blocked: %v", n, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("omx→mx n=%d corrupted", n)
	}
}

// mxToOMX moves n bytes from the native MX host to the Open-MX host.
func mxToOMX(t *testing.T, fx *fixture, n int) {
	t.Helper()
	src := fx.mx.H.Alloc(n)
	dst := fx.omx.H.Alloc(n)
	src.Fill(0xCD)
	done := false
	fx.e.Go("omx-recv", func(p *sim.Proc) {
		r := fx.eo.IRecv(p, 5, ^uint64(0), dst, 0, n)
		fx.eo.Wait(p, r)
		done = r.Len == n
	})
	fx.e.Go("mx-send", func(p *sim.Proc) {
		r := fx.em.ISend(p, proto.Addr{Host: "omx-node", EP: 0}, 5, src, 0, n)
		fx.em.Wait(p, r)
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if !done {
		t.Fatalf("mx→omx n=%d never completed; blocked: %v", n, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("mx→omx n=%d corrupted", n)
	}
}

func TestEagerInterop(t *testing.T) {
	for _, n := range []int{16, 128, 4096, 32 * 1024} {
		fx := newFixture(t, core.Config{})
		omxToMX(t, fx, n)
		mxToOMX(t, fx, n)
	}
}

func TestLargeInterop(t *testing.T) {
	for _, n := range []int{100 * 1024, 1 << 20} {
		fx := newFixture(t, core.Config{})
		omxToMX(t, fx, n)
		mxToOMX(t, fx, n)
	}
}

func TestLargeInteropWithIOAT(t *testing.T) {
	// The Open-MX receiver offloads its copies even when the sender
	// is native-MX firmware: the wire protocol is identical.
	fx := newFixture(t, core.Config{IOAT: true})
	mxToOMX(t, fx, 2<<20)
	if fx.omx.Stats.IOATSubmits == 0 {
		t.Fatal("Open-MX receiver did not offload copies of MX-sent data")
	}
}

func TestBidirectionalPingPongInterop(t *testing.T) {
	fx := newFixture(t, core.Config{IOAT: true})
	n := 256 * 1024
	bo := fx.omx.H.Alloc(n)
	bm := fx.mx.H.Alloc(n)
	bo.Fill(1)
	iters := 4
	fx.e.Go("mx-side", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := fx.em.IRecv(p, 1, ^uint64(0), bm, 0, n)
			fx.em.Wait(p, r)
			s := fx.em.ISend(p, proto.Addr{Host: "omx-node", EP: 0}, 2, bm, 0, n)
			fx.em.Wait(p, s)
		}
	})
	okRounds := 0
	fx.e.Go("omx-side", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			s := fx.eo.ISend(p, proto.Addr{Host: "mx-node", EP: 0}, 1, bo, 0, n)
			fx.eo.Wait(p, s)
			r := fx.eo.IRecv(p, 2, ^uint64(0), bo, 0, n)
			fx.eo.Wait(p, r)
			okRounds++
		}
	})
	fx.e.RunUntil(fx.e.Now() + 2*sim.Second)
	if okRounds != iters {
		t.Fatalf("completed %d/%d rounds; blocked: %v", okRounds, iters, fx.e.BlockedProcs())
	}
	if !hostmem.Equal(bo, bm) {
		t.Fatal("ping-pong corrupted payload")
	}
}

// newImpairedFixture is newFixture with a misbehaving wire: loss,
// reordering and duplication in both directions, and retransmission
// timeouts tuned down so recovery fits the test budget.
func newImpairedFixture(t *testing.T, im wire.Impairment) *fixture {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	ha := host.New(e, p, "omx-node")
	hb := host.New(e, p, "mx-node")
	ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
	ab.SetImpairment(im)
	rev := im
	rev.Seed ^= 0x0F0F
	ba.SetImpairment(rev)
	ha.NIC.SetHose(ab)
	hb.NIC.SetHose(ba)
	fx := &fixture{
		e:   e,
		omx: core.Attach(ha, core.Config{IOAT: true, RetransmitTimeout: 2 * sim.Millisecond}),
		mx:  mxoe.Attach(hb, mxoe.Config{RetransmitTimeout: 2 * sim.Millisecond}),
	}
	fx.eo = fx.omx.OpenEndpoint(0, 2)
	fx.em = fx.mx.OpenEndpoint(0, 2)
	t.Cleanup(e.Close)
	return fx
}

// TestInteropUnderLossAndReorder: the mixed Open-MX ↔ native-MX pair
// must complete verified transfers in both directions across every
// size class at 1 % frame loss plus reordering and duplication —
// both reliability implementations speak the same ack/retransmit
// protocol over the shared wire format.
func TestInteropUnderLossAndReorder(t *testing.T) {
	fx := newImpairedFixture(t, wire.Impairment{
		Seed:        401,
		LossRate:    0.01,
		ReorderRate: 0.05,
		DupRate:     0.01,
	})
	for round := 0; round < 3; round++ {
		for _, n := range []int{16, 4096, 32 * 1024, 300 * 1024} {
			omxToMX(t, fx, n)
			mxToOMX(t, fx, n)
		}
	}
	// The adversary must actually have bitten for this to mean
	// anything, and at least one side must have retransmitted.
	ha, hb := fx.omx.H.NIC.Hose(), fx.mx.H.NIC.Hose()
	if ha.FramesLost+hb.FramesLost == 0 {
		t.Fatal("impairment lost no frames")
	}
	omxRtx := fx.omx.Stats.EagerRetransmits + fx.omx.Stats.PullRetransmits + fx.omx.Stats.RndvRetransmits
	if omxRtx+fx.mx.Stats.Retransmits() == 0 {
		t.Fatal("transfers survived loss with zero retransmissions (impossible)")
	}
}

// TestInteropHeavyLossBothDirections pushes the mixed pair harder:
// 5 % loss with several messages outstanding each way at once.
func TestInteropHeavyLossBothDirections(t *testing.T) {
	fx := newImpairedFixture(t, wire.Impairment{Seed: 811, LossRate: 0.05})
	const count = 6
	n := 64 * 1024
	srcO := make([]*hostmem.Buffer, count)
	dstM := make([]*hostmem.Buffer, count)
	srcM := make([]*hostmem.Buffer, count)
	dstO := make([]*hostmem.Buffer, count)
	for i := 0; i < count; i++ {
		srcO[i], dstM[i] = fx.omx.H.Alloc(n), fx.mx.H.Alloc(n)
		srcM[i], dstO[i] = fx.mx.H.Alloc(n), fx.omx.H.Alloc(n)
		srcO[i].Fill(byte(2*i + 1))
		srcM[i].Fill(byte(2*i + 2))
	}
	doneO, doneM := 0, 0
	fx.e.Go("omx", func(p *sim.Proc) {
		var rs []*core.Request
		for i := 0; i < count; i++ {
			rs = append(rs, fx.eo.ISend(p, proto.Addr{Host: "mx-node", EP: 0}, uint64(i), srcO[i], 0, n))
			rs = append(rs, fx.eo.IRecv(p, uint64(100+i), ^uint64(0), dstO[i], 0, n))
		}
		for _, r := range rs {
			fx.eo.Wait(p, r)
			doneO++
		}
	})
	fx.e.Go("mx", func(p *sim.Proc) {
		var rs []*mxoe.Request
		for i := 0; i < count; i++ {
			rs = append(rs, fx.em.ISend(p, proto.Addr{Host: "omx-node", EP: 0}, uint64(100+i), srcM[i], 0, n))
			rs = append(rs, fx.em.IRecv(p, uint64(i), ^uint64(0), dstM[i], 0, n))
		}
		for _, r := range rs {
			fx.em.Wait(p, r)
			doneM++
		}
	})
	fx.e.RunUntil(fx.e.Now() + 60*sim.Second)
	if doneO != 2*count || doneM != 2*count {
		t.Fatalf("completed omx=%d/%d mx=%d/%d; blocked: %v",
			doneO, 2*count, doneM, 2*count, fx.e.BlockedProcs())
	}
	for i := 0; i < count; i++ {
		if !hostmem.Equal(srcO[i], dstM[i]) {
			t.Fatalf("omx→mx message %d corrupted", i)
		}
		if !hostmem.Equal(srcM[i], dstO[i]) {
			t.Fatalf("mx→omx message %d corrupted", i)
		}
	}
}
