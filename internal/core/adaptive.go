package core

import (
	"omxsim/internal/cpu"
	"omxsim/internal/proto"
	"omxsim/sim"
)

// The self-tuning transport tier (Config.Adaptive): retransmission
// timeouts derived from per-peer SRTT/RTTVAR estimators, the pull
// window sized per transfer by the shared AIMD controller, and — on
// multi-NIC hosts — bottom-half work steered off saturated cores at
// quantized epochs from CPU-ledger snapshots. Everything here reads
// only simulated state, so adaptive runs stay bit-reproducible.

// adaptiveMinRTO floors the derived retransmission timeout: even on a
// very fast link the timer must ride out the deferred-ack delay and
// self-induced queueing behind a full pull window.
const adaptiveMinRTO = sim.Millisecond

// adaptiveWinMin is the AIMD window's lower bound — the paper's two
// pipelined blocks. The upper bound is adaptiveWinPerLane x lanes.
const (
	adaptiveWinMin     = 2
	adaptiveWinPerLane = 4
)

// Steering epochs: decisions are taken at most once per steerEpoch of
// simulated time, each from the delta of two ledger snapshots. A NIC's
// bottom half moves only when its interrupt core spent nearly the
// whole epoch busy (steerSrcBusyFrac) with a real softirq share
// (steerSrcSoftFrac), contended by other work or a second NIC, and an
// almost-idle target core exists (steerDstBusyFrac).
const (
	steerEpoch       = 5 * sim.Millisecond
	steerSrcBusyFrac = 0.95
	steerSrcSoftFrac = 0.40
	steerShareFrac   = 0.30
	steerDstBusyFrac = 0.25
)

// rtxTimeout returns the retransmission timeout towards peer after
// the given number of consecutive unanswered attempts. Static stacks
// (and adaptive ones whose Config pins RetransmitTimeout) back off
// from the configured base; adaptive stacks back off from the peer's
// estimated RTO — srtt + 4·rttvar with a safety margin — clamped
// between adaptiveMinRTO and the static base, so an untuned channel
// never times out later than the static default and a measured one
// recovers at RTT scale.
func (s *Stack) rtxTimeout(peer proto.Addr, attempts int) sim.Duration {
	base := s.Cfg.RetransmitTimeout
	if s.adaptiveRTO {
		if e := s.rtt[peer]; e != nil {
			base = e.RTO(adaptiveMinRTO, s.Cfg.RetransmitTimeout)
		}
	}
	return proto.Backoff(base, s.Cfg.RetransmitMax, s.Cfg.RetransmitBackoff, attempts)
}

// observeRTT feeds one clean (never-retransmitted) round-trip sample
// into peer's estimator and publishes the new SRTT to the trace
// stream.
func (s *Stack) observeRTT(peer proto.Addr, rtt sim.Duration) {
	if s.rtt == nil || rtt < 0 {
		return
	}
	e := s.rtt[peer]
	if e == nil {
		e = &proto.RTTEstimator{}
		s.rtt[peer] = e
	}
	e.Observe(rtt)
	if s.Trace != nil {
		now := s.H.E.Now()
		s.Trace(TraceEvent{
			Kind: "counter", Frag: -1, Start: now, End: now,
			Name: "srtt", Value: sim.Time(e.SRTT()).Micros(),
		})
	}
}

// pullWindowFor returns (creating on first use) the shared AIMD
// controller for pulls from peer, bounded by the paper's two blocks
// below and four blocks per lane above. The controller is per peer,
// not per transfer: the window a transfer earned persists into the
// next one, so repeated messages converge instead of re-ramping from
// the minimum every time.
func (s *Stack) pullWindowFor(peer proto.Addr) *proto.AIMDWindow {
	aw := s.pullWin[peer]
	if aw == nil {
		aw = proto.NewAIMDWindow(adaptiveWinMin, adaptiveWinPerLane*s.lanes)
		s.pullWin[peer] = aw
	}
	return aw
}

// pullWindow returns a transfer's current window in blocks: the AIMD
// value for adaptive transfers, the configured PullBlocks otherwise.
func (s *Stack) pullWindow(lp *largePull) int {
	if lp.aw != nil {
		return lp.aw.Window()
	}
	return s.Cfg.PullBlocks
}

// traceCwnd publishes a transfer's window to the trace stream when it
// changed since the last sample.
func (s *Stack) traceCwnd(lp *largePull) {
	if s.Trace == nil || lp.aw == nil {
		return
	}
	if w := lp.aw.Window(); w != lp.lastWin {
		lp.lastWin = w
		now := s.H.E.Now()
		s.Trace(TraceEvent{
			Kind: "counter", Frag: -1, Start: now, End: now,
			Name: "cwnd", Value: float64(w),
		})
	}
}

// traceQueue publishes a transfer's outstanding-block queue depth to
// the trace stream.
func (s *Stack) traceQueue(lp *largePull) {
	if s.Trace == nil {
		return
	}
	now := s.H.E.Now()
	s.Trace(TraceEvent{
		Kind: "counter", Frag: -1, Start: now, End: now,
		Name: "pull-queue", Value: float64(len(lp.blocks)),
	})
}

// traceRetransmit publishes one retransmission as a zero-length span.
func (s *Stack) traceRetransmit(seq uint32, block, lane int) {
	if s.Trace == nil {
		return
	}
	now := s.H.E.Now()
	s.Trace(TraceEvent{
		Kind: "retransmit", Frag: -1, Start: now, End: now,
		Seq: seq, Block: block, Lane: lane,
	})
}

// maybeSteer runs the steering decision when the current time has
// crossed the next quantized epoch boundary. It is called from the
// receive callback, so an idle host never schedules anything and the
// simulation still drains to completion.
func (s *Stack) maybeSteer(now sim.Time) {
	if s.steerEvery == 0 || now < s.steerNext {
		return
	}
	s.steerNext = (now/sim.Time(s.steerEvery) + 1) * sim.Time(s.steerEvery)
	cur := make([][cpu.NumCategories]sim.Duration, len(s.H.Sys.Cores))
	for i, c := range s.H.Sys.Cores {
		for _, cat := range cpu.Categories() {
			cur[i][cat] = c.BusyNs(cat)
		}
	}
	prev, prevAt := s.steerPrev, s.steerLastAt
	s.steerPrev, s.steerLastAt = cur, now
	if prev == nil {
		return // first boundary: baseline only
	}
	window := sim.Duration(now - prevAt)
	if window <= 0 {
		return
	}
	// Per-core busy deltas over the epoch. A mid-run ResetAccounting
	// (benchmark phases) makes deltas negative; skip the epoch.
	soft := make([]sim.Duration, len(cur))
	total := make([]sim.Duration, len(cur))
	for i := range cur {
		for _, cat := range cpu.Categories() {
			d := cur[i][cat] - prev[i][cat]
			if d < 0 {
				return
			}
			total[i] += d
			if cat == cpu.BHProc || cat == cpu.BHCopy || cat == cpu.IOATSubmit {
				soft[i] += d
			}
		}
	}
	// Source: the most loaded interrupt core (lowest id on ties), its
	// lanes counted to require real contention before moving one.
	src := -1
	for _, n := range s.H.NICs {
		if c := n.IRQCore; src < 0 || soft[c] > soft[src] || (soft[c] == soft[src] && c < src) {
			src = c
		}
	}
	if src < 0 {
		return
	}
	lanesOnSrc := 0
	for _, n := range s.H.NICs {
		if n.IRQCore == src {
			lanesOnSrc++
		}
	}
	other := total[src] - soft[src]
	saturated := float64(total[src]) >= steerSrcBusyFrac*float64(window)
	softEnough := float64(soft[src]) >= steerSrcSoftFrac*float64(window)
	contended := lanesOnSrc > 1 || float64(other) >= steerShareFrac*float64(window)
	if !saturated || !softEnough || !contended {
		return
	}
	// Target: the least-busy core that serves no NIC already (lowest
	// id on ties) and is close to idle.
	irq := make(map[int]bool, len(s.H.NICs))
	for _, n := range s.H.NICs {
		irq[n.IRQCore] = true
	}
	dst := -1
	for i := range total {
		if irq[i] {
			continue
		}
		if dst < 0 || total[i] < total[dst] {
			dst = i
		}
	}
	if dst < 0 || float64(total[dst]) > steerDstBusyFrac*float64(window) {
		return
	}
	// Move the highest lane served by the saturated core; lane 0 stays
	// anchored whenever any other lane qualifies. The bottom half
	// resolves IRQCore at the start of each run, so the move takes
	// effect at the next interrupt.
	for lane := len(s.H.NICs) - 1; lane >= 0; lane-- {
		if s.H.NICs[lane].IRQCore == src {
			s.H.NICs[lane].IRQCore = dst
			return
		}
	}
}
