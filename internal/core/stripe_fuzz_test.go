package core

import (
	"testing"

	"omxsim/internal/proto"
)

// FuzzStripeReassembly drives the shared reassembly primitives
// (proto.Reassembly, proto.CopyPlan) with adversarial cross-NIC
// fragment interleavings against a shadow model. The input program
// picks a lane count and fragment count, assigns fragments to lanes
// round-robin exactly like the striping transmit path, then replays
// deliveries lane by lane in arbitrary interleaved order — including
// duplicate re-deliveries, the retransmission-races-fresh-data case.
// A shadow set checks:
//
//   - Mark reports a fragment fresh exactly once; duplicates never
//     count twice (Arrived always equals the shadow's cardinality);
//   - Done holds exactly when every fragment arrived, and Missing is
//     always the precise complement bitmap (what a pull NeedMask
//     would re-request);
//   - CopyPlan — merged-prefix and per-fragment flavours — covers
//     exactly the bytes of the arrived fragments clipped to the
//     destination limit: no overlap, no hole mis-copied, nothing
//     beyond the limit, regardless of where the holes are.
//
// The committed seed corpus (testdata/fuzz/FuzzStripeReassembly)
// runs as plain tests in the fast CI job, like FuzzReliabilityWindow.
func FuzzStripeReassembly(f *testing.F) {
	f.Add([]byte{})
	// 2 lanes, 8 frags, in-order delivery on alternating lanes.
	f.Add([]byte{1, 7, 0, 1, 0, 1, 0, 1, 0, 1})
	// 4 lanes, 16 frags, one lane drained completely first (maximum
	// skew), then duplicates on another.
	f.Add([]byte{3, 15, 0, 0, 0, 0, 1, 1, 0x81, 0x89, 2, 3, 2, 3})
	// 3 lanes, 64 frags, interleaving with dup replays sprinkled in.
	long := []byte{2, 63}
	for i := 0; i < 96; i++ {
		long = append(long, byte(i*5+i%3), byte(0x80|i*7))
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		lanes, frags := 1, 1
		var limit int
		if len(data) > 0 {
			lanes = 1 + int(data[0])%4
		}
		if len(data) > 1 {
			frags = 1 + int(data[1])%64
		}
		const fragSize = 8
		if len(data) > 2 {
			limit = int(data[2]) * (frags*fragSize + fragSize) / 256
		} else {
			limit = frags * fragSize
		}

		// Per-lane FIFOs of undelivered fragments (round-robin lane
		// assignment, as the transmit path stripes them) plus the
		// already-delivered list each lane can replay duplicates from.
		queues := make([][]int, lanes)
		replayable := make([][]int, lanes)
		for frag := 0; frag < frags; frag++ {
			queues[frag%lanes] = append(queues[frag%lanes], frag)
		}

		r := proto.NewReassembly(frags)
		shadow := make(map[int]bool)

		deliver := func(frag int) {
			fresh := r.Mark(frag)
			if fresh == shadow[frag] {
				t.Fatalf("Mark(%d) fresh=%v, shadow delivered=%v", frag, fresh, shadow[frag])
			}
			shadow[frag] = true
		}

		var ops []byte
		if len(data) > 3 {
			ops = data[3:]
		}
		for _, op := range ops {
			lane := int(op) % lanes
			if op&0x80 != 0 && len(replayable[lane]) > 0 {
				// Retransmitted duplicate of something this lane
				// already delivered.
				deliver(replayable[lane][int(op>>3)%len(replayable[lane])])
			} else if len(queues[lane]) > 0 {
				frag := queues[lane][0]
				queues[lane] = queues[lane][1:]
				replayable[lane] = append(replayable[lane], frag)
				deliver(frag)
			}

			// Standing invariants against the shadow.
			if r.Arrived != len(shadow) {
				t.Fatalf("Arrived %d != shadow %d", r.Arrived, len(shadow))
			}
			if r.Done() != (len(shadow) == frags) {
				t.Fatalf("Done %v with %d/%d delivered", r.Done(), len(shadow), frags)
			}
			for frag := 0; frag < frags; frag++ {
				gotBit := r.Got&(uint64(1)<<uint(frag)) != 0
				if gotBit != shadow[frag] {
					t.Fatalf("Got bit %d = %v, shadow %v", frag, gotBit, shadow[frag])
				}
				missBit := r.Missing()&(uint64(1)<<uint(frag)) != 0
				if missBit == shadow[frag] {
					t.Fatalf("Missing bit %d = %v, shadow delivered=%v", frag, missBit, shadow[frag])
				}
			}
		}

		// The copy plans must move exactly the arrived bytes within
		// the limit — both the merged-prefix flavour (Open-MX's claim
		// fast path) and the per-fragment one (mxoe's).
		want := make([]bool, frags*fragSize)
		for frag := range shadow {
			for o := frag * fragSize; o < (frag+1)*fragSize && o < limit; o++ {
				want[o] = true
			}
		}
		for _, merge := range []bool{true, false} {
			covered := make([]bool, frags*fragSize)
			for _, run := range proto.CopyPlan(r.Got, r.Arrived, fragSize, limit, merge) {
				if run.N <= 0 || run.Off < 0 || run.Off+run.N > limit {
					t.Fatalf("merge=%v: run %+v outside destination limit %d", merge, run, limit)
				}
				for o := run.Off; o < run.Off+run.N; o++ {
					if covered[o] {
						t.Fatalf("merge=%v: byte %d copied twice", merge, o)
					}
					covered[o] = true
				}
			}
			for o := range want {
				if covered[o] != want[o] {
					t.Fatalf("merge=%v: byte %d covered=%v, want %v (got=%#x arrived=%d limit=%d)",
						merge, o, covered[o], want[o], r.Got, r.Arrived, limit)
				}
			}
		}
	})
}
