package core

import (
	"testing"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

func TestAutoTuneMatchesEmpiricalThresholds(t *testing.T) {
	p := platform.Clovertown()
	minFrag, minMsg := AutoTune(p)
	// The paper chose 1 kB / 64 kB empirically; auto-tuning from the
	// same hardware numbers should land in the same decade.
	if minFrag < 512 || minFrag > 4096 {
		t.Errorf("auto-tuned min fragment = %d, paper chose 1024", minFrag)
	}
	if minMsg < 32*1024 || minMsg > 256*1024 {
		t.Errorf("auto-tuned min message = %d, paper chose 65536", minMsg)
	}
	cfg := AutoTuned(p)
	if !cfg.IOAT || cfg.IOATMinFrag != minFrag || cfg.IOATMinMsg != minMsg {
		t.Errorf("AutoTuned config inconsistent: %+v", cfg)
	}
}

func TestProbeThresholdsWithin2xOfPaper(t *testing.T) {
	// The paper fixes the eager→rendezvous switch and the local
	// memcpy→I/OAT switch at 32 kB each; the probe must recover both
	// from the Clovertown cost curves within a factor of two.
	th := ProbeThresholds(platform.Clovertown())
	const paper = 32 * 1024
	if th.LargeThreshold < paper/2 || th.LargeThreshold > paper*2 {
		t.Errorf("probed LargeThreshold = %d, want within 2x of %d", th.LargeThreshold, paper)
	}
	if th.ShmIOATThreshold < paper/2 || th.ShmIOATThreshold > paper*2 {
		t.Errorf("probed ShmIOATThreshold = %d, want within 2x of %d", th.ShmIOATThreshold, paper)
	}
	// Thresholds are page multiples (the unit the driver pins).
	p := platform.Clovertown()
	if th.LargeThreshold%p.PageSize != 0 || th.ShmIOATThreshold%p.PageSize != 0 {
		t.Errorf("thresholds not page multiples: %+v", th)
	}
	cfg := AutoTuned(p)
	if cfg.LargeThreshold != th.LargeThreshold || cfg.ShmIOATThreshold != th.ShmIOATThreshold {
		t.Errorf("AutoTuned did not adopt probed thresholds: %+v vs %+v", cfg, th)
	}
}

func TestLargeThresholdClampedToEagerCapacity(t *testing.T) {
	// The eager path's dedup/assembly bitmaps are 64 bits wide, so a
	// threshold beyond 64 fragments must be clamped — past it a
	// retransmitted high fragment would leak ring slots and corrupt
	// reassembly.
	pr := newPair(t, Config{LargeThreshold: 1 << 20}, Config{LargeThreshold: 1 << 20})
	if got := pr.sa.Cfg.LargeThreshold; got != maxEagerBytes {
		t.Fatalf("LargeThreshold = %d, want clamped to %d", got, maxEagerBytes)
	}
	// A message at the clamped threshold still moves eagerly and
	// verifies end to end (64 fragments, full bitmap).
	sendRecv(t, pr, maxEagerBytes)
	if pr.sa.Stats.RndvSent != 0 {
		t.Fatalf("%d-byte message used rendezvous below threshold", maxEagerBytes)
	}
}

func TestAutoTuneKnobAppliesAtAttach(t *testing.T) {
	p := platform.Clovertown()
	th := ProbeThresholds(p)
	pr := newPair(t, Config{IOAT: true, AutoTune: true}, Config{IOAT: true, AutoTune: true})
	got := pr.sa.Cfg
	if got.LargeThreshold != th.LargeThreshold || got.ShmIOATThreshold != th.ShmIOATThreshold ||
		got.IOATMinFrag != th.IOATMinFrag || got.IOATMinMsg != th.IOATMinMsg {
		t.Errorf("AutoTune knob: attached config %+v, probe %+v", got, th)
	}
	// The tuned stack still moves bytes correctly.
	sendRecv(t, pr, 1<<20)

	// Explicitly set thresholds win over the probe.
	pr2 := newPair(t, Config{IOAT: true, AutoTune: true, LargeThreshold: 8 << 10},
		Config{IOAT: true, AutoTune: true})
	if pr2.sa.Cfg.LargeThreshold != 8<<10 {
		t.Errorf("explicit LargeThreshold overridden by autotune: %d", pr2.sa.Cfg.LargeThreshold)
	}
	if pr2.sa.Cfg.ShmIOATThreshold != th.ShmIOATThreshold {
		t.Errorf("unset threshold not tuned: %d", pr2.sa.Cfg.ShmIOATThreshold)
	}
}

func TestHybridWarmupStillDeliversAndWarmsCache(t *testing.T) {
	cfg := Config{IOAT: true, HybridWarmupBytes: 64 * 1024}
	pr := newPair(t, cfg, cfg)
	n := 1 << 20
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	src.Fill(0x66)
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 1, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 1, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.run(t)
	if !hostmem.Equal(src, dst) {
		t.Fatal("hybrid path corrupted payload")
	}
	// Head copied by CPU (BHCopy memcpy time charged), tail by I/OAT.
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("tail not offloaded")
	}
	bh := pr.sb.H.Sys.BusyByCategory()[cpu.BHCopy]
	// 64 kB at the DMA-cold rate ≈ 48 µs of memcpy must appear, well
	// above pure submission costs (< 10 µs for 128 frags).
	if bh < 40*sim.Microsecond {
		t.Fatalf("BHCopy = %v; hybrid head does not seem memcpy'd", bh)
	}
}

func TestHybridFullMessageUnderWarmup(t *testing.T) {
	// Message smaller than the warmup window: everything goes through
	// memcpy, no descriptors at all.
	cfg := Config{IOAT: true, IOATMinMsg: 40 * 1024, HybridWarmupBytes: 1 << 20}
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 64*1024)
	if pr.sb.Stats.IOATSubmits != 0 {
		t.Fatalf("submitted %d descriptors despite full-warmup window", pr.sb.Stats.IOATSubmits)
	}
}

func TestPredictiveSleepCutsShmCPU(t *testing.T) {
	run := func(sleep bool) (sim.Duration, sim.Time) {
		fx := newLocal(t, Config{IOATShm: true, PredictiveSleep: sleep}, 0, 4)
		n := 4 << 20
		src := fx.s.H.Alloc(n)
		dst := fx.s.H.Alloc(n)
		src.Fill(1)
		var done sim.Time
		fx.e.Go("recv", func(p *sim.Proc) {
			r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
			fx.e1.Wait(p, r)
			done = p.Now()
		})
		fx.e.Go("send", func(p *sim.Proc) {
			r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
			fx.e0.Wait(p, r)
		})
		fx.e.RunUntil(sim.Second)
		if done == 0 {
			t.Fatal("transfer did not finish")
		}
		if !hostmem.Equal(src, dst) {
			t.Fatal("corrupted")
		}
		return fx.s.H.Sys.BusyByCategory()[cpu.DriverCmd], done
	}
	busyPoll, latPoll := run(false)
	busySleep, latSleep := run(true)
	// The copy takes ≈1.8 ms; busy-polling burns that on the CPU,
	// predictive sleep must cut it by an order of magnitude.
	if busySleep > busyPoll/5 {
		t.Errorf("predictive sleep CPU = %v, busy-poll = %v; want ≥5× reduction", busySleep, busyPoll)
	}
	// Latency must not regress noticeably.
	if float64(latSleep) > float64(latPoll)*1.05 {
		t.Errorf("latency regressed: %v -> %v", latPoll, latSleep)
	}
}

func TestStripingSpeedsUpShmCopy(t *testing.T) {
	run := func(stripe int) sim.Time {
		fx := newLocal(t, Config{IOATShm: true, StripeChannels: stripe}, 0, 4)
		n := 8 << 20
		src := fx.s.H.Alloc(n)
		dst := fx.s.H.Alloc(n)
		src.Fill(2)
		var done sim.Time
		fx.e.Go("recv", func(p *sim.Proc) {
			r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
			fx.e1.Wait(p, r)
			done = p.Now()
		})
		fx.e.Go("send", func(p *sim.Proc) {
			r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
			fx.e0.Wait(p, r)
		})
		fx.e.RunUntil(sim.Second)
		if done == 0 {
			t.Fatal("transfer did not finish")
		}
		if !hostmem.Equal(src, dst) {
			t.Fatal("corrupted")
		}
		return done
	}
	one := run(1)
	four := run(4)
	gain := float64(one)/float64(four) - 1
	// Reference [22]: up to ≈40 % from using all channels; our
	// aggregate cap is 3.4 vs 3.0... single-channel effective ≈2.4,
	// so expect ≈25–45 %.
	if gain < 0.2 || gain > 0.5 {
		t.Errorf("4-channel striping gain = %.0f%%, want ≈40%%", gain*100)
	}
}

func TestAutoTunedConfigWorksEndToEnd(t *testing.T) {
	p := platform.Clovertown()
	cfg := AutoTuned(p)
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 1<<20)
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("auto-tuned config never offloaded")
	}
}
