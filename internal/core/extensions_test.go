package core

import (
	"testing"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

func TestAutoTuneMatchesEmpiricalThresholds(t *testing.T) {
	p := platform.Clovertown()
	minFrag, minMsg := AutoTune(p)
	// The paper chose 1 kB / 64 kB empirically; auto-tuning from the
	// same hardware numbers should land in the same decade.
	if minFrag < 512 || minFrag > 4096 {
		t.Errorf("auto-tuned min fragment = %d, paper chose 1024", minFrag)
	}
	if minMsg < 32*1024 || minMsg > 256*1024 {
		t.Errorf("auto-tuned min message = %d, paper chose 65536", minMsg)
	}
	cfg := AutoTuned(p)
	if !cfg.IOAT || cfg.IOATMinFrag != minFrag || cfg.IOATMinMsg != minMsg {
		t.Errorf("AutoTuned config inconsistent: %+v", cfg)
	}
}

func TestHybridWarmupStillDeliversAndWarmsCache(t *testing.T) {
	cfg := Config{IOAT: true, HybridWarmupBytes: 64 * 1024}
	pr := newPair(t, cfg, cfg)
	n := 1 << 20
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	src.Fill(0x66)
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 1, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 1, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.run(t)
	if !hostmem.Equal(src, dst) {
		t.Fatal("hybrid path corrupted payload")
	}
	// Head copied by CPU (BHCopy memcpy time charged), tail by I/OAT.
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("tail not offloaded")
	}
	bh := pr.sb.H.Sys.BusyByCategory()[cpu.BHCopy]
	// 64 kB at the DMA-cold rate ≈ 48 µs of memcpy must appear, well
	// above pure submission costs (< 10 µs for 128 frags).
	if bh < 40*sim.Microsecond {
		t.Fatalf("BHCopy = %v; hybrid head does not seem memcpy'd", bh)
	}
}

func TestHybridFullMessageUnderWarmup(t *testing.T) {
	// Message smaller than the warmup window: everything goes through
	// memcpy, no descriptors at all.
	cfg := Config{IOAT: true, IOATMinMsg: 40 * 1024, HybridWarmupBytes: 1 << 20}
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 64*1024)
	if pr.sb.Stats.IOATSubmits != 0 {
		t.Fatalf("submitted %d descriptors despite full-warmup window", pr.sb.Stats.IOATSubmits)
	}
}

func TestPredictiveSleepCutsShmCPU(t *testing.T) {
	run := func(sleep bool) (sim.Duration, sim.Time) {
		fx := newLocal(t, Config{IOATShm: true, PredictiveSleep: sleep}, 0, 4)
		n := 4 << 20
		src := fx.s.H.Alloc(n)
		dst := fx.s.H.Alloc(n)
		src.Fill(1)
		var done sim.Time
		fx.e.Go("recv", func(p *sim.Proc) {
			r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
			fx.e1.Wait(p, r)
			done = p.Now()
		})
		fx.e.Go("send", func(p *sim.Proc) {
			r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
			fx.e0.Wait(p, r)
		})
		fx.e.RunUntil(sim.Second)
		if done == 0 {
			t.Fatal("transfer did not finish")
		}
		if !hostmem.Equal(src, dst) {
			t.Fatal("corrupted")
		}
		return fx.s.H.Sys.BusyByCategory()[cpu.DriverCmd], done
	}
	busyPoll, latPoll := run(false)
	busySleep, latSleep := run(true)
	// The copy takes ≈1.8 ms; busy-polling burns that on the CPU,
	// predictive sleep must cut it by an order of magnitude.
	if busySleep > busyPoll/5 {
		t.Errorf("predictive sleep CPU = %v, busy-poll = %v; want ≥5× reduction", busySleep, busyPoll)
	}
	// Latency must not regress noticeably.
	if float64(latSleep) > float64(latPoll)*1.05 {
		t.Errorf("latency regressed: %v -> %v", latPoll, latSleep)
	}
}

func TestStripingSpeedsUpShmCopy(t *testing.T) {
	run := func(stripe int) sim.Time {
		fx := newLocal(t, Config{IOATShm: true, StripeChannels: stripe}, 0, 4)
		n := 8 << 20
		src := fx.s.H.Alloc(n)
		dst := fx.s.H.Alloc(n)
		src.Fill(2)
		var done sim.Time
		fx.e.Go("recv", func(p *sim.Proc) {
			r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
			fx.e1.Wait(p, r)
			done = p.Now()
		})
		fx.e.Go("send", func(p *sim.Proc) {
			r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
			fx.e0.Wait(p, r)
		})
		fx.e.RunUntil(sim.Second)
		if done == 0 {
			t.Fatal("transfer did not finish")
		}
		if !hostmem.Equal(src, dst) {
			t.Fatal("corrupted")
		}
		return done
	}
	one := run(1)
	four := run(4)
	gain := float64(one)/float64(four) - 1
	// Reference [22]: up to ≈40 % from using all channels; our
	// aggregate cap is 3.4 vs 3.0... single-channel effective ≈2.4,
	// so expect ≈25–45 %.
	if gain < 0.2 || gain > 0.5 {
		t.Errorf("4-channel striping gain = %.0f%%, want ≈40%%", gain*100)
	}
}

func TestAutoTunedConfigWorksEndToEnd(t *testing.T) {
	p := platform.Clovertown()
	cfg := AutoTuned(p)
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 1<<20)
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("auto-tuned config never offloaded")
	}
}
