package core

import (
	"omxsim/internal/proto"
)

// Reliability-window primitives shared by the receive dedup path and
// the cumulative-ack machinery. Sequence numbers are 32-bit and wrap:
// all comparisons use serial-number arithmetic (RFC 1982 style), so a
// channel that has carried 2^32 messages keeps deduplicating and
// acking correctly across the wraparound. These methods are pure
// state-machine transitions — no simulated time, no I/O — and are the
// surface the reliability fuzz target drives.

// nextTxSeq issues the channel's next message sequence (skipping the
// "no ack" sentinel 0 on wraparound; see proto.NextSeq).
func (tc *txChan) nextTxSeq() uint32 { return proto.NextSeq(&tc.nextSeq) }

// isDup reports whether seq was already fully received on the
// channel: covered by the cumulative window or individually recorded
// ahead of it. Retransmissions of such sequences carry no new data
// and must only refresh the ack.
func (c *rxChan) isDup(seq uint32) bool { return c.win.IsDup(seq) }

// markComplete records seq as fully received and advances the
// cumulative edge over any contiguous run it completes. The
// per-fragment bitmap retires with it: isDup covers the whole
// message from here on.
func (c *rxChan) markComplete(seq uint32) {
	c.win.MarkComplete(seq)
	delete(c.fragSeen, seq)
}

// fragSeenBefore reports whether fragment fragID of message seq was
// already accepted — the driver-side duplicate check that keeps
// retransmitted fragments from consuming ring slots or queuing
// events the library might never drain.
func (c *rxChan) fragSeenBefore(seq uint32, fragID int) bool {
	return c.fragSeen[seq]&(uint64(1)<<uint(fragID)) != 0
}

// markFrag records fragment fragID of message seq as accepted. Only
// accepted fragments are recorded: a fragment dropped for lack of a
// ring slot must stay unseen so its retransmission is let through.
func (c *rxChan) markFrag(seq uint32, fragID int) {
	c.fragSeen[seq] |= uint64(1) << uint(fragID)
}

// applyCumulative advances the channel's cumulative ack to ackSeq and
// returns the sends it completes, oldest first (the caller reads the
// completed Requests, RTT samples and trace spans off them). Stale
// and duplicate acks (not after the current edge in serial
// arithmetic) return nil and change nothing; an ack that does advance
// the edge also resets the retransmission backoff — the peer is
// alive.
func (tc *txChan) applyCumulative(ackSeq uint32) []*eagerSend {
	if ackSeq == 0 || !proto.SeqAfter(ackSeq, tc.ackedSeq) {
		return nil
	}
	tc.ackedSeq = ackSeq
	tc.rtxAttempts = 0
	acked, keep := proto.TrimAcked(tc.unacked, func(es *eagerSend) uint32 { return es.seq }, ackSeq)
	tc.unacked = keep
	return acked
}
