package core

import (
	"testing"

	"omxsim/internal/proto"
)

// FuzzReliabilityWindow drives the reliability window and cumulative
// ack state machines (reliability.go) with an arbitrary operation
// program, starting just below the 32-bit sequence wraparound so
// every run crosses it. Operations: issue a new sequence, deliver an
// issued sequence (possibly again — a retransmission), apply the
// receiver's current cumulative ack, and replay an arbitrary stale
// ack. A shadow model checks the invariants the protocol relies on:
//
//   - a sequence is reported fresh exactly once (duplicates are
//     always flagged, fresh traffic never is);
//   - sequence 0 is never issued (it is the wire's no-ack sentinel);
//   - the cumulative edge only covers delivered sequences;
//   - acks complete each send exactly once, in serial order, and
//     stale or duplicate acks complete nothing;
//   - every unacked send stays strictly after the acked edge.
//
// The committed seed corpus (testdata/fuzz/FuzzReliabilityWindow)
// runs as plain tests in the fast CI job.
func FuzzReliabilityWindow(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 2, 0})
	// Issue a window's worth, deliver out of order, ack mid-stream.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 3, 1, 1, 1, 0, 2, 0, 1, 2, 2, 0})
	// Duplicate deliveries and stale acks.
	f.Add([]byte{0, 0, 1, 0, 1, 0, 2, 0, 2, 0, 3, 7, 3, 0, 0, 0, 1, 1, 1, 1})
	// Long run: march the window well past the wraparound.
	long := make([]byte, 0, 512)
	for i := 0; i < 128; i++ {
		long = append(long, 0, 0, 1, byte(i), 2, 0, 3, byte(i*3))
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		const base = uint32(0xFFFFFF80) // 128 sequences before wrap
		rx := &rxChan{
			win:      proto.NewWindowAt(base),
			asm:      make(map[uint32]*assembly),
			fragSeen: make(map[uint32]uint64),
		}
		tx := &txChan{nextSeq: base, ackedSeq: base}

		delivered := make(map[uint32]bool)
		ackedReq := make(map[*Request]bool)
		var issued []uint32
		var ackValues []uint32 // cumulative edges seen, for stale replay

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, data[i+1]
			switch op {
			case 0: // sender issues a new message
				seq := tx.nextTxSeq()
				if seq == 0 {
					t.Fatal("sequence 0 issued")
				}
				tx.unacked = append(tx.unacked, &eagerSend{seq: seq, req: &Request{}})
				issued = append(issued, seq)
			case 1: // deliver an issued sequence (dup if re-delivered)
				if len(issued) == 0 {
					continue
				}
				seq := issued[int(arg)%len(issued)]
				wasDup := rx.isDup(seq)
				if wasDup != delivered[seq] {
					t.Fatalf("isDup(%d) = %v, model says delivered=%v", seq, wasDup, delivered[seq])
				}
				if !wasDup {
					rx.markComplete(seq)
					delivered[seq] = true
					if !rx.isDup(seq) {
						t.Fatalf("seq %d not dup immediately after completion", seq)
					}
				}
			case 2: // receiver acks its current cumulative edge
				edge := rx.win.Edge()
				ackValues = append(ackValues, edge)
				done := tx.applyCumulative(edge)
				for _, es := range done {
					if ackedReq[es.req] {
						t.Fatal("request completed twice")
					}
					ackedReq[es.req] = true
				}
				if len(done) > 0 && tx.ackedSeq != edge {
					t.Fatalf("ackedSeq %d after applying edge %d", tx.ackedSeq, edge)
				}
			case 3: // replay an old ack (stale/duplicate)
				if len(ackValues) == 0 {
					continue
				}
				old := ackValues[int(arg)%len(ackValues)]
				if !proto.SeqAfter(old, tx.ackedSeq) {
					if done := tx.applyCumulative(old); done != nil {
						t.Fatalf("stale ack %d (edge %d) completed %d sends", old, tx.ackedSeq, len(done))
					}
				}
			}
			// Standing invariants.
			for _, es := range tx.unacked {
				if !proto.SeqAfter(es.seq, tx.ackedSeq) {
					t.Fatalf("unacked seq %d not after acked edge %d", es.seq, tx.ackedSeq)
				}
			}
			if !rx.isDup(rx.win.Edge()) && rx.win.Edge() != base {
				t.Fatalf("cumulative edge %d not covered by its own window", rx.win.Edge())
			}
		}
		// The cumulative edge must cover only delivered sequences:
		// walk back from the edge to the base.
		for s := rx.win.Edge(); s != base; s-- {
			if s == 0 {
				continue // skipped sentinel
			}
			if !delivered[s] {
				t.Fatalf("edge %d covers undelivered seq %d", rx.win.Edge(), s)
			}
		}
	})
}
