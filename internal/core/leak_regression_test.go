package core

import "testing"

// TestRingSlotLeakRegression replays a seed that once leaked a ring
// slot: a retransmitted fragment of a still-assembling message
// arrived in the bottom half moments after the receiving process's
// last Wait drained the event queue; the duplicate consumed a slot
// and queued an event nobody would ever process. The driver-side
// per-fragment bitmap (rxChan.fragSeen) now rejects it before it can
// touch the ring.
func TestRingSlotLeakRegression(t *testing.T) {
	if !propertyStressRun(t, 4172331362154327243) {
		t.Fatal("seed regressed")
	}
}
