package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

func newHost(e *sim.Engine, p *platform.Platform, name string) *host.Host {
	return host.New(e, p, name)
}

// pair is a two-host test fixture with one endpoint per host.
type pair struct {
	e        *sim.Engine
	p        *platform.Platform
	sa, sb   *Stack
	epA, epB *Endpoint
}

func newPair(t *testing.T, cfgA, cfgB Config) *pair {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	ha := newHost(e, p, "hostA")
	hb := newHost(e, p, "hostB")
	ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
	ha.NIC.SetHose(ab)
	hb.NIC.SetHose(ba)
	sa := Attach(ha, cfgA)
	sb := Attach(hb, cfgB)
	pr := &pair{e: e, p: p, sa: sa, sb: sb}
	pr.epA = sa.OpenEndpoint(0, 2)
	pr.epB = sb.OpenEndpoint(0, 2)
	t.Cleanup(e.Close)
	return pr
}

// run drives the engine and fails the test on deadlock.
func (pr *pair) run(t *testing.T) {
	t.Helper()
	pr.e.RunUntil(5 * sim.Second)
	if n := len(pr.e.BlockedProcs()); n > 2 { // the two NIC BH loops always wait
		t.Fatalf("deadlock: blocked procs %v", pr.e.BlockedProcs())
	}
}

// sendRecv moves n bytes A→B and checks integrity; returns the
// simulated half-round time observed by the receiver.
func sendRecv(t *testing.T, pr *pair, n int) {
	t.Helper()
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	src.Fill(0x5A)
	doneB := false
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 42, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
		if r.Len != n {
			t.Errorf("recv len = %d, want %d", r.Len, n)
		}
		doneB = true
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 42, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.run(t)
	if !doneB {
		t.Fatalf("recv never completed for n=%d", n)
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("payload corrupted for n=%d", n)
	}
}

func TestTinyMessage(t *testing.T)   { sendRecv(t, newPair(t, Config{}, Config{}), 16) }
func TestSmallMessage(t *testing.T)  { sendRecv(t, newPair(t, Config{}, Config{}), 100) }
func TestMediumMessage(t *testing.T) { sendRecv(t, newPair(t, Config{}, Config{}), 9000) }
func TestMediumMax(t *testing.T)     { sendRecv(t, newPair(t, Config{}, Config{}), 32*1024) }
func TestLargeMessage(t *testing.T)  { sendRecv(t, newPair(t, Config{}, Config{}), 300*1024) }
func TestHugeMessage(t *testing.T)   { sendRecv(t, newPair(t, Config{}, Config{}), 4<<20) }
func TestZeroByteMessage(t *testing.T) {
	sendRecv(t, newPair(t, Config{}, Config{}), 0)
}

func TestLargeMessageWithIOAT(t *testing.T) {
	cfg := Config{IOAT: true}
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 1<<20)
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("no I/OAT submissions on receiver")
	}
	if pr.sb.Stats.CleanupFrees == 0 {
		t.Fatal("cleanup routine never freed skbuffs")
	}
}

func TestIOATBelowThresholdUsesMemcpy(t *testing.T) {
	cfg := Config{IOAT: true} // IOATMinMsg defaults to 64 kB
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 40*1024) // large (>32k) but below I/OAT min message
	if pr.sb.Stats.IOATSubmits != 0 {
		t.Fatalf("I/OAT used below threshold: %d submits", pr.sb.Stats.IOATSubmits)
	}
}

func TestSkipBHCopyStillDeliversBytes(t *testing.T) {
	pr := newPair(t, Config{SkipBHCopy: true}, Config{SkipBHCopy: true})
	sendRecv(t, pr, 1<<20)
}

func TestIOATSyncMediumPath(t *testing.T) {
	cfg := Config{IOATSyncMedium: true}
	pr := newPair(t, cfg, cfg)
	sendRecv(t, pr, 16*1024)
	if pr.sb.Stats.IOATSubmits == 0 {
		t.Fatal("medium fragments not offloaded")
	}
}

func TestUnexpectedEagerThenRecv(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	n := 8192
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	src.Fill(3)
	got := false
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 7, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.e.Go("recv-late", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond) // message arrives unexpected
		r := pr.epB.IRecv(p, 7, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
		got = r.Len == n
	})
	pr.run(t)
	if !got || !hostmem.Equal(src, dst) {
		t.Fatal("unexpected-message path failed")
	}
}

func TestUnexpectedRendezvousThenRecv(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	n := 256 * 1024
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	src.Fill(9)
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 7, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.e.Go("recv-late", func(p *sim.Proc) {
		p.Sleep(2 * sim.Millisecond)
		r := pr.epB.IRecv(p, 7, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.run(t)
	if !hostmem.Equal(src, dst) {
		t.Fatal("unexpected rendezvous corrupted data")
	}
}

func TestMatchingWithMask(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	a := pr.sa.H.Alloc(64)
	b := pr.sa.H.Alloc(64)
	a.Fill(1)
	b.Fill(2)
	dstTagged := pr.sb.H.Alloc(64)
	dstAny := pr.sb.H.Alloc(64)
	var taggedMatch, anyMatch uint64
	pr.e.Go("recv", func(p *sim.Proc) {
		// First recv: match only tag 0xBB00 in the high byte.
		r1 := pr.epB.IRecv(p, 0xBB00, 0xFF00, dstTagged, 0, 64)
		r2 := pr.epB.IRecv(p, 0, 0, dstAny, 0, 64) // wildcard
		pr.epB.Wait(p, r1)
		pr.epB.Wait(p, r2)
		taggedMatch, anyMatch = r1.MatchInfo, r2.MatchInfo
	})
	pr.e.Go("send", func(p *sim.Proc) {
		// 0xAA01 only matches the wildcard; 0xBB77 matches the tagged.
		r1 := pr.epA.ISend(p, pr.epB.Addr(), 0xAA01, a, 0, 64)
		r2 := pr.epA.ISend(p, pr.epB.Addr(), 0xBB77, b, 0, 64)
		pr.epA.Wait(p, r1)
		pr.epA.Wait(p, r2)
	})
	pr.run(t)
	if taggedMatch != 0xBB77 {
		t.Fatalf("tagged recv matched %#x", taggedMatch)
	}
	if anyMatch != 0xAA01 {
		t.Fatalf("wildcard recv matched %#x", anyMatch)
	}
	if dstTagged.Data[0] != b.Data[0] || dstAny.Data[0] != a.Data[0] {
		t.Fatal("payloads crossed")
	}
}

func TestTruncatedReceive(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	src := pr.sa.H.Alloc(1000)
	dst := pr.sb.H.Alloc(400)
	src.Fill(4)
	var got int
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 1, ^uint64(0), dst, 0, 400)
		pr.epB.Wait(p, r)
		got = r.Len
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 1, src, 0, 1000)
		pr.epA.Wait(p, r)
	})
	pr.run(t)
	if got != 400 {
		t.Fatalf("truncated len = %d, want 400", got)
	}
	for i := 0; i < 400; i++ {
		if dst.Data[i] != src.Data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestManyConcurrentMessages(t *testing.T) {
	pr := newPair(t, Config{IOAT: true}, Config{IOAT: true})
	const count = 12
	sizes := []int{16, 200, 5000, 40000, 100000, 16, 9000, 70000, 32, 128, 4096, 300000}
	srcs := make([]*hostmem.Buffer, count)
	dsts := make([]*hostmem.Buffer, count)
	for i := range srcs {
		srcs[i] = pr.sa.H.Alloc(sizes[i])
		dsts[i] = pr.sb.H.Alloc(sizes[i])
		srcs[i].Fill(byte(i + 1))
	}
	pr.e.Go("recv", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, pr.epB.IRecv(p, uint64(i), ^uint64(0), dsts[i], 0, sizes[i]))
		}
		for _, r := range reqs {
			pr.epB.Wait(p, r)
		}
	})
	pr.e.Go("send", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, pr.epA.ISend(p, pr.epB.Addr(), uint64(i), srcs[i], 0, sizes[i]))
		}
		for _, r := range reqs {
			pr.epA.Wait(p, r)
		}
	})
	pr.run(t)
	for i := range srcs {
		if !hostmem.Equal(srcs[i], dsts[i]) {
			t.Fatalf("message %d (size %d) corrupted", i, sizes[i])
		}
	}
}

func TestLossRecoveryLarge(t *testing.T) {
	pr := newPair(t, Config{RetransmitTimeout: 2 * sim.Millisecond},
		Config{RetransmitTimeout: 2 * sim.Millisecond})
	// Drop 10% of frames deterministically, both directions.
	n := 0
	drop := func(f *wire.Frame) bool { n++; return n%10 == 3 }
	pr.sa.H.NIC.Hose().Drop = drop
	pr.sb.H.NIC.Hose().Drop = drop
	sendRecv(t, pr, 1<<20)
	if pr.sb.Stats.PullRetransmits == 0 && pr.sa.Stats.RndvRetransmits == 0 &&
		pr.sb.Stats.DupFrags == 0 && pr.sa.Stats.EagerRetransmits == 0 {
		t.Log("warning: no retransmission was exercised (drops may have missed data frames)")
	}
}

func TestLossRecoveryLargeIOAT(t *testing.T) {
	cfg := Config{IOAT: true, RetransmitTimeout: 2 * sim.Millisecond}
	pr := newPair(t, cfg, cfg)
	n := 0
	pr.sa.H.NIC.Hose().Drop = func(f *wire.Frame) bool { n++; return n%7 == 2 }
	sendRecv(t, pr, 1<<20)
}

func TestLossRecoveryEager(t *testing.T) {
	cfg := Config{RetransmitTimeout: 2 * sim.Millisecond}
	pr := newPair(t, cfg, cfg)
	// Period 5 against 4 fragments per retransmission round, so the
	// dropped position rotates and the transfer converges.
	n := 0
	pr.sa.H.NIC.Hose().Drop = func(f *wire.Frame) bool { n++; return n%5 == 1 }
	sendRecv(t, pr, 16*1024)
	if pr.sa.Stats.EagerRetransmits == 0 {
		t.Fatal("expected eager retransmissions")
	}
}

func TestRegCacheAvoidsRepinning(t *testing.T) {
	cfg := Config{RegCache: true}
	pr := newPair(t, cfg, cfg)
	n := 128 * 1024
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	iters := 5
	pr.e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := pr.epB.IRecv(p, 1, ^uint64(0), dst, 0, n)
			pr.epB.Wait(p, r)
		}
	})
	pr.e.Go("send", func(p *sim.Proc) {
		for i := 0; i < iters; i++ {
			r := pr.epA.ISend(p, pr.epB.Addr(), 1, src, 0, n)
			pr.epA.Wait(p, r)
		}
	})
	pr.run(t)
	// With the cache, the buffer is pinned exactly once per side.
	if !src.Pinned() || !dst.Pinned() {
		t.Fatal("buffers should stay pinned under regcache")
	}
}

func TestWithoutRegCacheUnpins(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	n := 128 * 1024
	src := pr.sa.H.Alloc(n)
	dst := pr.sb.H.Alloc(n)
	sendRecvBufs(t, pr, src, dst, n)
	if src.Pinned() || dst.Pinned() {
		t.Fatal("buffers still pinned without regcache")
	}
}

func sendRecvBufs(t *testing.T, pr *pair, src, dst *hostmem.Buffer, n int) {
	t.Helper()
	src.Fill(0x11)
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 42, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 42, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.run(t)
	if !hostmem.Equal(src, dst) {
		t.Fatal("corrupted")
	}
}

func TestSkbuffPoolBounded(t *testing.T) {
	// The cleanup routine must keep the pending skbuff pool bounded
	// during a very large I/OAT receive (Section III-B).
	cfg := Config{IOAT: true}
	pr := newPair(t, cfg, cfg)
	maxLive := 0
	pr.e.Go("watch", func(p *sim.Proc) {
		for i := 0; i < 4000; i++ {
			p.Sleep(5 * sim.Microsecond)
			if live := pr.sb.H.NIC.SkbsLive(); live > maxLive {
				maxLive = live
			}
		}
	})
	sendRecv(t, pr, 8<<20)
	// Two pipelined blocks of 8 fragments are outstanding; allow a
	// little slack for frames in flight between NIC and BH.
	limit := 2*pr.sa.Cfg.PullBlockFrags + 8
	if maxLive > limit {
		t.Fatalf("skbuff pool grew to %d (> %d): cleanup not bounding memory", maxLive, limit)
	}
	if maxLive == 0 {
		t.Fatal("watcher saw no live skbuffs at all")
	}
}

// --- Local (shared-memory) path ---

type localFixture struct {
	e      *sim.Engine
	s      *Stack
	e0, e1 *Endpoint
}

func newLocal(t *testing.T, cfg Config, core0, core1 int) *localFixture {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	h := newHost(e, p, "host")
	s := Attach(h, cfg)
	t.Cleanup(e.Close)
	return &localFixture{e: e, s: s, e0: s.OpenEndpoint(0, core0), e1: s.OpenEndpoint(1, core1)}
}

func localSendRecv(t *testing.T, fx *localFixture, n int) {
	t.Helper()
	src := fx.s.H.Alloc(n)
	dst := fx.s.H.Alloc(n)
	src.Fill(0x77)
	pr := false
	fx.e.Go("recv", func(p *sim.Proc) {
		r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
		fx.e1.Wait(p, r)
		pr = true
	})
	fx.e.Go("send", func(p *sim.Proc) {
		r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
		fx.e0.Wait(p, r)
	})
	fx.e.RunUntil(sim.Second)
	if !pr {
		t.Fatal("local recv never completed")
	}
	if !hostmem.Equal(src, dst) {
		t.Fatal("local payload corrupted")
	}
}

func TestLocalSmall(t *testing.T)  { localSendRecv(t, newLocal(t, Config{}, 0, 1), 64) }
func TestLocalMedium(t *testing.T) { localSendRecv(t, newLocal(t, Config{}, 0, 1), 16*1024) }
func TestLocalLarge(t *testing.T)  { localSendRecv(t, newLocal(t, Config{}, 0, 1), 4<<20) }

func TestLocalIOAT(t *testing.T) {
	fx := newLocal(t, Config{IOATShm: true}, 0, 4)
	localSendRecv(t, fx, 1<<20)
	if fx.s.Stats.LocalIOATCopies == 0 {
		t.Fatal("local I/OAT copy not used")
	}
}

func TestLocalIOATThreshold(t *testing.T) {
	fx := newLocal(t, Config{IOATShm: true}, 0, 1)
	localSendRecv(t, fx, 8*1024) // below 32k threshold
	if fx.s.Stats.LocalIOATCopies != 0 {
		t.Fatal("local I/OAT used below threshold")
	}
}

func TestLocalUnexpected(t *testing.T) {
	fx := newLocal(t, Config{}, 0, 1)
	n := 64 * 1024
	src := fx.s.H.Alloc(n)
	dst := fx.s.H.Alloc(n)
	src.Fill(0x21)
	fx.e.Go("send", func(p *sim.Proc) {
		r := fx.e0.ISend(p, fx.e1.Addr(), 5, src, 0, n)
		fx.e0.Wait(p, r)
	})
	fx.e.Go("recv-late", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		r := fx.e1.IRecv(p, 5, ^uint64(0), dst, 0, n)
		fx.e1.Wait(p, r)
	})
	fx.e.RunUntil(sim.Second)
	if !hostmem.Equal(src, dst) {
		t.Fatal("unexpected local message corrupted")
	}
}

func TestSelfSend(t *testing.T) {
	fx := newLocal(t, Config{}, 0, 1)
	n := 1024
	src := fx.s.H.Alloc(n)
	dst := fx.s.H.Alloc(n)
	src.Fill(0x44)
	fx.e.Go("self", func(p *sim.Proc) {
		rs := fx.e0.ISend(p, fx.e0.Addr(), 9, src, 0, n)
		rr := fx.e0.IRecv(p, 9, ^uint64(0), dst, 0, n)
		fx.e0.Wait(p, rr)
		fx.e0.Wait(p, rs)
	})
	fx.e.RunUntil(sim.Second)
	if !hostmem.Equal(src, dst) {
		t.Fatal("self-send corrupted")
	}
}

// --- Unit tests for helpers ---

func TestPageChunks(t *testing.T) {
	cases := []struct {
		start, n int
		want     []int
	}{
		{0, 8192, []int{4096, 4096}},
		{0, 4096, []int{4096}},
		{100, 8192, []int{3996, 4096, 100}},
		{4000, 200, []int{96, 104}},
		{0, 1, []int{1}},
		{4095, 2, []int{1, 1}},
		{0, 0, nil},
	}
	for _, c := range cases {
		got := pageChunks(c.start, c.n, 4096)
		if len(got) != len(c.want) {
			t.Fatalf("pageChunks(%d,%d) = %v, want %v", c.start, c.n, got, c.want)
		}
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("pageChunks(%d,%d) = %v, want %v", c.start, c.n, got, c.want)
			}
			sum += got[i]
		}
		if sum != c.n {
			t.Fatalf("chunks don't sum: %v vs %d", got, c.n)
		}
	}
}

// Property: pageChunks conserves length, respects page bounds, and
// every interior chunk is page-aligned on the destination.
func TestPropertyPageChunks(t *testing.T) {
	f := func(start, n uint16) bool {
		s, ln := int(start), int(n)
		chunks := pageChunks(s, ln, 4096)
		sum, pos := 0, s
		for i, c := range chunks {
			if c <= 0 || c > 4096 {
				return false
			}
			if i > 0 && pos%4096 != 0 {
				return false
			}
			sum += c
			pos += c
		}
		return sum == ln
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesSemantics(t *testing.T) {
	if !matches(0xFF, 0xFF, 0xFF) {
		t.Fatal("exact match failed")
	}
	if matches(0xFF, 0xFF, 0xFE) {
		t.Fatal("mismatch accepted")
	}
	if !matches(0, 0, 0xDEADBEEF) {
		t.Fatal("wildcard (mask 0) must match anything")
	}
	if !matches(0x1200, 0xFF00, 0x12AB) {
		t.Fatal("masked match failed")
	}
}

// Property: any size round-trips intact through the full network stack
// with any combination of I/OAT configs.
func TestPropertyAnySizeIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(1 << 19)
		cfg := Config{
			IOAT:           rng.Intn(2) == 0,
			IOATSyncMedium: rng.Intn(2) == 0,
		}
		e := sim.New()
		defer e.Close()
		p := platform.Clovertown()
		ha := newHost(e, p, "A")
		hb := newHost(e, p, "B")
		ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
		ha.NIC.SetHose(ab)
		hb.NIC.SetHose(ba)
		sa, sb := Attach(ha, cfg), Attach(hb, cfg)
		ea, eb := sa.OpenEndpoint(0, 2), sb.OpenEndpoint(0, 2)
		src, dst := ha.Alloc(n), hb.Alloc(n)
		src.Fill(byte(seed))
		ok := false
		e.Go("recv", func(p *sim.Proc) {
			r := eb.IRecv(p, 1, ^uint64(0), dst, 0, n)
			eb.Wait(p, r)
			ok = r.Len == n
		})
		e.Go("send", func(p *sim.Proc) {
			r := ea.ISend(p, eb.Addr(), 1, src, 0, n)
			ea.Wait(p, r)
		})
		e.RunUntil(2 * sim.Second)
		return ok && hostmem.Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// proto sanity used across tests.
func TestFragMath(t *testing.T) {
	if proto.FragsOf(8192) != 1 || proto.FragsOf(8193) != 2 {
		t.Fatal("FragsOf wrong")
	}
	if proto.MediumFragsOf(0) != 1 || proto.MediumFragsOf(128) != 1 || proto.MediumFragsOf(4097) != 2 {
		t.Fatal("MediumFragsOf wrong")
	}
}
