package core

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/sim"
)

// Endpoint is one Open-MX communication endpoint: the user-library
// state (matching lists, eager reassembly, registration cache) plus
// the driver-shared event ring. An endpoint is used by a single
// simulated process, bound to one core.
type Endpoint struct {
	S    *Stack
	ID   int
	Core int // the core the owning process runs on

	// Receive ring: statically pinned kernel pages the bottom half
	// copies eager payloads into, one 4 kiB slot per fragment.
	ring      *hostmem.Buffer
	freeSlots []int

	// Event queue from driver to library.
	evq   []*event
	evSig *sim.Signal

	// Library matching state.
	posted []*Request
	ux     []*uxMsg

	// Per-peer channels.
	txChans map[proto.Addr]*txChan
	rxChans map[proto.Addr]*rxChan
}

// Request is an in-flight send or receive operation.
type Request struct {
	ep     *Endpoint
	isRecv bool
	done   bool

	// Completion information (valid once Done).
	Len        int        // bytes delivered (receives)
	SenderAddr proto.Addr // source of the matched message (receives)
	MatchInfo  uint64     // match value of the message

	// Receive posting.
	match, mask uint64
	buf         *hostmem.Buffer
	off, n      int

	// Send bookkeeping.
	dst proto.Addr
	seq uint32
}

// Done reports whether the operation has completed. Completion is
// driven by the library progress engine (Wait or Progress).
func (r *Request) Done() bool { return r.done }

type evKind int

const (
	evEagerFrag evKind = iota
	evRndv
	evLargeDone
	evSendDone
	evEagerAcked
	evLocalMsg
	evLocalDone
)

type event struct {
	kind    evKind
	src     proto.Addr
	match   uint64
	seq     uint32
	msgLen  int
	fragID  int
	fragCnt int
	offset  int
	slot    int // ring slot holding payload; -1 if none
	dataLen int
	inline  []byte // tiny payload carried in the event itself
	handle  int    // rendezvous sender handle
	req     *Request
	reqs    []*Request // eager sends completed by an ack
	lm      *localMsg
}

type uxKind int

const (
	uxEager uxKind = iota
	uxRndv
	uxLocal
)

type uxMsg struct {
	kind   uxKind
	src    proto.Addr
	match  uint64
	seq    uint32
	msgLen int
	tmp    *hostmem.Buffer // assembled eager payload
	handle int             // rendezvous sender handle
	lm     *localMsg
}

// txChan is the reliability state towards one remote endpoint: unacked
// eager sends, the retransmission timer and its backoff attempt count.
type txChan struct {
	dst         proto.Addr
	nextSeq     uint32
	ackedSeq    uint32
	unacked     []*eagerSend
	rtx         sim.Timer
	rtxAttempts int
}

type eagerSend struct {
	seq    uint32
	req    *Request
	match  uint64
	buf    *hostmem.Buffer
	off, n int
	// sentAt is the first transmission time (the send -> cumulative-ack
	// round trip is an RTT sample); rtxed marks a retransmitted send,
	// never sampled (Karn's rule).
	sentAt sim.Time
	rtxed  bool
}

// rxChan is the receive-side state from one remote endpoint:
// reassembly, cumulative-ack tracking and the deferred-ack timer.
type rxChan struct {
	src proto.Addr
	// win is the shared cumulative completion window (the wire
	// semantics both stacks must agree on live in internal/proto).
	win proto.Window
	asm map[uint32]*assembly
	// fragSeen is the driver-side per-message fragment bitmap:
	// retransmitted duplicates of individual fragments are dropped in
	// the bottom half, before they can consume a ring slot or queue
	// an event the library might never process (entries retire when
	// the message completes and isDup takes over).
	fragSeen    map[uint32]uint64
	lastAckSent uint32
	ackTimer    sim.Timer
}

type assembly struct {
	src     proto.Addr
	seq     uint32
	match   uint64
	msgLen  int
	fragCnt int
	got     uint64
	arrived int
	dst     *Request        // matched posted receive, nil if unexpected
	tmp     *hostmem.Buffer // unexpected storage
}

// OpenEndpoint creates endpoint id bound to the given core. Endpoint
// ids are per host; opening a duplicate id panics.
func (s *Stack) OpenEndpoint(id, coreID int) *Endpoint {
	if _, dup := s.endpoints[id]; dup {
		panic(fmt.Sprintf("openmx: endpoint %d already open on %s", id, s.H.Name))
	}
	ep := &Endpoint{
		S:       s,
		ID:      id,
		Core:    coreID,
		ring:    s.H.Alloc(s.Cfg.RingSlots * proto.MediumFragSize),
		evSig:   sim.NewSignal(),
		txChans: make(map[proto.Addr]*txChan),
		rxChans: make(map[proto.Addr]*rxChan),
	}
	for i := s.Cfg.RingSlots - 1; i >= 0; i-- {
		ep.freeSlots = append(ep.freeSlots, i)
	}
	s.endpoints[id] = ep
	return ep
}

// Addr returns this endpoint's network address.
func (ep *Endpoint) Addr() proto.Addr { return ep.S.addr(ep.ID) }

func (ep *Endpoint) core() *cpu.Core { return ep.S.H.Sys.Core(ep.Core) }

// allocSlot takes a receive-ring slot, or -1 when the ring is full
// (the frame is dropped and retransmission recovers).
func (ep *Endpoint) allocSlot() int {
	if len(ep.freeSlots) == 0 {
		return -1
	}
	s := ep.freeSlots[len(ep.freeSlots)-1]
	ep.freeSlots = ep.freeSlots[:len(ep.freeSlots)-1]
	return s
}

func (ep *Endpoint) freeSlot(i int) { ep.freeSlots = append(ep.freeSlots, i) }

func (ep *Endpoint) slotOff(i int) int { return i * proto.MediumFragSize }

func (ep *Endpoint) txChan(dst proto.Addr) *txChan {
	c := ep.txChans[dst]
	if c == nil {
		c = &txChan{dst: dst}
		ep.txChans[dst] = c
	}
	return c
}

func (ep *Endpoint) rxChan(src proto.Addr) *rxChan {
	c := ep.rxChans[src]
	if c == nil {
		c = &rxChan{
			src:      src,
			win:      proto.NewWindow(),
			asm:      make(map[uint32]*assembly),
			fragSeen: make(map[uint32]uint64),
		}
		ep.rxChans[src] = c
	}
	return c
}

// pushEvent appends a driver→library event and wakes waiters. Callers
// charge the event-write cost themselves.
func (ep *Endpoint) pushEvent(ev *event) {
	ep.evq = append(ep.evq, ev)
	ep.evSig.Broadcast()
}

// pagesSpanned is the page count of an n-byte region (what the
// driver actually pins — not the whole buffer).
func pagesSpanned(n, pageSize int) int64 {
	if n <= 0 {
		return 1
	}
	return int64((n + pageSize - 1) / pageSize)
}

// pinCost returns the driver time to pin the n-byte region of buf,
// honouring the stack's registration cache, and takes the pin
// reference. A cache hit costs nothing; a miss pays PinPerPage over
// the region, plus UnpinPerPage over any region the cache's LRU bound
// forced out to make room.
func (ep *Endpoint) pinCost(buf *hostmem.Buffer, n int) sim.Duration {
	p := ep.S.H.P
	if ep.S.reg != nil {
		pinned, evicted := ep.S.reg.Acquire(buf, n)
		return sim.Duration(pinned*p.PinPerPage + evicted*p.UnpinPerPage)
	}
	buf.Pin()
	return sim.Duration(pagesSpanned(n, p.PageSize) * p.PinPerPage)
}

// unpinCost returns the driver time to release the region after a
// transfer (zero with the registration cache, which defers
// deregistration).
func (ep *Endpoint) unpinCost(buf *hostmem.Buffer, n int) sim.Duration {
	if ep.S.Cfg.RegCache {
		return 0
	}
	buf.Unpin()
	return sim.Duration(pagesSpanned(n, ep.S.H.P.PageSize) * ep.S.H.P.UnpinPerPage)
}

// takeAck returns the piggyback cumulative ack for outgoing traffic to
// dst and disarms any pending explicit-ack timer.
func (ep *Endpoint) takeAck(dst proto.Addr) uint32 {
	c := ep.rxChans[dst]
	if c == nil {
		return 0
	}
	c.ackTimer.Stop()
	c.ackTimer = sim.Timer{}
	c.lastAckSent = c.win.Edge()
	return c.win.Edge()
}

// matches implements MX matching: the receive's masked match value
// must equal the message's masked match value.
func matches(recvMatch, recvMask, msgMatch uint64) bool {
	return recvMatch&recvMask == msgMatch&recvMask
}

// ---------------------------------------------------------------------
// Posting operations (library, called from the owning process).
// ---------------------------------------------------------------------

// ISend starts a send of n bytes at buf[off:] to dst with the given
// match value. It returns immediately; completion is observed through
// Wait/Test. Local destinations take the one-copy shared-memory path;
// messages above the large threshold use the rendezvous pull protocol;
// everything else is sent eagerly.
func (ep *Endpoint) ISend(p *sim.Proc, dst proto.Addr, match uint64, buf *hostmem.Buffer, off, n int) *Request {
	r := &Request{ep: ep, dst: dst, MatchInfo: match, buf: buf, off: off, n: n}
	switch {
	case dst.Host == ep.S.H.Name:
		ep.localSend(p, r)
	case n > ep.S.Cfg.LargeThreshold:
		ep.rndvSend(p, r)
	default:
		ep.eagerSendOp(p, r)
	}
	return r
}

// IRecv posts a receive of up to n bytes into buf[off:] for messages
// whose match value equals match under mask. Unexpected messages that
// already arrived are matched (and consumed) first, in arrival order.
func (ep *Endpoint) IRecv(p *sim.Proc, match, mask uint64, buf *hostmem.Buffer, off, n int) *Request {
	ep.core().RunOn(p, cpu.UserLib, sim.Duration(ep.S.H.P.OMXLibPickupCost))
	r := &Request{ep: ep, isRecv: true, match: match, mask: mask, buf: buf, off: off, n: n}

	// Unexpected queue first (arrival order).
	for i, u := range ep.ux {
		if !matches(match, mask, u.match) {
			continue
		}
		ep.ux = append(ep.ux[:i], ep.ux[i+1:]...)
		switch u.kind {
		case uxEager:
			n := min(u.msgLen, r.n)
			if n > 0 {
				d := ep.S.H.Copy.Memcpy(r.buf, r.off, u.tmp, 0, n, ep.Core)
				ep.core().RunOn(p, cpu.UserLib, d)
			}
			ep.completeRecv(r, u.src, u.match, n)
		case uxRndv:
			ep.startPull(p, r, u)
		case uxLocal:
			ep.localPull(p, r, u.lm)
		}
		return r
	}

	// In-progress unexpected assemblies may be claimed by a new post.
	// Candidate selection must not depend on Go map iteration order:
	// with several matching partial messages (wildcard masks under
	// reordering), the lowest (source, sequence) wins, keeping runs
	// bit-reproducible.
	var claim *assembly
	for _, c := range ep.rxChans {
		for _, a := range c.asm {
			if a.dst == nil && matches(match, mask, a.match) && (claim == nil || claimBefore(a, claim)) {
				claim = a
			}
		}
	}
	if claim != nil {
		claim.dst = r
		if claim.arrived > 0 && claim.tmp != nil {
			ep.claimArrived(p, r, claim.got, claim.arrived, claim.msgLen, claim.tmp)
		}
		claim.tmp = nil
		return r
	}

	ep.posted = append(ep.posted, r)
	return r
}

// claimBefore orders claim candidates deterministically (see
// proto.ClaimBefore).
func claimBefore(a, b *assembly) bool {
	return proto.ClaimBefore(a.src, a.seq, b.src, b.seq)
}

// claimArrived copies the already-arrived fragments of a claimed
// in-progress assembly from its temporary storage into the posted
// receive, following proto.CopyPlan: a contiguous prefix (the
// loss-free case) moves as one memcpy; with holes — retransmission or
// cross-NIC skew still in flight — each arrived fragment is copied at
// its own offset, because a prefix copy would silently drop data that
// arrived beyond the first hole and will never be retransmitted.
func (ep *Endpoint) claimArrived(p *sim.Proc, r *Request, got uint64, arrived, msgLen int, tmp *hostmem.Buffer) {
	limit := min(msgLen, r.n)
	for _, run := range proto.CopyPlan(got, arrived, proto.MediumFragSize, limit, true) {
		d := ep.S.H.Copy.Memcpy(r.buf, r.off+run.Off, tmp, run.Off, run.N, ep.Core)
		ep.core().RunOn(p, cpu.UserLib, d)
	}
}

// Wait blocks p until r completes, running the library progress engine
// (event processing, matching, eager copies) on the endpoint's core.
func (ep *Endpoint) Wait(p *sim.Proc, r *Request) {
	for !r.done {
		if !ep.Progress(p) {
			p.WaitFor(ep.evSig, func() bool { return len(ep.evq) > 0 })
		}
	}
}

// Test reports whether r completed, after a zero-cost progress pass
// over already-queued events.
func (ep *Endpoint) Test(p *sim.Proc, r *Request) bool {
	ep.Progress(p)
	return r.done
}

// Progress drains the endpoint's event queue, charging library CPU
// time per event. It reports whether any event was processed.
func (ep *Endpoint) Progress(p *sim.Proc) bool {
	if len(ep.evq) == 0 {
		return false
	}
	for len(ep.evq) > 0 {
		ev := ep.evq[0]
		ep.evq = ep.evq[1:]
		ep.core().RunOn(p, cpu.UserLib, sim.Duration(ep.S.H.P.OMXLibPickupCost))
		ep.handleEvent(p, ev)
	}
	return true
}

func (ep *Endpoint) handleEvent(p *sim.Proc, ev *event) {
	switch ev.kind {
	case evEagerFrag:
		ep.handleEagerFrag(p, ev)
	case evRndv:
		ep.handleRndv(p, ev)
	case evLargeDone:
		d := ep.unpinCost(ev.req.buf, ev.req.n)
		if d > 0 {
			ep.core().RunOn(p, cpu.DriverCmd, d)
		}
		ev.req.done = true
	case evSendDone:
		d := ep.unpinCost(ev.req.buf, ev.req.n)
		if d > 0 {
			ep.core().RunOn(p, cpu.DriverCmd, d)
		}
		ev.req.done = true
	case evEagerAcked:
		for _, r := range ev.reqs {
			r.done = true
		}
	case evLocalMsg:
		ep.handleLocalMsg(p, ev)
	case evLocalDone:
		ev.req.done = true
	}
}

// handleEagerFrag is the library half of eager reception: dedup,
// match, copy out of the receive ring (the second copy of the paper's
// Figure 2), reassemble, complete.
func (ep *Endpoint) handleEagerFrag(p *sim.Proc, ev *event) {
	c := ep.rxChan(ev.src)
	if c.isDup(ev.seq) {
		// Duplicate of a fully received message that slipped past the
		// driver check (completed between BH and library processing):
		// drop payload, make sure an ack goes out.
		ep.releaseSlot(ev)
		ep.S.Stats.DupFrags++
		ep.forceAck(c)
		return
	}
	a := c.asm[ev.seq]
	if a == nil {
		a = &assembly{src: ev.src, seq: ev.seq, match: ev.match, msgLen: ev.msgLen, fragCnt: ev.fragCnt}
		// Match against posted receives at first sight of the message.
		for i, r := range ep.posted {
			if matches(r.match, r.mask, ev.match) {
				ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
				a.dst = r
				break
			}
		}
		if a.dst == nil && ev.msgLen > 0 {
			a.tmp = ep.S.H.Alloc(ev.msgLen)
		}
		c.asm[ev.seq] = a
	}
	bit := uint64(1) << ev.fragID
	if a.got&bit != 0 {
		ep.releaseSlot(ev)
		ep.S.Stats.DupFrags++
		return
	}
	a.got |= bit
	a.arrived++

	// Copy the payload to its destination (user buffer if matched,
	// temporary storage otherwise).
	dstBuf, dstOff := a.tmp, ev.offset
	limit := ev.msgLen
	if a.dst != nil {
		dstBuf, dstOff = a.dst.buf, a.dst.off+ev.offset
		limit = min(ev.msgLen, a.dst.n)
	}
	n := ev.dataLen
	if ev.offset+n > limit {
		n = limit - ev.offset // truncated receive
	}
	if n > 0 && dstBuf != nil {
		var d sim.Duration
		if ev.inline != nil {
			copy(dstBuf.Data[dstOff:dstOff+n], ev.inline[:n])
			d = ep.S.H.Copy.RawTime(n, ep.S.H.P.MemcpyL2Rate)
			dstBuf.Touch(ep.Core, n)
		} else {
			d = ep.S.H.Copy.Memcpy(dstBuf, dstOff, ep.ring, ep.slotOff(ev.slot), n, ep.Core)
		}
		ep.core().RunOn(p, cpu.UserLib, d)
	}
	ep.releaseSlot(ev)

	if a.arrived == a.fragCnt {
		delete(c.asm, ev.seq)
		c.markComplete(ev.seq)
		if a.dst != nil {
			ep.completeRecv(a.dst, a.src, a.match, min(a.msgLen, a.dst.n))
		} else {
			ep.ux = append(ep.ux, &uxMsg{kind: uxEager, src: a.src, match: a.match, seq: a.seq, msgLen: a.msgLen, tmp: a.tmp})
		}
		ep.scheduleAck(c)
	}
}

func (ep *Endpoint) releaseSlot(ev *event) {
	if ev.slot >= 0 {
		ep.freeSlot(ev.slot)
	}
}

func (ep *Endpoint) completeRecv(r *Request, src proto.Addr, match uint64, n int) {
	r.Len = n
	r.SenderAddr = src
	r.MatchInfo = match
	r.done = true
}

// handleRndv processes a rendezvous request event: record it in the
// channel sequence space (it consumes a sequence number for
// reliability), then match or queue it.
func (ep *Endpoint) handleRndv(p *sim.Proc, ev *event) {
	c := ep.rxChan(ev.src)
	if c.isDup(ev.seq) {
		return // duplicate
	}
	c.markComplete(ev.seq)
	ep.scheduleAck(c)
	u := &uxMsg{kind: uxRndv, src: ev.src, match: ev.match, seq: ev.seq, msgLen: ev.msgLen, handle: ev.handle}
	for i, r := range ep.posted {
		if matches(r.match, r.mask, ev.match) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.startPull(p, r, u)
			return
		}
	}
	ep.ux = append(ep.ux, u)
}

// handleLocalMsg matches an intra-node message or queues it.
func (ep *Endpoint) handleLocalMsg(p *sim.Proc, ev *event) {
	for i, r := range ep.posted {
		if matches(r.match, r.mask, ev.lm.match) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			ep.localPull(p, r, ev.lm)
			return
		}
	}
	ep.ux = append(ep.ux, &uxMsg{kind: uxLocal, src: ev.lm.srcAddr, match: ev.lm.match, msgLen: ev.lm.n, lm: ev.lm})
}

// ---------------------------------------------------------------------
// Send paths (library side).
// ---------------------------------------------------------------------

// eagerSendOp sends tiny/small/medium messages: a system call, then
// per-fragment zero-copy skbuff builds in the driver. Completion comes
// with the (possibly piggybacked) cumulative ack.
func (ep *Endpoint) eagerSendOp(p *sim.Proc, r *Request) {
	s := ep.S
	tc := ep.txChan(r.dst)
	r.seq = tc.nextTxSeq()
	frags := proto.MediumFragsOf(r.n)
	cost := sim.Duration(s.H.P.SyscallCost + int64(frags)*s.H.P.OMXTxBuildCost)
	ep.core().RunOn(p, cpu.DriverCmd, cost)
	tc.unacked = append(tc.unacked, &eagerSend{seq: r.seq, req: r, match: r.MatchInfo, buf: r.buf, off: r.off, n: r.n, sentAt: p.Now()})
	s.transmitEager(ep, tc, r.seq, r.MatchInfo, r.buf, r.off, r.n)
	s.Stats.EagerSent++
	ep.armEagerRtx(tc)
}

// transmitEager builds and transmits the fragment frames of one eager
// message (also used by retransmission).
func (s *Stack) transmitEager(ep *Endpoint, tc *txChan, seq uint32, match uint64, buf *hostmem.Buffer, off, n int) {
	frags := proto.MediumFragsOf(n)
	ack := ep.takeAck(tc.dst)
	for f := 0; f < frags; f++ {
		fo := f * proto.MediumFragSize
		fl := min(proto.MediumFragSize, n-fo)
		if n <= proto.SmallMax {
			fl = n
		}
		var payload []byte
		if fl > 0 {
			payload = make([]byte, fl)
			copy(payload, buf.Data[off+fo:off+fo+fl])
		}
		// Fragments stripe across NIC lanes (reassembly is bitmap-based
		// and hole-aware, so cross-lane skew cannot corrupt anything).
		s.transmitOn(s.laneOf(seq, f), tc.dst, &proto.Eager{
			Src: ep.Addr(), Dst: tc.dst,
			Match: match, Seq: seq, MsgLen: n,
			FragID: f, FragCount: frags, Offset: fo,
			AckSeq: ack,
		}, payload)
	}
}

// armEagerRtx (re)arms the eager retransmission timer for a channel,
// backing off exponentially while the peer shows no progress (any
// cumulative-ack advance resets the attempt count).
func (ep *Endpoint) armEagerRtx(tc *txChan) {
	if tc.rtx.Pending() || len(tc.unacked) == 0 {
		return
	}
	s := ep.S
	tc.rtx = s.H.E.Schedule(s.rtxTimeout(tc.dst, tc.rtxAttempts), func() {
		tc.rtx = sim.Timer{}
		if len(tc.unacked) == 0 {
			return
		}
		tc.rtxAttempts++
		s.Stats.EagerRetransmits++
		s.traceRetransmit(tc.unacked[0].seq, -1, 0)
		// Rebuild and resend every unacked message; receivers dedup.
		// One timer, one softirq context: the rebuild runs on the
		// primary NIC's interrupt core even though the fragments then
		// re-stripe across lanes (transmitEager recomputes each
		// fragment's lane).
		var build int64
		for _, es := range tc.unacked {
			build += int64(proto.MediumFragsOf(es.n)) * s.H.P.OMXTxBuildCost
		}
		irq := s.H.Sys.Core(s.H.NIC.IRQCore)
		unacked := append([]*eagerSend(nil), tc.unacked...)
		for _, es := range unacked {
			es.rtxed = true // Karn: never sample a retransmitted send
		}
		irq.Exec(cpu.BHProc, sim.Duration(build), func() {
			for _, es := range unacked {
				s.transmitEager(ep, tc, es.seq, es.match, es.buf, es.off, es.n)
			}
		})
		ep.armEagerRtx(tc)
	})
}

// rndvSend starts a large-message send: pin the buffer (registration
// cache permitting), register a sender handle, transmit the
// rendezvous request.
func (ep *Endpoint) rndvSend(p *sim.Proc, r *Request) {
	s := ep.S
	tc := ep.txChan(r.dst)
	r.seq = tc.nextTxSeq()
	cost := sim.Duration(s.H.P.SyscallCost+s.H.P.OMXTxBuildCost) + ep.pinCost(r.buf, r.n)
	ep.core().RunOn(p, cpu.DriverCmd, cost)

	s.nextHandle++
	ls := &largeSend{handle: s.nextHandle, ep: ep, req: r, dst: r.dst, buf: r.buf, off: r.off, n: r.n, seq: r.seq, sentAt: p.Now()}
	s.sends[ls.handle] = ls
	s.transmitRndv(ls)
	s.Stats.RndvSent++
	s.armRndvRtx(ls)
}

func (s *Stack) transmitRndv(ls *largeSend) {
	s.transmitOn(s.laneOf(ls.seq, 0), ls.dst, &proto.RndvRequest{
		Src: ls.ep.Addr(), Dst: ls.dst,
		Match: ls.req.MatchInfo, Seq: ls.seq, MsgLen: ls.n,
		SenderHandle: ls.handle,
		AckSeq:       ls.ep.takeAck(ls.dst),
	}, nil)
}

// armRndvRtx watches a rendezvous send for progress; without any it
// re-sends the request, backing off exponentially until the receiver
// answers (progress resets the backoff).
func (s *Stack) armRndvRtx(ls *largeSend) {
	ls.rtx = s.H.E.Schedule(s.rtxTimeout(ls.dst, ls.attempts), func() {
		if ls.finished {
			return
		}
		if !ls.pulled {
			// The request (or everything since) was lost: resend it.
			ls.attempts++
			s.Stats.RndvRetransmits++
			s.traceRetransmit(ls.seq, -1, s.laneOf(ls.seq, 0))
			s.transmitRndv(ls)
		} else {
			ls.attempts = 0
		}
		ls.pulled = false // expect further progress before next firing
		s.armRndvRtx(ls)
	})
}

// startPull is the receiver-side system call that launches the pull
// protocol once a rendezvous matched: pin the destination, create the
// pull state, request the first pipelined blocks.
func (ep *Endpoint) startPull(p *sim.Proc, r *Request, u *uxMsg) {
	s := ep.S
	n := min(u.msgLen, r.n)
	cost := sim.Duration(s.H.P.SyscallCost) + ep.pinCost(r.buf, n)
	ep.core().RunOn(p, cpu.DriverCmd, cost)

	s.nextHandle++
	lp := &largePull{
		handle: s.nextHandle, ep: ep, req: r,
		src: u.src, senderHandle: u.handle,
		key: rndvKey{src: u.src, dst: ep.ID, seq: u.seq},
		buf: r.buf, off: r.off, n: n,
		frags:  proto.FragsOf(n),
		blocks: make(map[int]*pullBlock),
	}
	lp.numBlocks = (lp.frags + s.Cfg.PullBlockFrags - 1) / s.Cfg.PullBlockFrags
	lp.useIOAT = s.Cfg.IOAT && !s.Cfg.SkipBHCopy && n >= s.Cfg.IOATMinMsg && proto.LargeFragSize >= s.Cfg.IOATMinFrag
	if lp.useIOAT {
		// One DMA channel per NIC lane: a striped message overlaps its
		// lanes' copies on distinct channels (a single-NIC message keeps
		// the paper's one-channel-per-message assignment).
		for i := 0; i < s.lanes; i++ {
			lp.chs = append(lp.chs, s.H.IOAT.PickChannel())
		}
		lp.lastSeq = make([]uint64, s.lanes)
	}
	if s.adaptiveWin {
		lp.aw = s.pullWindowFor(lp.src)
		lp.lastWin = lp.aw.Window()
	}
	lp.startedAt = s.H.E.Now()
	r.MatchInfo = u.match
	r.SenderAddr = u.src
	s.pulls[lp.handle] = lp
	st := s.rndvSeen[lp.key]
	if st == nil {
		st = &rndvState{sender: u.handle}
		s.rndvSeen[lp.key] = st
	}
	st.handle = lp.handle

	for b := 0; b < s.pullWindow(lp) && lp.nextBlock < lp.numBlocks; b++ {
		s.sendPullBlock(lp, lp.nextBlock, 0)
		lp.nextBlock++
	}
}
