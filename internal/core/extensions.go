package core

import (
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/ioat"
	"omxsim/platform"
	"omxsim/sim"
)

// This file implements the paper's Section V/VI "future work" items,
// each behind a Config knob so the ablation benchmarks can quantify
// them:
//
//   - threshold auto-tuning from startup microbenchmarks (AutoTune);
//   - copying the head of a large message with memcpy to warm the
//     target application's cache before switching to I/OAT
//     (Config.HybridWarmupBytes);
//   - predicting synchronous copy completion and sleeping instead of
//     busy-polling (Config.PredictiveSleep), applicable in process
//     context (the shared-memory path — bottom halves cannot sleep);
//   - striping one local copy across multiple DMA channels
//     (Config.StripeChannels; the paper's reference [22] reports
//     ≈+40 % from using all four channels).

// AutoTune derives the I/OAT offload thresholds from the platform's
// copy models, the way Section VI proposes running microbenchmarks at
// startup: the minimum fragment size is where an offloaded chunk
// beats the uncached memcpy of the same chunk, and the minimum
// message size is where the submission overhead of a fragment is
// amortized several times over by the freed CPU time.
func AutoTune(p *platform.Platform) (minFrag, minMsg int) {
	memcpyNs := func(n int) float64 {
		return float64(p.MemcpyCallCost) + float64(n)/float64(p.MemcpyColdRate)/p.DMAColdPenalty
	}
	ioatNs := func(n int) float64 {
		return float64(p.IOATDescSetup) + float64(n)/float64(p.IOATEngineRate)
	}
	submitNs := float64(p.IOATDoorbellCost + p.IOATPerDescSubmit)

	// Smallest chunk the engine moves at least as fast as the CPU
	// would, and whose submission costs less CPU than the copy.
	minFrag = 256
	for ; minFrag <= 64*1024; minFrag *= 2 {
		if ioatNs(minFrag) <= memcpyNs(minFrag) && submitNs < memcpyNs(minFrag) {
			break
		}
	}
	// Offload pays once a message saves at least ~16 fragment copies
	// worth of CPU (amortizing rendezvous and tracking overheads).
	fragSave := memcpyNs(8192) - submitNs
	const targetSaveNs = 100_000 // ≈100 µs of freed CPU per message
	frags := int(targetSaveNs/fragSave) + 1
	minMsg = frags * 8192
	return minFrag, minMsg
}

// AutoTuned returns a configuration whose offload thresholds come
// from AutoTune instead of the paper's empirical constants.
func AutoTuned(p *platform.Platform) Config {
	cfg := Defaults()
	cfg.IOAT = true
	cfg.RegCache = true
	cfg.IOATMinFrag, cfg.IOATMinMsg = AutoTune(p)
	return cfg
}

// predictIOAT estimates how long the engine will take to retire a
// batch of chunk lengths on one idle channel: the Section VI idea of
// benchmarking the hardware to predict completion times.
func (s *Stack) predictIOAT(chunks []int) sim.Duration {
	p := s.H.P
	ns := float64(p.IOATStartLatency)
	for _, c := range chunks {
		ns += float64(p.IOATDescSetup) + float64(c)/float64(p.IOATEngineRate)
	}
	return sim.Duration(ns)
}

// stripedSubmit distributes page chunks of one copy over k channels
// round-robin and returns the per-channel completion sequences.
func (s *Stack) stripedSubmit(dst *hostmem.Buffer, dstOff int, src *hostmem.Buffer, srcOff int, chunks []int, k int) map[*ioat.Channel]uint64 {
	if k < 1 {
		k = 1
	}
	if k > s.H.IOAT.Channels() {
		k = s.H.IOAT.Channels()
	}
	chans := make([]*ioat.Channel, k)
	reqs := make([][]ioat.CopyReq, k)
	for i := range chans {
		chans[i] = s.H.IOAT.PickChannel()
	}
	o := 0
	for i, c := range chunks {
		w := i % k
		reqs[w] = append(reqs[w], ioat.CopyReq{Dst: dst, DstOff: dstOff + o, Src: src, SrcOff: srcOff + o, N: c})
		o += c
	}
	out := make(map[*ioat.Channel]uint64)
	for i, ch := range chans {
		if len(reqs[i]) == 0 {
			continue
		}
		s.Stats.IOATSubmits += int64(len(reqs[i]))
		out[ch] = ch.Submit(reqs[i]...)
	}
	return out
}

// waitStriped blocks the process until every channel's batch retires.
// With PredictiveSleep the process sleeps for the predicted duration
// (CPU idle — the whole point of Section VI's proposal) and only
// busy-polls the residue; otherwise it busy-polls throughout, like
// the paper's implementation.
func (ep *Endpoint) waitStriped(p *sim.Proc, cat cpu.Category, seqs map[*ioat.Channel]uint64, predicted sim.Duration) {
	s := ep.S
	if s.Cfg.PredictiveSleep && predicted > 0 {
		p.Sleep(predicted)
	}
	for ch, seq := range seqs {
		ch, seq := ch, seq
		if ch.Completed() >= seq {
			// One cookie read to observe the completion.
			ep.core().RunOn(p, cat, s.H.IOAT.PollCost())
			continue
		}
		ep.core().RunOnDyn(p, cat, func(finish func(extra sim.Duration)) {
			ch.NotifyAt(seq, func() { finish(s.H.IOAT.PollCost()) })
		})
	}
}
