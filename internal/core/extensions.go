package core

import (
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/ioat"
	"omxsim/platform"
	"omxsim/sim"
)

// This file implements the paper's Section V/VI "future work" items,
// each behind a Config knob so the ablation benchmarks can quantify
// them:
//
//   - threshold auto-tuning from startup microbenchmarks (AutoTune);
//   - copying the head of a large message with memcpy to warm the
//     target application's cache before switching to I/OAT
//     (Config.HybridWarmupBytes);
//   - predicting synchronous copy completion and sleeping instead of
//     busy-polling (Config.PredictiveSleep), applicable in process
//     context (the shared-memory path — bottom halves cannot sleep);
//   - striping one local copy across multiple DMA channels
//     (Config.StripeChannels; the paper's reference [22] reports
//     ≈+40 % from using all four channels).

// Thresholds is the full set of offload/protocol thresholds the
// adaptive autotuner derives from the platform's cost curves. The
// paper fixes all four by hand (Section III/IV: 1 kB fragments, 64 kB
// offload floor, 32 kB rendezvous switch, 32 kB local I/OAT switch);
// ProbeThresholds recovers them from first principles so a different
// modelled platform re-tunes itself.
type Thresholds struct {
	// IOATMinFrag / IOATMinMsg gate the asynchronous receive offload
	// (paper defaults 1 kB / 64 kB).
	IOATMinFrag int
	IOATMinMsg  int
	// LargeThreshold is the eager→rendezvous protocol switch (paper
	// default 32 kB).
	LargeThreshold int
	// ShmIOATThreshold is the local one-copy memcpy→I/OAT switch
	// (paper default 32 kB, Figure 10).
	ShmIOATThreshold int
}

// ProbeThresholds runs the Section VI startup microbenchmarks against
// the platform's cost models and picks every crossover point:
//
//   - IOATMinFrag / IOATMinMsg exactly as AutoTune always has;
//   - LargeThreshold where the rendezvous protocol's fixed costs
//     (request/ack handshake round trip plus destination pinning) are
//     amortized by the copy it saves — eager delivery crosses payload
//     memory twice (NIC ring and then ring→user), the pull protocol
//     once, directly into the pinned destination;
//   - ShmIOATThreshold where a blocking I/OAT copy (start latency,
//     doorbell, per-page descriptor setup, engine rate) overtakes the
//     processor copy of the local one-copy path.
//
// Both new probes scan at page granularity, the unit the driver pins
// and the engine's descriptors address.
func ProbeThresholds(p *platform.Platform) Thresholds {
	t := Thresholds{}
	t.IOATMinFrag, t.IOATMinMsg = AutoTune(p)

	pageNs := func(per int64, n int) float64 {
		return float64(per) * float64((n+p.PageSize-1)/p.PageSize)
	}
	// One-way software latency of a control frame: NIC store-and-DMA on
	// both ends, the wire, interrupt delivery, and the driver's generic
	// + protocol processing of the frame.
	oneWayNs := float64(2*p.NICFixedLatency + p.WirePropagation + p.IRQLatency +
		p.SkbPerFrameCost + p.OMXRecvCallbackCost)
	// Rendezvous handshake: the request travels forward, the first pull
	// request back, plus the receiver's syscall/event bookkeeping.
	handshakeNs := 2*oneWayNs + float64(p.SyscallCost+p.OMXEventCost+p.OMXLibPickupCost)
	// The half-warm processor copy is the yardstick for both probes:
	// the eager ring is constantly reused (ring→user copy), and the
	// typical local one-copy has one side warm.
	halfWarmMemcpyNs := func(n int) float64 {
		return float64(p.MemcpyCallCost) + float64(n)/float64(p.MemcpyHalfWarmRate)
	}
	// Copy the eager path pays on top of the pull path: the ring→user
	// library copy.
	rndvExtraNs := func(n int) float64 {
		return handshakeNs + pageNs(p.PinPerPage, n)
	}
	// The probe is bounded by the eager path's hard capacity (the
	// 64-bit per-message fragment bitmaps): past it, rendezvous is
	// mandatory whatever the cost curves say. Dispatch sends messages
	// *strictly larger* than the threshold through rendezvous, so the
	// threshold is one page below the probed crossover — the largest
	// size where eager still wins.
	t.LargeThreshold = probePages(p, maxEagerBytes, func(n int) bool {
		return rndvExtraNs(n) <= halfWarmMemcpyNs(n)
	}) - p.PageSize

	// Local one-copy: processor memcpy versus a blocking I/OAT copy
	// of page-sized descriptors.
	ioatShmNs := func(n int) float64 {
		return float64(p.IOATStartLatency+p.IOATDoorbellCost) +
			pageNs(p.IOATPerDescSubmit+p.IOATDescSetup, n) +
			float64(n)/float64(p.IOATEngineRate)
	}
	t.ShmIOATThreshold = probePages(p, 16<<20, func(n int) bool {
		return ioatShmNs(n) <= halfWarmMemcpyNs(n)
	})
	return t
}

// probePages returns the smallest page multiple (up to limit) where
// better holds, or limit when it never does.
func probePages(p *platform.Platform, limit int, better func(n int) bool) int {
	for n := p.PageSize; n < limit; n += p.PageSize {
		if better(n) {
			return n
		}
	}
	return limit
}

// AutoTune derives the I/OAT offload thresholds from the platform's
// copy models, the way Section VI proposes running microbenchmarks at
// startup: the minimum fragment size is where an offloaded chunk
// beats the uncached memcpy of the same chunk, and the minimum
// message size is where the submission overhead of a fragment is
// amortized several times over by the freed CPU time.
func AutoTune(p *platform.Platform) (minFrag, minMsg int) {
	memcpyNs := func(n int) float64 {
		return float64(p.MemcpyCallCost) + float64(n)/float64(p.MemcpyColdRate)/p.DMAColdPenalty
	}
	ioatNs := func(n int) float64 {
		return float64(p.IOATDescSetup) + float64(n)/float64(p.IOATEngineRate)
	}
	submitNs := float64(p.IOATDoorbellCost + p.IOATPerDescSubmit)

	// Smallest chunk the engine moves at least as fast as the CPU
	// would, and whose submission costs less CPU than the copy.
	minFrag = 256
	for ; minFrag <= 64*1024; minFrag *= 2 {
		if ioatNs(minFrag) <= memcpyNs(minFrag) && submitNs < memcpyNs(minFrag) {
			break
		}
	}
	// Offload pays once a message saves at least ~16 fragment copies
	// worth of CPU (amortizing rendezvous and tracking overheads).
	fragSave := memcpyNs(8192) - submitNs
	const targetSaveNs = 100_000 // ≈100 µs of freed CPU per message
	frags := int(targetSaveNs/fragSave) + 1
	minMsg = frags * 8192
	return minFrag, minMsg
}

// AutoTuned returns a configuration whose offload and protocol
// thresholds all come from ProbeThresholds instead of the paper's
// empirical constants.
func AutoTuned(p *platform.Platform) Config {
	cfg := Defaults()
	cfg.IOAT = true
	cfg.RegCache = true
	th := ProbeThresholds(p)
	cfg.IOATMinFrag, cfg.IOATMinMsg = th.IOATMinFrag, th.IOATMinMsg
	cfg.LargeThreshold = th.LargeThreshold
	cfg.ShmIOATThreshold = th.ShmIOATThreshold
	return cfg
}

// predictIOAT estimates how long the engine will take to retire a
// batch of chunk lengths on one idle channel: the Section VI idea of
// benchmarking the hardware to predict completion times.
func (s *Stack) predictIOAT(chunks []int) sim.Duration {
	p := s.H.P
	ns := float64(p.IOATStartLatency)
	for _, c := range chunks {
		ns += float64(p.IOATDescSetup) + float64(c)/float64(p.IOATEngineRate)
	}
	return sim.Duration(ns)
}

// stripedSubmit distributes page chunks of one copy over k channels
// round-robin and returns the per-channel completion sequences.
func (s *Stack) stripedSubmit(dst *hostmem.Buffer, dstOff int, src *hostmem.Buffer, srcOff int, chunks []int, k int) map[*ioat.Channel]uint64 {
	if k < 1 {
		k = 1
	}
	if k > s.H.IOAT.Channels() {
		k = s.H.IOAT.Channels()
	}
	chans := make([]*ioat.Channel, k)
	reqs := make([][]ioat.CopyReq, k)
	for i := range chans {
		chans[i] = s.H.IOAT.PickChannel()
	}
	o := 0
	for i, c := range chunks {
		w := i % k
		reqs[w] = append(reqs[w], ioat.CopyReq{Dst: dst, DstOff: dstOff + o, Src: src, SrcOff: srcOff + o, N: c})
		o += c
	}
	out := make(map[*ioat.Channel]uint64)
	for i, ch := range chans {
		if len(reqs[i]) == 0 {
			continue
		}
		s.Stats.IOATSubmits += int64(len(reqs[i]))
		out[ch] = ch.Submit(reqs[i]...)
	}
	return out
}

// waitStriped blocks the process until every channel's batch retires.
// With PredictiveSleep the process sleeps for the predicted duration
// (CPU idle — the whole point of Section VI's proposal) and only
// busy-polls the residue; otherwise it busy-polls throughout, like
// the paper's implementation.
func (ep *Endpoint) waitStriped(p *sim.Proc, cat cpu.Category, seqs map[*ioat.Channel]uint64, predicted sim.Duration) {
	s := ep.S
	if s.Cfg.PredictiveSleep && predicted > 0 {
		p.Sleep(predicted)
	}
	for ch, seq := range seqs {
		ch, seq := ch, seq
		if ch.Completed() >= seq {
			// One cookie read to observe the completion.
			ep.core().RunOn(p, cat, s.H.IOAT.PollCost())
			continue
		}
		ep.core().RunOnDyn(p, cat, func(finish func(extra sim.Duration)) {
			ch.NotifyAt(seq, func() { finish(s.H.IOAT.PollCost()) })
		})
	}
}
