package core

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/sim"
)

// Intra-node communication (Section III-C, Figure 10).
//
// Open-MX routes local messages through the driver with the same
// command/event interface as network messages — the library does not
// even know the peer is local. The transfer itself is ONE copy,
// performed inside a system call directly from the source process's
// pages to the destination process's pages, once the receiver has
// matched. The copy is either a processor memcpy (whose rate depends
// on cache sharing between the two processes — the three curves of
// Figure 10) or, with Config.IOATShm and beyond ShmIOATThreshold, a
// blocking I/OAT copy: submit page descriptors, then busy-poll the
// engine, since the hardware cannot raise a completion interrupt.

// localMsg is a pending intra-node send registered with the driver.
type localMsg struct {
	srcEP   *Endpoint
	srcAddr proto.Addr
	match   uint64
	buf     *hostmem.Buffer
	off, n  int
	sendReq *Request
}

// localSend registers the message with the driver and reports it to
// the destination endpoint's event queue. The send completes when the
// receiver's one-copy finishes.
func (ep *Endpoint) localSend(p *sim.Proc, r *Request) {
	s := ep.S
	dst := s.endpoints[r.dst.EP]
	if dst == nil {
		panic(fmt.Sprintf("openmx: local send to unopened endpoint %d on %s", r.dst.EP, s.H.Name))
	}
	ep.core().RunOn(p, cpu.DriverCmd, sim.Duration(s.H.P.SyscallCost+s.H.P.OMXEventCost))
	lm := &localMsg{
		srcEP: ep, srcAddr: ep.Addr(), match: r.MatchInfo,
		buf: r.buf, off: r.off, n: r.n, sendReq: r,
	}
	s.Stats.LocalMsgs++
	dst.pushEvent(&event{kind: evLocalMsg, lm: lm})
}

// localPull performs the one-copy transfer in the receiving process's
// system-call context, then completes both sides.
func (ep *Endpoint) localPull(p *sim.Proc, r *Request, lm *localMsg) {
	s := ep.S
	n := min(lm.n, r.n)
	ep.core().RunOn(p, cpu.DriverCmd, sim.Duration(s.H.P.SyscallCost))

	if s.Cfg.IOATShm && n >= s.Cfg.ShmIOATThreshold {
		// Blocking I/OAT copy: page-chunk descriptors, then wait.
		// The paper's implementation uses one channel and busy-polls
		// ("we rely on busy polling of the I/OAT hardware with no
		// overlap for now", Section IV-C); Config.StripeChannels and
		// Config.PredictiveSleep enable its Section V/VI extensions.
		chunks := pageChunks(r.off, n, s.H.P.PageSize)
		// The whole local transfer happens inside one system call, so
		// its submission cost is accounted as driver time (the
		// cpu.IOATSubmit ledger tracks bottom-half submissions, whose
		// softirq priority must not apply in process context).
		ep.core().RunOn(p, cpu.DriverCmd, s.H.IOAT.SubmitCost(len(chunks)))
		k := max(1, s.Cfg.StripeChannels)
		seqs := s.stripedSubmit(r.buf, r.off, lm.buf, lm.off, chunks, k)
		s.Stats.LocalIOATCopies++
		var predicted sim.Duration
		if s.Cfg.PredictiveSleep {
			// Predict the longest channel's batch (chunk i goes to
			// channel i%k, so channel 0 carries the most work).
			var mine []int
			for i := 0; i < len(chunks); i += k {
				mine = append(mine, chunks[i])
			}
			predicted = s.predictIOAT(mine)
		}
		ep.waitStriped(p, cpu.DriverCmd, seqs, predicted)
	} else if n > 0 {
		d := s.H.Copy.Memcpy(r.buf, r.off, lm.buf, lm.off, n, ep.Core)
		ep.core().RunOn(p, cpu.DriverCmd, d)
	}

	ep.completeRecv(r, lm.srcAddr, lm.match, n)
	// Completion event back to the sender's endpoint.
	ep.core().RunOn(p, cpu.DriverCmd, sim.Duration(s.H.P.OMXEventCost))
	lm.srcEP.pushEvent(&event{kind: evLocalDone, req: lm.sendReq})
}
