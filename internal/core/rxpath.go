package core

import (
	"omxsim/internal/cpu"
	"omxsim/internal/ioat"
	"omxsim/internal/nic"
	"omxsim/internal/proto"
	"omxsim/platform"
	"omxsim/sim"
)

// rxCallback is the Open-MX receive callback, invoked by a NIC's
// bottom half for every incoming frame (the paper's Figure 2/5/6
// context). It runs in softirq context on that NIC's interrupt core —
// each lane of a multi-NIC host drains on its own core — and all CPU
// it consumes is accounted as BHProc/BHCopy. lane identifies the NIC
// the frame arrived on: replies that must stay on the same physical
// path (pull-answering data) use it.
func (s *Stack) rxCallback(lane int, p *sim.Proc, core *cpu.Core, skb *nic.Skb) {
	t0 := p.Now()
	s.maybeSteer(t0)
	core.RunOn(p, cpu.BHProc, sim.Duration(s.H.P.OMXRecvCallbackCost))
	if s.Trace != nil {
		if m, ok := skb.Frame.Msg.(*proto.LargeFrag); ok {
			s.Trace(TraceEvent{Kind: "process", Frag: m.FragID, Start: t0, End: p.Now()})
		}
	}
	switch m := skb.Frame.Msg.(type) {
	case *proto.Eager:
		s.rxEager(p, core, skb, m)
	case *proto.Ack:
		s.applyAck(p, core, m.Src.EP, m.Dst, m.AckSeq)
		skb.Free()
	case *proto.RndvRequest:
		s.rxRndv(p, core, skb, m)
	case *proto.Pull:
		s.rxPull(lane, p, core, skb, m)
	case *proto.LargeFrag:
		s.rxLargeFrag(lane, p, core, skb, m)
	case *proto.RndvAck:
		s.rxRndvAck(p, core, skb, m)
	case *proto.CollData, *proto.CollAck:
		// Firmware-collective frames belong to NIC-resident state
		// machines the host stack does not run (the MXoE offload tier).
		// A host-mode peer can only receive one through
		// misconfiguration; count and drop so the sender's firmware
		// retransmission surfaces the mismatch instead of a hang going
		// unexplained.
		s.Stats.CollDropped++
		skb.Free()
	default:
		skb.Free()
	}
}

// chargeEvent accounts the cost of writing one completion event to the
// user-visible ring.
func (s *Stack) chargeEvent(p *sim.Proc, core *cpu.Core) {
	core.RunOn(p, cpu.BHProc, sim.Duration(s.H.P.OMXEventCost))
}

// applyAck advances a tx channel's cumulative ack (from an explicit
// ack frame or a piggybacked AckSeq) and hands completed sends to the
// library. Stale and duplicate acks are ignored (serial arithmetic,
// so the channel survives sequence wraparound).
func (s *Stack) applyAck(p *sim.Proc, core *cpu.Core, epID int, from proto.Addr, ackSeq uint32) {
	ep := s.endpoints[epID]
	if ep == nil || ackSeq == 0 {
		return
	}
	tc := ep.txChans[from]
	if tc == nil {
		return
	}
	acked := tc.applyCumulative(ackSeq)
	if len(tc.unacked) == 0 {
		tc.rtx.Stop()
		tc.rtx = sim.Timer{}
	}
	if len(acked) > 0 {
		// The newest never-retransmitted send the ack covers is a clean
		// round-trip sample (Karn's rule skips retransmitted ones).
		now := s.H.E.Now()
		sample := sim.Duration(-1)
		done := make([]*Request, 0, len(acked))
		for _, es := range acked {
			done = append(done, es.req)
			if !es.rtxed {
				sample = now - es.sentAt
			}
			if s.Trace != nil {
				s.Trace(TraceEvent{Kind: "eager", Frag: -1, Seq: es.seq, Lane: s.laneOf(es.seq, 0), Start: es.sentAt, End: now})
			}
		}
		if sample >= 0 {
			s.observeRTT(from, sample)
		}
		s.chargeEvent(p, core)
		ep.pushEvent(&event{kind: evEagerAcked, reqs: done})
	}
}

// rxEager handles a tiny/small/medium fragment: copy it into the
// endpoint's statically pinned receive ring (first copy of Figure 2) —
// by memcpy, or synchronously through I/OAT when IOATSyncMedium is set
// (the paper's measured regression) — then report a per-fragment event.
func (s *Stack) rxEager(p *sim.Proc, core *cpu.Core, skb *nic.Skb, m *proto.Eager) {
	defer skb.Free()
	s.applyAck(p, core, m.Dst.EP, m.Src, m.AckSeq)
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	// Driver-level duplicate suppression: retransmissions of messages
	// the stack has already fully received are dropped here (no ring
	// slot, no event) and the ack is refreshed — the sender clearly
	// never saw it. This must not depend on the application calling
	// into the library: acks are a transport responsibility.
	ch := ep.rxChan(m.Src)
	if ch.isDup(m.Seq) {
		s.Stats.DupFrags++
		ep.forceAck(ch)
		return
	}
	if ch.fragSeenBefore(m.Seq, m.FragID) {
		// A retransmitted fragment of a message still assembling:
		// the original already holds a ring slot and queued its
		// event, so this copy must not consume either.
		s.Stats.DupFrags++
		return
	}
	n := len(skb.Buf.Data)
	ev := &event{
		kind: evEagerFrag, src: m.Src, match: m.Match, seq: m.Seq,
		msgLen: m.MsgLen, fragID: m.FragID, fragCnt: m.FragCount,
		offset: m.Offset, slot: -1, dataLen: n,
	}
	switch {
	case m.MsgLen <= proto.TinyMax && m.FragCount == 1:
		// Tiny: payload rides inline in the event; the copy is the
		// event write itself.
		ch.markFrag(m.Seq, m.FragID)
		if n > 0 {
			ev.inline = append([]byte(nil), skb.Buf.Data...)
			if !s.Cfg.SkipBHCopy {
				core.RunOn(p, cpu.BHCopy, s.H.Copy.RawTime(n, bhTinyRate(s)))
			}
		}
	default:
		slot := ep.allocSlot()
		if slot < 0 {
			s.Stats.RingDrops++
			return // dropped (and not recorded); retransmission recovers
		}
		ch.markFrag(m.Seq, m.FragID)
		ev.slot = slot
		off := ep.slotOff(slot)
		switch {
		case s.Cfg.SkipBHCopy:
			copy(ep.ring.Data[off:off+n], skb.Buf.Data)
		case s.Cfg.IOATSyncMedium && n >= s.Cfg.IOATMinFrag:
			// Synchronous offload: submit, then busy-poll completion.
			// All fragment copies of small/medium messages must be
			// synchronous because each fragment raises its own event
			// (Section III-C).
			s.ioatSyncCopy(p, core, cpu.BHCopy, ep, slot, skb, n)
		default:
			d := s.H.Copy.Memcpy(ep.ring, off, skb.Buf, 0, n, core.ID)
			core.RunOn(p, cpu.BHCopy, d)
		}
	}
	s.chargeEvent(p, core)
	ep.pushEvent(ev)
}

// bhTinyRate is the effective tiny-copy rate in the bottom half
// (cold memcpy with the DMA snoop penalty).
func bhTinyRate(s *Stack) platform.Rate {
	return platform.Rate(float64(s.H.P.MemcpyColdRate) * s.H.P.DMAColdPenalty)
}

// ioatSyncCopy performs one synchronous (blocking) I/OAT copy of a
// fragment into a receive-ring slot: submission cost, then the CPU
// busy-polls until the engine retires the descriptors.
func (s *Stack) ioatSyncCopy(p *sim.Proc, core *cpu.Core, cat cpu.Category, ep *Endpoint, slot int, skb *nic.Skb, n int) {
	off := ep.slotOff(slot)
	chunks := pageChunks(off, n, s.H.P.PageSize)
	ch := s.H.IOAT.PickChannel()
	var reqs []ioat.CopyReq
	so := 0
	for _, c := range chunks {
		reqs = append(reqs, ioat.CopyReq{Dst: ep.ring, DstOff: off + so, Src: skb.Buf, SrcOff: so, N: c})
		so += c
	}
	core.RunOn(p, cpu.IOATSubmit, s.H.IOAT.SubmitCost(len(reqs)))
	s.Stats.IOATSubmits += int64(len(reqs))
	seq := ch.Submit(reqs...)
	core.RunOnDyn(p, cat, func(finish func(extra sim.Duration)) {
		ch.NotifyAt(seq, func() { finish(s.H.IOAT.PollCost()) })
	})
}

// rxRndv handles a rendezvous request: deduplicate, then report it to
// the library for matching.
func (s *Stack) rxRndv(p *sim.Proc, core *cpu.Core, skb *nic.Skb, m *proto.RndvRequest) {
	defer skb.Free()
	s.applyAck(p, core, m.Dst.EP, m.Src, m.AckSeq)
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	key := rndvKey{src: m.Src, dst: m.Dst.EP, seq: m.Seq}
	if st := s.rndvSeen[key]; st != nil {
		if st.done {
			// We finished but our ack was lost: re-ack.
			s.transmit(m.Src, &proto.RndvAck{Src: ep.Addr(), Dst: m.Src, SenderHandle: st.sender}, nil)
		}
		return // duplicate; pull timers drive recovery otherwise
	}
	s.rndvSeen[key] = &rndvState{handle: -1, sender: m.SenderHandle}
	s.chargeEvent(p, core)
	ep.pushEvent(&event{
		kind: evRndv, src: m.Src, match: m.Match, seq: m.Seq,
		msgLen: m.MsgLen, handle: m.SenderHandle,
	})
}

// rxPull runs on the data sender: build the requested fragments as
// zero-copy skbuffs referencing the pinned user pages, and transmit.
// The data answers on the lane the pull arrived on, so the block the
// receiver striped onto lane k streams back over lane k — the whole
// block's round trip stays on one physical path and the receiver's
// block-lane policy alone decides the aggregate spread.
func (s *Stack) rxPull(lane int, p *sim.Proc, core *cpu.Core, skb *nic.Skb, m *proto.Pull) {
	defer skb.Free()
	ls := s.sends[m.SenderHandle]
	if ls == nil {
		return // stale pull for a finished send
	}
	if !ls.sampled && ls.attempts == 0 {
		// First pull answers the (never-retransmitted) rendezvous
		// request: a clean request->pull round trip to the receiver.
		s.observeRTT(m.Src, s.H.E.Now()-ls.sentAt)
	}
	ls.sampled = true
	ls.pulled = true
	count := 0
	for i := 0; i < m.FragCount; i++ {
		if m.NeedMask&(1<<uint(i)) != 0 {
			count++
		}
	}
	if count == 0 {
		return
	}
	core.RunOn(p, cpu.BHProc, sim.Duration(int64(count)*s.H.P.OMXTxBuildCost))
	for i := 0; i < m.FragCount; i++ {
		if m.NeedMask&(1<<uint(i)) == 0 {
			continue
		}
		fragID := m.FirstFrag + i
		fo := fragID * proto.LargeFragSize
		fl := min(proto.LargeFragSize, ls.n-fo)
		if fl <= 0 {
			continue
		}
		payload := make([]byte, fl)
		copy(payload, ls.buf.Data[ls.off+fo:ls.off+fo+fl])
		s.transmitOn(lane, m.Src, &proto.LargeFrag{
			Src: ls.ep.Addr(), Dst: m.Src,
			RecvHandle: m.RecvHandle, Block: m.Block,
			FragID: fragID, Offset: fo, MsgLen: ls.n,
		}, payload)
		s.Stats.LargeFragsSent++
	}
}

// rxLargeFrag is the heart of the paper: a large-message fragment
// arrives and must be copied into the (pinned) destination buffer.
// Without I/OAT the bottom half memcpys and only then releases the
// CPU (Figure 5). With I/OAT it submits asynchronous copies — to the
// arrival lane's DMA channel — and releases the CPU immediately; only
// the last fragment of the message waits for the engine (Figure 6),
// and on a striped message it waits for every lane's channel.
func (s *Stack) rxLargeFrag(lane int, p *sim.Proc, core *cpu.Core, skb *nic.Skb, m *proto.LargeFrag) {
	lp := s.pulls[m.RecvHandle]
	if lp == nil || lp.done {
		skb.Free()
		return
	}
	blk := lp.blocks[m.Block]
	if blk == nil {
		s.Stats.DupFrags++
		skb.Free()
		return
	}
	if !blk.asm.Mark(m.FragID - blk.firstFrag) {
		s.Stats.DupFrags++
		skb.Free()
		return
	}
	blk.attempts = 0 // fresh data: the sender is making progress
	lp.received++

	n := len(skb.Buf.Data)
	dstOff := lp.off + m.Offset
	last := lp.received == lp.frags

	switch {
	case s.Cfg.SkipBHCopy:
		copy(lp.buf.Data[dstOff:dstOff+n], skb.Buf.Data)
		skb.Free()
	case lp.useIOAT:
		// Optional hybrid: memcpy the head of the message to warm the
		// consumer's cache, offload the rest (Section V/VI).
		so := 0
		if warm := s.Cfg.HybridWarmupBytes; warm > 0 && m.Offset < warm {
			head := min(n, warm-m.Offset)
			d := s.H.Copy.Memcpy(lp.buf, dstOff, skb.Buf, 0, head, core.ID)
			core.RunOn(p, cpu.BHCopy, d)
			so = head
		}
		if so == n {
			skb.Free()
			break
		}
		// Asynchronous submission; the skbuff joins the pending pool
		// until the cleanup routine observes its copies retired.
		chunks := pageChunks(dstOff+so, n-so, s.H.P.PageSize)
		var reqs []ioat.CopyReq
		for _, c := range chunks {
			reqs = append(reqs, ioat.CopyReq{Dst: lp.buf, DstOff: dstOff + so, Src: skb.Buf, SrcOff: so, N: c})
			so += c
		}
		t1 := p.Now()
		core.RunOn(p, cpu.IOATSubmit, s.H.IOAT.SubmitCost(len(reqs)))
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: "submit", Frag: m.FragID, Start: t1, End: p.Now()})
			subEnd := p.Now()
			frag := m.FragID
			reqs[len(reqs)-1].OnDone = func() {
				s.Trace(TraceEvent{Kind: "dma-copy", Frag: frag, Start: subEnd, End: s.H.E.Now()})
			}
		}
		s.Stats.IOATSubmits += int64(len(reqs))
		ch := lp.chs[lane]
		seq := ch.Submit(reqs...)
		lp.lastSeq[lane] = seq
		lp.pending = append(lp.pending, pendingCopy{skb: skb, ch: ch, seq: seq})
	default:
		t1 := p.Now()
		d := s.H.Copy.Memcpy(lp.buf, dstOff, skb.Buf, 0, n, core.ID)
		core.RunOn(p, cpu.BHCopy, d)
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: "memcpy", Frag: m.FragID, Start: t1, End: p.Now()})
		}
		skb.Free()
	}

	if blk.asm.Done() {
		blk.timer.Stop()
		delete(lp.blocks, m.Block)
		if s.Trace != nil {
			s.Trace(TraceEvent{
				Kind: "pull", Frag: -1, Seq: lp.key.seq, Block: blk.idx,
				Lane: s.laneOf(lp.key.seq, blk.idx), Window: s.pullWindow(lp),
				Start: blk.sentAt, End: p.Now(),
			})
		}
		if !blk.rtxed {
			// A clean block round trip: feed the peer's RTO estimator
			// and the transfer's window controller (which may also back
			// off here, on round-trip inflation).
			rtt := p.Now() - blk.sentAt
			s.observeRTT(lp.src, rtt)
			if lp.aw != nil {
				lp.aw.OnSample(rtt)
				s.traceCwnd(lp)
			}
		}
		// Refill the window: exactly one block on the static path (the
		// paper's one-for-one pipeline), the snapshot deficit after an
		// AIMD change. The count is fixed before the first RunOn yield —
		// a concurrent lane's completion during the yield must not
		// change how many blocks this completion issues.
		want := 1
		if lp.aw != nil {
			want = s.pullWindow(lp) - len(lp.blocks)
		}
		for i := 0; i < want && lp.nextBlock < lp.numBlocks; i++ {
			// "A resource cleanup routine is invoked when a new
			// request is sent" (Section III-B).
			core.RunOn(p, cpu.BHProc, sim.Duration(s.H.P.OMXTxBuildCost))
			if lp.nextBlock >= lp.numBlocks {
				break // a concurrent lane issued the tail during the yield
			}
			s.sendPullBlock(lp, lp.nextBlock, 0)
			lp.nextBlock++
			s.cleanup(p, core, lp)
		}
		s.traceQueue(lp)
	}

	if last {
		if lp.useIOAT {
			// The last fragment's callback waits for the completion of
			// all asynchronous copies of this message (Figure 6), then
			// releases every pending skbuff. A striped message waits
			// for every lane's channel (one cookie poll each); the
			// single-NIC case is the paper's single-channel wait.
			waits := 0
			for _, sq := range lp.lastSeq {
				if sq > 0 {
					waits++
				}
			}
			tw := p.Now()
			core.RunOnDyn(p, cpu.BHCopy, func(finish func(extra sim.Duration)) {
				if waits == 0 {
					// Hybrid warmup copied everything by memcpy: one
					// cookie read confirms the channel idle, exactly
					// the pre-striping wait-on-sequence-zero cost.
					finish(s.H.IOAT.PollCost())
					return
				}
				left := waits
				for i, ch := range lp.chs {
					if lp.lastSeq[i] == 0 {
						continue
					}
					ch.NotifyAt(lp.lastSeq[i], func() {
						left--
						if left == 0 {
							finish(sim.Duration(waits) * s.H.IOAT.PollCost())
						}
					})
				}
			})
			if s.Trace != nil {
				s.Trace(TraceEvent{Kind: "wait", Frag: m.FragID, Start: tw, End: p.Now()})
			}
			s.freeRetired(lp)
		}
		lp.done = true
		delete(s.pulls, lp.handle)
		s.markRndvDone(lp)
		lp.req.Len = lp.n
		if s.Trace != nil {
			s.Trace(TraceEvent{
				Kind: "rndv", Frag: -1, Seq: lp.key.seq,
				Window: s.pullWindow(lp), Start: lp.startedAt, End: p.Now(),
			})
		}
		tn := p.Now()
		s.chargeEvent(p, core)
		if s.Trace != nil {
			s.Trace(TraceEvent{Kind: "notify", Frag: m.FragID, Start: tn, End: p.Now()})
		}
		lp.ep.pushEvent(&event{kind: evLargeDone, req: lp.req})
		s.transmit(lp.src, &proto.RndvAck{Src: lp.ep.Addr(), Dst: lp.src, SenderHandle: lp.senderHandle}, nil)
	}
}

// markRndvDone flags the rendezvous as complete so duplicate requests
// get re-acked instead of restarting the transfer, evicting the
// oldest completed entry beyond the dedup window.
func (s *Stack) markRndvDone(lp *largePull) {
	st := s.rndvSeen[lp.key]
	if st == nil {
		return
	}
	st.done = true
	s.rndvDone = proto.EvictOldest(s.rndvSeen, s.rndvDone, lp.key, proto.RndvDedupWindow)
}

// cleanup is the paper's Section III-B routine: poll the DMA engine's
// completion cookie once and release every skbuff whose copies have
// retired, bounding the pending pool.
func (s *Stack) cleanup(p *sim.Proc, core *cpu.Core, lp *largePull) {
	if !lp.useIOAT || len(lp.pending) == 0 {
		return
	}
	core.RunOn(p, cpu.BHProc, s.H.IOAT.PollCost())
	s.freeRetired(lp)
}

// freeRetired releases pending skbuffs whose I/OAT sequence has been
// retired by the channel they were submitted on.
func (s *Stack) freeRetired(lp *largePull) {
	var keep []pendingCopy
	for _, pc := range lp.pending {
		if pc.seq <= pc.ch.Completed() {
			pc.skb.Free()
			s.Stats.CleanupFrees++
		} else {
			keep = append(keep, pc)
		}
	}
	lp.pending = keep
}

// rxRndvAck completes a large send.
func (s *Stack) rxRndvAck(p *sim.Proc, core *cpu.Core, skb *nic.Skb, m *proto.RndvAck) {
	defer skb.Free()
	ls := s.sends[m.SenderHandle]
	if ls == nil {
		return
	}
	ls.finished = true
	ls.rtx.Stop()
	delete(s.sends, ls.handle)
	s.chargeEvent(p, core)
	ls.ep.pushEvent(&event{kind: evSendDone, req: ls.req})
}

// sendPullBlock transmits one pull request. mask == 0 means "all
// fragments of the block"; nonzero masks are retransmissions. It arms
// (or re-arms) the block's retransmission timer. The request goes out
// on the block's stripe lane — the data comes back on the same lane
// (rxPull answers on the arrival lane), so round-robin block lanes
// keep every NIC of an aggregated link busy once the window is wide
// enough to have a block in flight per lane.
func (s *Stack) sendPullBlock(lp *largePull, blockIdx int, mask uint64) {
	firstFrag := blockIdx * s.Cfg.PullBlockFrags
	count := min(s.Cfg.PullBlockFrags, lp.frags-firstFrag)
	blk := lp.blocks[blockIdx]
	if blk == nil {
		blk = &pullBlock{idx: blockIdx, firstFrag: firstFrag, asm: proto.NewReassembly(count), sentAt: s.H.E.Now()}
		lp.blocks[blockIdx] = blk
	}
	if mask == 0 {
		mask = blk.asm.FullMask()
	}
	s.transmitOn(s.laneOf(lp.key.seq, blockIdx), lp.src, &proto.Pull{
		Src: lp.ep.Addr(), Dst: lp.src,
		SenderHandle: lp.senderHandle, RecvHandle: lp.handle,
		Block: blockIdx, FirstFrag: firstFrag, FragCount: count,
		NeedMask: mask,
	}, nil)
	s.Stats.PullsSent++
	s.armBlockTimer(lp, blk)
}

// armBlockTimer (re)arms a pull block's retransmission timer: on
// expiry, re-request the missing fragments and run the cleanup routine
// (Section III-B: "this routine is also invoked when the
// retransmission timeout expires"). Consecutive expiries without any
// fragment arriving back off exponentially.
func (s *Stack) armBlockTimer(lp *largePull, blk *pullBlock) {
	blk.timer.Stop()
	blk.timer = s.H.E.Schedule(s.rtxTimeout(lp.src, blk.attempts), func() {
		if lp.done || blk.asm.Done() {
			return
		}
		blk.attempts++
		blk.rtxed = true
		s.Stats.PullRetransmits++
		s.traceRetransmit(lp.key.seq, blk.idx, s.laneOf(lp.key.seq, blk.idx))
		if lp.aw != nil {
			// The timeout is the loss signal: halve the window once per
			// loss epoch (the next clean sample reopens the epoch).
			lp.aw.OnLoss()
			s.traceCwnd(lp)
		}
		need := blk.asm.Missing()
		// The re-request builds on the stripe lane's interrupt core —
		// the core whose bottom half owns this block's traffic — so
		// retransmission cost under per-lane impairment is charged
		// where the lane's receive work already runs.
		irq := s.H.Sys.Core(s.H.NICs[s.laneOf(lp.key.seq, blk.idx)].IRQCore)
		irq.Exec(cpu.BHProc, sim.Duration(s.H.P.OMXTxBuildCost), func() {
			if lp.done || blk.asm.Done() {
				return
			}
			s.sendPullBlock(lp, blk.idx, need)
			// Cleanup on retransmission timeout, per the paper.
			if lp.useIOAT && len(lp.pending) > 0 {
				s.freeRetired(lp)
			}
		})
	})
}

// scheduleAck arms the deferred explicit-ack timer for a channel
// (piggybacking on reverse traffic usually wins the race and disarms
// it via takeAck).
func (ep *Endpoint) scheduleAck(c *rxChan) {
	if c.win.Edge() == c.lastAckSent || c.ackTimer.Pending() {
		return
	}
	ep.armAckTimer(c, false)
}

// forceAck re-arms the ack timer even when the cumulative ack was
// already sent once: a duplicate frame proves the sender lost it.
func (ep *Endpoint) forceAck(c *rxChan) {
	if c.ackTimer.Pending() {
		return
	}
	ep.armAckTimer(c, true)
}

func (ep *Endpoint) armAckTimer(c *rxChan, force bool) {
	s := ep.S
	c.ackTimer = s.H.E.Schedule(s.Cfg.DeferredAckDelay, func() {
		c.ackTimer = sim.Timer{}
		if !force && c.win.Edge() == c.lastAckSent {
			return
		}
		c.lastAckSent = c.win.Edge()
		s.transmit(c.src, &proto.Ack{Src: c.src, Dst: ep.Addr(), AckSeq: c.win.Edge()}, nil)
		s.Stats.AcksSent++
	})
}
