package core

import (
	"testing"

	"omxsim/sim"
)

// pingpongMiBps measures the paper's ping-pong throughput metric:
// message size divided by half the round-trip time, averaged over
// iters warm round trips (after one warm-up).
func pingpongMiBps(t *testing.T, pr *pair, n, iters int) float64 {
	t.Helper()
	bufA := pr.sa.H.Alloc(n)
	bufB := pr.sb.H.Alloc(n)
	bufA.Fill(1)
	var t0, t1 sim.Time
	pr.e.Go("rankB", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			r := pr.epB.IRecv(p, 1, ^uint64(0), bufB, 0, n)
			pr.epB.Wait(p, r)
			s := pr.epB.ISend(p, pr.epA.Addr(), 2, bufB, 0, n)
			pr.epB.Wait(p, s)
		}
	})
	pr.e.Go("rankA", func(p *sim.Proc) {
		for i := 0; i <= iters; i++ {
			if i == 1 {
				t0 = p.Now() // after warm-up round
			}
			s := pr.epA.ISend(p, pr.epB.Addr(), 1, bufA, 0, n)
			pr.epA.Wait(p, s)
			r := pr.epA.IRecv(p, 2, ^uint64(0), bufA, 0, n)
			pr.epA.Wait(p, r)
		}
		t1 = p.Now()
	})
	pr.e.RunUntil(pr.e.Now() + 30*sim.Second)
	if t1 == 0 {
		t.Fatalf("ping-pong (n=%d) did not finish; blocked: %v", n, pr.e.BlockedProcs())
	}
	half := (t1 - t0).Seconds() / float64(2*iters)
	return float64(n) / 1024 / 1024 / half
}

// The three headline curves of Figures 3 and 8 at multi-megabyte
// sizes: plain Open-MX saturates near 800 MiB/s, the no-BH-copy
// prediction reaches the ≈1186 MiB/s line rate, and I/OAT offload
// comes within a few percent of it (paper: 1114 MiB/s).
func TestCalibrationLargePingPong(t *testing.T) {
	const n, iters = 4 << 20, 4

	plain := pingpongMiBps(t, newPair(t, Config{RegCache: true}, Config{RegCache: true}), n, iters)
	if plain < 700 || plain > 900 {
		t.Errorf("plain Open-MX = %.0f MiB/s, want ≈800", plain)
	}

	nocopy := pingpongMiBps(t, newPair(t,
		Config{SkipBHCopy: true, RegCache: true}, Config{SkipBHCopy: true, RegCache: true}), n, iters)
	if nocopy < 1100 || nocopy > 1190 {
		t.Errorf("no-BH-copy prediction = %.0f MiB/s, want ≈1160+", nocopy)
	}

	ioat := pingpongMiBps(t, newPair(t,
		Config{IOAT: true, RegCache: true}, Config{IOAT: true, RegCache: true}), n, iters)
	if ioat < 1020 || ioat > 1190 {
		t.Errorf("I/OAT Open-MX = %.0f MiB/s, want ≈1114", ioat)
	}

	if !(plain < ioat && ioat <= nocopy*1.01) {
		t.Errorf("ordering violated: plain=%.0f ioat=%.0f nocopy=%.0f", plain, ioat, nocopy)
	}
	t.Logf("4 MiB ping-pong: plain=%.0f MiB/s ioat=%.0f MiB/s nocopy=%.0f MiB/s", plain, ioat, nocopy)
}

// At 256 kB the paper reports I/OAT more than 20 % above plain but
// still well below the no-copy prediction (I/OAT management cost).
func TestCalibrationMidSizeGap(t *testing.T) {
	const n, iters = 256 * 1024, 6
	plain := pingpongMiBps(t, newPair(t, Config{RegCache: true}, Config{RegCache: true}), n, iters)
	ioat := pingpongMiBps(t, newPair(t,
		Config{IOAT: true, RegCache: true}, Config{IOAT: true, RegCache: true}), n, iters)
	if ioat < plain*1.1 {
		t.Errorf("256 kB: ioat=%.0f not >10%% above plain=%.0f", ioat, plain)
	}
	t.Logf("256 kiB ping-pong: plain=%.0f MiB/s ioat=%.0f MiB/s (+%.0f%%)", plain, ioat, (ioat/plain-1)*100)
}

// Small-message latency sanity: Open-MX one-way ≈8–12 µs in 2008.
func TestCalibrationSmallLatency(t *testing.T) {
	pr := newPair(t, Config{}, Config{})
	mibps := pingpongMiBps(t, pr, 16, 10)
	halfRTT := 16.0 / 1024 / 1024 / mibps * 1e9 // ns
	if halfRTT < 4000 || halfRTT > 15000 {
		t.Errorf("small-message half-RTT = %.0f ns, want 4–15 µs", halfRTT)
	}
	t.Logf("16 B half-RTT: %.1f µs", halfRTT/1000)
}
