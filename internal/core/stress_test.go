package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// Property: a randomized bidirectional workload — mixed tiny through
// multi-megabyte messages, shuffled posting order, deterministic frame
// loss in both directions, I/OAT enabled — delivers every payload
// intact and leaks no skbuffs or ring slots.
func TestPropertyStressBidirectionalWithLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool { return propertyStressRun(t, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// propertyStressRun is one seeded property-test round (extracted so
// a failing seed can be replayed directly).
func propertyStressRun(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		IOAT:              rng.Intn(2) == 0,
		IOATSyncMedium:    rng.Intn(2) == 0,
		RetransmitTimeout: 2 * sim.Millisecond,
	}
	pr := newPair(t, cfg, cfg)
	if rng.Intn(2) == 0 {
		da := rng.Intn(11) + 7
		db := rng.Intn(11) + 7
		na, nb := 0, 0
		pr.sa.H.NIC.Hose().Drop = func(*wire.Frame) bool { na++; return na%da == 1 }
		pr.sb.H.NIC.Hose().Drop = func(*wire.Frame) bool { nb++; return nb%db == 1 }
	}
	const count = 6
	sizesAB := make([]int, count)
	sizesBA := make([]int, count)
	var srcAB, dstAB, srcBA, dstBA []*hostmem.Buffer
	for i := 0; i < count; i++ {
		sizesAB[i] = rng.Intn(1 << uint(8+rng.Intn(13)))
		sizesBA[i] = rng.Intn(1 << uint(8+rng.Intn(13)))
		srcAB = append(srcAB, pr.sa.H.Alloc(sizesAB[i]))
		dstAB = append(dstAB, pr.sb.H.Alloc(sizesAB[i]))
		srcBA = append(srcBA, pr.sb.H.Alloc(sizesBA[i]))
		dstBA = append(dstBA, pr.sa.H.Alloc(sizesBA[i]))
		srcAB[i].Fill(byte(2*i + 1))
		srcBA[i].Fill(byte(2*i + 2))
	}
	doneA, doneB := false, false
	pr.e.Go("rankA", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, pr.epA.ISend(p, pr.epB.Addr(), uint64(i), srcAB[i], 0, sizesAB[i]))
			reqs = append(reqs, pr.epA.IRecv(p, uint64(100+i), ^uint64(0), dstBA[i], 0, sizesBA[i]))
		}
		for _, r := range reqs {
			pr.epA.Wait(p, r)
		}
		doneA = true
	})
	pr.e.Go("rankB", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, pr.epB.ISend(p, pr.epA.Addr(), uint64(100+i), srcBA[i], 0, sizesBA[i]))
			reqs = append(reqs, pr.epB.IRecv(p, uint64(i), ^uint64(0), dstAB[i], 0, sizesAB[i]))
		}
		for _, r := range reqs {
			pr.epB.Wait(p, r)
		}
		doneB = true
	})
	pr.e.RunUntil(pr.e.Now() + 20*sim.Second)
	if !doneA || !doneB {
		t.Logf("seed %d: stuck (doneA=%v doneB=%v) blocked=%v stats=%+v",
			seed, doneA, doneB, pr.e.BlockedProcs(), pr.sb.Stats)
		return false
	}
	for i := 0; i < count; i++ {
		if !hostmem.Equal(srcAB[i], dstAB[i]) || !hostmem.Equal(srcBA[i], dstBA[i]) {
			t.Logf("seed %d: message %d corrupted", seed, i)
			return false
		}
	}
	// Resource leak checks: all skbuffs freed, all ring slots back.
	if pr.sa.H.NIC.SkbsLive() != 0 || pr.sb.H.NIC.SkbsLive() != 0 {
		t.Logf("seed %d: leaked skbuffs %d/%d", seed, pr.sa.H.NIC.SkbsLive(), pr.sb.H.NIC.SkbsLive())
		return false
	}
	if len(pr.epA.freeSlots) != pr.sa.Cfg.RingSlots || len(pr.epB.freeSlots) != pr.sb.Cfg.RingSlots {
		t.Logf("seed %d: leaked ring slots A=%d/%d B=%d/%d evqA=%d evqB=%d uxA=%d uxB=%d",
			seed, len(pr.epA.freeSlots), pr.sa.Cfg.RingSlots, len(pr.epB.freeSlots), pr.sb.Cfg.RingSlots,
			len(pr.epA.evq), len(pr.epB.evq), len(pr.epA.ux), len(pr.epB.ux))
		for _, c := range pr.epB.rxChans {
			t.Logf("  B rxChan complete=%d pending=%d asm=%d", c.win.Edge(), c.win.Pending(), len(c.asm))
		}
		for _, ev := range pr.epB.evq {
			t.Logf("  B evq: kind=%d seq=%d slot=%d frag=%d", ev.kind, ev.seq, ev.slot, ev.fragID)
		}
		for _, ev := range pr.epA.evq {
			t.Logf("  A evq: kind=%d seq=%d slot=%d frag=%d", ev.kind, ev.seq, ev.slot, ev.fragID)
		}
		return false
	}
	return true
}
