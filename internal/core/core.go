// Package core implements the Open-MX stack — the paper's subject —
// split, like the real implementation, into a user-space library
// (matching, eager reassembly, rendezvous decisions, registration
// cache) and a kernel driver (send path, receive callback running in
// the NIC's bottom half, pull protocol for large messages, one-copy
// local communication, retransmission).
//
// The paper's contribution lives in the receive paths:
//
//   - large-message fragments are copied from skbuffs into the
//     (already pinned) destination either by memcpy on the bottom-half
//     core or — with Config.IOAT — by submitting asynchronous I/OAT
//     copies and releasing the CPU immediately; the last fragment
//     waits for the DMA engine, then reports a single completion event
//     (Section III-A, Figures 5/6);
//   - a cleanup routine bounds the pool of skbuffs queued behind
//     pending copies, invoked whenever a new pull block is requested
//     and on retransmission timeouts (Section III-B);
//   - small and medium fragments may optionally be offloaded
//     synchronously (Config.IOATSyncMedium; the paper measured this to
//     be a loss, which the model reproduces);
//   - local (intra-node) messages use a one-copy transfer inside a
//     system call, performed by memcpy or, beyond a threshold, by a
//     blocking I/OAT copy (Config.IOATShm, Section III-C, Figure 10).
package core

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/ioat"
	"omxsim/internal/nic"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// Config selects the stack's optimizations and thresholds. The zero
// value is the plain memcpy-based Open-MX; Defaults() fills in the
// paper's thresholds.
type Config struct {
	// IOAT offloads large-message receive copies asynchronously.
	IOAT bool
	// IOATSyncMedium also offloads medium-fragment copies,
	// synchronously (the paper's Section IV-C experiment — a
	// measured regression, reproduced here).
	IOATSyncMedium bool
	// IOATShm offloads the one-copy local communication beyond
	// ShmIOATThreshold, busy-polling completion.
	IOATShm bool
	// RegCache enables the registration cache: pin once per buffer,
	// defer unpinning (Figure 11's "regcache" curves). The cache is
	// per-stack (all endpoints share it, like the per-driver cache of
	// the real implementation) and unbounded unless RegCacheEntries
	// caps it.
	RegCache bool
	// RegCacheEntries bounds the registration cache to this many
	// resident regions, evicting (and deregistering) least-recently
	// used ones past the bound. 0 = unbounded, the classic Open-MX
	// behaviour.
	RegCacheEntries int
	// DCATargetCore, on a platform with HasDCA, steers the NIC's
	// Direct Cache Access deposits at this core's LLC. 0 (the default)
	// follows the interrupt core, the chipset's own steering rule; set
	// it to the consumer's core to model application-aware steering,
	// or to a core on the wrong socket to reproduce the misdirected-DCA
	// cliff. Ignored without HasDCA.
	DCATargetCore int
	// AutoTune replaces the hand-set thresholds with the adaptive
	// autotuner: when the stack attaches (just before its first
	// endpoint opens), ProbeThresholds probes the platform's memcpy
	// and I/OAT cost curves and fills LargeThreshold, IOATMinMsg,
	// IOATMinFrag and ShmIOATThreshold with the measured crossover
	// points. Thresholds set explicitly in the Config win over the
	// probe.
	AutoTune bool
	// SkipBHCopy is the Figure 3 prediction knob: data still moves
	// (so integrity holds) but the bottom-half copy costs nothing.
	SkipBHCopy bool
	// Adaptive turns on the self-tuning transport tier: per-peer
	// SRTT/RTTVAR estimators (sampled from eager acks and pull-block
	// round trips) derive the retransmission timeout in place of the
	// fixed RetransmitTimeout default, an AIMD controller sizes each
	// transfer's pull window within [2, 4 x lanes] from measured block
	// round trips, and on multi-NIC hosts bottom-half work is steered
	// off saturated cores at quantized epochs. Explicit settings still
	// win: a nonzero RetransmitTimeout pins the timeout and a nonzero
	// PullBlocks pins the window even with Adaptive set. Off (the
	// default), the stack is bit-identical to the static transport.
	Adaptive bool

	// LargeThreshold: messages strictly larger use the rendezvous
	// pull protocol (paper: 32 kB). Capped at 64 eager fragments
	// (256 kB): the driver's per-message dedup/assembly bitmaps are
	// 64 bits wide, so fillDefaults clamps larger values.
	LargeThreshold int
	// IOATMinMsg / IOATMinFrag: offload copies only for messages ≥
	// IOATMinMsg whose fragments are ≥ IOATMinFrag ("we have
	// empirically chosen to offload memory copies of fragments larger
	// than 1 kB for messages larger than 64 kB").
	IOATMinMsg  int
	IOATMinFrag int
	// ShmIOATThreshold: local messages of at least this size use the
	// I/OAT engine when IOATShm is set. Figure 10 was measured with
	// the large-message threshold (32 kB); the shipped default became
	// 1 MB — both are expressible.
	ShmIOATThreshold int
	// PullBlockFrags fragments per pull block, PullBlocks blocks
	// outstanding ("two pipelined blocks of 8 fragments").
	PullBlockFrags int
	PullBlocks     int
	// RingSlots is the per-endpoint receive ring capacity in
	// 4 kiB slots.
	RingSlots int
	// RetransmitTimeout for pull blocks, rendezvous requests and
	// unacked eager messages.
	RetransmitTimeout sim.Duration
	// RetransmitBackoff multiplies the timeout after every
	// consecutive unanswered retransmission (exponential backoff;
	// 1 disables). RetransmitMax caps the backed-off timeout.
	// Attempt counters reset on any acknowledged progress.
	RetransmitBackoff float64
	RetransmitMax     sim.Duration
	// DeferredAckDelay before an explicit ack frame is emitted when no
	// reverse traffic piggybacks it.
	DeferredAckDelay sim.Duration

	// ---- Section V/VI "future work" extensions ----

	// HybridWarmupBytes, when nonzero, copies the first bytes of each
	// offloaded large message with memcpy (warming the consumer's
	// cache) before switching to I/OAT — the Section V/VI idea of
	// using memcpy "for the beginning of larger messages".
	HybridWarmupBytes int
	// PredictiveSleep makes synchronous I/OAT waits in process
	// context (the shared-memory path) sleep for a predicted
	// completion time instead of busy-polling (Section VI).
	PredictiveSleep bool
	// StripeChannels stripes one local I/OAT copy across this many
	// DMA channels (1 = the paper's one-channel-per-message policy;
	// using all four buys ≈40 %, per reference [22]).
	StripeChannels int

	// ---- Multi-NIC link aggregation ----

	// StripePolicy selects how traffic spreads across a multi-NIC
	// host's lanes (StripeRoundRobin, StripeHash, StripeSingle). It is
	// ignored on single-NIC hosts, where every frame takes lane 0.
	StripePolicy string
}

// Stripe policies for multi-NIC hosts. Round-robin (the default)
// spreads the units of one message — eager fragments, pull blocks —
// across lanes for maximum aggregate bandwidth; hash pins each
// message to one seeded lane (classic L3/L4 link-aggregation
// hashing: per-flow ordering, no per-message striping win); single
// forces lane 0 (aggregation disabled, the control baseline).
const (
	StripeRoundRobin = "roundrobin"
	StripeHash       = "hash"
	StripeSingle     = "single"
)

// Defaults returns the paper's configuration (memcpy everywhere; turn
// on IOAT/RegCache/etc. per experiment).
func Defaults() Config {
	return Config{
		LargeThreshold:    32 * 1024,
		IOATMinMsg:        64 * 1024,
		IOATMinFrag:       1024,
		ShmIOATThreshold:  32 * 1024,
		PullBlockFrags:    8,
		PullBlocks:        2,
		RingSlots:         512,
		RetransmitTimeout: 50 * sim.Millisecond,
		RetransmitBackoff: 2,
		RetransmitMax:     800 * sim.Millisecond,
		DeferredAckDelay:  100 * sim.Microsecond,
	}
}

// maxEagerBytes is the largest message the eager path can carry: the
// per-message fragment dedup and assembly bitmaps are 64 bits wide.
const maxEagerBytes = 64 * proto.MediumFragSize

func (c *Config) fillDefaults() {
	d := Defaults()
	if c.LargeThreshold == 0 {
		c.LargeThreshold = d.LargeThreshold
	}
	if c.LargeThreshold > maxEagerBytes {
		c.LargeThreshold = maxEagerBytes
	}
	if c.IOATMinMsg == 0 {
		c.IOATMinMsg = d.IOATMinMsg
	}
	if c.IOATMinFrag == 0 {
		c.IOATMinFrag = d.IOATMinFrag
	}
	if c.ShmIOATThreshold == 0 {
		c.ShmIOATThreshold = d.ShmIOATThreshold
	}
	if c.PullBlockFrags == 0 {
		c.PullBlockFrags = d.PullBlockFrags
	}
	if c.PullBlocks == 0 {
		c.PullBlocks = d.PullBlocks
	}
	if c.RingSlots == 0 {
		c.RingSlots = d.RingSlots
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = d.RetransmitTimeout
	}
	if c.RetransmitBackoff == 0 {
		c.RetransmitBackoff = d.RetransmitBackoff
	}
	if c.RetransmitMax == 0 {
		// Scale the cap with a custom base timeout: 16x the base,
		// i.e. four doublings at the default backoff of 2.
		c.RetransmitMax = 16 * c.RetransmitTimeout
	}
	if c.DeferredAckDelay == 0 {
		c.DeferredAckDelay = d.DeferredAckDelay
	}
	switch c.StripePolicy {
	case "", StripeRoundRobin, StripeHash, StripeSingle:
	default:
		panic(fmt.Sprintf("openmx: unknown stripe policy %q", c.StripePolicy))
	}
}

// Stats counts protocol activity for tests and diagnostics.
type Stats struct {
	EagerSent        int64
	RndvSent         int64
	PullsSent        int64
	LargeFragsSent   int64
	AcksSent         int64
	EagerRetransmits int64
	PullRetransmits  int64
	RndvRetransmits  int64
	RingDrops        int64
	DupFrags         int64
	IOATSubmits      int64
	CleanupFrees     int64
	LocalMsgs        int64
	LocalIOATCopies  int64
	// CollDropped counts NIC-collective frames (CollData/CollAck)
	// dropped because this stack runs collectives on the host — only a
	// firmware-mode stack (internal/mxoe) terminates them.
	CollDropped int64
	// NICTxFrames counts frames this stack transmitted per NIC lane —
	// the striping balance (index = lane; single-NIC stacks have one
	// entry). Receive-side per-NIC counters live in cluster.NetStats.
	NICTxFrames []int64
}

// TraceEvent is one span or counter sample of the stack's trace
// stream, emitted through Stack.Trace. The receive-path kinds
// ("process", "memcpy", "submit", "dma-copy", "wait", "notify") are
// the paper's Figures 5/6 timeline; the protocol kinds ("eager",
// "rndv", "pull", "retransmit") span whole exchanges with their lane,
// sequence and window annotations; Kind "counter" carries a named
// scalar sample (cwnd, srtt, queue-depth) for timeline export.
type TraceEvent struct {
	// Kind: "process", "memcpy", "submit", "dma-copy", "wait",
	// "notify", "eager", "rndv", "pull", "collective", "retransmit",
	// "counter" (counter Names: "cwnd", "srtt", "pull-queue").
	Kind  string
	Frag  int // fragment id for receive-path spans, -1 otherwise
	Start sim.Time
	End   sim.Time

	// Protocol-span annotations (zero for receive-path spans).
	Lane   int    // transmit lane of the spanned unit
	Seq    uint32 // channel or rendezvous sequence
	Block  int    // pull block index ("pull"/"retransmit" on a block)
	Window int    // pull window in blocks when the span closed

	// Counter samples (Kind "counter") only.
	Name  string
	Value float64
}

// Stack is the Open-MX driver+library instance of one host.
type Stack struct {
	H   *host.Host
	Cfg Config

	// lanes is the host's NIC count; striping decisions are modulo it.
	lanes int

	// Trace, when non-nil, receives receive-path spans (see
	// TraceEvent). Used by the timeline renderer; nil in normal runs.
	Trace func(TraceEvent)

	endpoints map[int]*Endpoint

	// Driver-side large message state.
	nextHandle int
	sends      map[int]*largeSend // by sender handle
	pulls      map[int]*largePull // by receiver handle

	// Rendezvous dedup: remembers handled rendezvous by (src, seq) so
	// retransmitted requests don't restart transfers. Completed
	// entries are kept (to re-ack lost RndvAcks) in a bounded FIFO:
	// rndvDone evicts the oldest past proto.RndvDedupWindow, so the
	// map cannot grow without bound and a wrapped-around sequence
	// number cannot collide with an ancient entry.
	rndvSeen map[rndvKey]*rndvState
	rndvDone []rndvKey

	// Adaptive-transport state (Config.Adaptive; see adaptive.go).
	// adaptiveRTO / adaptiveWin record whether the timeout and the pull
	// window are derived online (an explicit RetransmitTimeout or
	// PullBlocks in the Config pins the static value even with
	// Adaptive set).
	adaptiveRTO bool
	adaptiveWin bool
	rtt         map[proto.Addr]*proto.RTTEstimator
	pullWin     map[proto.Addr]*proto.AIMDWindow
	// IRQ/bottom-half steering epochs (multi-NIC adaptive hosts).
	steerEvery  sim.Duration // 0 = steering disabled
	steerNext   sim.Time     // next quantized decision boundary
	steerLastAt sim.Time     // time of the previous ledger sample
	steerPrev   [][cpu.NumCategories]sim.Duration

	// reg is the per-stack registration cache (Config.RegCache); nil
	// when the cache is disabled and every post pins afresh.
	reg *hostmem.RegCache

	Stats Stats
}

// RegStats snapshots the registration cache's counters (zero value
// when Config.RegCache is off).
func (s *Stack) RegStats() hostmem.RegStats {
	if s.reg == nil {
		return hostmem.RegStats{}
	}
	return s.reg.Stats()
}

type rndvKey struct {
	src proto.Addr
	dst int // local endpoint
	seq uint32
}

type rndvState struct {
	handle int  // receiver pull handle
	done   bool // transfer finished; re-ack on duplicate request
	sender int  // sender handle, for re-acks
}

// Attach builds an Open-MX stack on h and registers its receive
// callback with every NIC (generic Ethernet mode). With Config.AutoTune
// the startup threshold probe runs here, against h's platform.
//
// On a multi-NIC host the pull window widens proportionally: an
// unset PullBlocks becomes the paper's two pipelined blocks times the
// NIC count, so every lane can keep a block in flight (the fixed
// 2-block window only ever occupies two lanes at once — set
// PullBlocks explicitly to measure that plateau). An explicit
// PullBlocks always wins.
func Attach(h *host.Host, cfg Config) *Stack {
	// Adaptive derivations apply only where no explicit value pins the
	// static behaviour — decided before any default is filled in.
	adaptiveRTO := cfg.Adaptive && cfg.RetransmitTimeout == 0
	adaptiveWin := cfg.Adaptive && cfg.PullBlocks == 0
	if cfg.PullBlocks == 0 && h.Lanes() > 1 {
		cfg.PullBlocks = Defaults().PullBlocks * h.Lanes()
	}
	if cfg.AutoTune && (cfg.LargeThreshold == 0 || cfg.IOATMinMsg == 0 ||
		cfg.IOATMinFrag == 0 || cfg.ShmIOATThreshold == 0) {
		th := ProbeThresholds(h.P)
		if cfg.LargeThreshold == 0 {
			cfg.LargeThreshold = th.LargeThreshold
		}
		if cfg.IOATMinMsg == 0 {
			cfg.IOATMinMsg = th.IOATMinMsg
		}
		if cfg.IOATMinFrag == 0 {
			cfg.IOATMinFrag = th.IOATMinFrag
		}
		if cfg.ShmIOATThreshold == 0 {
			cfg.ShmIOATThreshold = th.ShmIOATThreshold
		}
	}
	cfg.fillDefaults()
	s := &Stack{
		H:           h,
		Cfg:         cfg,
		lanes:       h.Lanes(),
		endpoints:   make(map[int]*Endpoint),
		sends:       make(map[int]*largeSend),
		pulls:       make(map[int]*largePull),
		rndvSeen:    make(map[rndvKey]*rndvState),
		adaptiveRTO: adaptiveRTO,
		adaptiveWin: adaptiveWin,
	}
	if cfg.Adaptive {
		s.rtt = make(map[proto.Addr]*proto.RTTEstimator)
		s.pullWin = make(map[proto.Addr]*proto.AIMDWindow)
		if s.lanes > 1 {
			s.steerEvery = steerEpoch
		}
	}
	if cfg.RegCache {
		s.reg = hostmem.NewRegCache(cfg.RegCacheEntries)
	}
	s.Stats.NICTxFrames = make([]int64, s.lanes)
	for i, n := range h.NICs {
		lane := i
		n.SetRxHandler(func(p *sim.Proc, core *cpu.Core, skb *nic.Skb) {
			s.rxCallback(lane, p, core, skb)
		})
		if cfg.DCATargetCore > 0 {
			n.DCATarget = cfg.DCATargetCore
		}
	}
	return s
}

// addr returns the address of a local endpoint.
func (s *Stack) addr(ep int) proto.Addr { return proto.Addr{Host: s.H.Name, EP: ep} }

// laneOf picks the transmit lane for one unit of a message under the
// configured stripe policy. seq identifies the message (the channel
// or rendezvous sequence), unit the stripeable piece within it — the
// eager fragment index or the pull block index. Retransmissions
// recompute the same lane, so a lossy lane is retried on itself and
// per-lane impairment stays attributable.
func (s *Stack) laneOf(seq uint32, unit int) int {
	if s.lanes <= 1 {
		return 0
	}
	switch s.Cfg.StripePolicy {
	case StripeHash:
		// Per-message lane: a seeded multiplicative hash of the
		// message identity, like a switch's L3/L4 flow hash.
		return int((uint64(seq) * 0x9E3779B97F4A7C15 >> 33) % uint64(s.lanes))
	case StripeSingle:
		return 0
	default: // round-robin
		return (int(seq) + unit) % s.lanes
	}
}

// transmit sends a protocol frame on lane 0 (control traffic: acks,
// rendezvous completion). payload may be nil for control frames; wire
// accounting always includes the Open-MX header.
func (s *Stack) transmit(dst proto.Addr, msg any, payload []byte) {
	s.transmitOn(0, dst, msg, payload)
}

// transmitOn sends a protocol frame on the given NIC lane, addressed
// to the peer's same-numbered lane (striping peers use symmetric lane
// numbering; see wire.LaneAddr).
func (s *Stack) transmitOn(lane int, dst proto.Addr, msg any, payload []byte) {
	f := &wire.Frame{
		Data:    payload,
		WireLen: len(payload) + s.H.P.OMXHeaderBytes,
		Msg:     msg,
		DstAddr: wire.LaneAddr(dst.Host, lane),
	}
	s.Stats.NICTxFrames[lane]++
	s.H.NICs[lane].Transmit(f)
}

// largeSend is the sender side of a rendezvous transfer.
type largeSend struct {
	handle int
	ep     *Endpoint
	req    *Request
	dst    proto.Addr
	buf    *hostmem.Buffer
	off, n int
	seq    uint32
	// sentAt is when the rendezvous request first went out (the
	// request -> first-pull round trip is an RTT sample; Karn's rule
	// skips it once the request was retransmitted).
	sentAt sim.Time
	// rtx re-sends the rendezvous request if no pull ever arrives;
	// attempts drives its exponential backoff.
	rtx      sim.Timer
	attempts int
	pulled   bool
	// sampled flags that the request->first-pull RTT was already
	// taken. pulled cannot double as this: the rndv watchdog resets
	// it to probe for progress, and a later pull (e.g. a block
	// re-request) would then be sampled against the original sentAt.
	sampled  bool
	finished bool
}

// largePull is the receiver side of a rendezvous transfer: the paper's
// Section III state — outstanding pull blocks, the I/OAT channel
// assigned to the message, and the pool of skbuffs pending copy that
// the cleanup routine bounds.
type largePull struct {
	handle       int
	ep           *Endpoint
	req          *Request
	src          proto.Addr
	senderHandle int
	key          rndvKey
	buf          *hostmem.Buffer
	off, n       int

	frags     int
	nextBlock int
	numBlocks int
	blocks    map[int]*pullBlock
	received  int
	startedAt sim.Time // pull start, for the whole-rendezvous trace span

	// aw is the transfer's AIMD pull-window controller (adaptive
	// stacks without an explicit PullBlocks; nil otherwise). lastWin
	// tracks the last cwnd counter sample emitted to the trace.
	aw      *proto.AIMDWindow
	lastWin int

	useIOAT bool
	// chs holds one DMA channel per NIC lane: fragments arriving on
	// lane i submit to chs[i], so a striped message drives several
	// engine channels concurrently (single-NIC messages keep the
	// paper's one-channel-per-message policy). lastSeq[i] is the last
	// descriptor sequence submitted on lane i's channel.
	chs      []*ioat.Channel
	lastSeq  []uint64
	pending  []pendingCopy // skbuffs waiting for their copies to retire
	pinnedBy bool          // we pinned (must unpin unless regcache)
	done     bool
}

type pendingCopy struct {
	skb skbRef
	ch  *ioat.Channel // channel the copies were submitted on
	seq uint64        // I/OAT sequence that must retire before freeing
}

// skbRef lets tests substitute fakes; concretely a *nic.Skb.
type skbRef interface{ Free() }

type pullBlock struct {
	idx       int
	firstFrag int
	// asm is the block's hole-aware fragment bitmap: with the block's
	// fragments racing back over several NICs, arrival order within a
	// block is arbitrary.
	asm      proto.Reassembly
	timer    sim.Timer
	attempts int // consecutive timer expiries without progress
	// sentAt is the first request's transmit time (the block's round
	// trip is an RTT and AIMD sample); rtxed marks a retransmitted
	// block, whose round trip is never sampled (Karn's rule).
	sentAt sim.Time
	rtxed  bool
}

// pageChunks splits a destination range [start, start+n) into
// page-aligned chunk lengths — the unit of I/OAT descriptors, since
// the engine manipulates DMA (physical page) addresses. This is why
// chunk size matters so much in Figure 7.
func pageChunks(start, n, pageSize int) []int {
	if n <= 0 {
		return nil
	}
	var out []int
	first := pageSize - start%pageSize
	if first > n {
		first = n
	}
	out = append(out, first)
	n -= first
	for n > 0 {
		c := pageSize
		if c > n {
			c = n
		}
		out = append(out, c)
		n -= c
	}
	return out
}

func (s *Stack) String() string {
	return fmt.Sprintf("openmx(%s, ioat=%v)", s.H.Name, s.Cfg.IOAT)
}
