package wire

import (
	"hash/fnv"

	"omxsim/sim"
)

// Impairment describes the misbehaviour profile of one link
// direction. The zero value is a perfect link and costs nothing: a
// hose with no impairment attached draws no random numbers and
// schedules no extra events, so the zero-impairment fast path is
// bit-identical to an unimpaired build.
//
// All randomness is drawn from a private splitmix64 stream seeded by
// Seed, so a given (profile, frame sequence) always produces the same
// loss/reorder/duplication pattern — experiments under impairment are
// as deterministic and repeatable as clean ones.
type Impairment struct {
	// Seed selects the deterministic random stream. Two hoses with
	// the same profile and seed misbehave identically.
	Seed int64

	// LossRate is the probability that a frame is silently discarded
	// after serialization (the wire ate it; FramesLost counts these).
	LossRate float64
	// DupRate is the probability that a frame is delivered twice
	// (FramesDuped counts the extra copies).
	DupRate float64
	// ReorderRate is the probability that a frame's propagation is
	// inflated by ReorderDelay, letting frames serialized after it
	// overtake it (FramesReordered counts them).
	ReorderRate float64
	// ReorderDelay is the extra delay applied to reordered frames.
	// Zero with a nonzero ReorderRate defaults to 20 µs — several
	// 8 KiB serialization times, enough to reorder a busy link.
	ReorderDelay sim.Duration
	// JitterMax adds a uniform [0, JitterMax) latency jitter to every
	// frame's propagation.
	JitterMax sim.Duration
	// RateScale scales the direction's signalling rate: 0.1 models a
	// link negotiated down to 1 GbE in this direction (asymmetric
	// links). Zero or one means the platform's nominal rate.
	RateScale float64
}

// Enabled reports whether the profile perturbs anything.
func (im Impairment) Enabled() bool {
	return im.LossRate > 0 || im.DupRate > 0 || im.ReorderRate > 0 ||
		im.JitterMax > 0 || (im.RateScale != 0 && im.RateScale != 1)
}

// WithPortSeed derives a per-port profile from im: the same shape,
// reseeded by the port address so every port of a switch misbehaves
// independently but deterministically.
func (im Impairment) WithPortSeed(addr string) Impairment {
	h := fnv.New64a()
	h.Write([]byte(addr))
	im.Seed ^= int64(h.Sum64())
	return im
}

// Rand is the impairment subsystem's deterministic random stream
// (splitmix64): tiny, fast, identical on every platform, and — unlike
// math/rand's global state — private per consumer, so one impaired
// hose's draws can never perturb another's. Exported for the cluster
// layer's cross-traffic generators and for seeded tests.
type Rand struct{ s uint64 }

// NewRand returns a stream seeded by seed. The seed is pre-mixed so
// seed 0 is as good as any other.
func NewRand(seed int64) *Rand {
	return &Rand{s: uint64(seed)*0x9E3779B97F4A7C15 + 0x1F123BB5159A55E5}
}

// Uint64 draws the next value.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 draws a uniform [0,1) float.
func (r *Rand) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn draws a uniform [0,n) int; n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// impairState is the live per-hose impairment: profile plus the
// private random stream.
type impairState struct {
	prof Impairment
	rng  *Rand
}

func newImpairState(im Impairment) *impairState {
	if im.ReorderRate > 0 && im.ReorderDelay == 0 {
		im.ReorderDelay = 20 * sim.Microsecond
	}
	return &impairState{prof: im, rng: NewRand(im.Seed)}
}

// chance draws a uniform [0,1) float and compares it to p.
func (s *impairState) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.rng.Float64() < p
}

// extraDelay draws a uniform [0, max) duration.
func (s *impairState) extraDelay(max sim.Duration) sim.Duration {
	if max <= 0 {
		return 0
	}
	return sim.Duration(s.rng.Uint64() % uint64(max))
}

// HoseStats is a snapshot of one transmit hose's counters.
type HoseStats struct {
	// FramesSent/BytesSent count frames that made it onto the wire
	// (after impairment loss).
	FramesSent int64
	BytesSent  int64
	// FramesDropped counts frames discarded by the legacy Drop
	// predicate (targeted loss injection in tests).
	FramesDropped int64
	// FramesLost counts frames discarded by Impairment.LossRate.
	FramesLost int64
	// FramesDuped counts extra deliveries from Impairment.DupRate.
	FramesDuped int64
	// FramesReordered counts frames delayed by Impairment.ReorderRate.
	FramesReordered int64
	// TailDrops counts frames rejected because the output queue was
	// at QueueLimit (congestion loss, distinct from impairment loss
	// and from the receiving NIC's ring drops: a tail-dropped frame
	// never reaches the NIC, so the two counters never double-count
	// one frame).
	TailDrops int64
	// MaxQueue is the high-water mark of the output queue depth
	// (including the frame being serialized).
	MaxQueue int
}

// Stats snapshots the hose's counters.
func (h *Hose) Stats() HoseStats {
	return HoseStats{
		FramesSent:      h.FramesSent,
		BytesSent:       h.BytesSent,
		FramesDropped:   h.FramesDropped,
		FramesLost:      h.FramesLost,
		FramesDuped:     h.FramesDuped,
		FramesReordered: h.FramesReordered,
		TailDrops:       h.TailDrops,
		MaxQueue:        h.MaxQueue,
	}
}

// SetImpairment installs (or, with a zero profile, removes) the
// hose's impairment. Must be called before traffic flows for
// reproducible streams.
func (h *Hose) SetImpairment(im Impairment) {
	if !im.Enabled() {
		h.imp = nil
		return
	}
	h.imp = newImpairState(im)
}

// Impaired reports whether an impairment profile is active.
func (h *Hose) Impaired() bool { return h.imp != nil }
