package wire

import (
	"testing"

	"omxsim/platform"
	"omxsim/sim"
)

// impSink records arrivals and per-frame delivery counts.
type impSink struct {
	name    string
	frames  []*Frame
	arrived map[int]int // Msg (int id) → copies seen
}

func newImpSink(name string) *impSink { return &impSink{name: name, arrived: make(map[int]int)} }

func (s *impSink) Address() string { return s.name }
func (s *impSink) Arrive(f *Frame) {
	s.frames = append(s.frames, f)
	if id, ok := f.Msg.(int); ok {
		s.arrived[id]++
	}
}

func sendN(e *sim.Engine, h *Hose, n, size int) {
	for i := 0; i < n; i++ {
		h.Send(&Frame{Data: make([]byte, size), WireLen: size + 32, Msg: i})
	}
	e.RunUntil(e.Now() + 10*sim.Second)
}

func newHoseTo(s *impSink) (*sim.Engine, *Hose) {
	e := sim.New()
	p := platform.Clovertown()
	return e, NewHose(e, p, s)
}

func TestImpairmentZeroProfileIsTransparent(t *testing.T) {
	s := newImpSink("s")
	e, h := newHoseTo(s)
	h.SetImpairment(Impairment{Seed: 7}) // no rates: must disable
	if h.Impaired() {
		t.Fatal("zero profile left impairment enabled")
	}
	sendN(e, h, 10, 1024)
	if len(s.frames) != 10 || h.FramesSent != 10 || h.FramesLost != 0 {
		t.Fatalf("frames=%d sent=%d lost=%d", len(s.frames), h.FramesSent, h.FramesLost)
	}
}

func TestImpairmentLossIsDeterministicAndProportional(t *testing.T) {
	run := func(seed int64) (delivered int, lost int64, order []int) {
		s := newImpSink("s")
		e, h := newHoseTo(s)
		h.SetImpairment(Impairment{Seed: seed, LossRate: 0.1})
		sendN(e, h, 2000, 256)
		ids := make([]int, 0, len(s.frames))
		for _, f := range s.frames {
			ids = append(ids, f.Msg.(int))
		}
		return len(s.frames), h.FramesLost, ids
	}
	d1, l1, o1 := run(42)
	d2, l2, o2 := run(42)
	if d1 != d2 || l1 != l2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, l1, d2, l2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, different surviving frame at %d", i)
		}
	}
	if d1+int(l1) != 2000 {
		t.Fatalf("accounting: delivered %d + lost %d != 2000", d1, l1)
	}
	// 10% nominal loss on 2000 frames: expect within a wide band.
	if l1 < 120 || l1 > 300 {
		t.Fatalf("lost %d of 2000 at 10%%, outside [120,300]", l1)
	}
	d3, _, _ := run(43)
	if d3 == d1 {
		t.Log("different seeds delivered the same count (possible, but suspicious)")
	}
}

func TestImpairmentDuplication(t *testing.T) {
	s := newImpSink("s")
	e, h := newHoseTo(s)
	h.SetImpairment(Impairment{Seed: 1, DupRate: 0.5})
	sendN(e, h, 500, 128)
	if h.FramesDuped == 0 {
		t.Fatal("no duplicates at 50% dup rate")
	}
	if int64(len(s.frames)) != 500+h.FramesDuped {
		t.Fatalf("arrivals %d != 500 + dups %d", len(s.frames), h.FramesDuped)
	}
	// Every original delivered at least once, none more than twice.
	for id := 0; id < 500; id++ {
		if c := s.arrived[id]; c < 1 || c > 2 {
			t.Fatalf("frame %d delivered %d times", id, c)
		}
	}
}

func TestImpairmentReorder(t *testing.T) {
	s := newImpSink("s")
	e, h := newHoseTo(s)
	h.SetImpairment(Impairment{Seed: 3, ReorderRate: 0.2, ReorderDelay: 50 * sim.Microsecond})
	sendN(e, h, 200, 256)
	if h.FramesReordered == 0 {
		t.Fatal("nothing reordered at 20%")
	}
	if len(s.frames) != 200 {
		t.Fatalf("delivered %d", len(s.frames))
	}
	inversions := 0
	prev := -1
	for _, f := range s.frames {
		if id := f.Msg.(int); id < prev {
			inversions++
		} else {
			prev = f.Msg.(int)
		}
	}
	if inversions == 0 {
		t.Fatal("reorder delay produced no out-of-order arrivals")
	}
}

func TestImpairmentJitterDelaysButDelivers(t *testing.T) {
	s := newImpSink("s")
	e, h := newHoseTo(s)
	h.SetImpairment(Impairment{Seed: 5, JitterMax: 10 * sim.Microsecond})
	sendN(e, h, 100, 64)
	if len(s.frames) != 100 {
		t.Fatalf("delivered %d", len(s.frames))
	}
}

func TestImpairmentRateAsymmetry(t *testing.T) {
	s := newImpSink("s")
	_, h := newHoseTo(s)
	nominal := h.SerializeTime(8192)
	h.SetImpairment(Impairment{Seed: 1, RateScale: 0.1})
	slowed := h.SerializeTime(8192)
	if slowed < 9*nominal || slowed > 11*nominal {
		t.Fatalf("RateScale 0.1: serialize %v, want ≈10x %v", slowed, nominal)
	}
}

func TestTailDropAtQueueLimit(t *testing.T) {
	s := newImpSink("s")
	e, h := newHoseTo(s)
	h.QueueLimit = 4
	for i := 0; i < 20; i++ {
		h.Send(&Frame{Data: make([]byte, 8192), WireLen: 8192 + 32, Msg: i})
	}
	e.RunUntil(10 * sim.Millisecond)
	if h.TailDrops == 0 {
		t.Fatal("no tail drops with a 4-frame queue and a 20-frame burst")
	}
	if int64(len(s.frames))+h.TailDrops != 20 {
		t.Fatalf("delivered %d + taildrops %d != 20", len(s.frames), h.TailDrops)
	}
	if h.MaxQueue > 4 {
		t.Fatalf("queue high-water %d exceeds limit 4", h.MaxQueue)
	}
	// First frame dequeues before the burst finishes, so at least
	// QueueLimit+1 frames get through.
	if len(s.frames) < 4 {
		t.Fatalf("only %d frames delivered", len(s.frames))
	}
}

func TestSwitchPortStatsAndCongestion(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	sw := NewSwitch(e, p)
	sw.OutputQueueFrames = 2
	a, b, c := newImpSink("a"), newImpSink("b"), newImpSink("c")
	ha := sw.Attach(a)
	sw.Attach(b)
	hc := sw.Attach(c)
	// Incast: two senders converge on b's output port, which drains
	// at half their combined arrival rate — the queue must overflow.
	for i := 0; i < 30; i++ {
		ha.Send(&Frame{Data: make([]byte, 8192), WireLen: 8192 + 32, Msg: i, DstAddr: "b", SrcAddr: "a"})
		hc.Send(&Frame{Data: make([]byte, 8192), WireLen: 8192 + 32, Msg: 100 + i, DstAddr: "b", SrcAddr: "c"})
	}
	e.RunUntil(10 * sim.Millisecond)
	ports := sw.Ports()
	if len(ports) != 3 || ports[0].Addr != "a" || ports[1].Addr != "b" {
		t.Fatalf("ports: %+v", ports)
	}
	pb := ports[1]
	if pb.TailDrops == 0 {
		t.Fatal("no tail drops on the congested output port")
	}
	if pb.MaxQueue > 2 {
		t.Fatalf("port queue high-water %d > limit 2", pb.MaxQueue)
	}
	if int64(len(b.frames)) != pb.FramesSent {
		t.Fatalf("b received %d, port sent %d", len(b.frames), pb.FramesSent)
	}
	if pb.FramesSent+pb.TailDrops != sw.FramesForwarded {
		t.Fatalf("sent %d + taildrop %d != forwarded %d", pb.FramesSent, pb.TailDrops, sw.FramesForwarded)
	}
}

func TestSwitchPortImpairmentIsPerPortDeterministic(t *testing.T) {
	run := func() (la, lb int64) {
		e := sim.New()
		p := platform.Clovertown()
		sw := NewSwitch(e, p)
		sw.PortImpair = Impairment{Seed: 9, LossRate: 0.2}
		a, b := newImpSink("a"), newImpSink("b")
		ha := sw.Attach(a)
		sw.Attach(b)
		for i := 0; i < 500; i++ {
			ha.Send(&Frame{Data: make([]byte, 256), WireLen: 256 + 32, Msg: i, DstAddr: "b"})
		}
		e.RunUntil(sim.Second)
		return sw.OutHose("a").FramesLost, sw.OutHose("b").FramesLost
	}
	la1, lb1 := run()
	la2, lb2 := run()
	if la1 != la2 || lb1 != lb2 {
		t.Fatalf("per-port impairment not deterministic: (%d,%d) vs (%d,%d)", la1, lb1, la2, lb2)
	}
	if lb1 == 0 {
		t.Fatal("no loss on impaired output port")
	}
	if la1 != 0 {
		t.Fatalf("port a carried no traffic but lost %d", la1)
	}
}
