package wire

import (
	"testing"

	"omxsim/platform"
	"omxsim/sim"
)

type sink struct {
	name    string
	frames  []*Frame
	arrived []sim.Time
	e       *sim.Engine
}

func (s *sink) Address() string { return s.name }
func (s *sink) Arrive(f *Frame) {
	s.frames = append(s.frames, f)
	s.arrived = append(s.arrived, s.e.Now())
}

func setup() (*sim.Engine, *platform.Platform, *sink, *Hose) {
	e := sim.New()
	p := platform.Clovertown()
	dst := &sink{name: "dst", e: e}
	return e, p, dst, NewHose(e, p, dst)
}

func TestSerializeTime(t *testing.T) {
	_, p, _, h := setup()
	// 8224 wire bytes + 38 framing at 1.25 GB/s ≈ 6.6 µs.
	d := h.SerializeTime(8224)
	want := sim.Duration(float64(8224+p.EthFrameOverhead) / float64(p.WireRate))
	if d != want {
		t.Fatalf("serialize = %v, want %v", d, want)
	}
}

func TestDeliveryLatency(t *testing.T) {
	e, p, dst, h := setup()
	h.Send(&Frame{WireLen: 1000})
	e.Run()
	if len(dst.frames) != 1 {
		t.Fatal("frame lost")
	}
	want := h.SerializeTime(1000) + sim.Duration(p.WirePropagation)
	if dst.arrived[0] != want {
		t.Fatalf("arrived at %v, want %v", dst.arrived[0], want)
	}
}

func TestFIFOAndBackToBackPacing(t *testing.T) {
	e, _, dst, h := setup()
	for i := 0; i < 5; i++ {
		h.Send(&Frame{WireLen: 2000, Msg: i})
	}
	e.Run()
	if len(dst.frames) != 5 {
		t.Fatalf("delivered %d", len(dst.frames))
	}
	ser := h.SerializeTime(2000)
	for i := range dst.frames {
		if dst.frames[i].Msg.(int) != i {
			t.Fatalf("order broken: %v", dst.frames[i].Msg)
		}
		if i > 0 {
			gap := dst.arrived[i] - dst.arrived[i-1]
			if gap != ser {
				t.Fatalf("gap %d = %v, want %v", i, gap, ser)
			}
		}
	}
}

func TestStatsAndDrop(t *testing.T) {
	e, _, dst, h := setup()
	n := 0
	h.Drop = func(f *Frame) bool { n++; return n == 2 }
	for i := 0; i < 3; i++ {
		h.Send(&Frame{WireLen: 100})
	}
	e.Run()
	if len(dst.frames) != 2 || h.FramesDropped != 1 || h.FramesSent != 2 {
		t.Fatalf("frames=%d dropped=%d sent=%d", len(dst.frames), h.FramesDropped, h.FramesSent)
	}
	if h.BytesSent != 200 {
		t.Fatalf("bytes=%d", h.BytesSent)
	}
}

func TestQueueLen(t *testing.T) {
	e, _, _, h := setup()
	for i := 0; i < 4; i++ {
		h.Send(&Frame{WireLen: 8000})
	}
	if h.QueueLen() == 0 {
		t.Fatal("queue empty while serializing")
	}
	e.Run()
	if h.QueueLen() != 0 {
		t.Fatalf("queue = %d after drain", h.QueueLen())
	}
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, _, _, h := setup()
	h.Send(&Frame{WireLen: -1})
}

func TestSwitchRoutesByAddress(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	a := &sink{name: "a", e: e}
	b := &sink{name: "b", e: e}
	sw := NewSwitch(e, p)
	hoseA := sw.Attach(a)
	_ = sw.Attach(b)
	hoseA.Send(&Frame{WireLen: 100, DstAddr: "b"})
	hoseA.Send(&Frame{WireLen: 100, DstAddr: "a"}) // hairpin back
	hoseA.Send(&Frame{WireLen: 100, DstAddr: "zz"})
	e.Run()
	if len(b.frames) != 1 || len(a.frames) != 1 {
		t.Fatalf("a=%d b=%d", len(a.frames), len(b.frames))
	}
	if sw.FramesForwarded != 2 || sw.FramesUnknown != 1 {
		t.Fatalf("forwarded=%d unknown=%d", sw.FramesForwarded, sw.FramesUnknown)
	}
}

func TestSwitchAddsStoreAndForwardLatency(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	a := &sink{name: "a", e: e}
	b := &sink{name: "b", e: e}
	sw := NewSwitch(e, p)
	hoseA := sw.Attach(a)
	_ = sw.Attach(b)
	hoseA.Send(&Frame{WireLen: 1000, DstAddr: "b"})
	e.Run()
	direct := NewHose(e, p, b).SerializeTime(1000) + sim.Duration(p.WirePropagation)
	if b.arrived[0] <= direct {
		t.Fatalf("switched path (%v) not slower than direct (%v)", b.arrived[0], direct)
	}
}
