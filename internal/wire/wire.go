// Package wire models Ethernet links: FIFO serialization at the
// signalling rate, per-frame framing overhead, propagation delay,
// targeted and profiled loss injection (see Impairment: seeded
// deterministic loss, duplication, reordering, jitter and rate
// asymmetry), bounded transmit queues with tail-drop, and a
// store-and-forward switch with per-port counters and congestible
// output queues.
//
// Frames carry a snapshot of their real payload bytes (taken when the
// sending NIC's DMA engine read them from host memory), so data
// integrity can be checked end to end, plus a decoded protocol message
// standing in for the on-wire header (whose size is accounted for in
// the timing via WireLen).
package wire

import (
	"fmt"

	"omxsim/platform"
	"omxsim/sim"
)

// Frame is one Ethernet frame in flight.
type Frame struct {
	// Data is the payload byte snapshot (may be nil for pure control
	// messages whose few bytes ride in Msg).
	Data []byte
	// WireLen is the accounted payload length in bytes, including the
	// protocol header but excluding Ethernet framing (which the link
	// adds from the platform constants).
	WireLen int
	// Msg is the decoded protocol message (header fields).
	Msg any
	// DstAddr routes the frame through switches. Point-to-point links
	// ignore it.
	DstAddr string
	// SrcAddr identifies the sender.
	SrcAddr string
}

// Port is anything that can receive frames from a link: a NIC or a
// switch port.
type Port interface {
	// Arrive delivers a frame at the simulated instant its last bit
	// arrives at the port.
	Arrive(f *Frame)
	// Address is the port's globally unique address.
	Address() string
}

// Hose is the transmit side of one link direction: frames Sent on it
// serialize FIFO at the wire rate and arrive at the peer port after
// the propagation delay.
type Hose struct {
	E *sim.Engine
	P *platform.Platform

	peer  Port
	queue []*Frame
	busy  bool

	// Drop, if non-nil, is consulted for every frame after
	// serialization; returning true discards the frame (loss
	// injection for retransmission tests).
	Drop func(f *Frame) bool

	// QueueLimit bounds the output queue (frames, including the one
	// serializing); 0 means unbounded. Frames sent into a full queue
	// are tail-dropped — the congested-switch failure mode.
	QueueLimit int

	// imp, when non-nil, perturbs the direction (loss, reorder,
	// duplication, jitter, rate asymmetry). See Impairment.
	imp *impairState

	// Stats.
	FramesSent      int64
	BytesSent       int64
	FramesDropped   int64
	FramesLost      int64
	FramesDuped     int64
	FramesReordered int64
	TailDrops       int64
	MaxQueue        int
}

// NewHose returns a transmit hose towards peer.
func NewHose(e *sim.Engine, p *platform.Platform, peer Port) *Hose {
	return &Hose{E: e, P: p, peer: peer}
}

// Peer returns the receiving port of this hose.
func (h *Hose) Peer() Port { return h.peer }

// SerializeTime reports the wire occupancy of a frame with the given
// payload length (adding Ethernet framing overhead), honouring the
// direction's rate asymmetry.
func (h *Hose) SerializeTime(wireLen int) sim.Duration {
	bits := float64(wireLen + h.P.EthFrameOverhead)
	rate := float64(h.P.WireRate)
	if h.imp != nil && h.imp.prof.RateScale > 0 {
		rate *= h.imp.prof.RateScale
	}
	return sim.Duration(bits / rate)
}

// Send queues a frame for transmission. The frame arrives at the peer
// after all previously queued frames serialize, plus this frame's own
// serialization time, plus propagation. When QueueLimit is set and the
// queue is full, the frame is tail-dropped instead.
func (h *Hose) Send(f *Frame) {
	if f.WireLen < 0 {
		panic(fmt.Sprintf("wire: negative frame length %d", f.WireLen))
	}
	if h.QueueLimit > 0 && h.occupancy() >= h.QueueLimit {
		h.TailDrops++
		return
	}
	h.queue = append(h.queue, f)
	if occ := h.occupancy(); occ > h.MaxQueue {
		h.MaxQueue = occ
	}
	if !h.busy {
		h.busy = true
		h.startNext()
	}
}

// occupancy counts frames in the device: waiting plus the one being
// serialized (startNext pops that one off the queue while it's on
// the wire).
func (h *Hose) occupancy() int {
	n := len(h.queue)
	if h.busy {
		n++
	}
	return n
}

// QueueLen reports frames in the device (including the one
// serializing).
func (h *Hose) QueueLen() int { return h.occupancy() }

func (h *Hose) startNext() {
	if len(h.queue) == 0 {
		h.busy = false
		return
	}
	f := h.queue[0]
	h.queue = h.queue[1:]
	h.E.Schedule(h.SerializeTime(f.WireLen), func() {
		switch {
		case h.Drop != nil && h.Drop(f):
			h.FramesDropped++
		case h.imp != nil:
			h.impairedDeliver(f)
		default:
			h.FramesSent++
			h.BytesSent += int64(f.WireLen)
			h.E.Schedule(sim.Duration(h.P.WirePropagation), func() { h.peer.Arrive(f) })
		}
		h.startNext()
	})
}

// impairedDeliver applies the impairment profile to one serialized
// frame: loss, then per-copy jitter/reorder delay, then duplication.
// Draw order is fixed (loss, delay, dup) so streams are reproducible.
func (h *Hose) impairedDeliver(f *Frame) {
	im := h.imp
	if im.chance(im.prof.LossRate) {
		h.FramesLost++
		return
	}
	h.FramesSent++
	h.BytesSent += int64(f.WireLen)
	deliver := func() {
		d := sim.Duration(h.P.WirePropagation) + im.extraDelay(im.prof.JitterMax)
		if im.chance(im.prof.ReorderRate) {
			h.FramesReordered++
			d += im.prof.ReorderDelay
		}
		h.E.Schedule(d, func() { h.peer.Arrive(f) })
	}
	deliver()
	if im.chance(im.prof.DupRate) {
		h.FramesDuped++
		deliver()
	}
}

// Connect builds a full-duplex point-to-point link between two ports
// and returns the two transmit hoses (a→b, b→a).
func Connect(e *sim.Engine, p *platform.Platform, a, b Port) (ab, ba *Hose) {
	return NewHose(e, p, b), NewHose(e, p, a)
}

// LaneAddr is the network address of a host's lane-th NIC. Lane 0
// keeps the bare host name, so single-NIC clusters are bit-identical
// to the pre-multi-NIC wire format; extra NICs get "host#lane".
// Striping peers assume symmetric lane numbering: lane k of one host
// talks to lane k of the other (cluster.Link enforces equal counts;
// switched multi-NIC topologies must use equal counts per host).
func LaneAddr(host string, lane int) string {
	if lane == 0 {
		return host
	}
	return fmt.Sprintf("%s#%d", host, lane)
}

// Switch is a minimal store-and-forward Ethernet switch: each attached
// port gets a dedicated full-duplex link to the switch; the switch
// forwards by destination address with one additional serialization on
// the output link (plus a fixed forwarding latency). Output queues may
// be bounded (OutputQueueFrames) to model a congested switch that
// tail-drops, and every output port can carry an impairment profile.
type Switch struct {
	E *sim.Engine
	P *platform.Platform
	// ForwardLatency is the switch's own cut-through/lookup latency.
	ForwardLatency sim.Duration
	// OutputQueueFrames bounds each output port's queue (0 =
	// unbounded). Applied to ports attached after it is set.
	OutputQueueFrames int
	// PortImpair, when enabled, is installed on every subsequently
	// attached output port, reseeded per port address.
	PortImpair Impairment

	byAddr map[string]*Hose // dest address → output hose (switch→NIC)
	order  []string         // attach order, for deterministic stats

	// FramesForwarded counts successfully routed frames; unroutable
	// frames are counted in FramesUnknown and discarded.
	FramesForwarded int64
	FramesUnknown   int64
}

// NewSwitch returns an empty switch.
func NewSwitch(e *sim.Engine, p *platform.Platform) *Switch {
	return &Switch{E: e, P: p, ForwardLatency: 300, byAddr: make(map[string]*Hose)}
}

// switchPort is the switch's receive side for one attached device.
type switchPort struct {
	sw   *Switch
	addr string
}

func (sp *switchPort) Address() string { return sp.addr }

func (sp *switchPort) Arrive(f *Frame) {
	out, ok := sp.sw.byAddr[f.DstAddr]
	if !ok {
		sp.sw.FramesUnknown++
		return
	}
	sp.sw.FramesForwarded++
	sp.sw.E.Schedule(sp.sw.ForwardLatency, func() { out.Send(f) })
}

// Attach connects a device port to the switch and returns the hose the
// device must transmit on (device → switch). The output (switch →
// device) hose inherits the switch's queue bound and per-port
// impairment profile.
func (s *Switch) Attach(dev Port) *Hose {
	out := NewHose(s.E, s.P, dev)
	out.QueueLimit = s.OutputQueueFrames
	if s.PortImpair.Enabled() {
		out.SetImpairment(s.PortImpair.WithPortSeed(dev.Address()))
	}
	s.byAddr[dev.Address()] = out
	s.order = append(s.order, dev.Address())
	sp := &switchPort{sw: s, addr: "switch:" + dev.Address()}
	return NewHose(s.E, s.P, sp)
}

// PortStats is a per-output-port counter snapshot.
type PortStats struct {
	Addr string
	HoseStats
}

// Ports snapshots every output port's counters in attach order.
func (s *Switch) Ports() []PortStats {
	out := make([]PortStats, 0, len(s.order))
	for _, addr := range s.order {
		out = append(out, PortStats{Addr: addr, HoseStats: s.byAddr[addr].Stats()})
	}
	return out
}

// OutHose returns the output hose towards addr, or nil (for tests and
// the cluster stats snapshot).
func (s *Switch) OutHose(addr string) *Hose { return s.byAddr[addr] }
