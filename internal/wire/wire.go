// Package wire models Ethernet links: FIFO serialization at the
// signalling rate, per-frame framing overhead, propagation delay,
// targeted and profiled loss injection (see Impairment: seeded
// deterministic loss, duplication, reordering, jitter and rate
// asymmetry), bounded transmit queues with tail-drop, and a
// store-and-forward switch with per-port counters and congestible
// output queues.
//
// Frames carry a snapshot of their real payload bytes (taken when the
// sending NIC's DMA engine read them from host memory), so data
// integrity can be checked end to end, plus a decoded protocol message
// standing in for the on-wire header (whose size is accounted for in
// the timing via WireLen).
package wire

import (
	"fmt"

	"omxsim/platform"
	"omxsim/sim"
)

// Frame is one Ethernet frame in flight.
type Frame struct {
	// Data is the payload byte snapshot (may be nil for pure control
	// messages whose few bytes ride in Msg).
	Data []byte
	// WireLen is the accounted payload length in bytes, including the
	// protocol header but excluding Ethernet framing (which the link
	// adds from the platform constants).
	WireLen int
	// Msg is the decoded protocol message (header fields).
	Msg any
	// DstAddr routes the frame through switches. Point-to-point links
	// ignore it.
	DstAddr string
	// SrcAddr identifies the sender.
	SrcAddr string
}

// Port is anything that can receive frames from a link: a NIC or a
// switch port.
type Port interface {
	// Arrive delivers a frame at the simulated instant its last bit
	// arrives at the port.
	Arrive(f *Frame)
	// Address is the port's globally unique address.
	Address() string
}

// Hose is the transmit side of one link direction: frames Sent on it
// serialize FIFO at the wire rate and arrive at the peer port after
// the propagation delay.
type Hose struct {
	E *sim.Engine
	P *platform.Platform

	peer Port
	// queue is a head-cursor FIFO: startNext advances head instead of
	// reslicing, so the backing array is reused and the steady state
	// stays off the allocator.
	queue []*Frame
	head  int
	busy  bool

	// Drop, if non-nil, is consulted for every frame after
	// serialization; returning true discards the frame (loss
	// injection for retransmission tests).
	Drop func(f *Frame) bool

	// QueueLimit bounds the output queue (frames, including the one
	// serializing); 0 means unbounded. Frames sent into a full queue
	// are tail-dropped — the congested-switch failure mode.
	QueueLimit int

	// ExtraLatency is added to the propagation delay of every frame
	// (longer cable runs, inter-switch trunks). Zero costs nothing.
	ExtraLatency sim.Duration

	// imp, when non-nil, perturbs the direction (loss, reorder,
	// duplication, jitter, rate asymmetry). See Impairment.
	imp *impairState

	// Stats.
	FramesSent      int64
	BytesSent       int64
	FramesDropped   int64
	FramesLost      int64
	FramesDuped     int64
	FramesReordered int64
	TailDrops       int64
	MaxQueue        int
}

// NewHose returns a transmit hose towards peer.
func NewHose(e *sim.Engine, p *platform.Platform, peer Port) *Hose {
	return &Hose{E: e, P: p, peer: peer}
}

// Peer returns the receiving port of this hose.
func (h *Hose) Peer() Port { return h.peer }

// SerializeTime reports the wire occupancy of a frame with the given
// payload length (adding Ethernet framing overhead), honouring the
// direction's rate asymmetry.
func (h *Hose) SerializeTime(wireLen int) sim.Duration {
	bits := float64(wireLen + h.P.EthFrameOverhead)
	rate := float64(h.P.WireRate)
	if h.imp != nil && h.imp.prof.RateScale > 0 {
		rate *= h.imp.prof.RateScale
	}
	return sim.Duration(bits / rate)
}

// Send queues a frame for transmission. The frame arrives at the peer
// after all previously queued frames serialize, plus this frame's own
// serialization time, plus propagation. When QueueLimit is set and the
// queue is full, the frame is tail-dropped instead.
func (h *Hose) Send(f *Frame) {
	if f.WireLen < 0 {
		panic(fmt.Sprintf("wire: negative frame length %d", f.WireLen))
	}
	if h.QueueLimit > 0 && h.occupancy() >= h.QueueLimit {
		h.TailDrops++
		return
	}
	h.queue = append(h.queue, f)
	if occ := h.occupancy(); occ > h.MaxQueue {
		h.MaxQueue = occ
	}
	if !h.busy {
		h.busy = true
		h.startNext()
	}
}

// occupancy counts frames in the device: waiting plus the one being
// serialized (startNext pops that one off the queue while it's on
// the wire).
func (h *Hose) occupancy() int {
	n := len(h.queue) - h.head
	if h.busy {
		n++
	}
	return n
}

// QueueLen reports frames in the device (including the one
// serializing).
func (h *Hose) QueueLen() int { return h.occupancy() }

func (h *Hose) startNext() {
	if h.head == len(h.queue) {
		h.queue = h.queue[:0]
		h.head = 0
		h.busy = false
		return
	}
	f := h.queue[h.head]
	h.queue[h.head] = nil
	h.head++
	h.E.Schedule(h.SerializeTime(f.WireLen), func() {
		switch {
		case h.Drop != nil && h.Drop(f):
			h.FramesDropped++
		case h.imp != nil:
			h.impairedDeliver(f)
		default:
			h.FramesSent++
			h.BytesSent += int64(f.WireLen)
			h.E.Schedule(sim.Duration(h.P.WirePropagation)+h.ExtraLatency, func() { h.peer.Arrive(f) })
		}
		h.startNext()
	})
}

// impairedDeliver applies the impairment profile to one serialized
// frame: loss, then per-copy jitter/reorder delay, then duplication.
// Draw order is fixed (loss, delay, dup) so streams are reproducible.
func (h *Hose) impairedDeliver(f *Frame) {
	im := h.imp
	if im.chance(im.prof.LossRate) {
		h.FramesLost++
		return
	}
	h.FramesSent++
	h.BytesSent += int64(f.WireLen)
	deliver := func() {
		d := sim.Duration(h.P.WirePropagation) + h.ExtraLatency + im.extraDelay(im.prof.JitterMax)
		if im.chance(im.prof.ReorderRate) {
			h.FramesReordered++
			d += im.prof.ReorderDelay
		}
		h.E.Schedule(d, func() { h.peer.Arrive(f) })
	}
	deliver()
	if im.chance(im.prof.DupRate) {
		h.FramesDuped++
		deliver()
	}
}

// Connect builds a full-duplex point-to-point link between two ports
// and returns the two transmit hoses (a→b, b→a).
func Connect(e *sim.Engine, p *platform.Platform, a, b Port) (ab, ba *Hose) {
	return NewHose(e, p, b), NewHose(e, p, a)
}

// LaneAddr is the network address of a host's lane-th NIC. Lane 0
// keeps the bare host name, so single-NIC clusters are bit-identical
// to the pre-multi-NIC wire format; extra NICs get "host#lane".
// Striping peers assume symmetric lane numbering: lane k of one host
// talks to lane k of the other (cluster.Link enforces equal counts;
// switched multi-NIC topologies must use equal counts per host).
func LaneAddr(host string, lane int) string {
	if lane == 0 {
		return host
	}
	return fmt.Sprintf("%s#%d", host, lane)
}

// Switch is a minimal store-and-forward Ethernet switch: each attached
// port gets a dedicated full-duplex link to the switch; the switch
// forwards by destination address with one additional serialization on
// the output link (plus a fixed forwarding latency). Output queues may
// be bounded (OutputQueueFrames) to model a congested switch that
// tail-drops, and every output port can carry an impairment profile.
//
// Switches also interconnect: ConnectTrunk joins two switches with an
// inter-switch link, AddRoute pins remote addresses to a specific
// trunk (a spine's down-link per leaf), and AddUplink registers
// default-route candidates among which flows spread ECMP-style (a
// leaf's up-links, one per spine). Uplink selection is flow-sticky —
// every (src, dst) pair rides one uplink for the simulation's lifetime
// — so a flow's frames stay ordered per path exactly as the host-side
// stripe policies keep per-lane order.
type Switch struct {
	E *sim.Engine
	P *platform.Platform
	// ForwardLatency is the switch's own cut-through/lookup latency.
	ForwardLatency sim.Duration
	// OutputQueueFrames bounds each output port's queue (0 =
	// unbounded). Applied to ports attached after it is set.
	OutputQueueFrames int
	// PortImpair, when enabled, is installed on every subsequently
	// attached output port, reseeded per port address.
	PortImpair Impairment
	// ECMPPolicy selects how flows spread over the uplinks: ECMPHash
	// (default) hashes the (src, dst) pair like an L3/L4 flow hash;
	// ECMPRoundRobin assigns uplinks round-robin at first sight. Both
	// are flow-sticky, preserving per-flow frame order.
	ECMPPolicy string

	byAddr map[string]*Hose // dest address → output hose (switch→NIC)
	order  []string         // attach order, for deterministic stats

	routes      map[string]*Hose // remote address → trunk hose (spine down-routes)
	uplinks     []*Hose          // default-route candidates (leaf up-links)
	uplinkNames []string
	trunkNames  []string // all trunk hoses originating here, registration order
	trunkHoses  []*Hose
	flows       map[flowKey]int // sticky flow → uplink index
	nextUplink  int             // roundrobin first-sight counter

	// FramesForwarded counts successfully routed frames; unroutable
	// frames are counted in FramesUnknown and discarded.
	FramesForwarded int64
	FramesUnknown   int64
}

// ECMP uplink-selection policies, mirroring the host stripe policies.
const (
	ECMPHash       = "hash"
	ECMPRoundRobin = "roundrobin"
)

// flowKey identifies one unidirectional flow for uplink stickiness.
type flowKey struct {
	src, dst string
}

// NewSwitch returns an empty switch.
func NewSwitch(e *sim.Engine, p *platform.Platform) *Switch {
	return &Switch{E: e, P: p, ForwardLatency: 300, byAddr: make(map[string]*Hose)}
}

// switchPort is the switch's receive side for one attached device.
type switchPort struct {
	sw   *Switch
	addr string
}

func (sp *switchPort) Address() string { return sp.addr }

func (sp *switchPort) Arrive(f *Frame) { sp.sw.route(f) }

// route forwards one arrived frame: local attached port first, then an
// explicit remote route, then ECMP over the uplinks.
func (s *Switch) route(f *Frame) {
	out := s.lookup(f)
	if out == nil {
		s.FramesUnknown++
		return
	}
	s.FramesForwarded++
	s.E.Schedule(s.ForwardLatency, func() { out.Send(f) })
}

func (s *Switch) lookup(f *Frame) *Hose {
	if out, ok := s.byAddr[f.DstAddr]; ok {
		return out
	}
	if out, ok := s.routes[f.DstAddr]; ok {
		return out
	}
	if len(s.uplinks) > 0 {
		return s.uplinks[s.pickUplink(f)]
	}
	return nil
}

// pickUplink returns the sticky uplink index for the frame's flow,
// assigning one on first sight according to ECMPPolicy.
func (s *Switch) pickUplink(f *Frame) int {
	if len(s.uplinks) == 1 {
		return 0
	}
	key := flowKey{src: f.SrcAddr, dst: f.DstAddr}
	if i, ok := s.flows[key]; ok {
		return i
	}
	var i int
	switch s.ECMPPolicy {
	case ECMPRoundRobin:
		i = s.nextUplink % len(s.uplinks)
		s.nextUplink++
	default: // hash
		i = int(flowHash(f.SrcAddr, f.DstAddr) % uint64(len(s.uplinks)))
	}
	if s.flows == nil {
		s.flows = make(map[flowKey]int)
	}
	s.flows[key] = i
	return i
}

// flowHash is a deterministic L3/L4-style flow hash: FNV-1a over the
// two addresses, finished with the same multiplicative scramble the
// host stripe hash uses.
func flowHash(src, dst string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(dst); i++ {
		h = (h ^ uint64(dst[i])) * prime64
	}
	return h * 0x9E3779B97F4A7C15 >> 1
}

// FlowPaths snapshots the sticky flow table (flow → uplink name), for
// determinism tests and diagnostics.
func (s *Switch) FlowPaths() map[[2]string]string {
	out := make(map[[2]string]string, len(s.flows))
	for k, i := range s.flows {
		out[[2]string{k.src, k.dst}] = s.uplinkNames[i]
	}
	return out
}

// trunkPort is the receiving end of an inter-switch link: arriving
// frames re-enter the peer switch's routing.
type trunkPort struct {
	sw   *Switch
	addr string
}

func (tp *trunkPort) Address() string { return tp.addr }

func (tp *trunkPort) Arrive(f *Frame) { tp.sw.route(f) }

// ConnectTrunk joins two switches with a full-duplex inter-switch link
// named name and returns the two transmit hoses (a→b, b→a). Each hose
// inherits its sending switch's output-queue bound; the caller then
// registers it as an uplink (AddUplink) or a pinned route (AddRoute)
// on that switch.
func ConnectTrunk(a, b *Switch, name string) (ab, ba *Hose) {
	ab = NewHose(a.E, a.P, &trunkPort{sw: b, addr: "trunk:" + name + ">"})
	ab.QueueLimit = a.OutputQueueFrames
	ba = NewHose(b.E, b.P, &trunkPort{sw: a, addr: "trunk:" + name + "<"})
	ba.QueueLimit = b.OutputQueueFrames
	a.registerTrunk(name+">", ab)
	b.registerTrunk(name+"<", ba)
	return ab, ba
}

func (s *Switch) registerTrunk(name string, h *Hose) {
	s.trunkNames = append(s.trunkNames, name)
	s.trunkHoses = append(s.trunkHoses, h)
}

// AddUplink registers out (a trunk hose originating at s) as a
// default-route candidate: frames to addresses s knows no route for
// spread over the uplinks ECMP-style.
func (s *Switch) AddUplink(name string, out *Hose) {
	s.uplinks = append(s.uplinks, out)
	s.uplinkNames = append(s.uplinkNames, name)
}

// AddRoute pins a remote address to a specific trunk hose (a spine's
// down-link towards the leaf that owns addr).
func (s *Switch) AddRoute(addr string, out *Hose) {
	if s.routes == nil {
		s.routes = make(map[string]*Hose)
	}
	s.routes[addr] = out
}

// Attach connects a device port to the switch and returns the hose the
// device must transmit on (device → switch). The output (switch →
// device) hose inherits the switch's queue bound and per-port
// impairment profile.
func (s *Switch) Attach(dev Port) *Hose {
	out := NewHose(s.E, s.P, dev)
	out.QueueLimit = s.OutputQueueFrames
	if s.PortImpair.Enabled() {
		out.SetImpairment(s.PortImpair.WithPortSeed(dev.Address()))
	}
	s.byAddr[dev.Address()] = out
	s.order = append(s.order, dev.Address())
	sp := &switchPort{sw: s, addr: "switch:" + dev.Address()}
	return NewHose(s.E, s.P, sp)
}

// PortStats is a per-output-port counter snapshot.
type PortStats struct {
	Addr string
	HoseStats
}

// Ports snapshots every output port's counters in attach order,
// followed by trunk hoses in registration order.
func (s *Switch) Ports() []PortStats {
	out := make([]PortStats, 0, len(s.order)+len(s.trunkHoses))
	for _, addr := range s.order {
		out = append(out, PortStats{Addr: addr, HoseStats: s.byAddr[addr].Stats()})
	}
	for i, h := range s.trunkHoses {
		out = append(out, PortStats{Addr: "trunk:" + s.trunkNames[i], HoseStats: h.Stats()})
	}
	return out
}

// Trunks snapshots only the trunk hoses originating at this switch.
func (s *Switch) Trunks() []PortStats {
	out := make([]PortStats, 0, len(s.trunkHoses))
	for i, h := range s.trunkHoses {
		out = append(out, PortStats{Addr: s.trunkNames[i], HoseStats: h.Stats()})
	}
	return out
}

// OutHose returns the output hose towards addr, or nil (for tests and
// the cluster stats snapshot).
func (s *Switch) OutHose(addr string) *Hose { return s.byAddr[addr] }
