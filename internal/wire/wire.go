// Package wire models Ethernet links: FIFO serialization at the
// signalling rate, per-frame framing overhead, propagation delay,
// deterministic loss injection, and a small store-and-forward switch.
//
// Frames carry a snapshot of their real payload bytes (taken when the
// sending NIC's DMA engine read them from host memory), so data
// integrity can be checked end to end, plus a decoded protocol message
// standing in for the on-wire header (whose size is accounted for in
// the timing via WireLen).
package wire

import (
	"fmt"

	"omxsim/platform"
	"omxsim/sim"
)

// Frame is one Ethernet frame in flight.
type Frame struct {
	// Data is the payload byte snapshot (may be nil for pure control
	// messages whose few bytes ride in Msg).
	Data []byte
	// WireLen is the accounted payload length in bytes, including the
	// protocol header but excluding Ethernet framing (which the link
	// adds from the platform constants).
	WireLen int
	// Msg is the decoded protocol message (header fields).
	Msg any
	// DstAddr routes the frame through switches. Point-to-point links
	// ignore it.
	DstAddr string
	// SrcAddr identifies the sender.
	SrcAddr string
}

// Port is anything that can receive frames from a link: a NIC or a
// switch port.
type Port interface {
	// Arrive delivers a frame at the simulated instant its last bit
	// arrives at the port.
	Arrive(f *Frame)
	// Address is the port's globally unique address.
	Address() string
}

// Hose is the transmit side of one link direction: frames Sent on it
// serialize FIFO at the wire rate and arrive at the peer port after
// the propagation delay.
type Hose struct {
	E *sim.Engine
	P *platform.Platform

	peer  Port
	queue []*Frame
	busy  bool

	// Drop, if non-nil, is consulted for every frame after
	// serialization; returning true discards the frame (loss
	// injection for retransmission tests).
	Drop func(f *Frame) bool

	// Stats.
	FramesSent    int64
	BytesSent     int64
	FramesDropped int64
}

// NewHose returns a transmit hose towards peer.
func NewHose(e *sim.Engine, p *platform.Platform, peer Port) *Hose {
	return &Hose{E: e, P: p, peer: peer}
}

// Peer returns the receiving port of this hose.
func (h *Hose) Peer() Port { return h.peer }

// SerializeTime reports the wire occupancy of a frame with the given
// payload length (adding Ethernet framing overhead).
func (h *Hose) SerializeTime(wireLen int) sim.Duration {
	bits := float64(wireLen + h.P.EthFrameOverhead)
	return sim.Duration(bits / float64(h.P.WireRate))
}

// Send queues a frame for transmission. The frame arrives at the peer
// after all previously queued frames serialize, plus this frame's own
// serialization time, plus propagation.
func (h *Hose) Send(f *Frame) {
	if f.WireLen < 0 {
		panic(fmt.Sprintf("wire: negative frame length %d", f.WireLen))
	}
	h.queue = append(h.queue, f)
	if !h.busy {
		h.busy = true
		h.startNext()
	}
}

// QueueLen reports frames waiting (including the one serializing).
func (h *Hose) QueueLen() int { return len(h.queue) }

func (h *Hose) startNext() {
	if len(h.queue) == 0 {
		h.busy = false
		return
	}
	f := h.queue[0]
	h.queue = h.queue[1:]
	h.E.Schedule(h.SerializeTime(f.WireLen), func() {
		if h.Drop != nil && h.Drop(f) {
			h.FramesDropped++
		} else {
			h.FramesSent++
			h.BytesSent += int64(f.WireLen)
			h.E.Schedule(sim.Duration(h.P.WirePropagation), func() { h.peer.Arrive(f) })
		}
		h.startNext()
	})
}

// Connect builds a full-duplex point-to-point link between two ports
// and returns the two transmit hoses (a→b, b→a).
func Connect(e *sim.Engine, p *platform.Platform, a, b Port) (ab, ba *Hose) {
	return NewHose(e, p, b), NewHose(e, p, a)
}

// Switch is a minimal store-and-forward Ethernet switch: each attached
// port gets a dedicated full-duplex link to the switch; the switch
// forwards by destination address with one additional serialization on
// the output link (plus a fixed forwarding latency).
type Switch struct {
	E *sim.Engine
	P *platform.Platform
	// ForwardLatency is the switch's own cut-through/lookup latency.
	ForwardLatency sim.Duration

	byAddr map[string]*Hose // dest address → output hose (switch→NIC)

	// FramesForwarded counts successfully routed frames; unroutable
	// frames are counted in FramesUnknown and discarded.
	FramesForwarded int64
	FramesUnknown   int64
}

// NewSwitch returns an empty switch.
func NewSwitch(e *sim.Engine, p *platform.Platform) *Switch {
	return &Switch{E: e, P: p, ForwardLatency: 300, byAddr: make(map[string]*Hose)}
}

// switchPort is the switch's receive side for one attached device.
type switchPort struct {
	sw   *Switch
	addr string
}

func (sp *switchPort) Address() string { return sp.addr }

func (sp *switchPort) Arrive(f *Frame) {
	out, ok := sp.sw.byAddr[f.DstAddr]
	if !ok {
		sp.sw.FramesUnknown++
		return
	}
	sp.sw.FramesForwarded++
	sp.sw.E.Schedule(sp.sw.ForwardLatency, func() { out.Send(f) })
}

// Attach connects a device port to the switch and returns the hose the
// device must transmit on (device → switch).
func (s *Switch) Attach(dev Port) *Hose {
	s.byAddr[dev.Address()] = NewHose(s.E, s.P, dev)
	sp := &switchPort{sw: s, addr: "switch:" + dev.Address()}
	return NewHose(s.E, s.P, sp)
}
