// Package host bundles the simulated hardware of one machine: cores,
// memory and caches, the memcpy model, the I/OAT DMA engine and one or
// more NICs. Protocol stacks (internal/core, internal/mxoe) attach to
// a Host.
package host

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/ioat"
	"omxsim/internal/memmodel"
	"omxsim/internal/nic"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// Host is one simulated machine.
type Host struct {
	E    *sim.Engine
	P    *platform.Platform
	Name string

	Sys  *cpu.System
	Mem  *hostmem.Memory
	Copy *memmodel.Model
	IOAT *ioat.Engine
	// NIC is the primary interface (NICs[0]), kept as a field because
	// nearly all of the module — and the single-NIC fast path — talks
	// to exactly one NIC.
	NIC *nic.NIC
	// NICs are all interfaces, in lane order. NICs[0] carries the bare
	// host name as its address; lane i is addressed wire.LaneAddr(name, i).
	NICs []*nic.NIC
}

// New builds a host with the paper's dual quad-core topology, an I/OAT
// engine and one NIC named after the host.
func New(e *sim.Engine, p *platform.Platform, name string) *Host {
	return NewMulti(e, p, name, 1, nil)
}

// NewMulti builds a host with nics network interfaces (link
// aggregation). NIC lane i is addressed wire.LaneAddr(name, i) and
// takes its interrupts on irqCores[i]; a nil or short irqCores falls
// back to core i modulo the core count for the remaining lanes, so
// NIC 0 keeps the legacy default of core 0 and extra NICs spread
// their bottom halves across cores.
func NewMulti(e *sim.Engine, p *platform.Platform, name string, nics int, irqCores []int) *Host {
	if nics < 1 {
		panic(fmt.Sprintf("host: NIC count %d out of range", nics))
	}
	h := &Host{E: e, P: p, Name: name}
	h.Sys = cpu.NewSystem(e, p)
	h.Mem = hostmem.New(p)
	h.Copy = memmodel.New(p)
	h.IOAT = ioat.NewEngine(e, p)
	for i := 0; i < nics; i++ {
		n := nic.New(e, p, h.Sys, h.Mem, wire.LaneAddr(name, i))
		n.Lane = i
		if i < len(irqCores) {
			n.IRQCore = irqCores[i]
		} else {
			n.IRQCore = i % p.NumCores()
		}
		h.NICs = append(h.NICs, n)
	}
	h.NIC = h.NICs[0]
	return h
}

// Lanes reports the number of NICs.
func (h *Host) Lanes() int { return len(h.NICs) }

// Alloc allocates a buffer in this host's memory.
func (h *Host) Alloc(size int) *hostmem.Buffer { return h.Mem.Alloc(size) }

// AllocOn allocates a buffer homed on the given NUMA node (socket).
func (h *Host) AllocOn(size, socket int) *hostmem.Buffer { return h.Mem.AllocOn(size, socket) }
