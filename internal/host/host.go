// Package host bundles the simulated hardware of one machine: cores,
// memory and caches, the memcpy model, the I/OAT DMA engine and a NIC.
// Protocol stacks (internal/core, internal/mxoe) attach to a Host.
package host

import (
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/ioat"
	"omxsim/internal/memmodel"
	"omxsim/internal/nic"
	"omxsim/platform"
	"omxsim/sim"
)

// Host is one simulated machine.
type Host struct {
	E    *sim.Engine
	P    *platform.Platform
	Name string

	Sys  *cpu.System
	Mem  *hostmem.Memory
	Copy *memmodel.Model
	IOAT *ioat.Engine
	NIC  *nic.NIC
}

// New builds a host with the paper's dual quad-core topology, an I/OAT
// engine and one NIC named after the host.
func New(e *sim.Engine, p *platform.Platform, name string) *Host {
	h := &Host{E: e, P: p, Name: name}
	h.Sys = cpu.NewSystem(e, p)
	h.Mem = hostmem.New(p)
	h.Copy = memmodel.New(p)
	h.IOAT = ioat.NewEngine(e, p)
	h.NIC = nic.New(e, p, h.Sys, h.Mem, name)
	return h
}

// Alloc allocates a buffer in this host's memory.
func (h *Host) Alloc(size int) *hostmem.Buffer { return h.Mem.Alloc(size) }
