package host

import (
	"testing"

	"omxsim/platform"
	"omxsim/sim"
)

func TestHostWiring(t *testing.T) {
	e := sim.New()
	p := platform.Clovertown()
	h := New(e, p, "box")
	defer e.Close()
	if h.Sys == nil || h.Mem == nil || h.Copy == nil || h.IOAT == nil || h.NIC == nil {
		t.Fatal("host subsystem missing")
	}
	if len(h.Sys.Cores) != p.NumCores() {
		t.Fatalf("cores = %d", len(h.Sys.Cores))
	}
	if h.IOAT.Channels() != p.IOATChannels {
		t.Fatalf("channels = %d", h.IOAT.Channels())
	}
	if h.NIC.Address() != "box" {
		t.Fatalf("NIC address = %q", h.NIC.Address())
	}
	b := h.Alloc(100)
	if b.Size() != 100 {
		t.Fatal("alloc broken")
	}
}
