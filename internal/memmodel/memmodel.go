// Package memmodel implements the processor memcpy cost model.
//
// A copy's rate depends on where its operands currently live (the
// hostmem warmth tracker), on whether the source was just written by
// device DMA (snoop penalty: no Direct Cache Access on the modelled
// chipset), and on whether the data has to cross the front-side bus
// between sockets. Rates are the calibrated platform constants.
//
// Memcpy really moves the payload bytes, so every higher layer can be
// integrity-checked end to end.
package memmodel

import (
	"fmt"

	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

// Model computes memcpy durations for one host.
type Model struct {
	P *platform.Platform
}

// New returns a model using p's constants.
func New(p *platform.Platform) *Model { return &Model{P: p} }

// RateFor reports the copy rate the model would use right now for a
// copy of n bytes from src to dst executed on the given core, before
// any warmth update. Exposed for diagnostics and tests.
func (m *Model) RateFor(dst, src *hostmem.Buffer, n, core int) platform.Rate {
	p := m.P
	if src.DMACold() {
		// Freshly device-DMA'd source: every line must be snooped and
		// fetched from memory, which dominates the copy no matter how
		// warm the destination is. This is the bottom-half receive
		// copy rate at the heart of the paper.
		return platform.Rate(float64(p.MemcpyColdRate) * p.DMAColdPenalty)
	}
	// A copy bigger than half the L2 evicts its own working set as it
	// streams, so cache warmth cannot be exploited.
	big := int64(n) > p.L2Size/2
	var rate platform.Rate
	switch {
	case src.RemoteSocket(core):
		// Data lives on the other socket: coherence traffic over the
		// FSB dominates; Clovertown has no fast cache-to-cache path.
		if !big && src.WarmL2(src.LastCore()) {
			rate = p.MemcpyCrossSocketWarm
		} else {
			rate = p.MemcpyCrossSocketCold
		}
	case !big && src.WarmL1(core) && dst.WarmL1(core):
		rate = p.MemcpyL1Rate
	case !big && src.WarmL2(core) && dst.WarmL2(core):
		rate = p.MemcpyL2Rate
	case !big && (src.WarmL2(core) || dst.WarmL2(core)):
		rate = p.MemcpyHalfWarmRate
	default:
		rate = p.MemcpyColdRate
	}
	if big && rate > p.MemcpyBigRate {
		rate = p.MemcpyBigRate
	}
	return rate
}

// CopyTime reports the duration of copying n bytes from src to dst on
// the given core without performing the copy or updating warmth.
func (m *Model) CopyTime(dst, src *hostmem.Buffer, n, core int) sim.Duration {
	if n < 0 {
		panic(fmt.Sprintf("memmodel: negative copy size %d", n))
	}
	rate := m.RateFor(dst, src, n, core)
	return sim.Duration(m.P.MemcpyCallCost) + sim.Duration(float64(n)/float64(rate))
}

// Memcpy copies n bytes from src[srcOff:] to dst[dstOff:], updates the
// warmth clocks, and returns the simulated duration of the copy. The
// caller is responsible for charging that duration to a CPU core.
func (m *Model) Memcpy(dst *hostmem.Buffer, dstOff int, src *hostmem.Buffer, srcOff, n, core int) sim.Duration {
	d := m.CopyTime(dst, src, n, core)
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	src.Touch(core, n)
	dst.Touch(core, n)
	return d
}

// RawTime reports the duration of copying n bytes at a fixed rate plus
// the per-call overhead. Used by microbenchmarks that control cache
// state explicitly.
func (m *Model) RawTime(n int, rate platform.Rate) sim.Duration {
	return sim.Duration(m.P.MemcpyCallCost) + sim.Duration(float64(n)/float64(rate))
}
