// Package memmodel implements the processor memcpy cost model.
//
// A copy's rate depends on where its operands currently live (the
// hostmem warmth tracker), on whether the source was just written by
// device DMA (snoop penalty — unless the platform has Direct Cache
// Access and the deposit was pushed into the consuming core's LLC),
// and on whether the data has to cross the front-side bus between
// sockets. Rates are the calibrated platform constants.
//
// Memcpy really moves the payload bytes, so every higher layer can be
// integrity-checked end to end.
package memmodel

import (
	"fmt"

	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

// Model computes memcpy durations for one host.
type Model struct {
	P *platform.Platform
}

// New returns a model using p's constants.
func New(p *platform.Platform) *Model { return &Model{P: p} }

// RateFor reports the copy rate the model would use right now for a
// copy of n bytes from src to dst executed on the given core, before
// any warmth update. Exposed for diagnostics and tests.
func (m *Model) RateFor(dst, src *hostmem.Buffer, n, core int) platform.Rate {
	p := m.P
	if src.DCAResident(core) {
		// Direct Cache Access pushed the deposit into this core's own
		// LLC: the pushed fraction reads at L2 speed, the remainder
		// (past the push fraction or the LLC budget) still pays the
		// snoop-and-fetch path. Harmonic blend of the two segments.
		warm := p.DCAPushFraction * float64(min(src.DCALen(), n)) / float64(n)
		l2 := float64(p.MemcpyL2Rate)
		snoop := float64(p.MemcpyColdRate) * p.DMAColdPenalty
		return platform.Rate(1 / (warm/l2 + (1-warm)/snoop))
	}
	if src.DCAWrongSocket(core) {
		// The deposit was pushed into a cache on the other socket: the
		// consumer must snoop dirty lines out across the FSB, which is
		// slower than fetching a plain memory-resident DMA deposit —
		// DCA aimed at the wrong socket is worse than no DCA at all.
		return platform.Rate(float64(p.MemcpyColdRate) * p.DCAWrongSocketPenalty)
	}
	if src.DMAColdFor(n) {
		// Freshly device-DMA'd source: every line must be snooped and
		// fetched from memory, which dominates the copy no matter how
		// warm the destination is. This is the bottom-half receive
		// copy rate at the heart of the paper.
		return platform.Rate(float64(p.MemcpyColdRate) * p.DMAColdPenalty)
	}
	// A copy bigger than half the L2 evicts its own working set as it
	// streams, so cache warmth cannot be exploited.
	big := int64(n) > p.L2Size/2
	var rate platform.Rate
	switch {
	case src.RemoteSocket(core):
		// Data lives on the other socket: coherence traffic over the
		// FSB dominates; Clovertown has no fast cache-to-cache path.
		// Only the source side is consulted here — deliberately
		// asymmetric with the local branches: the cross-socket cost is
		// snooping the producer's dirty lines over the FSB, so what
		// matters is whether they are still in the remote cache.
		// Destination write-allocate traffic is local to this socket
		// and already folded into the calibrated CrossSocket rates.
		if !big && src.WarmSpanL2(src.LastCore(), n) {
			rate = p.MemcpyCrossSocketWarm
		} else {
			rate = p.MemcpyCrossSocketCold
		}
	case !big && src.WarmSpanL1(core, n) && dst.WarmSpanL1(core, n):
		rate = p.MemcpyL1Rate
	case !big && src.WarmSpanL2(core, n) && dst.WarmSpanL2(core, n):
		rate = p.MemcpyL2Rate
	case !big && (src.WarmSpanL2(core, n) || dst.WarmSpanL2(core, n)):
		rate = p.MemcpyHalfWarmRate
	default:
		rate = p.MemcpyColdRate
	}
	if big && rate > p.MemcpyBigRate {
		rate = p.MemcpyBigRate
	}
	return rate
}

// CopyTime reports the duration of copying n bytes from src to dst on
// the given core without performing the copy or updating warmth.
func (m *Model) CopyTime(dst, src *hostmem.Buffer, n, core int) sim.Duration {
	if n < 0 {
		panic(fmt.Sprintf("memmodel: negative copy size %d", n))
	}
	rate := m.RateFor(dst, src, n, core)
	return sim.Duration(m.P.MemcpyCallCost) + sim.Duration(float64(n)/float64(rate))
}

// Memcpy copies n bytes from src[srcOff:] to dst[dstOff:], updates the
// warmth clocks, and returns the simulated duration of the copy. The
// caller is responsible for charging that duration to a CPU core.
func (m *Model) Memcpy(dst *hostmem.Buffer, dstOff int, src *hostmem.Buffer, srcOff, n, core int) sim.Duration {
	d := m.CopyTime(dst, src, n, core)
	copy(dst.Data[dstOff:dstOff+n], src.Data[srcOff:srcOff+n])
	src.Touch(core, n)
	dst.Touch(core, n)
	return d
}

// RawTime reports the duration of copying n bytes at a fixed rate plus
// the per-call overhead. Used by microbenchmarks that control cache
// state explicitly.
func (m *Model) RawTime(n int, rate platform.Rate) sim.Duration {
	return sim.Duration(m.P.MemcpyCallCost) + sim.Duration(float64(n)/float64(rate))
}
