package memmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/hostmem"
	"omxsim/platform"
)

func setup() (*platform.Platform, *hostmem.Memory, *Model) {
	p := platform.Clovertown()
	return p, hostmem.New(p), New(p)
}

func TestColdCopyRate(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(1<<20), mem.Alloc(1<<20)
	if got, want := m.RateFor(dst, src, 4096, 0), p.MemcpyColdRate; got != want {
		t.Fatalf("cold rate = %v, want %v", got, want)
	}
}

func TestWarmL2AfterTouch(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(64*1024), mem.Alloc(64*1024)
	src.Touch(0, src.Size())
	dst.Touch(0, dst.Size())
	// Core 1 shares core 0's L2.
	if got := m.RateFor(dst, src, 4096, 1); got != p.MemcpyL2Rate {
		t.Fatalf("shared-L2 warm rate = %v, want %v", got, p.MemcpyL2Rate)
	}
	// Core 2 is another subchip: cold.
	if got := m.RateFor(dst, src, 4096, 2); got != p.MemcpyColdRate {
		t.Fatalf("other-subchip rate = %v, want cold %v", got, p.MemcpyColdRate)
	}
}

func TestHalfWarmRate(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(64*1024), mem.Alloc(64*1024)
	dst.Touch(0, dst.Size())
	if got := m.RateFor(dst, src, 4096, 0); got != p.MemcpyHalfWarmRate {
		t.Fatalf("half-warm rate = %v, want %v", got, p.MemcpyHalfWarmRate)
	}
}

func TestDMAPenalty(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(8192), mem.Alloc(8192)
	src.WrittenByDMA()
	got := float64(m.RateFor(dst, src, 4096, 0))
	want := float64(p.MemcpyColdRate) * p.DMAColdPenalty
	if got != want {
		t.Fatalf("DMA-cold rate = %v, want %v", got, want)
	}
}

func TestCrossSocketRates(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(64*1024), mem.Alloc(64*1024)
	src.Touch(4, src.Size()) // socket 1
	if got := m.RateFor(dst, src, 4096, 0); got != p.MemcpyCrossSocketWarm {
		t.Fatalf("cross-socket warm = %v, want %v", got, p.MemcpyCrossSocketWarm)
	}
	// Stream enough traffic through socket 1's L2 domain to evict.
	evict := mem.Alloc(int(p.L2Size) * 2)
	evict.Touch(4, evict.Size())
	if got := m.RateFor(dst, src, 4096, 0); got != p.MemcpyCrossSocketCold {
		t.Fatalf("cross-socket cold = %v, want %v", got, p.MemcpyCrossSocketCold)
	}
}

func TestL1Rate(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(4096), mem.Alloc(4096)
	src.Touch(0, src.Size())
	dst.Touch(0, dst.Size())
	if got := m.RateFor(dst, src, 4096, 0); got != p.MemcpyL1Rate {
		t.Fatalf("L1 rate = %v, want %v", got, p.MemcpyL1Rate)
	}
	// Same data viewed from the L2 sibling is only L2-warm.
	if got := m.RateFor(dst, src, 4096, 1); got != p.MemcpyL2Rate {
		t.Fatalf("sibling rate = %v, want L2 %v", got, p.MemcpyL2Rate)
	}
}

func TestEvictionByStreaming(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(1<<20), mem.Alloc(1<<20)
	src.Touch(0, src.Size())
	dst.Touch(0, dst.Size())
	// Stream 8 MiB (2× L2) through the same domain.
	big := mem.Alloc(int(p.L2Size) * 2)
	big.Touch(1, big.Size())
	if got := m.RateFor(dst, src, 4096, 0); got != p.MemcpyColdRate {
		t.Fatalf("after eviction rate = %v, want cold", got)
	}
}

func TestMemcpyMovesBytes(t *testing.T) {
	_, mem, m := setup()
	src, dst := mem.Alloc(1000), mem.Alloc(1000)
	src.Fill(7)
	d := m.Memcpy(dst, 0, src, 0, 1000, 0)
	if d <= 0 {
		t.Fatal("no duration")
	}
	if !hostmem.Equal(src, dst) {
		t.Fatal("bytes not copied")
	}
}

func TestMemcpyPartialRanges(t *testing.T) {
	_, mem, m := setup()
	src, dst := mem.Alloc(100), mem.Alloc(100)
	src.Fill(3)
	m.Memcpy(dst, 10, src, 20, 30, 0)
	for i := 0; i < 30; i++ {
		if dst.Data[10+i] != src.Data[20+i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if dst.Data[9] != 0 || dst.Data[40] != 0 {
		t.Fatal("out-of-range bytes written")
	}
}

func TestMemcpyClearsDMACold(t *testing.T) {
	_, mem, m := setup()
	src, dst := mem.Alloc(100), mem.Alloc(100)
	src.WrittenByDMA()
	m.Memcpy(dst, 0, src, 0, 100, 0)
	if src.DMACold() {
		t.Fatal("DMA-cold not cleared by read")
	}
}

func TestShmFalloffAt1MiB(t *testing.T) {
	// The Fig. 10 scenario: four buffers of the message size cycle
	// through one shared L2 per ping-pong iteration. Warm at 1 MiB,
	// cold above.
	p, mem, m := setup()
	check := func(size int, wantWarm bool) {
		t.Helper()
		bufs := make([]*hostmem.Buffer, 4)
		for i := range bufs {
			bufs[i] = mem.Alloc(size)
		}
		// A few warm-up rounds of touching all four in turn.
		for round := 0; round < 3; round++ {
			for _, b := range bufs {
				b.Touch(0, size)
			}
		}
		rate := m.RateFor(bufs[1], bufs[0], 4096, 0)
		isWarm := rate == p.MemcpyL2Rate || rate == p.MemcpyL1Rate
		if isWarm != wantWarm {
			t.Fatalf("size %d: rate %.2f GiB/s, wantWarm=%v", size, rate.InGiBps(), wantWarm)
		}
	}
	check(1<<20, true)    // 1 MiB: 4 MiB working set fits L2 exactly
	check(1<<21, false)   // 2 MiB: evicted
	check(256*1024, true) // comfortably warm
}

func TestPinAccounting(t *testing.T) {
	_, mem, _ := setup()
	b := mem.Alloc(10000)
	if b.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", b.Pages())
	}
	if !b.Pin() {
		t.Fatal("first pin should pay")
	}
	if b.Pin() {
		t.Fatal("second pin should be free")
	}
	b.Unpin()
	b.Unpin()
	if b.Pinned() {
		t.Fatal("still pinned")
	}
}

func TestUnpinUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, mem, _ := setup()
	mem.Alloc(10).Unpin()
}

// Property: duration is monotonically nondecreasing in size for a
// fixed cache situation, and warm copies are never slower than cold.
func TestPropertyMonotoneAndWarmFaster(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, mem, m := setup()
		a, b := rng.Intn(1<<20)+1, rng.Intn(1<<20)+1
		if a > b {
			a, b = b, a
		}
		srcCold, dstCold := mem.Alloc(b), mem.Alloc(b)
		dCold1 := m.CopyTime(dstCold, srcCold, a, 0)
		dCold2 := m.CopyTime(dstCold, srcCold, b, 0)
		if dCold1 > dCold2 {
			return false
		}
		srcWarm, dstWarm := mem.Alloc(64*1024), mem.Alloc(64*1024)
		srcWarm.Touch(0, srcWarm.Size())
		dstWarm.Touch(0, dstWarm.Size())
		n := rng.Intn(64*1024) + 1
		if n > b {
			n = b
		}
		return m.CopyTime(dstWarm, srcWarm, n, 0) <= m.CopyTime(dstCold, srcCold, n, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Memcpy always makes dst's range equal src's range.
func TestPropertyCopyIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, mem, m := setup()
		size := rng.Intn(10000) + 100
		src, dst := mem.Alloc(size), mem.Alloc(size)
		src.Fill(byte(rng.Intn(256)))
		n := rng.Intn(size) + 1
		off := rng.Intn(size - n + 1)
		m.Memcpy(dst, off, src, off, n, rng.Intn(8))
		for i := 0; i < n; i++ {
			if dst.Data[off+i] != src.Data[off+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Decision table over every (src warmth, dst warmth, placement)
// combination for a small same-size copy, pinning the deliberate
// cross-socket asymmetry: the remote branch consults only the
// source's residency in the producer's cache (the FSB snoop of dirty
// lines is the cost), never the destination — destination
// write-allocate traffic is local and folded into the calibrated
// CrossSocket constants.
func TestRateDecisionTable(t *testing.T) {
	p, _, _ := setup()
	const n = 8192
	// Warmth preparations. "warm" touches the full buffer from the
	// producing core; "cold" leaves it untouched; "partial" touches
	// one page of it (resident but without span coverage for n).
	prep := map[string]func(mem *hostmem.Memory, b *hostmem.Buffer, core int){
		"cold":    func(mem *hostmem.Memory, b *hostmem.Buffer, core int) {},
		"partial": func(mem *hostmem.Memory, b *hostmem.Buffer, core int) { b.Touch(core, 4096) },
		"warm":    func(mem *hostmem.Memory, b *hostmem.Buffer, core int) { b.Touch(core, b.Size()) },
		// Touched by the producer but since evicted by streaming
		// traffic: still owned by that core (lastCore sticks), no
		// longer resident in its cache.
		"evicted": func(mem *hostmem.Memory, b *hostmem.Buffer, core int) {
			b.Touch(core, b.Size())
			tr := mem.Alloc(int(p.L2Size))
			tr.Touch(core, tr.Size())
		},
	}
	cases := []struct {
		src, dst string
		producer int // core that prepared the buffers
		consumer int // core running the copy
		want     func() platform.Rate
	}{
		// Local, same core: both fully warm -> L1 (buffers fit L1).
		{"warm", "warm", 0, 0, func() platform.Rate { return p.MemcpyL1Rate }},
		// Same L2 domain, other core: L2.
		{"warm", "warm", 0, 1, func() platform.Rate { return p.MemcpyL2Rate }},
		{"warm", "cold", 0, 1, func() platform.Rate { return p.MemcpyHalfWarmRate }},
		{"cold", "warm", 0, 1, func() platform.Rate { return p.MemcpyHalfWarmRate }},
		{"cold", "cold", 0, 1, func() platform.Rate { return p.MemcpyColdRate }},
		// Partial coverage never upgrades past its span.
		{"partial", "warm", 0, 1, func() platform.Rate { return p.MemcpyHalfWarmRate }},
		{"partial", "partial", 0, 1, func() platform.Rate { return p.MemcpyColdRate }},
		// Other subchip, same socket: residency is per L2 domain.
		{"warm", "warm", 0, 2, func() platform.Rate { return p.MemcpyColdRate }},
		// Cross socket: src warmth in the PRODUCER's cache decides.
		{"warm", "warm", 0, 4, func() platform.Rate { return p.MemcpyCrossSocketWarm }},
		{"warm", "cold", 0, 4, func() platform.Rate { return p.MemcpyCrossSocketWarm }},
		// ... and dst warmth is deliberately ignored (the asymmetry):
		{"evicted", "warm", 0, 4, func() platform.Rate { return p.MemcpyCrossSocketCold }},
		{"evicted", "cold", 0, 4, func() platform.Rate { return p.MemcpyCrossSocketCold }},
		// Partial src coverage falls back to the cold FSB path.
		{"partial", "warm", 0, 4, func() platform.Rate { return p.MemcpyCrossSocketCold }},
		// An UNTOUCHED src has no owner (LastCore is -1), so there is
		// no producer cache to snoop: the copy is plain cold, not
		// cross-socket, wherever the consumer runs.
		{"cold", "warm", 0, 4, func() platform.Rate { return p.MemcpyColdRate }},
		{"cold", "cold", 0, 4, func() platform.Rate { return p.MemcpyColdRate }},
	}
	for _, tc := range cases {
		name := tc.src + "/" + tc.dst
		mem := hostmem.New(p)
		src, dst := mem.Alloc(n), mem.Alloc(n)
		prep[tc.src](mem, src, tc.producer)
		prep[tc.dst](mem, dst, tc.producer)
		model := New(p)
		if got, want := model.RateFor(dst, src, n, tc.consumer), tc.want(); got != want {
			t.Errorf("%s on core %d: rate = %v, want %v", name, tc.consumer, got, want)
		}
	}
}

// Regression (warmth granularity): a rendezvous-sized buffer touched
// by one small fragment must not copy out at a warm rate.
func TestPartialTouchDoesNotWarmLargeCopy(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(1<<20), mem.Alloc(1<<20)
	src.Touch(0, 4096)
	dst.Touch(0, dst.Size())
	if got := m.RateFor(dst, src, 1<<20, 0); got != p.MemcpyHalfWarmRate {
		t.Fatalf("rate = %v, want half-warm %v (dst only)", got, p.MemcpyHalfWarmRate)
	}
	dst2 := mem.Alloc(1 << 20)
	if got := m.RateFor(dst2, src, 1<<20, 0); got != p.MemcpyColdRate {
		t.Fatalf("rate = %v, want cold %v", got, p.MemcpyColdRate)
	}
}

// Regression (DMACold vs partial touch): a prefix read does not skip
// the snoop penalty for the untouched remainder.
func TestDMAPenaltyAfterPartialTouch(t *testing.T) {
	p, mem, m := setup()
	src, dst := mem.Alloc(8192), mem.Alloc(8192)
	src.WrittenByDMA()
	src.Touch(0, 4096)
	want := platform.Rate(float64(p.MemcpyColdRate) * p.DMAColdPenalty)
	if got := m.RateFor(dst, src, 8192, 0); got != want {
		t.Fatalf("suffix copy rate = %v, want snoop %v", got, want)
	}
	// The snooped prefix itself is past the penalty.
	if got := m.RateFor(dst, src, 4096, 0); got == want {
		t.Fatal("snooped prefix still paying the snoop penalty")
	}
}

// DCA branch: a deposit pushed at the consumer's domain beats the
// snoop path; pushed at the wrong socket it is WORSE than no DCA at
// all; evicted it degrades to a plain cold copy.
func TestDCARates(t *testing.T) {
	p := platform.ClovertownDCA()
	mem := hostmem.New(p)
	m := New(p)
	n := 64 * 1024
	snoop := platform.Rate(float64(p.MemcpyColdRate) * p.DMAColdPenalty)

	src, dst := mem.Alloc(n), mem.Alloc(n)
	src.WrittenByDCA(0, n)
	right := m.RateFor(dst, src, n, 0)
	if right <= snoop {
		t.Fatalf("DCA-resident rate %v not better than snoop %v", right, snoop)
	}
	if right >= p.MemcpyL2Rate {
		t.Fatalf("DCA-resident rate %v should stay below pure L2 %v (partial push)", right, p.MemcpyL2Rate)
	}
	// Consumer on the other socket: the misdirected-DCA cliff.
	wrong := m.RateFor(dst, src, n, 4)
	wantWrong := platform.Rate(float64(p.MemcpyColdRate) * p.DCAWrongSocketPenalty)
	if wrong != wantWrong {
		t.Fatalf("wrong-socket rate = %v, want %v", wrong, wantWrong)
	}
	if wrong >= snoop {
		t.Fatalf("wrong-socket DCA %v must be worse than no DCA %v", wrong, snoop)
	}
	// Evict the push: back to a plain cold copy, no snoop debt.
	tr := mem.Alloc(int(p.L2Size))
	tr.Touch(0, tr.Size())
	if got := m.RateFor(dst, src, n, 0); got != p.MemcpyColdRate {
		t.Fatalf("evicted-DCA rate = %v, want plain cold %v", got, p.MemcpyColdRate)
	}
}

// Without HasDCA nothing changes: WrittenByDMA still pays the classic
// snoop penalty and WrittenByDCA is never called by the stacks.
func TestNoDCADefaultUnchanged(t *testing.T) {
	p, mem, m := setup()
	if p.HasDCA {
		t.Fatal("Clovertown default must not have DCA")
	}
	src, dst := mem.Alloc(8192), mem.Alloc(8192)
	src.WrittenByDMA()
	want := platform.Rate(float64(p.MemcpyColdRate) * p.DMAColdPenalty)
	if got := m.RateFor(dst, src, 8192, 0); got != want {
		t.Fatalf("default snoop rate = %v, want %v", got, want)
	}
}
