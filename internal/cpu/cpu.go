// Package cpu models processor cores as serial, non-preemptive work
// queues with two priority levels (softirq work runs ahead of process
// context) and per-category busy-time accounting.
//
// The accounting categories mirror Figure 9 of the paper: user-library
// time, driver command-processing time (system calls, pinning) and
// bottom-half receive time (further split into protocol processing and
// data copying so the copy-offload effect is directly visible).
package cpu

import (
	"fmt"

	"omxsim/platform"
	"omxsim/sim"
)

// Category classifies busy time for accounting.
type Category int

// Accounting categories.
const (
	UserLib   Category = iota // user-space library work
	DriverCmd                 // driver work in syscall context (incl. pinning)
	BHProc                    // bottom-half protocol processing
	BHCopy                    // bottom-half data copies (memcpy or I/OAT submit/wait)
	Other                     // anything else (MX firmware emulation, benchmarks)
	numCategories
)

var categoryNames = [...]string{"user-lib", "driver", "bh-proc", "bh-copy", "other"}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("cat(%d)", int(c))
	}
	return categoryNames[c]
}

// Priority of queued work. Softirq-level work preempts (in queue order,
// not mid-task) process-level work.
type priority int

const (
	prioSoftirq priority = iota
	prioProcess
)

func priorityOf(c Category) priority {
	switch c {
	case BHProc, BHCopy:
		return prioSoftirq
	default:
		return prioProcess
	}
}

// task is one unit of queued work.
type task struct {
	cat Category
	dur sim.Duration // fixed duration (dyn == nil)
	fn  func()       // completion callback
	dyn func(finish func(extra sim.Duration))
}

// Core is one processor core: a serial resource executing tasks.
type Core struct {
	sys     *System
	ID      int
	busy    bool
	queues  [2][]*task
	busyNs  [numCategories]sim.Duration
	totalNs sim.Duration
	started sim.Time // start of current task, for dyn accounting
}

// System is the set of cores of one host.
type System struct {
	E     *sim.Engine
	P     *platform.Platform
	Cores []*Core
}

// NewSystem builds the core set described by p.
func NewSystem(e *sim.Engine, p *platform.Platform) *System {
	s := &System{E: e, P: p}
	for i := 0; i < p.NumCores(); i++ {
		s.Cores = append(s.Cores, &Core{sys: s, ID: i})
	}
	return s
}

// Core returns core i.
func (s *System) Core(i int) *Core { return s.Cores[i] }

// ResetAccounting zeroes all busy counters on all cores.
func (s *System) ResetAccounting() {
	for _, c := range s.Cores {
		c.busyNs = [numCategories]sim.Duration{}
		c.totalNs = 0
	}
}

// BusyByCategory sums busy nanoseconds per category across all cores.
func (s *System) BusyByCategory() map[Category]sim.Duration {
	out := make(map[Category]sim.Duration)
	for _, c := range s.Cores {
		for cat := Category(0); cat < numCategories; cat++ {
			if c.busyNs[cat] != 0 {
				out[cat] += c.busyNs[cat]
			}
		}
	}
	return out
}

// TotalBusy sums busy nanoseconds across all cores.
func (s *System) TotalBusy() sim.Duration {
	var t sim.Duration
	for _, c := range s.Cores {
		t += c.totalNs
	}
	return t
}

// Busy reports whether the core is currently executing a task.
func (c *Core) Busy() bool { return c.busy }

// QueueLen reports the number of queued (not yet started) tasks.
func (c *Core) QueueLen() int { return len(c.queues[0]) + len(c.queues[1]) }

// BusyNs reports accumulated busy time for one category.
func (c *Core) BusyNs(cat Category) sim.Duration { return c.busyNs[cat] }

// Exec queues work of a fixed duration on the core. fn (may be nil)
// runs in engine context when the work completes. Work of softirq
// priority runs before process-priority work but never interrupts a
// task in progress.
func (c *Core) Exec(cat Category, d sim.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("cpu: negative duration %d", d))
	}
	c.enqueue(&task{cat: cat, dur: d, fn: fn})
}

// ExecDyn queues work whose duration is not known in advance: when the
// task reaches the head of the queue, run is invoked (in engine
// context) and the core stays busy until run calls finish. The elapsed
// wall time plus extra is accounted to cat. This models busy-polling a
// completion whose arrival time depends on other simulated hardware.
func (c *Core) ExecDyn(cat Category, run func(finish func(extra sim.Duration))) {
	c.enqueue(&task{cat: cat, dyn: run})
}

func (c *Core) enqueue(t *task) {
	p := priorityOf(t.cat)
	c.queues[p] = append(c.queues[p], t)
	if !c.busy {
		c.dispatch()
	}
}

// dispatch starts the next queued task, if any.
func (c *Core) dispatch() {
	var t *task
	for p := range c.queues {
		if len(c.queues[p]) > 0 {
			t = c.queues[p][0]
			copy(c.queues[p], c.queues[p][1:])
			c.queues[p] = c.queues[p][:len(c.queues[p])-1]
			break
		}
	}
	if t == nil {
		return
	}
	c.busy = true
	c.started = c.sys.E.Now()
	if t.dyn != nil {
		finished := false
		t.dyn(func(extra sim.Duration) {
			if finished {
				panic("cpu: finish called twice")
			}
			finished = true
			if extra > 0 {
				c.sys.E.Schedule(extra, func() { c.finish(t) })
			} else {
				c.finish(t)
			}
		})
		return
	}
	c.sys.E.Schedule(t.dur, func() { c.finish(t) })
}

func (c *Core) finish(t *task) {
	elapsed := c.sys.E.Now() - c.started
	c.busyNs[t.cat] += elapsed
	c.totalNs += elapsed
	c.busy = false
	if t.fn != nil {
		t.fn()
	}
	if !c.busy { // fn may have queued and started new work synchronously
		c.dispatch()
	}
}

// RunOn executes fixed-duration work on the core from process context:
// the calling Proc blocks until the work completes (including any queue
// wait). This is how user processes spend CPU time.
func (c *Core) RunOn(p *sim.Proc, cat Category, d sim.Duration) {
	done := sim.NewSignal()
	fin := false
	c.Exec(cat, d, func() { fin = true; done.Broadcast() })
	p.WaitFor(done, func() bool { return fin })
}

// RunOnDyn executes dynamic-duration work (see ExecDyn) from process
// context, blocking the calling Proc until it completes. It models a
// process busy-polling some hardware condition: the core is occupied
// (and accounted) for the full duration.
func (c *Core) RunOnDyn(p *sim.Proc, cat Category, run func(finish func(extra sim.Duration))) {
	done := sim.NewSignal()
	fin := false
	c.ExecDyn(cat, func(finish func(extra sim.Duration)) {
		run(func(extra sim.Duration) {
			// finish(extra) keeps the core busy (and accounted) for
			// extra; our wake is scheduled for the same instant but
			// strictly after the core retires the task.
			finish(extra)
			c.sys.E.Schedule(extra, func() { fin = true; done.Broadcast() })
		})
	})
	p.WaitFor(done, func() bool { return fin })
}
