// Package cpu models processor cores as serial, non-preemptive work
// queues with two priority levels (softirq work runs ahead of process
// context) and per-category busy-time accounting.
//
// The accounting categories mirror Figure 9 of the paper and extend
// it for the availability evaluation: application compute, user-library
// time (polling, matching, eager copies), driver command-processing
// time (system calls, pinning, one-copy local transfers), bottom-half
// receive time (split into protocol processing and data copying so the
// copy-offload effect is directly visible), and I/OAT descriptor
// submission (the doorbell + per-descriptor setup the CPU still pays
// when the engine moves the bytes).
//
// System.Snapshot turns the ledgers into a deterministic Stats value —
// per-core busy time per category plus the idle remainder of the
// accounting window — which the public openmx and mxoe stacks re-export
// as their CPUStats surface.
package cpu

import (
	"fmt"
	"strings"

	"omxsim/platform"
	"omxsim/sim"
)

// Category classifies busy time for accounting.
type Category int

// Accounting categories.
const (
	UserLib    Category = iota // user-space library work (polling, matching, eager copies)
	DriverCmd                  // driver work in syscall context (incl. pinning, local one-copy)
	BHProc                     // bottom-half protocol processing (interrupt/NAPI context)
	BHCopy                     // bottom-half data copies (memcpy or I/OAT completion wait)
	IOATSubmit                 // I/OAT descriptor submission (doorbell + per-descriptor setup)
	AppCompute                 // application computation (reductions, injected compute)
	Other                      // anything else (MX firmware emulation, benchmarks)
	numCategories
)

// NumCategories is the number of accounting categories (the length of
// a CoreStats.Busy ledger).
const NumCategories = int(numCategories)

// Categories returns every accounting category in ledger order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

var categoryNames = [...]string{"user-lib", "driver", "bh-proc", "bh-copy", "ioat-submit", "compute", "other"}

func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("cat(%d)", int(c))
	}
	return categoryNames[c]
}

// Priority of queued work. Softirq-level work preempts (in queue order,
// not mid-task) process-level work.
type priority int

const (
	prioSoftirq priority = iota
	prioProcess
)

func priorityOf(c Category) priority {
	switch c {
	case BHProc, BHCopy, IOATSubmit:
		return prioSoftirq
	default:
		return prioProcess
	}
}

// task is one unit of queued work.
type task struct {
	cat Category
	dur sim.Duration // fixed duration (dyn == nil)
	fn  func()       // completion callback
	dyn func(finish func(extra sim.Duration))
}

// Core is one processor core: a serial resource executing tasks.
type Core struct {
	sys     *System
	ID      int
	busy    bool
	queues  [2][]*task
	busyNs  [numCategories]sim.Duration
	totalNs sim.Duration
	started sim.Time // start of current task, for dyn accounting
}

// System is the set of cores of one host.
type System struct {
	E     *sim.Engine
	P     *platform.Platform
	Cores []*Core

	// resetAt is the start of the current accounting window (the last
	// ResetAccounting call; zero for a fresh system).
	resetAt sim.Time
}

// NewSystem builds the core set described by p.
func NewSystem(e *sim.Engine, p *platform.Platform) *System {
	s := &System{E: e, P: p}
	for i := 0; i < p.NumCores(); i++ {
		s.Cores = append(s.Cores, &Core{sys: s, ID: i})
	}
	return s
}

// Core returns core i.
func (s *System) Core(i int) *Core { return s.Cores[i] }

// ResetAccounting zeroes all busy counters on all cores and starts a
// new accounting window at the current simulated time.
func (s *System) ResetAccounting() {
	for _, c := range s.Cores {
		c.busyNs = [numCategories]sim.Duration{}
		c.totalNs = 0
	}
	s.resetAt = s.E.Now()
}

// BusyByCategory sums busy nanoseconds per category across all cores.
func (s *System) BusyByCategory() map[Category]sim.Duration {
	out := make(map[Category]sim.Duration)
	for _, c := range s.Cores {
		for cat := Category(0); cat < numCategories; cat++ {
			if c.busyNs[cat] != 0 {
				out[cat] += c.busyNs[cat]
			}
		}
	}
	return out
}

// TotalBusy sums busy nanoseconds across all cores.
func (s *System) TotalBusy() sim.Duration {
	var t sim.Duration
	for _, c := range s.Cores {
		t += c.totalNs
	}
	return t
}

// CoreStats is one core's ledger inside a Stats snapshot: busy time
// per category plus the idle remainder of the accounting window.
type CoreStats struct {
	Core int
	// Busy is indexed by Category (ledger order, see Categories).
	Busy [NumCategories]sim.Duration
	// Idle is the window time the core spent executing nothing.
	Idle sim.Duration
}

// TotalBusy sums the core's busy time across categories.
func (c CoreStats) TotalBusy() sim.Duration {
	var t sim.Duration
	for _, d := range c.Busy {
		t += d
	}
	return t
}

// Stats is a deterministic snapshot of per-core CPU accounting over
// one window (since the last ResetAccounting). Cores appear in
// ascending ID order and categories in ledger order, so two snapshots
// of identical runs compare equal with reflect.DeepEqual and render to
// identical text.
type Stats struct {
	// Window is the wall (virtual) time covered by the snapshot.
	Window sim.Duration
	Cores  []CoreStats
}

// Snapshot captures the current accounting window. Work still
// executing on a core is not yet attributed (ledgers are updated when
// a task retires), so snapshots are normally taken at quiesce points —
// after Cluster.Run or between benchmark phases.
func (s *System) Snapshot() Stats {
	st := Stats{Window: s.E.Now() - s.resetAt}
	for _, c := range s.Cores {
		cs := CoreStats{Core: c.ID, Busy: c.busyNs}
		if idle := st.Window - c.totalNs; idle > 0 {
			cs.Idle = idle
		}
		st.Cores = append(st.Cores, cs)
	}
	return st
}

// Busy sums busy time for the given categories across all cores (all
// categories when none are given).
func (st Stats) Busy(cats ...Category) sim.Duration {
	var t sim.Duration
	for _, c := range st.Cores {
		if len(cats) == 0 {
			t += c.TotalBusy()
			continue
		}
		for _, cat := range cats {
			t += c.Busy[cat]
		}
	}
	return t
}

// BusyPct reports busy time for the given categories as a percentage
// of one core's window (so a host with two saturated cores reports
// 200 %). Zero when the window is empty.
func (st Stats) BusyPct(cats ...Category) float64 {
	if st.Window <= 0 {
		return 0
	}
	return float64(st.Busy(cats...)) / float64(st.Window) * 100
}

// Render formats the snapshot as an aligned text table: one row per
// core that was busy at all, one column per category, a totals row at
// the bottom. The output is deterministic.
func (st Stats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "core")
	for _, cat := range Categories() {
		fmt.Fprintf(&b, " %12s", cat.String())
	}
	fmt.Fprintf(&b, " %12s\n", "idle")
	us := func(d sim.Duration) string { return fmt.Sprintf("%.1f", sim.Time(d).Micros()) }
	var idle sim.Duration
	for _, c := range st.Cores {
		idle += c.Idle
		if c.TotalBusy() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-6d", c.Core)
		for _, cat := range Categories() {
			fmt.Fprintf(&b, " %12s", us(c.Busy[cat]))
		}
		fmt.Fprintf(&b, " %12s\n", us(c.Idle))
	}
	fmt.Fprintf(&b, "%-6s", "total")
	for _, cat := range Categories() {
		fmt.Fprintf(&b, " %12s", us(st.Busy(cat)))
	}
	fmt.Fprintf(&b, " %12s\n", us(idle))
	return b.String()
}

// Busy reports whether the core is currently executing a task.
func (c *Core) Busy() bool { return c.busy }

// QueueLen reports the number of queued (not yet started) tasks.
func (c *Core) QueueLen() int { return len(c.queues[0]) + len(c.queues[1]) }

// BusyNs reports accumulated busy time for one category.
func (c *Core) BusyNs(cat Category) sim.Duration { return c.busyNs[cat] }

// Exec queues work of a fixed duration on the core. fn (may be nil)
// runs in engine context when the work completes. Work of softirq
// priority runs before process-priority work but never interrupts a
// task in progress.
func (c *Core) Exec(cat Category, d sim.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("cpu: negative duration %d", d))
	}
	c.enqueue(&task{cat: cat, dur: d, fn: fn})
}

// ExecDyn queues work whose duration is not known in advance: when the
// task reaches the head of the queue, run is invoked (in engine
// context) and the core stays busy until run calls finish. The elapsed
// wall time plus extra is accounted to cat. This models busy-polling a
// completion whose arrival time depends on other simulated hardware.
func (c *Core) ExecDyn(cat Category, run func(finish func(extra sim.Duration))) {
	c.enqueue(&task{cat: cat, dyn: run})
}

func (c *Core) enqueue(t *task) {
	p := priorityOf(t.cat)
	c.queues[p] = append(c.queues[p], t)
	if !c.busy {
		c.dispatch()
	}
}

// dispatch starts the next queued task, if any.
func (c *Core) dispatch() {
	var t *task
	for p := range c.queues {
		if len(c.queues[p]) > 0 {
			t = c.queues[p][0]
			copy(c.queues[p], c.queues[p][1:])
			c.queues[p] = c.queues[p][:len(c.queues[p])-1]
			break
		}
	}
	if t == nil {
		return
	}
	c.busy = true
	c.started = c.sys.E.Now()
	if t.dyn != nil {
		finished := false
		t.dyn(func(extra sim.Duration) {
			if finished {
				panic("cpu: finish called twice")
			}
			finished = true
			if extra > 0 {
				c.sys.E.Schedule(extra, func() { c.finish(t) })
			} else {
				c.finish(t)
			}
		})
		return
	}
	c.sys.E.Schedule(t.dur, func() { c.finish(t) })
}

func (c *Core) finish(t *task) {
	elapsed := c.sys.E.Now() - c.started
	c.busyNs[t.cat] += elapsed
	c.totalNs += elapsed
	c.busy = false
	if t.fn != nil {
		t.fn()
	}
	if !c.busy { // fn may have queued and started new work synchronously
		c.dispatch()
	}
}

// RunOn executes fixed-duration work on the core from process context:
// the calling Proc blocks until the work completes (including any queue
// wait). This is how user processes spend CPU time.
func (c *Core) RunOn(p *sim.Proc, cat Category, d sim.Duration) {
	done := sim.NewSignal()
	fin := false
	c.Exec(cat, d, func() { fin = true; done.Broadcast() })
	p.WaitFor(done, func() bool { return fin })
}

// RunOnDyn executes dynamic-duration work (see ExecDyn) from process
// context, blocking the calling Proc until it completes. It models a
// process busy-polling some hardware condition: the core is occupied
// (and accounted) for the full duration.
func (c *Core) RunOnDyn(p *sim.Proc, cat Category, run func(finish func(extra sim.Duration))) {
	done := sim.NewSignal()
	fin := false
	c.ExecDyn(cat, func(finish func(extra sim.Duration)) {
		run(func(extra sim.Duration) {
			// finish(extra) keeps the core busy (and accounted) for
			// extra; our wake is scheduled for the same instant but
			// strictly after the core retires the task.
			finish(extra)
			c.sys.E.Schedule(extra, func() { fin = true; done.Broadcast() })
		})
	})
	p.WaitFor(done, func() bool { return fin })
}
