package cpu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"omxsim/platform"
	"omxsim/sim"
)

func newSys() (*sim.Engine, *System) {
	e := sim.New()
	return e, NewSystem(e, platform.Clovertown())
}

func TestTopologySize(t *testing.T) {
	_, s := newSys()
	if len(s.Cores) != 8 {
		t.Fatalf("cores = %d", len(s.Cores))
	}
}

func TestSerialExecution(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		c.Exec(UserLib, 100, func() { ends = append(ends, e.Now()) })
	}
	e.Run()
	want := []sim.Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v", ends)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var order []Category
	record := func(cat Category) func() { return func() { order = append(order, cat) } }
	// Seed a long-running task, then queue user and BH work while it runs.
	c.Exec(UserLib, 100, nil)
	c.Exec(UserLib, 10, record(UserLib))
	c.Exec(BHProc, 10, record(BHProc))
	e.Run()
	if len(order) != 2 || order[0] != BHProc || order[1] != UserLib {
		t.Fatalf("order = %v, want [bh-proc user-lib]", order)
	}
}

func TestNoPreemptionMidTask(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var firstEnd sim.Time
	c.Exec(UserLib, 1000, func() { firstEnd = e.Now() })
	e.Schedule(50, func() { c.Exec(BHProc, 10, nil) })
	e.Run()
	if firstEnd != 1000 {
		t.Fatalf("user task interrupted: end=%v", firstEnd)
	}
}

func TestAccountingPerCategory(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	c.Exec(UserLib, 100, nil)
	c.Exec(BHProc, 200, nil)
	c.Exec(BHCopy, 300, nil)
	e.Run()
	if c.BusyNs(UserLib) != 100 || c.BusyNs(BHProc) != 200 || c.BusyNs(BHCopy) != 300 {
		t.Fatalf("accounting: %v %v %v", c.BusyNs(UserLib), c.BusyNs(BHProc), c.BusyNs(BHCopy))
	}
	by := s.BusyByCategory()
	if by[UserLib] != 100 || by[BHProc] != 200 || by[BHCopy] != 300 {
		t.Fatalf("system accounting: %v", by)
	}
	if s.TotalBusy() != 600 {
		t.Fatalf("total = %v", s.TotalBusy())
	}
	s.ResetAccounting()
	if s.TotalBusy() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDynTask(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var end sim.Time
	c.ExecDyn(BHCopy, func(finish func(extra sim.Duration)) {
		// Emulate busy-polling hardware that completes at t=500.
		e.Schedule(500, func() { finish(0) })
	})
	c.Exec(UserLib, 10, func() { end = e.Now() })
	e.Run()
	if c.BusyNs(BHCopy) != 500 {
		t.Fatalf("dyn accounting = %v", c.BusyNs(BHCopy))
	}
	if end != 510 {
		t.Fatalf("queued task ran at %v, want 510", end)
	}
}

func TestDynTaskExtra(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	c.ExecDyn(BHCopy, func(finish func(extra sim.Duration)) { finish(250) })
	e.Run()
	if c.BusyNs(BHCopy) != 250 {
		t.Fatalf("extra accounting = %v", c.BusyNs(BHCopy))
	}
}

func TestRunOnBlocksProcess(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var resumed sim.Time
	e.Go("worker", func(p *sim.Proc) {
		c.RunOn(p, UserLib, 400)
		resumed = p.Now()
	})
	if n := e.Run(); n != 0 {
		t.Fatalf("blocked procs: %v", e.BlockedProcs())
	}
	if resumed != 400 {
		t.Fatalf("resumed at %v, want 400", resumed)
	}
}

func TestRunOnQueuesBehindBH(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	c.Exec(BHProc, 1000, nil)
	var resumed sim.Time
	e.Go("worker", func(p *sim.Proc) {
		c.RunOn(p, UserLib, 100)
		resumed = p.Now()
	})
	e.Run()
	if resumed != 1100 {
		t.Fatalf("resumed at %v, want 1100 (after BH)", resumed)
	}
}

func TestIndependentCoresRunConcurrently(t *testing.T) {
	e, s := newSys()
	var e0, e1 sim.Time
	s.Core(0).Exec(UserLib, 100, func() { e0 = e.Now() })
	s.Core(1).Exec(UserLib, 100, func() { e1 = e.Now() })
	e.Run()
	if e0 != 100 || e1 != 100 {
		t.Fatalf("e0=%v e1=%v, want both 100 (parallel cores)", e0, e1)
	}
}

func TestCompletionCanChainWork(t *testing.T) {
	e, s := newSys()
	c := s.Core(0)
	var end sim.Time
	c.Exec(BHProc, 100, func() {
		c.Exec(BHCopy, 200, func() { end = e.Now() })
	})
	e.Run()
	if end != 300 {
		t.Fatalf("chained end = %v, want 300", end)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, s := newSys()
	s.Core(0).Exec(UserLib, -1, nil)
}

// Property: total busy time equals the sum of all task durations, and
// a serial core finishes no earlier than that sum.
func TestPropertyBusyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, s := sim.New(), (*System)(nil)
		s = NewSystem(e, platform.Clovertown())
		c := s.Core(rng.Intn(8))
		n := 1 + rng.Intn(20)
		var total sim.Duration
		var lastEnd sim.Time
		for i := 0; i < n; i++ {
			d := sim.Duration(rng.Intn(1000))
			total += d
			cat := Category(rng.Intn(int(numCategories)))
			at := sim.Duration(rng.Intn(500))
			c2, d2 := cat, d
			e.Schedule(at, func() {
				c.Exec(c2, d2, func() { lastEnd = e.Now() })
			})
		}
		e.Run()
		if s.TotalBusy() != total {
			return false
		}
		return lastEnd >= sim.Time(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryString(t *testing.T) {
	if UserLib.String() != "user-lib" || BHCopy.String() != "bh-copy" {
		t.Fatal("category names wrong")
	}
	if IOATSubmit.String() != "ioat-submit" || AppCompute.String() != "compute" {
		t.Fatal("new category names wrong")
	}
	if Category(99).String() != "cat(99)" {
		t.Fatal("out-of-range name wrong")
	}
	if len(Categories()) != NumCategories {
		t.Fatalf("Categories() = %d entries, want %d", len(Categories()), NumCategories)
	}
}

func TestSnapshotLedger(t *testing.T) {
	e, s := newSys()
	s.Core(0).Exec(UserLib, 100, nil)
	s.Core(0).Exec(IOATSubmit, 50, nil)
	s.Core(3).Exec(AppCompute, 200, nil)
	e.Run()
	e.RunUntil(1000)
	st := s.Snapshot()
	if st.Window != 1000 {
		t.Fatalf("window = %v, want 1000", st.Window)
	}
	if len(st.Cores) != 8 || st.Cores[0].Core != 0 || st.Cores[7].Core != 7 {
		t.Fatalf("cores not in ascending ID order: %+v", st.Cores)
	}
	if st.Cores[0].Busy[UserLib] != 100 || st.Cores[0].Busy[IOATSubmit] != 50 {
		t.Fatalf("core0 ledger = %+v", st.Cores[0].Busy)
	}
	if st.Cores[0].Idle != 850 {
		t.Fatalf("core0 idle = %v, want 850", st.Cores[0].Idle)
	}
	if st.Cores[3].Busy[AppCompute] != 200 || st.Cores[3].Idle != 800 {
		t.Fatalf("core3 ledger = %+v idle=%v", st.Cores[3].Busy, st.Cores[3].Idle)
	}
	if st.Cores[1].TotalBusy() != 0 || st.Cores[1].Idle != 1000 {
		t.Fatalf("untouched core1 = %+v", st.Cores[1])
	}
	if st.Busy() != 350 || st.Busy(UserLib) != 100 || st.Busy(UserLib, IOATSubmit) != 150 {
		t.Fatalf("Busy sums wrong: %v %v %v", st.Busy(), st.Busy(UserLib), st.Busy(UserLib, IOATSubmit))
	}
	if pct := st.BusyPct(AppCompute); pct != 20 {
		t.Fatalf("BusyPct(AppCompute) = %v, want 20", pct)
	}
}

func TestSnapshotWindowFollowsReset(t *testing.T) {
	e, s := newSys()
	s.Core(0).Exec(UserLib, 100, nil)
	e.Run()
	s.ResetAccounting()
	s.Core(0).Exec(BHProc, 40, nil)
	e.Run()
	st := s.Snapshot()
	if st.Window != 40 {
		t.Fatalf("window after reset = %v, want 40", st.Window)
	}
	if st.Busy(UserLib) != 0 || st.Busy(BHProc) != 40 {
		t.Fatalf("ledger after reset: %v / %v", st.Busy(UserLib), st.Busy(BHProc))
	}
}

func TestSnapshotDeterministicRender(t *testing.T) {
	run := func() Stats {
		e, s := newSys()
		s.Core(2).Exec(BHCopy, 300, nil)
		s.Core(2).Exec(BHProc, 100, nil)
		s.Core(5).Exec(DriverCmd, 70, nil)
		e.Run()
		return s.Snapshot()
	}
	a, b := run(), run()
	if a.Render() != b.Render() {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	out := a.Render()
	for _, want := range []string{"bh-copy", "ioat-submit", "compute", "idle", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Idle cores are elided: only cores 2 and 5 plus header and total.
	if got := strings.Count(out, "\n"); got != 4 {
		t.Fatalf("render has %d lines, want 4:\n%s", got, out)
	}
}
