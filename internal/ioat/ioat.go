// Package ioat models the Intel I/O Acceleration Technology DMA engine
// found in the memory chipset: a small number of independent channels,
// each processing a serial queue of copy descriptors, with completions
// reported in order through a cookie that software polls from host
// memory. There are no interrupts — exactly like the Linux 2.6.23 DMA
// engine subsystem the paper builds on, waiters must busy-poll.
//
// Costs are split the way the paper measures them:
//
//   - CPU-side submission: a doorbell write plus per-descriptor setup
//     (≈350 ns for a single-descriptor copy);
//   - hardware-side processing: per-descriptor setup plus bytes at the
//     engine rate, with all channels sharing an aggregate throughput
//     cap (so striping one copy across channels buys ~40 %, not 4×);
//   - an idle-channel start latency, invisible to overlapped copies
//     but painful for small synchronous ones.
//
// Descriptors really move the payload bytes at completion time. A
// completed I/OAT copy leaves the destination cold in every CPU cache:
// the engine writes to memory and does not pollute (or warm) caches,
// which is exactly the behaviour the paper discusses.
package ioat

import (
	"fmt"

	"omxsim/internal/bus"
	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

// CopyReq describes one descriptor: copy N bytes from Src+SrcOff to
// Dst+DstOff.
type CopyReq struct {
	Dst    *hostmem.Buffer
	DstOff int
	Src    *hostmem.Buffer
	SrcOff int
	N      int
	// OnDone, if non-nil, runs in engine context when this descriptor
	// retires (used by the driver's resource tracking to know which
	// skbuffs may be freed — the real driver learns this by polling,
	// at identical simulated times).
	OnDone func()
}

// Engine is the I/OAT DMA engine of one host.
type Engine struct {
	E *sim.Engine
	P *platform.Platform

	arb      *bus.Arbiter
	channels []*Channel
	rr       int

	// Totals for diagnostics.
	BytesCopied  int64
	DescsRetired int64
}

// NewEngine builds the DMA engine described by p.
func NewEngine(e *sim.Engine, p *platform.Platform) *Engine {
	eng := &Engine{
		E:   e,
		P:   p,
		arb: bus.New(e, float64(p.IOATAggregateRate)),
	}
	for i := 0; i < p.IOATChannels; i++ {
		eng.channels = append(eng.channels, &Channel{eng: eng, id: i})
	}
	return eng
}

// Channels reports the number of DMA channels.
func (eng *Engine) Channels() int { return len(eng.channels) }

// Channel returns channel i.
func (eng *Engine) Channel(i int) *Channel { return eng.channels[i] }

// PickChannel returns the next channel round-robin. The Open-MX driver
// assigns one channel per message and relies on multiple outstanding
// messages to use all channels, exactly as described in Section V.
func (eng *Engine) PickChannel() *Channel {
	ch := eng.channels[eng.rr]
	eng.rr = (eng.rr + 1) % len(eng.channels)
	return ch
}

// SubmitCost reports the CPU time to submit a batch of n descriptors:
// one doorbell write plus per-descriptor setup. The caller charges this
// to the submitting CPU.
func (eng *Engine) SubmitCost(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(eng.P.IOATDoorbellCost + int64(n)*eng.P.IOATPerDescSubmit)
}

// PollCost is the CPU time of one completion-cookie check.
func (eng *Engine) PollCost() sim.Duration { return sim.Duration(eng.P.IOATPollCost) }

// Channel is one serial DMA channel.
type Channel struct {
	eng *Engine
	id  int

	queue     []*desc
	submitted uint64 // per-channel descriptor sequence, 1-based
	completed uint64 // last retired sequence (the completion cookie)
	active    bool   // head descriptor in flight (or starting up)

	watchers []watcher
}

type desc struct {
	req CopyReq
	seq uint64
}

type watcher struct {
	seq uint64
	fn  func()
}

// ID reports the channel index.
func (c *Channel) ID() int { return c.id }

// Completed reports the completion cookie: every descriptor with
// sequence ≤ Completed() has retired (in order). Reading the cookie on
// real hardware is a memory load; charge Engine.PollCost to a CPU when
// the simulated software does it.
func (c *Channel) Completed() uint64 { return c.completed }

// Pending reports the number of submitted but unretired descriptors.
func (c *Channel) Pending() int { return int(c.submitted - c.completed) }

// Submit enqueues descriptors and returns the sequence number of the
// last one; the batch is complete when Completed() reaches that value.
// Submit itself takes no simulated time — charge SubmitCost to the
// submitting CPU alongside.
func (c *Channel) Submit(reqs ...CopyReq) uint64 {
	if len(reqs) == 0 {
		return c.submitted
	}
	for _, r := range reqs {
		if r.N < 0 {
			panic(fmt.Sprintf("ioat: negative copy size %d", r.N))
		}
		c.submitted++
		c.queue = append(c.queue, &desc{req: r, seq: c.submitted})
	}
	last := c.submitted
	if !c.active {
		c.active = true
		// Idle channel: the engine needs StartLatency after the
		// doorbell before the first descriptor is processed.
		c.eng.E.Schedule(sim.Duration(c.eng.P.IOATStartLatency), c.startHead)
	}
	return last
}

// startHead begins processing the descriptor at the head of the queue.
func (c *Channel) startHead() {
	if len(c.queue) == 0 {
		c.active = false
		return
	}
	d := c.queue[0]
	p := c.eng.P
	// NUMA: a destination homed on the remote socket costs extra per
	// descriptor (the engine's writes traverse the FSB) and drains at a
	// reduced rate. Local-socket destinations are unaffected.
	home := d.req.Dst.HomeSocket()
	setup := sim.Duration(p.IOATDescSetup + p.RemoteDMADescCost(home))
	rate := float64(p.IOATEngineRate) / p.RemoteDMAFactor(home)
	c.eng.E.Schedule(setup, func() {
		c.eng.arb.Start(float64(d.req.N), rate, func() {
			c.retire(d)
		})
	})
}

// retire completes the head descriptor: move the bytes, update
// bookkeeping, notify watchers, continue with the next descriptor.
func (c *Channel) retire(d *desc) {
	r := d.req
	if r.N > 0 {
		copy(r.Dst.Data[r.DstOff:r.DstOff+r.N], r.Src.Data[r.SrcOff:r.SrcOff+r.N])
		// The engine writes straight to memory: the destination is not
		// warmed in any CPU cache (and prior cached copies of those
		// lines are invalidated).
		r.Dst.WrittenByDMA()
	}
	c.queue = c.queue[1:]
	c.completed = d.seq
	c.eng.BytesCopied += int64(r.N)
	c.eng.DescsRetired++
	if r.OnDone != nil {
		r.OnDone()
	}
	c.fireWatchers()
	// Back-to-back descriptors do not pay the start latency again.
	c.startHead()
}

// NotifyAt arranges for fn to run (in engine context) as soon as
// Completed() ≥ seq. If that already holds, fn runs immediately. This
// is a simulation convenience standing in for a software poll loop: the
// callback fires at exactly the simulated instant a busy-polling loop
// would observe the cookie advance.
func (c *Channel) NotifyAt(seq uint64, fn func()) {
	if c.completed >= seq {
		fn()
		return
	}
	c.watchers = append(c.watchers, watcher{seq: seq, fn: fn})
}

func (c *Channel) fireWatchers() {
	if len(c.watchers) == 0 {
		return
	}
	var keep []watcher
	var fire []watcher
	for _, w := range c.watchers {
		if c.completed >= w.seq {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.watchers = keep
	for _, w := range fire {
		w.fn()
	}
}
