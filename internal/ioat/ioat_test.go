package ioat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"omxsim/internal/hostmem"
	"omxsim/platform"
	"omxsim/sim"
)

func setup() (*sim.Engine, *platform.Platform, *hostmem.Memory, *Engine) {
	e := sim.New()
	p := platform.Clovertown()
	return e, p, hostmem.New(p), NewEngine(e, p)
}

func TestSubmitCostMatchesPaper(t *testing.T) {
	_, _, _, eng := setup()
	if got := eng.SubmitCost(1); got != 350 {
		t.Fatalf("single-descriptor submit = %v, want 350 ns", got)
	}
	if eng.SubmitCost(0) != 0 {
		t.Fatal("zero-descriptor submit should be free")
	}
	if eng.SubmitCost(3) <= eng.SubmitCost(1) {
		t.Fatal("multi-descriptor submit not increasing")
	}
}

func TestCopyMovesBytesAndCompletes(t *testing.T) {
	e, _, mem, eng := setup()
	src, dst := mem.Alloc(4096), mem.Alloc(4096)
	src.Fill(9)
	ch := eng.Channel(0)
	seq := ch.Submit(CopyReq{Dst: dst, Src: src, N: 4096})
	done := sim.Time(0)
	ch.NotifyAt(seq, func() { done = e.Now() })
	e.Run()
	if !hostmem.Equal(src, dst) {
		t.Fatal("bytes not copied")
	}
	if ch.Completed() != seq {
		t.Fatalf("cookie = %d, want %d", ch.Completed(), seq)
	}
	// startLatency(1200) + descSetup(300) + 4096B/3GiB/s(≈1272) ≈ 2.8 µs
	if done < 2500 || done > 3700 {
		t.Fatalf("completion at %v, want ≈2.8 µs", done)
	}
}

func TestFourKiBChunkStreamingRate(t *testing.T) {
	// Paper Fig. 7: ~2.4 GiB/s sustained with 4 kiB page chunks.
	e, _, mem, eng := setup()
	const chunk, total = 4096, 1 << 20
	src, dst := mem.Alloc(total), mem.Alloc(total)
	ch := eng.Channel(0)
	var reqs []CopyReq
	for off := 0; off < total; off += chunk {
		reqs = append(reqs, CopyReq{Dst: dst, DstOff: off, Src: src, SrcOff: off, N: chunk})
	}
	seq := ch.Submit(reqs...)
	var done sim.Time
	ch.NotifyAt(seq, func() { done = e.Now() })
	e.Run()
	rate := platform.Rate(float64(total) / float64(done)).InGiBps()
	if rate < 2.2 || rate > 2.6 {
		t.Fatalf("4 kiB chunk rate = %.2f GiB/s, want ≈2.4", rate)
	}
}

func TestSmallChunksAreSlow(t *testing.T) {
	// Paper Fig. 7: 256 B chunks are far below memcpy.
	e, _, mem, eng := setup()
	const chunk, total = 256, 256 * 1024
	src, dst := mem.Alloc(total), mem.Alloc(total)
	ch := eng.Channel(0)
	var reqs []CopyReq
	for off := 0; off < total; off += chunk {
		reqs = append(reqs, CopyReq{Dst: dst, DstOff: off, Src: src, SrcOff: off, N: chunk})
	}
	seq := ch.Submit(reqs...)
	var done sim.Time
	ch.NotifyAt(seq, func() { done = e.Now() })
	e.Run()
	rate := platform.Rate(float64(total) / float64(done)).InGiBps()
	if rate > 0.8 {
		t.Fatalf("256 B chunk rate = %.2f GiB/s, want < 0.8", rate)
	}
}

func TestInOrderCompletionWithinChannel(t *testing.T) {
	e, _, mem, eng := setup()
	src, dst := mem.Alloc(1<<20), mem.Alloc(1<<20)
	ch := eng.Channel(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		n := 512 * (10 - i) // decreasing sizes: later descs are smaller
		ch.Submit(CopyReq{Dst: dst, DstOff: i * 65536, Src: src, SrcOff: i * 65536, N: n,
			OnDone: func() { order = append(order, i) }})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order = %v", order)
		}
	}
}

func TestChannelsProgressIndependently(t *testing.T) {
	e, _, mem, eng := setup()
	src, dst := mem.Alloc(1<<20), mem.Alloc(1<<20)
	var t0, t1 sim.Time
	s0 := eng.Channel(0).Submit(CopyReq{Dst: dst, Src: src, N: 512 * 1024})
	s1 := eng.Channel(1).Submit(CopyReq{Dst: dst, DstOff: 524288, Src: src, SrcOff: 524288, N: 4096})
	eng.Channel(0).NotifyAt(s0, func() { t0 = e.Now() })
	eng.Channel(1).NotifyAt(s1, func() { t1 = e.Now() })
	e.Run()
	if t1 >= t0 {
		t.Fatalf("small copy on idle channel (%v) not faster than big copy (%v)", t1, t0)
	}
}

func TestAggregateCapAcrossChannels(t *testing.T) {
	// Four channels at once must share IOATAggregateRate (3.4 GiB/s),
	// not run at 4×3.0 GiB/s.
	e, p, mem, eng := setup()
	const per = 1 << 20
	src, dst := mem.Alloc(4*per), mem.Alloc(4*per)
	var last sim.Time
	for i := 0; i < 4; i++ {
		ch := eng.Channel(i)
		seq := ch.Submit(CopyReq{Dst: dst, DstOff: i * per, Src: src, SrcOff: i * per, N: per})
		ch.NotifyAt(seq, func() {
			if e.Now() > last {
				last = e.Now()
			}
		})
	}
	e.Run()
	aggregate := platform.Rate(float64(4*per) / float64(last))
	if aggregate.InGiBps() > p.IOATAggregateRate.InGiBps()*1.02 {
		t.Fatalf("aggregate %.2f GiB/s beats cap %.2f", aggregate.InGiBps(), p.IOATAggregateRate.InGiBps())
	}
	// And still meaningfully above a single channel's 2.4 GiB/s at 1 MiB descs.
	if aggregate.InGiBps() < 3.0 {
		t.Fatalf("aggregate %.2f GiB/s too low", aggregate.InGiBps())
	}
}

func TestStartLatencyOnlyWhenIdle(t *testing.T) {
	e, p, mem, eng := setup()
	src, dst := mem.Alloc(8192), mem.Alloc(8192)
	ch := eng.Channel(0)
	var t1, t2 sim.Time
	s1 := ch.Submit(CopyReq{Dst: dst, Src: src, N: 4096})
	s2 := ch.Submit(CopyReq{Dst: dst, DstOff: 4096, Src: src, SrcOff: 4096, N: 4096})
	ch.NotifyAt(s1, func() { t1 = e.Now() })
	ch.NotifyAt(s2, func() { t2 = e.Now() })
	e.Run()
	perDesc := sim.Duration(p.IOATDescSetup) + sim.Duration(4096.0/float64(p.IOATEngineRate))
	// Second descriptor should take ≈perDesc, with no extra start latency.
	gap := t2 - t1
	if gap < perDesc-10 || gap > perDesc+10 {
		t.Fatalf("second desc gap = %v, want ≈%v", gap, perDesc)
	}
	if t1 < sim.Time(p.IOATStartLatency) {
		t.Fatalf("first desc finished before start latency: %v", t1)
	}
}

func TestNotifyAtAlreadyComplete(t *testing.T) {
	e, _, mem, eng := setup()
	src, dst := mem.Alloc(128), mem.Alloc(128)
	ch := eng.Channel(0)
	seq := ch.Submit(CopyReq{Dst: dst, Src: src, N: 128})
	e.Run()
	ran := false
	ch.NotifyAt(seq, func() { ran = true })
	if !ran {
		t.Fatal("NotifyAt on retired seq did not fire immediately")
	}
}

func TestDestinationLeftCacheCold(t *testing.T) {
	e, _, mem, eng := setup()
	src, dst := mem.Alloc(4096), mem.Alloc(4096)
	dst.Touch(0, 4096) // warm it first
	ch := eng.Channel(0)
	ch.Submit(CopyReq{Dst: dst, Src: src, N: 4096})
	e.Run()
	if dst.WarmL2(0) || dst.WarmL1(0) {
		t.Fatal("I/OAT copy warmed the destination cache")
	}
	if !dst.DMACold() {
		t.Fatal("destination should be DMA-cold")
	}
}

func TestPickChannelRoundRobin(t *testing.T) {
	_, p, _, eng := setup()
	seen := map[int]int{}
	for i := 0; i < 2*p.IOATChannels; i++ {
		seen[eng.PickChannel().ID()]++
	}
	for i := 0; i < p.IOATChannels; i++ {
		if seen[i] != 2 {
			t.Fatalf("channel %d picked %d times: %v", i, seen[i], seen)
		}
	}
}

// Property: for any batch, completions are in order, all bytes arrive,
// and total time ≥ bytes/aggregateRate.
func TestPropertyBatchIntegrity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, p, mem, eng := setup()
		_ = p
		total := 0
		nDesc := 1 + rng.Intn(30)
		src := mem.Alloc(1 << 20)
		dst := mem.Alloc(1 << 20)
		src.Fill(byte(seed))
		ch := eng.Channel(rng.Intn(4))
		off := 0
		var reqs []CopyReq
		for i := 0; i < nDesc; i++ {
			n := 1 + rng.Intn(8192)
			if off+n > 1<<20 {
				break
			}
			reqs = append(reqs, CopyReq{Dst: dst, DstOff: off, Src: src, SrcOff: off, N: n})
			off += n
			total += n
		}
		seq := ch.Submit(reqs...)
		var done sim.Time
		ch.NotifyAt(seq, func() { done = e.Now() })
		e.Run()
		if ch.Completed() != seq {
			return false
		}
		for i := 0; i < total; i++ {
			if dst.Data[i] != src.Data[i] {
				return false
			}
		}
		minTime := float64(total) / float64(eng.P.IOATAggregateRate)
		return float64(done) >= minTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, _, mem, eng := setup()
	b := mem.Alloc(10)
	eng.Channel(0).Submit(CopyReq{Dst: b, Src: b, N: -1})
}
