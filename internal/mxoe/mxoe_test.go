package mxoe

import (
	"testing"

	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

type pair struct {
	e        *sim.Engine
	p        *platform.Platform
	sa, sb   *Stack
	epA, epB *Endpoint
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	e := sim.New()
	p := platform.Clovertown()
	ha, hb := host.New(e, p, "mxA"), host.New(e, p, "mxB")
	ab, ba := wire.Connect(e, p, ha.NIC, hb.NIC)
	ha.NIC.SetHose(ab)
	hb.NIC.SetHose(ba)
	sa, sb := Attach(ha, cfg), Attach(hb, cfg)
	pr := &pair{e: e, p: p, sa: sa, sb: sb}
	pr.epA = sa.OpenEndpoint(0, 2)
	pr.epB = sb.OpenEndpoint(0, 2)
	t.Cleanup(e.Close)
	return pr
}

func sendRecv(t *testing.T, pr *pair, n int) sim.Time {
	t.Helper()
	src, dst := pr.sa.H.Alloc(n), pr.sb.H.Alloc(n)
	src.Fill(0x33)
	var done sim.Time
	pr.e.Go("recv", func(p *sim.Proc) {
		r := pr.epB.IRecv(p, 9, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
		done = p.Now()
	})
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 9, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.e.RunUntil(2 * sim.Second)
	if done == 0 {
		t.Fatalf("recv never completed (n=%d), blocked: %v", n, pr.e.BlockedProcs())
	}
	if !hostmem.Equal(src, dst) {
		t.Fatalf("payload corrupted (n=%d)", n)
	}
	return done
}

func TestTiny(t *testing.T)   { sendRecv(t, newPair(t, Config{}), 16) }
func TestSmall(t *testing.T)  { sendRecv(t, newPair(t, Config{}), 128) }
func TestMedium(t *testing.T) { sendRecv(t, newPair(t, Config{}), 16*1024) }
func TestLarge(t *testing.T)  { sendRecv(t, newPair(t, Config{}), 1<<20) }
func TestHuge(t *testing.T)   { sendRecv(t, newPair(t, Config{}), 8<<20) }

func TestSmallLatencyNearThreeMicroseconds(t *testing.T) {
	// Native MX one-way small-message latency is ≈3 µs on this class
	// of hardware.
	pr := newPair(t, Config{})
	lat := sendRecv(t, pr, 16)
	if lat < 1500 || lat > 5000 {
		t.Fatalf("MX small latency = %v, want ≈3 µs", lat)
	}
}

func TestZeroHostCPUOnReceivePath(t *testing.T) {
	// The receiving host must burn CPU only in the library (posting,
	// matching, the single eager copy) — never in bottom halves.
	pr := newPair(t, Config{})
	sendRecv(t, pr, 1<<20)
	byCat := pr.sb.H.Sys.BusyByCategory()
	for cat, ns := range byCat {
		if cat.String() == "bh-proc" || cat.String() == "bh-copy" {
			t.Fatalf("native MX burned %v in %v", ns, cat)
		}
	}
}

func TestLargeZeroCopyNoLibraryCopyCost(t *testing.T) {
	// For a large message the receive-side CPU cost must be tiny:
	// matching + pull post + pin + completion, but no data copy.
	pr := newPair(t, Config{})
	pr.sb.H.Sys.ResetAccounting()
	sendRecv(t, pr, 4<<20)
	busy := pr.sb.H.Sys.TotalBusy()
	// Pinning 1024 pages at 600 ns dominates; allow 1.5 ms, far below
	// any copy of 4 MiB (≈2.6 ms at 1.6 GiB/s would be the tell).
	if busy > 1500*sim.Microsecond {
		t.Fatalf("receive-side CPU = %v, too high for zero-copy", busy)
	}
}

func TestUnexpectedEager(t *testing.T) {
	pr := newPair(t, Config{})
	n := 8192
	src, dst := pr.sa.H.Alloc(n), pr.sb.H.Alloc(n)
	src.Fill(5)
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 3, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.e.Go("recv", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		r := pr.epB.IRecv(p, 3, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.e.RunUntil(sim.Second)
	if !hostmem.Equal(src, dst) {
		t.Fatal("unexpected eager corrupted")
	}
}

func TestUnexpectedRndv(t *testing.T) {
	pr := newPair(t, Config{})
	n := 512 * 1024
	src, dst := pr.sa.H.Alloc(n), pr.sb.H.Alloc(n)
	src.Fill(6)
	pr.e.Go("send", func(p *sim.Proc) {
		r := pr.epA.ISend(p, pr.epB.Addr(), 3, src, 0, n)
		pr.epA.Wait(p, r)
	})
	pr.e.Go("recv", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		r := pr.epB.IRecv(p, 3, ^uint64(0), dst, 0, n)
		pr.epB.Wait(p, r)
	})
	pr.e.RunUntil(sim.Second)
	if !hostmem.Equal(src, dst) {
		t.Fatal("unexpected rndv corrupted")
	}
}

func TestRegCachePinsOnce(t *testing.T) {
	pr := newPair(t, Config{RegCache: true})
	n := 256 * 1024
	src, dst := pr.sa.H.Alloc(n), pr.sb.H.Alloc(n)
	pr.e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r := pr.epB.IRecv(p, 1, ^uint64(0), dst, 0, n)
			pr.epB.Wait(p, r)
		}
	})
	pr.e.Go("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r := pr.epA.ISend(p, pr.epB.Addr(), 1, src, 0, n)
			pr.epA.Wait(p, r)
		}
	})
	pr.e.RunUntil(2 * sim.Second)
	if !src.Pinned() || !dst.Pinned() {
		t.Fatal("regcache should keep buffers pinned")
	}
}

// Large-message throughput must land near the paper's 1140 MiB/s.
func TestLargeThroughputNearPaper(t *testing.T) {
	pr := newPair(t, Config{RegCache: true})
	n := 8 << 20
	src, dst := pr.sa.H.Alloc(n), pr.sb.H.Alloc(n)
	xfer := func(tag uint64) (mibps float64) {
		var t0, t1 sim.Time
		pr.e.Go("recv", func(p *sim.Proc) {
			r := pr.epB.IRecv(p, tag, ^uint64(0), dst, 0, n)
			pr.epB.Wait(p, r)
			t1 = p.Now()
		})
		pr.e.Go("send", func(p *sim.Proc) {
			t0 = p.Now()
			r := pr.epA.ISend(p, pr.epB.Addr(), tag, src, 0, n)
			pr.epA.Wait(p, r)
		})
		pr.e.RunUntil(pr.e.Now() + sim.Second)
		if t1 == 0 {
			t.Fatal("transfer did not finish")
		}
		return float64(n) / 1024 / 1024 / (t1 - t0).Seconds()
	}
	xfer(1) // warm the registration caches (IMB reuses buffers too)
	mibps := xfer(2)
	if mibps < 1080 || mibps > 1190 {
		t.Fatalf("MX large throughput = %.0f MiB/s, want ≈1140", mibps)
	}
}
