// Package mxoe models Myricom's native Myrinet Express over Ethernet
// stack on a Myri-10G NIC: the performance baseline of every figure in
// the paper, and the interoperability peer of Open-MX (both speak the
// internal/proto wire format — a key Open-MX feature).
//
// The defining differences from Open-MX are architectural, and the
// model captures exactly those:
//
//   - OS bypass: posting a send or receive is a user-level write to
//     the NIC (MXPostCost), no system call, no driver;
//   - receive processing runs in NIC firmware: no interrupt, no
//     bottom half, no host CPU;
//   - eager data is deposited by NIC DMA into a host receive queue and
//     copied ONCE by the library after matching (Open-MX needs two
//     copies);
//   - large messages are deposited by DMA directly into the pinned
//     destination buffer — zero host copies — after a firmware-level
//     rendezvous/pull exchange, paced by the firmware's control
//     traffic (the ~4 % that puts MX at 1140 MiB/s instead of the
//     1186 MiB/s line rate);
//   - registration is more expensive per page than Open-MX's (the
//     NIC's translation table must be updated), making the
//     registration cache matter more (Figure 11).
//
// Reliability is handled entirely by the firmware, as on real
// Myri-10G boards: cumulative acks, duplicate suppression,
// retransmission with exponential backoff and pull-block retry all
// run at frame-arrival time with zero host CPU (see reliability.go).
// On a clean link none of it costs anything — no timer fires and no
// extra frame is emitted.
package mxoe

import (
	"fmt"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// Config for the native stack.
type Config struct {
	// RegCache enables the registration cache: per-stack, unbounded
	// unless RegCacheEntries caps it.
	RegCache bool
	// RegCacheEntries bounds the registration cache to this many
	// resident regions (LRU eviction past the bound); 0 = unbounded.
	RegCacheEntries int
	// DCATargetCore, on a platform with HasDCA, steers the firmware's
	// DMA deposits at this core's LLC. 0 (the default) targets the
	// receiving endpoint's own core — native MX firmware knows the
	// consumer, unlike the generic driver which can only follow the
	// interrupt. Ignored without HasDCA.
	DCATargetCore int
	// RingSlots is the eager receive queue capacity (4 kiB slots).
	RingSlots int
	// RetransmitTimeout is the firmware's base retransmission timeout
	// for unacked eager messages, rendezvous requests and pull
	// blocks; RetransmitBackoff multiplies it per consecutive
	// unanswered attempt (1 disables), capped at RetransmitMax.
	RetransmitTimeout sim.Duration
	RetransmitBackoff float64
	RetransmitMax     sim.Duration
	// Adaptive enables the firmware's self-tuning tier (adaptive.go):
	// per-peer RTT-derived retransmission timeouts (unless an explicit
	// RetransmitTimeout pins the static base) and AIMD-sized pull
	// windows. Off, the firmware behaves bit-identically to the fixed
	// two-blocks-per-lane configuration.
	Adaptive bool
}

// Stats counts firmware protocol activity for tests and diagnostics.
type Stats struct {
	EagerSent        int64
	RndvSent         int64
	FragsSent        int64
	EagerRetransmits int64
	RndvRetransmits  int64
	PullRetransmits  int64
	DupFrags         int64
	QueueDrops       int64
	// NICTxFrames counts frames transmitted per NIC lane — the
	// striping balance on a multi-NIC host (one entry per NIC).
	NICTxFrames []int64
	// Coll counts NIC-offloaded collective activity (coll.go).
	Coll CollStats
}

// Retransmits sums every retransmission class.
func (st Stats) Retransmits() int64 {
	return st.EagerRetransmits + st.RndvRetransmits + st.PullRetransmits
}

// Stack is the native MXoE instance of one host.
type Stack struct {
	H   *host.Host
	Cfg Config

	// lanes is the host's NIC count. The firmware stripes eager
	// fragments and pull blocks round-robin across lanes (real MX
	// firmware has no configurable hash policy) and widens its pull
	// window to two blocks per lane.
	lanes int

	endpoints map[int]*Endpoint
	sends     map[int]*mxSend
	pulls     map[int]*mxPull
	// rndvSeen deduplicates retransmitted rendezvous requests;
	// completed entries are bounded by the rndvDone FIFO (oldest
	// evicted past proto.RndvDedupWindow) so the map cannot grow
	// without bound and wrapped sequence numbers cannot hit ancient
	// entries.
	rndvSeen   map[rndvKey]*rndvState
	rndvDone   []rndvKey
	nextHandle int

	// Firmware collective-group state (coll.go): registered groups by
	// (group ID, endpoint), plus frames that arrived before the local
	// CollJoin.
	collGroups  map[collKey]*CollGroup
	collPending map[collKey][]*wire.Frame

	// Adaptive-tier state (adaptive.go): whether timeouts derive from
	// measured RTTs, and the per-peer estimators feeding them.
	adaptiveRTO bool
	rtt         map[proto.Addr]*proto.RTTEstimator
	pullWin     map[proto.Addr]*proto.AIMDWindow

	// Trace, when set, receives transport span and counter events
	// (pull blocks, collectives, retransmissions, SRTT samples) in the
	// host stack's TraceEvent format, for the Chrome trace exporter.
	Trace func(core.TraceEvent)

	// reg is the per-stack registration cache (Config.RegCache); nil
	// when disabled.
	reg *hostmem.RegCache

	Stats Stats
}

// RegStats snapshots the registration cache's counters (zero value
// when Config.RegCache is off).
func (s *Stack) RegStats() hostmem.RegStats {
	if s.reg == nil {
		return hostmem.RegStats{}
	}
	return s.reg.Stats()
}

// Attach builds a native MX stack on h, switching the NIC to firmware
// mode.
func Attach(h *host.Host, cfg Config) *Stack {
	// Adaptive RTO applies only when no explicit timeout pins the
	// static base — decided before the default is filled in.
	adaptiveRTO := cfg.Adaptive && cfg.RetransmitTimeout == 0
	if cfg.RingSlots == 0 {
		cfg.RingSlots = 512
	}
	if cfg.RetransmitTimeout == 0 {
		cfg.RetransmitTimeout = 50 * sim.Millisecond
	}
	if cfg.RetransmitBackoff == 0 {
		cfg.RetransmitBackoff = 2
	}
	if cfg.RetransmitMax == 0 {
		cfg.RetransmitMax = 16 * cfg.RetransmitTimeout
	}
	s := &Stack{
		H:         h,
		Cfg:       cfg,
		lanes:     h.Lanes(),
		endpoints: make(map[int]*Endpoint),
		sends:     make(map[int]*mxSend),
		pulls:     make(map[int]*mxPull),
		rndvSeen:  make(map[rndvKey]*rndvState),

		collGroups:  make(map[collKey]*CollGroup),
		collPending: make(map[collKey][]*wire.Frame),

		adaptiveRTO: adaptiveRTO,
	}
	if cfg.Adaptive {
		s.rtt = make(map[proto.Addr]*proto.RTTEstimator)
		s.pullWin = make(map[proto.Addr]*proto.AIMDWindow)
	}
	if cfg.RegCache {
		s.reg = hostmem.NewRegCache(cfg.RegCacheEntries)
	}
	s.Stats.NICTxFrames = make([]int64, s.lanes)
	for i, n := range h.NICs {
		lane := i
		n.SetFirmware(func(f *wire.Frame) { s.firmwareRx(lane, f) })
	}
	return s
}

// laneOf picks the transmit lane for one unit (eager fragment or pull
// block) of message seq: fixed round-robin, recomputed identically on
// retransmission so a lossy lane retries on itself.
func (s *Stack) laneOf(seq uint32, unit int) int {
	if s.lanes <= 1 {
		return 0
	}
	return (int(seq) + unit) % s.lanes
}

// Endpoint is one MX endpoint (user library + firmware queue state).
type Endpoint struct {
	S    *Stack
	ID   int
	Core int

	ring      *hostmem.Buffer
	freeSlots []int

	evq   []*event
	evSig *sim.Signal

	posted []*Request
	ux     []*uxMsg
	asm    map[asmKey]*assembly

	// Firmware reliability state, per peer.
	tx map[proto.Addr]*mxTxChan
	rx map[proto.Addr]*mxRxChan
}

// Request is an in-flight MX operation.
type Request struct {
	ep     *Endpoint
	isRecv bool
	done   bool

	Len        int
	SenderAddr proto.Addr
	MatchInfo  uint64

	match, mask uint64
	buf         *hostmem.Buffer
	off, n      int
	dst         proto.Addr
}

// Done reports completion.
func (r *Request) Done() bool { return r.done }

type evKind int

const (
	evEagerFrag evKind = iota
	evRndv
	evRecvDone
	evSendDone
	evCollDone
	evShm
)

type event struct {
	kind    evKind
	src     proto.Addr
	match   uint64
	seq     uint32
	msgLen  int
	fragID  int
	fragCnt int
	offset  int
	slot    int
	dataLen int
	handle  int
	req     *Request
	seg     *hostmem.Buffer // shared-memory payload segment
}

type uxKind int

const (
	uxEager uxKind = iota
	uxRndv
)

type uxMsg struct {
	kind   uxKind
	src    proto.Addr
	match  uint64
	seq    uint32
	msgLen int
	tmp    *hostmem.Buffer
	handle int
}

type asmKey struct {
	src proto.Addr
	seq uint32
}

type assembly struct {
	match   uint64
	msgLen  int
	fragCnt int
	got     uint64
	arrived int
	dst     *Request
	tmp     *hostmem.Buffer
}

type mxSend struct {
	handle int
	ep     *Endpoint
	req    *Request
	dst    proto.Addr
	seq    uint32
	buf    *hostmem.Buffer
	off, n int
	// Firmware request-retransmission state.
	rtx      sim.Timer
	attempts int
	pulled   bool
	// sampled flags that the request->first-pull RTT was already
	// taken (pulled cannot double as this: the rndv watchdog resets
	// it to probe for progress).
	sampled  bool
	finished bool
	// sentAt is the request's post time: the request -> first-pull
	// round trip is an RTT sample when nothing was retransmitted.
	sentAt sim.Time
}

type mxPull struct {
	handle       int
	ep           *Endpoint
	req          *Request
	src          proto.Addr
	senderHandle int
	key          rndvKey
	buf          *hostmem.Buffer
	off, n       int
	frags        int
	arrived      int
	nextBlock    int
	blocks       map[int]*mxBlock
	done         bool
	startedAt    sim.Time // pull start, for the whole-rendezvous trace span
	// aw is the transfer's AIMD window controller when the firmware
	// runs adaptive; nil keeps the fixed two-blocks-per-lane pipeline.
	aw *proto.AIMDWindow
}

// OpenEndpoint creates endpoint id bound to a core.
func (s *Stack) OpenEndpoint(id, coreID int) *Endpoint {
	if _, dup := s.endpoints[id]; dup {
		panic(fmt.Sprintf("mxoe: endpoint %d already open on %s", id, s.H.Name))
	}
	ep := &Endpoint{
		S: s, ID: id, Core: coreID,
		ring:  s.H.Alloc(s.Cfg.RingSlots * proto.MediumFragSize),
		evSig: sim.NewSignal(),
		asm:   make(map[asmKey]*assembly),
		tx:    make(map[proto.Addr]*mxTxChan),
		rx:    make(map[proto.Addr]*mxRxChan),
	}
	for i := s.Cfg.RingSlots - 1; i >= 0; i-- {
		ep.freeSlots = append(ep.freeSlots, i)
	}
	s.endpoints[id] = ep
	return ep
}

// Addr returns the endpoint's address.
func (ep *Endpoint) Addr() proto.Addr { return proto.Addr{Host: ep.S.H.Name, EP: ep.ID} }

func (ep *Endpoint) core() *cpu.Core { return ep.S.H.Sys.Core(ep.Core) }

func (ep *Endpoint) pushEvent(ev *event) {
	ep.evq = append(ep.evq, ev)
	ep.evSig.Broadcast()
}

// pinCost models MX registration of an n-byte region: per-page cost
// including the NIC translation-table update, amortized by the
// registration cache.
func (ep *Endpoint) pinCost(buf *hostmem.Buffer, n int) sim.Duration {
	p := ep.S.H.P
	if ep.S.reg != nil {
		pinned, evicted := ep.S.reg.Acquire(buf, n)
		return sim.Duration(pinned*p.MXPinPerPage + evicted*p.UnpinPerPage)
	}
	buf.Pin()
	pages := int64((max(n, 1) + p.PageSize - 1) / p.PageSize)
	return sim.Duration(pages * p.MXPinPerPage)
}

func (ep *Endpoint) unpinCost(buf *hostmem.Buffer, n int) sim.Duration {
	if ep.S.Cfg.RegCache {
		return 0
	}
	buf.Unpin()
	pages := int64((max(n, 1) + ep.S.H.P.PageSize - 1) / ep.S.H.P.PageSize)
	return sim.Duration(pages * ep.S.H.P.UnpinPerPage)
}

func matches(recvMatch, recvMask, msgMatch uint64) bool {
	return recvMatch&recvMask == msgMatch&recvMask
}

// transmit hands a control frame to the primary NIC (lane 0).
func (s *Stack) transmit(dst proto.Addr, msg any, payload []byte) {
	s.transmitOn(0, dst, msg, payload)
}

// transmitOn hands a frame to the lane-th NIC, addressed to the
// peer's same-numbered lane (symmetric lane numbering, wire.LaneAddr).
func (s *Stack) transmitOn(lane int, dst proto.Addr, msg any, payload []byte) {
	s.Stats.NICTxFrames[lane]++
	s.H.NICs[lane].Transmit(&wire.Frame{
		Data:    payload,
		WireLen: len(payload) + s.H.P.OMXHeaderBytes,
		Msg:     msg,
		DstAddr: wire.LaneAddr(dst.Host, lane),
	})
}

// ISend posts a send: an OS-bypass NIC command. Intra-node messages
// take the library's shared-memory channel; eager messages stream
// immediately; large ones pin and send a rendezvous request.
func (ep *Endpoint) ISend(p *sim.Proc, dst proto.Addr, match uint64, buf *hostmem.Buffer, off, n int) *Request {
	s := ep.S
	r := &Request{ep: ep, dst: dst, MatchInfo: match, buf: buf, off: off, n: n}
	if dst.Host == s.H.Name {
		return ep.shmSend(p, r)
	}
	tc := ep.mxTx(dst)
	seq := tc.next()
	if n > 32*1024 {
		cost := sim.Duration(s.H.P.MXPostCost) + ep.pinCost(buf, n)
		ep.core().RunOn(p, cpu.UserLib, cost)
		s.nextHandle++
		ms := &mxSend{handle: s.nextHandle, ep: ep, req: r, dst: dst, seq: seq, buf: buf, off: off, n: n, sentAt: s.H.E.Now()}
		s.sends[ms.handle] = ms
		s.transmitOn(s.laneOf(seq, 0), dst, &proto.RndvRequest{
			Src: ep.Addr(), Dst: dst, Match: match, Seq: seq, MsgLen: n, SenderHandle: ms.handle,
		}, nil)
		s.Stats.RndvSent++
		s.armRndvRtx(ms)
		return r
	}
	ep.core().RunOn(p, cpu.UserLib, sim.Duration(s.H.P.MXPostCost))
	frags := proto.MediumFragsOf(n)
	u := &mxUnacked{seq: seq, sentAt: s.H.E.Now()}
	for f := 0; f < frags; f++ {
		fo := f * proto.MediumFragSize
		fl := min(proto.MediumFragSize, n-fo)
		if n <= proto.SmallMax {
			fl = n
		}
		var payload []byte
		if fl > 0 {
			payload = make([]byte, fl)
			copy(payload, buf.Data[off+fo:off+fo+fl])
		}
		m := &proto.Eager{
			Src: ep.Addr(), Dst: dst, Match: match, Seq: seq, MsgLen: n,
			FragID: f, FragCount: frags, Offset: fo,
		}
		u.msgs = append(u.msgs, m)
		u.loads = append(u.loads, payload)
		// Fragments stripe round-robin across NIC lanes; the firmware
		// assembly bitmaps tolerate any cross-lane arrival order.
		s.transmitOn(s.laneOf(seq, f), dst, m, payload)
	}
	s.Stats.EagerSent++
	// The firmware keeps the frame snapshots until the peer's
	// cumulative ack covers them, retransmitting on timeout.
	tc.unacked = append(tc.unacked, u)
	ep.armEagerRtx(tc)
	// Eager sends complete at post time: the NIC has snapshot the data
	// and firmware-level retransmission guarantees delivery.
	r.done = true
	return r
}

// IRecv posts a receive into the library matching state.
func (ep *Endpoint) IRecv(p *sim.Proc, match, mask uint64, buf *hostmem.Buffer, off, n int) *Request {
	ep.core().RunOn(p, cpu.UserLib, sim.Duration(ep.S.H.P.OMXLibPickupCost))
	r := &Request{ep: ep, isRecv: true, match: match, mask: mask, buf: buf, off: off, n: n}
	for i, u := range ep.ux {
		if !matches(match, mask, u.match) {
			continue
		}
		ep.ux = append(ep.ux[:i], ep.ux[i+1:]...)
		switch u.kind {
		case uxEager:
			cnt := min(u.msgLen, n)
			if cnt > 0 {
				d := ep.S.H.Copy.Memcpy(buf, off, u.tmp, 0, cnt, ep.Core)
				ep.core().RunOn(p, cpu.UserLib, d)
			}
			r.Len, r.SenderAddr, r.MatchInfo, r.done = cnt, u.src, u.match, true
		case uxRndv:
			ep.startPull(p, r, u)
		}
		return r
	}
	// In-progress unexpected assemblies may be claimed by a new post.
	// Without this, a message whose first fragment arrived before the
	// post — possible whenever retransmission delays a fragment —
	// would complete into the unexpected queue and never be matched.
	// Selection is by lowest (source, sequence), never by map order,
	// so runs stay bit-reproducible.
	var claim *assembly
	var claimKey asmKey
	for k, a := range ep.asm {
		if a.dst == nil && matches(match, mask, a.match) && (claim == nil || claimKeyBefore(k, claimKey)) {
			claim, claimKey = a, k
		}
	}
	if claim != nil {
		claim.dst = r
		if claim.arrived > 0 && claim.tmp != nil {
			ep.claimArrived(p, r, claim.got, claim.msgLen, claim.tmp)
		}
		claim.tmp = nil
		return r
	}
	ep.posted = append(ep.posted, r)
	return r
}

// claimKeyBefore orders claim candidates deterministically (see
// proto.ClaimBefore).
func claimKeyBefore(a, b asmKey) bool {
	return proto.ClaimBefore(a.src, a.seq, b.src, b.seq)
}

// claimArrived copies the already-arrived fragments of a claimed
// assembly into the posted receive, fragment by fragment per
// proto.CopyPlan (arrivals need not be contiguous once retransmission
// or cross-NIC striping is involved; this library always copies
// per fragment, unlike Open-MX's merged-prefix fast path).
func (ep *Endpoint) claimArrived(p *sim.Proc, r *Request, got uint64, msgLen int, tmp *hostmem.Buffer) {
	limit := min(msgLen, r.n)
	for _, run := range proto.CopyPlan(got, 0, proto.MediumFragSize, limit, false) {
		d := ep.S.H.Copy.Memcpy(r.buf, r.off+run.Off, tmp, run.Off, run.N, ep.Core)
		ep.core().RunOn(p, cpu.UserLib, d)
	}
}

// Wait drives library progress until r completes.
func (ep *Endpoint) Wait(p *sim.Proc, r *Request) {
	for !r.done {
		if !ep.Progress(p) {
			p.WaitFor(ep.evSig, func() bool { return len(ep.evq) > 0 })
		}
	}
}

// Test reports whether r completed after a progress pass.
func (ep *Endpoint) Test(p *sim.Proc, r *Request) bool {
	ep.Progress(p)
	return r.done
}

// Progress drains pending events.
func (ep *Endpoint) Progress(p *sim.Proc) bool {
	if len(ep.evq) == 0 {
		return false
	}
	for len(ep.evq) > 0 {
		ev := ep.evq[0]
		ep.evq = ep.evq[1:]
		ep.core().RunOn(p, cpu.UserLib, sim.Duration(ep.S.H.P.OMXLibPickupCost))
		ep.handleEvent(p, ev)
	}
	return true
}

func (ep *Endpoint) handleEvent(p *sim.Proc, ev *event) {
	switch ev.kind {
	case evEagerFrag:
		ep.handleEagerFrag(p, ev)
	case evRndv:
		u := &uxMsg{kind: uxRndv, src: ev.src, match: ev.match, seq: ev.seq, msgLen: ev.msgLen, handle: ev.handle}
		for i, r := range ep.posted {
			if matches(r.match, r.mask, ev.match) {
				ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
				ep.startPull(p, r, u)
				return
			}
		}
		ep.ux = append(ep.ux, u)
	case evRecvDone:
		d := ep.unpinCost(ev.req.buf, ev.req.n)
		if d > 0 {
			ep.core().RunOn(p, cpu.UserLib, d)
		}
		ev.req.done = true
	case evSendDone:
		d := ep.unpinCost(ev.req.buf, ev.req.n)
		if d > 0 {
			ep.core().RunOn(p, cpu.UserLib, d)
		}
		ev.req.done = true
	case evCollDone:
		// Barriers post no destination buffer, so there may be
		// nothing to unregister.
		if ev.req.buf != nil {
			if d := ep.unpinCost(ev.req.buf, ev.req.n); d > 0 {
				ep.core().RunOn(p, cpu.UserLib, d)
			}
		}
		ev.req.done = true
	case evShm:
		ep.handleShm(p, ev)
	}
}

// handleEagerFrag: the library's single copy from the NIC-deposited
// receive queue to the destination.
func (ep *Endpoint) handleEagerFrag(p *sim.Proc, ev *event) {
	key := asmKey{src: ev.src, seq: ev.seq}
	a := ep.asm[key]
	if a == nil {
		a = &assembly{match: ev.match, msgLen: ev.msgLen, fragCnt: ev.fragCnt}
		for i, r := range ep.posted {
			if matches(r.match, r.mask, ev.match) {
				ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
				a.dst = r
				break
			}
		}
		if a.dst == nil && ev.msgLen > 0 {
			a.tmp = ep.S.H.Alloc(ev.msgLen)
		}
		ep.asm[key] = a
	}
	bit := uint64(1) << ev.fragID
	if a.got&bit == 0 {
		a.got |= bit
		a.arrived++
		dstBuf, dstOff, limit := a.tmp, ev.offset, ev.msgLen
		if a.dst != nil {
			dstBuf, dstOff = a.dst.buf, a.dst.off+ev.offset
			limit = min(ev.msgLen, a.dst.n)
		}
		n := ev.dataLen
		if ev.offset+n > limit {
			n = limit - ev.offset
		}
		if n > 0 && dstBuf != nil {
			d := ep.S.H.Copy.Memcpy(dstBuf, dstOff, ep.ring, ep.slotOff(ev.slot), n, ep.Core)
			ep.core().RunOn(p, cpu.UserLib, d)
		}
	}
	if ev.slot >= 0 {
		ep.freeSlots = append(ep.freeSlots, ev.slot)
	}
	if a.arrived == a.fragCnt {
		delete(ep.asm, key)
		if a.dst != nil {
			a.dst.Len = min(a.msgLen, a.dst.n)
			a.dst.SenderAddr, a.dst.MatchInfo = ev.src, a.match
			a.dst.done = true
		} else {
			ep.ux = append(ep.ux, &uxMsg{kind: uxEager, src: ev.src, match: a.match, msgLen: a.msgLen, tmp: a.tmp})
		}
		// Transport-level cumulative ack: it completes interoperating
		// Open-MX senders and releases this firmware's own
		// retransmission snapshots on a native peer. The firmware
		// window advanced when the last fragment arrived, so its edge
		// covers ev.seq (and anything completed before it).
		ack := ev.seq
		if ch := ep.rx[ev.src]; ch != nil {
			ack = ch.win.Edge()
		}
		ep.S.transmit(ev.src, &proto.Ack{Src: ev.src, Dst: ep.Addr(), AckSeq: ack}, nil)
	}
}

func (ep *Endpoint) slotOff(i int) int { return i * proto.MediumFragSize }

// startPull: user-level pull command; the firmware then drives the
// whole transfer with zero host involvement.
func (ep *Endpoint) startPull(p *sim.Proc, r *Request, u *uxMsg) {
	s := ep.S
	n := min(u.msgLen, r.n)
	cost := sim.Duration(s.H.P.MXPostCost) + ep.pinCost(r.buf, n)
	ep.core().RunOn(p, cpu.UserLib, cost)
	s.nextHandle++
	lp := &mxPull{
		handle: s.nextHandle, ep: ep, req: r, src: u.src, senderHandle: u.handle,
		key: rndvKey{src: u.src, dst: ep.ID, seq: u.seq},
		buf: r.buf, off: r.off, n: n, frags: proto.FragsOf(n),
		blocks: make(map[int]*mxBlock),
	}
	r.MatchInfo, r.SenderAddr = u.match, u.src
	lp.startedAt = s.H.E.Now()
	s.pulls[lp.handle] = lp
	// Two pipelined pull blocks outstanding per NIC lane, entirely
	// firmware-driven: the single-NIC window is the classic two
	// blocks; an aggregated link widens proportionally so every lane
	// keeps a block's worth of fragments in flight. An adaptive
	// transfer instead starts at the AIMD controller's minimum and
	// grows as clean block round trips accumulate.
	want := 2 * s.lanes
	if s.Cfg.Adaptive {
		lp.aw = s.pullWindowFor(lp.src)
		want = lp.aw.Window()
	}
	for i := 0; i < want; i++ {
		s.pullNextBlock(lp)
	}
}
