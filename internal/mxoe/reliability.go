package mxoe

import (
	"omxsim/internal/proto"
	"omxsim/sim"
)

// Firmware-level reliability for the native MX stack. The real
// Myri-10G firmware guarantees delivery below the host's sight: no
// interrupt, no kernel, no host CPU cycle is spent on acks or
// retransmission. The model mirrors that — every structure here is
// mutated in firmware context (frame arrival or timer expiry) and
// charges nothing to any core. On a clean link with a progressing
// receiver none of these timers ever fires and no extra frame is
// emitted, so the loss-free fast path is bit-identical to the
// unhardened stack.
//
// One deliberate asymmetry: the *initial* ack of an eager message is
// emitted when the receiving library processes the completion event
// (mxoe.go, handleEagerFrag), not at firmware deposit time — exactly
// where the unhardened stack emitted it, keeping clean-path wire
// timing unchanged. A receiver that stalls longer than the sender's
// timeout therefore costs at most one spurious retransmission, whose
// duplicate the firmware answers with an immediate ack of its own
// (fwEager's dup path) — after that the sender is quiet again.
//
// The wire protocol is the shared MXoE one (internal/proto), so the
// hardened firmware stays interoperable with Open-MX peers: cumulative
// acks use the same serial-number semantics as internal/core.

// mxTxChan is the firmware's per-(endpoint, peer) transmit
// reliability state: unacked eager messages and a retransmission
// timer with exponential backoff.
type mxTxChan struct {
	dst      proto.Addr
	nextSeq  uint32
	ackedSeq uint32
	unacked  []*mxUnacked
	rtx      sim.Timer
	attempts int
}

// mxUnacked snapshots one eager message's frames for retransmission
// (the NIC keeps the data; the host buffer was released at post).
type mxUnacked struct {
	seq   uint32
	msgs  []*proto.Eager
	loads [][]byte
	// sentAt is the first transmission time (the send -> cumulative-ack
	// round trip is an RTT sample); rtxed marks a retransmitted
	// message, never sampled (Karn's rule).
	sentAt sim.Time
	rtxed  bool
}

// next issues the channel's next sequence (skipping the "no ack"
// sentinel 0 on wraparound; see proto.NextSeq).
func (tc *mxTxChan) next() uint32 { return proto.NextSeq(&tc.nextSeq) }

// applyCumulative advances the cumulative ack, drops covered messages
// from the unacked list (returning them, oldest first, so the caller
// can take RTT samples) and resets the retransmission backoff. Stale
// or duplicate acks return nil and change nothing.
func (tc *mxTxChan) applyCumulative(ackSeq uint32) []*mxUnacked {
	if ackSeq == 0 || !proto.SeqAfter(ackSeq, tc.ackedSeq) {
		return nil
	}
	tc.ackedSeq = ackSeq
	tc.attempts = 0
	acked, keep := proto.TrimAcked(tc.unacked, func(u *mxUnacked) uint32 { return u.seq }, ackSeq)
	tc.unacked = keep
	return acked
}

// mxRxChan is the firmware's per-(endpoint, peer) receive window:
// the shared cumulative completion window plus per-message fragment
// bitmaps for duplicate suppression.
type mxRxChan struct {
	win proto.Window
	asm map[uint32]*fwAsm
}

// fwAsm tracks which fragments of one in-flight eager message the
// firmware has accepted.
type fwAsm struct {
	got     uint64
	arrived int
	cnt     int
}

// isDup reports whether seq was already fully received.
func (c *mxRxChan) isDup(seq uint32) bool { return c.win.IsDup(seq) }

// markComplete records seq as fully received and advances the
// cumulative edge.
func (c *mxRxChan) markComplete(seq uint32) { c.win.MarkComplete(seq) }

// mxTx returns (creating on demand) the firmware tx channel to dst.
func (ep *Endpoint) mxTx(dst proto.Addr) *mxTxChan {
	tc := ep.tx[dst]
	if tc == nil {
		tc = &mxTxChan{dst: dst}
		ep.tx[dst] = tc
	}
	return tc
}

// mxRx returns (creating on demand) the firmware rx window from src.
func (ep *Endpoint) mxRx(src proto.Addr) *mxRxChan {
	c := ep.rx[src]
	if c == nil {
		c = &mxRxChan{win: proto.NewWindow(), asm: make(map[uint32]*fwAsm)}
		ep.rx[src] = c
	}
	return c
}

// armEagerRtx (re)arms a channel's eager retransmission timer. On
// expiry the firmware re-streams every unacked message from its
// snapshot; receivers deduplicate.
func (ep *Endpoint) armEagerRtx(tc *mxTxChan) {
	if tc.rtx.Pending() || len(tc.unacked) == 0 {
		return
	}
	s := ep.S
	tc.rtx = s.H.E.Schedule(s.rtxTimeout(tc.dst, tc.attempts), func() {
		tc.rtx = sim.Timer{}
		if len(tc.unacked) == 0 {
			return
		}
		tc.attempts++
		s.Stats.EagerRetransmits++
		s.traceRetransmit(tc.unacked[0].seq, -1, 0)
		for _, u := range tc.unacked {
			u.rtxed = true // Karn: never sample a retransmitted send
			for i, m := range u.msgs {
				// Same lane as the original fragment, so a lossy
				// lane retries on itself and stays attributable.
				s.transmitOn(s.laneOf(u.seq, m.FragID), tc.dst, m, u.loads[i])
			}
		}
		ep.armEagerRtx(tc)
	})
}

// armRndvRtx watches a rendezvous send: with no pull progress since
// the last expiry it re-sends the request (the receiver deduplicates
// and, if the transfer already finished, re-acks).
func (s *Stack) armRndvRtx(ms *mxSend) {
	ms.rtx = s.H.E.Schedule(s.rtxTimeout(ms.dst, ms.attempts), func() {
		if ms.finished {
			return
		}
		if !ms.pulled {
			ms.attempts++
			s.Stats.RndvRetransmits++
			s.traceRetransmit(ms.seq, -1, s.laneOf(ms.seq, 0))
			s.transmitOn(s.laneOf(ms.seq, 0), ms.dst, &proto.RndvRequest{
				Src: ms.ep.Addr(), Dst: ms.dst,
				Match: ms.req.MatchInfo, Seq: ms.seq, MsgLen: ms.n,
				SenderHandle: ms.handle,
			}, nil)
		} else {
			ms.attempts = 0
		}
		ms.pulled = false
		s.armRndvRtx(ms)
	})
}

// mxBlock is one outstanding pull block on the receiver: the
// hole-aware accepted-fragment bitmap (arrival order is arbitrary
// once blocks stripe across NICs) and the retransmission timer that
// re-requests the rest.
type mxBlock struct {
	idx       int
	firstFrag int
	asm       proto.Reassembly
	timer     sim.Timer
	attempts  int
	// sentAt is the first request time (the request -> completion
	// round trip is an RTT sample); rtxed marks a retried block, never
	// sampled (Karn's rule).
	sentAt sim.Time
	rtxed  bool
}

// armBlockTimer (re)arms a pull block's retransmission timer: on
// expiry the firmware re-requests the block's missing fragments.
func (s *Stack) armBlockTimer(lp *mxPull, blk *mxBlock) {
	blk.timer.Stop()
	blk.timer = s.H.E.Schedule(s.rtxTimeout(lp.src, blk.attempts), func() {
		if lp.done || blk.asm.Done() {
			return
		}
		blk.attempts++
		blk.rtxed = true
		s.Stats.PullRetransmits++
		s.traceRetransmit(lp.key.seq, blk.idx, s.laneOf(lp.key.seq, blk.idx))
		if lp.aw != nil {
			// The timeout is the loss signal: halve the window once per
			// loss epoch (the next clean sample reopens the epoch).
			lp.aw.OnLoss()
		}
		s.sendPull(lp, blk, blk.asm.Missing())
	})
}

// sendPull transmits one pull request for the masked fragments of a
// block — on the block's stripe lane, where the data answers — and
// arms its retransmission timer.
func (s *Stack) sendPull(lp *mxPull, blk *mxBlock, mask uint64) {
	s.transmitOn(s.laneOf(lp.key.seq, blk.idx), lp.src, &proto.Pull{
		Src: lp.ep.Addr(), Dst: lp.src,
		SenderHandle: lp.senderHandle, RecvHandle: lp.handle,
		Block: blk.idx, FirstFrag: blk.firstFrag, FragCount: blk.asm.Frags,
		NeedMask: mask,
	}, nil)
	s.armBlockTimer(lp, blk)
}

// rndvKey identifies a rendezvous for duplicate suppression.
type rndvKey struct {
	src proto.Addr
	dst int
	seq uint32
}

// rndvState remembers a handled rendezvous so retransmitted requests
// do not restart transfers, and finished ones can be re-acked.
type rndvState struct {
	sender int
	recvEP int
	done   bool
}

// markRndvDone flags a completed rendezvous for duplicate re-acking
// and evicts the oldest completed entry beyond the dedup window
// (mirrors internal/core's markRndvDone).
func (s *Stack) markRndvDone(key rndvKey) {
	st := s.rndvSeen[key]
	if st == nil {
		return
	}
	st.done = true
	s.rndvDone = proto.EvictOldest(s.rndvSeen, s.rndvDone, key, proto.RndvDedupWindow)
}
