package mxoe

import (
	"fmt"

	"omxsim/internal/cpu"
	"omxsim/sim"
)

// MX intra-node communication: a user-space shared-memory channel.
// The sender copies the payload into a shared segment and signals the
// peer; the receiving library matches and copies the segment into the
// destination — the classic double-copy shm transport MX shipped with.
// (Open-MX's one-copy driver path, and its I/OAT variant, are what
// Figure 10 compares against this style of design.)
//
// The model reuses the unexpected-eager machinery: a fully assembled
// message whose temporary storage is the shared segment.

// shmChunk is the shared-segment granularity: messages stream through
// the channel in chunks, so for large messages the sender's copy of
// chunk k overlaps the receiver's copy of chunk k-1 and the critical
// path is roughly ONE copy plus one chunk.
const shmChunk = 32 * 1024

// shmSend copies the payload into a fresh shared segment on the
// sender's core and delivers it to the peer endpoint. The send
// completes at post time (buffered semantics, like MX shm). Only the
// pipeline-fill portion of the sender copy is on the critical path;
// the rest overlaps the receiver's copies, which is charged in full
// on the receiving side.
func (ep *Endpoint) shmSend(p *sim.Proc, r *Request) *Request {
	s := ep.S
	dst := s.endpoints[r.dst.EP]
	if dst == nil {
		panic(fmt.Sprintf("mxoe: local send to unopened endpoint %d on %s", r.dst.EP, s.H.Name))
	}
	ep.core().RunOn(p, cpu.UserLib, sim.Duration(s.H.P.MXPostCost))
	seg := s.H.Alloc(r.n)
	if r.n > 0 {
		// Bytes all move (integrity); time charged for the first
		// chunk only (pipeline fill) when the message spans chunks.
		fill := min(r.n, shmChunk)
		var d sim.Duration
		if r.n > fill {
			d = s.H.Copy.CopyTime(seg, r.buf, fill, ep.Core)
			s.H.Copy.Memcpy(seg, 0, r.buf, r.off, r.n, ep.Core)
		} else {
			d = s.H.Copy.Memcpy(seg, 0, r.buf, r.off, r.n, ep.Core)
		}
		ep.core().RunOn(p, cpu.UserLib, d)
	}
	dst.pushEvent(&event{
		kind: evShm, src: ep.Addr(), match: r.MatchInfo,
		msgLen: r.n, seg: seg,
	})
	r.done = true
	return r
}

// handleShm matches an incoming shared-memory message or queues it as
// unexpected (the segment doubles as the temporary storage).
func (ep *Endpoint) handleShm(p *sim.Proc, ev *event) {
	for i, r := range ep.posted {
		if matches(r.match, r.mask, ev.match) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			n := min(ev.msgLen, r.n)
			if n > 0 {
				d := ep.S.H.Copy.Memcpy(r.buf, r.off, ev.seg, 0, n, ep.Core)
				ep.core().RunOn(p, cpu.UserLib, d)
			}
			r.Len, r.SenderAddr, r.MatchInfo, r.done = n, ev.src, ev.match, true
			return
		}
	}
	ep.ux = append(ep.ux, &uxMsg{kind: uxEager, src: ev.src, match: ev.match, msgLen: ev.msgLen, tmp: ev.seg})
}
