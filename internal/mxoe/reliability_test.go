package mxoe

import (
	"fmt"
	"testing"

	"omxsim/internal/host"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/platform"
	"omxsim/sim"
)

// rtxCfg is a loss-test config with a short timeout so recovery fits
// in simulated milliseconds.
func rtxCfg() Config {
	return Config{RetransmitTimeout: 2 * sim.Millisecond}
}

// impairPair installs the given impairment on both directions of a
// fresh pair.
func impairPair(t *testing.T, cfg Config, im wire.Impairment) *pair {
	pr := newPair(t, cfg)
	pr.sa.H.NIC.Hose().SetImpairment(im)
	rev := im
	rev.Seed ^= 0x5A5A
	pr.sb.H.NIC.Hose().SetImpairment(rev)
	return pr
}

// exchange moves count messages of n bytes A→B and verifies every
// payload.
func exchange(t *testing.T, pr *pair, count, n int) {
	t.Helper()
	srcs := make([]*hostmem.Buffer, count)
	dsts := make([]*hostmem.Buffer, count)
	for i := range srcs {
		srcs[i] = pr.sa.H.Alloc(n)
		dsts[i] = pr.sb.H.Alloc(n)
		srcs[i].Fill(byte(i + 1))
	}
	done := 0
	pr.e.Go("recv", func(p *sim.Proc) {
		for i := 0; i < count; i++ {
			r := pr.epB.IRecv(p, uint64(i), ^uint64(0), dsts[i], 0, n)
			pr.epB.Wait(p, r)
			done++
		}
	})
	pr.e.Go("send", func(p *sim.Proc) {
		var reqs []*Request
		for i := 0; i < count; i++ {
			reqs = append(reqs, pr.epA.ISend(p, pr.epB.Addr(), uint64(i), srcs[i], 0, n))
		}
		for _, r := range reqs {
			pr.epA.Wait(p, r)
		}
	})
	pr.e.RunUntil(pr.e.Now() + 30*sim.Second)
	if done != count {
		t.Fatalf("completed %d/%d messages; blocked: %v; stats A=%+v B=%+v",
			done, count, pr.e.BlockedProcs(), pr.sa.Stats, pr.sb.Stats)
	}
	for i := range srcs {
		if !hostmem.Equal(srcs[i], dsts[i]) {
			t.Fatalf("message %d corrupted (n=%d)", i, n)
		}
	}
}

func TestEagerRecoversFromLoss(t *testing.T) {
	pr := impairPair(t, rtxCfg(), wire.Impairment{Seed: 11, LossRate: 0.1})
	exchange(t, pr, 20, 2048)
	if pr.sa.Stats.EagerRetransmits == 0 {
		t.Fatalf("no eager retransmits at 10%% loss: %+v", pr.sa.Stats)
	}
}

func TestRndvRecoversFromLoss(t *testing.T) {
	pr := impairPair(t, rtxCfg(), wire.Impairment{Seed: 13, LossRate: 0.05})
	exchange(t, pr, 4, 600*1024)
	total := pr.sa.Stats.Retransmits() + pr.sb.Stats.Retransmits()
	if total == 0 {
		t.Fatalf("large transfers at 5%% loss needed no retransmits: A=%+v B=%+v",
			pr.sa.Stats, pr.sb.Stats)
	}
}

func TestDuplicationSuppressed(t *testing.T) {
	pr := impairPair(t, rtxCfg(), wire.Impairment{Seed: 17, DupRate: 0.3})
	exchange(t, pr, 10, 4096)
	if pr.sb.Stats.DupFrags == 0 {
		t.Fatalf("30%% duplication produced no suppressed frags: %+v", pr.sb.Stats)
	}
}

func TestReorderAndJitterTolerated(t *testing.T) {
	pr := impairPair(t, rtxCfg(), wire.Impairment{
		Seed: 19, ReorderRate: 0.2, ReorderDelay: 30 * sim.Microsecond,
		JitterMax: 5 * sim.Microsecond,
	})
	exchange(t, pr, 12, 64*1024)
}

func TestLossReorderDupCombined(t *testing.T) {
	pr := impairPair(t, rtxCfg(), wire.Impairment{
		Seed: 23, LossRate: 0.03, DupRate: 0.03, ReorderRate: 0.1,
		JitterMax: 3 * sim.Microsecond,
	})
	exchange(t, pr, 8, 200*1024)
}

// TestCleanPathSendsNoExtraFrames: with no impairment the hardened
// firmware must emit exactly the frames the unhardened stack did —
// no retransmissions, no duplicate suppression, no stray acks.
func TestCleanPathSendsNoExtraFrames(t *testing.T) {
	pr := newPair(t, Config{})
	exchange(t, pr, 6, 128*1024)
	for name, st := range map[string]Stats{"A": pr.sa.Stats, "B": pr.sb.Stats} {
		if st.Retransmits() != 0 || st.DupFrags != 0 || st.QueueDrops != 0 {
			t.Fatalf("clean run has recovery activity on %s: %+v", name, st)
		}
	}
}

// TestQueueOverrunRecovers: a receive queue of very few slots forces
// firmware drops; sender retransmission must still deliver everything.
func TestQueueOverrunRecovers(t *testing.T) {
	cfg := rtxCfg()
	cfg.RingSlots = 4
	pr := newPair(t, cfg)
	exchange(t, pr, 10, 16*1024)
	if pr.sb.Stats.QueueDrops == 0 {
		t.Skipf("queue never overran (slots drained fast); stats: %+v", pr.sb.Stats)
	}
}

func TestMxTxChanCumulativeAckWraparound(t *testing.T) {
	tc := &mxTxChan{nextSeq: ^uint32(0) - 1} // two before wrap
	var seqs []uint32
	for i := 0; i < 4; i++ {
		seq := tc.next()
		if seq == 0 {
			t.Fatal("sequence 0 issued (reserved for 'no ack')")
		}
		seqs = append(seqs, seq)
		tc.unacked = append(tc.unacked, &mxUnacked{seq: seq})
	}
	// seqs = fffffffe, ffffffff, 1, 2. Ack the third: serial order
	// must treat the pre-wrap seqs as covered too.
	if acked := tc.applyCumulative(seqs[2]); len(acked) != 3 {
		t.Fatalf("cumulative ack across wraparound released %d sends, want 3", len(acked))
	}
	if len(tc.unacked) != 1 || tc.unacked[0].seq != seqs[3] {
		t.Fatalf("unacked after wrap ack: %+v", tc.unacked)
	}
	// Stale ack from before the wrap must be ignored.
	if tc.applyCumulative(seqs[0]) != nil {
		t.Fatal("stale pre-wrap ack advanced the channel")
	}
}

func TestMxRxChanWindowWraparound(t *testing.T) {
	c := &mxRxChan{win: proto.NewWindowAt(^uint32(0) - 1), asm: make(map[uint32]*fwAsm)}
	c.markComplete(^uint32(0)) // wraps past 0 → edge must land on last pre-wrap seq
	if c.win.Edge() != ^uint32(0) {
		t.Fatalf("edge %d, want %d", c.win.Edge(), ^uint32(0))
	}
	if c.isDup(1) {
		t.Fatal("first post-wrap seq wrongly flagged dup")
	}
	c.markComplete(1)
	if c.win.Edge() != 1 {
		t.Fatalf("edge %d after wrap, want 1 (skipping sentinel 0)", c.win.Edge())
	}
	if !c.isDup(^uint32(0)) || !c.isDup(1) {
		t.Fatal("completed seqs not flagged dup after wrap")
	}
}

// TestManyPeersIndependentWindows: channels are per (endpoint, peer);
// a storm from several peers must not cross-contaminate windows.
func TestManyPeersIndependentWindows(t *testing.T) {
	e := sim.New()
	defer e.Close()
	p := pr3(t, e)
	const count = 5
	n := 8 * 1024
	type flow struct{ src, dst *hostmem.Buffer }
	flows := make(map[string][]flow)
	for i, s := range p.senders {
		for k := 0; k < count; k++ {
			f := flow{src: s.H.Alloc(n), dst: p.recvStack.H.Alloc(n)}
			f.src.Fill(byte(16*i + k + 1))
			flows[s.H.Name] = append(flows[s.H.Name], f)
		}
	}
	got := 0
	e.Go("recv", func(pc *sim.Proc) {
		for i := range p.senders {
			for k := 0; k < count; k++ {
				fl := flows[p.senders[i].H.Name][k]
				r := p.recvEP.IRecv(pc, uint64(1000*i+k), ^uint64(0), fl.dst, 0, n)
				p.recvEP.Wait(pc, r)
				got++
			}
		}
	})
	for i, s := range p.senders {
		i, s := i, s
		ep := p.sendEPs[i]
		e.Go(fmt.Sprintf("send%d", i), func(pc *sim.Proc) {
			for k := 0; k < count; k++ {
				fl := flows[s.H.Name][k]
				ep.Wait(pc, ep.ISend(pc, p.recvEP.Addr(), uint64(1000*i+k), fl.src, 0, n))
			}
		})
	}
	e.RunUntil(30 * sim.Second)
	if got != count*len(p.senders) {
		t.Fatalf("received %d/%d", got, count*len(p.senders))
	}
	for _, s := range p.senders {
		for k, fl := range flows[s.H.Name] {
			if !hostmem.Equal(fl.src, fl.dst) {
				t.Fatalf("flow %s/%d corrupted", s.H.Name, k)
			}
		}
	}
}

// pr3 builds three senders and one receiver on a lossy switch.
type threeToOne struct {
	senders   []*Stack
	sendEPs   []*Endpoint
	recvStack *Stack
	recvEP    *Endpoint
}

func pr3(t *testing.T, e *sim.Engine) *threeToOne {
	t.Helper()
	p := platform.Clovertown()
	sw := wire.NewSwitch(e, p)
	sw.PortImpair = wire.Impairment{Seed: 31, LossRate: 0.05}
	out := &threeToOne{}
	mk := func(name string) *Stack {
		h := host.New(e, p, name)
		h.NIC.SetHose(sw.Attach(h.NIC))
		return Attach(h, rtxCfg())
	}
	for i := 0; i < 3; i++ {
		s := mk(fmt.Sprintf("snd%d", i))
		out.senders = append(out.senders, s)
		out.sendEPs = append(out.sendEPs, s.OpenEndpoint(0, 2))
	}
	out.recvStack = mk("rcv")
	out.recvEP = out.recvStack.OpenEndpoint(0, 2)
	return out
}
