package mxoe

import (
	"omxsim/internal/core"
	"omxsim/internal/proto"
	"omxsim/sim"
)

// The firmware's self-tuning tier (Config.Adaptive): the same
// estimator and AIMD controller as the host stack (internal/proto),
// run entirely in firmware context. Retransmission timeouts derive
// from per-peer SRTT/RTTVAR, and each pull transfer sizes its block
// window by additive increase / multiplicative decrease instead of
// the fixed two blocks per lane. There is no IRQ steering here — the
// firmware never interrupts the host, so there is nothing to steer.

// mxAdaptiveMinRTO floors the firmware's derived timeout; see the
// matching constant in internal/core.
const mxAdaptiveMinRTO = sim.Millisecond

// Firmware AIMD window bounds, matching the host stack's: the paper's
// two pipelined blocks up to four blocks per lane.
const (
	mxAdaptiveWinMin     = 2
	mxAdaptiveWinPerLane = 4
)

// rtxTimeout returns the retransmission timeout towards peer after
// the given number of consecutive unanswered attempts: the firmware's
// configured base by default, the peer's estimated RTO (clamped
// between mxAdaptiveMinRTO and that base) once adaptive and measured.
func (s *Stack) rtxTimeout(peer proto.Addr, attempts int) sim.Duration {
	base := s.Cfg.RetransmitTimeout
	if s.adaptiveRTO {
		if e := s.rtt[peer]; e != nil {
			base = e.RTO(mxAdaptiveMinRTO, s.Cfg.RetransmitTimeout)
		}
	}
	return proto.Backoff(base, s.Cfg.RetransmitMax, s.Cfg.RetransmitBackoff, attempts)
}

// observeRTT feeds one clean round-trip sample into peer's estimator
// and publishes the new SRTT to the trace stream.
func (s *Stack) observeRTT(peer proto.Addr, rtt sim.Duration) {
	if s.rtt == nil || rtt < 0 {
		return
	}
	e := s.rtt[peer]
	if e == nil {
		e = &proto.RTTEstimator{}
		s.rtt[peer] = e
	}
	e.Observe(rtt)
	if s.Trace != nil {
		now := s.H.E.Now()
		s.Trace(core.TraceEvent{
			Kind: "counter", Frag: -1, Start: now, End: now,
			Name: "srtt", Value: sim.Time(e.SRTT()).Micros(),
		})
	}
}

// pullWindowFor returns (creating on first use) the shared AIMD
// controller for pulls from peer — per peer, not per transfer, so the
// window a transfer earned persists into the next one (see the
// matching helper in internal/core).
func (s *Stack) pullWindowFor(peer proto.Addr) *proto.AIMDWindow {
	aw := s.pullWin[peer]
	if aw == nil {
		aw = proto.NewAIMDWindow(mxAdaptiveWinMin, mxAdaptiveWinPerLane*s.lanes)
		s.pullWin[peer] = aw
	}
	return aw
}

// traceRetransmit publishes one firmware retransmission as a
// zero-length span.
func (s *Stack) traceRetransmit(seq uint32, block, lane int) {
	if s.Trace == nil {
		return
	}
	now := s.H.E.Now()
	s.Trace(core.TraceEvent{
		Kind: "retransmit", Frag: -1, Start: now, End: now,
		Seq: seq, Block: block, Lane: lane,
	})
}
