package mxoe

import (
	"encoding/binary"
	"fmt"
	"math"

	"omxsim/internal/core"
	"omxsim/internal/cpu"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// NIC-resident collectives: Barrier, Bcast, Allreduce and Scan run as
// tree state machines in firmware context, the way Quadrics and
// Myrinet NICs offloaded them. The host's entire involvement is one
// descriptor post (PostBarrier/PostBcast/PostAllreduce/PostScan) and
// one completion event; every tree hop — fan-in combining, fan-out
// forwarding, per-hop acks, retransmission, duplicate suppression —
// runs at frame-arrival or timer time and charges zero host CPU.
//
// A CollGroup is registered locally per endpoint from the full member
// list; the group ID is a hash of that list, so every NIC derives the
// same ID with no wire traffic, and each posted collective consumes
// the group's next sequence number (MPI requires identical collective
// order on every rank, so the counters agree). Tree frames may arrive
// before the local descriptor post — even before the local CollJoin —
// and are buffered in firmware state until the post supplies the
// destination buffer; forwarding down-tree never waits for the local
// post, so one slow rank does not serialize its subtree.
//
// Reductions combine in firmware at platform.NICReduceRate — the
// embedded core is slower than a host core, and the win is the freed
// host CPU, not faster arithmetic. Combining order is fixed (own
// contribution, then children in member order), so results are
// independent of frame arrival timing.

// CollMaxBytes bounds an offloaded payload: fragment bitmaps are one
// 64-bit word (proto.CollMaxFrags eager fragments). The mpi layer's
// auto selection keeps larger payloads on the host algorithms.
const CollMaxBytes = proto.CollMaxFrags * proto.MediumFragSize

// collDoneWindow bounds the per-group completed-call set kept for
// re-acking stale retransmissions (mirrors proto.RndvDedupWindow).
const collDoneWindow = 128

// collPendingCap bounds frames buffered for a group whose local
// CollJoin has not happened yet; beyond it the sender's
// retransmission recovers the drop after the join.
const collPendingCap = 4096

// CollStats counts firmware-collective activity on one stack.
type CollStats struct {
	// Descriptors posted, by operation.
	Barriers   int64
	Bcasts     int64
	Allreduces int64
	Scans      int64
	// Tree traffic: fan-in (contribution) and fan-out (release,
	// data, result, scan prefix) fragments originated by this NIC.
	UpFrames   int64
	DownFrames int64
	// Hop-level acks sent, retransmitted fragments, and duplicate
	// fragments suppressed.
	Acks        int64
	Retransmits int64
	DupFrags    int64
	// CombinedBytes is the reduction volume summed in firmware.
	CombinedBytes int64
}

// Posts sums the posted descriptors across operations.
func (c CollStats) Posts() int64 { return c.Barriers + c.Bcasts + c.Allreduces + c.Scans }

// collKey routes collective state: group ID plus local endpoint.
type collKey struct {
	id uint64
	ep int
}

// CollGroup is one endpoint's membership in a collective group.
type CollGroup struct {
	ep      *Endpoint
	id      uint64
	members []proto.Addr
	me      int

	nextSeq uint32
	calls   map[uint32]*collCall
	done    map[uint32]bool
	doneQ   []uint32
}

// CollJoin registers (or returns) this endpoint's membership in the
// group defined by members — every rank's endpoint address in rank
// order. All members derive the same group ID locally; no wire
// traffic is needed. Frames that raced ahead of the join are drained
// into the new group.
func (ep *Endpoint) CollJoin(members []proto.Addr) *CollGroup {
	s := ep.S
	key := collKey{id: collGroupID(members), ep: ep.ID}
	if g := s.collGroups[key]; g != nil {
		return g
	}
	me := -1
	self := ep.Addr()
	for i, m := range members {
		if m == self {
			me = i
			break
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("mxoe: endpoint %v is not in the collective member list", self))
	}
	g := &CollGroup{
		ep: ep, id: key.id, members: append([]proto.Addr(nil), members...), me: me,
		calls: make(map[uint32]*collCall),
		done:  make(map[uint32]bool),
	}
	s.collGroups[key] = g
	for _, f := range s.collPending[key] {
		if m, ok := f.Msg.(*proto.CollData); ok {
			s.fwCollData(f, m)
		}
	}
	delete(s.collPending, key)
	return g
}

// Size reports the group's member count.
func (g *CollGroup) Size() int { return len(g.members) }

// Rank reports this endpoint's index in the member list.
func (g *CollGroup) Rank() int { return g.me }

// collGroupID hashes the member list (FNV-1a over host names and
// endpoint indexes) so every member derives the same group ID.
func collGroupID(members []proto.Addr) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	byteIn := func(b byte) { h ^= uint64(b); h *= prime }
	for _, m := range members {
		for i := 0; i < len(m.Host); i++ {
			byteIn(m.Host[i])
		}
		byteIn(0)
		for s := 0; s < 64; s += 8 {
			byteIn(byte(uint64(m.EP) >> s))
		}
	}
	return h
}

// PostBarrier posts a firmware barrier descriptor: the NIC joins the
// binomial fan-in to member 0 and completes on the fan-out release.
func (g *CollGroup) PostBarrier(p *sim.Proc) *Request {
	return g.post(p, proto.CollBarrier, 0, nil, 0, nil, 0, 0)
}

// PostBcast posts a firmware broadcast descriptor. On the root, buf
// is the source (snapshot at post, eager-style: the send completes
// immediately); elsewhere it is the pinned destination the tree data
// is DMA-deposited into.
func (g *CollGroup) PostBcast(p *sim.Proc, root int, buf *hostmem.Buffer, off, n int) *Request {
	if g.me == root {
		return g.post(p, proto.CollBcast, root, buf, off, nil, 0, n)
	}
	return g.post(p, proto.CollBcast, root, nil, 0, buf, off, n)
}

// PostAllreduce posts a firmware allreduce descriptor: contributions
// climb the binomial tree, combined segment by segment in firmware,
// and the result fans back out into every rank's pinned rbuf.
func (g *CollGroup) PostAllreduce(p *sim.Proc, sbuf, rbuf *hostmem.Buffer, n int) *Request {
	return g.post(p, proto.CollAllreduce, 0, sbuf, 0, rbuf, 0, n)
}

// PostScan posts a firmware inclusive-scan descriptor: member i's
// result is the sum of contributions 0..i, pipelined down the rank
// chain (each NIC adds its contribution to the incoming prefix and
// forwards its own result).
func (g *CollGroup) PostScan(p *sim.Proc, sbuf, rbuf *hostmem.Buffer, n int) *Request {
	return g.post(p, proto.CollScan, 0, sbuf, 0, rbuf, 0, n)
}

// post is the one descriptor-post path: the host pays MXPostCost (plus
// pinning the destination), the firmware does everything else.
func (g *CollGroup) post(p *sim.Proc, op proto.CollOp, root int, sbuf *hostmem.Buffer, soff int, rbuf *hostmem.Buffer, roff, n int) *Request {
	ep := g.ep
	s := ep.S
	if n < 0 || n > CollMaxBytes {
		panic(fmt.Sprintf("mxoe: collective payload %d B out of range 0..%d (larger payloads stay on the host algorithms)", n, CollMaxBytes))
	}
	switch op {
	case proto.CollBarrier:
		s.Stats.Coll.Barriers++
	case proto.CollBcast:
		s.Stats.Coll.Bcasts++
	case proto.CollAllreduce:
		s.Stats.Coll.Allreduces++
	case proto.CollScan:
		s.Stats.Coll.Scans++
	}
	req := &Request{ep: ep, isRecv: rbuf != nil, buf: rbuf, off: roff, n: n}
	if len(g.members) == 1 {
		// One-rank group: complete locally (the result is the local
		// contribution).
		ep.core().RunOn(p, cpu.UserLib, sim.Duration(s.H.P.MXPostCost))
		if rbuf != nil && sbuf != nil && n > 0 {
			copy(rbuf.Data[roff:roff+n], sbuf.Data[soff:soff+n])
		}
		req.buf = nil // nothing was pinned
		req.Len, req.done = n, true
		return req
	}
	g.nextSeq++
	seq := g.nextSeq
	c := g.calls[seq]
	if c == nil {
		c = g.newCall(seq, op, root, n)
	} else if c.op != op || c.root != root || c.n != n {
		panic(fmt.Sprintf("mxoe: collective post mismatch on group %#x seq %d: local %v root %d n %d, peers sent %v root %d n %d",
			g.id, seq, op, root, n, c.op, c.root, c.n))
	}
	cost := sim.Duration(s.H.P.MXPostCost)
	if rbuf != nil {
		cost += ep.pinCost(rbuf, n)
	}
	ep.core().RunOn(p, cpu.UserLib, cost)
	c.posted = true
	c.req = req
	c.rbuf, c.roff = rbuf, roff
	if sbuf != nil {
		// NIC snapshot of the contribution (like an eager send: the
		// host buffer is immediately reusable).
		c.contrib = make([]byte, n)
		copy(c.contrib, sbuf.Data[soff:soff+n])
	} else {
		c.contrib = make([]byte, n)
	}
	if op == proto.CollBcast {
		if g.me == root {
			// Root sends complete at post; the firmware fans the
			// snapshot out on its own.
			req.done = true
			c.haveDown, c.forwarded = true, true
			s.collFanout(c, c.contrib)
			c.complete = true
			s.collMaybeRetire(c)
			return req
		}
		// Deposit whatever arrived before the post.
		if c.down != nil {
			for fid := 0; fid < c.frags; fid++ {
				if c.down.got&(uint64(1)<<uint(fid)) != 0 {
					off := fid * proto.MediumFragSize
					s.collDeposit(c, off, c.down.slice(off, collFragLen(c.n, fid)))
				}
			}
		}
	}
	s.collAdvance(c)
	return req
}

// collCall is one in-flight collective on one member's NIC, keyed by
// (group, sequence). It may be created by the local descriptor post
// or by the first tree frame to arrive — whichever happens first.
type collCall struct {
	g     *CollGroup
	seq   uint32
	op    proto.CollOp
	root  int
	n     int
	frags int

	posted  bool
	req     *Request
	rbuf    *hostmem.Buffer
	roff    int
	contrib []byte

	parent   int
	children []int

	// Fan-in: per-child contribution vectors, completed-child count,
	// and the combined accumulator.
	up     map[int]*collVec
	haveUp int
	sentUp bool
	acc    []byte

	// Fan-out / chain: the assembling down payload and its DMA state.
	down      *collVec
	haveDown  bool
	forwarded bool
	landed    int
	finishing bool
	complete  bool

	// Hop reliability: outstanding fragments awaiting per-hop acks.
	outs    map[collOutKey]*collOut
	unacked int

	// startedAt is the call's creation time: collFinish publishes the
	// [startedAt, finish] interval as a "collective" trace span.
	startedAt sim.Time
}

// collVec assembles one fragmented tree payload (a child contribution
// or the down data), with the duplicate-suppression bitmap.
type collVec struct {
	data    []byte
	got     uint64
	arrived int
	cnt     int
}

func (v *collVec) mark(frag int) bool {
	bit := uint64(1) << uint(frag)
	if v.got&bit != 0 {
		return false
	}
	v.got |= bit
	v.arrived++
	return true
}

func (v *collVec) done() bool { return v.arrived == v.cnt }

// stash copies an arrived fragment into the vector's buffer.
func (v *collVec) stash(n, off int, data []byte) {
	if len(data) == 0 {
		return
	}
	if v.data == nil {
		v.data = make([]byte, n)
	}
	copy(v.data[off:], data)
}

// slice returns the stashed bytes [off, off+ln) (empty for ln 0).
func (v *collVec) slice(off, ln int) []byte {
	if ln <= 0 {
		return nil
	}
	return v.data[off : off+ln]
}

// collOutKey identifies one outgoing fragment hop: destination member,
// direction, fragment.
type collOutKey struct {
	dst  int
	down bool
	frag int
}

// collOut is a fragment awaiting its hop ack, with the firmware
// retransmission timer.
type collOut struct {
	m        *proto.CollData
	payload  []byte
	lane     int
	timer    sim.Timer
	attempts int
	acked    bool
}

func (g *CollGroup) newCall(seq uint32, op proto.CollOp, root, n int) *collCall {
	c := &collCall{
		g: g, seq: seq, op: op, root: root, n: n,
		frags:     proto.CollFragsOf(n),
		up:        make(map[int]*collVec),
		outs:      make(map[collOutKey]*collOut),
		parent:    -1,
		startedAt: g.ep.S.H.E.Now(),
	}
	c.initTree()
	g.calls[seq] = c
	return c
}

// initTree computes this member's parent and children: the binomial
// tree over virtual ranks (root rotated to index 0) for tree
// collectives, the rank chain for Scan.
func (c *collCall) initTree() {
	p := len(c.g.members)
	if c.op == proto.CollScan {
		return // chain: prefix from me−1, result to me+1
	}
	vr := (c.g.me - c.root + p) % p
	if vr != 0 {
		c.parent = ((vr &^ (vr & -vr)) + c.root) % p
	}
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			break
		}
		if child := vr + mask; child < p {
			c.children = append(c.children, (child+c.root)%p)
		}
	}
}

// collFragLen is the payload length of fragment fid of an n-byte
// collective payload.
func collFragLen(n, fid int) int {
	off := fid * proto.MediumFragSize
	if n <= off {
		return 0
	}
	return min(proto.MediumFragSize, n-off)
}

// combineDelay is the firmware time to sum bytes of reduction input
// at the NIC's (slow) combining rate.
func (s *Stack) combineDelay(bytes int) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(float64(bytes) / float64(s.H.P.NICReduceRate))
}

// collSumInto adds src's float64 words into dst (little-endian), the
// same reduction the host algorithms run; a trailing partial word is
// left untouched (it stays the local contribution, as on the host).
func collSumInto(dst, src []byte) {
	n := min(len(dst), len(src)) / 8 * 8
	for i := 0; i < n; i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(a+b))
	}
}

// ---------------------------------------------------------------
// Firmware receive paths
// ---------------------------------------------------------------

// fwCollData handles one collective tree fragment in firmware: ack
// the hop, deduplicate, and feed the call's state machine. Frames for
// groups not yet joined locally wait for the join.
func (s *Stack) fwCollData(f *wire.Frame, m *proto.CollData) {
	key := collKey{id: m.Group, ep: m.Dst.EP}
	g := s.collGroups[key]
	if g == nil {
		if len(s.collPending[key]) < collPendingCap {
			s.collPending[key] = append(s.collPending[key], f)
		}
		return
	}
	// Hop-level ack, duplicates included: a duplicate proves the
	// sender missed the previous ack.
	s.Stats.Coll.Acks++
	s.collEmit(s.laneOf(m.Seq, m.FragID), m.Src, &proto.CollAck{
		Src: proto.Addr{Host: s.H.Name, EP: m.Dst.EP}, Dst: m.Src,
		Group: m.Group, Seq: m.Seq, Down: m.Down, SrcRank: g.me, FragID: m.FragID,
	}, nil)
	if g.done[m.Seq] {
		s.Stats.Coll.DupFrags++
		return
	}
	c := g.calls[m.Seq]
	if c == nil {
		c = g.newCall(m.Seq, m.Op, m.Root, m.MsgLen)
	}
	if m.Down {
		s.fwCollDown(c, m, f.Data)
	} else {
		s.fwCollUp(c, m, f.Data)
	}
}

// fwCollUp assembles a child's fan-in contribution; when complete it
// counts toward the combine barrier.
func (s *Stack) fwCollUp(c *collCall, m *proto.CollData, data []byte) {
	v := c.up[m.SrcRank]
	if v == nil {
		v = &collVec{cnt: m.FragCount}
		c.up[m.SrcRank] = v
	}
	if !v.mark(m.FragID) {
		s.Stats.Coll.DupFrags++
		return
	}
	v.stash(c.n, m.Offset, data)
	if !v.done() {
		return
	}
	for _, ch := range c.children {
		if ch == m.SrcRank {
			c.haveUp++
			break
		}
	}
	s.collAdvance(c)
}

// fwCollDown handles a fan-out fragment: barrier release, bcast data,
// allreduce result, or scan prefix. Data fragments forward down-tree
// immediately (store-and-forward pipelining, no wait for the local
// post) and DMA-deposit into the posted destination.
func (s *Stack) fwCollDown(c *collCall, m *proto.CollData, data []byte) {
	if c.down == nil {
		c.down = &collVec{cnt: c.frags}
	}
	if !c.down.mark(m.FragID) {
		s.Stats.Coll.DupFrags++
		return
	}
	switch c.op {
	case proto.CollBarrier:
		c.haveDown = true
		s.collAdvance(c)
	case proto.CollScan:
		// The incoming prefix is combine input, not the result: no
		// forwarding, no deposit — advance runs the combine when both
		// the prefix and the local post are in.
		c.down.stash(c.n, m.Offset, data)
		if c.down.done() {
			c.haveDown = true
			s.collAdvance(c)
		}
	default: // bcast data, allreduce result
		s.collForwardFrag(c, m, data)
		if c.posted {
			s.collDeposit(c, m.Offset, data)
		} else {
			c.down.stash(c.n, m.Offset, data)
		}
		if c.down.done() {
			c.haveDown = true
		}
	}
}

// fwCollAck retires one outstanding hop fragment.
func (s *Stack) fwCollAck(m *proto.CollAck) {
	g := s.collGroups[collKey{id: m.Group, ep: m.Dst.EP}]
	if g == nil {
		return
	}
	c := g.calls[m.Seq]
	if c == nil {
		return // call already retired
	}
	o := c.outs[collOutKey{dst: m.SrcRank, down: m.Down, frag: m.FragID}]
	if o == nil || o.acked {
		return
	}
	o.acked = true
	o.timer.Stop()
	c.unacked--
	s.collMaybeRetire(c)
}

// ---------------------------------------------------------------
// State machine
// ---------------------------------------------------------------

// collAdvance runs the call's operation-specific state machine after
// any input change (post, completed child vector, down payload).
func (s *Stack) collAdvance(c *collCall) {
	switch c.op {
	case proto.CollBarrier:
		s.advBarrier(c)
	case proto.CollAllreduce:
		s.advAllreduce(c)
	case proto.CollScan:
		s.advScan(c)
	}
	// Bcast has no fan-in phase: fwCollDown and post drive it.
}

// advBarrier: join the fan-in once posted and all children joined;
// the root turns the last join into the fan-out release; completion
// is the release's event-queue DMA.
func (s *Stack) advBarrier(c *collCall) {
	if c.posted && c.haveUp == len(c.children) && !c.sentUp {
		c.sentUp = true
		if c.g.me != c.root {
			s.collSendVec(c, c.parent, false, nil)
		} else {
			c.haveDown = true
		}
	}
	if c.haveDown && !c.forwarded {
		c.forwarded = true
		s.collFanout(c, nil)
	}
	if c.haveDown && c.posted && !c.finishing {
		c.finishing = true
		s.H.E.Schedule(s.dmaDelay(0), func() { s.collFinish(c) })
	}
}

// advAllreduce: once posted and every child vector is in, combine
// (own contribution, then children in member order — arrival timing
// never changes the result) at the firmware's reduce rate, then send
// the partial up; the root's combine is the full sum, which fans out
// and deposits locally.
func (s *Stack) advAllreduce(c *collCall) {
	if !c.posted || c.haveUp != len(c.children) || c.sentUp {
		return
	}
	c.sentUp = true
	acc := make([]byte, c.n)
	copy(acc, c.contrib)
	combined := 0
	for _, ch := range c.children {
		if v := c.up[ch]; v != nil && v.data != nil {
			collSumInto(acc, v.data)
		}
		combined += c.n
	}
	c.acc = acc
	s.Stats.Coll.CombinedBytes += int64(combined)
	d := sim.Duration(s.H.P.MXFirmwareMatchCost) + s.combineDelay(combined)
	s.H.E.Schedule(d, func() {
		if c.g.me != c.root {
			s.collSendVec(c, c.parent, false, c.acc)
			return
		}
		c.haveDown, c.forwarded = true, true
		s.collFanout(c, c.acc)
		s.collDepositLocal(c)
	})
}

// advScan: once posted and the upstream prefix is in (member 0 needs
// none), add the local contribution, deposit the result, and forward
// it as the next member's prefix.
func (s *Stack) advScan(c *collCall) {
	if !c.posted || c.sentUp || (c.g.me > 0 && !c.haveDown) {
		return
	}
	c.sentUp = true
	acc := make([]byte, c.n)
	copy(acc, c.contrib)
	combined := 0
	if c.g.me > 0 {
		if c.down != nil && c.down.data != nil {
			collSumInto(acc, c.down.data)
		}
		combined = c.n
	}
	c.acc = acc
	s.Stats.Coll.CombinedBytes += int64(combined)
	d := sim.Duration(s.H.P.MXFirmwareMatchCost) + s.combineDelay(combined)
	s.H.E.Schedule(d, func() {
		if next := c.g.me + 1; next < len(c.g.members) {
			s.collSendVec(c, next, true, c.acc)
		}
		s.collDepositLocal(c)
	})
}

// collDeposit DMAs one result fragment into the posted destination;
// the last landed fragment completes the call.
func (s *Stack) collDeposit(c *collCall, off int, data []byte) {
	n := len(data)
	s.H.E.Schedule(s.dmaDelay(n), func() {
		if n > 0 && c.rbuf != nil {
			copy(c.rbuf.Data[c.roff+off:c.roff+off+n], data)
			c.rbuf.WrittenByDMA()
		}
		c.landed++
		if c.landed == c.frags {
			s.collFinish(c)
		}
	})
}

// collDepositLocal deposits the whole combined accumulator (the root's
// allreduce result, a scan member's own result).
func (s *Stack) collDepositLocal(c *collCall) {
	for fid := 0; fid < c.frags; fid++ {
		off := fid * proto.MediumFragSize
		ln := collFragLen(c.n, fid)
		var d []byte
		if ln > 0 {
			d = c.acc[off : off+ln]
		}
		s.collDeposit(c, off, d)
	}
}

// collFinish raises the single host-visible completion event.
func (s *Stack) collFinish(c *collCall) {
	if c.complete {
		return
	}
	c.complete = true
	if s.Trace != nil {
		s.Trace(core.TraceEvent{
			Kind: "collective", Frag: -1, Seq: c.seq,
			Name: c.op.String(), Start: c.startedAt, End: s.H.E.Now(),
		})
	}
	if c.req != nil && !c.req.done {
		c.req.Len = c.n
		c.g.ep.pushEvent(&event{kind: evCollDone, req: c.req})
	}
	s.collMaybeRetire(c)
}

// collMaybeRetire retires a call once it is complete and every hop it
// originated has been acked, keeping the sequence in the bounded done
// set so stale retransmissions are re-acked, not replayed.
func (s *Stack) collMaybeRetire(c *collCall) {
	if !c.complete || c.unacked > 0 {
		return
	}
	g := c.g
	if _, live := g.calls[c.seq]; !live {
		return
	}
	delete(g.calls, c.seq)
	g.done[c.seq] = true
	g.doneQ = append(g.doneQ, c.seq)
	if len(g.doneQ) > collDoneWindow {
		old := g.doneQ[0]
		g.doneQ = g.doneQ[1:]
		delete(g.done, old)
	}
}

// ---------------------------------------------------------------
// Hop transmission and reliability
// ---------------------------------------------------------------

// collSendVec originates every fragment of a payload to one member
// (fragments already sent — e.g. forwarded at arrival — are skipped).
func (s *Stack) collSendVec(c *collCall, dst int, down bool, payload []byte) {
	for fid := 0; fid < c.frags; fid++ {
		off := fid * proto.MediumFragSize
		ln := collFragLen(c.n, fid)
		var data []byte
		if ln > 0 {
			data = make([]byte, ln)
			copy(data, payload[off:off+ln])
		}
		s.collOutSend(c, collOutKey{dst: dst, down: down, frag: fid}, &proto.CollData{
			Src: c.g.ep.Addr(), Dst: c.g.members[dst], Group: c.g.id, Seq: c.seq,
			Op: c.op, Down: down, SrcRank: c.g.me, Root: c.root, MsgLen: c.n,
			FragID: fid, FragCount: c.frags, Offset: off,
		}, data)
	}
}

// collFanout sends a payload to every tree child.
func (s *Stack) collFanout(c *collCall, payload []byte) {
	for _, child := range c.children {
		s.collSendVec(c, child, true, payload)
	}
}

// collForwardFrag relays one arrived down fragment to every child
// immediately — per-fragment store-and-forward, so deep trees
// pipeline instead of waiting for whole payloads.
func (s *Stack) collForwardFrag(c *collCall, m *proto.CollData, data []byte) {
	for _, child := range c.children {
		key := collOutKey{dst: child, down: true, frag: m.FragID}
		if c.outs[key] != nil {
			continue
		}
		var payload []byte
		if len(data) > 0 {
			payload = make([]byte, len(data))
			copy(payload, data)
		}
		s.collOutSend(c, key, &proto.CollData{
			Src: c.g.ep.Addr(), Dst: c.g.members[child], Group: c.g.id, Seq: c.seq,
			Op: c.op, Down: true, SrcRank: c.g.me, Root: c.root, MsgLen: m.MsgLen,
			FragID: m.FragID, FragCount: m.FragCount, Offset: m.Offset,
		}, payload)
	}
}

// collOutSend transmits one hop fragment and arms its retransmission
// timer; the hop retires on the peer's CollAck.
func (s *Stack) collOutSend(c *collCall, key collOutKey, m *proto.CollData, payload []byte) {
	if c.outs[key] != nil {
		return
	}
	o := &collOut{m: m, payload: payload, lane: s.laneOf(m.Seq, m.FragID)}
	c.outs[key] = o
	c.unacked++
	if m.Down {
		s.Stats.Coll.DownFrames++
	} else {
		s.Stats.Coll.UpFrames++
	}
	s.collEmit(o.lane, m.Dst, m, payload)
	s.armCollRtx(o)
}

// armCollRtx (re)arms one hop fragment's retransmission timer with
// the firmware's standard backoff.
func (s *Stack) armCollRtx(o *collOut) {
	o.timer = s.H.E.Schedule(s.rtxTimeout(o.m.Dst, o.attempts), func() {
		if o.acked {
			return
		}
		o.attempts++
		s.Stats.Coll.Retransmits++
		s.traceRetransmit(o.m.Seq, o.m.FragID, o.lane)
		s.collEmit(o.lane, o.m.Dst, o.m, o.payload)
		s.armCollRtx(o)
	})
}

// collEmit puts one collective frame on the wire — or, between
// endpoints of the same host, through the NIC's internal loopback
// (fixed NIC latency, no wire).
func (s *Stack) collEmit(lane int, dst proto.Addr, msg any, payload []byte) {
	if dst.Host == s.H.Name {
		f := &wire.Frame{Data: payload, WireLen: len(payload) + s.H.P.OMXHeaderBytes, Msg: msg}
		s.H.E.Schedule(sim.Duration(s.H.P.NICFixedLatency), func() { s.firmwareRx(lane, f) })
		return
	}
	s.transmitOn(lane, dst, msg, payload)
}
