package mxoe

import (
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// mxBlockFrags is the firmware pull window block size (fragments per
// pull request; bounded by the 64-bit NeedMask, and two blocks are
// kept outstanding like the host stack).
const mxBlockFrags = 32

// firmwareRx handles every incoming frame in NIC firmware: no
// interrupt, no bottom half, no host CPU. Data movement happens by NIC
// DMA whose latency is modelled; everything else is "free" for the
// host, which is exactly what makes native MX the paper's baseline.
func (s *Stack) firmwareRx(f *wire.Frame) {
	switch m := f.Msg.(type) {
	case *proto.Eager:
		s.fwEager(f, m)
	case *proto.Ack:
		// Firmware-level transport ack: nothing to do for the MX
		// model (sends complete at post time for eager messages).
	case *proto.RndvRequest:
		s.fwRndv(m)
	case *proto.Pull:
		s.fwPull(m)
	case *proto.LargeFrag:
		s.fwLargeFrag(f, m)
	case *proto.RndvAck:
		s.fwRndvAck(m)
	}
}

// dmaDelay is the NIC-to-host deposit time for n payload bytes.
func (s *Stack) dmaDelay(n int) sim.Duration {
	return sim.Duration(s.H.P.NICFixedLatency) + sim.Duration(float64(n)/float64(s.H.P.NICDMARate))
}

// fwEager deposits an eager fragment into the endpoint's receive
// queue by DMA and raises a completion event; the library does the
// single copy to the destination after matching.
func (s *Stack) fwEager(f *wire.Frame, m *proto.Eager) {
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	if len(ep.freeSlots) == 0 {
		return // queue overrun; MX flow control normally prevents this
	}
	slot := ep.freeSlots[len(ep.freeSlots)-1]
	ep.freeSlots = ep.freeSlots[:len(ep.freeSlots)-1]
	n := len(f.Data)
	firmwareMatch := sim.Duration(s.H.P.MXFirmwareMatchCost)
	s.H.E.Schedule(firmwareMatch+s.dmaDelay(n), func() {
		off := ep.slotOff(slot)
		copy(ep.ring.Data[off:off+n], f.Data)
		ep.ring.WrittenByDMA()
		ep.pushEvent(&event{
			kind: evEagerFrag, src: m.Src, match: m.Match, seq: m.Seq,
			msgLen: m.MsgLen, fragID: m.FragID, fragCnt: m.FragCount,
			offset: m.Offset, slot: slot, dataLen: n,
		})
	})
}

// fwRndv raises a rendezvous event after firmware matching delay.
func (s *Stack) fwRndv(m *proto.RndvRequest) {
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	s.H.E.Schedule(sim.Duration(s.H.P.MXFirmwareMatchCost), func() {
		ep.pushEvent(&event{kind: evRndv, src: m.Src, match: m.Match, seq: m.Seq,
			msgLen: m.MsgLen, handle: m.SenderHandle})
	})
}

// fwPull streams the requested fragments from the pinned user buffer,
// paced by the firmware's control overhead: this pacing is what puts
// native MX at ≈1140 MiB/s instead of the 1186 MiB/s line rate.
func (s *Stack) fwPull(m *proto.Pull) {
	ms := s.sends[m.SenderHandle]
	if ms == nil {
		return
	}
	frag := m.FirstFrag
	end := m.FirstFrag + m.FragCount
	var sendNext func()
	sendNext = func() {
		if frag >= end {
			return
		}
		fo := frag * proto.LargeFragSize
		fl := min(proto.LargeFragSize, ms.n-fo)
		if fl <= 0 {
			return
		}
		payload := make([]byte, fl)
		copy(payload, ms.buf.Data[ms.off+fo:ms.off+fo+fl])
		s.transmit(m.Src, &proto.LargeFrag{
			Src: ms.ep.Addr(), Dst: m.Src,
			RecvHandle: m.RecvHandle, Block: m.Block,
			FragID: frag, Offset: fo, MsgLen: ms.n,
		}, payload)
		s.FragsSent++
		frag++
		if frag < end {
			// Pace at wire time plus the control-overhead fraction.
			wireTime := float64(fl+s.H.P.OMXHeaderBytes+s.H.P.EthFrameOverhead) / float64(s.H.P.WireRate)
			gap := sim.Duration(wireTime * (1 + s.H.P.MXControlOverhead))
			s.H.E.Schedule(gap, sendNext)
		}
	}
	sendNext()
}

// fwLargeFrag deposits a pulled fragment directly into the pinned
// destination buffer — the zero-copy receive that commodity Ethernet
// NICs cannot do — and requests further blocks as they complete.
func (s *Stack) fwLargeFrag(f *wire.Frame, m *proto.LargeFrag) {
	lp := s.pulls[m.RecvHandle]
	if lp == nil {
		return
	}
	n := len(f.Data)
	s.H.E.Schedule(s.dmaDelay(n), func() {
		dstOff := lp.off + m.Offset
		copy(lp.buf.Data[dstOff:dstOff+n], f.Data)
		lp.buf.WrittenByDMA()
		lp.arrived++
		// When the just-finished fragment closes a block, ask for the
		// next outstanding block (two are pipelined).
		if lp.arrived%mxBlockFrags == 0 && lp.nextBlock*mxBlockFrags < lp.frags {
			s.pullNextBlock(lp)
		}
		if lp.arrived == lp.frags {
			delete(s.pulls, lp.handle)
			lp.req.Len = lp.n
			lp.ep.pushEvent(&event{kind: evRecvDone, req: lp.req})
			s.transmit(lp.src, &proto.RndvAck{Src: lp.ep.Addr(), Dst: lp.src, SenderHandle: lp.senderHandle}, nil)
		}
	})
}

// pullNextBlock issues the next block's pull request from firmware.
func (s *Stack) pullNextBlock(lp *mxPull) {
	firstFrag := lp.nextBlock * mxBlockFrags
	if firstFrag >= lp.frags {
		return
	}
	count := min(mxBlockFrags, lp.frags-firstFrag)
	s.transmit(lp.src, &proto.Pull{
		Src: lp.ep.Addr(), Dst: lp.src,
		SenderHandle: lp.senderHandle, RecvHandle: lp.handle,
		Block: lp.nextBlock, FirstFrag: firstFrag, FragCount: count,
		NeedMask: (uint64(1) << count) - 1,
	}, nil)
	lp.nextBlock++
}

// fwRndvAck completes a large send.
func (s *Stack) fwRndvAck(m *proto.RndvAck) {
	ms := s.sends[m.SenderHandle]
	if ms == nil {
		return
	}
	delete(s.sends, ms.handle)
	ms.ep.pushEvent(&event{kind: evSendDone, req: ms.req})
}
