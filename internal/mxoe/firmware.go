package mxoe

import (
	"omxsim/internal/core"
	"omxsim/internal/hostmem"
	"omxsim/internal/proto"
	"omxsim/internal/wire"
	"omxsim/sim"
)

// mxBlockFrags is the firmware pull window block size (fragments per
// pull request; bounded by the 64-bit NeedMask, and two blocks are
// kept outstanding like the host stack).
const mxBlockFrags = 32

// firmwareRx handles every incoming frame in NIC firmware: no
// interrupt, no bottom half, no host CPU. Data movement happens by NIC
// DMA whose latency is modelled; everything else is "free" for the
// host, which is exactly what makes native MX the paper's baseline.
// Reliability — duplicate suppression, cumulative acks, retransmission
// — also lives here, below the host's sight, as on real Myri-10G
// boards. lane is the NIC the frame arrived on: pull requests are
// answered on it, so the requester's block striping decides which
// lanes of an aggregated link carry the bulk data.
func (s *Stack) firmwareRx(lane int, f *wire.Frame) {
	switch m := f.Msg.(type) {
	case *proto.Eager:
		s.fwEager(f, m)
	case *proto.Ack:
		s.fwAck(m)
	case *proto.RndvRequest:
		s.fwRndv(m)
	case *proto.Pull:
		s.fwPull(lane, m)
	case *proto.LargeFrag:
		s.fwLargeFrag(f, m)
	case *proto.RndvAck:
		s.fwRndvAck(m)
	case *proto.CollData:
		s.fwCollData(f, m)
	case *proto.CollAck:
		s.fwCollAck(m)
	}
}

// dmaDelay is the NIC-to-host deposit time for n payload bytes.
func (s *Stack) dmaDelay(n int) sim.Duration {
	return sim.Duration(s.H.P.NICFixedLatency) + sim.Duration(float64(n)/float64(s.H.P.NICDMARate))
}

// dmaDelayTo is dmaDelay against a specific destination buffer: a
// deposit into pages homed on the remote socket pays the platform's
// extra descriptor cost and drains at the reduced cross-socket rate.
func (s *Stack) dmaDelayTo(buf *hostmem.Buffer, n int) sim.Duration {
	p := s.H.P
	home := buf.HomeSocket()
	rate := float64(p.NICDMARate) / p.RemoteDMAFactor(home)
	return sim.Duration(p.NICFixedLatency+p.RemoteDMADescCost(home)) + sim.Duration(float64(n)/rate)
}

// deposit records a firmware DMA write into buf: pushed into the DCA
// target's LLC on a DCA-capable platform, plain cache-cold memory
// otherwise. ep is the consuming endpoint — native firmware knows the
// consumer and steers at its core unless Config.DCATargetCore
// overrides it.
func (s *Stack) deposit(ep *Endpoint, buf *hostmem.Buffer, n int) {
	if !s.H.P.HasDCA {
		buf.WrittenByDMA()
		return
	}
	target := ep.Core
	if s.Cfg.DCATargetCore > 0 {
		target = s.Cfg.DCATargetCore
	}
	buf.WrittenByDCA(target, n)
}

// fwAck applies a (cumulative) transport ack to the sending
// endpoint's channel, releasing retransmission snapshots.
func (s *Stack) fwAck(m *proto.Ack) {
	ep := s.endpoints[m.Src.EP]
	if ep == nil {
		return
	}
	tc := ep.tx[m.Dst]
	if tc == nil {
		return
	}
	acked := tc.applyCumulative(m.AckSeq)
	if len(acked) > 0 {
		// The newest never-retransmitted send the ack covers is a clean
		// round-trip sample (Karn's rule skips retransmitted ones).
		now := s.H.E.Now()
		sample := sim.Duration(-1)
		for _, u := range acked {
			if !u.rtxed {
				sample = now - u.sentAt
			}
			if s.Trace != nil {
				s.Trace(core.TraceEvent{Kind: "eager", Frag: -1, Seq: u.seq, Lane: s.laneOf(u.seq, 0), Start: u.sentAt, End: now})
			}
		}
		if sample >= 0 {
			s.observeRTT(m.Dst, sample)
		}
	}
	if len(tc.unacked) == 0 {
		tc.rtx.Stop()
		tc.rtx = sim.Timer{}
	}
}

// fwEager deposits an eager fragment into the endpoint's receive
// queue by DMA and raises a completion event; the library does the
// single copy to the destination after matching. The firmware window
// suppresses duplicates (re-acking completed messages, since a
// duplicate proves the sender missed the ack) and tracks per-message
// fragment bitmaps so retransmissions never double-deliver.
func (s *Stack) fwEager(f *wire.Frame, m *proto.Eager) {
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	if m.AckSeq != 0 {
		s.fwAck(&proto.Ack{Src: m.Dst, Dst: m.Src, AckSeq: m.AckSeq})
	}
	ch := ep.mxRx(m.Src)
	if ch.isDup(m.Seq) {
		s.Stats.DupFrags++
		// The sender clearly lost our ack: refresh it immediately.
		s.transmit(m.Src, &proto.Ack{Src: m.Src, Dst: ep.Addr(), AckSeq: ch.win.Edge()}, nil)
		return
	}
	a := ch.asm[m.Seq]
	if a == nil {
		a = &fwAsm{cnt: m.FragCount}
		ch.asm[m.Seq] = a
	}
	bit := uint64(1) << uint(m.FragID)
	if a.got&bit != 0 {
		s.Stats.DupFrags++
		return
	}
	if len(ep.freeSlots) == 0 {
		// Queue overrun: drop without recording the fragment; the
		// sender's retransmission timer recovers it.
		s.Stats.QueueDrops++
		return
	}
	a.got |= bit
	a.arrived++
	if a.arrived == a.cnt {
		delete(ch.asm, m.Seq)
		ch.markComplete(m.Seq)
	}
	slot := ep.freeSlots[len(ep.freeSlots)-1]
	ep.freeSlots = ep.freeSlots[:len(ep.freeSlots)-1]
	n := len(f.Data)
	firmwareMatch := sim.Duration(s.H.P.MXFirmwareMatchCost)
	s.H.E.Schedule(firmwareMatch+s.dmaDelayTo(ep.ring, n), func() {
		off := ep.slotOff(slot)
		copy(ep.ring.Data[off:off+n], f.Data)
		s.deposit(ep, ep.ring, n)
		ep.pushEvent(&event{
			kind: evEagerFrag, src: m.Src, match: m.Match, seq: m.Seq,
			msgLen: m.MsgLen, fragID: m.FragID, fragCnt: m.FragCount,
			offset: m.Offset, slot: slot, dataLen: n,
		})
	})
}

// fwRndv raises a rendezvous event after firmware matching delay.
// Duplicate requests (the sender's request-retransmission racing a
// lost answer) are suppressed; if the transfer already finished, the
// final ack is re-sent instead.
func (s *Stack) fwRndv(m *proto.RndvRequest) {
	ep := s.endpoints[m.Dst.EP]
	if ep == nil {
		return
	}
	if m.AckSeq != 0 {
		s.fwAck(&proto.Ack{Src: m.Dst, Dst: m.Src, AckSeq: m.AckSeq})
	}
	key := rndvKey{src: m.Src, dst: m.Dst.EP, seq: m.Seq}
	if st := s.rndvSeen[key]; st != nil {
		if st.done {
			s.transmit(m.Src, &proto.RndvAck{Src: ep.Addr(), Dst: m.Src, SenderHandle: st.sender}, nil)
		}
		return // in progress: pull-block timers drive recovery
	}
	s.rndvSeen[key] = &rndvState{sender: m.SenderHandle, recvEP: m.Dst.EP}
	// A rendezvous consumes a sequence number on the eager channel so
	// cumulative acks can advance across it.
	ep.mxRx(m.Src).markComplete(m.Seq)
	s.H.E.Schedule(sim.Duration(s.H.P.MXFirmwareMatchCost), func() {
		ep.pushEvent(&event{kind: evRndv, src: m.Src, match: m.Match, seq: m.Seq,
			msgLen: m.MsgLen, handle: m.SenderHandle})
	})
}

// fwPull streams the requested fragments from the pinned user buffer,
// paced by the firmware's control overhead: this pacing is what puts
// native MX at ≈1140 MiB/s instead of the 1186 MiB/s line rate. The
// NeedMask selects which fragments of the block to send — all of them
// on the first request, the missing subset on retransmissions.
func (s *Stack) fwPull(lane int, m *proto.Pull) {
	ms := s.sends[m.SenderHandle]
	if ms == nil {
		return
	}
	if !ms.sampled && ms.attempts == 0 {
		// First pull answers the (never-retransmitted) rendezvous
		// request: a clean request->pull round trip to the receiver.
		s.observeRTT(m.Src, s.H.E.Now()-ms.sentAt)
	}
	ms.sampled = true
	ms.pulled = true
	var frags []int
	for i := 0; i < m.FragCount; i++ {
		if m.NeedMask&(uint64(1)<<uint(i)) != 0 {
			frags = append(frags, m.FirstFrag+i)
		}
	}
	idx := 0
	var sendNext func()
	sendNext = func() {
		if idx >= len(frags) {
			return
		}
		frag := frags[idx]
		idx++
		fo := frag * proto.LargeFragSize
		fl := min(proto.LargeFragSize, ms.n-fo)
		if fl <= 0 {
			return
		}
		payload := make([]byte, fl)
		copy(payload, ms.buf.Data[ms.off+fo:ms.off+fo+fl])
		// Answer on the lane the pull arrived on: the block stays on
		// one physical path end to end.
		s.transmitOn(lane, m.Src, &proto.LargeFrag{
			Src: ms.ep.Addr(), Dst: m.Src,
			RecvHandle: m.RecvHandle, Block: m.Block,
			FragID: frag, Offset: fo, MsgLen: ms.n,
		}, payload)
		s.Stats.FragsSent++
		if idx < len(frags) {
			// Pace at wire time plus the control-overhead fraction.
			wireTime := float64(fl+s.H.P.OMXHeaderBytes+s.H.P.EthFrameOverhead) / float64(s.H.P.WireRate)
			gap := sim.Duration(wireTime * (1 + s.H.P.MXControlOverhead))
			s.H.E.Schedule(gap, sendNext)
		}
	}
	sendNext()
}

// fwLargeFrag deposits a pulled fragment directly into the pinned
// destination buffer — the zero-copy receive that commodity Ethernet
// NICs cannot do — and requests further blocks as transfers progress.
// Per-block bitmaps suppress duplicate fragments, and completed
// blocks retire their retransmission timers.
func (s *Stack) fwLargeFrag(f *wire.Frame, m *proto.LargeFrag) {
	lp := s.pulls[m.RecvHandle]
	if lp == nil || lp.done {
		return
	}
	blk := lp.blocks[m.Block]
	if blk == nil {
		s.Stats.DupFrags++
		return // block already completed: stale retransmission
	}
	if !blk.asm.Mark(m.FragID - blk.firstFrag) {
		s.Stats.DupFrags++
		return
	}
	blk.attempts = 0
	if blk.asm.Done() {
		blk.timer.Stop()
		delete(lp.blocks, m.Block)
		if s.Trace != nil {
			win := 2 * s.lanes
			if lp.aw != nil {
				win = lp.aw.Window()
			}
			s.Trace(core.TraceEvent{
				Kind: "pull", Frag: -1, Seq: lp.key.seq, Block: blk.idx,
				Lane: s.laneOf(lp.key.seq, blk.idx), Window: win,
				Start: blk.sentAt, End: s.H.E.Now(),
			})
		}
		if !blk.rtxed {
			// A clean block round trip: feed the peer's RTO estimator
			// and the transfer's window controller.
			rtt := s.H.E.Now() - blk.sentAt
			s.observeRTT(lp.src, rtt)
			if lp.aw != nil {
				lp.aw.OnSample(rtt)
			}
		}
		if lp.aw != nil {
			// Adaptive refill: top the window back up at completion
			// time (firmware context, no host cost). The static path
			// keeps its arrival-paced one-for-one refill below.
			for len(lp.blocks) < lp.aw.Window() && lp.nextBlock*mxBlockFrags < lp.frags {
				s.pullNextBlock(lp)
			}
		}
		if s.Trace != nil {
			now := s.H.E.Now()
			s.Trace(core.TraceEvent{
				Kind: "counter", Frag: -1, Start: now, End: now,
				Name: "pull-queue", Value: float64(len(lp.blocks)),
			})
		}
	}
	n := len(f.Data)
	s.H.E.Schedule(s.dmaDelayTo(lp.buf, n), func() {
		dstOff := lp.off + m.Offset
		copy(lp.buf.Data[dstOff:dstOff+n], f.Data)
		s.deposit(lp.ep, lp.buf, n)
		lp.arrived++
		// When another block's worth of fragments has landed, ask for
		// the next outstanding block (two are pipelined). Adaptive
		// transfers refill at block completion instead (above).
		if lp.aw == nil && lp.arrived%mxBlockFrags == 0 && lp.nextBlock*mxBlockFrags < lp.frags {
			s.pullNextBlock(lp)
		}
		if lp.arrived == lp.frags {
			lp.done = true
			for _, b := range lp.blocks {
				b.timer.Stop()
			}
			delete(s.pulls, lp.handle)
			s.markRndvDone(lp.key)
			lp.req.Len = lp.n
			if s.Trace != nil {
				win := 2 * s.lanes
				if lp.aw != nil {
					win = lp.aw.Window()
				}
				s.Trace(core.TraceEvent{
					Kind: "rndv", Frag: -1, Seq: lp.key.seq,
					Window: win, Start: lp.startedAt, End: s.H.E.Now(),
				})
			}
			lp.ep.pushEvent(&event{kind: evRecvDone, req: lp.req})
			s.transmit(lp.src, &proto.RndvAck{Src: lp.ep.Addr(), Dst: lp.src, SenderHandle: lp.senderHandle}, nil)
		}
	})
}

// pullNextBlock issues the next block's pull request from firmware
// and arms its retransmission timer.
func (s *Stack) pullNextBlock(lp *mxPull) {
	firstFrag := lp.nextBlock * mxBlockFrags
	if firstFrag >= lp.frags {
		return
	}
	count := min(mxBlockFrags, lp.frags-firstFrag)
	blk := &mxBlock{idx: lp.nextBlock, firstFrag: firstFrag, asm: proto.NewReassembly(count), sentAt: s.H.E.Now()}
	lp.blocks[lp.nextBlock] = blk
	lp.nextBlock++
	s.sendPull(lp, blk, blk.asm.FullMask())
}

// fwRndvAck completes a large send and retires its request timer.
func (s *Stack) fwRndvAck(m *proto.RndvAck) {
	ms := s.sends[m.SenderHandle]
	if ms == nil {
		return
	}
	ms.finished = true
	ms.rtx.Stop()
	delete(s.sends, ms.handle)
	ms.ep.pushEvent(&event{kind: evSendDone, req: ms.req})
}
