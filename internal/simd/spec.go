package simd

// The service's JSON vocabulary: tenants describe topologies, stacks
// and experiment jobs as plain data, and the specs convert into the
// simulator's native types (cluster.Topology, figures.Stack) with
// every invalid field reported as an error — never a panic.
//
// Every spec type is a value struct with no pointers, maps or funcs:
// the specs are hashed into runner.Key cache keys (which render with
// %#v), so identical requests from different tenants must produce
// byte-identical renderings and thus hit the same cache entry.

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/figures"
	"omxsim/openmx"
	"omxsim/sim"
)

// TopologySpec is the declarative testbed description a tenant posts
// to create a named cluster. It mirrors cluster.Topology.
type TopologySpec struct {
	// Hosts lists the host sets, created in order.
	Hosts []HostSetSpec `json:"hosts"`
	// Wiring connects them.
	Wiring WiringSpec `json:"wiring"`
}

// HostSetSpec mirrors cluster.HostSet.
type HostSetSpec struct {
	// Name is the base host name ("node" → node0…nodeN-1).
	Name string `json:"name"`
	// N is the host count (0 means 1).
	N int `json:"n,omitempty"`
	// Indexed forces the name+index form even for a single host.
	Indexed bool `json:"indexed,omitempty"`
	// NICs is the per-host NIC count for link aggregation (0 means 1).
	NICs int `json:"nics,omitempty"`
}

// WiringSpec selects a wiring shape by kind:
//
//	"backtoback"   the paper's two-host switchless testbed
//	"singleswitch" every host on one store-and-forward switch
//	"fattree"      2-tier leaf/spine Clos (LeafRadix, Spines, ECMP)
//	""             unwired hosts
type WiringSpec struct {
	Kind string `json:"kind"`
	// LeafRadix and Spines shape a fat tree (kind "fattree").
	LeafRadix int `json:"leafRadix,omitempty"`
	Spines    int `json:"spines,omitempty"`
	// ECMP selects the fat tree's uplink spread ("hash", "rr").
	ECMP string `json:"ecmp,omitempty"`
	// Net configures the primary element: the back-to-back link, the
	// single switch, or the fat tree's leaf switches.
	Net NetSpec `json:"net,omitempty"`
	// Trunk configures fat-tree leaf-spine trunks.
	Trunk NetSpec `json:"trunk,omitempty"`
}

// NetSpec is the flat JSON form of the cluster.NetOption vocabulary:
// queue bounds, added latency, and a deterministic impairment.
type NetSpec struct {
	// Queue bounds transmit queues to this many frames (tail drop).
	Queue int `json:"queue,omitempty"`
	// LatencyNs adds fixed latency, in simulated nanoseconds.
	LatencyNs int64 `json:"latencyNs,omitempty"`
	// Seed selects the impairment's deterministic random stream.
	Seed int64 `json:"seed,omitempty"`
	// LossRate, DupRate and ReorderRate are per-frame probabilities.
	LossRate    float64 `json:"lossRate,omitempty"`
	DupRate     float64 `json:"dupRate,omitempty"`
	ReorderRate float64 `json:"reorderRate,omitempty"`
	// JitterMaxNs adds uniform [0, max) latency jitter per frame.
	JitterMaxNs int64 `json:"jitterMaxNs,omitempty"`
}

// options converts the spec to the cluster option vocabulary.
func (n NetSpec) options() []cluster.NetOption {
	var opts []cluster.NetOption
	if n.Queue > 0 {
		opts = append(opts, cluster.Queue(n.Queue))
	}
	if n.LatencyNs > 0 {
		opts = append(opts, cluster.Latency(sim.Duration(n.LatencyNs)))
	}
	if n.LossRate != 0 || n.DupRate != 0 || n.ReorderRate != 0 || n.JitterMaxNs != 0 {
		opts = append(opts, cluster.Impair(cluster.Impairment{
			Seed:        n.Seed,
			LossRate:    n.LossRate,
			DupRate:     n.DupRate,
			ReorderRate: n.ReorderRate,
			JitterMax:   sim.Duration(n.JitterMaxNs),
		}))
	}
	return opts
}

// topology converts the spec into a cluster.Topology. Field-level
// invariants (host counts, NIC counts, fat-tree shape) are left to
// cluster.BuildE, which reports them with precise messages; only the
// wiring kind — pure vocabulary, invisible to BuildE — is checked
// here.
func (t TopologySpec) topology() (cluster.Topology, error) {
	var top cluster.Topology
	for _, hs := range t.Hosts {
		set := cluster.HostSet{Name: hs.Name, N: hs.N, Indexed: hs.Indexed}
		if hs.NICs != 0 {
			set.Opts = append(set.Opts, cluster.MultiNIC(hs.NICs))
		}
		top.Hosts = append(top.Hosts, set)
	}
	w := t.Wiring
	switch w.Kind {
	case "backtoback":
		top.Wiring = cluster.BackToBack{Opts: w.Net.options()}
	case "singleswitch":
		top.Wiring = cluster.SingleSwitch{Opts: w.Net.options()}
	case "fattree":
		top.Wiring = cluster.FatTree{
			LeafRadix:  w.LeafRadix,
			Spines:     w.Spines,
			ECMPPolicy: w.ECMP,
			LeafOpts:   w.Net.options(),
			TrunkOpts:  w.Trunk.options(),
		}
	case "":
		// Unwired hosts: allowed, though no multi-host job will pass.
	default:
		return cluster.Topology{}, fmt.Errorf(
			"simd: unknown wiring kind %q (want backtoback, singleswitch or fattree)", w.Kind)
	}
	return top, nil
}

// StackSpec selects a protocol stack for a sweep.
type StackSpec struct {
	// Kind is "openmx" or "mxoe".
	Kind string `json:"kind"`
	// IOAT enables I/OAT copy offload (openmx).
	IOAT bool `json:"ioat,omitempty"`
	// RegCache enables the registration cache (both stacks).
	RegCache bool `json:"regcache,omitempty"`
	// SkipBHCopy models the no-copy prediction (openmx).
	SkipBHCopy bool `json:"skipBHCopy,omitempty"`
}

// stack converts the spec to the figures stack vocabulary.
func (s StackSpec) stack() (figures.Stack, error) {
	switch s.Kind {
	case "openmx":
		return figures.Stack{Kind: "openmx", OMX: openmx.Config{
			IOAT: s.IOAT, RegCache: s.RegCache, SkipBHCopy: s.SkipBHCopy,
		}}, nil
	case "mxoe":
		return figures.Stack{Kind: "mxoe", MXRegCache: s.RegCache}, nil
	}
	return figures.Stack{}, fmt.Errorf(`simd: unknown stack kind %q (want "openmx" or "mxoe")`, s.Kind)
}

// JobSpec describes one experiment job.
type JobSpec struct {
	// Kind is "sweep" (default) or "figure".
	Kind string `json:"kind,omitempty"`
	// Cluster names the tenant cluster a sweep runs on.
	Cluster string `json:"cluster,omitempty"`
	// Figure names a section from figures.Sections ("fig8", "coll"…).
	Figure string `json:"figure,omitempty"`
	// Test is the IMB benchmark name, case-insensitive ("allreduce").
	Test string `json:"test,omitempty"`
	// Sizes are the message sizes to sweep, in bytes.
	Sizes []int `json:"sizes,omitempty"`
	// PPN is the ranks-per-node count (0 means 1).
	PPN int `json:"ppn,omitempty"`
	// Iters fixes the per-size iteration count; 0 selects the IMB
	// default schedule.
	Iters int `json:"iters,omitempty"`
	// Stacks lists the stacks to sweep, one result series each.
	Stacks []StackSpec `json:"stacks,omitempty"`
}
