package simd

import (
	"io"
	"net/http"
	"testing"

	"omxsim/figures"
	"omxsim/sim/trace"
)

// The per-job trace endpoint: a finished timeline figure job serves
// the Chrome trace_event document (valid and bit-identical to the
// direct figures export), a job without a trace 404s, and a running
// job 409s.
func TestJobTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	base := ts.URL

	get := func(id string) (int, []byte) {
		resp, err := http.Get(base + "/v1/tenants/alice/jobs/" + id + "/trace")
		if err != nil {
			t.Fatalf("GET trace: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read trace: %v", err)
		}
		return resp.StatusCode, body
	}

	// A held job answers 409 while running.
	gate := make(chan struct{})
	s.testJobGate = func() { <-gate }
	var held JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", JobSpec{Kind: "figure", Figure: "timeline"}, &held); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if code, _ := get(held.ID); code != http.StatusConflict {
		t.Errorf("trace of running job: %d, want 409", code)
	}
	// Closing the gate releases the held job and every later one (a
	// receive from a closed channel returns immediately); the gate
	// field itself stays put — rewriting it would race the job
	// goroutines reading it.
	close(gate)
	if fin := waitJob(t, base, "alice", held.ID); fin.State != StateDone {
		t.Fatalf("state %q (%s)", fin.State, fin.Error)
	}

	// Finished: the document validates and matches the direct export.
	code, body := get(held.ID)
	if code != http.StatusOK {
		t.Fatalf("trace of finished job: %d", code)
	}
	if err := trace.Validate(body); err != nil {
		t.Errorf("served trace invalid: %v", err)
	}
	if want := figures.TimelineTraceJSON(true); string(body) != string(want) {
		t.Errorf("served trace differs from the direct export (%d vs %d bytes)", len(body), len(want))
	}

	// A figure job without a trace 404s.
	var plain JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", JobSpec{Kind: "figure", Figure: "micro"}, &plain); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if fin := waitJob(t, base, "alice", plain.ID); fin.State != StateDone {
		t.Fatalf("state %q (%s)", fin.State, fin.Error)
	}
	if code, _ := get(plain.ID); code != http.StatusNotFound {
		t.Errorf("trace of traceless job: %d, want 404", code)
	}

	// An unknown job 404s too.
	if code, _ := get("job-999999"); code != http.StatusNotFound {
		t.Errorf("trace of unknown job: %d, want 404", code)
	}
}
