package simd

// Job lifecycle: a submitted job runs asynchronously on the shared
// runner pool, publishing progress snapshots to its event history and
// to any live SSE subscribers, and lands in a terminal done/failed
// state with the result (or error) attached. Everything here is the
// in-memory model; the HTTP surface lives in server.go and sse.go.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"omxsim/cluster"
	"omxsim/figures"
	"omxsim/imb"
	"omxsim/internal/cpu"
	"omxsim/metrics"
	"omxsim/runner"
)

// Job states.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobEvent is one progress or terminal event of a job, as streamed
// over SSE and kept in the job's replayable history. Seq increases
// strictly per job, so a subscriber can verify monotonic delivery.
type JobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "progress", "done" or "failed"
	// Done/Total/Cached/Errs mirror runner.Progress.
	Done   int `json:"done"`
	Total  int `json:"total"`
	Cached int `json:"cached"`
	Errs   int `json:"errs"`
	// ElapsedMs is wall time since the job's sweep started.
	ElapsedMs int64 `json:"elapsedMs"`
	// ETAMs estimates the remaining time; meaningful only when
	// ETAKnown (false while every completion was a cache hit).
	ETAMs    int64  `json:"etaMs"`
	ETAKnown bool   `json:"etaKnown"`
	Label    string `json:"label,omitempty"`
	Error    string `json:"error,omitempty"`
}

// HostCPU is one host's CPU ledger snapshot after a sweep.
type HostCPU struct {
	Host  string    `json:"host"`
	Stats cpu.Stats `json:"stats"`
}

// PointResult is one stack's measurement within a sweep job.
type PointResult struct {
	Stack StackSpec `json:"stack"`
	// Label is the runner job label ("sweep/Allreduce/Open-MX...").
	Label string `json:"label"`
	// Cached reports whether the point came from the result cache.
	Cached  bool             `json:"cached"`
	Results []imb.Result     `json:"results"`
	Net     cluster.NetStats `json:"net"`
	CPU     []HostCPU        `json:"cpu"`
}

// JobResult is a finished job's payload: a table plus per-stack
// points for sweeps, rendered text for figure jobs. Trace is the
// job's Chrome trace_event document when the job produced one (the
// timeline figure); it is served by the /trace endpoint, not embedded
// in the /result JSON.
type JobResult struct {
	Table  *metrics.Table `json:"table,omitempty"`
	Points []PointResult  `json:"points,omitempty"`
	Figure string         `json:"figure,omitempty"`
	Trace  []byte         `json:"-"`
}

// jobState is one job's record: immutable identity plus a mutex-held
// lifecycle (state, event history, live subscribers, result).
type jobState struct {
	ID      string
	Tenant  string
	Spec    JobSpec
	Created time.Time

	mu       sync.Mutex
	state    string
	errMsg   string
	seq      int
	events   []JobEvent
	subs     map[chan JobEvent]struct{}
	result   *JobResult
	finished time.Time
}

func newJobState(id, tenant string, spec JobSpec) *jobState {
	return &jobState{
		ID: id, Tenant: tenant, Spec: spec, Created: time.Now(),
		state: StateRunning,
		subs:  make(map[chan JobEvent]struct{}),
	}
}

// publish appends a progress event to the history and offers it to
// every live subscriber. A subscriber whose buffer is full misses the
// event (progress is advisory; seq numbers expose the gap).
func (j *jobState) publish(ev JobEvent) {
	j.mu.Lock()
	j.seq++
	ev.Seq = j.seq
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// finish moves the job to its terminal state, appends the terminal
// event, and closes every subscriber channel.
func (j *jobState) finish(res *JobResult, err error) {
	j.mu.Lock()
	term := JobEvent{Type: StateDone, ETAKnown: true}
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		term.Type = StateFailed
		term.Error = j.errMsg
	} else {
		j.state = StateDone
		j.result = res
	}
	j.finished = time.Now()
	if n := len(j.events); n > 0 {
		last := j.events[n-1]
		term.Done, term.Total = last.Done, last.Total
		term.Cached, term.Errs = last.Cached, last.Errs
		term.ElapsedMs = last.ElapsedMs
	}
	j.seq++
	term.Seq = j.seq
	j.events = append(j.events, term)
	for ch := range j.subs {
		select {
		case ch <- term:
		default:
		}
		close(ch)
	}
	j.subs = nil
	j.mu.Unlock()
}

// subscribe returns the event history so far and, if the job is still
// running, a live channel that finish() will close. Copying the
// history and registering the channel happen under one lock, so the
// replay+channel sequence has no gap and no duplicate.
func (j *jobState) subscribe() (replay []JobEvent, ch chan JobEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]JobEvent(nil), j.events...)
	if j.state != StateRunning {
		return replay, nil, func() {}
	}
	ch = make(chan JobEvent, 1024)
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// lastEvent returns the most recent event, if any.
func (j *jobState) lastEvent() (JobEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) == 0 {
		return JobEvent{}, false
	}
	return j.events[len(j.events)-1], true
}

// JobStatus is the job's JSON view.
type JobStatus struct {
	ID       string     `json:"id"`
	Tenant   string     `json:"tenant"`
	State    string     `json:"state"`
	Spec     JobSpec    `json:"spec"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Progress is the latest event, when any has been published.
	Progress *JobEvent `json:"progress,omitempty"`
}

func (j *jobState) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Tenant: j.Tenant, State: j.state, Spec: j.Spec,
		Error: j.errMsg, Created: j.Created,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if n := len(j.events); n > 0 {
		ev := j.events[n-1]
		st.Progress = &ev
	}
	return st
}

func (j *jobState) snapshotResult() (*JobResult, string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.errMsg
}

// tenantState tracks one tenant's concurrent-job count against the
// server quota.
type tenantState struct {
	name    string
	mu      sync.Mutex
	running int
}

func (t *tenantState) acquire(quota int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running >= quota {
		return false
	}
	t.running++
	return true
}

func (t *tenantState) release() {
	t.mu.Lock()
	t.running--
	t.mu.Unlock()
}

// drainGroup counts in-flight jobs and refuses new ones once draining
// — the WaitGroup is only ever Add()ed under the mutex while not
// draining, so drain() cannot race a concurrent Add.
type drainGroup struct {
	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// add registers an in-flight job; ok is false once draining started.
func (d *drainGroup) add() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return false
	}
	d.wg.Add(1)
	return true
}

func (d *drainGroup) done() { d.wg.Done() }

// drain stops admission and blocks until every in-flight job is done.
func (d *drainGroup) drain() {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	d.wg.Wait()
}

// sweepVal is the cacheable value of one (topology, stack, test)
// runner job: the measurements plus the post-run counter snapshots.
// Cached hits hand every job the same value; it is treated as
// immutable.
type sweepVal struct {
	Results []imb.Result
	Net     cluster.NetStats
	CPU     []HostCPU
}

// hostCPUs snapshots every host's CPU ledger, ordered by host name to
// match NetStats ordering.
func hostCPUs(c *cluster.Cluster) []HostCPU {
	hosts := append([]*cluster.Host(nil), c.Hosts()...)
	sort.Slice(hosts, func(i, k int) bool { return hosts[i].Name < hosts[k].Name })
	out := make([]HostCPU, len(hosts))
	for i, h := range hosts {
		out[i] = HostCPU{Host: h.Name, Stats: h.Machine().Sys.Snapshot()}
	}
	return out
}

// itersFunc turns the spec's fixed iteration count into an imb
// schedule (nil = the default schedule).
func itersFunc(n int) func(int) int {
	if n <= 0 {
		return nil
	}
	return func(int) int { return n }
}

// sweepTable assembles a sweep job's per-stack points into one table,
// series in stack declaration order — exactly the table a direct
// figures call over the same results would produce, which is what the
// service battery asserts with metrics.Table.Equal.
func sweepTable(spec JobSpec, points []PointResult) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("%s on %s (ppn=%d)", spec.Test, spec.Cluster, spec.PPN),
		"msgsize", "t[usec]")
	for _, p := range points {
		s := &metrics.Series{Name: p.Label}
		for _, r := range p.Results {
			s.Add(float64(r.Bytes), r.TimeUsec)
		}
		t.Series = append(t.Series, s)
	}
	return t
}

// runJob executes a job to its terminal state. It runs on its own
// goroutine; quota and drain bookkeeping bracket it.
func (s *Server) runJob(t *tenantState, j *jobState, topo TopologySpec) {
	defer s.drain.done()
	defer t.release()
	res, err := s.executeJob(j, topo)
	j.finish(res, err)
}

// executeJob runs the job's work on the shared pool, wiring the
// pool's progress snapshots into the job's event stream.
func (s *Server) executeJob(j *jobState, topo TopologySpec) (*JobResult, error) {
	if s.testJobGate != nil {
		s.testJobGate()
	}
	sink := func(p runner.Progress) {
		j.publish(JobEvent{
			Type: "progress", Done: p.Done, Total: p.Total,
			Cached: p.Cached, Errs: p.Errs,
			ElapsedMs: p.Elapsed.Milliseconds(),
			ETAMs:     p.ETA.Milliseconds(), ETAKnown: p.ETAKnown,
			Label: p.Label,
		})
	}
	spec := j.Spec
	if spec.Kind == "figure" {
		sec, ok := figures.SectionByName(spec.Figure)
		if !ok {
			return nil, fmt.Errorf("simd: unknown figure section %q", spec.Figure)
		}
		// figureVal is the cacheable value of a figure job: the
		// rendered text plus, for the timeline section, the I/OAT
		// receive timeline's Chrome trace_event export (both render
		// from one deterministic capture, so caching stays sound).
		type figureVal struct {
			Text  string
			Trace []byte
		}
		results := s.pool.RunWithProgress(sink, runner.Job{
			Label: "figure/" + sec.Name,
			Key:   runner.Key("simd-figure", sec.Name),
			Run: func() (any, error) {
				v := figureVal{Text: sec.Render(false)}
				if sec.Name == "timeline" {
					v.Trace = figures.TimelineTraceJSON(true)
				}
				return v, nil
			},
		})
		vals, err := runner.ValuesErr[figureVal](results)
		if err != nil {
			return nil, err
		}
		return &JobResult{Figure: vals[0].Text, Trace: vals[0].Trace}, nil
	}
	iters := itersFunc(spec.Iters)
	jobs := make([]runner.Job, len(spec.Stacks))
	for i, st := range spec.Stacks {
		fs, err := st.stack()
		if err != nil {
			return nil, err
		}
		st := st
		jobs[i] = runner.Job{
			Label: fmt.Sprintf("sweep/%s/%s", spec.Test, fs.Name()),
			// The key is pure config — topology, stack, placement, test,
			// sizes, schedule — so identical requests from any tenant
			// share one cached simulation.
			Key: runner.Key("simd-sweep", topo, st, spec.PPN, spec.Test, spec.Sizes, spec.Iters),
			Run: func() (any, error) {
				top, err := topo.topology()
				if err != nil {
					return nil, err
				}
				res, c, err := figures.SweepOn(top, fs, spec.PPN, spec.Test, spec.Sizes, iters)
				if err != nil {
					return nil, err
				}
				return sweepVal{Results: res, Net: c.NetStats(), CPU: hostCPUs(c)}, nil
			},
		}
	}
	results := s.pool.RunWithProgress(sink, jobs...)
	vals, err := runner.ValuesErr[sweepVal](results)
	if err != nil {
		return nil, err
	}
	points := make([]PointResult, len(vals))
	for i, v := range vals {
		points[i] = PointResult{
			Stack: spec.Stacks[i], Label: results[i].Label, Cached: results[i].Cached,
			Results: v.Results, Net: v.Net, CPU: v.CPU,
		}
	}
	return &JobResult{Table: sweepTable(spec, points), Points: points}, nil
}
