package simd

// The SSE progress stream: GET /v1/tenants/{t}/jobs/{id}/events
// replays the job's event history, then follows live events until the
// terminal done/failed event (or the client goes away). Event seq
// numbers are strictly increasing per job, so a client can assert
// monotonic delivery; each SSE frame carries the seq as its id.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.error(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	replay, ch, cancel := j.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev JobEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	if ch == nil {
		// Job already terminal: the replay ended with its done/failed
		// event.
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// finish() closed the channel; if its terminal event was
				// dropped by a full buffer, resend it from the history.
				if last, ok := j.lastEvent(); ok && last.Type != "progress" {
					write(last)
				}
				return
			}
			if !write(ev) {
				return
			}
			if ev.Type != "progress" {
				return
			}
		}
	}
}
