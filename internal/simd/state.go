package simd

import (
	"sort"
	"sync"
)

// StateStore is a generic thread-safe key-value store for the
// service's in-memory resources — tenants, clusters, jobs. It is the
// omxsim instance of the cloud-simulator pattern: every resource kind
// gets its own typed store, and handlers never touch a shared map
// directly.
type StateStore[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// NewStateStore returns an empty store.
func NewStateStore[T any]() *StateStore[T] {
	return &StateStore[T]{m: make(map[string]T)}
}

// Put stores v under key, replacing any existing value.
func (s *StateStore[T]) Put(key string, v T) {
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
}

// Get returns the value under key and whether it exists.
func (s *StateStore[T]) Get(key string) (T, bool) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// GetOrPut returns the value under key, creating it with mk (under
// the write lock, so concurrent callers observe exactly one creation)
// when absent.
func (s *StateStore[T]) GetOrPut(key string, mk func() T) T {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.m[key]; ok {
		return v
	}
	v := mk()
	s.m[key] = v
	return v
}

// PutIfAbsent stores v under key only if the key is free; ok reports
// whether it was stored.
func (s *StateStore[T]) PutIfAbsent(key string, v T) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[key]; exists {
		return false
	}
	s.m[key] = v
	return true
}

// Delete removes key; ok reports whether it existed.
func (s *StateStore[T]) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Keys returns every key in sorted order — handler listings must be
// deterministic.
func (s *StateStore[T]) Keys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// List returns every value, ordered by key.
func (s *StateStore[T]) List() []T {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]T, len(keys))
	for i, k := range keys {
		out[i] = s.m[k]
	}
	s.mu.RUnlock()
	return out
}

// Count returns the number of stored values.
func (s *StateStore[T]) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}
