// Package simd is the omxsimd service: a long-running multi-tenant
// HTTP front end over the simulator. Tenants create named clusters
// from the declarative topology vocabulary, submit experiment jobs
// (IMB sweeps over stacks, or whole figure sections) that run on the
// shared bounded runner pool, follow per-job progress over SSE, and
// fetch results together with network and CPU counter snapshots.
//
// The simulation is deterministic, so results are cacheable under a
// pure-config hash (runner.Key): two tenants asking the same question
// share one simulation, and the second answer is bit-identical to the
// first — and to what a direct figures call would produce.
//
// API (all JSON; {tenant}, {name} and {id} are path segments):
//
//	GET    /healthz                                liveness + counts
//	GET    /v1/sections                            figure section list
//	POST   /v1/tenants/{tenant}/clusters           create named cluster
//	GET    /v1/tenants/{tenant}/clusters           list clusters
//	GET    /v1/tenants/{tenant}/clusters/{name}    inspect cluster
//	DELETE /v1/tenants/{tenant}/clusters/{name}    delete cluster
//	POST   /v1/tenants/{tenant}/jobs               submit job (202)
//	GET    /v1/tenants/{tenant}/jobs               list jobs
//	GET    /v1/tenants/{tenant}/jobs/{id}          job status
//	GET    /v1/tenants/{tenant}/jobs/{id}/events   SSE progress stream
//	GET    /v1/tenants/{tenant}/jobs/{id}/result   result (409 if running)
//	GET    /v1/tenants/{tenant}/jobs/{id}/trace    Chrome trace_event JSON
//	                                               (409 if running, 404 if
//	                                               the job has no trace)
package simd

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"omxsim/cluster"
	"omxsim/figures"
	"omxsim/imb"
	"omxsim/runner"
)

// DefaultQuota is the per-tenant concurrent-job limit when Config
// leaves it zero.
const DefaultQuota = 4

// Config configures a Server.
type Config struct {
	// Quota is the per-tenant concurrent-job limit (0 = DefaultQuota).
	Quota int
	// Pool runs the jobs (nil = runner.Default(), the process-wide
	// bounded pool with the shared result cache).
	Pool *runner.Pool
	// Logger receives structured request and job logs (nil =
	// slog.Default()).
	Logger *slog.Logger
}

// Server is the omxsimd service. Create with NewServer; serve with
// Serve (own listener) or mount Handler() (httptest, embedding).
type Server struct {
	quota   int
	pool    *runner.Pool
	log     *slog.Logger
	handler http.Handler
	hs      *http.Server

	tenants  *StateStore[*tenantState]
	clusters *StateStore[*clusterRec]
	jobs     *StateStore[*jobState]
	nextJob  atomic.Int64
	nextReq  atomic.Int64
	drain    drainGroup

	// testJobGate, when set, is called at the start of every job —
	// test hook that lets the battery hold jobs in the running state
	// deterministically; nil in production.
	testJobGate func()
}

// clusterRec is a named tenant cluster: the spec plus the counts a
// dry build of it produced.
type clusterRec struct {
	Tenant   string       `json:"tenant"`
	Name     string       `json:"name"`
	Spec     TopologySpec `json:"spec"`
	Hosts    int          `json:"hosts"`
	NICs     int          `json:"nics"`
	Switches int          `json:"switches"`
	Created  time.Time    `json:"created"`
}

// NewServer builds the service around its routing table.
func NewServer(cfg Config) *Server {
	s := &Server{
		quota:    cfg.Quota,
		pool:     cfg.Pool,
		log:      cfg.Logger,
		tenants:  NewStateStore[*tenantState](),
		clusters: NewStateStore[*clusterRec](),
		jobs:     NewStateStore[*jobState](),
	}
	if s.quota <= 0 {
		s.quota = DefaultQuota
	}
	if s.pool == nil {
		s.pool = runner.Default()
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/sections", s.handleSections)
	mux.HandleFunc("POST /v1/tenants/{tenant}/clusters", s.handleClusterCreate)
	mux.HandleFunc("GET /v1/tenants/{tenant}/clusters", s.handleClusterList)
	mux.HandleFunc("GET /v1/tenants/{tenant}/clusters/{name}", s.handleClusterGet)
	mux.HandleFunc("DELETE /v1/tenants/{tenant}/clusters/{name}", s.handleClusterDelete)
	mux.HandleFunc("POST /v1/tenants/{tenant}/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs/{id}/trace", s.handleJobTrace)
	s.handler = s.withRequestLog(mux)
	s.hs = &http.Server{Handler: s.handler}
	return s
}

// Handler returns the service's HTTP handler (request-ID and logging
// middleware included) for httptest servers or embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve accepts connections on ln until Shutdown. A clean shutdown
// returns nil.
func (s *Server) Serve(ln net.Listener) error {
	err := s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown stops accepting requests, then blocks until every
// in-flight job has finished (new submissions get 503 while
// draining). ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	herr := s.hs.Shutdown(ctx)
	done := make(chan struct{})
	go func() {
		s.drain.drain()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return herr
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) error(w http.ResponseWriter, status int, format string, args ...any) {
	var e apiError
	e.Error.Status = status
	e.Error.Message = fmt.Sprintf(format, args...)
	writeJSON(w, status, e)
}

// validName admits tenant, cluster and job name path segments:
// non-empty [a-zA-Z0-9._-], at most 64 bytes.
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantOf validates the {tenant} path segment; empty means the
// request was already answered.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) string {
	t := r.PathValue("tenant")
	if !validName(t) {
		s.error(w, http.StatusBadRequest, "invalid tenant name %q", t)
		return ""
	}
	return t
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var hits, misses int
	if c := s.pool.Cache(); c != nil {
		hits, misses = c.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"clusters":    s.clusters.Count(),
		"jobs":        s.jobs.Count(),
		"cacheHits":   hits,
		"cacheMisses": misses,
	})
}

func (s *Server) handleSections(w http.ResponseWriter, r *http.Request) {
	type sec struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	var out []sec
	for _, x := range figures.Sections() {
		out = append(out, sec{x.Name, x.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}

type clusterCreateReq struct {
	Name     string       `json:"name"`
	Topology TopologySpec `json:"topology"`
}

func (s *Server) handleClusterCreate(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	var req clusterCreateReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.error(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !validName(req.Name) {
		s.error(w, http.StatusBadRequest, "invalid cluster name %q", req.Name)
		return
	}
	// Dry-build now: an invalid topology is rejected here, with the
	// builder's own message, instead of failing every later job.
	top, err := req.Topology.topology()
	if err != nil {
		s.error(w, http.StatusBadRequest, "invalid topology: %v", err)
		return
	}
	c, err := cluster.BuildE(top)
	if err != nil {
		s.error(w, http.StatusBadRequest, "invalid topology: %v", err)
		return
	}
	nics := 0
	for _, h := range c.Hosts() {
		nics += len(h.Machine().NICs)
	}
	rec := &clusterRec{
		Tenant: tenant, Name: req.Name, Spec: req.Topology,
		Hosts: len(c.Hosts()), NICs: nics, Switches: len(c.Switches()),
		Created: time.Now(),
	}
	if !s.clusters.PutIfAbsent(tenant+"/"+req.Name, rec) {
		s.error(w, http.StatusConflict, "cluster %q already exists", req.Name)
		return
	}
	s.log.Info("cluster created", "tenant", tenant, "cluster", req.Name,
		"hosts", rec.Hosts, "nics", rec.NICs, "switches", rec.Switches)
	writeJSON(w, http.StatusCreated, rec)
}

func (s *Server) handleClusterList(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	out := []*clusterRec{}
	for _, rec := range s.clusters.List() {
		if rec.Tenant == tenant {
			out = append(out, rec)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	rec, ok := s.clusters.Get(tenant + "/" + r.PathValue("name"))
	if !ok {
		s.error(w, http.StatusNotFound, "no cluster %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleClusterDelete(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	if !s.clusters.Delete(tenant + "/" + r.PathValue("name")) {
		s.error(w, http.StatusNotFound, "no cluster %q", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.error(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var topo TopologySpec
	switch spec.Kind {
	case "", "sweep":
		spec.Kind = "sweep"
		rec, ok := s.clusters.Get(tenant + "/" + spec.Cluster)
		if !ok {
			s.error(w, http.StatusNotFound, "no cluster %q", spec.Cluster)
			return
		}
		topo = rec.Spec
		canon, ok := imb.Canon(spec.Test)
		if !ok {
			s.error(w, http.StatusBadRequest, "unknown IMB test %q", spec.Test)
			return
		}
		spec.Test = canon
		if len(spec.Sizes) == 0 {
			s.error(w, http.StatusBadRequest, "sweep needs at least one message size")
			return
		}
		for _, n := range spec.Sizes {
			if n < 0 {
				s.error(w, http.StatusBadRequest, "negative message size %d", n)
				return
			}
		}
		if spec.PPN == 0 {
			spec.PPN = 1
		}
		if spec.PPN < 1 || spec.PPN > figures.MaxPPN() {
			s.error(w, http.StatusBadRequest, "ppn %d out of range 1..%d", spec.PPN, figures.MaxPPN())
			return
		}
		if len(spec.Stacks) == 0 {
			s.error(w, http.StatusBadRequest, "sweep needs at least one stack")
			return
		}
		for _, st := range spec.Stacks {
			if _, err := st.stack(); err != nil {
				s.error(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	case "figure":
		if _, ok := figures.SectionByName(spec.Figure); !ok {
			s.error(w, http.StatusBadRequest, "unknown figure section %q", spec.Figure)
			return
		}
	default:
		s.error(w, http.StatusBadRequest, `unknown job kind %q (want "sweep" or "figure")`, spec.Kind)
		return
	}
	t := s.tenants.GetOrPut(tenant, func() *tenantState { return &tenantState{name: tenant} })
	if !t.acquire(s.quota) {
		s.error(w, http.StatusTooManyRequests,
			"tenant %q already has %d running jobs (quota)", tenant, s.quota)
		return
	}
	if !s.drain.add() {
		t.release()
		s.error(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	id := fmt.Sprintf("job-%06d", s.nextJob.Add(1))
	j := newJobState(id, tenant, spec)
	s.jobs.Put(tenant+"/"+id, j)
	s.log.Info("job submitted", "tenant", tenant, "job", id,
		"kind", spec.Kind, "cluster", spec.Cluster, "test", spec.Test, "figure", spec.Figure)
	go s.runJob(t, j, topo)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return
	}
	out := []JobStatus{}
	for _, j := range s.jobs.List() {
		if j.Tenant == tenant {
			out = append(out, j.status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// lookupJob resolves {tenant}/{id}; nil means the request was
// already answered.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *jobState {
	tenant := s.tenantOf(w, r)
	if tenant == "" {
		return nil
	}
	j, ok := s.jobs.Get(tenant + "/" + r.PathValue("id"))
	if !ok {
		s.error(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return nil
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	res, state, errMsg := j.snapshotResult()
	switch state {
	case StateRunning:
		s.error(w, http.StatusConflict, "job %s is still running", j.ID)
	case StateFailed:
		s.error(w, http.StatusConflict, "job %s failed: %s", j.ID, errMsg)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// handleJobTrace serves a finished job's Chrome trace_event document
// (chrome://tracing, Perfetto). Only jobs that capture a trace have
// one — currently figure jobs of the timeline section.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	res, state, errMsg := j.snapshotResult()
	switch {
	case state == StateRunning:
		s.error(w, http.StatusConflict, "job %s is still running", j.ID)
	case state == StateFailed:
		s.error(w, http.StatusConflict, "job %s failed: %s", j.ID, errMsg)
	case len(res.Trace) == 0:
		s.error(w, http.StatusNotFound, "job %s has no trace", j.ID)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.Trace)
	}
}
