package simd

// Load smoke: the control-plane handlers (health, cluster CRUD, job
// status) must stay fast while the data plane simulates. 100
// sequential requests then 16 concurrent clients hammer the service,
// and the p99 handler latency has to stay under a generous bound —
// this catches a handler accidentally blocking on the pool or on a
// job lock, not micro-regressions.

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"
)

func p99(lat []time.Duration) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100]
}

func TestLoadSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	if code := doJSON(t, "POST", base+"/v1/tenants/load/clusters",
		clusterCreateReq{Name: "c", Topology: fatTreeSpec()}, nil); code != http.StatusCreated {
		t.Fatalf("setup cluster: %d", code)
	}
	paths := []string{
		"/healthz",
		"/v1/sections",
		"/v1/tenants/load/clusters",
		"/v1/tenants/load/clusters/c",
		"/v1/tenants/load/jobs",
	}
	get := func(path string) time.Duration {
		start := time.Now()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Errorf("GET %s: %v", path, err)
			return 0
		}
		resp.Body.Close()
		d := time.Since(start)
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		return d
	}

	// Phase 1: 100 sequential requests.
	seq := make([]time.Duration, 0, 100)
	for i := 0; i < 100; i++ {
		seq = append(seq, get(paths[i%len(paths)]))
	}

	// Phase 2: 16 concurrent clients, 16 requests each, while a real
	// sweep job occupies the pool.
	if code := doJSON(t, "POST", base+"/v1/tenants/load/jobs", sweepSpec("c"), nil); code != http.StatusAccepted {
		t.Fatalf("background job: %d", code)
	}
	var mu sync.Mutex
	conc := make([]time.Duration, 0, 16*16)
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				d := get(paths[(c+i)%len(paths)])
				mu.Lock()
				conc = append(conc, d)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	const bound = 250 * time.Millisecond
	if p := p99(seq); p > bound {
		t.Errorf("sequential p99 = %v, want <= %v", p, bound)
	}
	if p := p99(conc); p > bound {
		t.Errorf("concurrent p99 = %v, want <= %v", p, bound)
	}
	t.Logf("p99: sequential %v, concurrent %v (%d+%d requests)",
		p99(seq), p99(conc), len(seq), len(conc))
}

func TestStateStore(t *testing.T) {
	s := NewStateStore[int]()
	s.Put("b", 2)
	s.Put("a", 1)
	if !s.PutIfAbsent("c", 3) || s.PutIfAbsent("a", 9) {
		t.Fatal("PutIfAbsent")
	}
	if got := s.Keys(); fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("Keys = %v", got)
	}
	if got := s.List(); fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("List = %v", got)
	}
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	if !s.Delete("a") || s.Delete("a") {
		t.Fatal("Delete")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	// GetOrPut creates exactly once under concurrency.
	calls := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.GetOrPut("shared", func() int { calls++; return 42 })
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("GetOrPut ran mk %d times", calls)
	}
	if v, _ := s.Get("shared"); v != 42 {
		t.Fatalf("shared = %d", v)
	}
}
