package simd

// Request middleware: every request gets a process-unique ID (echoed
// in X-Request-ID) and one structured log line with method, path,
// status and latency.

import (
	"fmt"
	"net/http"
	"time"
)

// statusWriter captures the response status for the log line while
// forwarding Flush — the SSE handler streams through this wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", s.nextReq.Add(1))
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur", time.Since(start).Round(time.Microsecond))
	})
}
