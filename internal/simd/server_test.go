package simd

// The service battery: end-to-end over httptest, designed to run
// under -race. The core test drives two tenants through the full
// workflow — create fat-tree clusters, run overlapping Allreduce
// sweeps concurrently, follow SSE progress, fetch results — and
// asserts the service tables are bit-identical to direct figures
// calls. The rest covers quota 429s, graceful drain, SSE monotonic
// delivery, and the 4xx surface for invalid input.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"omxsim/figures"
	"omxsim/metrics"
	"omxsim/runner"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Pool == nil {
		// A private pool per test: the shared default pool's cache
		// would leak state between tests that count cache hits.
		cfg.Pool = runner.New(runner.Options{Workers: 4, Cache: runner.NewCache()})
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: unmarshal %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// fatTreeSpec is the battery's 8-host fat tree.
func fatTreeSpec() TopologySpec {
	return TopologySpec{
		Hosts:  []HostSetSpec{{Name: "node", N: 8, Indexed: true}},
		Wiring: WiringSpec{Kind: "fattree", LeafRadix: 4, Spines: 2},
	}
}

// sweepSpec is the battery's Allreduce sweep over both stacks.
func sweepSpec(clusterName string) JobSpec {
	return JobSpec{
		Cluster: clusterName,
		Test:    "allreduce", // canonicalized to "Allreduce" by submit
		Sizes:   []int{0, 1024, 16384},
		Iters:   4,
		Stacks: []StackSpec{
			{Kind: "openmx", IOAT: true, RegCache: true},
			{Kind: "openmx", RegCache: true},
		},
	}
}

// waitJob polls until the job leaves the running state.
func waitJob(t *testing.T, base, tenant, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := doJSON(t, "GET", base+"/v1/tenants/"+tenant+"/jobs/"+id, nil, &st); code != 200 {
			t.Fatalf("job status: %d", code)
		}
		if st.State != StateRunning {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s/%s did not finish", tenant, id)
	return JobStatus{}
}

// sseEvents streams the job's event feed to its terminal event.
func sseEvents(t *testing.T, base, tenant, id string) []JobEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/tenants/" + tenant + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("sse get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sse status: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sse content-type: %q", ct)
	}
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev JobEvent
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("sse data %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("sse scan: %v", err)
	}
	return events
}

// expectedSweepTable reproduces the service result with direct
// figures calls over the same specs.
func expectedSweepTable(t *testing.T, topo TopologySpec, spec JobSpec, canonTest string) *metrics.Table {
	t.Helper()
	spec.Test = canonTest
	if spec.PPN == 0 {
		spec.PPN = 1
	}
	points := make([]PointResult, len(spec.Stacks))
	for i, st := range spec.Stacks {
		fs, err := st.stack()
		if err != nil {
			t.Fatalf("stack: %v", err)
		}
		top, err := topo.topology()
		if err != nil {
			t.Fatalf("topology: %v", err)
		}
		res, _, err := figures.SweepOn(top, fs, spec.PPN, spec.Test, spec.Sizes, itersFunc(spec.Iters))
		if err != nil {
			t.Fatalf("SweepOn: %v", err)
		}
		points[i] = PointResult{
			Stack:   st,
			Label:   fmt.Sprintf("sweep/%s/%s", spec.Test, fs.Name()),
			Results: res,
		}
	}
	return sweepTable(spec, points)
}

// TestServiceSweepMatchesFigures is the acceptance e2e: two tenants
// build fat-tree clusters and run the same Allreduce sweep
// concurrently; progress streams over SSE; both results are
// bit-identical to direct figures calls (and to each other — the
// overlap shares one cached simulation). A third tenant's invalid
// topology gets a 400 and the daemon keeps serving.
func TestServiceSweepMatchesFigures(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL

	type tenantRun struct {
		tenant, clusterName, jobID string
		events                     []JobEvent
		result                     JobResult
	}
	runs := []*tenantRun{
		{tenant: "alice", clusterName: "ft8"},
		{tenant: "bob", clusterName: "fabric"},
	}
	for _, tr := range runs {
		var rec clusterRec
		code := doJSON(t, "POST", base+"/v1/tenants/"+tr.tenant+"/clusters",
			clusterCreateReq{Name: tr.clusterName, Topology: fatTreeSpec()}, &rec)
		if code != http.StatusCreated {
			t.Fatalf("%s: cluster create: %d", tr.tenant, code)
		}
		if rec.Hosts != 8 || rec.NICs != 8 || rec.Switches != 4 {
			t.Fatalf("%s: cluster counts = %d hosts, %d NICs, %d switches", tr.tenant, rec.Hosts, rec.NICs, rec.Switches)
		}
	}

	// Submit both sweeps, then stream both SSE feeds concurrently
	// while the jobs overlap on the shared pool.
	var wg sync.WaitGroup
	for _, tr := range runs {
		var st JobStatus
		code := doJSON(t, "POST", base+"/v1/tenants/"+tr.tenant+"/jobs", sweepSpec(tr.clusterName), &st)
		if code != http.StatusAccepted {
			t.Fatalf("%s: submit: %d", tr.tenant, code)
		}
		if st.Spec.Test != "Allreduce" {
			t.Fatalf("%s: test not canonicalized: %q", tr.tenant, st.Spec.Test)
		}
		tr.jobID = st.ID
		wg.Add(1)
		go func(tr *tenantRun) {
			defer wg.Done()
			tr.events = sseEvents(t, base, tr.tenant, tr.jobID)
		}(tr)
	}
	wg.Wait()

	for _, tr := range runs {
		// SSE: strictly increasing seq, progress then exactly one
		// terminal done event with done == total.
		if len(tr.events) == 0 {
			t.Fatalf("%s: no SSE events", tr.tenant)
		}
		last := 0
		for _, ev := range tr.events {
			if ev.Seq <= last {
				t.Fatalf("%s: SSE seq not monotonic: %d after %d", tr.tenant, ev.Seq, last)
			}
			last = ev.Seq
		}
		term := tr.events[len(tr.events)-1]
		if term.Type != StateDone || term.Done != term.Total || term.Total != 2 {
			t.Fatalf("%s: terminal event = %+v", tr.tenant, term)
		}
		for _, ev := range tr.events[:len(tr.events)-1] {
			if ev.Type != "progress" {
				t.Fatalf("%s: non-progress event before terminal: %+v", tr.tenant, ev)
			}
		}

		st := waitJob(t, base, tr.tenant, tr.jobID)
		if st.State != StateDone {
			t.Fatalf("%s: job state %q (%s)", tr.tenant, st.State, st.Error)
		}
		if code := doJSON(t, "GET", base+"/v1/tenants/"+tr.tenant+"/jobs/"+tr.jobID+"/result", nil, &tr.result); code != 200 {
			t.Fatalf("%s: result: %d", tr.tenant, code)
		}
		if len(tr.result.Points) != 2 || tr.result.Table == nil {
			t.Fatalf("%s: result shape: %d points, table=%v", tr.tenant, len(tr.result.Points), tr.result.Table)
		}
		for _, p := range tr.result.Points {
			if len(p.Net.Hosts) != 8 || len(p.CPU) != 8 {
				t.Fatalf("%s: snapshot shape: %d net hosts, %d cpu hosts", tr.tenant, len(p.Net.Hosts), len(p.CPU))
			}
		}
	}

	// Bit-identical to the direct figures path, through JSON: float64
	// survives the JSON round trip exactly, so Table.Equal on the
	// decoded table is a bitwise check.
	want := expectedSweepTable(t, fatTreeSpec(), sweepSpec("ft8"), "Allreduce")
	if !runs[0].result.Table.Equal(want) {
		t.Errorf("alice's service table differs from the direct figures sweep\nservice: %s\ndirect:  %s",
			runs[0].result.Table.Render(), want.Render())
	}
	wantBob := expectedSweepTable(t, fatTreeSpec(), sweepSpec("fabric"), "Allreduce")
	if !runs[1].result.Table.Equal(wantBob) {
		t.Errorf("bob's service table differs from the direct figures sweep")
	}
	for i := range runs[0].result.Points {
		a, b := runs[0].result.Points[i], runs[1].result.Points[i]
		if len(a.Results) != len(b.Results) {
			t.Fatalf("tenants diverge: %d vs %d results", len(a.Results), len(b.Results))
		}
		for k := range a.Results {
			if a.Results[k] != b.Results[k] {
				t.Errorf("tenants diverge at point %d result %d: %+v vs %+v", i, k, a.Results[k], b.Results[k])
			}
		}
	}
	// The second tenant's identical sweep must have come from the
	// cache (single-flight or replay — either way, marked cached).
	cachedPoints := 0
	for _, tr := range runs {
		for _, p := range tr.result.Points {
			if p.Cached {
				cachedPoints++
			}
		}
	}
	if cachedPoints < 2 {
		t.Errorf("expected at least one tenant's points to be cache hits, got %d of 4", cachedPoints)
	}

	// Third tenant: invalid topology → 400, and the daemon still
	// serves.
	bad := TopologySpec{
		Hosts:  []HostSetSpec{{Name: "n", N: 3, Indexed: true}},
		Wiring: WiringSpec{Kind: "backtoback"},
	}
	var apiErr apiError
	if code := doJSON(t, "POST", base+"/v1/tenants/mallory/clusters",
		clusterCreateReq{Name: "bad", Topology: bad}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("invalid topology: got %d, want 400", code)
	}
	if !strings.Contains(apiErr.Error.Message, "BackToBack") {
		t.Errorf("error message %q does not name the invariant", apiErr.Error.Message)
	}
	var health map[string]any
	if code := doJSON(t, "GET", base+"/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz after 400: %d %v", code, health)
	}
}

// TestFigureJobMatchesSection: a figure-kind job returns exactly the
// section's rendered text.
func TestFigureJobMatchesSection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	var st JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", JobSpec{Kind: "figure", Figure: "micro"}, &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	fin := waitJob(t, base, "alice", st.ID)
	if fin.State != StateDone {
		t.Fatalf("state %q (%s)", fin.State, fin.Error)
	}
	var res JobResult
	if code := doJSON(t, "GET", base+"/v1/tenants/alice/jobs/"+st.ID+"/result", nil, &res); code != 200 {
		t.Fatalf("result: %d", code)
	}
	sec, _ := figures.SectionByName("micro")
	if want := sec.Render(false); res.Figure != want {
		t.Errorf("figure text differs:\nservice: %q\ndirect:  %q", res.Figure, want)
	}
}

// TestQuota: with quota 1, a second concurrent job gets 429; after
// the first finishes, submission works again.
func TestQuota(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Quota: 1})
	s.testJobGate = func() { <-gate }
	base := ts.URL

	spec := JobSpec{Kind: "figure", Figure: "micro"}
	var st JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	var apiErr apiError
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", spec, &apiErr); code != http.StatusTooManyRequests {
		t.Fatalf("second submit: got %d, want 429", code)
	}
	if !strings.Contains(apiErr.Error.Message, "quota") {
		t.Errorf("429 message %q does not mention the quota", apiErr.Error.Message)
	}
	// Another tenant is not affected by alice's quota.
	var st2 JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/bob/jobs", spec, &st2); code != http.StatusAccepted {
		t.Fatalf("bob's submit: %d", code)
	}
	// A result request while running is a 409.
	if code := doJSON(t, "GET", base+"/v1/tenants/alice/jobs/"+st.ID+"/result", nil, nil); code != http.StatusConflict {
		t.Fatalf("result while running: got %d, want 409", code)
	}
	close(gate)
	waitJob(t, base, "alice", st.ID)
	waitJob(t, base, "bob", st2.ID)
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", spec, nil); code != http.StatusAccepted {
		t.Fatalf("submit after quota freed: %d", code)
	}
}

// TestGracefulDrain: Shutdown refuses new jobs with 503, waits for
// the in-flight job, and its result stays fetchable afterwards.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{})
	s.testJobGate = func() { started <- struct{}{}; <-gate }
	base := ts.URL

	spec := JobSpec{Kind: "figure", Figure: "micro"}
	var st JobStatus
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-started // the job is running and parked on the gate

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()

	// Drain starts immediately, so a new submission is refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := doJSON(t, "POST", base+"/v1/tenants/bob/jobs", spec, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if code != http.StatusAccepted || time.Now().After(deadline) {
			t.Fatalf("submit during drain: got %d, want eventually 503", code)
		}
		// A 202 means drain had not started yet; the extra job also
		// parks on the gate and drains with the rest.
		time.Sleep(5 * time.Millisecond)
		<-started
	}

	close(gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	fin := waitJob(t, base, "alice", st.ID)
	if fin.State != StateDone {
		t.Fatalf("after drain: state %q (%s)", fin.State, fin.Error)
	}
	if code := doJSON(t, "GET", base+"/v1/tenants/alice/jobs/"+st.ID+"/result", nil, nil); code != 200 {
		t.Fatalf("result after drain: %d", code)
	}
}

// TestInvalidInputs covers the 4xx surface.
func TestInvalidInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	// A valid cluster to hang job-spec failures off.
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/clusters",
		clusterCreateReq{Name: "ok", Topology: fatTreeSpec()}, nil); code != http.StatusCreated {
		t.Fatalf("setup cluster: %d", code)
	}
	sweep := func(mut func(*JobSpec)) JobSpec {
		s := sweepSpec("ok")
		mut(&s)
		return s
	}
	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"duplicate cluster", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters",
				clusterCreateReq{Name: "ok", Topology: fatTreeSpec()}, nil)
		}, http.StatusConflict},
		{"backtoback host count", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters", clusterCreateReq{Name: "b", Topology: TopologySpec{
				Hosts:  []HostSetSpec{{Name: "n", N: 3, Indexed: true}},
				Wiring: WiringSpec{Kind: "backtoback"},
			}}, nil)
		}, http.StatusBadRequest},
		{"fattree zero spines", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters", clusterCreateReq{Name: "b", Topology: TopologySpec{
				Hosts:  []HostSetSpec{{Name: "n", N: 4, Indexed: true}},
				Wiring: WiringSpec{Kind: "fattree", LeafRadix: 2},
			}}, nil)
		}, http.StatusBadRequest},
		{"negative NIC count", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters", clusterCreateReq{Name: "b", Topology: TopologySpec{
				Hosts:  []HostSetSpec{{Name: "n", N: 2, Indexed: true, NICs: -1}},
				Wiring: WiringSpec{Kind: "backtoback"},
			}}, nil)
		}, http.StatusBadRequest},
		{"unknown wiring kind", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters", clusterCreateReq{Name: "b", Topology: TopologySpec{
				Hosts:  []HostSetSpec{{Name: "n", N: 2, Indexed: true}},
				Wiring: WiringSpec{Kind: "torus"},
			}}, nil)
		}, http.StatusBadRequest},
		{"bad cluster name", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/clusters",
				clusterCreateReq{Name: "no/slash", Topology: fatTreeSpec()}, nil)
		}, http.StatusBadRequest},
		{"bad tenant name", func() int {
			return doJSON(t, "GET", base+"/v1/tenants/no%20space/clusters", nil, nil)
		}, http.StatusBadRequest},
		{"unknown cluster", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Cluster = "ghost" }), nil)
		}, http.StatusNotFound},
		{"unknown test", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Test = "warp" }), nil)
		}, http.StatusBadRequest},
		{"no sizes", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Sizes = nil }), nil)
		}, http.StatusBadRequest},
		{"negative size", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Sizes = []int{-1} }), nil)
		}, http.StatusBadRequest},
		{"ppn out of range", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.PPN = 99 }), nil)
		}, http.StatusBadRequest},
		{"no stacks", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Stacks = nil }), nil)
		}, http.StatusBadRequest},
		{"unknown stack kind", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", sweep(func(s *JobSpec) { s.Stacks = []StackSpec{{Kind: "tcp"}} }), nil)
		}, http.StatusBadRequest},
		{"unknown figure", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", JobSpec{Kind: "figure", Figure: "fig99"}, nil)
		}, http.StatusBadRequest},
		{"unknown job kind", func() int {
			return doJSON(t, "POST", base+"/v1/tenants/alice/jobs", JobSpec{Kind: "quantum"}, nil)
		}, http.StatusBadRequest},
		{"unknown job", func() int {
			return doJSON(t, "GET", base+"/v1/tenants/alice/jobs/job-999999", nil, nil)
		}, http.StatusNotFound},
		{"other tenant's cluster invisible", func() int {
			return doJSON(t, "GET", base+"/v1/tenants/carol/clusters/ok", nil, nil)
		}, http.StatusNotFound},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, got, tc.want)
		}
	}
	// And the service still works after all of that.
	if code := doJSON(t, "GET", base+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
}

// TestClusterLifecycle: list, get, delete, and request-ID headers.
func TestClusterLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	if code := doJSON(t, "POST", base+"/v1/tenants/alice/clusters",
		clusterCreateReq{Name: "a", Topology: fatTreeSpec()}, nil); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var list []clusterRec
	if code := doJSON(t, "GET", base+"/v1/tenants/alice/clusters", nil, &list); code != 200 || len(list) != 1 {
		t.Fatalf("list: %d, %d clusters", code, len(list))
	}
	resp1, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp1.Body.Close()
	resp2, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	id1, id2 := resp1.Header.Get("X-Request-ID"), resp2.Header.Get("X-Request-ID")
	if id1 == "" || id1 == id2 {
		t.Errorf("request IDs not unique: %q, %q", id1, id2)
	}
	req, _ := http.NewRequest("DELETE", base+"/v1/tenants/alice/clusters/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if code := doJSON(t, "GET", base+"/v1/tenants/alice/clusters/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", code)
	}
}
