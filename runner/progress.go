package runner

import (
	"fmt"
	"io"
	"time"
)

// Progress is a completion snapshot delivered after each job.
type Progress struct {
	// Done and Total count completed and scheduled jobs of this Run.
	Done, Total int
	// Cached counts completions served from the cache.
	Cached int
	// Errs counts failed jobs so far.
	Errs int
	// Elapsed is the wall time since the Run started.
	Elapsed time.Duration
	// ETA estimates the remaining wall time from the mean pace of
	// the uncached completions so far. It is meaningful only when
	// ETAKnown is set; an unknown ETA is reported as the zero value.
	ETA time.Duration
	// ETAKnown reports whether ETA carries an estimate. It is false
	// while every completion so far was a cache hit but jobs are
	// still pending: those hits finish in microseconds and say
	// nothing about the pace of the uncached jobs still running, so
	// "ETA 0" there would wrongly promise "done now". Once a job has
	// actually simulated — or the run has finished — ETAKnown is true.
	ETAKnown bool
	// Label is the label of the job that just finished.
	Label string
}

// ProgressFunc receives completion snapshots. The pool serializes
// calls, so implementations need no locking of their own.
type ProgressFunc func(Progress)

// progressState accumulates per-Run completion counts.
type progressState struct {
	total  int
	done   int
	cached int
	errs   int
	start  time.Time
}

func (s *progressState) init(total int) {
	s.total = total
	s.start = time.Now()
}

func (s *progressState) step(r Result) Progress {
	s.done++
	if r.Cached {
		s.cached++
	}
	if r.Err != nil {
		s.errs++
	}
	elapsed := time.Since(s.start)
	var eta time.Duration
	etaKnown := true
	// Pace from uncached completions only: cache hits finish in
	// microseconds and would collapse the estimate to ~0 while real
	// simulations still run. (If the remaining jobs turn out to be
	// hits too, the sweep just beats the estimate.)
	switch real := s.done - s.cached; {
	case s.done == s.total:
		// Finished: ETA 0 is exact.
	case real > 0:
		eta = time.Duration(float64(elapsed) / float64(real) * float64(s.total-s.done))
	default:
		// Every completion so far was a cache hit with uncached jobs
		// still pending: no pace information at all.
		etaKnown = false
	}
	return Progress{
		Done: s.done, Total: s.total,
		Cached: s.cached, Errs: s.errs,
		Elapsed: elapsed, ETA: eta, ETAKnown: etaKnown,
		Label: r.Label,
	}
}

// WriterProgress returns a ProgressFunc that prints one status line
// per completion to w, e.g.
//
//	[ 7/63] 11% eta 12s  fig10/I-OAT/1MB
//
// An unknown ETA (only cache hits completed so far, see
// Progress.ETAKnown) renders as "--:--".
func WriterProgress(w io.Writer) ProgressFunc {
	return func(p Progress) {
		eta := "-"
		if !p.ETAKnown {
			eta = "--:--"
		} else if p.ETA > 0 {
			eta = p.ETA.Round(time.Second).String()
		}
		cached := ""
		if p.Cached > 0 {
			cached = fmt.Sprintf(" (%d cached)", p.Cached)
		}
		fmt.Fprintf(w, "[%*d/%d] %3.0f%% eta %-6s%s  %s\n",
			len(fmt.Sprint(p.Total)), p.Done, p.Total,
			float64(p.Done)/float64(p.Total)*100, eta, cached, p.Label)
	}
}
