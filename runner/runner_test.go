package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWorkerPoolSizing: a pool caps concurrency at Workers, defaults
// to GOMAXPROCS, and never spawns more workers than jobs.
func TestWorkerPoolSizing(t *testing.T) {
	if w := New(Options{}).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(Options{Workers: -3}).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("workers(-3) = %d, want GOMAXPROCS", w)
	}

	const workers, jobs = 3, 24
	p := New(Options{Workers: workers})
	var cur, peak atomic.Int32
	js := make([]Job, jobs)
	for i := range js {
		js[i] = Job{Label: "j", Run: func() (any, error) {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	p.Run(js...)
	if got := peak.Load(); got > workers {
		t.Errorf("observed %d concurrent jobs, pool capped at %d", got, workers)
	}
}

// TestNestedRunBounded: jobs that Run nested sweeps on the same pool
// stay within the pool-global bound (no Workers² blow-up) and never
// deadlock, because every Run caller works jobs itself.
func TestNestedRunBounded(t *testing.T) {
	const workers = 4
	p := New(Options{Workers: workers})
	var cur, peak atomic.Int32
	leaf := Job{Label: "leaf", Run: func() (any, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil, nil
	}}
	outer := make([]Job, 6)
	for i := range outer {
		outer[i] = Job{Label: "outer", Run: func() (any, error) {
			inner := make([]Job, 6)
			for j := range inner {
				inner[j] = leaf
			}
			return nil, FirstErr(p.Run(inner...))
		}}
	}
	if err := FirstErr(p.Run(outer...)); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("nested sweeps reached %d concurrent jobs, pool bound is %d", got, workers)
	}
}

// TestDeterministicOrdering: results come back indexed by job
// position regardless of completion order.
func TestDeterministicOrdering(t *testing.T) {
	p := New(Options{Workers: 8})
	const n = 40
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprint(i), Run: func() (any, error) {
			// Reverse-staggered sleeps so late jobs finish first.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return i * i, nil
		}}
	}
	for trial := 0; trial < 3; trial++ {
		rs := p.Run(jobs...)
		for i, r := range rs {
			if r.Index != i || r.Value.(int) != i*i {
				t.Fatalf("trial %d: result %d = {Index:%d Value:%v}, want {%d %d}",
					trial, i, r.Index, r.Value, i, i*i)
			}
		}
	}
}

// TestCacheHitMiss: a repeated key runs once; distinct keys run
// separately; keyless jobs never cache.
func TestCacheHitMiss(t *testing.T) {
	cache := NewCache()
	p := New(Options{Workers: 4, Cache: cache})
	var calls atomic.Int32
	job := func(key string) Job {
		return Job{Label: key, Key: key, Run: func() (any, error) {
			calls.Add(1)
			return "v:" + key, nil
		}}
	}
	rs := p.Run(job("a"), job("a"), job("b"), job("a"))
	if got := calls.Load(); got != 2 {
		t.Errorf("functions ran %d times, want 2 (keys a and b)", got)
	}
	var cached int
	for _, r := range rs {
		if r.Value.(string) != "v:"+r.Label {
			t.Errorf("job %q got %v", r.Label, r.Value)
		}
		if r.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Errorf("%d results cached, want 2", cached)
	}
	hits, misses := cache.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 2/2", hits, misses)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d keys, want 2", cache.Len())
	}

	// A later sweep reusing a key is a pure hit.
	rs = p.Run(job("b"))
	if !rs[0].Cached || calls.Load() != 2 {
		t.Errorf("second sweep recomputed key b (cached=%v calls=%d)", rs[0].Cached, calls.Load())
	}

	// Keyless jobs always run.
	calls.Store(0)
	nk := Job{Label: "nk", Run: func() (any, error) { calls.Add(1); return nil, nil }}
	p.Run(nk, nk)
	if calls.Load() != 2 {
		t.Errorf("keyless jobs ran %d times, want 2", calls.Load())
	}
}

// TestCacheSingleFlight: concurrent jobs with the same key coalesce
// onto one execution instead of racing.
func TestCacheSingleFlight(t *testing.T) {
	p := New(Options{Workers: 8, Cache: NewCache()})
	var calls atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: "same", Key: "same", Run: func() (any, error) {
			calls.Add(1)
			<-release // hold the computation so every worker piles onto the key
			return 42, nil
		}}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var rs []Result
	go func() { defer wg.Done(); rs = p.Run(jobs...) }()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("computation ran %d times under contention, want 1", calls.Load())
	}
	for _, r := range rs {
		if r.Err != nil || r.Value.(int) != 42 {
			t.Errorf("coalesced result = %+v", r)
		}
	}
}

// TestPanicCapture: a panicking job becomes a *PanicError on its own
// result; sibling jobs still complete.
func TestPanicCapture(t *testing.T) {
	p := New(Options{Workers: 2})
	rs := p.Run(
		Job{Label: "ok1", Run: func() (any, error) { return 1, nil }},
		Job{Label: "boom", Run: func() (any, error) { panic("testbed deadlocked") }},
		Job{Label: "ok2", Run: func() (any, error) { return 2, nil }},
	)
	if rs[0].Err != nil || rs[0].Value.(int) != 1 || rs[2].Err != nil || rs[2].Value.(int) != 2 {
		t.Fatalf("sibling jobs disturbed by panic: %+v", rs)
	}
	var pe *PanicError
	if !errors.As(rs[1].Err, &pe) {
		t.Fatalf("panic surfaced as %T (%v), want *PanicError", rs[1].Err, rs[1].Err)
	}
	if pe.Label != "boom" || pe.Value != "testbed deadlocked" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = {Label:%q Value:%v stack:%d bytes}", pe.Label, pe.Value, len(pe.Stack))
	}
	if err := FirstErr(rs); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("FirstErr = %v, want the boom job's error", err)
	}
	// Values panics on sweep errors (the figure-generator contract).
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Values did not panic on an errored sweep")
			}
		}()
		Values[int](rs)
	}()
}

// TestKeyCanonical: equal parts hash equal, different parts differ,
// and part boundaries matter.
func TestKeyCanonical(t *testing.T) {
	type cfg struct {
		IOAT bool
		Frag int
	}
	a := Key("imb", cfg{IOAT: true, Frag: 1024}, 2)
	b := Key("imb", cfg{IOAT: true, Frag: 1024}, 2)
	if a != b {
		t.Errorf("identical parts hashed differently: %s vs %s", a, b)
	}
	if a == Key("imb", cfg{IOAT: false, Frag: 1024}, 2) {
		t.Errorf("configs differing in one field collided")
	}
	if Key("ab", "c") == Key("a", "bc") {
		t.Errorf("part boundaries not separated")
	}
}

// TestProgress: the callback sees every completion in Done order,
// the final snapshot has no ETA, and cache hits don't drag the ETA
// estimate toward zero.
func TestProgress(t *testing.T) {
	var mu sync.Mutex
	var snaps []Progress
	p := New(Options{Workers: 4, Cache: NewCache(), Progress: func(pr Progress) {
		mu.Lock()
		snaps = append(snaps, pr)
		mu.Unlock()
	}})
	items := []int{5, 3, 8, 1, 9, 2}
	jobs := make([]Job, len(items))
	for i, it := range items {
		it := it
		jobs[i] = Job{
			Label: fmt.Sprintf("sq/%d", it),
			Key:   Key("sq", it),
			Run:   func() (any, error) { time.Sleep(time.Millisecond); return it * it, nil },
		}
	}
	for i, v := range Values[int](p.Run(jobs...)) {
		if v != items[i]*items[i] {
			t.Errorf("out[%d] = %d, want %d", i, v, items[i]*items[i])
		}
	}
	if len(snaps) != len(items) {
		t.Fatalf("progress fired %d times, want %d", len(snaps), len(items))
	}
	for i, s := range snaps {
		if s.Done != i+1 || s.Total != len(items) {
			t.Errorf("snapshot %d = %d/%d, want %d/%d", i, s.Done, s.Total, i+1, len(items))
		}
	}
	if last := snaps[len(snaps)-1]; last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}

	// A sweep that is all cache hits except one slow real job must
	// not report a near-zero ETA off the instant hits: pace comes
	// from uncached completions only.
	snaps = nil
	var slow []Job
	for i := 0; i < 5; i++ {
		slow = append(slow, jobs[0]) // cache hits
	}
	slow = append(slow, Job{Label: "real", Key: Key("real"), Run: func() (any, error) {
		time.Sleep(20 * time.Millisecond)
		return 0, nil
	}})
	p.Run(slow...)
	for _, s := range snaps {
		if s.Done < s.Total && s.Cached == s.Done && s.ETA != 0 {
			t.Errorf("ETA %v estimated from cache hits alone", s.ETA)
		}
	}
}

// TestETAUnknownOnCachedPrefix: while every completion so far was a
// cache hit and uncached jobs are still pending, the snapshot must
// say "ETA unknown" (ETAKnown=false, zero ETA) instead of the
// misleading "ETA 0 = done now"; the first real completion and the
// final snapshot flip ETAKnown back on.
func TestETAUnknownOnCachedPrefix(t *testing.T) {
	var s progressState
	s.init(3)

	snap := s.step(Result{Cached: true, Label: "hit"})
	if snap.ETAKnown || snap.ETA != 0 {
		t.Errorf("all-cached prefix: ETAKnown=%v ETA=%v, want unknown with zero ETA",
			snap.ETAKnown, snap.ETA)
	}
	var buf strings.Builder
	WriterProgress(&buf)(snap)
	if !strings.Contains(buf.String(), "--:--") {
		t.Errorf("unknown ETA rendered as %q, want it to contain --:--", buf.String())
	}

	snap = s.step(Result{Label: "real"})
	if !snap.ETAKnown {
		t.Errorf("after an uncached completion ETAKnown=false, want pace-based estimate")
	}

	snap = s.step(Result{Cached: true, Label: "hit"})
	if !snap.ETAKnown || snap.ETA != 0 {
		t.Errorf("final snapshot: ETAKnown=%v ETA=%v, want known zero (done)", snap.ETAKnown, snap.ETA)
	}

	// A run that completes entirely from the cache was never
	// "unknown" at its end: done == total is exact.
	var all progressState
	all.init(1)
	if snap = all.step(Result{Cached: true}); !snap.ETAKnown || snap.ETA != 0 {
		t.Errorf("fully cached run final snapshot: ETAKnown=%v ETA=%v, want known zero",
			snap.ETAKnown, snap.ETA)
	}
}

// TestValuesErr: the error-returning unwrap fails cleanly — on job
// errors and on a value type mismatch — where Values would panic.
func TestValuesErr(t *testing.T) {
	p := New(Options{Workers: 2})

	rs := p.Run(
		Job{Label: "a", Run: func() (any, error) { return 1, nil }},
		Job{Label: "b", Run: func() (any, error) { return 2, nil }},
	)
	vals, err := ValuesErr[int](rs)
	if err != nil || len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("ValuesErr = %v, %v, want [1 2]", vals, err)
	}

	// A job error comes back as an error, labelled with the job.
	rs = p.Run(Job{Label: "bad", Run: func() (any, error) { return nil, errors.New("boom") }})
	if _, err = ValuesErr[int](rs); err == nil || !strings.Contains(err.Error(), "bad") {
		t.Errorf("errored sweep: err = %v, want it to name job bad", err)
	}

	// A captured panic is an error too, not a daemon-killer.
	rs = p.Run(Job{Label: "panics", Run: func() (any, error) { panic("deadlock") }})
	if _, err = ValuesErr[int](rs); err == nil {
		t.Errorf("panicking sweep: err = nil, want captured *PanicError")
	}

	// A type-assert mismatch fails cleanly instead of panicking.
	rs = p.Run(Job{Label: "str", Run: func() (any, error) { return "not an int", nil }})
	if _, err = ValuesErr[int](rs); err == nil || !strings.Contains(err.Error(), "string") {
		t.Errorf("mismatched value type: err = %v, want a type error naming string", err)
	}
}

// TestRunWithProgress: the per-Run sink sees every completion of its
// own Run — independent of (and in addition to) the pool-wide
// callback.
func TestRunWithProgress(t *testing.T) {
	var mu sync.Mutex
	var poolSnaps, sinkSnaps []Progress
	p := New(Options{Workers: 2, Progress: func(pr Progress) {
		mu.Lock()
		poolSnaps = append(poolSnaps, pr)
		mu.Unlock()
	}})
	jobs := make([]Job, 5)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprint(i), Run: func() (any, error) { return i, nil }}
	}
	p.RunWithProgress(func(pr Progress) {
		// The pool serializes callbacks; no locking needed here.
		sinkSnaps = append(sinkSnaps, pr)
	}, jobs...)
	if len(sinkSnaps) != len(jobs) {
		t.Fatalf("sink saw %d snapshots, want %d", len(sinkSnaps), len(jobs))
	}
	for i, s := range sinkSnaps {
		if s.Done != i+1 || s.Total != len(jobs) {
			t.Errorf("sink snapshot %d = %d/%d, want %d/%d", i, s.Done, s.Total, i+1, len(jobs))
		}
	}
	mu.Lock()
	if len(poolSnaps) != len(jobs) {
		t.Errorf("pool-wide callback saw %d snapshots, want %d (sink must not replace it)",
			len(poolSnaps), len(jobs))
	}
	mu.Unlock()

	// A nil sink is exactly Run.
	if rs := p.RunWithProgress(nil, jobs...); len(rs) != len(jobs) {
		t.Errorf("nil-sink run returned %d results, want %d", len(rs), len(jobs))
	}
}
