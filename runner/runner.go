// Package runner is the concurrent experiment-orchestration layer:
// it shards independent simulation runs across a bounded worker pool
// so a figure sweep uses every core instead of one.
//
// Every point of the paper's evaluation — one (stack, message size,
// process count) combination — builds its own isolated testbed and
// sim.Engine, so points never share mutable state and running them
// concurrently is safe by construction. The runner exploits that:
//
//   - a Pool executes Jobs on at most Workers goroutines (default
//     GOMAXPROCS) and returns Results indexed by job position, so the
//     output of a parallel sweep is byte-identical to a serial one;
//   - a panicking job is captured as a *PanicError on its Result
//     instead of killing the whole sweep;
//   - Jobs carrying a cache Key (see Key) share an in-memory result
//     cache with single-flight semantics, so sweeps that repeat a
//     configuration (Figures 3 and 8 share three curves) simulate it
//     once;
//   - an optional Progress callback reports completion counts and an
//     ETA while a long sweep runs.
//
// The figures, imb and cmd packages all run on the shared Default
// pool; tests construct private pools to pin the worker count.
package runner

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one independent unit of work: typically "build a fresh
// testbed, run one benchmark point, return its measurements".
type Job struct {
	// Label names the job in progress output and panic reports.
	Label string
	// Key, when non-empty, caches the job's outcome in the pool's
	// cache under this key (see Key for canonical hashing). Jobs with
	// the same Key must be equivalent: the first one to run supplies
	// the result for all of them, and the cached value is shared, so
	// callers must treat it as immutable.
	Key string
	// Run produces the job's value. A panic inside Run is captured as
	// a *PanicError instead of propagating.
	Run func() (any, error)
}

// Result is the outcome of one Job, reported at the job's index so
// parallel and serial sweeps order results identically.
type Result struct {
	// Index is the job's position in the Run call.
	Index int
	// Label echoes the job's label.
	Label string
	// Value is what Run returned (nil on error).
	Value any
	// Err is the job's error; a captured panic surfaces as a
	// *PanicError here.
	Err error
	// Cached reports that Value came from the pool's cache (or from
	// another in-flight job with the same key) without running this
	// job's Run.
	Cached bool
	// Elapsed is the wall time the job spent running (zero for pure
	// cache hits).
	Elapsed time.Duration
}

// PanicError is a panic captured inside a Job.
type PanicError struct {
	// Label is the panicking job's label.
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %q panicked: %v", e.Label, e.Value)
}

// Options configures a Pool.
type Options struct {
	// Workers bounds the number of jobs running concurrently;
	// values < 1 select runtime.GOMAXPROCS(0).
	Workers int
	// Cache backs Key-carrying jobs; nil disables caching.
	Cache *Cache
	// Progress, when non-nil, is invoked after every job completion
	// (from the completing goroutine; the pool serializes calls).
	Progress ProgressFunc
}

// Pool executes jobs on a bounded set of goroutines. The bound is
// pool-global: helper goroutines are admitted by a shared semaphore
// holding Workers-1 tokens, and every Run caller additionally
// processes jobs on its own goroutine — whether or not helpers are
// available — so a job that itself Runs a nested sweep on the same
// pool makes progress even with the semaphore exhausted, and nesting
// can never deadlock or multiply concurrency. The precise guarantee
// is therefore Workers-1 helpers plus one goroutine per concurrent
// top-level Run call: a single caller (however deeply its jobs nest)
// never exceeds Workers running jobs, while N goroutines calling Run
// concurrently can reach N+Workers-1. Callers who need a hard global
// bound should funnel their jobs through one Run call.
type Pool struct {
	workers  int
	sem      chan struct{} // admission tokens for helper goroutines
	cache    *Cache
	progress ProgressFunc
	progMu   sync.Mutex // serializes progress callbacks only
}

// New builds a pool from opts.
func New(opts Options) *Pool {
	w := opts.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers: w,
		// The Run caller itself is one worker; helpers take the rest.
		sem:      make(chan struct{}, w-1),
		cache:    opts.Cache,
		progress: opts.Progress,
	}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Cache returns the pool's cache (nil if caching is disabled).
func (p *Pool) Cache() *Cache { return p.cache }

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared process-wide pool: GOMAXPROCS workers
// and a shared cache, with progress on stderr when the
// OMXSIM_PROGRESS environment variable is set. The figures, imb and
// cmd packages all sweep on this pool, so figures that share curves
// (e.g. Figures 3 and 8) simulate each shared configuration once per
// process.
func Default() *Pool {
	defaultOnce.Do(func() {
		opts := Options{Cache: NewCache()}
		if os.Getenv("OMXSIM_PROGRESS") != "" {
			opts.Progress = WriterProgress(os.Stderr)
		}
		defaultPool = New(opts)
	})
	return defaultPool
}

// Run executes jobs on the default pool.
func Run(jobs ...Job) []Result { return Default().Run(jobs...) }

// Run executes the jobs, at most p.Workers() at a time pool-wide,
// and returns one Result per job in job order. It blocks until every
// job has finished; job panics are captured per Result, never
// propagated. The calling goroutine works through jobs itself and
// helper goroutines join only while the pool-global bound allows, so
// nested Run calls shrink to serial execution instead of multiplying
// concurrency.
func (p *Pool) Run(jobs ...Job) []Result { return p.RunWithProgress(nil, jobs...) }

// RunWithProgress is Run with an injectable per-call progress sink:
// sink (when non-nil) receives every completion snapshot of this Run,
// in addition to the pool-wide Options.Progress. Callbacks are
// serialized pool-wide, so neither sink needs locking of its own.
// This is the service path — omxsimd streams one tenant job's
// progress to its SSE subscribers while other jobs share the pool —
// whereas the pool-wide callback remains the CLI convenience.
func (p *Pool) RunWithProgress(sink ProgressFunc, jobs ...Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var (
		next int64
		wg   sync.WaitGroup
		prog progressState
	)
	prog.init(len(jobs))
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= len(jobs) {
				return
			}
			results[i] = p.runOne(i, jobs[i])
			if p.progress != nil || sink != nil {
				p.progMu.Lock()
				snap := prog.step(results[i])
				if p.progress != nil {
					p.progress(snap)
				}
				if sink != nil {
					sink(snap)
				}
				p.progMu.Unlock()
			}
		}
	}
	// Admit up to len(jobs)-1 helpers, each holding a pool token for
	// its lifetime; stop the moment the pool is saturated.
admit:
	for h := 0; h < len(jobs)-1; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				work()
			}()
		default:
			break admit
		}
	}
	work() // the caller is always a worker
	wg.Wait()
	return results
}

// runOne executes a single job, consulting the cache when the job
// carries a key.
func (p *Pool) runOne(i int, j Job) Result {
	res := Result{Index: i, Label: j.Label}
	start := time.Now()
	if p.cache != nil && j.Key != "" {
		v, err, cached := p.cache.do(j.Key, func() (any, error) { return capture(j) })
		res.Value, res.Err, res.Cached = v, err, cached
		if !cached {
			res.Elapsed = time.Since(start)
		}
		return res
	}
	res.Value, res.Err = capture(j)
	res.Elapsed = time.Since(start)
	return res
}

// capture runs the job body, converting a panic into a *PanicError.
func capture(j Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: j.Label, Value: r, Stack: stack()}
		}
	}()
	return j.Run()
}

func stack() []byte {
	buf := make([]byte, 64<<10)
	return buf[:runtime.Stack(buf, false)]
}

// FirstErr returns the first non-nil error among the results, wrapped
// with its job label, or nil.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("runner: job %d (%s): %w", r.Index, r.Label, r.Err)
		}
	}
	return nil
}

// Values unwraps every result value as T, in job order, panicking on
// the first job error — the convenience path for sweeps whose call
// sites (the figure generators) have no error returns.
func Values[T any](results []Result) []T {
	if err := FirstErr(results); err != nil {
		panic(err)
	}
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.Value.(T)
	}
	return out
}

// ValuesErr unwraps every result value as T, in job order, failing
// cleanly where Values would panic: a job error (including captured
// panics) or a value of the wrong dynamic type comes back as an error
// instead. This is the path every long-running caller — omxsimd job
// completion — must use: tenant input reaching a sweep must never be
// able to kill the daemon.
func ValuesErr[T any](results []Result) ([]T, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i, r := range results {
		v, ok := r.Value.(T)
		if !ok {
			return nil, fmt.Errorf("runner: job %d (%s): value is %T, not %T",
				r.Index, r.Label, r.Value, out[i])
		}
		out[i] = v
	}
	return out, nil
}
