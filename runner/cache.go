package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Cache is an in-memory result cache with single-flight semantics:
// the first job to arrive at a key runs and every later (or
// concurrent) job with the same key waits for and shares its outcome.
// Errors and captured panics are cached alongside values, so a failed
// configuration fails identically on every sweep that repeats it.
//
// Cached values are shared between callers; treat them as immutable.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	done chan struct{}
	v    any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// do returns the cached outcome for key, running fn to produce it if
// this is the first request. cached reports whether fn was skipped
// (including waiting on another in-flight computation of the key).
func (c *Cache) do(key string, fn func() (any, error)) (v any, err error, cached bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.v, e.err, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	e.v, e.err = fn()
	close(e.done)
	return e.v, e.err, false
}

// Stats reports completed-lookup counters: hits counts requests
// served from (or coalesced onto) an existing entry, misses counts
// requests that ran their function.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of distinct keys ever computed (including
// in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Key builds a canonical cache key by hashing the Go-syntax
// representation of each part. Parts should be plain data — strings,
// numbers, bools, slices and scalar-field structs such as
// openmx.Config — whose %#v rendering is deterministic; maps (whose
// iteration order is random) must not appear in any part.
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%#v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
