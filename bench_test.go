package omxsim

// One benchmark per table/figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each
// reports the figure's headline values through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation and prints the numbers EXPERIMENTS.md
// records. The simulations are deterministic: variance across b.N
// iterations is zero by construction.
//
// The figure generators shard their independent points across the
// process-wide runner pool and cache repeated configurations, so
// iterations after the first measure cache lookups, not simulations
// — the reported metrics are unaffected (the cache returns the same
// deterministic values). The BenchmarkIMBSweep* pair at the bottom
// benchmarks the sweep machinery itself on uncached private pools,
// serial versus parallel.

import (
	"fmt"
	"testing"

	"omxsim/cluster"
	"omxsim/figures"
	"omxsim/imb"
	"omxsim/metrics"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
)

func report(b *testing.B, t *metrics.Table, series string, atBytes float64, metric string) {
	b.Helper()
	s := t.Get(series)
	if s == nil {
		b.Fatalf("series %q missing", series)
	}
	v, ok := s.At(atBytes)
	if !ok {
		b.Fatalf("series %q has no point at %v", series, atBytes)
	}
	b.ReportMetric(v, metric)
}

// BenchmarkMicroNumbers regenerates the Section IV-A microbenchmarks
// (submission cost, copy rates, offload break-even sizes).
func BenchmarkMicroNumbers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := figures.MicroNumbers()
		b.ReportMetric(m.SubmitNs, "submit-ns")
		b.ReportMetric(m.MemcpyColdGiBps, "memcpy-GiB/s")
		b.ReportMetric(m.IOAT4kGiBps, "ioat4k-GiB/s")
		b.ReportMetric(float64(m.BreakEvenColdB), "breakeven-B")
	}
}

// BenchmarkFig3 regenerates Figure 3 (ping-pong: MX vs Open-MX vs the
// no-BH-copy prediction) and reports the 4 MiB points.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Fig3()
		report(b, t, "MX", 4<<20, "MX-MiB/s")
		report(b, t, "Open-MX", 4<<20, "OMX-MiB/s")
		report(b, t, "Open-MX ignoring BH receive copy", 4<<20, "nocopy-MiB/s")
	}
}

// BenchmarkFig7 regenerates Figure 7 (memcpy vs I/OAT by chunk size)
// and reports the 1 MiB streaming rates.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Fig7()
		report(b, t, "I/OAT Copy - 4kB chunks (page)", 1<<20, "ioat4k-MiB/s")
		report(b, t, "Memcpy - 4kB chunks (page)", 1<<20, "memcpy4k-MiB/s")
		report(b, t, "I/OAT Copy - 256B chunks", 1<<20, "ioat256-MiB/s")
	}
}

// BenchmarkFig8 regenerates Figure 8 (ping-pong with I/OAT receive
// offload) and reports the 4 MiB points.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Fig8()
		report(b, t, "Open-MX with DMA copy in BH receive", 4<<20, "ioat-MiB/s")
		report(b, t, "Open-MX", 4<<20, "plain-MiB/s")
	}
}

// BenchmarkDCA regenerates the memory-hierarchy sweep and reports the
// 256 kB same-core goodput of the memcpy, I/OAT and DCA receive paths
// (the warm-consumer cells the figure's acceptance test pins).
func BenchmarkDCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := figures.DCASweep()
		for _, p := range pts {
			if p.Place == "same-core" && p.Bytes == 256<<10 {
				switch p.Mode {
				case "memcpy":
					b.ReportMetric(p.GoodputMiBps, "memcpy-MiB/s")
				case "I/OAT":
					b.ReportMetric(p.GoodputMiBps, "ioat-MiB/s")
				case "DCA":
					b.ReportMetric(p.GoodputMiBps, "dca-MiB/s")
				}
			}
		}
	}
}

// BenchmarkFig9 regenerates Figure 9 (receive-side CPU usage) and
// reports the 16 MiB totals.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mem, ioat := figures.Fig9()
		b.ReportMetric(mem[len(mem)-1].Total(), "memcpy-CPU%")
		b.ReportMetric(ioat[len(ioat)-1].Total(), "ioat-CPU%")
	}
}

// BenchmarkFig10 regenerates Figure 10 (shared-memory ping-pong) and
// reports the 16 MiB points of the three curves.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Fig10()
		report(b, t, "Memcpy on the same dual-core subchip", 16<<20, "sameL2-MiB/s")
		report(b, t, "Memcpy between different processor sockets", 16<<20, "xsocket-MiB/s")
		report(b, t, "I/OAT offloaded synchronous copy", 16<<20, "ioat-MiB/s")
	}
}

// BenchmarkFig11 regenerates Figure 11 (IMB PingPong with I/OAT and
// regcache on/off) and reports the 16 MiB points.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.Fig11()
		report(b, t, "MX", 16<<20, "MX-MiB/s")
		report(b, t, "Open-MX I/OAT", 16<<20, "ioat-MiB/s")
		report(b, t, "Open-MX", 16<<20, "plain-MiB/s")
		report(b, t, "Open-MX w/o regcache", 16<<20, "noRC-MiB/s")
	}
}

// BenchmarkFig12_128k and BenchmarkFig12_4M regenerate the four panels
// of Figure 12 (all IMB tests normalized to MXoE) and report the
// per-panel averages.
func BenchmarkFig12_128k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ppn := range []int{1, 2} {
			p := figures.Fig12(128<<10, ppn)
			omx, ioat := p.Averages()
			suffix := "1ppn"
			if ppn == 2 {
				suffix = "2ppn"
			}
			b.ReportMetric(omx, "omx-"+suffix+"-%")
			b.ReportMetric(ioat, "ioat-"+suffix+"-%")
		}
	}
}

func BenchmarkFig12_4M(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ppn := range []int{1, 2} {
			p := figures.Fig12(4<<20, ppn)
			omx, ioat := p.Averages()
			suffix := "1ppn"
			if ppn == 2 {
				suffix = "2ppn"
			}
			b.ReportMetric(omx, "omx-"+suffix+"-%")
			b.ReportMetric(ioat, "ioat-"+suffix+"-%")
		}
	}
}

// BenchmarkNASIS regenerates the Section IV-D NAS IS observation.
func BenchmarkNASIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := figures.NASIS(1<<16, 2)
		var omx, ioat float64
		for _, r := range rs {
			switch r.Stack {
			case "Open-MX":
				omx = r.TimeMs
			case "Open-MX I/OAT":
				ioat = r.TimeMs
			}
		}
		b.ReportMetric(omx, "omx-ms")
		b.ReportMetric(ioat, "ioat-ms")
		b.ReportMetric((omx/ioat-1)*100, "gain-%")
	}
}

// BenchmarkColl regenerates the collective-latency figure (I/OAT
// on/off at 4–16 processes over the switch topology) and reports the
// 1 MB Alltoall and Allreduce points of the largest world.
func BenchmarkColl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs := figures.Coll()
		// Tables follow figures.CollTests() order.
		report(b, tabs[0], "Open-MX I/OAT, 16 procs", 1<<20, "allreduce16-us")
		report(b, tabs[1], "Open-MX, 16 procs", 1<<20, "a2a16-us")
		report(b, tabs[1], "Open-MX I/OAT, 16 procs", 1<<20, "a2a16-ioat-us")
	}
}

// BenchmarkAvail regenerates the CPU-availability sweep, reporting
// the 512 kB remote overlap achieved with and without offload.
func BenchmarkAvail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := figures.AvailSweep()
		for _, p := range pts {
			if p.Place != "remote" || p.Bytes != 512<<10 {
				continue
			}
			switch p.Mode {
			case "memcpy":
				b.ReportMetric(p.OverlapPct, "memcpy-overlap-%")
			case "I/OAT":
				b.ReportMetric(p.OverlapPct, "ioat-overlap-%")
			}
		}
	}
}

// BenchmarkMultiNIC regenerates the link-aggregation sweep, reporting
// the 2 MB goodput at 1 and 4 NICs with the per-NIC pull window (the
// scaling headline) and at 4 NICs with the fixed window (the
// plateau).
func BenchmarkMultiNIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := figures.MultiNICSweep()
		for _, p := range pts {
			if p.Mode != "memcpy" || p.Bytes != 2<<20 {
				continue
			}
			switch {
			case p.Window == "per-NIC" && p.NICs == 1:
				b.ReportMetric(p.GoodputMiBps, "1nic-MiB/s")
			case p.Window == "per-NIC" && p.NICs == 4:
				b.ReportMetric(p.GoodputMiBps, "4nic-MiB/s")
			case p.Window == "fixed" && p.NICs == 4:
				b.ReportMetric(p.GoodputMiBps, "4nic-fixed-MiB/s")
			}
		}
	}
}

// BenchmarkAdaptive regenerates the adaptive-vs-static sweep,
// reporting the lossy headline (5% loss, 1 NIC, memcpy: adaptive vs
// the best static policy) and the worst adaptive/best-static goodput
// ratio across the whole grid (the figure's ≥0.90 acceptance bar).
func BenchmarkAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := figures.AdaptiveSweep()
		type cell struct{ best, adaptive float64 }
		grid := map[string]*cell{}
		for _, p := range pts {
			k := fmt.Sprintf("%s/%g/%d", p.Mode, p.LossRate, p.NICs)
			c := grid[k]
			if c == nil {
				c = &cell{}
				grid[k] = c
			}
			if p.Policy == "adaptive" {
				c.adaptive = p.GoodputMiBps
			} else if p.GoodputMiBps > c.best {
				c.best = p.GoodputMiBps
			}
			if p.Mode == "memcpy" && p.LossRate == 0.05 && p.NICs == 1 && p.Policy == "adaptive" {
				b.ReportMetric(p.GoodputMiBps, "lossy1nic-MiB/s")
			}
		}
		minRatio := 0.0
		for _, c := range grid {
			if r := c.adaptive / c.best; minRatio == 0 || r < minRatio {
				minRatio = r
			}
		}
		b.ReportMetric(minRatio, "min-adv/best")
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

func BenchmarkAblationMinFrag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.AblateMinFrag()
		report(b, t, "Open-MX I/OAT", 1024, "frag1k-MiB/s")
		report(b, t, "Open-MX I/OAT", 16384, "frag16k-MiB/s")
	}
}

func BenchmarkAblationPullWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.AblatePullWindow()
		report(b, t, "8 frags/block", 1, "1blk-MiB/s")
		report(b, t, "8 frags/block", 2, "2blk-MiB/s")
	}
}

func BenchmarkAblationIRQSteering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := figures.AblateIRQSteering()
		report(b, t, "Open-MX", 0, "dedicated-MiB/s")
		report(b, t, "Open-MX", 1, "shared-MiB/s")
	}
}

// BenchmarkTimeline regenerates the Figure 5/6 traces (cost sanity
// for the tracing hooks).
func BenchmarkTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = figures.Timeline(false)
		_ = figures.Timeline(true)
	}
}

// --- Sweep machinery ---

// sweepPoints builds the (stack, size, ppn) matrix of Figure 11/12
// style runs as independent imb sweep points.
func sweepPoints() []imb.Point {
	stacks := []figures.Stack{
		{Kind: "mxoe", MXRegCache: true},
		{Kind: "openmx", OMX: openmx.Config{RegCache: true}},
		{Kind: "openmx", OMX: openmx.Config{RegCache: true, IOAT: true, IOATShm: true}},
	}
	var points []imb.Point
	for _, s := range stacks {
		for _, size := range []int{64 << 10, 1 << 20} {
			for _, ppn := range []int{1, 2} {
				s, size, ppn := s, size, ppn
				points = append(points, imb.Point{
					Name:  fmt.Sprintf("%s/%d/%dppn", s.Name(), size, ppn),
					Build: func() (*cluster.Cluster, *mpi.World) { return figures.Testbed(s, ppn) },
					Test:  "PingPong",
					Sizes: []int{size},
					Iters: func(int) int { return 3 },
				})
			}
		}
	}
	return points
}

// benchSweep runs the point matrix on an uncached pool of the given
// width, so b.N iterations re-simulate every point and the serial and
// parallel benchmarks compare honestly.
func benchSweep(b *testing.B, workers int) {
	points := sweepPoints()
	for i := 0; i < b.N; i++ {
		pool := runner.New(runner.Options{Workers: workers})
		if _, err := imb.Sweep(pool, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIMBSweepSerial and BenchmarkIMBSweepParallel time the same
// 12-point (stack, size, ppn) matrix on one worker versus GOMAXPROCS
// workers; their ratio is the wall-clock speedup the runner buys on
// this host.
func BenchmarkIMBSweepSerial(b *testing.B)   { benchSweep(b, 1) }
func BenchmarkIMBSweepParallel(b *testing.B) { benchSweep(b, 0) }
