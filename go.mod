module omxsim

go 1.22
