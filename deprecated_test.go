package omxsim

// The deprecated-API gate the fast CI job runs: the old Link*/Switch*
// network-option aliases in cluster/net.go survive for external
// callers, but no in-repo code or documentation may use them — the
// NetOption vocabulary (Queue, Latency, Impair and friends) is the
// single way the repository spells network options. A new use
// anywhere outside the alias definitions fails this test.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// deprecatedNetAliases matches any use of the deprecated alias names.
// Word-bounded, so e.g. the replacement Queue/Latency/Impair names and
// identifiers that merely contain "LinkQueue" as a substring of a
// longer word do not trip it.
var deprecatedNetAliases = regexp.MustCompile(
	`\b(LinkOption|SwitchOption|LinkQueue|SwitchQueue|SwitchImpair|SwitchLatency)\b`)

// deprecatedAliasExempt lists the only files allowed to mention the
// alias names: their definitions and the historical changelog.
var deprecatedAliasExempt = map[string]bool{
	filepath.Join("cluster", "net.go"): true, // the Deprecated: definitions
	"CHANGES.md":                       true, // PR history quotes old names
	"deprecated_test.go":               true, // this gate
}

func TestNoDeprecatedNetOptionAliases(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" ||
				(strings.HasPrefix(name, ".") && path != ".") {
				return filepath.SkipDir
			}
			return nil
		}
		ext := filepath.Ext(path)
		if (ext != ".go" && ext != ".md") || deprecatedAliasExempt[path] {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := deprecatedNetAliases.FindString(line); m != "" {
				t.Errorf("%s:%d: uses deprecated alias %s (use the NetOption vocabulary: Queue/Latency/Impair)",
					path, i+1, m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
