// Package platform holds the calibrated hardware and kernel cost
// parameters that drive the simulation.
//
// The default parameter set, Clovertown, models the paper's testbed:
// two quad-core 2.33 GHz Xeon E5345 processors (each socket is two
// dual-core "subchips" sharing a 4 MiB L2), an Intel 5000X chipset with
// an I/OAT DMA engine, and Myri-10G NICs used in native 10 Gbit/s
// Ethernet mode with the myri10ge driver, back to back without a
// switch, on Linux 2.6.23.
//
// Every constant is either taken directly from the paper's Section IV-A
// microbenchmarks or calibrated so that those microbenchmarks come out
// right; DESIGN.md section 5 records the derivations.
package platform

// Rate is a data rate in bytes per simulated nanosecond (i.e. GB/s).
type Rate float64

// Common rate constructors.
const (
	kib = 1024.0
	mib = 1024.0 * 1024.0
	gib = 1024.0 * 1024.0 * 1024.0
)

// GiBps converts gibibytes-per-second into a Rate.
func GiBps(v float64) Rate { return Rate(v * gib / 1e9) }

// MiBps converts mebibytes-per-second into a Rate.
func MiBps(v float64) Rate { return Rate(v * mib / 1e9) }

// InGiBps reports the rate in GiB/s (for display).
func (r Rate) InGiBps() float64 { return float64(r) * 1e9 / gib }

// InMiBps reports the rate in MiB/s (for display).
func (r Rate) InMiBps() float64 { return float64(r) * 1e9 / mib }

// Platform bundles every cost-model parameter. Fields are grouped per
// modelled subsystem. All times are in nanoseconds, all rates in
// bytes/ns.
type Platform struct {
	// ---- CPU / topology ----

	// Sockets and CoresPerSocket describe the host. Cores per L2
	// domain is fixed at 2 (Clovertown subchips).
	Sockets        int
	CoresPerSocket int

	// SyscallCost is the entry+exit cost of a system call (the paper
	// notes ~100 ns on recent Intel processors).
	SyscallCost int64

	// ---- Memory system ----

	// L1Size and L2Size are per-core and per-subchip cache capacities.
	L1Size int64
	L2Size int64

	// MemcpyCallCost is the fixed per-memcpy-call overhead.
	MemcpyCallCost int64

	// MemcpyColdRate is the sustained processor copy rate when neither
	// source nor destination is cached (paper: ~1.6 GiB/s).
	MemcpyColdRate Rate
	// MemcpyL2Rate applies when the data is warm in a reachable L2
	// (paper: up to 6 GiB/s for the shared-L2 ping-pong of Fig. 10).
	MemcpyL2Rate Rate
	// MemcpyL1Rate applies for data resident in L1 (paper: memcpy "may
	// reach up to 12 GiB/s" if the data fits in the cache).
	MemcpyL1Rate Rate
	// MemcpyHalfWarmRate applies when exactly one side of the copy is
	// warm in a reachable L2 (e.g. copying a cold skbuff into the
	// constantly reused, cache-resident receive ring).
	MemcpyHalfWarmRate Rate
	// MemcpyCrossSocketCold/Warm apply when source and destination
	// belong to processes on different sockets (FSB-era coherence
	// traffic; Fig. 10 shows ~1.2 GiB/s — Clovertown has no fast
	// cache-to-cache path, so even the "warm" case barely beats RAM).
	MemcpyCrossSocketCold Rate
	MemcpyCrossSocketWarm Rate
	// MemcpyBigRate caps any copy whose size exceeds half the L2: the
	// copy's own footprint evicts its working set and TLB walks
	// dominate, which is why both memcpy curves of Fig. 10 converge
	// to ≈1.2 GiB/s at multi-megabyte sizes.
	MemcpyBigRate Rate
	// DMAColdPenalty scales the cold copy rate when the source was
	// just written by device DMA and no Direct Cache Access warmed it
	// (every line takes a coherence-snoop miss, dominating the copy
	// regardless of destination warmth). Applied in the receive
	// bottom half; calibrated so the BH copies 8 kiB fragments at the
	// rate that yields the paper's ≈800 MiB/s Open-MX plateau.
	DMAColdPenalty float64

	// ---- Direct Cache Access ----

	// HasDCA enables Direct Cache Access, the Section V frontier
	// beyond I/OAT: receive-ring DMA writes push their lines directly
	// into the L2 cache of a target core instead of leaving them
	// cache-cold, removing the DMAColdPenalty snoop path for a
	// consumer that shares that cache. Clovertown() leaves it off
	// (the paper's chipset has no DCA); ClovertownDCA() turns it on.
	HasDCA bool
	// DCAPushFraction is the fraction of deposited lines that land in
	// the target cache; the remainder go to memory exactly as without
	// DCA (real DCA engines push tagged descriptors only).
	DCAPushFraction float64
	// DCALLCBudget caps the bytes one deposit may push into the target
	// cache, so a burst cannot flush the consumer's whole working set;
	// lines beyond the budget go to memory.
	DCALLCBudget int64
	// DCAWrongSocketPenalty scales the cold copy rate when a core on a
	// different socket than the DCA target reads the pushed lines:
	// they are dirty in the target socket's cache and must be snooped
	// out across the FSB — worse than the plain snoop-from-memory
	// DMAColdPenalty path ("DCA to the wrong socket is worse than no
	// DCA at all").
	DCAWrongSocketPenalty float64

	// ---- I/OAT DMA engine ----

	// IOATChannels is the number of independent DMA channels (4 on
	// Intel 5000-series I/OAT).
	IOATChannels int
	// IOATDoorbellCost and IOATPerDescSubmit are CPU-side submission
	// costs: one doorbell write per batch plus per-descriptor setup.
	// A single-descriptor copy therefore costs ~350 ns to submit,
	// matching the paper's measurement.
	IOATDoorbellCost  int64
	IOATPerDescSubmit int64
	// IOATDescSetup and IOATEngineRate are hardware-side costs: each
	// descriptor takes DescSetup plus bytes/EngineRate. With 300 ns +
	// 3.0 GiB/s this yields ~2.4 GiB/s on 4 kiB page chunks, ~1.5 GiB/s
	// at 1 kiB and ~0.6 GiB/s at 256 B, matching Fig. 7.
	IOATDescSetup  int64
	IOATEngineRate Rate
	// IOATAggregateRate caps the engine across channels (using all 4
	// channels buys ~+40 % over one, per the paper's reference [22]).
	IOATAggregateRate Rate
	// IOATStartLatency is the delay between ringing the doorbell of an
	// idle channel and the first descriptor being processed. It is
	// invisible to overlapped (asynchronous) copies but hurts small
	// synchronous ones — the reason medium-message synchronous offload
	// degraded in the paper.
	IOATStartLatency int64
	// IOATPollCost is one completion-cookie read ("a simple memory
	// read", per the paper).
	IOATPollCost int64

	// ---- Wire / NIC ----

	// WireRate is the raw signalling rate (10 Gbit/s).
	WireRate Rate
	// EthFrameOverhead counts preamble+header+FCS+IFG bytes per frame;
	// OMXHeaderBytes is the Open-MX/MXoE message header inside the
	// payload. Together they set the 9953 Mbit/s ≈ 1186 MiB/s payload
	// ceiling the paper quotes for MTU-9000 frames.
	EthFrameOverhead int
	OMXHeaderBytes   int
	// WirePropagation is cable+PHY latency per direction.
	WirePropagation int64
	// NICDMARate is host<->NIC PCIe DMA throughput (well above wire
	// speed; it contributes latency, not bandwidth limits).
	NICDMARate Rate
	// NICFixedLatency is per-frame NIC processing (tx or rx).
	NICFixedLatency int64
	// RxRingSize is the number of receive skbuffs in the driver ring.
	RxRingSize int
	// IRQLatency is interrupt delivery + handler dispatch until the
	// bottom half starts.
	IRQLatency int64
	// NAPIBudget bounds frames drained per bottom-half invocation.
	NAPIBudget int

	// ---- Kernel / Open-MX software costs ----

	// SkbPerFrameCost is generic driver+skbuff handling per received
	// frame, before the protocol callback runs.
	SkbPerFrameCost int64
	// OMXRecvCallbackCost is Open-MX receive-callback processing per
	// fragment (header decode, endpoint lookup, state update),
	// excluding the data copy.
	OMXRecvCallbackCost int64
	// OMXEventCost is writing a completion event to the user ring.
	OMXEventCost int64
	// OMXLibPickupCost is the user library noticing and decoding an
	// event from the ring.
	OMXLibPickupCost int64
	// OMXTxBuildCost is building+attaching one outgoing skbuff
	// (zero-copy page attach on the send side).
	OMXTxBuildCost int64
	// PinPerPage is Open-MX memory pinning cost per 4 kiB page;
	// MXPinPerPage is the native MX cost (higher: the NIC's address
	// translation table must be updated too). UnpinPerPage is the
	// cheaper deregistration cost, paid only without a registration
	// cache.
	PinPerPage   int64
	MXPinPerPage int64
	UnpinPerPage int64

	// ---- Native MX (baseline) ----

	// MXPostCost is posting a send/recv to the NIC (OS-bypass PIO).
	MXPostCost int64
	// MXFirmwareMatchCost is NIC-firmware matching per message.
	MXFirmwareMatchCost int64
	// MXControlOverhead is the fraction of wire time lost to MX
	// control traffic for large transfers (rendezvous, acks). It
	// calibrates MX's 1140 MiB/s versus the 1186 MiB/s line rate.
	MXControlOverhead float64

	// ---- NUMA / chipset placement ----

	// DMAHomeSocket is the socket whose memory controller hosts the
	// chipset DMA engines and the NIC; device deposits into buffers
	// homed on another socket cross the inter-socket interconnect.
	// (Clovertown is FSB/UMA, but the myri10ge driver still allocates
	// its rings node-local, and the model keeps the distinction so
	// NUMA placement can be swept.)
	DMAHomeSocket int
	// DMARemoteSocketPenalty divides the device DMA deposit rate
	// (NICDMARate, IOATEngineRate) when the target buffer's home
	// socket is not DMAHomeSocket; 1 disables the effect.
	DMARemoteSocketPenalty float64
	// DMARemoteDescCost is the extra fixed latency per descriptor (or
	// per frame deposit) for the same remote-socket case.
	DMARemoteDescCost int64

	// ---- Misc ----

	// PageSize is the virtual memory page size.
	PageSize int
	// RetransmitTimeout is the Open-MX per-block retransmission timer.
	RetransmitTimeout int64
	// ReduceRate is the computation rate for MPI reduction operators
	// (sum of float64s), used by the IMB collectives.
	ReduceRate Rate
	// NICReduceRate is the NIC firmware's combining rate for offloaded
	// reductions (Allreduce/Scan segment combining in firmware). The
	// embedded RISC core is much slower than a host core at arithmetic
	// — the offload wins by freeing the host, not by combining faster.
	NICReduceRate Rate
}

// Clovertown returns the parameter set modelling the paper's testbed.
// See DESIGN.md §5 for how each value was calibrated.
func Clovertown() *Platform {
	return &Platform{
		Sockets:        2,
		CoresPerSocket: 4,
		SyscallCost:    100,

		L1Size:                32 * 1024,
		L2Size:                4 * 1024 * 1024,
		MemcpyCallCost:        40,
		MemcpyColdRate:        GiBps(1.6),
		MemcpyHalfWarmRate:    GiBps(2.0),
		MemcpyL2Rate:          GiBps(6.0),
		MemcpyL1Rate:          GiBps(12.0),
		MemcpyCrossSocketCold: GiBps(1.2),
		MemcpyCrossSocketWarm: GiBps(1.3),
		MemcpyBigRate:         GiBps(1.25),
		DMAColdPenalty:        0.79,

		IOATChannels:      4,
		IOATDoorbellCost:  180,
		IOATPerDescSubmit: 170,
		IOATDescSetup:     300,
		IOATEngineRate:    GiBps(3.0),
		IOATAggregateRate: GiBps(3.4),
		IOATStartLatency:  1600,
		IOATPollCost:      50,

		WireRate:         Rate(10.0e9 / 8.0 / 1e9), // 10 Gbit/s
		EthFrameOverhead: 38,
		OMXHeaderBytes:   32,
		WirePropagation:  300,
		NICDMARate:       GiBps(2.0),
		NICFixedLatency:  500,
		RxRingSize:       512,
		IRQLatency:       1500,
		NAPIBudget:       64,

		SkbPerFrameCost:     1100,
		OMXRecvCallbackCost: 2200,
		OMXEventCost:        100,
		OMXLibPickupCost:    250,
		OMXTxBuildCost:      400,
		PinPerPage:          350,
		MXPinPerPage:        600,
		UnpinPerPage:        100,

		MXPostCost:          300,
		MXFirmwareMatchCost: 400,
		MXControlOverhead:   0.04,

		DMAHomeSocket:          0,
		DMARemoteSocketPenalty: 1.35,
		DMARemoteDescCost:      120,

		PageSize:          4096,
		RetransmitTimeout: 50 * 1000 * 1000, // 50 ms
		ReduceRate:        GiBps(1.5),
		NICReduceRate:     GiBps(0.8),
	}
}

// ClovertownDCA returns the Clovertown parameter set with Direct
// Cache Access enabled — the Section V "what if the chipset had DCA"
// variant the dca figure sweeps. The push fraction and budget follow
// the I/OAT-generation DCA literature (most, not all, lines land in
// cache; bursts are capped well below the 4 MiB L2); the wrong-socket
// penalty makes mis-steered DCA slower than no DCA at all, since the
// pushed lines are dirty in the remote cache.
func ClovertownDCA() *Platform {
	p := Clovertown()
	p.HasDCA = true
	p.DCAPushFraction = 0.9
	p.DCALLCBudget = 512 * 1024
	p.DCAWrongSocketPenalty = 0.55
	return p
}

// NumCores reports the total core count.
func (p *Platform) NumCores() int { return p.Sockets * p.CoresPerSocket }

// CoresPerL2 is the number of cores sharing one L2 cache (Clovertown
// dual-core subchips).
const CoresPerL2 = 2

// L2Domains reports the number of distinct L2 cache domains.
func (p *Platform) L2Domains() int { return p.NumCores() / CoresPerL2 }

// L2DomainOf maps a core index to its L2 cache domain.
func (p *Platform) L2DomainOf(core int) int { return core / CoresPerL2 }

// SocketOf maps a core index to its socket.
func (p *Platform) SocketOf(core int) int { return core / p.CoresPerSocket }

// SameL2 reports whether two cores share an L2 cache.
func (p *Platform) SameL2(a, b int) bool { return p.L2DomainOf(a) == p.L2DomainOf(b) }

// SameSocket reports whether two cores are on the same socket.
func (p *Platform) SameSocket(a, b int) bool { return p.SocketOf(a) == p.SocketOf(b) }

// SocketOfL2Domain maps an L2 cache domain to its socket.
func (p *Platform) SocketOfL2Domain(dom int) int {
	return p.SocketOf(dom * CoresPerL2)
}

// RemoteDMAFactor reports the rate divisor for a device DMA deposit
// into a buffer homed on the given socket: 1 for the chipset's local
// socket, DMARemoteSocketPenalty otherwise.
func (p *Platform) RemoteDMAFactor(home int) float64 {
	if home == p.DMAHomeSocket || p.DMARemoteSocketPenalty <= 1 {
		return 1
	}
	return p.DMARemoteSocketPenalty
}

// RemoteDMADescCost reports the extra per-descriptor latency of a
// deposit into a buffer homed on the given socket (0 when local).
func (p *Platform) RemoteDMADescCost(home int) int64 {
	if home == p.DMAHomeSocket {
		return 0
	}
	return p.DMARemoteDescCost
}

// LineRateMiBps reports the achievable payload rate in MiB/s for the
// given payload size per frame, accounting for Ethernet framing and the
// Open-MX header. For 8 kiB fragments this is ≈1181 MiB/s, matching the
// paper's 1186 MiB/s quote for the 9953 Mbit/s data rate.
func (p *Platform) LineRateMiBps(fragPayload int) float64 {
	perFrame := float64(fragPayload + p.OMXHeaderBytes + p.EthFrameOverhead)
	eff := float64(p.WireRate) * float64(fragPayload) / perFrame
	return Rate(eff).InMiBps()
}
