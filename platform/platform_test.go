package platform

import (
	"math"
	"testing"
)

func TestRateConversions(t *testing.T) {
	r := GiBps(1.6)
	if got := r.InGiBps(); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("round trip GiBps = %v", got)
	}
	if got := MiBps(1024).InGiBps(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("1024 MiB/s = %v GiB/s", got)
	}
}

func TestClovertownTopology(t *testing.T) {
	p := Clovertown()
	if p.NumCores() != 8 {
		t.Fatalf("NumCores = %d", p.NumCores())
	}
	if p.L2Domains() != 4 {
		t.Fatalf("L2Domains = %d", p.L2Domains())
	}
	// Cores 0,1 share a subchip L2; 0,2 do not; 0,4 are cross-socket.
	if !p.SameL2(0, 1) || p.SameL2(0, 2) {
		t.Fatal("L2 sharing wrong")
	}
	if !p.SameSocket(0, 3) || p.SameSocket(3, 4) {
		t.Fatal("socket mapping wrong")
	}
}

func TestLineRateMatchesPaper(t *testing.T) {
	p := Clovertown()
	// The paper: actual data rate of 10G Ethernet is 9953 Mbit/s =
	// 1186 MiB/s (for the framing of MTU-9000 frames). Our model with
	// 8 kiB payload fragments should land within a few percent.
	got := p.LineRateMiBps(8192)
	if got < 1150 || got > 1190 {
		t.Fatalf("line rate for 8kiB frags = %.1f MiB/s, want ≈1181", got)
	}
	// Smaller fragments waste proportionally more wire time.
	if small := p.LineRateMiBps(1024); small >= got {
		t.Fatalf("1 kiB frag line rate %.1f not below 8 kiB rate %.1f", small, got)
	}
}

func TestSingleDescriptorSubmitCost(t *testing.T) {
	p := Clovertown()
	// Paper §IV-A: submission time ≈ 350 ns.
	got := p.IOATDoorbellCost + p.IOATPerDescSubmit
	if got != 350 {
		t.Fatalf("single-descriptor submit = %d ns, want 350", got)
	}
}

func TestIOATChunkRates(t *testing.T) {
	p := Clovertown()
	rate := func(chunk int64) float64 {
		ns := float64(p.IOATDescSetup) + float64(chunk)/float64(p.IOATEngineRate)
		return Rate(float64(chunk) / ns).InGiBps()
	}
	// Paper §IV-A / Fig. 7: ~2.4 GiB/s at 4 kiB chunks, roughly memcpy
	// parity (~1.5) at 1 kiB, clearly worse below.
	if r := rate(4096); r < 2.2 || r > 2.6 {
		t.Fatalf("4 kiB chunk rate = %.2f GiB/s, want ≈2.4", r)
	}
	if r := rate(1024); r < 1.3 || r > 1.7 {
		t.Fatalf("1 kiB chunk rate = %.2f GiB/s, want ≈1.5", r)
	}
	if r := rate(256); r > 0.8 {
		t.Fatalf("256 B chunk rate = %.2f GiB/s, want well below 1", r)
	}
}

func TestMemcpyBreakEven(t *testing.T) {
	p := Clovertown()
	// Paper: ~600 B may be copied by memcpy (≈2 kB if cached) before
	// I/OAT offload becomes interesting, comparing the CPU time of a
	// memcpy against the ~350 ns submission cost.
	memcpyNs := func(n int64, r Rate) float64 {
		return float64(p.MemcpyCallCost) + float64(n)/float64(r)
	}
	submit := float64(p.IOATDoorbellCost + p.IOATPerDescSubmit)
	cold := memcpyNs(600, p.MemcpyColdRate)
	if math.Abs(cold-submit) > 80 {
		t.Fatalf("cold break-even mismatch: memcpy(600B)=%.0f ns vs submit=%.0f ns", cold, submit)
	}
	cached := memcpyNs(2048, p.MemcpyL2Rate)
	if math.Abs(cached-submit) > 80 {
		t.Fatalf("cached break-even mismatch: memcpy(2kB warm)=%.0f ns vs submit=%.0f ns", cached, submit)
	}
}
