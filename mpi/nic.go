// NIC-offloaded collective variants: the firmware execution tier
// behind Tuning.CollOffload. Each variant posts one descriptor to the
// rank's collective-capable endpoint (openmx.CollCapable) and waits
// for the single completion event; every tree hop, combine and
// retransmission in between runs in NIC firmware and charges no host
// CPU. The nonblocking Ib* forms expose the post/poll split the
// overlap figures measure.
package mpi

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/openmx"
)

// nicCollCapable reports whether an n-byte collective can offload on
// this world: every endpoint implements openmx.CollCapable and n fits
// the smallest firmware payload cap among them. The capability scan
// runs once per world.
func (w *World) nicCollCapable(n int) bool {
	if w.nicCap == nil {
		capable := len(w.ranks) > 0
		w.nicMax = 0
		for i, r := range w.ranks {
			cc, ok := r.EP.(openmx.CollCapable)
			if !ok {
				capable = false
				break
			}
			if m := cc.CollMaxBytes(); i == 0 || m < w.nicMax {
				w.nicMax = m
			}
		}
		w.nicCap = &capable
	}
	return *w.nicCap && n <= w.nicMax
}

// collOffloadNIC resolves the offload tier for an n-byte collective
// call. Every rank evaluates the same inputs (size, world, tuning,
// capability), so the decision is identical everywhere — the MPI
// requirement that all ranks run the same collective path.
func (r *Rank) collOffloadNIC(n int) bool {
	return r.tune().CollOffload(n, r.Size(), r.w.nicCollCapable(n)) == OffloadNIC
}

// nicColl returns the rank's firmware collective group, registering
// it with the NIC on first use. It panics if the endpoint cannot
// offload — pinned NIC variants fail loudly on a host-only transport.
func (r *Rank) nicColl() openmx.CollGroup {
	if r.nicGroup != nil {
		return r.nicGroup
	}
	cc, ok := r.EP.(openmx.CollCapable)
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d endpoint (%T) does not support NIC-offloaded collectives", r.ID, r.EP))
	}
	members := make([]openmx.Addr, r.Size())
	for i := range members {
		members[i] = r.w.ranks[i].EP.Addr()
	}
	r.nicGroup = cc.CollJoin(members)
	return r.nicGroup
}

// BarrierNIC runs the firmware-offloaded barrier regardless of
// tuning: one descriptor post, one completion event.
func (r *Rank) BarrierNIC() {
	if r.Size() == 1 {
		return
	}
	r.Wait(r.IbarrierNIC())
}

// IbarrierNIC posts the firmware barrier descriptor and returns its
// request without waiting (poll with Test, finish with Wait).
func (r *Rank) IbarrierNIC() openmx.Request {
	return r.nicColl().PostBarrier(r.p)
}

// BcastNIC runs the firmware-offloaded broadcast regardless of
// tuning. On the root the buffer is snapshot at post; elsewhere the
// tree data is DMA-deposited into it.
func (r *Rank) BcastNIC(root int, buf *cluster.Buffer, off, n int) {
	if r.Size() == 1 {
		return
	}
	r.Wait(r.IbcastNIC(root, buf, off, n))
}

// IbcastNIC posts the firmware broadcast descriptor without waiting.
func (r *Rank) IbcastNIC(root int, buf *cluster.Buffer, off, n int) openmx.Request {
	return r.nicColl().PostBcast(r.p, root, buf, off, n)
}

// AllreduceNIC runs the firmware-offloaded allreduce regardless of
// tuning: contributions combine segment by segment in firmware on the
// way up the tree, and the result fans out into every rank's rbuf.
func (r *Rank) AllreduceNIC(sbuf, rbuf *cluster.Buffer, n int) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.Wait(r.IallreduceNIC(sbuf, rbuf, n))
}

// IallreduceNIC posts the firmware allreduce descriptor without
// waiting.
func (r *Rank) IallreduceNIC(sbuf, rbuf *cluster.Buffer, n int) openmx.Request {
	return r.nicColl().PostAllreduce(r.p, sbuf, rbuf, n)
}

// ScanNIC runs the firmware-offloaded inclusive scan regardless of
// tuning: each NIC adds its contribution to the incoming prefix and
// forwards its result down the rank chain.
func (r *Rank) ScanNIC(sbuf, rbuf *cluster.Buffer, n int) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.Wait(r.IscanNIC(sbuf, rbuf, n))
}

// IscanNIC posts the firmware scan descriptor without waiting.
func (r *Rank) IscanNIC(sbuf, rbuf *cluster.Buffer, n int) openmx.Request {
	return r.nicColl().PostScan(r.p, sbuf, rbuf, n)
}
