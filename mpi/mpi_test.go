package mpi

import (
	"encoding/binary"
	"math"
	"testing"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

// worlds builds a 2-node world with ppn ranks per node over the given
// transport ("openmx", "openmx-ioat" or "mxoe").
func world(t *testing.T, transport string, ppn int) (*cluster.Cluster, *World) {
	t.Helper()
	c := cluster.New(nil)
	n0, n1 := c.NewHost("n0"), c.NewHost("n1")
	cluster.Link(n0, n1)
	var t0, t1 openmx.Transport
	switch transport {
	case "openmx":
		t0, t1 = openmx.Attach(n0, openmx.Config{}), openmx.Attach(n1, openmx.Config{})
	case "openmx-ioat":
		cfg := openmx.Config{IOAT: true, IOATShm: true}
		t0, t1 = openmx.Attach(n0, cfg), openmx.Attach(n1, cfg)
	case "mxoe":
		t0, t1 = mxoe.Attach(n0, mxoe.Config{}), mxoe.Attach(n1, mxoe.Config{})
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	w := NewWorld(c)
	cores := []int{2, 4} // two ranks per node on separate L2 domains
	for r := 0; r < 2*ppn; r++ {
		node, slot := n0, r
		tr := t0
		if r >= ppn { // block placement, like MPICH
			node, slot, tr = n1, r-ppn, t1
		}
		w.AddRank(tr.Open(slot, cores[slot]), node, cores[slot])
	}
	t.Cleanup(c.Close)
	return c, w
}

func runWorld(t *testing.T, c *cluster.Cluster, w *World, body func(r *Rank)) {
	t.Helper()
	w.Spawn(body)
	if n := c.Run(); n != 0 {
		t.Fatalf("deadlock: %d ranks blocked", n)
	}
}

func putFloats(b *cluster.Buffer, vals ...float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b.Bytes()[i*8:], math.Float64bits(v))
	}
}

func getFloat(b *cluster.Buffer, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Bytes()[i*8:]))
}

func TestSendRecvBasic(t *testing.T) {
	for _, tr := range []string{"openmx", "openmx-ioat", "mxoe"} {
		t.Run(tr, func(t *testing.T) {
			c, w := world(t, tr, 1)
			bufs := map[int]*cluster.Buffer{}
			for r := 0; r < 2; r++ {
				bufs[r] = w.Rank(r).Host.Alloc(1 << 16)
			}
			runWorld(t, c, w, func(r *Rank) {
				if r.ID == 0 {
					bufs[0].Fill(7)
					r.Send(1, 99, bufs[0], 0, 1<<16)
				} else {
					n := r.Recv(0, 99, bufs[1], 0, 1<<16)
					if n != 1<<16 {
						t.Errorf("recv len %d", n)
					}
				}
			})
			if !cluster.Equal(bufs[0], bufs[1]) {
				t.Fatal("payload corrupted")
			}
		})
	}
}

func TestAnySource(t *testing.T) {
	c, w := world(t, "openmx", 1)
	buf0 := w.Rank(0).Host.Alloc(64)
	buf1 := w.Rank(1).Host.Alloc(64)
	var from int
	runWorld(t, c, w, func(r *Rank) {
		if r.ID == 1 {
			buf1.Fill(3)
			r.Send(0, 5, buf1, 0, 64)
		} else {
			req := r.Irecv(AnySource, 5, buf0, 0, 64)
			r.Wait(req)
			from = int(req.Match()>>32) - 1
		}
	})
	if from != 1 {
		t.Fatalf("any-source matched rank %d", from)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, ppn := range []int{1, 2} {
		c, w := world(t, "openmx", ppn)
		var after []sim.Time
		var before sim.Time
		runWorld(t, c, w, func(r *Rank) {
			if r.ID == 0 {
				r.Proc().Sleep(500 * sim.Microsecond) // straggler
				before = r.Now()
			}
			r.Barrier()
			after = append(after, r.Now())
		})
		for _, ti := range after {
			if ti < before {
				t.Fatalf("ppn=%d: rank left barrier at %v before straggler at %v", ppn, ti, before)
			}
		}
	}
}

func TestBcastAllTransportsAllRoots(t *testing.T) {
	for _, tr := range []string{"openmx", "mxoe"} {
		for root := 0; root < 4; root++ {
			c, w := world(t, tr, 2)
			bufs := make([]*cluster.Buffer, 4)
			for r := range bufs {
				bufs[r] = w.Rank(r).Host.Alloc(4096)
			}
			rootVal := byte(0x30 + root)
			runWorld(t, c, w, func(r *Rank) {
				if r.ID == root {
					bufs[r.ID].Fill(rootVal)
				}
				r.Bcast(root, bufs[r.ID], 0, 4096)
			})
			for r := 0; r < 4; r++ {
				if !cluster.Equal(bufs[root], bufs[r]) {
					t.Fatalf("%s root=%d: rank %d has wrong data", tr, root, r)
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	c, w := world(t, "openmx", 2)
	sb := make([]*cluster.Buffer, 4)
	rb := w.Rank(0).Host.Alloc(32)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(32)
	}
	runWorld(t, c, w, func(r *Rank) {
		putFloats(sb[r.ID], float64(r.ID+1), 10*float64(r.ID+1), 0, -1)
		var out *cluster.Buffer
		if r.ID == 0 {
			out = rb
		}
		r.Reduce(0, sb[r.ID], out, 32)
	})
	if got := getFloat(rb, 0); got != 1+2+3+4 {
		t.Fatalf("sum[0] = %v, want 10", got)
	}
	if got := getFloat(rb, 1); got != 10+20+30+40 {
		t.Fatalf("sum[1] = %v, want 100", got)
	}
	if got := getFloat(rb, 3); got != -4 {
		t.Fatalf("sum[3] = %v, want -4", got)
	}
}

func TestAllreduce(t *testing.T) {
	for _, tr := range []string{"openmx", "openmx-ioat", "mxoe"} {
		c, w := world(t, tr, 2)
		sb := make([]*cluster.Buffer, 4)
		rb := make([]*cluster.Buffer, 4)
		for r := range sb {
			sb[r] = w.Rank(r).Host.Alloc(16)
			rb[r] = w.Rank(r).Host.Alloc(16)
		}
		runWorld(t, c, w, func(r *Rank) {
			putFloats(sb[r.ID], float64(r.ID), 1)
			r.Allreduce(sb[r.ID], rb[r.ID], 16)
		})
		for r := 0; r < 4; r++ {
			if getFloat(rb[r], 0) != 6 || getFloat(rb[r], 1) != 4 {
				t.Fatalf("%s: rank %d allreduce = (%v,%v), want (6,4)",
					tr, r, getFloat(rb[r], 0), getFloat(rb[r], 1))
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	c, w := world(t, "openmx", 2)
	const chunk = 16 // 2 floats per rank
	sb := make([]*cluster.Buffer, 4)
	rb := make([]*cluster.Buffer, 4)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(chunk * 4)
		rb[r] = w.Rank(r).Host.Alloc(chunk)
	}
	runWorld(t, c, w, func(r *Rank) {
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(sb[r.ID].Bytes()[i*8:], math.Float64bits(float64(i)))
		}
		r.ReduceScatter(sb[r.ID], rb[r.ID], chunk)
	})
	// Sum over 4 ranks of identical vectors = 4×value; rank i gets
	// elements 2i, 2i+1.
	for r := 0; r < 4; r++ {
		want0, want1 := 4*float64(2*r), 4*float64(2*r+1)
		if getFloat(rb[r], 0) != want0 || getFloat(rb[r], 1) != want1 {
			t.Fatalf("rank %d got (%v,%v), want (%v,%v)",
				r, getFloat(rb[r], 0), getFloat(rb[r], 1), want0, want1)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, tr := range []string{"openmx", "mxoe"} {
		c, w := world(t, tr, 2)
		const n = 1024
		sb := make([]*cluster.Buffer, 4)
		rb := make([]*cluster.Buffer, 4)
		for r := range sb {
			sb[r] = w.Rank(r).Host.Alloc(n)
			rb[r] = w.Rank(r).Host.Alloc(4 * n)
		}
		runWorld(t, c, w, func(r *Rank) {
			sb[r.ID].Fill(byte(0x10 * (r.ID + 1)))
			r.Allgather(sb[r.ID], n, rb[r.ID])
		})
		for r := 0; r < 4; r++ {
			for blk := 0; blk < 4; blk++ {
				want := sb[blk].Bytes()
				got := rb[r].Bytes()[blk*n : blk*n+n]
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s rank %d block %d byte %d", tr, r, blk, i)
					}
				}
			}
		}
	}
}

func TestAlltoall(t *testing.T) {
	c, w := world(t, "openmx", 2)
	const n = 512
	sb := make([]*cluster.Buffer, 4)
	rb := make([]*cluster.Buffer, 4)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(4 * n)
		rb[r] = w.Rank(r).Host.Alloc(4 * n)
	}
	runWorld(t, c, w, func(r *Rank) {
		for dst := 0; dst < 4; dst++ {
			for i := 0; i < n; i++ {
				sb[r.ID].Bytes()[dst*n+i] = byte(16*r.ID + dst)
			}
		}
		r.Alltoall(sb[r.ID], n, rb[r.ID])
	})
	for r := 0; r < 4; r++ {
		for src := 0; src < 4; src++ {
			want := byte(16*src + r)
			if got := rb[r].Bytes()[src*n]; got != want {
				t.Fatalf("rank %d chunk from %d = %#x, want %#x", r, src, got, want)
			}
		}
	}
}

func TestAllgathervUnevenSizes(t *testing.T) {
	c, w := world(t, "openmx", 2)
	sizes := []int{100, 2000, 50, 4096}
	total := 0
	for _, s := range sizes {
		total += s
	}
	sb := make([]*cluster.Buffer, 4)
	rb := make([]*cluster.Buffer, 4)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(sizes[r])
		rb[r] = w.Rank(r).Host.Alloc(total)
	}
	runWorld(t, c, w, func(r *Rank) {
		sb[r.ID].Fill(byte(r.ID + 1))
		r.Allgatherv(sb[r.ID], sizes[r.ID], rb[r.ID], sizes)
	})
	off := 0
	for blk := 0; blk < 4; blk++ {
		for r := 0; r < 4; r++ {
			got := rb[r].Bytes()[off : off+sizes[blk]]
			want := sb[blk].Bytes()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rank %d block %d byte %d", r, blk, i)
				}
			}
		}
		off += sizes[blk]
	}
}

func TestCollectiveSequenceIsolation(t *testing.T) {
	// Back-to-back collectives must not cross-match.
	c, w := world(t, "openmx", 1)
	b := make([]*cluster.Buffer, 2)
	for r := range b {
		b[r] = w.Rank(r).Host.Alloc(64)
	}
	ok := true
	runWorld(t, c, w, func(r *Rank) {
		for i := 0; i < 20; i++ {
			if r.ID == 0 {
				b[0].Fill(byte(i))
			}
			r.Bcast(0, b[r.ID], 0, 64)
			if b[r.ID].Bytes()[0] != byte(i) {
				ok = false
			}
			r.Barrier()
		}
	})
	if !ok {
		t.Fatal("collective rounds crossed")
	}
}

// ComputeFor charges exactly the requested duration to the rank's
// core under the app-compute ledger, and advances virtual time by it.
func TestComputeForChargesAppCompute(t *testing.T) {
	c, w := world(t, "openmx", 1)
	var before, after sim.Time
	runWorld(t, c, w, func(r *Rank) {
		if r.ID != 0 {
			return
		}
		sys := r.Host.Machine().Sys
		sys.ResetAccounting()
		before = r.Now()
		for i := 0; i < 4; i++ {
			r.ComputeFor(25 * sim.Microsecond)
		}
		r.ComputeFor(0)  // no-op
		r.ComputeFor(-1) // guarded no-op
		after = r.Now()
		if got := sys.Core(r.Core).BusyNs(cpu.AppCompute); got != 100*sim.Microsecond {
			t.Errorf("app-compute ledger = %v, want 100µs", got)
		}
	})
	if after-before != 100*sim.Microsecond {
		t.Errorf("ComputeFor advanced %v of virtual time, want 100µs", after-before)
	}
}
