package mpi_test

import (
	"encoding/binary"
	"fmt"
	"math"

	"omxsim/cluster"
	"omxsim/mpi"
	"omxsim/openmx"
)

// ExampleWorld builds a two-node MPI world over Open-MX and runs an
// Allreduce on real float64 payloads: each rank contributes its rank
// number plus one, so the sum every rank receives is 1+2 = 3. The
// collective algorithm is picked per call by message and world size
// through mpi.Tuning.
func ExampleWorld() {
	c := cluster.New(nil)
	defer c.Close()
	w := mpi.NewWorld(c)
	for i := 0; i < 2; i++ {
		h := c.NewHost(fmt.Sprintf("node%d", i))
		w.AddRank(openmx.Attach(h, openmx.Config{IOAT: true}).Open(0, 2), h, 2)
	}
	cluster.Link(c.Host("node0"), c.Host("node1"))

	sums := make([]float64, w.Size())
	w.Spawn(func(r *mpi.Rank) {
		sbuf, rbuf := r.Host.Alloc(8), r.Host.Alloc(8)
		binary.LittleEndian.PutUint64(sbuf.Bytes(), math.Float64bits(float64(r.ID+1)))
		r.Allreduce(sbuf, rbuf, 8) // MPI_SUM over little-endian float64s
		sums[r.ID] = math.Float64frombits(binary.LittleEndian.Uint64(rbuf.Bytes()))
		r.Barrier()
	})
	if blocked := c.Run(); blocked != 0 {
		panic("deadlock")
	}
	fmt.Printf("rank 0 sum: %.0f\n", sums[0])
	fmt.Printf("rank 1 sum: %.0f\n", sums[1])
	// Output:
	// rank 0 sum: 3
	// rank 1 sum: 3
}

// ExampleRank_SendRecv is the deadlock-free exchange idiom: both
// ranks post the receive first, then send, then wait — the shape
// every ring-based collective in this package is built from.
func ExampleRank_SendRecv() {
	c := cluster.New(nil)
	defer c.Close()
	w := mpi.NewWorld(c)
	for i := 0; i < 2; i++ {
		h := c.NewHost(fmt.Sprintf("node%d", i))
		w.AddRank(openmx.Attach(h, openmx.Config{}).Open(0, 2), h, 2)
	}
	cluster.Link(c.Host("node0"), c.Host("node1"))

	ok := make([]bool, w.Size())
	w.Spawn(func(r *mpi.Rank) {
		const n = 4 << 10
		sbuf, rbuf := r.Host.Alloc(n), r.Host.Alloc(n)
		sbuf.Fill(byte(r.ID + 1))
		r.Produce(sbuf)
		peer := 1 - r.ID
		r.SendRecv(peer, 7, sbuf, 0, n, peer, 7, rbuf, 0, n)
		expect := r.Host.Alloc(n)
		expect.Fill(byte(peer + 1))
		ok[r.ID] = cluster.Equal(expect, rbuf)
	})
	c.Run()
	fmt.Printf("both exchanged payloads verified: %v\n", ok[0] && ok[1])
	// Output:
	// both exchanged payloads verified: true
}
