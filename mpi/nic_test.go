package mpi

import (
	"fmt"
	"testing"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

// nicWorldSizes covers the shapes the offload tier must get right:
// single rank, pairs, odd worlds (3/5), a shared-memory pair world,
// and non-power-of-two 6 ranks with co-hosted endpoints.
var nicWorldSizes = []struct{ nodes, ppn int }{
	{1, 1},
	{2, 1},
	{3, 1},
	{2, 2},
	{5, 1},
	{3, 2},
	{4, 2},
}

// TestNICollHostFirmwareEquality runs every offloadable collective
// once on the host algorithms and once in firmware, on the same
// world, and requires byte-identical results everywhere. Inputs are
// exactly representable small-integer float64s, so sums are exact in
// any combining order — byte equality is then a hard requirement, not
// a tolerance.
func TestNICollHostFirmwareEquality(t *testing.T) {
	for _, ws := range nicWorldSizes {
		p := ws.nodes * ws.ppn
		t.Run(fmt.Sprintf("%dx%d", ws.nodes, ws.ppn), func(t *testing.T) {
			const n = 9 * 1024 // multi-fragment, not fragment-aligned
			c, w := worldN(t, "mxoe", ws.nodes, ws.ppn)
			alloc := func(sz int) []*cluster.Buffer {
				bs := make([]*cluster.Buffer, p)
				for r := range bs {
					bs[r] = w.Rank(r).Host.Alloc(sz)
				}
				return bs
			}
			sb := alloc(n)
			bcH, bcN := alloc(n), alloc(n)
			arH, arN := alloc(n), alloc(n)
			scH, scN := alloc(n), alloc(n)
			runWorld(t, c, w, func(r *Rank) {
				vals := make([]float64, n/8)
				for i := range vals {
					vals[i] = float64(r.ID*3 + i%17 + 1)
				}
				putFloats(sb[r.ID], vals...)
				root := p - 1
				if r.ID == root {
					fillPattern(bcH[r.ID], root)
					fillPattern(bcN[r.ID], root)
				}
				r.BcastBinomial(root, bcH[r.ID], 0, n)
				r.BcastNIC(root, bcN[r.ID], 0, n)
				r.AllreduceRecursiveDoubling(sb[r.ID], arH[r.ID], n)
				r.AllreduceNIC(sb[r.ID], arN[r.ID], n)
				r.ScanRecursiveDoubling(sb[r.ID], scH[r.ID], n)
				r.ScanNIC(sb[r.ID], scN[r.ID], n)
				r.BarrierNIC()
			})
			for r := 0; r < p; r++ {
				if !cluster.Equal(bcH[r], bcN[r]) {
					t.Errorf("rank %d: firmware bcast bytes differ from host", r)
				}
				if !cluster.Equal(arH[r], arN[r]) {
					t.Errorf("rank %d: firmware allreduce bytes differ from host", r)
				}
				if !cluster.Equal(scH[r], scN[r]) {
					t.Errorf("rank %d: firmware scan bytes differ from host", r)
				}
			}
		})
	}
}

// TestNICollDispatcherMatchesPinned pins the offload tier both ways —
// Offload=nic vs the pinned NIC variants, and Offload=host vs the
// host variants — and requires the dispatcher's bytes to match the
// pinned path's on an odd world with co-hosted ranks.
func TestNICollDispatcherMatchesPinned(t *testing.T) {
	const nodes, ppn = 3, 2
	p := nodes * ppn
	const n = 2048
	type result struct{ bc, ar, sc []*cluster.Buffer }
	run := func(mode string) result {
		c, w := worldN(t, "mxoe", nodes, ppn)
		switch mode {
		case "dispatch-nic":
			w.Tune.Offload = OffloadNIC
		case "dispatch-auto":
			// Auto must resolve to the NIC once the world and payload
			// thresholds admit it.
			w.Tune.Offload = OffloadAuto
			w.Tune.NICCollMinRanks = 2
		case "pinned-nic", "pinned-host":
			w.Tune.Offload = OffloadHost
		}
		res := result{}
		alloc := func() []*cluster.Buffer {
			bs := make([]*cluster.Buffer, p)
			for r := range bs {
				bs[r] = w.Rank(r).Host.Alloc(n)
			}
			return bs
		}
		res.bc, res.ar, res.sc = alloc(), alloc(), alloc()
		sb := alloc()
		runWorld(t, c, w, func(r *Rank) {
			vals := make([]float64, n/8)
			for i := range vals {
				vals[i] = float64(r.ID + i + 1)
			}
			putFloats(sb[r.ID], vals...)
			if r.ID == 1 {
				fillPattern(res.bc[r.ID], 1)
			}
			switch mode {
			case "pinned-nic":
				r.BcastNIC(1, res.bc[r.ID], 0, n)
				r.AllreduceNIC(sb[r.ID], res.ar[r.ID], n)
				r.ScanNIC(sb[r.ID], res.sc[r.ID], n)
				r.BarrierNIC()
			case "pinned-host":
				r.BcastBinomial(1, res.bc[r.ID], 0, n)
				r.AllreduceRecursiveDoubling(sb[r.ID], res.ar[r.ID], n)
				r.ScanRecursiveDoubling(sb[r.ID], res.sc[r.ID], n)
				r.BarrierTree()
			default:
				r.Bcast(1, res.bc[r.ID], 0, n)
				r.Allreduce(sb[r.ID], res.ar[r.ID], n)
				r.Scan(sb[r.ID], res.sc[r.ID], n)
				r.Barrier()
			}
		})
		return res
	}
	want := run("pinned-nic")
	for _, mode := range []string{"dispatch-nic", "dispatch-auto", "pinned-host"} {
		got := run(mode)
		for r := 0; r < p; r++ {
			if !cluster.Equal(want.bc[r], got.bc[r]) {
				t.Errorf("%s rank %d: bcast bytes differ from pinned NIC", mode, r)
			}
			if !cluster.Equal(want.ar[r], got.ar[r]) {
				t.Errorf("%s rank %d: allreduce bytes differ from pinned NIC", mode, r)
			}
			if !cluster.Equal(want.sc[r], got.sc[r]) {
				t.Errorf("%s rank %d: scan bytes differ from pinned NIC", mode, r)
			}
		}
	}
}

// TestNICollZeroByte runs every firmware collective with zero-length
// payloads: one control frame per hop, completion without deadlock,
// destination untouched.
func TestNICollZeroByte(t *testing.T) {
	for _, ws := range []struct{ nodes, ppn int }{{1, 1}, {2, 2}, {3, 1}} {
		t.Run(fmt.Sprintf("%dx%d", ws.nodes, ws.ppn), func(t *testing.T) {
			p := ws.nodes * ws.ppn
			c, w := worldN(t, "mxoe", ws.nodes, ws.ppn)
			bufs := make([]*cluster.Buffer, p)
			wide := make([]*cluster.Buffer, p)
			for r := range bufs {
				bufs[r] = w.Rank(r).Host.Alloc(64)
				wide[r] = w.Rank(r).Host.Alloc(64)
				fillPattern(wide[r], r)
			}
			runWorld(t, c, w, func(r *Rank) {
				r.BcastNIC(0, bufs[r.ID], 0, 0)
				r.AllreduceNIC(bufs[r.ID], wide[r.ID], 0)
				r.ScanNIC(bufs[r.ID], wide[r.ID], 0)
				r.BarrierNIC()
			})
			for r := 0; r < p; r++ {
				for i, b := range wide[r].Bytes() {
					if b != byte(r*37+i+1) {
						t.Fatalf("rank %d byte %d touched by zero-byte collective", r, i)
					}
				}
			}
		})
	}
}

// TestNICollTuningSelection pins the offload tier's decisions.
func TestNICollTuningSelection(t *testing.T) {
	tn := DefaultTuning()
	cases := []struct {
		got, want string
	}{
		{tn.CollOffload(4<<10, 64, true), OffloadNIC},
		{tn.CollOffload(4<<10, 64, false), OffloadHost}, // incapable stack
		{tn.CollOffload(4<<10, 16, true), OffloadHost},  // below rank floor
		{tn.CollOffload(1<<20, 64, true), OffloadHost},  // above byte cap
		{tn.CollOffload(0, 256, true), OffloadNIC},      // barrier at scale
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: resolved %q, want %q", i, c.got, c.want)
		}
	}
	tn.Offload = OffloadHost
	if got := tn.CollOffload(4<<10, 64, true); got != OffloadHost {
		t.Errorf("pinned host resolved %q", got)
	}
	tn.Offload = OffloadNIC
	if got := tn.CollOffload(1<<20, 2, false); got != OffloadNIC {
		t.Errorf("pinned nic resolved %q", got)
	}
}

// TestNICollOffloadIgnoredOnHostTransport: over Open-MX (no firmware
// collectives) the auto tier must fall back to the host algorithms
// even when the thresholds would pick the NIC.
func TestNICollOffloadIgnoredOnHostTransport(t *testing.T) {
	const nodes, ppn = 4, 2
	p := nodes * ppn
	const n = 256
	c, w := worldN(t, "openmx", nodes, ppn)
	w.Tune.NICCollMinRanks = 2 // auto would offload if it could
	sb := make([]*cluster.Buffer, p)
	rb := make([]*cluster.Buffer, p)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(n)
		rb[r] = w.Rank(r).Host.Alloc(n)
	}
	runWorld(t, c, w, func(r *Rank) {
		putFloats(sb[r.ID], float64(r.ID+1), 10*float64(r.ID+1))
		r.Allreduce(sb[r.ID], rb[r.ID], n)
		r.Scan(sb[r.ID], rb[r.ID], n)
		r.Barrier()
	})
}

// TestNICollLossRecovery drives every firmware collective across a
// lossy, reordering, duplicating link and requires exact results plus
// evidence the firmware's hop retransmission did the recovering.
func TestNICollLossRecovery(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := cluster.New(nil)
			h0, h1 := c.NewHost("n0"), c.NewHost("n1")
			cluster.Link(h0, h1, cluster.Impair(cluster.Impairment{
				Seed:        seed,
				LossRate:    0.05,
				DupRate:     0.02,
				ReorderRate: 0.05,
				JitterMax:   2 * sim.Microsecond,
			}))
			t.Cleanup(c.Close)
			cfg := mxoe.Config{RegCache: true, RetransmitTimeout: 100 * sim.Microsecond}
			s0, s1 := mxoe.Attach(h0, cfg), mxoe.Attach(h1, cfg)
			w := NewWorld(c)
			w.AddRank(s0.Open(0, 2), h0, 2)
			w.AddRank(s0.Open(1, 4), h0, 4)
			w.AddRank(s1.Open(0, 2), h1, 2)
			w.AddRank(s1.Open(1, 4), h1, 4)
			p := w.Size()
			const n = 6 * 1024
			sb := make([]*cluster.Buffer, p)
			ar := make([]*cluster.Buffer, p)
			sc := make([]*cluster.Buffer, p)
			bc := make([]*cluster.Buffer, p)
			for r := 0; r < p; r++ {
				sb[r] = w.Rank(r).Host.Alloc(n)
				ar[r] = w.Rank(r).Host.Alloc(n)
				sc[r] = w.Rank(r).Host.Alloc(n)
				bc[r] = w.Rank(r).Host.Alloc(n)
			}
			w.Spawn(func(r *Rank) {
				vals := make([]float64, n/8)
				for i := range vals {
					vals[i] = float64(r.ID + i%13 + 1)
				}
				putFloats(sb[r.ID], vals...)
				if r.ID == 0 {
					fillPattern(bc[0], 0)
				}
				for iter := 0; iter < 3; iter++ {
					r.BarrierNIC()
					r.BcastNIC(0, bc[r.ID], 0, n)
					r.AllreduceNIC(sb[r.ID], ar[r.ID], n)
					r.ScanNIC(sb[r.ID], sc[r.ID], n)
				}
			})
			c.Run()
			for r := 0; r < p; r++ {
				if !cluster.Equal(bc[0], bc[r]) {
					t.Errorf("rank %d bcast corrupted under loss", r)
				}
				if !cluster.Equal(ar[0], ar[r]) {
					t.Errorf("rank %d allreduce differs under loss", r)
				}
			}
			// Scans differ per rank; check the last rank's full sum
			// equals the allreduce sum.
			if !cluster.Equal(sc[p-1], ar[p-1]) {
				t.Errorf("last-rank scan differs from allreduce under loss")
			}
			st := s0.Stats().Coll
			st1 := s1.Stats().Coll
			if st.Retransmits+st1.Retransmits == 0 {
				t.Errorf("no firmware collective retransmissions under 5%% loss")
			}
			if st.Posts() == 0 || st1.Posts() == 0 {
				t.Errorf("collective descriptors not counted: %+v %+v", st, st1)
			}
		})
	}
}

// TestNICollDropOnHostStack sends firmware-collective frames at a
// host-mode Open-MX stack: it runs no NIC collective state machines,
// so it must count them in CollDropped and free the skbs (the sender's
// firmware keeps retransmitting into the drop — no crash, no leak,
// no silent ignore).
func TestNICollDropOnHostStack(t *testing.T) {
	c := cluster.New(nil)
	ha, hb := c.NewHost("fw"), c.NewHost("host")
	cluster.Link(ha, hb)
	t.Cleanup(c.Close)
	sa := mxoe.Attach(ha, mxoe.Config{RetransmitTimeout: 100 * sim.Microsecond})
	sb := openmx.Attach(hb, openmx.Config{})
	epA, epB := sa.Open(0, 2), sb.Open(0, 2)
	// Member order [host, firmware] makes the firmware endpoint the
	// tree leaf: posting a barrier sends an Up frame to the host-mode
	// parent immediately.
	g := epA.(openmx.CollCapable).CollJoin([]openmx.Addr{epB.Addr(), epA.Addr()})
	c.Go("post", func(p *sim.Proc) { g.PostBarrier(p) })
	c.RunFor(5 * sim.Millisecond)
	if got := sb.Stats().CollDropped; got < 2 {
		t.Fatalf("host stack CollDropped = %d, want the post plus retransmits", got)
	}
	if sa.Stats().Coll.Retransmits == 0 {
		t.Fatalf("firmware never retransmitted into the unresponsive parent")
	}
}

// TestNICollStatsAndHostCPU checks the firmware counters tick and —
// the paper's point — that a firmware barrier charges strictly less
// host CPU than the host tree barrier on the same 8-rank world.
func TestNICollStatsAndHostCPU(t *testing.T) {
	commCPU := func(pinNIC bool) sim.Duration {
		c := cluster.New(nil)
		hosts := make([]*cluster.Host, 4)
		sw := c.NewSwitch()
		stacks := make([]*mxoe.Stack, len(hosts))
		for i := range hosts {
			hosts[i] = c.NewHost(fmt.Sprintf("n%d", i))
			sw.Attach(hosts[i])
			stacks[i] = mxoe.Attach(hosts[i], mxoe.Config{RegCache: true})
		}
		defer c.Close()
		w := NewWorld(c)
		cores := []int{2, 4}
		for i, h := range hosts {
			for s := 0; s < 2; s++ {
				w.AddRank(stacks[i].Open(s, cores[s]), h, cores[s])
			}
		}
		w.Spawn(func(r *Rank) {
			for i := 0; i < 10; i++ {
				if pinNIC {
					r.BarrierNIC()
				} else {
					r.BarrierTree()
				}
			}
		})
		c.Run()
		var busy sim.Duration
		for _, s := range stacks {
			st := s.CPUStats()
			busy += st.Busy() - st.Busy(mxoe.CPUAppCompute)
		}
		if pinNIC {
			var posts int64
			for _, s := range stacks {
				posts += s.Stats().Coll.Barriers
			}
			if posts != int64(len(hosts))*2*10 {
				t.Fatalf("barrier descriptors = %d, want %d", posts, len(hosts)*2*10)
			}
		}
		return busy
	}
	nic := commCPU(true)
	host := commCPU(false)
	if nic >= host {
		t.Errorf("firmware barrier host-CPU %v not below host tree %v", nic, host)
	}
}
