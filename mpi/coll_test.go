package mpi

import (
	"fmt"
	"testing"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

// worldN builds a world of nodes hosts × ppn ranks (block placement).
// Two hosts connect back to back; more go through a switch; a single
// host needs no wire (ranks talk over shared memory).
func worldN(t *testing.T, transport string, nodes, ppn int) (*cluster.Cluster, *World) {
	t.Helper()
	if ppn > 2 {
		t.Fatalf("worldN: ppn %d > 2", ppn)
	}
	c := cluster.New(nil)
	hosts := make([]*cluster.Host, nodes)
	for i := range hosts {
		hosts[i] = c.NewHost(fmt.Sprintf("n%d", i))
	}
	switch {
	case nodes == 2:
		cluster.Link(hosts[0], hosts[1])
	case nodes > 2:
		sw := c.NewSwitch()
		for _, h := range hosts {
			sw.Attach(h)
		}
	}
	cores := []int{2, 4}
	w := NewWorld(c)
	for _, h := range hosts {
		var tr openmx.Transport
		switch transport {
		case "openmx":
			tr = openmx.Attach(h, openmx.Config{RegCache: true})
		case "openmx-ioat":
			tr = openmx.Attach(h, openmx.Config{RegCache: true, IOAT: true, IOATShm: true})
		case "mxoe":
			tr = mxoe.Attach(h, mxoe.Config{RegCache: true})
		default:
			t.Fatalf("unknown transport %q", transport)
		}
		for s := 0; s < ppn; s++ {
			w.AddRank(tr.Open(s, cores[s]), h, cores[s])
		}
	}
	t.Cleanup(c.Close)
	return c, w
}

// fillPattern writes a per-(rank, index) recognizable byte.
func fillPattern(b *cluster.Buffer, rank int) {
	for i := range b.Bytes() {
		b.Bytes()[i] = byte(rank*37 + i + 1)
	}
}

// collWorldSizes covers power-of-two, odd, and single-rank worlds as
// (nodes, ppn) pairs.
var collWorldSizes = []struct{ nodes, ppn int }{
	{1, 1}, // single rank
	{2, 1},
	{3, 1}, // odd world over a switch
	{2, 2},
	{5, 1}, // non-power-of-two, > AlltoallvPostedMaxRanks
	{3, 2}, // non-power-of-two with shared-memory pairs
	{4, 2}, // power of two, 8 ranks
}

// TestBcastVariantsAllWorlds checks both broadcast algorithms deliver
// the root's exact bytes on every world shape, roots included.
func TestBcastVariantsAllWorlds(t *testing.T) {
	for _, ws := range collWorldSizes {
		p := ws.nodes * ws.ppn
		for _, alg := range []string{AlgBinomial, AlgScatterAllgather} {
			t.Run(fmt.Sprintf("%dx%d/%s", ws.nodes, ws.ppn, alg), func(t *testing.T) {
				const n = 1000 // not a multiple of the segment count
				root := p - 1
				c, w := worldN(t, "openmx", ws.nodes, ws.ppn)
				bufs := make([]*cluster.Buffer, p)
				for r := range bufs {
					bufs[r] = w.Rank(r).Host.Alloc(n)
				}
				alg := alg
				runWorld(t, c, w, func(r *Rank) {
					if r.ID == root {
						fillPattern(bufs[r.ID], root)
					}
					if alg == AlgBinomial {
						r.BcastBinomial(root, bufs[r.ID], 0, n)
					} else {
						r.BcastScatterAllgather(root, bufs[r.ID], 0, n)
					}
				})
				for r := 0; r < p; r++ {
					if !cluster.Equal(bufs[root], bufs[r]) {
						t.Fatalf("rank %d bytes differ from root", r)
					}
				}
			})
		}
	}
}

// expectedSum is the allreduce result for putFloats-style inputs
// where rank r contributes r+1 at word 0 and 10(r+1) at word 1.
func checkSumWords(t *testing.T, b *cluster.Buffer, p int, who string) {
	t.Helper()
	want0, want1 := 0.0, 0.0
	for r := 0; r < p; r++ {
		want0 += float64(r + 1)
		want1 += 10 * float64(r+1)
	}
	if getFloat(b, 0) != want0 || getFloat(b, 1) != want1 {
		t.Fatalf("%s: sum = (%v,%v), want (%v,%v)",
			who, getFloat(b, 0), getFloat(b, 1), want0, want1)
	}
}

// TestAllreduceVariantsAllWorlds checks recursive doubling (with its
// non-power-of-two fold) and the ring against exact float sums.
func TestAllreduceVariantsAllWorlds(t *testing.T) {
	for _, ws := range collWorldSizes {
		p := ws.nodes * ws.ppn
		for _, alg := range []string{AlgRecursiveDoubling, AlgRing} {
			t.Run(fmt.Sprintf("%dx%d/%s", ws.nodes, ws.ppn, alg), func(t *testing.T) {
				const n = 64 // 8 words: more words than ranks, unevenly chunked
				c, w := worldN(t, "openmx", ws.nodes, ws.ppn)
				sb := make([]*cluster.Buffer, p)
				rb := make([]*cluster.Buffer, p)
				for r := range sb {
					sb[r] = w.Rank(r).Host.Alloc(n)
					rb[r] = w.Rank(r).Host.Alloc(n)
				}
				alg := alg
				runWorld(t, c, w, func(r *Rank) {
					putFloats(sb[r.ID], float64(r.ID+1), 10*float64(r.ID+1), 1, 1, 1, 1, 1, 1)
					if alg == AlgRing {
						r.AllreduceRing(sb[r.ID], rb[r.ID], n)
					} else {
						r.AllreduceRecursiveDoubling(sb[r.ID], rb[r.ID], n)
					}
				})
				for r := 0; r < p; r++ {
					checkSumWords(t, rb[r], p, fmt.Sprintf("rank %d", r))
					if getFloat(rb[r], 7) != float64(p) {
						t.Fatalf("rank %d word 7 = %v, want %v", r, getFloat(rb[r], 7), float64(p))
					}
				}
			})
		}
	}
}

// TestReduceVariantsAllWorlds checks both reduce algorithms at every
// root on a non-power-of-two world.
func TestReduceVariantsAllWorlds(t *testing.T) {
	const nodes, ppn = 3, 2 // p = 6
	p := nodes * ppn
	const n = 48 // 6 words
	for root := 0; root < p; root++ {
		for _, alg := range []string{AlgBinomial, AlgReduceScatter} {
			t.Run(fmt.Sprintf("root%d/%s", root, alg), func(t *testing.T) {
				c, w := worldN(t, "openmx", nodes, ppn)
				sb := make([]*cluster.Buffer, p)
				rb := w.Rank(root).Host.Alloc(n)
				for r := range sb {
					sb[r] = w.Rank(r).Host.Alloc(n)
				}
				root, alg := root, alg
				runWorld(t, c, w, func(r *Rank) {
					putFloats(sb[r.ID], float64(r.ID+1), 10*float64(r.ID+1), 1, 1, 1, 1)
					var out *cluster.Buffer
					if r.ID == root {
						out = rb
					}
					if alg == AlgReduceScatter {
						r.ReduceRSGather(root, sb[r.ID], out, n)
					} else {
						r.ReduceBinomial(root, sb[r.ID], out, n)
					}
				})
				checkSumWords(t, rb, p, "root")
			})
		}
	}
}

// TestAlltoallVariantsAllWorlds checks pairwise and Bruck move every
// pair's exact chunk, including odd world sizes.
func TestAlltoallVariantsAllWorlds(t *testing.T) {
	for _, ws := range collWorldSizes {
		p := ws.nodes * ws.ppn
		for _, alg := range []string{AlgPairwise, AlgBruck} {
			t.Run(fmt.Sprintf("%dx%d/%s", ws.nodes, ws.ppn, alg), func(t *testing.T) {
				const n = 96
				c, w := worldN(t, "openmx", ws.nodes, ws.ppn)
				sb := make([]*cluster.Buffer, p)
				rb := make([]*cluster.Buffer, p)
				for r := range sb {
					sb[r] = w.Rank(r).Host.Alloc(p * n)
					rb[r] = w.Rank(r).Host.Alloc(p * n)
				}
				alg := alg
				runWorld(t, c, w, func(r *Rank) {
					for dst := 0; dst < p; dst++ {
						for i := 0; i < n; i++ {
							sb[r.ID].Bytes()[dst*n+i] = byte(31*r.ID + 7*dst + i)
						}
					}
					if alg == AlgBruck {
						r.AlltoallBruck(sb[r.ID], n, rb[r.ID])
					} else {
						r.AlltoallPairwise(sb[r.ID], n, rb[r.ID])
					}
				})
				for r := 0; r < p; r++ {
					for src := 0; src < p; src++ {
						for i := 0; i < n; i++ {
							want := byte(31*src + 7*r + i)
							if got := rb[r].Bytes()[src*n+i]; got != want {
								t.Fatalf("rank %d chunk from %d byte %d = %#x, want %#x",
									r, src, i, got, want)
							}
						}
					}
				}
			})
		}
	}
}

// TestAlltoallvVariants checks both vector schedules with skewed
// per-pair sizes (including empty exchanges).
func TestAlltoallvVariants(t *testing.T) {
	const nodes, ppn = 5, 1
	p := nodes * ppn
	for _, alg := range []string{AlgPairwise, AlgPosted} {
		t.Run(alg, func(t *testing.T) {
			c, w := worldN(t, "openmx", nodes, ppn)
			// size sent from rank s to rank d: (s+2d) mod 7 * 16 bytes
			// (zero for some pairs).
			sz := func(s, d int) int { return (s + 2*d) % 7 * 16 }
			sb := make([]*cluster.Buffer, p)
			rb := make([]*cluster.Buffer, p)
			for r := range sb {
				tot := 0
				for d := 0; d < p; d++ {
					tot += sz(r, d)
				}
				sb[r] = w.Rank(r).Host.Alloc(tot)
				tot = 0
				for s := 0; s < p; s++ {
					tot += sz(s, r)
				}
				rb[r] = w.Rank(r).Host.Alloc(tot)
			}
			alg := alg
			runWorld(t, c, w, func(r *Rank) {
				soffs, scounts := make([]int, p), make([]int, p)
				off := 0
				for d := 0; d < p; d++ {
					soffs[d], scounts[d] = off, sz(r.ID, d)
					for i := 0; i < scounts[d]; i++ {
						sb[r.ID].Bytes()[off+i] = byte(13*r.ID + 5*d + i)
					}
					off += scounts[d]
				}
				roffs, rcounts := make([]int, p), make([]int, p)
				off = 0
				for s := 0; s < p; s++ {
					roffs[s], rcounts[s] = off, sz(s, r.ID)
					off += rcounts[s]
				}
				if alg == AlgPosted {
					r.AlltoallvPosted(sb[r.ID], soffs, scounts, rb[r.ID], roffs, rcounts)
				} else {
					r.AlltoallvPairwise(sb[r.ID], soffs, scounts, rb[r.ID], roffs, rcounts)
				}
			})
			for r := 0; r < p; r++ {
				off := 0
				for s := 0; s < p; s++ {
					for i := 0; i < sz(s, r); i++ {
						want := byte(13*s + 5*r + i)
						if got := rb[r].Bytes()[off+i]; got != want {
							t.Fatalf("rank %d from %d byte %d = %#x, want %#x", r, s, i, got, want)
						}
					}
					off += sz(s, r)
				}
			}
		})
	}
}

// TestGatherScatterVariantsAllRoots checks linear and binomial
// gather/scatter round-trip exact blocks at every root of an odd
// world.
func TestGatherScatterVariantsAllRoots(t *testing.T) {
	const nodes, ppn = 5, 1
	p := nodes * ppn
	const n = 128
	for root := 0; root < p; root += 2 {
		for _, alg := range []string{AlgLinear, AlgBinomial} {
			t.Run(fmt.Sprintf("root%d/%s", root, alg), func(t *testing.T) {
				c, w := worldN(t, "openmx", nodes, ppn)
				sb := make([]*cluster.Buffer, p)
				gb := w.Rank(root).Host.Alloc(p * n) // gather result at root
				rb := make([]*cluster.Buffer, p)     // scatter results
				for r := range sb {
					sb[r] = w.Rank(r).Host.Alloc(n)
					rb[r] = w.Rank(r).Host.Alloc(n)
				}
				root, alg := root, alg
				runWorld(t, c, w, func(r *Rank) {
					fillPattern(sb[r.ID], r.ID)
					var g *cluster.Buffer
					if r.ID == root {
						g = gb
					}
					if alg == AlgBinomial {
						r.GatherBinomial(root, sb[r.ID], n, g)
						r.ScatterBinomial(root, g, n, rb[r.ID])
					} else {
						r.GatherLinear(root, sb[r.ID], n, g)
						r.ScatterLinear(root, g, n, rb[r.ID])
					}
				})
				for r := 0; r < p; r++ {
					for i := 0; i < n; i++ {
						if gb.Bytes()[r*n+i] != sb[r].Bytes()[i] {
							t.Fatalf("gather: root block %d byte %d wrong", r, i)
						}
					}
					// Scatter sent each rank its own gathered block back.
					if !cluster.Equal(rb[r], sb[r]) {
						t.Fatalf("scatter: rank %d round-trip corrupted", r)
					}
				}
			})
		}
	}
}

// TestAllgatherRecursiveDoubling checks the power-of-two fast path
// against the ring on an 8-rank world.
func TestAllgatherRecursiveDoubling(t *testing.T) {
	const nodes, ppn = 4, 2
	p := nodes * ppn
	const n = 64
	c, w := worldN(t, "openmx", nodes, ppn)
	sb := make([]*cluster.Buffer, p)
	rd := make([]*cluster.Buffer, p)
	ring := make([]*cluster.Buffer, p)
	for r := range sb {
		sb[r] = w.Rank(r).Host.Alloc(n)
		rd[r] = w.Rank(r).Host.Alloc(p * n)
		ring[r] = w.Rank(r).Host.Alloc(p * n)
	}
	runWorld(t, c, w, func(r *Rank) {
		fillPattern(sb[r.ID], r.ID)
		r.AllgatherRecursiveDoubling(sb[r.ID], n, rd[r.ID])
		r.AllgatherRing(sb[r.ID], n, ring[r.ID])
	})
	for r := 0; r < p; r++ {
		if !cluster.Equal(rd[r], ring[r]) {
			t.Fatalf("rank %d: recursive doubling differs from ring", r)
		}
		for blk := 0; blk < p; blk++ {
			if rd[r].Bytes()[blk*n] != sb[blk].Bytes()[0] {
				t.Fatalf("rank %d block %d wrong", r, blk)
			}
		}
	}
}

// TestBarrierVariantsSynchronize proves both barrier algorithms hold
// every rank until the straggler arrives, on an odd world.
func TestBarrierVariantsSynchronize(t *testing.T) {
	for _, alg := range []string{AlgDissemination, AlgTree} {
		t.Run(alg, func(t *testing.T) {
			c, w := worldN(t, "openmx", 5, 1)
			var after []sim.Time
			var before sim.Time
			alg := alg
			runWorld(t, c, w, func(r *Rank) {
				if r.ID == 3 {
					r.Proc().Sleep(500 * sim.Microsecond) // straggler
					before = r.Now()
				}
				if alg == AlgTree {
					r.BarrierTree()
				} else {
					r.BarrierDissemination()
				}
				after = append(after, r.Now())
			})
			for _, ti := range after {
				if ti < before {
					t.Fatalf("rank left %s barrier at %v before straggler at %v", alg, ti, before)
				}
			}
		})
	}
}

// TestZeroByteCollectives runs every collective with zero-length
// payloads: they must complete (no deadlock) and touch nothing.
func TestZeroByteCollectives(t *testing.T) {
	for _, ws := range []struct{ nodes, ppn int }{{1, 1}, {2, 2}, {3, 1}} {
		t.Run(fmt.Sprintf("%dx%d", ws.nodes, ws.ppn), func(t *testing.T) {
			p := ws.nodes * ws.ppn
			c, w := worldN(t, "openmx", ws.nodes, ws.ppn)
			bufs := make([]*cluster.Buffer, p)
			wide := make([]*cluster.Buffer, p)
			for r := range bufs {
				bufs[r] = w.Rank(r).Host.Alloc(64)
				wide[r] = w.Rank(r).Host.Alloc(64)
			}
			runWorld(t, c, w, func(r *Rank) {
				b, wd := bufs[r.ID], wide[r.ID]
				r.Bcast(0, b, 0, 0)
				r.Allreduce(b, wd, 0)
				r.Reduce(0, b, wd, 0)
				r.Alltoall(b, 0, wd)
				r.Allgather(b, 0, wd)
				r.Gather(0, b, 0, wd)
				r.Scatter(0, b, 0, wd)
				r.Barrier()
			})
		})
	}
}

// TestSingleRankCollectives: a world of one rank must complete every
// collective locally with correct data and zero communication.
func TestSingleRankCollectives(t *testing.T) {
	c, w := worldN(t, "openmx", 1, 1)
	const n = 32
	sb := w.Rank(0).Host.Alloc(n)
	rb := w.Rank(0).Host.Alloc(n)
	wide := w.Rank(0).Host.Alloc(n)
	runWorld(t, c, w, func(r *Rank) {
		putFloats(sb, 3, 5, 7, 11)
		r.Barrier()
		r.Bcast(0, sb, 0, n)
		r.Allreduce(sb, rb, n)
		r.Alltoall(sb, n, wide)
		r.Gather(0, rb, n, wide)
		r.Scatter(0, wide, n, rb)
		r.ReduceScatter(sb, rb, n)
	})
	for i, want := range []float64{3, 5, 7, 11} {
		if getFloat(rb, i) != want {
			t.Fatalf("word %d = %v, want %v", i, getFloat(rb, i), want)
		}
	}
}

// TestDispatcherMatchesPinnedVariants forces each tuned path via
// thresholds and checks the dispatcher's bytes equal the pinned
// variant's on a non-power-of-two world.
func TestDispatcherMatchesPinnedVariants(t *testing.T) {
	const nodes, ppn = 3, 2
	p := nodes * ppn
	const n = 2048 // multiple of 8, bigger than the forced thresholds
	force := func(w *World, large bool) {
		if large {
			// Everything takes the large-message / tree path.
			w.Tune.BcastSegMinBytes = 1
			w.Tune.BcastSegMinRanks = 2
			w.Tune.AllreduceRingMinBytes = 1
			w.Tune.ReduceRSMinBytes = 1
			w.Tune.GatherTreeMaxBytes = 1 << 30
			w.Tune.GatherTreeMinRanks = 2
			w.Tune.AlltoallBruckMaxBytes = 1 << 30
			w.Tune.AlltoallBruckMinRanks = 2
			w.Tune.BarrierTreeMinRanks = 2
		} else {
			w.Tune.BcastSegMinBytes = 1 << 30
			w.Tune.AllreduceRingMinBytes = 1 << 30
			w.Tune.ReduceRSMinBytes = 1 << 30
			w.Tune.GatherTreeMinRanks = 1 << 30
			w.Tune.AlltoallBruckMaxBytes = 0
			w.Tune.BarrierTreeMinRanks = 1 << 30
		}
	}
	run := func(large bool) (bcast, ar []*cluster.Buffer) {
		c, w := worldN(t, "openmx", nodes, ppn)
		force(w, large)
		bcast = make([]*cluster.Buffer, p)
		ar = make([]*cluster.Buffer, p)
		sb := make([]*cluster.Buffer, p)
		for r := 0; r < p; r++ {
			bcast[r] = w.Rank(r).Host.Alloc(n)
			ar[r] = w.Rank(r).Host.Alloc(n)
			sb[r] = w.Rank(r).Host.Alloc(n)
		}
		runWorld(t, c, w, func(r *Rank) {
			if r.ID == 1 {
				fillPattern(bcast[r.ID], 1)
			}
			r.Bcast(1, bcast[r.ID], 0, n)
			// Exact small-integer words: float addition is then exact,
			// so both algorithms must produce identical bytes despite
			// summing in different orders.
			vals := make([]float64, n/8)
			for i := range vals {
				vals[i] = float64(r.ID + i + 1)
			}
			putFloats(sb[r.ID], vals...)
			r.Allreduce(sb[r.ID], ar[r.ID], n)
			r.Barrier()
		})
		return bcast, ar
	}
	bL, arL := run(true)
	bS, arS := run(false)
	for r := 0; r < p; r++ {
		if !cluster.Equal(bL[r], bS[r]) {
			t.Errorf("rank %d: large-path bcast bytes differ from small-path", r)
		}
		if !cluster.Equal(arL[r], arS[r]) {
			t.Errorf("rank %d: ring allreduce bytes differ from recursive doubling", r)
		}
	}
}

// TestTuningSelection pins the default thresholds' decisions.
func TestTuningSelection(t *testing.T) {
	tn := DefaultTuning()
	cases := []struct{ got, want string }{
		{tn.BcastAlg(1<<10, 8), AlgBinomial},
		{tn.BcastAlg(1<<20, 8), AlgScatterAllgather},
		{tn.BcastAlg(1<<20, 2), AlgBinomial},
		{tn.AllreduceAlg(1<<10, 8), AlgRecursiveDoubling},
		{tn.AllreduceAlg(1<<20, 8), AlgRing},
		{tn.AllreduceAlg(1<<20, 2), AlgRecursiveDoubling},
		{tn.AllreduceAlg(1<<20+4, 8), AlgRecursiveDoubling}, // unaligned
		{tn.ReduceAlg(1<<20, 8), AlgReduceScatter},
		{tn.ReduceAlg(1<<10, 8), AlgBinomial},
		{tn.AlltoallAlg(256, 16), AlgBruck},
		{tn.AlltoallAlg(1<<20, 16), AlgPairwise},
		{tn.AlltoallAlg(256, 4), AlgPairwise},
		{tn.AlltoallvAlg(4), AlgPosted},
		{tn.AlltoallvAlg(8), AlgPairwise},
		{tn.AllgatherAlg(64, 8), AlgRecursiveDoubling},
		{tn.AllgatherAlg(64, 6), AlgRing}, // not a power of two
		{tn.AllgatherAlg(1<<20, 8), AlgRing},
		{tn.GatherAlg(1<<10, 8), AlgBinomial},
		{tn.GatherAlg(1<<20, 8), AlgLinear},
		{tn.ScatterAlg(1<<10, 2), AlgLinear},
		{tn.BarrierAlg(4), AlgDissemination},
		{tn.BarrierAlg(16), AlgTree},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: selected %q, want %q", i, c.got, c.want)
		}
	}
}

// TestCollectivesOverEveryTransport smoke-tests the dispatchers end
// to end over native MXoE, plain Open-MX and Open-MX with I/OAT on an
// 8-rank world, verifying the reduced payload.
func TestCollectivesOverEveryTransport(t *testing.T) {
	for _, tr := range []string{"openmx", "openmx-ioat", "mxoe"} {
		t.Run(tr, func(t *testing.T) {
			const nodes, ppn = 4, 2
			p := nodes * ppn
			const n = 256
			c, w := worldN(t, tr, nodes, ppn)
			sb := make([]*cluster.Buffer, p)
			rb := make([]*cluster.Buffer, p)
			for r := range sb {
				sb[r] = w.Rank(r).Host.Alloc(n)
				rb[r] = w.Rank(r).Host.Alloc(n)
			}
			runWorld(t, c, w, func(r *Rank) {
				putFloats(sb[r.ID], float64(r.ID+1), 10*float64(r.ID+1))
				r.Allreduce(sb[r.ID], rb[r.ID], n)
				r.Barrier()
			})
			for r := 0; r < p; r++ {
				checkSumWords(t, rb[r], p, fmt.Sprintf("%s rank %d", tr, r))
			}
		})
	}
}
