// Package mpi implements the message-passing middleware layer the
// paper benchmarks through (MPICH-MX in the original): ranks,
// tag/source matching, blocking and nonblocking point-to-point, and
// the collective operations the Intel MPI Benchmarks exercise.
//
// It is transport-neutral: a World is built from openmx.Endpoint
// values, which both the Open-MX stack and the native MXoE baseline
// provide, so every benchmark runs unchanged over either (exactly how
// MPICH-MX ran over both MX and Open-MX thanks to API compatibility).
//
// Reductions operate on real float64 data (little-endian), so
// collective results are integrity-checked in tests, and reduction
// compute time is charged to the rank's core.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/openmx"
	"omxsim/sim"
)

// AnySource matches messages from any rank.
const AnySource = -1

// collTagBase separates collective traffic from user tags.
const collTagBase = 0x4000_0000

// World is a set of communicating ranks.
type World struct {
	C     *cluster.Cluster
	ranks []*Rank
}

// NewWorld returns an empty world on the cluster.
func NewWorld(c *cluster.Cluster) *World { return &World{C: c} }

// AddRank registers the next rank (IDs are assigned in call order),
// communicating through ep, running on the given host and core.
func (w *World) AddRank(ep openmx.Endpoint, h *cluster.Host, core int) *Rank {
	r := &Rank{w: w, ID: len(w.ranks), EP: ep, Host: h, Core: core}
	r.scratch = h.Alloc(8)
	w.ranks = append(w.ranks, r)
	return r
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id.
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Spawn starts one simulated process per rank running body. The
// caller then drives the cluster (c.Run / c.RunFor).
func (w *World) Spawn(body func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.C.Go(fmt.Sprintf("rank%d", r.ID), func(p *sim.Proc) {
			r.p = p
			body(r)
		})
	}
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	ID   int
	EP   openmx.Endpoint
	Host *cluster.Host
	Core int

	p       *sim.Proc
	collSeq uint32
	scratch *cluster.Buffer
}

// Proc returns the simulated process running this rank (valid inside
// Spawn's body).
func (r *Rank) Proc() *sim.Proc { return r.p }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Produce marks buf as freshly written by this rank's application
// code (cache warmth on its core).
func (r *Rank) Produce(buf *cluster.Buffer) { buf.Produce(r.Core) }

// matchFor encodes (source rank, tag) into the 64-bit MX match space.
func matchFor(src int, tag int) (match, mask uint64) {
	match = uint64(src+1)<<32 | uint64(uint32(tag))
	mask = ^uint64(0)
	if src == AnySource {
		match = uint64(uint32(tag))
		mask = 0xFFFFFFFF
	}
	return match, mask
}

func (r *Rank) addrOf(rank int) openmx.Addr { return r.w.ranks[rank].EP.Addr() }

// Isend starts a nonblocking send to rank dst.
func (r *Rank) Isend(dst, tag int, buf *cluster.Buffer, off, n int) openmx.Request {
	match := uint64(r.ID+1)<<32 | uint64(uint32(tag))
	return r.EP.ISend(r.p, r.addrOf(dst), match, buf, off, n)
}

// Irecv starts a nonblocking receive from rank src (or AnySource).
func (r *Rank) Irecv(src, tag int, buf *cluster.Buffer, off, n int) openmx.Request {
	match, mask := matchFor(src, tag)
	return r.EP.IRecv(r.p, match, mask, buf, off, n)
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req openmx.Request) { r.EP.Wait(r.p, req) }

// Send is a blocking send.
func (r *Rank) Send(dst, tag int, buf *cluster.Buffer, off, n int) {
	r.Wait(r.Isend(dst, tag, buf, off, n))
}

// Recv is a blocking receive; it returns the delivered length.
func (r *Rank) Recv(src, tag int, buf *cluster.Buffer, off, n int) int {
	req := r.Irecv(src, tag, buf, off, n)
	r.Wait(req)
	return req.Len()
}

// SendRecv posts the receive, sends, then waits for both (the
// deadlock-free MPI_Sendrecv shape).
func (r *Rank) SendRecv(dst, stag int, sbuf *cluster.Buffer, soff, sn int,
	src, rtag int, rbuf *cluster.Buffer, roff, rn int) {
	rreq := r.Irecv(src, rtag, rbuf, roff, rn)
	sreq := r.Isend(dst, stag, sbuf, soff, sn)
	r.Wait(rreq)
	r.Wait(sreq)
}

// nextCollTag reserves a fresh tag block for one collective call.
// All ranks invoke collectives in the same order (an MPI requirement),
// so their sequence counters agree.
func (r *Rank) nextCollTag() int {
	r.collSeq++
	return collTagBase | int(r.collSeq%0x100000)<<8
}

// chargeCompute accounts local computation (reduction arithmetic).
func (r *Rank) chargeCompute(bytes int) {
	d := sim.Duration(float64(bytes) / float64(r.Host.C.P.ReduceRate))
	r.Host.Machine().Sys.Core(r.Core).RunOn(r.p, cpu.Other, d)
}

// Compute charges application computation time proportional to the
// bytes processed (at the platform's streaming compute rate). Used by
// application-level workloads such as the NAS IS proxy.
func (r *Rank) Compute(bytes int) { r.chargeCompute(bytes) }

// sumInto adds src's float64 values into dst (little-endian), the
// MPI_SUM/MPI_FLOAT reduction IMB uses.
func sumInto(dst, src []byte) {
	n := len(dst) / 8 * 8
	for i := 0; i < n; i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(a+b))
	}
}

// Barrier synchronizes all ranks (dissemination algorithm).
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	for k := 1; k < p; k <<= 1 {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag|1, r.scratch, 0, 0, src, tag|1, r.scratch, 0, 0)
	}
}

// Bcast broadcasts n bytes at buf[off:] from root (binomial tree).
func (r *Rank) Bcast(root int, buf *cluster.Buffer, off, n int) {
	p := r.Size()
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	// Rotate so root is virtual rank 0, then run the canonical
	// binomial tree: receive from the parent at the level of our
	// lowest set bit, forward to children below that level.
	vr := (r.ID - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			parent := (vr&^mask + root) % p
			r.Recv(parent, tag|2, buf, off, n)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			child := (vr + mask + root) % p
			r.Send(child, tag|2, buf, off, n)
		}
		mask >>= 1
	}
}

// Reduce sums n bytes of float64s from every rank's sbuf into root's
// rbuf (binomial tree). Non-root ranks may pass a nil rbuf.
func (r *Rank) Reduce(root int, sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	tag := r.nextCollTag()
	// Accumulate into a local temporary.
	acc := r.Host.Alloc(n)
	copy(acc.Bytes(), sbuf.Bytes()[:n])
	vr := (r.ID - root + p) % p
	tmp := r.Host.Alloc(n)
	for k := 1; k < p; k <<= 1 {
		if vr&k != 0 {
			parent := ((vr &^ k) + root) % p
			r.Send(parent, tag|3, acc, 0, n)
			break
		}
		if vr+k < p {
			child := (vr + k + root) % p
			r.Recv(child, tag|3, tmp, 0, n)
			sumInto(acc.Bytes()[:n], tmp.Bytes()[:n])
			r.chargeCompute(n)
		}
	}
	if r.ID == root && rbuf != nil {
		copy(rbuf.Bytes()[:n], acc.Bytes()[:n])
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(sbuf, rbuf *cluster.Buffer, n int) {
	r.Reduce(0, sbuf, rbuf, n)
	r.Bcast(0, rbuf, 0, n)
}

// ReduceScatter reduces p·chunk bytes and scatters one chunk to each
// rank: rank i receives chunk i of the sum in rbuf.
func (r *Rank) ReduceScatter(sbuf, rbuf *cluster.Buffer, chunk int) {
	p := r.Size()
	total := chunk * p
	var full *cluster.Buffer
	if r.ID == 0 {
		full = r.Host.Alloc(total)
	}
	r.Reduce(0, sbuf, full, total)
	tag := r.nextCollTag()
	if r.ID == 0 {
		copy(rbuf.Bytes()[:chunk], full.Bytes()[:chunk])
		for dst := 1; dst < p; dst++ {
			r.Send(dst, tag|4, full, dst*chunk, chunk)
		}
	} else {
		r.Recv(0, tag|4, rbuf, 0, chunk)
	}
}

// Allgather gathers n bytes from every rank into rbuf (p·n bytes,
// rank i's block at offset i·n), using the ring algorithm.
func (r *Rank) Allgather(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	sizes := make([]int, r.Size())
	for i := range sizes {
		sizes[i] = n
	}
	r.Allgatherv(sbuf, n, rbuf, sizes)
}

// Allgatherv is Allgather with per-rank block sizes.
func (r *Rank) Allgatherv(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer, sizes []int) {
	p := r.Size()
	offs := make([]int, p+1)
	for i := 0; i < p; i++ {
		offs[i+1] = offs[i] + sizes[i]
	}
	copy(rbuf.Bytes()[offs[r.ID]:offs[r.ID]+sizes[r.ID]], sbuf.Bytes()[:sizes[r.ID]])
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	right := (r.ID + 1) % p
	left := (r.ID - 1 + p) % p
	// Ring: in round k, send the block received in round k-1.
	blk := r.ID
	for k := 0; k < p-1; k++ {
		recvBlk := (blk - 1 + p) % p
		r.SendRecv(right, tag|5, rbuf, offs[blk], sizes[blk],
			left, tag|5, rbuf, offs[recvBlk], sizes[recvBlk])
		blk = recvBlk
	}
}

// Alltoall exchanges n-byte chunks between every pair: sbuf holds p
// chunks (chunk j for rank j), rbuf receives p chunks (chunk i from
// rank i). Pairwise-exchange algorithm.
func (r *Rank) Alltoall(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	copy(rbuf.Bytes()[r.ID*n:(r.ID+1)*n], sbuf.Bytes()[r.ID*n:(r.ID+1)*n])
	tag := r.nextCollTag()
	for k := 1; k < p; k++ {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag|6, sbuf, dst*n, n, src, tag|6, rbuf, src*n, n)
	}
}

// Alltoallv is Alltoall with explicit per-destination send sizes and
// per-source receive sizes (used by the NAS IS bucket exchange).
func (r *Rank) Alltoallv(sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	p := r.Size()
	copy(rbuf.Bytes()[roffs[r.ID]:roffs[r.ID]+rcounts[r.ID]],
		sbuf.Bytes()[soffs[r.ID]:soffs[r.ID]+scounts[r.ID]])
	tag := r.nextCollTag()
	for k := 1; k < p; k++ {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag|7, sbuf, soffs[dst], scounts[dst],
			src, tag|7, rbuf, roffs[src], rcounts[src])
	}
}

// Gather collects n bytes from every rank into root's rbuf.
func (r *Rank) Gather(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	tag := r.nextCollTag()
	if r.ID == root {
		copy(rbuf.Bytes()[root*n:(root+1)*n], sbuf.Bytes()[:n])
		for src := 0; src < r.Size(); src++ {
			if src != root {
				r.Recv(src, tag|8, rbuf, src*n, n)
			}
		}
	} else {
		r.Send(root, tag|8, sbuf, 0, n)
	}
}
