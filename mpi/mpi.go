// Package mpi implements the message-passing middleware layer the
// paper benchmarks through (MPICH-MX in the original): ranks,
// tag/source matching, blocking and nonblocking point-to-point, and
// the collective operations the Intel MPI Benchmarks exercise (see
// coll.go for the collective algorithms and their tuning).
//
// It is transport-neutral: a World is built from openmx.Endpoint
// values, which both the Open-MX stack and the native MXoE baseline
// provide, so every benchmark runs unchanged over either (exactly how
// MPICH-MX ran over both MX and Open-MX thanks to API compatibility).
//
// Reductions operate on real float64 data (little-endian), so
// collective results are integrity-checked in tests, and reduction
// compute time is charged to the rank's core.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"omxsim/cluster"
	"omxsim/internal/cpu"
	"omxsim/openmx"
	"omxsim/sim"
)

// AnySource matches messages from any rank.
const AnySource = -1

// collTagBase separates collective traffic from user tags.
const collTagBase = 0x4000_0000

// World is a set of communicating ranks.
type World struct {
	C *cluster.Cluster
	// Tune selects collective algorithms by message and world size
	// (see Tuning). NewWorld installs DefaultTuning; override fields
	// before Spawn to pin or shift the selection.
	Tune  Tuning
	ranks []*Rank

	// Cached NIC-collective capability: whether every rank's endpoint
	// implements openmx.CollCapable, and the smallest firmware payload
	// cap across them (resolved once, at the first collective).
	nicCap *bool
	nicMax int
}

// NewWorld returns an empty world on the cluster.
func NewWorld(c *cluster.Cluster) *World {
	return &World{C: c, Tune: DefaultTuning()}
}

// AddRank registers the next rank (IDs are assigned in call order),
// communicating through ep, running on the given host and core.
func (w *World) AddRank(ep openmx.Endpoint, h *cluster.Host, core int) *Rank {
	r := &Rank{w: w, ID: len(w.ranks), EP: ep, Host: h, Core: core}
	r.scratch = h.Alloc(8)
	w.ranks = append(w.ranks, r)
	return r
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank id.
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Spawn starts one simulated process per rank running body. The
// caller then drives the cluster (c.Run / c.RunFor).
func (w *World) Spawn(body func(r *Rank)) {
	for _, r := range w.ranks {
		r := r
		w.C.Go(fmt.Sprintf("rank%d", r.ID), func(p *sim.Proc) {
			r.p = p
			body(r)
		})
	}
}

// Rank is one MPI process.
type Rank struct {
	w    *World
	ID   int
	EP   openmx.Endpoint
	Host *cluster.Host
	Core int

	p       *sim.Proc
	collSeq uint32
	scratch *cluster.Buffer

	// nicGroup is the rank's firmware collective group, registered on
	// first use when the offload tier selects the NIC (see coll.go).
	nicGroup openmx.CollGroup
}

// Proc returns the simulated process running this rank (valid inside
// Spawn's body).
func (r *Rank) Proc() *sim.Proc { return r.p }

// Now returns the current simulated time.
func (r *Rank) Now() sim.Time { return r.p.Now() }

// Size reports the world size.
func (r *Rank) Size() int { return r.w.Size() }

// Produce marks buf as freshly written by this rank's application
// code (cache warmth on its core).
func (r *Rank) Produce(buf *cluster.Buffer) { buf.Produce(r.Core) }

// matchFor encodes (source rank, tag) into the 64-bit MX match space.
func matchFor(src int, tag int) (match, mask uint64) {
	match = uint64(src+1)<<32 | uint64(uint32(tag))
	mask = ^uint64(0)
	if src == AnySource {
		match = uint64(uint32(tag))
		mask = 0xFFFFFFFF
	}
	return match, mask
}

func (r *Rank) addrOf(rank int) openmx.Addr { return r.w.ranks[rank].EP.Addr() }

// Isend starts a nonblocking send to rank dst.
func (r *Rank) Isend(dst, tag int, buf *cluster.Buffer, off, n int) openmx.Request {
	match := uint64(r.ID+1)<<32 | uint64(uint32(tag))
	return r.EP.ISend(r.p, r.addrOf(dst), match, buf, off, n)
}

// Irecv starts a nonblocking receive from rank src (or AnySource).
func (r *Rank) Irecv(src, tag int, buf *cluster.Buffer, off, n int) openmx.Request {
	match, mask := matchFor(src, tag)
	return r.EP.IRecv(r.p, match, mask, buf, off, n)
}

// Wait blocks until the request completes.
func (r *Rank) Wait(req openmx.Request) { r.EP.Wait(r.p, req) }

// Test drives a progress pass and reports whether the request
// completed — the polling half of the overlap methodology (compute in
// quanta, Test between them).
func (r *Rank) Test(req openmx.Request) bool { return r.EP.Test(r.p, req) }

// Send is a blocking send.
func (r *Rank) Send(dst, tag int, buf *cluster.Buffer, off, n int) {
	r.Wait(r.Isend(dst, tag, buf, off, n))
}

// Recv is a blocking receive; it returns the delivered length.
func (r *Rank) Recv(src, tag int, buf *cluster.Buffer, off, n int) int {
	req := r.Irecv(src, tag, buf, off, n)
	r.Wait(req)
	return req.Len()
}

// SendRecv posts the receive, sends, then waits for both (the
// deadlock-free MPI_Sendrecv shape).
func (r *Rank) SendRecv(dst, stag int, sbuf *cluster.Buffer, soff, sn int,
	src, rtag int, rbuf *cluster.Buffer, roff, rn int) {
	rreq := r.Irecv(src, rtag, rbuf, roff, rn)
	sreq := r.Isend(dst, stag, sbuf, soff, sn)
	r.Wait(rreq)
	r.Wait(sreq)
}

// nextCollTag reserves a fresh tag block for one collective call.
// All ranks invoke collectives in the same order (an MPI requirement),
// so their sequence counters agree.
func (r *Rank) nextCollTag() int {
	r.collSeq++
	return collTagBase | int(r.collSeq%0x100000)<<8
}

// chargeCompute accounts local computation (reduction arithmetic).
func (r *Rank) chargeCompute(bytes int) {
	d := sim.Duration(float64(bytes) / float64(r.Host.C.P.ReduceRate))
	r.Host.Machine().Sys.Core(r.Core).RunOn(r.p, cpu.AppCompute, d)
}

// Compute charges application computation time proportional to the
// bytes processed (at the platform's streaming compute rate). Used by
// application-level workloads such as the NAS IS proxy.
func (r *Rank) Compute(bytes int) { r.chargeCompute(bytes) }

// ComputeFor occupies the rank's core with application computation
// for exactly d, accounted to the app-compute CPU ledger (the
// methodology behind the `omxsim avail` figure). Slice long
// computations into quanta — calling ComputeFor repeatedly with
// Test/Progress in between — so bottom-half work can interleave, as
// it would under a preemptive kernel.
func (r *Rank) ComputeFor(d sim.Duration) {
	if d <= 0 {
		return
	}
	r.Host.Machine().Sys.Core(r.Core).RunOn(r.p, cpu.AppCompute, d)
}

// sumInto adds src's float64 values into dst (little-endian), the
// MPI_SUM/MPI_FLOAT reduction IMB uses. Only whole 8-byte words are
// reduced; a trailing fragment is left untouched.
func sumInto(dst, src []byte) {
	n := len(dst) / 8 * 8
	for i := 0; i < n; i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(a+b))
	}
}
