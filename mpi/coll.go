// Collective operations over the Rank point-to-point primitives.
//
// Every collective comes in (at least) two algorithm variants — a
// latency-oriented tree/recursive-doubling form for small messages
// and small worlds, and a bandwidth-oriented ring/pipelined form for
// large messages — selected per call from the World's Tuning by
// (message size, world size), exactly how MPICH-MX switched
// algorithms. Both variants of every operation are also exported
// directly (BcastBinomial, AllreduceRing, ...) so tests, ablations
// and figures can pin an algorithm regardless of tuning.
//
// All variants are built purely on ISend/IRecv/Wait, so they run
// unchanged over every stack (native MXoE, Open-MX, shared memory,
// I/OAT offload on or off). Tag discipline: each collective call
// reserves one fresh 256-value tag block via nextCollTag (all ranks
// call collectives in the same order, an MPI requirement, so their
// counters agree); phases inside one call use globally unique
// sub-channel constants below the block.
package mpi

import (
	"fmt"

	"omxsim/cluster"
	"omxsim/openmx"
)

// Algorithm names reported by Tuning's *Alg selectors and accepted in
// figure annotations.
const (
	AlgBinomial          = "binomial"
	AlgScatterAllgather  = "scatter-allgather"
	AlgRecursiveDoubling = "recursive-doubling"
	AlgRing              = "ring"
	AlgReduceScatter     = "reduce-scatter"
	AlgBruck             = "bruck"
	AlgPairwise          = "pairwise"
	AlgPosted            = "posted"
	AlgLinear            = "linear"
	AlgDissemination     = "dissemination"
	AlgTree              = "tree"
	// AlgNIC is the firmware-offloaded variant: the whole collective
	// runs as a tree state machine on the NIC (openmx.CollCapable),
	// the host posting one descriptor and waiting for one completion.
	AlgNIC = "nic"
)

// Offload tiers for Tuning.Offload: where a collective executes.
// OffloadAuto resolves per call — the NIC when every endpoint is
// collective-capable, the world is at least NICCollMinRanks, and the
// payload fits NICCollMaxBytes; the host algorithms otherwise.
// OffloadHost pins the host algorithms; OffloadNIC pins the firmware
// path (panicking if the transport cannot offload, like calling a
// pinned NIC variant directly).
const (
	OffloadAuto = "auto"
	OffloadHost = "host"
	OffloadNIC  = "nic"
)

// Sub-channel constants: the low byte of a collective's tag block,
// one per (operation, phase), so concurrent phases of one call can
// never cross-match.
const (
	subBarrier       = 1  // dissemination rounds / tree gather
	subBarrierRel    = 2  // tree release broadcast
	subBcastTree     = 3  // binomial broadcast
	subBcastScatter  = 4  // scatter-allgather: binomial scatter phase
	subBcastGather   = 5  // scatter-allgather: ring allgather phase
	subReduceTree    = 6  // binomial reduce
	subReduceRS      = 7  // reduce-scatter phase of large reduce
	subReduceGather  = 8  // chunk gather to root
	subARFold        = 9  // allreduce non-power-of-two fold
	subARDoubling    = 10 // allreduce recursive doubling rounds
	subARUnfold      = 11 // allreduce result return to folded ranks
	subARRingRS      = 12 // ring allreduce: reduce-scatter phase
	subARRingAG      = 13 // ring allreduce: allgather phase
	subAllgatherRing = 14
	subAllgatherRD   = 15
	subA2APairwise   = 16
	subA2ABruck      = 17
	subA2AVPairwise  = 18
	subA2AVPosted    = 19
	subGatherLinear  = 20
	subGatherTree    = 21
	subScatterLinear = 22
	subScatterTree   = 23
	subScan          = 24 // inclusive-scan doubling rounds
)

// Tuning holds the thresholds that pick a collective algorithm from
// (message size, world size). The zero value is not meaningful; use
// DefaultTuning (installed by NewWorld) and override fields as
// needed. Each *Alg method is the single source of truth for the
// decision, shared by the dispatchers, the tests and the figure
// annotations.
type Tuning struct {
	// BcastSegMinBytes/MinRanks: at or above both, Bcast switches
	// from the binomial tree to van de Geijn scatter + ring
	// allgather (moves 2·n instead of n·log p per rank).
	BcastSegMinBytes int
	BcastSegMinRanks int
	// AllreduceRingMinBytes: at or above, Allreduce switches from
	// recursive doubling to ring reduce-scatter + allgather
	// (bandwidth-optimal, each rank moves ≈2·n regardless of p).
	AllreduceRingMinBytes int
	// AllreduceRingMinChunkBytes additionally requires the ring's
	// per-rank chunk (n/p) to reach this floor: on very large worlds
	// the ring's 2(p−1) rounds of tiny chunks are latency-dominated
	// and recursive doubling's log p rounds win even for large n.
	AllreduceRingMinChunkBytes int
	// ReduceRSMinBytes: at or above, Reduce switches from the
	// binomial tree to reduce-scatter + chunk gather (Rabenseifner).
	ReduceRSMinBytes int
	// AllgatherRDMaxBytes: at or below this total (p·n) on a
	// power-of-two world, Allgather uses recursive doubling (log p
	// rounds) instead of the ring (p−1 rounds).
	AllgatherRDMaxBytes int
	// AlltoallBruckMaxBytes/MinRanks: at or below the per-pair size
	// and at or above the rank count, Alltoall uses Bruck's log p
	// rounds of aggregated blocks instead of p−1 pairwise exchanges.
	AlltoallBruckMaxBytes int
	AlltoallBruckMinRanks int
	// AlltoallvPostedMaxRanks: at or below, Alltoallv posts every
	// receive and send at once (full overlap); above, it runs the
	// congestion-bounded pairwise schedule.
	AlltoallvPostedMaxRanks int
	// GatherTreeMaxBytes/MinRanks: at or below the block size and at
	// or above the rank count, Gather and Scatter use the binomial
	// tree (log p latency) instead of the linear root loop.
	GatherTreeMaxBytes int
	GatherTreeMinRanks int
	// BarrierTreeMinRanks: at or above, Barrier uses the
	// gather/release tree (2(p−1) messages) instead of dissemination
	// (p·log p messages, but lower latency on small worlds).
	BarrierTreeMinRanks int
	// Offload selects where Barrier/Bcast/Allreduce/Scan execute:
	// OffloadAuto (the default; also the zero value's behaviour)
	// resolves per call, OffloadHost and OffloadNIC pin a tier. See
	// CollOffload, the single source of truth for the decision.
	Offload string
	// NICCollMinRanks: under OffloadAuto, worlds below this stay on
	// the host algorithms — on small worlds the log p hops are cheap
	// and the host CPU saved is negligible, while the NIC's slower
	// combining rate still applies.
	NICCollMinRanks int
	// NICCollMaxBytes: under OffloadAuto, payloads above this stay on
	// the host (the firmware's segment state is bounded; bulk data
	// prefers the bandwidth-optimal host rings anyway).
	NICCollMaxBytes int
}

// DefaultTuning returns MPICH-style selection thresholds.
func DefaultTuning() Tuning {
	return Tuning{
		BcastSegMinBytes:           64 << 10,
		BcastSegMinRanks:           4,
		AllreduceRingMinBytes:      32 << 10,
		AllreduceRingMinChunkBytes: 1 << 10,
		ReduceRSMinBytes:           64 << 10,
		AllgatherRDMaxBytes:        64 << 10,
		AlltoallBruckMaxBytes:      1 << 10,
		AlltoallBruckMinRanks:      8,
		AlltoallvPostedMaxRanks:    4,
		GatherTreeMaxBytes:         16 << 10,
		GatherTreeMinRanks:         4,
		BarrierTreeMinRanks:        16,
		Offload:                    OffloadAuto,
		NICCollMinRanks:            32,
		NICCollMaxBytes:            256 << 10,
	}
}

// CollOffload resolves the offload tier for an n-byte collective on p
// ranks: OffloadNIC when the tuning pins it, or under OffloadAuto
// when the transport is capable (every endpoint implements
// openmx.CollCapable and the payload fits its firmware cap) and the
// (size, world) thresholds select the NIC. The dispatchers, tests and
// figure footers all consult this method.
func (t Tuning) CollOffload(n, p int, capable bool) string {
	switch t.Offload {
	case OffloadHost:
		return OffloadHost
	case OffloadNIC:
		return OffloadNIC
	}
	if capable && p >= t.NICCollMinRanks && n <= t.NICCollMaxBytes {
		return OffloadNIC
	}
	return OffloadHost
}

// ScanAlg selects the host scan algorithm for n bytes on p ranks
// (one host variant exists: recursive doubling, Hillis-Steele).
func (t Tuning) ScanAlg(n, p int) string { return AlgRecursiveDoubling }

// BcastAlg selects the broadcast algorithm for n bytes on p ranks.
func (t Tuning) BcastAlg(n, p int) string {
	if n >= t.BcastSegMinBytes && p >= t.BcastSegMinRanks {
		return AlgScatterAllgather
	}
	return AlgBinomial
}

// ReduceAlg selects the reduce algorithm for n bytes on p ranks.
// The reduce-scatter path needs word-aligned chunks, so byte counts
// that are not a multiple of 8 always reduce over the tree.
func (t Tuning) ReduceAlg(n, p int) string {
	if n >= t.ReduceRSMinBytes && n%8 == 0 && p > 2 {
		return AlgReduceScatter
	}
	return AlgBinomial
}

// AllreduceAlg selects the allreduce algorithm for n bytes on p ranks.
func (t Tuning) AllreduceAlg(n, p int) string {
	if n >= t.AllreduceRingMinBytes && n/p >= t.AllreduceRingMinChunkBytes && n%8 == 0 && p > 2 {
		return AlgRing
	}
	return AlgRecursiveDoubling
}

// AllgatherAlg selects the allgather algorithm for n bytes per rank
// on p ranks.
func (t Tuning) AllgatherAlg(n, p int) string {
	if p*n <= t.AllgatherRDMaxBytes && isPow2(p) {
		return AlgRecursiveDoubling
	}
	return AlgRing
}

// AlltoallAlg selects the all-to-all algorithm for n bytes per pair
// on p ranks.
func (t Tuning) AlltoallAlg(n, p int) string {
	if n <= t.AlltoallBruckMaxBytes && p >= t.AlltoallBruckMinRanks {
		return AlgBruck
	}
	return AlgPairwise
}

// AlltoallvAlg selects the vector all-to-all schedule for p ranks.
func (t Tuning) AlltoallvAlg(p int) string {
	if p <= t.AlltoallvPostedMaxRanks {
		return AlgPosted
	}
	return AlgPairwise
}

// GatherAlg selects the gather algorithm for n-byte blocks on p ranks.
func (t Tuning) GatherAlg(n, p int) string {
	if n <= t.GatherTreeMaxBytes && p >= t.GatherTreeMinRanks {
		return AlgBinomial
	}
	return AlgLinear
}

// ScatterAlg selects the scatter algorithm for n-byte blocks on p
// ranks (same trade-off as Gather).
func (t Tuning) ScatterAlg(n, p int) string { return t.GatherAlg(n, p) }

// BarrierAlg selects the barrier algorithm for p ranks.
func (t Tuning) BarrierAlg(p int) string {
	if p >= t.BarrierTreeMinRanks {
		return AlgTree
	}
	return AlgDissemination
}

func (r *Rank) tune() Tuning { return r.w.Tune }

func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// ceilPow2 returns the smallest power of two ≥ p.
func ceilPow2(p int) int {
	m := 1
	for m < p {
		m <<= 1
	}
	return m
}

// floorPow2 returns the largest power of two ≤ p.
func floorPow2(p int) int {
	m := 1
	for m*2 <= p {
		m <<= 1
	}
	return m
}

// ringChunk returns the byte range [lo, hi) of chunk i when n bytes
// (a whole number of 8-byte reduction words) split into p contiguous
// word-aligned chunks. Chunks stay word-aligned so reduction values
// are never split across a chunk boundary.
func ringChunk(i, n, p int) (lo, hi int) {
	words := n / 8
	return i * words / p * 8, (i + 1) * words / p * 8
}

// vrank maps a virtual rank (root rotated to 0) back to a real rank.
func vrank(v, root, p int) int { return (v + root) % p }

// ---------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------

// Barrier synchronizes all ranks. The execution tier — NIC firmware
// or host — and the host algorithm (dissemination or gather/release
// tree) are picked from the world's Tuning.
func (r *Rank) Barrier() {
	p := r.Size()
	if p == 1 {
		return
	}
	if r.collOffloadNIC(0) {
		r.BarrierNIC()
		return
	}
	tag := r.nextCollTag()
	if r.tune().BarrierAlg(p) == AlgTree {
		r.barrierTree(tag)
	} else {
		r.barrierDissemination(tag)
	}
}

// BarrierDissemination runs the dissemination barrier (log₂ p rounds,
// every rank active in every round) regardless of tuning.
func (r *Rank) BarrierDissemination() {
	if r.Size() > 1 {
		r.barrierDissemination(r.nextCollTag())
	}
}

// BarrierTree runs the gather/release tree barrier (2(p−1) messages
// total) regardless of tuning.
func (r *Rank) BarrierTree() {
	if r.Size() > 1 {
		r.barrierTree(r.nextCollTag())
	}
}

func (r *Rank) barrierDissemination(tag int) {
	p := r.Size()
	for k := 1; k < p; k <<= 1 {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag|subBarrier, r.scratch, 0, 0, src, tag|subBarrier, r.scratch, 0, 0)
	}
}

func (r *Rank) barrierTree(tag int) {
	p, vr := r.Size(), r.ID
	// Gather phase: leaves report up the binomial tree to rank 0.
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			r.Send(vr&^mask, tag|subBarrier, r.scratch, 0, 0)
			break
		}
		if vr+mask < p {
			r.Recv(vr+mask, tag|subBarrier, r.scratch, 0, 0)
		}
	}
	// Release phase: rank 0 broadcasts the go signal back down.
	r.bcastBinomial(tag|subBarrierRel, 0, r.scratch, 0, 0)
}

// ---------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------

// Bcast broadcasts n bytes at buf[off:] from root. Small messages run
// the binomial tree; large ones on enough ranks run van de Geijn
// scatter + ring allgather (2·n bytes per rank instead of n·log p).
func (r *Rank) Bcast(root int, buf *cluster.Buffer, off, n int) {
	p := r.Size()
	if p == 1 {
		return
	}
	if r.collOffloadNIC(n) {
		r.BcastNIC(root, buf, off, n)
		return
	}
	tag := r.nextCollTag()
	if r.tune().BcastAlg(n, p) == AlgScatterAllgather {
		r.bcastScatterAllgather(tag, root, buf, off, n)
	} else {
		r.bcastBinomial(tag|subBcastTree, root, buf, off, n)
	}
}

// BcastBinomial runs the binomial-tree broadcast regardless of tuning.
func (r *Rank) BcastBinomial(root int, buf *cluster.Buffer, off, n int) {
	if r.Size() > 1 {
		r.bcastBinomial(r.nextCollTag()|subBcastTree, root, buf, off, n)
	}
}

// BcastScatterAllgather runs the van de Geijn large-message broadcast
// (binomial scatter of segments, then ring allgather) regardless of
// tuning.
func (r *Rank) BcastScatterAllgather(root int, buf *cluster.Buffer, off, n int) {
	if r.Size() > 1 {
		r.bcastScatterAllgather(r.nextCollTag(), root, buf, off, n)
	}
}

// bcastBinomial: receive from the parent at the level of our lowest
// set bit (virtual ranks, root rotated to 0), forward to children
// below that level. tag is the complete message tag.
func (r *Rank) bcastBinomial(tag, root int, buf *cluster.Buffer, off, n int) {
	p := r.Size()
	vr := (r.ID - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			r.Recv(vrank(vr&^mask, root, p), tag, buf, off, n)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			r.Send(vrank(vr+mask, root, p), tag, buf, off, n)
		}
		mask >>= 1
	}
}

// bcastScatterAllgather splits the message into p segments (segment i
// = bytes [i·n/p, (i+1)·n/p)), binomial-scatters each subtree's
// segments down the tree, then ring-allgathers the segments among all
// ranks.
func (r *Rank) bcastScatterAllgather(tag, root int, buf *cluster.Buffer, off, n int) {
	p := r.Size()
	vr := (r.ID - root + p) % p
	seg := func(i int) int { return i * n / p }
	// Scatter phase: the parent sends each child the byte range of
	// the child's whole subtree [child, child+mask).
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			lo, hi := seg(vr), seg(min(vr+mask, p))
			r.Recv(vrank(vr&^mask, root, p), tag|subBcastScatter, buf, off+lo, hi-lo)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if child := vr + mask; child < p {
			lo, hi := seg(child), seg(min(child+mask, p))
			r.Send(vrank(child, root, p), tag|subBcastScatter, buf, off+lo, hi-lo)
		}
		mask >>= 1
	}
	// Allgather phase: ring over virtual ranks; in round k each rank
	// forwards the segment it received in round k−1.
	right := vrank((vr+1)%p, root, p)
	left := vrank((vr-1+p)%p, root, p)
	blk := vr
	for k := 0; k < p-1; k++ {
		next := (blk - 1 + p) % p
		r.SendRecv(right, tag|subBcastGather, buf, off+seg(blk), seg(blk+1)-seg(blk),
			left, tag|subBcastGather, buf, off+seg(next), seg(next+1)-seg(next))
		blk = next
	}
}

// ---------------------------------------------------------------
// Reduce / Allreduce
// ---------------------------------------------------------------

// Reduce sums n bytes of float64s from every rank's sbuf into root's
// rbuf. Non-root ranks may pass a nil rbuf. Small messages climb the
// binomial tree; large word-aligned ones run reduce-scatter followed
// by a chunk gather to the root (Rabenseifner).
func (r *Rank) Reduce(root int, sbuf, rbuf *cluster.Buffer, n int) {
	tag := r.nextCollTag()
	if r.tune().ReduceAlg(n, r.Size()) == AlgReduceScatter {
		r.reduceRSGather(tag, root, sbuf, rbuf, n)
	} else {
		r.reduceBinomial(tag|subReduceTree, root, sbuf, rbuf, n)
	}
}

// ReduceBinomial runs the binomial-tree reduce regardless of tuning.
func (r *Rank) ReduceBinomial(root int, sbuf, rbuf *cluster.Buffer, n int) {
	r.reduceBinomial(r.nextCollTag()|subReduceTree, root, sbuf, rbuf, n)
}

// ReduceRSGather runs the large-message reduce (ring reduce-scatter,
// then chunk gather to root) regardless of tuning. n must be a
// multiple of 8.
func (r *Rank) ReduceRSGather(root int, sbuf, rbuf *cluster.Buffer, n int) {
	r.reduceRSGather(r.nextCollTag(), root, sbuf, rbuf, n)
}

func (r *Rank) reduceBinomial(tag, root int, sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	// Accumulate into a local temporary.
	acc := r.Host.Alloc(n)
	copy(acc.Bytes(), sbuf.Bytes()[:n])
	vr := (r.ID - root + p) % p
	tmp := r.Host.Alloc(n)
	for k := 1; k < p; k <<= 1 {
		if vr&k != 0 {
			r.Send(vrank(vr&^k, root, p), tag, acc, 0, n)
			break
		}
		if vr+k < p {
			r.Recv(vrank(vr+k, root, p), tag, tmp, 0, n)
			sumInto(acc.Bytes()[:n], tmp.Bytes()[:n])
			r.chargeCompute(n)
		}
	}
	if r.ID == root && rbuf != nil {
		copy(rbuf.Bytes()[:n], acc.Bytes()[:n])
	}
}

func (r *Rank) reduceRSGather(tag, root int, sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	if n%8 != 0 {
		panic(fmt.Sprintf("mpi: reduce-scatter path needs 8-byte-aligned length, got %d", n))
	}
	if p == 1 {
		if rbuf != nil {
			copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		}
		return
	}
	acc := r.Host.Alloc(n)
	copy(acc.Bytes(), sbuf.Bytes()[:n])
	r.ringReduceScatter(tag|subReduceRS, acc, n)
	// After the ring, rank i holds the fully reduced chunk (i+1) mod p.
	own := (r.ID + 1) % p
	lo, hi := ringChunk(own, n, p)
	if r.ID == root {
		out := rbuf
		if out == nil {
			out = acc // keep the schedule identical even with no rbuf
		} else {
			copy(out.Bytes()[lo:hi], acc.Bytes()[lo:hi])
		}
		for src := 0; src < p; src++ {
			if src == root {
				continue
			}
			slo, shi := ringChunk((src+1)%p, n, p)
			if shi > slo {
				r.Recv(src, tag|subReduceGather, out, slo, shi-slo)
			}
		}
	} else if hi > lo {
		r.Send(root, tag|subReduceGather, acc, lo, hi-lo)
	}
}

// ringReduceScatter runs p−1 ring steps over acc's word-aligned
// chunks; afterwards chunk (ID+1) mod p of acc holds the full sum.
func (r *Rank) ringReduceScatter(tag int, acc *cluster.Buffer, n int) {
	p := r.Size()
	right := (r.ID + 1) % p
	left := (r.ID - 1 + p) % p
	maxChunk := (n/8 + p - 1) / p * 8 // upper bound on any chunk size
	tmp := r.Host.Alloc(maxChunk)
	for step := 0; step < p-1; step++ {
		sendC := ((r.ID-step)%p + p) % p
		recvC := ((r.ID-step-1)%p + p) % p
		slo, shi := ringChunk(sendC, n, p)
		rlo, rhi := ringChunk(recvC, n, p)
		r.SendRecv(right, tag, acc, slo, shi-slo, left, tag, tmp, 0, rhi-rlo)
		sumInto(acc.Bytes()[rlo:rhi], tmp.Bytes()[:rhi-rlo])
		r.chargeCompute(rhi - rlo)
	}
}

// Allreduce sums n bytes of float64s across all ranks into every
// rank's rbuf. Small messages run recursive doubling (with a fold to
// the nearest power of two); large word-aligned ones run the
// bandwidth-optimal ring (reduce-scatter + allgather).
func (r *Rank) Allreduce(sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	if p == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	if r.collOffloadNIC(n) {
		r.AllreduceNIC(sbuf, rbuf, n)
		return
	}
	tag := r.nextCollTag()
	if r.tune().AllreduceAlg(n, p) == AlgRing {
		r.allreduceRing(tag, sbuf, rbuf, n)
	} else {
		r.allreduceRD(tag, sbuf, rbuf, n)
	}
}

// AllreduceRecursiveDoubling runs the recursive-doubling allreduce
// regardless of tuning.
func (r *Rank) AllreduceRecursiveDoubling(sbuf, rbuf *cluster.Buffer, n int) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.allreduceRD(r.nextCollTag(), sbuf, rbuf, n)
}

// AllreduceRing runs the ring allreduce regardless of tuning. n must
// be a multiple of 8.
func (r *Rank) AllreduceRing(sbuf, rbuf *cluster.Buffer, n int) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.allreduceRing(r.nextCollTag(), sbuf, rbuf, n)
}

// allreduceRD: fold the ranks beyond the largest power of two into
// their even neighbours, recursive-double among the power-of-two set,
// then return the result to the folded ranks.
func (r *Rank) allreduceRD(tag int, sbuf, rbuf *cluster.Buffer, n int) {
	p, id := r.Size(), r.ID
	copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
	tmp := r.Host.Alloc(n)
	pof2 := floorPow2(p)
	rem := p - pof2
	newID := -1
	switch {
	case id < 2*rem && id%2 == 0:
		r.Send(id+1, tag|subARFold, rbuf, 0, n)
	case id < 2*rem:
		r.Recv(id-1, tag|subARFold, tmp, 0, n)
		sumInto(rbuf.Bytes()[:n], tmp.Bytes()[:n])
		r.chargeCompute(n)
		newID = id / 2
	default:
		newID = id - rem
	}
	if newID >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			pn := newID ^ mask
			partner := pn + rem
			if pn < rem {
				partner = pn*2 + 1
			}
			r.SendRecv(partner, tag|subARDoubling, rbuf, 0, n,
				partner, tag|subARDoubling, tmp, 0, n)
			sumInto(rbuf.Bytes()[:n], tmp.Bytes()[:n])
			r.chargeCompute(n)
		}
	}
	if id < 2*rem {
		if id%2 == 0 {
			r.Recv(id+1, tag|subARUnfold, rbuf, 0, n)
		} else {
			r.Send(id-1, tag|subARUnfold, rbuf, 0, n)
		}
	}
}

// allreduceRing: ring reduce-scatter, then ring allgather of the
// reduced chunks. Every rank sends and receives ≈2·n bytes total
// regardless of world size.
func (r *Rank) allreduceRing(tag int, sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	if n%8 != 0 {
		panic(fmt.Sprintf("mpi: ring allreduce needs 8-byte-aligned length, got %d", n))
	}
	copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
	r.ringReduceScatter(tag|subARRingRS, rbuf, n)
	right := (r.ID + 1) % p
	left := (r.ID - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendC := ((r.ID+1-step)%p + p) % p
		recvC := ((r.ID-step)%p + p) % p
		slo, shi := ringChunk(sendC, n, p)
		rlo, rhi := ringChunk(recvC, n, p)
		r.SendRecv(right, tag|subARRingAG, rbuf, slo, shi-slo,
			left, tag|subARRingAG, rbuf, rlo, rhi-rlo)
	}
}

// Scan computes the inclusive prefix sum: rank i's rbuf receives the
// float64 sum of every rank's n-byte sbuf from ranks 0..i (MPI_Scan
// with MPI_SUM). The execution tier — NIC firmware chain or the host
// recursive-doubling algorithm — is picked from the world's Tuning.
func (r *Rank) Scan(sbuf, rbuf *cluster.Buffer, n int) {
	p := r.Size()
	if p == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	if r.collOffloadNIC(n) {
		r.ScanNIC(sbuf, rbuf, n)
		return
	}
	r.scanRD(r.nextCollTag()|subScan, sbuf, rbuf, n)
}

// ScanRecursiveDoubling runs the host recursive-doubling scan
// (Hillis-Steele) regardless of tuning.
func (r *Rank) ScanRecursiveDoubling(sbuf, rbuf *cluster.Buffer, n int) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.scanRD(r.nextCollTag()|subScan, sbuf, rbuf, n)
}

// scanRD: in round k (distance d = 2^k) rank i sends its running
// prefix to rank i+d and folds in the prefix from rank i−d; after
// log₂ p rounds every rank holds the sum of contributions 0..i. The
// outgoing prefix is snapshot before the round's exchange so the
// incoming addition never leaks into it.
func (r *Rank) scanRD(tag int, sbuf, rbuf *cluster.Buffer, n int) {
	p, id := r.Size(), r.ID
	copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
	snap := r.Host.Alloc(max(n, 1))
	tmp := r.Host.Alloc(max(n, 1))
	for d := 1; d < p; d <<= 1 {
		copy(snap.Bytes()[:n], rbuf.Bytes()[:n])
		var sreq, rreq openmx.Request
		if id+d < p {
			sreq = r.Isend(id+d, tag, snap, 0, n)
		}
		if id-d >= 0 {
			rreq = r.Irecv(id-d, tag, tmp, 0, n)
		}
		if rreq != nil {
			r.Wait(rreq)
			sumInto(rbuf.Bytes()[:n], tmp.Bytes()[:n])
			r.chargeCompute(n)
		}
		if sreq != nil {
			r.Wait(sreq)
		}
	}
}

// ReduceScatter reduces p·chunk bytes and scatters one chunk to each
// rank: rank i receives chunk i of the sum in rbuf. Composed from the
// tuned Reduce and Scatter, so both phases pick their own algorithm.
func (r *Rank) ReduceScatter(sbuf, rbuf *cluster.Buffer, chunk int) {
	p := r.Size()
	total := chunk * p
	var full *cluster.Buffer
	if r.ID == 0 {
		full = r.Host.Alloc(total)
	}
	r.Reduce(0, sbuf, full, total)
	r.Scatter(0, full, chunk, rbuf)
}

// ---------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------

// Allgather gathers n bytes from every rank into rbuf (p·n bytes,
// rank i's block at offset i·n). Small totals on power-of-two worlds
// run recursive doubling; everything else runs the ring.
func (r *Rank) Allgather(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	if p > 1 && r.tune().AllgatherAlg(n, p) == AlgRecursiveDoubling {
		r.allgatherRD(r.nextCollTag()|subAllgatherRD, sbuf, n, rbuf)
		return
	}
	r.AllgatherRing(sbuf, n, rbuf)
}

// AllgatherRecursiveDoubling runs the recursive-doubling allgather
// regardless of tuning; the world size must be a power of two.
func (r *Rank) AllgatherRecursiveDoubling(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.allgatherRD(r.nextCollTag()|subAllgatherRD, sbuf, n, rbuf)
}

// AllgatherRing runs the ring allgather regardless of tuning.
func (r *Rank) AllgatherRing(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	sizes := make([]int, r.Size())
	for i := range sizes {
		sizes[i] = n
	}
	r.Allgatherv(sbuf, n, rbuf, sizes)
}

func (r *Rank) allgatherRD(tag int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p, id := r.Size(), r.ID
	if !isPow2(p) {
		panic(fmt.Sprintf("mpi: recursive-doubling allgather needs a power-of-two world, got %d", p))
	}
	copy(rbuf.Bytes()[id*n:(id+1)*n], sbuf.Bytes()[:n])
	// At step mask, each rank holds the mask consecutive blocks of
	// its group [base, base+mask) and swaps them with its partner's.
	for mask := 1; mask < p; mask <<= 1 {
		partner := id ^ mask
		base := id &^ (mask - 1)
		pbase := base ^ mask
		r.SendRecv(partner, tag, rbuf, base*n, mask*n,
			partner, tag, rbuf, pbase*n, mask*n)
	}
}

// Allgatherv is Allgather with per-rank block sizes (ring schedule:
// in round k, forward the block received in round k−1).
func (r *Rank) Allgatherv(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer, sizes []int) {
	p := r.Size()
	offs := make([]int, p+1)
	for i := 0; i < p; i++ {
		offs[i+1] = offs[i] + sizes[i]
	}
	copy(rbuf.Bytes()[offs[r.ID]:offs[r.ID]+sizes[r.ID]], sbuf.Bytes()[:sizes[r.ID]])
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	right := (r.ID + 1) % p
	left := (r.ID - 1 + p) % p
	blk := r.ID
	for k := 0; k < p-1; k++ {
		recvBlk := (blk - 1 + p) % p
		r.SendRecv(right, tag|subAllgatherRing, rbuf, offs[blk], sizes[blk],
			left, tag|subAllgatherRing, rbuf, offs[recvBlk], sizes[recvBlk])
		blk = recvBlk
	}
}

// ---------------------------------------------------------------
// Alltoall / Alltoallv
// ---------------------------------------------------------------

// Alltoall exchanges n-byte chunks between every pair: sbuf holds p
// chunks (chunk j for rank j), rbuf receives p chunks (chunk i from
// rank i). Small chunks on large worlds run Bruck's algorithm (log p
// rounds of aggregated blocks); otherwise the pairwise exchange.
func (r *Rank) Alltoall(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	copy(rbuf.Bytes()[r.ID*n:(r.ID+1)*n], sbuf.Bytes()[r.ID*n:(r.ID+1)*n])
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	if r.tune().AlltoallAlg(n, p) == AlgBruck {
		r.alltoallBruck(tag|subA2ABruck, sbuf, n, rbuf)
	} else {
		r.alltoallPairwise(tag|subA2APairwise, sbuf, n, rbuf)
	}
}

// AlltoallPairwise runs the pairwise-exchange all-to-all regardless
// of tuning.
func (r *Rank) AlltoallPairwise(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	copy(rbuf.Bytes()[r.ID*n:(r.ID+1)*n], sbuf.Bytes()[r.ID*n:(r.ID+1)*n])
	if r.Size() > 1 {
		r.alltoallPairwise(r.nextCollTag()|subA2APairwise, sbuf, n, rbuf)
	}
}

// AlltoallBruck runs Bruck's all-to-all regardless of tuning.
func (r *Rank) AlltoallBruck(sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	copy(rbuf.Bytes()[r.ID*n:(r.ID+1)*n], sbuf.Bytes()[r.ID*n:(r.ID+1)*n])
	if r.Size() > 1 {
		r.alltoallBruck(r.nextCollTag()|subA2ABruck, sbuf, n, rbuf)
	}
}

func (r *Rank) alltoallPairwise(tag int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	for k := 1; k < p; k++ {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag, sbuf, dst*n, n, src, tag, rbuf, src*n, n)
	}
}

// alltoallBruck: rotate chunks so index i is the data for rank ID+i,
// then in round 2^k ship every chunk whose index has bit k set
// forward by 2^k ranks (packed into one message), and finally unpick
// the arrived chunks — index i then holds the data from rank ID−i.
func (r *Rank) alltoallBruck(tag int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p, id := r.Size(), r.ID
	tmp := r.Host.Alloc(p * n)
	pack := r.Host.Alloc((p/2 + 1) * n)
	unpack := r.Host.Alloc((p/2 + 1) * n)
	for i := 0; i < p; i++ {
		src := (id + i) % p
		copy(tmp.Bytes()[i*n:(i+1)*n], sbuf.Bytes()[src*n:(src+1)*n])
	}
	for mask := 1; mask < p; mask <<= 1 {
		k := 0
		for i := 0; i < p; i++ {
			if i&mask != 0 {
				copy(pack.Bytes()[k*n:(k+1)*n], tmp.Bytes()[i*n:(i+1)*n])
				k++
			}
		}
		dst := (id + mask) % p
		src := (id - mask + p) % p
		r.SendRecv(dst, tag, pack, 0, k*n, src, tag, unpack, 0, k*n)
		k = 0
		for i := 0; i < p; i++ {
			if i&mask != 0 {
				copy(tmp.Bytes()[i*n:(i+1)*n], unpack.Bytes()[k*n:(k+1)*n])
				k++
			}
		}
	}
	for src := 0; src < p; src++ {
		i := (id - src + p) % p
		copy(rbuf.Bytes()[src*n:(src+1)*n], tmp.Bytes()[i*n:(i+1)*n])
	}
}

// Alltoallv is Alltoall with explicit per-destination send sizes and
// per-source receive sizes (used by the NAS IS bucket exchange).
// Small worlds post everything at once for maximal overlap; larger
// ones run the congestion-bounded pairwise schedule.
func (r *Rank) Alltoallv(sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	p := r.Size()
	copy(rbuf.Bytes()[roffs[r.ID]:roffs[r.ID]+rcounts[r.ID]],
		sbuf.Bytes()[soffs[r.ID]:soffs[r.ID]+scounts[r.ID]])
	if p == 1 {
		return
	}
	tag := r.nextCollTag()
	if r.tune().AlltoallvAlg(p) == AlgPosted {
		r.alltoallvPosted(tag|subA2AVPosted, sbuf, soffs, scounts, rbuf, roffs, rcounts)
	} else {
		r.alltoallvPairwise(tag|subA2AVPairwise, sbuf, soffs, scounts, rbuf, roffs, rcounts)
	}
}

// AlltoallvPairwise runs the pairwise-exchange schedule regardless of
// tuning.
func (r *Rank) AlltoallvPairwise(sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	copy(rbuf.Bytes()[roffs[r.ID]:roffs[r.ID]+rcounts[r.ID]],
		sbuf.Bytes()[soffs[r.ID]:soffs[r.ID]+scounts[r.ID]])
	if r.Size() > 1 {
		r.alltoallvPairwise(r.nextCollTag()|subA2AVPairwise, sbuf, soffs, scounts, rbuf, roffs, rcounts)
	}
}

// AlltoallvPosted posts every receive and send at once regardless of
// tuning.
func (r *Rank) AlltoallvPosted(sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	copy(rbuf.Bytes()[roffs[r.ID]:roffs[r.ID]+rcounts[r.ID]],
		sbuf.Bytes()[soffs[r.ID]:soffs[r.ID]+scounts[r.ID]])
	if r.Size() > 1 {
		r.alltoallvPosted(r.nextCollTag()|subA2AVPosted, sbuf, soffs, scounts, rbuf, roffs, rcounts)
	}
}

func (r *Rank) alltoallvPairwise(tag int, sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	p := r.Size()
	for k := 1; k < p; k++ {
		dst := (r.ID + k) % p
		src := (r.ID - k + p) % p
		r.SendRecv(dst, tag, sbuf, soffs[dst], scounts[dst],
			src, tag, rbuf, roffs[src], rcounts[src])
	}
}

func (r *Rank) alltoallvPosted(tag int, sbuf *cluster.Buffer, soffs, scounts []int, rbuf *cluster.Buffer, roffs, rcounts []int) {
	p := r.Size()
	reqs := make([]openmx.Request, 0, 2*(p-1))
	for k := 1; k < p; k++ {
		src := (r.ID - k + p) % p
		reqs = append(reqs, r.Irecv(src, tag, rbuf, roffs[src], rcounts[src]))
	}
	for k := 1; k < p; k++ {
		dst := (r.ID + k) % p
		reqs = append(reqs, r.Isend(dst, tag, sbuf, soffs[dst], scounts[dst]))
	}
	for _, q := range reqs {
		r.Wait(q)
	}
}

// ---------------------------------------------------------------
// Gather / Scatter
// ---------------------------------------------------------------

// Gather collects n bytes from every rank into root's rbuf (rank i's
// block at offset i·n; non-root ranks may pass a nil rbuf). Small
// blocks on enough ranks climb the binomial tree; large ones run the
// linear root loop.
func (r *Rank) Gather(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	if p == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	tag := r.nextCollTag()
	if r.tune().GatherAlg(n, p) == AlgBinomial {
		r.gatherBinomial(tag|subGatherTree, root, sbuf, n, rbuf)
	} else {
		r.gatherLinear(tag|subGatherLinear, root, sbuf, n, rbuf)
	}
}

// GatherLinear runs the linear gather regardless of tuning.
func (r *Rank) GatherLinear(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.gatherLinear(r.nextCollTag()|subGatherLinear, root, sbuf, n, rbuf)
}

// GatherBinomial runs the binomial-tree gather regardless of tuning.
func (r *Rank) GatherBinomial(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.gatherBinomial(r.nextCollTag()|subGatherTree, root, sbuf, n, rbuf)
}

func (r *Rank) gatherLinear(tag, root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	if r.ID == root {
		copy(rbuf.Bytes()[root*n:(root+1)*n], sbuf.Bytes()[:n])
		for src := 0; src < p; src++ {
			if src != root {
				r.Recv(src, tag, rbuf, src*n, n)
			}
		}
	} else {
		r.Send(root, tag, sbuf, 0, n)
	}
}

// gatherBinomial collects blocks up the binomial tree in virtual-rank
// order (each subtree's blocks are contiguous), then the root rotates
// them into real-rank order.
func (r *Rank) gatherBinomial(tag, root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	vr := (r.ID - root + p) % p
	ext := subtreeExtent(vr, p)
	tmp := r.Host.Alloc(ext * n)
	copy(tmp.Bytes()[:n], sbuf.Bytes()[:n])
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			have := min(mask, p-vr)
			r.Send(vrank(vr&^mask, root, p), tag, tmp, 0, have*n)
			break
		}
		if child := vr + mask; child < p {
			cnt := min(mask, p-child)
			r.Recv(vrank(child, root, p), tag, tmp, mask*n, cnt*n)
		}
	}
	if vr == 0 {
		for v := 0; v < p; v++ {
			dst := vrank(v, root, p)
			copy(rbuf.Bytes()[dst*n:(dst+1)*n], tmp.Bytes()[v*n:(v+1)*n])
		}
	}
}

// Scatter distributes root's sbuf (p blocks of n bytes, block i for
// rank i) so every rank receives its block in rbuf. Non-root ranks
// may pass a nil sbuf. Algorithm selection mirrors Gather.
func (r *Rank) Scatter(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	if p == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	tag := r.nextCollTag()
	if r.tune().ScatterAlg(n, p) == AlgBinomial {
		r.scatterBinomial(tag|subScatterTree, root, sbuf, n, rbuf)
	} else {
		r.scatterLinear(tag|subScatterLinear, root, sbuf, n, rbuf)
	}
}

// ScatterLinear runs the linear scatter regardless of tuning.
func (r *Rank) ScatterLinear(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.scatterLinear(r.nextCollTag()|subScatterLinear, root, sbuf, n, rbuf)
}

// ScatterBinomial runs the binomial-tree scatter regardless of tuning.
func (r *Rank) ScatterBinomial(root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	if r.Size() == 1 {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[:n])
		return
	}
	r.scatterBinomial(r.nextCollTag()|subScatterTree, root, sbuf, n, rbuf)
}

func (r *Rank) scatterLinear(tag, root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	if r.ID == root {
		copy(rbuf.Bytes()[:n], sbuf.Bytes()[root*n:(root+1)*n])
		for dst := 0; dst < p; dst++ {
			if dst != root {
				r.Send(dst, tag, sbuf, dst*n, n)
			}
		}
	} else {
		r.Recv(root, tag, rbuf, 0, n)
	}
}

// scatterBinomial is the inverse of gatherBinomial: the root rotates
// blocks into virtual-rank order, each parent forwards every child
// its whole subtree's blocks, and each rank keeps block 0.
func (r *Rank) scatterBinomial(tag, root int, sbuf *cluster.Buffer, n int, rbuf *cluster.Buffer) {
	p := r.Size()
	vr := (r.ID - root + p) % p
	ext := subtreeExtent(vr, p)
	tmp := r.Host.Alloc(ext * n)
	mask := 1
	if vr == 0 {
		for v := 0; v < p; v++ {
			src := vrank(v, root, p)
			copy(tmp.Bytes()[v*n:(v+1)*n], sbuf.Bytes()[src*n:(src+1)*n])
		}
		mask = ceilPow2(p)
	} else {
		for ; mask < p; mask <<= 1 {
			if vr&mask != 0 {
				r.Recv(vrank(vr&^mask, root, p), tag, tmp, 0, ext*n)
				break
			}
		}
	}
	mask >>= 1
	for ; mask > 0; mask >>= 1 {
		if child := vr + mask; child < p {
			cnt := min(mask, p-child)
			r.Send(vrank(child, root, p), tag, tmp, mask*n, cnt*n)
		}
	}
	copy(rbuf.Bytes()[:n], tmp.Bytes()[:n])
}

// subtreeExtent is the number of binomial-tree blocks rank vr relays:
// its own plus every descendant's (the tree is over virtual ranks, so
// the blocks are contiguous and the extent clips at p).
func subtreeExtent(vr, p int) int {
	if vr == 0 {
		return p
	}
	return min(vr&-vr, p-vr)
}
