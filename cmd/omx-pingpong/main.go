// Command omx-pingpong runs a configurable two-node ping-pong on the
// simulated testbed and reports latency and throughput — the tool
// behind the paper's Figures 3 and 8.
//
//	omx-pingpong -transport openmx -ioat -size 1048576 -iters 10
//	omx-pingpong -transport mxoe -size 16
package main

import (
	"flag"
	"fmt"
	"os"

	"omxsim/cluster"
	"omxsim/mxoe"
	"omxsim/openmx"
	"omxsim/sim"
)

func main() {
	var (
		transport = flag.String("transport", "openmx", "openmx or mxoe")
		size      = flag.Int("size", 1<<20, "message size in bytes")
		iters     = flag.Int("iters", 10, "measured round trips")
		ioat      = flag.Bool("ioat", false, "enable I/OAT copy offload (openmx)")
		regcache  = flag.Bool("regcache", true, "enable the registration cache")
		skipBH    = flag.Bool("skip-bh-copy", false, "model knob: zero-cost BH copies (Fig. 3 prediction)")
	)
	flag.Parse()

	c := cluster.New(nil)
	n0, n1 := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(n0, n1)

	var e0, e1 openmx.Endpoint
	switch *transport {
	case "openmx":
		cfg := openmx.Config{IOAT: *ioat, RegCache: *regcache, SkipBHCopy: *skipBH}
		e0 = openmx.Attach(n0, cfg).Open(0, 2)
		e1 = openmx.Attach(n1, cfg).Open(0, 2)
	case "mxoe":
		e0 = mxoe.Attach(n0, mxoe.Config{RegCache: *regcache}).Open(0, 2)
		e1 = mxoe.Attach(n1, mxoe.Config{RegCache: *regcache}).Open(0, 2)
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	b0, b1 := n0.Alloc(*size), n1.Alloc(*size)
	b0.Fill(1)
	var t0, t1 sim.Time
	c.Go("pong", func(p *sim.Proc) {
		for i := 0; i <= *iters; i++ {
			r := e1.IRecv(p, 1, ^uint64(0), b1, 0, *size)
			e1.Wait(p, r)
			s := e1.ISend(p, e0.Addr(), 2, b1, 0, *size)
			e1.Wait(p, s)
		}
	})
	c.Go("ping", func(p *sim.Proc) {
		for i := 0; i <= *iters; i++ {
			if i == 1 {
				t0 = p.Now()
			}
			s := e0.ISend(p, e1.Addr(), 1, b0, 0, *size)
			e0.Wait(p, s)
			r := e0.IRecv(p, 2, ^uint64(0), b0, 0, *size)
			e0.Wait(p, r)
		}
		t1 = p.Now()
	})
	if blocked := c.Run(); blocked != 0 {
		fmt.Fprintln(os.Stderr, "deadlock: ping-pong did not complete")
		os.Exit(1)
	}
	if !cluster.Equal(b0, b1) {
		fmt.Fprintln(os.Stderr, "payload corrupted")
		os.Exit(1)
	}
	half := float64(t1-t0) / float64(2**iters)
	mibps := float64(*size) / 1024 / 1024 / (half / 1e9)
	fmt.Printf("transport=%s size=%d iters=%d\n", *transport, *size, *iters)
	fmt.Printf("half round trip: %10.2f µs\n", half/1000)
	fmt.Printf("throughput:      %10.1f MiB/s\n", mibps)
}
