// Command omx-imb runs the Intel-MPI-Benchmarks-style suite over the
// simulated stacks, like the paper's Section IV-D evaluation.
// Multiple tests (comma-separated, case-insensitive, or "all") run
// concurrently on a bounded worker pool, one fresh testbed per test,
// with output in deterministic test order. Worlds larger than the
// paper's two nodes (-nodes) connect through a simulated Ethernet
// switch — the collective scaling topology.
//
//	omx-imb -test PingPong -transport openmx -ioat
//	omx-imb -test allreduce,alltoall,bcast -nodes 8 -ppn 2
//	omx-imb -test Alltoall -ppn 2 -sizes 128k,4m
//	omx-imb -test all -workers 8
//	omx-imb -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"omxsim/cluster"
	"omxsim/figures"
	"omxsim/imb"
	"omxsim/mpi"
	"omxsim/openmx"
	"omxsim/runner"
)

func main() {
	var (
		testsFlag = flag.String("test", "PingPong", `IMB test name, comma-separated list, or "all"`)
		transport = flag.String("transport", "openmx", "openmx or mxoe")
		ioat      = flag.Bool("ioat", false, "enable I/OAT offload (openmx)")
		regcache  = flag.Bool("regcache", true, "enable the registration cache")
		nodes     = flag.Int("nodes", 2, "number of nodes (2 = back to back, more via a switch)")
		ppn       = flag.Int("ppn", 1, "processes per node (1 or 2)")
		sizesFlag = flag.String("sizes", "16,1k,64k,1m,4m", "comma-separated message sizes (k/m suffixes)")
		workers   = flag.Int("workers", 0, "concurrent benchmark runs (0 = GOMAXPROCS)")
		progress  = flag.Bool("progress", false, "report sweep progress on stderr")
		list      = flag.Bool("list", false, "list available tests")
	)
	flag.Parse()
	if *list {
		for _, t := range imb.AllTests() {
			fmt.Println(t)
		}
		return
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tests, err := parseTests(*testsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *nodes < 1 || *ppn < 1 || *ppn > 2 {
		fmt.Fprintf(os.Stderr, "bad world: %d node(s) x %d ppn (need nodes >= 1, ppn 1 or 2)\n", *nodes, *ppn)
		os.Exit(2)
	}
	if *nodes**ppn < 2 {
		fmt.Fprintln(os.Stderr, "bad world: the benchmarks need at least 2 ranks (raise -nodes or -ppn)")
		os.Exit(2)
	}

	stack := figures.Stack{Kind: "openmx", OMX: openmx.Config{IOAT: *ioat, IOATShm: *ioat, RegCache: *regcache}}
	if *transport == "mxoe" {
		stack = figures.Stack{Kind: "mxoe", MXRegCache: *regcache}
	}
	name := *transport + ioatSuffix(*transport, *ioat)
	points := make([]imb.Point, len(tests))
	for i, test := range tests {
		points[i] = imb.Point{
			Name:  name,
			Build: func() (*cluster.Cluster, *mpi.World) { return figures.TestbedN(stack, *nodes, *ppn) },
			Test:  test,
			Sizes: sizes,
			Key:   runner.Key("omx-imb", stack, *nodes, *ppn, test, sizes),
		}
	}
	opts := runner.Options{Workers: *workers, Cache: runner.NewCache()}
	if *progress {
		opts.Progress = runner.WriterProgress(os.Stderr)
	}
	prs, err := imb.Sweep(runner.New(opts), points)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, pr := range prs {
		if i > 0 {
			fmt.Println()
		}
		printResults(pr.Point.Test, name, *nodes, *ppn, pr.Results)
	}
}

func printResults(test, name string, nodes, ppn int, results []imb.Result) {
	fmt.Printf("# %s, %s, %d node(s), %d process(es) per node\n", test, name, nodes, ppn)
	fmt.Printf("%12s %14s %14s\n", "bytes", "t[usec]", "MiB/s")
	for _, r := range results {
		bw := "-"
		if r.MiBps > 0 {
			bw = fmt.Sprintf("%14.1f", r.MiBps)
		}
		fmt.Printf("%12d %14.2f %14s\n", r.Bytes, r.TimeUsec, bw)
	}
}

func ioatSuffix(transport string, ioat bool) string {
	if transport == "openmx" && ioat {
		return "+ioat"
	}
	return ""
}

func parseTests(s string) ([]string, error) {
	if strings.EqualFold(s, "all") {
		return imb.AllTests(), nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		canon, ok := imb.Canon(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("unknown test %q (see -list)", part)
		}
		out = append(out, canon)
	}
	return out, nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		mult := 1
		switch {
		case strings.HasSuffix(part, "k"):
			mult, part = 1024, strings.TrimSuffix(part, "k")
		case strings.HasSuffix(part, "m"):
			mult, part = 1<<20, strings.TrimSuffix(part, "m")
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
