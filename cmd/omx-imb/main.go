// Command omx-imb runs the Intel-MPI-Benchmarks-style suite over the
// simulated stacks, like the paper's Section IV-D evaluation.
//
//	omx-imb -test PingPong -transport openmx -ioat
//	omx-imb -test Alltoall -ppn 2 -sizes 128k,4m
//	omx-imb -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"omxsim/cluster"
	"omxsim/imb"
	"omxsim/mpi"
	"omxsim/mxoe"
	"omxsim/openmx"
)

func main() {
	var (
		test      = flag.String("test", "PingPong", "IMB test name")
		transport = flag.String("transport", "openmx", "openmx or mxoe")
		ioat      = flag.Bool("ioat", false, "enable I/OAT offload (openmx)")
		regcache  = flag.Bool("regcache", true, "enable the registration cache")
		ppn       = flag.Int("ppn", 1, "processes per node (1 or 2)")
		sizesFlag = flag.String("sizes", "16,1k,64k,1m,4m", "comma-separated message sizes (k/m suffixes)")
		list      = flag.Bool("list", false, "list available tests")
	)
	flag.Parse()
	if *list {
		for _, t := range imb.Tests() {
			fmt.Println(t)
		}
		return
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	c := cluster.New(nil)
	n0, n1 := c.NewHost("node0"), c.NewHost("node1")
	cluster.Link(n0, n1)
	open := func(h *cluster.Host) openmx.Transport {
		if *transport == "mxoe" {
			return mxoe.Attach(h, mxoe.Config{RegCache: *regcache})
		}
		return openmx.Attach(h, openmx.Config{IOAT: *ioat, IOATShm: *ioat, RegCache: *regcache})
	}
	t0, t1 := open(n0), open(n1)
	w := mpi.NewWorld(c)
	cores := []int{2, 4}
	for r := 0; r < 2**ppn; r++ {
		node, slot, tr := n0, r, t0
		if r >= *ppn {
			node, slot, tr = n1, r-*ppn, t1
		}
		w.AddRank(tr.Open(slot, cores[slot]), node, cores[slot])
	}
	runner := &imb.Runner{C: c, W: w}
	results := runner.Run(*test, sizes)
	fmt.Printf("# %s, %s%s, %d process(es) per node\n", *test, *transport, ioatSuffix(*transport, *ioat), *ppn)
	fmt.Printf("%12s %14s %14s\n", "bytes", "t[usec]", "MiB/s")
	for _, r := range results {
		bw := "-"
		if r.MiBps > 0 {
			bw = fmt.Sprintf("%14.1f", r.MiBps)
		}
		fmt.Printf("%12d %14.2f %14s\n", r.Bytes, r.TimeUsec, bw)
	}
}

func ioatSuffix(transport string, ioat bool) string {
	if transport == "openmx" && ioat {
		return "+ioat"
	}
	return ""
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		mult := 1
		switch {
		case strings.HasSuffix(part, "k"):
			mult, part = 1024, strings.TrimSuffix(part, "k")
		case strings.HasSuffix(part, "m"):
			mult, part = 1<<20, strings.TrimSuffix(part, "m")
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v*mult)
	}
	return out, nil
}
