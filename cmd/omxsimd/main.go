// Command omxsimd runs the simulator as a long-lived multi-tenant
// job service: tenants create named clusters from the declarative
// topology vocabulary, submit IMB sweeps and figure sections as jobs
// on the shared bounded pool, stream progress over SSE, and fetch
// results with network and CPU counter snapshots. See internal/simd
// for the API.
//
// Usage:
//
//	omxsimd [-addr host:port] [-quota n] [-drain d]
//
// The service announces "omxsimd listening on ADDR" on stdout once
// the listener is up. SIGINT/SIGTERM trigger a graceful shutdown:
// the listener closes, in-flight jobs drain (bounded by -drain), and
// a clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"omxsim/internal/simd"
)

var (
	addr  = flag.String("addr", "127.0.0.1:8383", "listen address")
	quota = flag.Int("quota", simd.DefaultQuota, "max concurrent jobs per tenant")
	drain = flag.Duration("drain", time.Minute, "max wait for in-flight jobs on shutdown")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "omxsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := simd.NewServer(simd.Config{Quota: *quota, Logger: log})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("omxsimd listening on %s\n", ln.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Info("shutting down", "drainTimeout", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	return <-errc
}
