package main

// End-to-end over the real binary: build it, start it on an ephemeral
// port, drive the API over TCP, then SIGTERM it and require a clean
// drain (exit 0).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := filepath.Join(t.TempDir(), "omxsimd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its ephemeral address on stdout.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr:\n%s", stderr.String())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "omxsimd listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// A real job through the real daemon: create a cluster and sweep
	// it, so SIGTERM has in-flight state to have drained cleanly.
	body := `{"name":"c","topology":{"hosts":[{"name":"n","n":2,"indexed":true}],"wiring":{"kind":"backtoback"}}}`
	resp, err = http.Post(base+"/v1/tenants/t/clusters", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("cluster create: %d", resp.StatusCode)
	}
	job := `{"cluster":"c","test":"pingpong","sizes":[1024],"iters":4,"stacks":[{"kind":"openmx","regcache":true}]}`
	resp, err = http.Post(base+"/v1/tenants/t/jobs", "application/json", strings.NewReader(job))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("job submit: %d", resp.StatusCode)
	}
	if st.ID == "" {
		t.Fatal("job submit returned no id")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}
	// The drain log line proves shutdown went through the graceful
	// path rather than the process just dying.
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("no shutdown log line; stderr:\n%s", stderr.String())
	}
}
