// Command omxsim regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	omxsim micro            Section IV-A microbenchmark numbers
//	omxsim fig3             Fig. 3  ping-pong vs the no-copy prediction
//	omxsim fig7             Fig. 7  memcpy vs I/OAT by chunk size
//	omxsim fig8             Fig. 8  ping-pong with I/OAT offload
//	omxsim fig9             Fig. 9  receive-side CPU usage
//	omxsim fig10            Fig. 10 shared-memory ping-pong
//	omxsim fig11            Fig. 11 IMB PingPong, I/OAT × regcache
//	omxsim fig12            Fig. 12 all IMB tests normalized to MXoE
//	omxsim timeline         Figs. 5/6 receive timelines (ASCII)
//	omxsim nasis            NAS IS proxy comparison
//	omxsim coll             collective latency, I/OAT on/off, 4-16 procs
//	omxsim loss             goodput/latency/retransmits vs frame loss
//	omxsim avail            overlap/CPU-availability with injected compute
//	omxsim ablate           threshold / pull-window / IRQ / extension ablations
//	omxsim multinic         multi-NIC link aggregation: goodput vs NIC count
//	omxsim fattree          fat-tree collectives at 64-512 ranks
//	omxsim nicoll           NIC-offloaded collectives vs host algorithms
//	omxsim adaptive         adaptive vs static transport across loss × NICs
//	omxsim all              everything above
//	omxsim trace            Figs. 5/6 receive timeline as Chrome trace JSON
//
// The section registry lives in figures.Sections — shared with the
// omxsimd service, which serves the same sections as tenant jobs.
// Each figure shards its independent simulation points across a
// worker pool; "omxsim all" additionally runs the figures themselves
// concurrently (shared points — Figures 3 and 8 overlap — simulate
// once), printing every section in the order listed above.
//
// "omxsim trace" exports the five-fragment receive timeline of
// Figures 5/6 (the same capture the ASCII timeline renders) as Chrome
// trace_event JSON — load the file in chrome://tracing or Perfetto.
// Its own flags: -o writes to a file instead of stdout, -ioat=false
// switches to the memcpy timeline (Fig. 5).
//
// Flags:
//
//	-plot      also draw ASCII plots of the curves
//	-progress  report sweep progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"omxsim/figures"
	"omxsim/runner"
)

var (
	plot     = flag.Bool("plot", false, "draw ASCII plots of curve figures")
	progress = flag.Bool("progress", false, "report sweep progress on stderr")
)

func main() {
	flag.Parse()
	if *progress {
		// The figures pool is runner.Default(); enabling progress here
		// covers every sweep the commands below trigger.
		os.Setenv("OMXSIM_PROGRESS", "1")
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if cmd == "trace" {
		os.Exit(traceCmd(flag.Args()[1:]))
	}
	var selected []figures.Section
	for _, s := range figures.Sections() {
		if s.Name == cmd || cmd == "all" {
			selected = append(selected, s)
		}
	}
	if len(selected) == 0 {
		usage()
		os.Exit(2)
	}
	// Render the selected sections concurrently — every section is an
	// independent sweep and the pool is reentrant — then print them in
	// registry order, so "omxsim all" output is byte-identical to the
	// serial concatenation of the individual commands.
	jobs := make([]runner.Job, len(selected))
	for i, s := range selected {
		s := s
		jobs[i] = runner.Job{
			Label: "omxsim/" + s.Name,
			Run:   func() (any, error) { return s.Render(*plot), nil },
		}
	}
	results := runner.Run(jobs...)
	// Print every section that succeeded, in command order, even when
	// another failed — the work is already done and a late failure
	// must not discard the earlier figures.
	failed := false
	for i, r := range results {
		fmt.Printf("==> %s\n", selected[i].Desc)
		if r.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "omxsim: %s: %v\n", selected[i].Name, r.Err)
			fmt.Printf("(failed: %v)\n", r.Err)
		} else {
			fmt.Print(r.Value.(string))
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// traceCmd implements "omxsim trace [-ioat=true] [-o file]": the
// Figs. 5/6 receive timeline exported as Chrome trace_event JSON.
func traceCmd(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "write the trace to this file (default stdout)")
	ioat := fs.Bool("ioat", true, "trace the I/OAT timeline (Fig. 6); false for memcpy (Fig. 5)")
	fs.Parse(args)
	data := figures.TimelineTraceJSON(*ioat)
	if *out == "" {
		os.Stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "omxsim trace: %v\n", err)
		return 1
	}
	return 0
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: omxsim [-plot] [-progress] <command>")
	for _, s := range figures.Sections() {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", s.Name, s.Desc)
	}
	fmt.Fprintln(os.Stderr, "  all       run everything")
	fmt.Fprintln(os.Stderr, "  trace     Figs. 5/6 receive timeline as Chrome trace JSON (-o file, -ioat=false for memcpy)")
}
