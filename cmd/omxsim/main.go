// Command omxsim regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	omxsim micro            Section IV-A microbenchmark numbers
//	omxsim fig3             Fig. 3  ping-pong vs the no-copy prediction
//	omxsim fig7             Fig. 7  memcpy vs I/OAT by chunk size
//	omxsim fig8             Fig. 8  ping-pong with I/OAT offload
//	omxsim fig9             Fig. 9  receive-side CPU usage
//	omxsim fig10            Fig. 10 shared-memory ping-pong
//	omxsim fig11            Fig. 11 IMB PingPong, I/OAT × regcache
//	omxsim fig12            Fig. 12 all IMB tests normalized to MXoE
//	omxsim timeline         Figs. 5/6 receive timelines (ASCII)
//	omxsim nasis            NAS IS proxy comparison
//	omxsim all              everything above
//
// Flags:
//
//	-plot   also draw ASCII plots of the curves
package main

import (
	"flag"
	"fmt"
	"os"

	"omxsim/figures"
	"omxsim/metrics"
)

var plot = flag.Bool("plot", false, "draw ASCII plots of curve figures")

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	ran := false
	for _, c := range commands {
		if c.name == cmd || cmd == "all" {
			fmt.Printf("==> %s\n", c.desc)
			c.run()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: omxsim [-plot] <command>")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.desc)
	}
	fmt.Fprintln(os.Stderr, "  all       run everything")
}

var commands = []struct {
	name string
	desc string
	run  func()
}{
	{"micro", "Section IV-A microbenchmarks", runMicro},
	{"fig3", "Fig. 3: ping-pong vs no-copy prediction", func() { table(figures.Fig3()) }},
	{"fig7", "Fig. 7: memcpy vs I/OAT copy by chunk size", func() { table(figures.Fig7()) }},
	{"fig8", "Fig. 8: ping-pong with I/OAT receive offload", func() { table(figures.Fig8()) }},
	{"fig9", "Fig. 9: receive-side CPU usage", runFig9},
	{"fig10", "Fig. 10: shared-memory ping-pong", func() { table(figures.Fig10()) }},
	{"fig11", "Fig. 11: IMB PingPong, I/OAT x regcache", func() { table(figures.Fig11()) }},
	{"fig12", "Fig. 12: IMB suite normalized to MXoE", runFig12},
	{"timeline", "Figs. 5/6: receive timelines", runTimeline},
	{"nasis", "NAS IS proxy", runNASIS},
	{"ablate", "ablations: thresholds, pull window, IRQ steering, extensions", runAblate},
}

func table(t *metrics.Table) {
	fmt.Print(t.Render())
	if *plot {
		fmt.Print(t.ASCIIPlot(100, 20))
	}
}

func runMicro() {
	m := figures.MicroNumbers()
	fmt.Printf("I/OAT submission (1 descriptor):   %6.0f ns   (paper: ~350 ns)\n", m.SubmitNs)
	fmt.Printf("memcpy, uncached:                  %6.2f GiB/s (paper: ~1.6 GiB/s)\n", m.MemcpyColdGiBps)
	fmt.Printf("memcpy, cache-resident:            %6.2f GiB/s (paper: up to 12 GiB/s)\n", m.MemcpyCachedGiBps)
	fmt.Printf("I/OAT streaming, 4 kiB chunks:     %6.2f GiB/s (paper: ~2.4 GiB/s)\n", m.IOAT4kGiBps)
	fmt.Printf("offload break-even, uncached:      %6d B    (paper: ~600 B)\n", m.BreakEvenColdB)
	fmt.Printf("offload break-even, cached:        %6d B    (paper: ~2 kB)\n", m.BreakEvenCachedB)
}

func runFig9() {
	mem, ioat := figures.Fig9Tables()
	fmt.Print(mem.Render())
	fmt.Println()
	fmt.Print(ioat.Render())
}

func runFig12() {
	for _, panel := range figures.Fig12All() {
		fmt.Print(panel.Render())
		fmt.Println()
	}
}

func runTimeline() {
	fmt.Print(figures.Timeline(false))
	fmt.Println()
	fmt.Print(figures.Timeline(true))
}

func runNASIS() {
	fmt.Print(figures.RenderNASIS(figures.NASIS(1<<17, 3)))
}

func runAblate() {
	fmt.Print(figures.AblateMinFrag().Render())
	fmt.Println()
	fmt.Print(figures.AblatePullWindow().Render())
	fmt.Println()
	fmt.Print(figures.AblateIRQSteering().Render())
	fmt.Println()
	fmt.Print(figures.AblateExtensions())
}
