// Command omxsim regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	omxsim micro            Section IV-A microbenchmark numbers
//	omxsim fig3             Fig. 3  ping-pong vs the no-copy prediction
//	omxsim fig7             Fig. 7  memcpy vs I/OAT by chunk size
//	omxsim fig8             Fig. 8  ping-pong with I/OAT offload
//	omxsim fig9             Fig. 9  receive-side CPU usage
//	omxsim fig10            Fig. 10 shared-memory ping-pong
//	omxsim fig11            Fig. 11 IMB PingPong, I/OAT × regcache
//	omxsim fig12            Fig. 12 all IMB tests normalized to MXoE
//	omxsim timeline         Figs. 5/6 receive timelines (ASCII)
//	omxsim nasis            NAS IS proxy comparison
//	omxsim coll             collective latency, I/OAT on/off, 4-16 procs
//	omxsim loss             goodput/latency/retransmits vs frame loss
//	omxsim avail            overlap/CPU-availability with injected compute
//	omxsim ablate           threshold / pull-window / IRQ / extension ablations
//	omxsim multinic         multi-NIC link aggregation: goodput vs NIC count
//	omxsim fattree          fat-tree collectives at 64-512 ranks
//	omxsim nicoll           NIC-offloaded collectives vs host algorithms
//	omxsim all              everything above
//
// Each figure shards its independent simulation points across a
// worker pool; "omxsim all" additionally runs the figures themselves
// concurrently (shared points — Figures 3 and 8 overlap — simulate
// once), printing every section in the order listed above.
//
// Flags:
//
//	-plot      also draw ASCII plots of the curves
//	-progress  report sweep progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"omxsim/figures"
	"omxsim/metrics"
	"omxsim/runner"
)

var (
	plot     = flag.Bool("plot", false, "draw ASCII plots of curve figures")
	progress = flag.Bool("progress", false, "report sweep progress on stderr")
)

func main() {
	flag.Parse()
	if *progress {
		// The figures pool is runner.Default(); enabling progress here
		// covers every sweep the commands below trigger.
		os.Setenv("OMXSIM_PROGRESS", "1")
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	var selected []command
	for _, c := range commands {
		if c.name == cmd || cmd == "all" {
			selected = append(selected, c)
		}
	}
	if len(selected) == 0 {
		usage()
		os.Exit(2)
	}
	// Render the selected sections concurrently — every command is an
	// independent sweep and the pool is reentrant — then print them in
	// command order, so "omxsim all" output is byte-identical to the
	// serial concatenation of the individual commands.
	jobs := make([]runner.Job, len(selected))
	for i, c := range selected {
		c := c
		jobs[i] = runner.Job{
			Label: "omxsim/" + c.name,
			Run:   func() (any, error) { return c.run(), nil },
		}
	}
	results := runner.Run(jobs...)
	// Print every section that succeeded, in command order, even when
	// another failed — the work is already done and a late failure
	// must not discard the earlier figures.
	failed := false
	for i, r := range results {
		fmt.Printf("==> %s\n", selected[i].desc)
		if r.Err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "omxsim: %s: %v\n", selected[i].name, r.Err)
			fmt.Printf("(failed: %v)\n", r.Err)
		} else {
			fmt.Print(r.Value.(string))
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: omxsim [-plot] [-progress] <command>")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-9s %s\n", c.name, c.desc)
	}
	fmt.Fprintln(os.Stderr, "  all       run everything")
}

type command struct {
	name string
	desc string
	run  func() string
}

var commands = []command{
	{"micro", "Section IV-A microbenchmarks", runMicro},
	{"fig3", "Fig. 3: ping-pong vs no-copy prediction", func() string { return table(figures.Fig3()) }},
	{"fig7", "Fig. 7: memcpy vs I/OAT copy by chunk size", func() string { return table(figures.Fig7()) }},
	{"fig8", "Fig. 8: ping-pong with I/OAT receive offload", func() string { return table(figures.Fig8()) }},
	{"fig9", "Fig. 9: receive-side CPU usage", runFig9},
	{"fig10", "Fig. 10: shared-memory ping-pong", func() string { return table(figures.Fig10()) }},
	{"fig11", "Fig. 11: IMB PingPong, I/OAT x regcache", func() string { return table(figures.Fig11()) }},
	{"fig12", "Fig. 12: IMB suite normalized to MXoE", runFig12},
	{"timeline", "Figs. 5/6: receive timelines", runTimeline},
	{"nasis", "NAS IS proxy", runNASIS},
	{"coll", "collective latency vs size, I/OAT on/off, 4-16 procs", runColl},
	{"loss", "goodput/latency/retransmits vs frame-loss rate, both stacks", runLoss},
	{"avail", "overlap/CPU-availability with injected compute, memcpy vs I/OAT", runAvail},
	{"ablate", "ablations: thresholds, pull window, IRQ steering, extensions", runAblate},
	{"multinic", "multi-NIC link aggregation: striped goodput vs NIC count and pull window", runMultiNIC},
	{"fattree", "fat-tree collectives at 64-512 ranks, I/OAT on/off, vs 1-switch", runFatTree},
	{"nicoll", "NIC-offloaded collectives: firmware vs host algorithms, CPU and overlap", runNIColl},
}

func table(t *metrics.Table) string {
	out := t.Render()
	if *plot {
		out += t.ASCIIPlot(100, 20)
	}
	return out
}

func runMicro() string {
	m := figures.MicroNumbers()
	var b strings.Builder
	fmt.Fprintf(&b, "I/OAT submission (1 descriptor):   %6.0f ns   (paper: ~350 ns)\n", m.SubmitNs)
	fmt.Fprintf(&b, "memcpy, uncached:                  %6.2f GiB/s (paper: ~1.6 GiB/s)\n", m.MemcpyColdGiBps)
	fmt.Fprintf(&b, "memcpy, cache-resident:            %6.2f GiB/s (paper: up to 12 GiB/s)\n", m.MemcpyCachedGiBps)
	fmt.Fprintf(&b, "I/OAT streaming, 4 kiB chunks:     %6.2f GiB/s (paper: ~2.4 GiB/s)\n", m.IOAT4kGiBps)
	fmt.Fprintf(&b, "offload break-even, uncached:      %6d B    (paper: ~600 B)\n", m.BreakEvenColdB)
	fmt.Fprintf(&b, "offload break-even, cached:        %6d B    (paper: ~2 kB)\n", m.BreakEvenCachedB)
	return b.String()
}

func runFig9() string {
	mem, ioat := figures.Fig9Tables()
	return mem.Render() + "\n" + ioat.Render()
}

func runFig12() string {
	var b strings.Builder
	for _, panel := range figures.Fig12All() {
		b.WriteString(panel.Render())
		b.WriteString("\n")
	}
	return b.String()
}

func runTimeline() string {
	return figures.Timeline(false) + "\n" + figures.Timeline(true)
}

func runNASIS() string {
	return figures.RenderNASIS(figures.NASIS(1<<17, 3))
}

func runColl() string {
	tables := figures.Coll()
	if *plot {
		out := ""
		for _, t := range tables {
			out += t.Render() + t.ASCIIPlot(100, 20) + "\n"
		}
		return out + figures.RenderColl(nil)
	}
	return figures.RenderColl(tables)
}

func runLoss() string {
	return figures.RenderLoss(figures.LossSweep())
}

func runAvail() string {
	return figures.RenderAvail(figures.AvailSweep())
}

func runMultiNIC() string {
	return figures.RenderMultiNIC(figures.MultiNICSweep())
}

func runFatTree() string {
	tables, lp := figures.FatTree()
	if *plot {
		out := ""
		for _, t := range tables {
			out += t.Render() + t.ASCIIPlot(100, 20) + "\n"
		}
		return out + figures.RenderFatTree(nil, lp)
	}
	return figures.RenderFatTree(tables, lp)
}

func runNIColl() string {
	return figures.RenderNIColl(figures.NICollSweep())
}

func runAblate() string {
	return figures.AblateMinFrag().Render() + "\n" +
		figures.AblatePullWindow().Render() + "\n" +
		figures.AblateIRQSteering().Render() + "\n" +
		figures.AblateExtensions()
}
